(* Sequential fault simulation of scan tests.

   A scan test (SI, T) loads state SI, applies the PI vectors of T with the
   functional clock, and scans out the final state.  A fault is detected if
   the faulty machine differs from the fault-free machine at a primary
   output at any time unit, or in the final state (observed by scan-out).
   Faults live in the functional logic only; the scan operation itself is
   assumed fault-free (standard full-scan stuck-at assumption).

   Simulation is parallel-fault: up to 62 faulty machines run per word, one
   lane each.  Phase 1's scan-in selection instead runs one fault across 62
   *candidate initial states* per word; both modes share the same engine.

   [profile] additionally records, per fault, the earliest PO detection
   time and the set of time units at which the faulty state differs — the
   single-pass data from which Phase 1 picks its scan-out time and the
   vector-omission procedure re-verifies suffixes. *)

open Asc_util
module Circuit = Asc_netlist.Circuit
module Engine2 = Asc_sim.Engine2
module Engine3 = Asc_sim.Engine3

type seq = bool array array (* L vectors, each of n_pis bools *)

(* Splat PI words, one array per time unit. *)
let seq_words c (seq : seq) =
  let n_pis = Circuit.n_inputs c in
  Array.map
    (fun vec ->
      if Array.length vec <> n_pis then invalid_arg "Seq_fsim: vector arity mismatch";
      Array.map Word.splat vec)
    seq

(* Fault-free trace: PO words per time unit and state words per boundary.
   [states.(t)] is the state *entering* time unit [t]; [states.(L)] is the
   final (scan-out) state. *)
type good = { po : int array array; states : int array array }

let good_run c ~si ~seq =
  let sw = seq_words c seq in
  let len = Array.length seq in
  let engine = Engine2.create c [] in
  Engine2.set_state_bools engine si;
  let n_po = Circuit.n_outputs c and n_ff = Circuit.n_dffs c in
  let po = Array.make len [||] in
  let states = Array.make (len + 1) [||] in
  states.(0) <- Engine2.state_words engine;
  for t = 0 to len - 1 do
    Engine2.eval engine ~pi_words:sw.(t);
    po.(t) <- Array.init n_po (Engine2.po_word engine);
    Engine2.capture engine;
    states.(t + 1) <- Array.init n_ff (Engine2.state_word engine)
  done;
  { po; states }

let good_final_state c (good : good) =
  let words = good.states.(Array.length good.states - 1) in
  Array.init (Circuit.n_dffs c) (fun i -> words.(i) land 1 = 1)

(* Group faults 62 to a word. *)
type group = { members : int array; lanes : int; overrides : Asc_sim.Override.t list }

let make_groups faults subset =
  let total = Array.length subset in
  let n_groups = (total + Word.width - 1) / Word.width in
  Array.init n_groups (fun gi ->
      let base = gi * Word.width in
      let count = min Word.width (total - base) in
      let members = Array.sub subset base count in
      let overrides =
        List.init count (fun lane ->
            Fault.to_override faults.(members.(lane)) ~lanes:(1 lsl lane))
      in
      let lanes = if count = Word.width then Word.mask else (1 lsl count) - 1 in
      { members; lanes; overrides })

let all_indices n = Array.init n (fun i -> i)

let subset_of_only n = function
  | None -> all_indices n
  | Some mask -> Array.of_list (Bitvec.to_list mask)

(* Accumulate PO differences of one evaluated cycle. *)
let po_diff engine (good : good) t =
  let diff = ref 0 in
  let gpo = good.po.(t) in
  for i = 0 to Array.length gpo - 1 do
    diff := !diff lor (Engine2.po_word engine i lxor gpo.(i))
  done;
  !diff

let state_diff engine (good : good) boundary =
  let diff = ref 0 in
  let gst = good.states.(boundary) in
  for i = 0 to Array.length gst - 1 do
    diff := !diff lor (Engine2.state_word engine i lxor gst.(i))
  done;
  !diff

(* Which of [faults] does the scan test (si, seq) detect?  [only] restricts
   the simulated fault indices.  Detection lanes are accumulated with an
   early exit once a whole group is detected. *)
let detect ?only c ~si ~seq ~faults =
  let n = Array.length faults in
  let result = Bitvec.create n in
  let subset = subset_of_only n only in
  if Array.length subset = 0 then result
  else begin
    let sw = seq_words c seq in
    let len = Array.length seq in
    let good = good_run c ~si ~seq in
    let engine = Engine2.create c [] in
    Array.iter
      (fun group ->
        Engine2.set_overrides engine group.overrides;
        Engine2.set_state_bools engine si;
        let det = ref 0 in
        let t = ref 0 in
        while !det <> group.lanes && !t < len do
          Engine2.eval engine ~pi_words:sw.(!t);
          det := !det lor po_diff engine good !t;
          Engine2.capture engine;
          incr t
        done;
        if !t = len && !det <> group.lanes then
          det := !det lor state_diff engine good len;
        let d = !det land group.lanes in
        Word.iter_set (fun lane -> Bitvec.set result group.members.(lane)) d)
      (make_groups faults subset);
    result
  end

(* Detection-time profile over a fault subset.

   [po_time.(k)] is the earliest time unit at which subset fault [k]
   differs at a PO ([max_int] if never); [state_diff_at.(k)] has bit [t]
   set when the faulty state differs from the fault-free state after the
   vector of time unit [t] — i.e. scanning out at time [t] would detect
   the fault. *)
type profile = {
  subset : int array;
  po_time : int array;
  state_diff_at : Bitvec.t array;
}

let profile c ~si ~seq ~faults ~subset =
  let len = Array.length seq in
  let sw = seq_words c seq in
  let good = good_run c ~si ~seq in
  let engine = Engine2.create c [] in
  let po_time = Array.make (Array.length subset) max_int in
  let state_diff_at = Array.init (Array.length subset) (fun _ -> Bitvec.create len) in
  let groups = make_groups faults subset in
  Array.iteri
    (fun gi group ->
      let base = gi * Word.width in
      Engine2.set_overrides engine group.overrides;
      Engine2.set_state_bools engine si;
      let po_seen = ref 0 in
      for t = 0 to len - 1 do
        Engine2.eval engine ~pi_words:sw.(t);
        let fresh = po_diff engine good t land group.lanes land lnot !po_seen in
        Word.iter_set (fun lane -> po_time.(base + lane) <- t) fresh;
        po_seen := !po_seen lor fresh;
        Engine2.capture engine;
        let sdiff = state_diff engine good (t + 1) land group.lanes in
        Word.iter_set (fun lane -> Bitvec.set state_diff_at.(base + lane) t) sdiff
      done)
    groups;
  { subset; po_time; state_diff_at }

(* Faults detected by the test truncated to end (and scan out) at time
   [u]: PO detection at a time <= u, or state difference at u. *)
let profile_detected_at p ~u =
  let det = Bitvec.create (Array.length p.subset) in
  Array.iteri
    (fun k _ ->
      if p.po_time.(k) <= u || Bitvec.get p.state_diff_at.(k) u then Bitvec.set det k)
    p.subset;
  det

(* Candidate scan-in evaluation (Phase 1, Step 2): rows are candidate
   scan-in states, columns are fault indices; entry set when the test
   (candidate, seq) detects the fault.  One fault is simulated at a time
   across up to 62 candidate initial states per word. *)
let candidate_detections c ~sis ~seq ~faults ~subset =
  let n_candidates = Array.length sis in
  let n_ff = Circuit.n_dffs c in
  let len = Array.length seq in
  let sw = seq_words c seq in
  let result = Bitmat.create n_candidates (Array.length faults) in
  let engine = Engine2.create c [] in
  let n_cgroups = (n_candidates + Word.width - 1) / Word.width in
  for cg = 0 to n_cgroups - 1 do
    let base = cg * Word.width in
    let count = min Word.width (n_candidates - base) in
    let full = if count = Word.width then Word.mask else (1 lsl count) - 1 in
    (* Pack the candidate states: lane = candidate (base + lane). *)
    let init_words = Array.make n_ff 0 in
    for lane = 0 to count - 1 do
      let si = sis.(base + lane) in
      if Array.length si <> n_ff then invalid_arg "Seq_fsim.candidate_detections: state arity";
      for i = 0 to n_ff - 1 do
        if si.(i) then init_words.(i) <- Word.set init_words.(i) lane
      done
    done;
    (* Fault-free machines for all candidates at once. *)
    Engine2.set_overrides engine [];
    Engine2.set_state_words engine init_words;
    let good_po = Array.make len [||] in
    let n_po = Circuit.n_outputs c in
    for t = 0 to len - 1 do
      Engine2.eval engine ~pi_words:sw.(t);
      good_po.(t) <- Array.init n_po (Engine2.po_word engine);
      Engine2.capture engine
    done;
    let good_final = Array.init n_ff (Engine2.state_word engine) in
    (* One fault at a time, injected in every candidate lane. *)
    Array.iter
      (fun fi ->
        Engine2.set_overrides engine [ Fault.to_override faults.(fi) ~lanes:Word.mask ];
        Engine2.set_state_words engine init_words;
        let det = ref 0 in
        let t = ref 0 in
        while !det <> full && !t < len do
          Engine2.eval engine ~pi_words:sw.(!t);
          let gpo = good_po.(!t) in
          for i = 0 to n_po - 1 do
            det := !det lor (Engine2.po_word engine i lxor gpo.(i))
          done;
          Engine2.capture engine;
          incr t
        done;
        if !t = len && !det <> full then
          for i = 0 to n_ff - 1 do
            det := !det lor (Engine2.state_word engine i lxor good_final.(i))
          done;
        Word.iter_set (fun lane -> Bitmat.set result (base + lane) fi) (!det land full))
      subset
  done;
  result

(* Verification: does (si, seq) detect *every* fault index in [subset]?
   Groups are checked in subset order and the first failing group stops the
   run, so callers should put the most fragile faults first. *)
let verify_required c ~si ~seq ~faults ~subset =
  if Array.length subset = 0 then true
  else begin
    let sw = seq_words c seq in
    let len = Array.length seq in
    let good = good_run c ~si ~seq in
    let engine = Engine2.create c [] in
    let groups = make_groups faults subset in
    let ok = ref true in
    let gi = ref 0 in
    while !ok && !gi < Array.length groups do
      let group = groups.(!gi) in
      Engine2.set_overrides engine group.overrides;
      Engine2.set_state_bools engine si;
      let det = ref 0 in
      let t = ref 0 in
      while !det <> group.lanes && !t < len do
        Engine2.eval engine ~pi_words:sw.(!t);
        det := !det lor po_diff engine good !t;
        Engine2.capture engine;
        incr t
      done;
      if !t = len && !det <> group.lanes then det := !det lor state_diff engine good len;
      if !det land group.lanes <> group.lanes then ok := false;
      incr gi
    done;
    !ok
  end

(* --- 3-valued, unknown initial state ("without scan") ------------------ *)

(* A fault counts as detected only when the fault-free value at a PO is a
   binary value and the faulty value is the complementary binary value. *)
let detect_no_scan ?only c ~seq ~faults =
  let n = Array.length faults in
  let result = Bitvec.create n in
  let subset = subset_of_only n only in
  if Array.length subset = 0 then result
  else begin
    let len = Array.length seq in
    let sw = seq_words c seq in
    let n_po = Circuit.n_outputs c in
    (* Fault-free 3-valued run from the all-X state. *)
    let good = Engine3.create c [] in
    Engine3.set_state_x good;
    let good_po = Array.make len [||] in
    for t = 0 to len - 1 do
      Engine3.eval_binary good ~pi_words:sw.(t);
      good_po.(t) <- Array.init n_po (Engine3.po_word good);
      Engine3.capture good
    done;
    let engine = Engine3.create c [] in
    Array.iter
      (fun group ->
        Engine3.set_overrides engine group.overrides;
        Engine3.set_state_x engine;
        let det = ref 0 in
        let t = ref 0 in
        while !det <> group.lanes && !t < len do
          Engine3.eval_binary engine ~pi_words:sw.(!t);
          for i = 0 to n_po - 1 do
            let gz, go = good_po.(!t).(i) in
            let fz, fo = Engine3.po_word engine i in
            det := !det lor ((gz land fo) lor (go land fz))
          done;
          Engine3.capture engine;
          incr t
        done;
        Word.iter_set
          (fun lane -> Bitvec.set result group.members.(lane))
          (!det land group.lanes))
      (make_groups faults subset);
    result
  end

(* --- Incremental 3-valued co-simulation (for sequence generation) ------ *)

(* Keeps, per fault group, the 3-valued faulty states at the end of the
   sequence built so far, plus the fault-free state; candidate extension
   segments can be evaluated ([peek]) or appended ([commit]) without
   re-simulating the prefix. *)
type inc3 = {
  c3 : Circuit.t;
  faults3 : Fault.t array;
  mutable groups3 : group array;
  mutable engines : Engine3.t array; (* per group, end-of-prefix states *)
  good3 : Engine3.t;
  detected3 : Bitvec.t;
  mutable length : int;
  mutable commits_since_compact : int;
}

let inc3_make_engines c groups =
  Array.map
    (fun g ->
      let e = Engine3.create c g.overrides in
      Engine3.set_state_x e;
      e)
    groups

let inc3_create c faults =
  let subset = all_indices (Array.length faults) in
  let groups3 = make_groups faults subset in
  {
    c3 = c;
    faults3 = faults;
    groups3;
    engines = inc3_make_engines c groups3;
    good3 = (let e = Engine3.create c [] in Engine3.set_state_x e; e);
    detected3 = Bitvec.create (Array.length faults);
    length = 0;
    commits_since_compact = 0;
  }

let inc3_detected t = t.detected3

let inc3_length t = t.length

(* Repack the still-undetected faults into as few groups as possible,
   carrying each faulty machine's 3-valued state into its new lane.  Group
   count tracks the undetected population, which collapses after the first
   mass detection wave — without this, every candidate evaluation would
   keep paying for the full fault list. *)
let inc3_compact t =
  let undetected =
    Array.of_list
      (Bitvec.to_list
         (Bitvec.init (Array.length t.faults3) (fun i -> not (Bitvec.get t.detected3 i))))
  in
  let n_ff = Circuit.n_dffs t.c3 in
  (* Old lane coordinates of every fault index. *)
  let coord = Hashtbl.create 256 in
  Array.iteri
    (fun gi (g : group) ->
      Array.iteri (fun lane fi -> Hashtbl.replace coord fi (gi, lane)) g.members)
    t.groups3;
  let old_states = Array.map Engine3.state_words t.engines in
  let groups = make_groups t.faults3 undetected in
  let engines = inc3_make_engines t.c3 groups in
  Array.iteri
    (fun gi (g : group) ->
      let z = Array.make n_ff 0 and o = Array.make n_ff 0 in
      Array.iteri
        (fun lane fi ->
          let ogi, olane = Hashtbl.find coord fi in
          let oz, oo = old_states.(ogi) in
          for i = 0 to n_ff - 1 do
            if Word.get oz.(i) olane then z.(i) <- Word.set z.(i) lane;
            if Word.get oo.(i) olane then o.(i) <- Word.set o.(i) lane
          done)
        g.members;
      Engine3.set_state_words engines.(gi) ~z ~o)
    groups;
  t.groups3 <- groups;
  t.engines <- engines;
  t.commits_since_compact <- 0

(* Lanes of group [gi] not yet detected. *)
let undetected_lanes t gi =
  let group = t.groups3.(gi) in
  let lanes = ref 0 in
  Array.iteri
    (fun lane fi -> if not (Bitvec.get t.detected3 fi) then lanes := !lanes lor (1 lsl lane))
    group.members;
  !lanes land group.lanes

(* Run [segment] on group [gi] from its current state; returns the mask of
   newly detected lanes.  Mutates the engine's state. *)
let run_segment t gi ~sw ~good_po =
  let n_po = Circuit.n_outputs t.c3 in
  let engine = t.engines.(gi) in
  let want = undetected_lanes t gi in
  let det = ref 0 in
  let len = Array.length sw in
  let t' = ref 0 in
  while !t' < len do
    Engine3.eval_binary engine ~pi_words:sw.(!t');
    if !det land want <> want then
      for i = 0 to n_po - 1 do
        let gz, go = good_po.(!t').(i) in
        let fz, fo = Engine3.po_word engine i in
        det := !det lor ((gz land fo) lor (go land fz))
      done;
    Engine3.capture engine;
    incr t'
  done;
  !det land want

(* Fault-free 3-valued PO trace over a segment from the good machine's
   current state.  Also reports whether any PO is ever binary: while the
   fault-free machine is still fully unknown at the outputs, no fault can
   be detected and the faulty machines need not be simulated at all. *)
let good_segment t sw =
  let n_po = Circuit.n_outputs t.c3 in
  let good_po = Array.make (Array.length sw) [||] in
  let any_known = ref false in
  for u = 0 to Array.length sw - 1 do
    Engine3.eval_binary t.good3 ~pi_words:sw.(u);
    good_po.(u) <-
      Array.init n_po (fun i ->
          let z, o = Engine3.po_word t.good3 i in
          if z lor o <> 0 then any_known := true;
          (z, o));
    Engine3.capture t.good3
  done;
  (good_po, !any_known)

(* Evaluate a candidate segment without committing: number of newly
   detected faults.  Engine states are saved and restored. *)
let inc3_peek t (segment : seq) =
  let sw = seq_words t.c3 segment in
  let saved_good = Engine3.state_words t.good3 in
  let good_po, any_known = good_segment t sw in
  let z, o = saved_good in
  Engine3.set_state_words t.good3 ~z ~o;
  if not any_known then 0
  else begin
    let newly = ref 0 in
    Array.iteri
      (fun gi _ ->
        if undetected_lanes t gi <> 0 then begin
          let saved = Engine3.state_words t.engines.(gi) in
          let d = run_segment t gi ~sw ~good_po in
          newly := !newly + Word.popcount d;
          let z, o = saved in
          Engine3.set_state_words t.engines.(gi) ~z ~o
        end)
      t.groups3;
    !newly
  end

(* Append a segment: update every machine, mark newly detected faults,
   return how many were newly detected. *)
let inc3_commit t (segment : seq) =
  let sw = seq_words t.c3 segment in
  let good_po, _ = good_segment t sw in
  let newly = ref 0 in
  Array.iteri
    (fun gi group ->
      (* Even fully-detected groups must advance their state. *)
      let d = run_segment t gi ~sw ~good_po in
      Word.iter_set
        (fun lane ->
          let fi = group.members.(lane) in
          if not (Bitvec.get t.detected3 fi) then begin
            Bitvec.set t.detected3 fi;
            incr newly
          end)
        d)
    t.groups3;
  t.length <- t.length + Array.length segment;
  t.commits_since_compact <- t.commits_since_compact + 1;
  (* Repack once detections have shrunk the undetected set appreciably. *)
  let undetected_count = Array.length t.faults3 - Bitvec.count t.detected3 in
  let capacity = Array.length t.groups3 * Word.width in
  if
    t.commits_since_compact >= 8
    && capacity > 2 * Word.width
    && undetected_count * 2 < capacity
  then inc3_compact t;
  !newly
