(* Sequential fault simulation of scan tests.

   A scan test (SI, T) loads state SI, applies the PI vectors of T with the
   functional clock, and scans out the final state.  A fault is detected if
   the faulty machine differs from the fault-free machine at a primary
   output at any time unit, or in the final state (observed by scan-out).
   Faults live in the functional logic only; the scan operation itself is
   assumed fault-free (standard full-scan stuck-at assumption).

   Simulation is parallel-fault: up to 62 faulty machines run per word, one
   lane each.  Phase 1's scan-in selection instead runs one fault across 62
   *candidate initial states* per word; both modes share the same engine.

   On top of the word-level parallelism, every entry point takes an
   optional [pool] (see Asc_util.Domain_pool): fault groups (or, in
   [candidate_detections], fault indices) are split into contiguous chunks
   and simulated on worker domains.  Each chunk owns a private engine — no
   simulation state is shared between domains; the fault-free trace and the
   packed PI words are shared read-only.  Chunks report results into
   chunk-indexed slots which the submitting domain merges in index order,
   so detection bit vectors are bit-identical for any domain count.

   [profile] additionally records, per fault, the earliest PO detection
   time and the set of time units at which the faulty state differs — the
   single-pass data from which Phase 1 picks its scan-out time and the
   vector-omission procedure re-verifies suffixes.

   Every entry point also takes an optional [budget] (Asc_util.Budget),
   polled once per fault group: a fired deadline or cancellation raises
   [Budget.Exhausted] at the next group boundary (through the pool's
   fail-fast path when domains are involved), never mid-group. *)

open Asc_util
module Circuit = Asc_netlist.Circuit
module Engine2 = Asc_sim.Engine2
module Engine3 = Asc_sim.Engine3
module Kernel = Asc_sim.Kernel
module Sim_kernel = Asc_sim.Sim_kernel

type seq = bool array array (* L vectors, each of n_pis bools *)

(* Splat PI words, one array per time unit. *)
let seq_words c (seq : seq) =
  let n_pis = Circuit.n_inputs c in
  Array.map
    (fun vec ->
      if Array.length vec <> n_pis then invalid_arg "Seq_fsim: vector arity mismatch";
      Array.map Word.splat vec)
    seq

(* Fault-free trace: PO words per time unit and state words per boundary.
   [states.(t)] is the state *entering* time unit [t]; [states.(L)] is the
   final (scan-out) state. *)
type good = { po : int array array; states : int array array }

let good_run c ~si ~seq =
  let sw = seq_words c seq in
  let len = Array.length seq in
  let engine = Engine2.create c [] in
  Engine2.set_state_bools engine si;
  let n_po = Circuit.n_outputs c and n_ff = Circuit.n_dffs c in
  let po = Array.make len [||] in
  let states = Array.make (len + 1) [||] in
  states.(0) <- Engine2.state_words engine;
  for t = 0 to len - 1 do
    Engine2.eval engine ~pi_words:sw.(t);
    po.(t) <- Array.init n_po (Engine2.po_word engine);
    Engine2.capture engine;
    states.(t + 1) <- Array.init n_ff (Engine2.state_word engine)
  done;
  { po; states }

let good_final_state c (good : good) =
  let words = good.states.(Array.length good.states - 1) in
  Array.init (Circuit.n_dffs c) (fun i -> words.(i) land 1 = 1)

(* Group faults 62 to a word. *)
type group = { members : int array; lanes : int; overrides : Asc_sim.Override.t list }

let make_groups faults subset =
  let total = Array.length subset in
  let n_groups = (total + Word.width - 1) / Word.width in
  Array.init n_groups (fun gi ->
      let base = gi * Word.width in
      let count = min Word.width (total - base) in
      let members = Array.sub subset base count in
      let overrides =
        List.init count (fun lane ->
            Fault.to_override faults.(members.(lane)) ~lanes:(1 lsl lane))
      in
      let lanes = if count = Word.width then Word.mask else (1 lsl count) - 1 in
      { members; lanes; overrides })

let all_indices n = Array.init n (fun i -> i)

let subset_of_only n = function
  | None -> all_indices n
  | Some mask -> Array.of_list (Bitvec.to_list mask)

(* --- Shared good-machine trace cache ----------------------------------- *)

(* Compaction re-simulates the same scan test (si, seq) many times against
   different fault subsets — detect, then profile, then verify — and
   Phase 1 re-runs the same candidate scan-in groups.  The fault-free
   trace depends only on (circuit, scan-in, seq), so the levelized path
   computes it once and shares it read-only: across calls through this
   cache, and across domains because only the submitting domain ever
   writes it.

   Scan-test traces carry one faulty-machine test per call, so their good
   words are splat and stored compactly (one byte per gate per cycle);
   candidate traces (lanes = candidate scan-in states) store full words.
   The cache is process-global, mutex-protected and LRU-bounded by a byte
   budget; circuits are keyed by physical identity, so a rebuilt netlist
   never aliases a stale trace.  Only the levelized kernel uses it — the
   reference path recomputes traces, keeping the escape hatch honest. *)
module Trace_cache = struct
  type flavor = Splat of bool array | Packed of int array

  type key = { flavor : flavor; seq : seq }

  type data =
    | Bits of Bytes.t array (* per cycle, one byte per gate *)
    | Words of int array array (* per cycle, one word per gate *)

  let lock = Mutex.create ()

  let max_bytes = 32 * 1024 * 1024

  (* MRU-first: (circuit, key, data, size in bytes). *)
  let entries : (Circuit.t * key * data * int) list ref = ref []

  let clear () = Mutex.protect lock (fun () -> entries := [])

  let find c key =
    Mutex.protect lock (fun () ->
        let rec go acc = function
          | [] -> None
          | ((c', k', d, _) as e) :: rest when c' == c && k' = key ->
              entries := e :: List.rev_append acc rest;
              Some d
          | e :: rest -> go (e :: acc) rest
        in
        go [] !entries)

  let add c key data size =
    Mutex.protect lock (fun () ->
        let used = ref 0 in
        entries :=
          List.filter
            (fun (_, _, _, sz) ->
              if !used = 0 || !used + sz <= max_bytes then begin
                used := !used + sz;
                true
              end
              else false)
            ((c, key, data, size) :: !entries))
end

let clear_trace_cache = Trace_cache.clear

let deep_copy_seq (s : seq) = Array.map Array.copy s

(* Fault-free levelized run recording every gate's good bit per cycle. *)
let good_trace_bits k c ~sw ~si ~len =
  let n = Circuit.n_gates c in
  let v = Array.make n 0 in
  let state = Array.map Word.splat si in
  let bits = Array.init len (fun _ -> Bytes.create n) in
  for t = 0 to len - 1 do
    Kernel.good_cycle k ~pi_words:sw.(t) ~state ~v;
    let b = bits.(t) in
    for g = 0 to n - 1 do
      Bytes.unsafe_set b g (if Array.unsafe_get v g land 1 = 1 then '\001' else '\000')
    done;
    Kernel.good_capture k ~v ~state
  done;
  bits

(* Good bits for every gate at every time unit of the scan test
   (si, seq), through the cache.  The byte rows are handed to the
   kernel's [_bits] entry points as-is — no expansion, and the whole
   trace stays cache-resident.  [Good_cycles] counts only computed
   (miss) cycles. *)
let good_gb tel k c ~si ~sw ~seq ~len =
  let n = Circuit.n_gates c in
  let lookup = { Trace_cache.flavor = Trace_cache.Splat si; seq } in
  match Trace_cache.find c lookup with
  | Some (Trace_cache.Bits bits) ->
      Telemetry.incr tel Telemetry.Trace_cache_hits;
      bits
  | Some (Trace_cache.Words _) -> assert false (* flavors never collide *)
  | None ->
      Telemetry.incr tel Telemetry.Trace_cache_misses;
      Telemetry.add tel Telemetry.Good_cycles len;
      let bits = good_trace_bits k c ~sw ~si ~len in
      Trace_cache.add c
        { Trace_cache.flavor = Trace_cache.Splat (Array.copy si);
          seq = deep_copy_seq seq }
        (Trace_cache.Bits bits) (len * n);
      bits

(* Good word trace of one packed candidate group (lanes = candidates). *)
let good_cand_gw tel k c ~init_words ~sw ~seq ~len =
  let n = Circuit.n_gates c in
  let lookup = { Trace_cache.flavor = Trace_cache.Packed init_words; seq } in
  match Trace_cache.find c lookup with
  | Some (Trace_cache.Words ws) ->
      Telemetry.incr tel Telemetry.Trace_cache_hits;
      ws
  | Some (Trace_cache.Bits _) -> assert false
  | None ->
      Telemetry.incr tel Telemetry.Trace_cache_misses;
      Telemetry.add tel Telemetry.Good_cycles len;
      let v = Array.make n 0 in
      let state = Array.copy init_words in
      let ws =
        Array.init len (fun t ->
            Kernel.good_cycle k ~pi_words:sw.(t) ~state ~v;
            let snapshot = Array.copy v in
            Kernel.good_capture k ~v ~state;
            snapshot)
      in
      Trace_cache.add c
        { Trace_cache.flavor = Trace_cache.Packed (Array.copy init_words);
          seq = deep_copy_seq seq }
        (Trace_cache.Words ws)
        (len * n * 8);
      ws

(* Levelized detection of one fault group: same loop structure (and so
   the same early exit and detection words) as [detect_group], with the
   per-cycle work cone-limited by the kernel.  Lanes already detected
   are pruned from the propagation — their detection bit is a monotonic
   OR, so the result word is unchanged while the cone shrinks to the
   still-undetected faults. *)
let detect_group_lv k ~gb ~len ~cycles (group : group) =
  Kernel.set_overrides k group.overrides;
  Kernel.reset k;
  let det = ref 0 in
  let t = ref 0 in
  while !det <> group.lanes && !t < len do
    Kernel.cycle_bits k ~prune:!det ~gb:gb.(!t);
    det := !det lor Kernel.po_diff k;
    Kernel.finish_cycle_bits k ~gb:gb.(!t);
    incr t
  done;
  cycles := !cycles + !t;
  if !t = len && !det <> group.lanes then det := !det lor Kernel.state_diff_word k;
  !det land group.lanes

(* Accumulate PO differences of one evaluated cycle. *)
let po_diff engine (good : good) t =
  let diff = ref 0 in
  let gpo = good.po.(t) in
  for i = 0 to Array.length gpo - 1 do
    diff := !diff lor (Engine2.po_word engine i lxor gpo.(i))
  done;
  !diff

let state_diff engine (good : good) boundary =
  let diff = ref 0 in
  let gst = good.states.(boundary) in
  for i = 0 to Array.length gst - 1 do
    diff := !diff lor (Engine2.state_word engine i lxor gst.(i))
  done;
  !diff

(* Detection word of one fault group over the whole test, with an early
   exit once every lane has seen a PO difference; the scan-out (final
   state) difference is folded in only when the early exit did not fire.
   [cycles] accumulates the evaluated time units (telemetry). *)
let detect_group engine ~si ~sw ~good ~len ~cycles (group : group) =
  Engine2.set_overrides engine group.overrides;
  Engine2.set_state_bools engine si;
  let det = ref 0 in
  let t = ref 0 in
  while !det <> group.lanes && !t < len do
    Engine2.eval engine ~pi_words:sw.(!t);
    det := !det lor po_diff engine good !t;
    Engine2.capture engine;
    incr t
  done;
  cycles := !cycles + !t;
  if !t = len && !det <> group.lanes then det := !det lor state_diff engine good len;
  !det land group.lanes

(* Chunked parallel sweep over [groups]: each chunk simulates a contiguous
   group range on its own engine (built by [make_engine] — an Engine2 on
   the reference path, a Kernel on the levelized one) and fills its own
   result slot; [merge] is then applied chunk by chunk on the submitting
   domain, in index order. *)
let sweep_groups ?pool ~make_engine groups ~chunk ~merge ~empty =
  let n = Array.length groups in
  let ranges = Domain_pool.split ~n ~pieces:(Domain_pool.chunk_count pool n) in
  let parts = Array.make (Array.length ranges) empty in
  Domain_pool.run_opt pool (Array.length ranges) (fun ci ->
      parts.(ci) <- chunk (make_engine ()) ranges.(ci));
  Array.iteri (fun ci part -> merge ranges.(ci) part) parts

(* Which of [faults] does the scan test (si, seq) detect?  [only] restricts
   the simulated fault indices. *)
let detect ?pool ?(budget = Budget.unlimited) ?tel ?only c ~si ~seq ~faults =
  let n = Array.length faults in
  let result = Bitvec.create n in
  let subset = subset_of_only n only in
  if Array.length subset = 0 then result
  else
    Telemetry.span tel "fsim:detect"
      ~args:
        [
          ("faults", string_of_int (Array.length subset));
          ("len", string_of_int (Array.length seq));
        ]
      (fun () ->
        let sw = seq_words c seq in
        let len = Array.length seq in
        let groups = make_groups faults subset in
        let merge _range hits = List.iter (Bitvec.set result) hits in
        (match Sim_kernel.current () with
        | Sim_kernel.Reference ->
            let good = good_run c ~si ~seq in
            Telemetry.add tel Telemetry.Good_cycles len;
            let chunk engine (start, count) =
              let hits = ref [] and nhits = ref 0 and lanes = ref 0 and cycles = ref 0 in
              for gi = start to start + count - 1 do
                Budget.check budget;
                let group = groups.(gi) in
                let d = detect_group engine ~si ~sw ~good ~len ~cycles group in
                lanes := !lanes + Array.length group.members;
                Word.iter_set
                  (fun lane ->
                    hits := group.members.(lane) :: !hits;
                    incr nhits)
                  d
              done;
              Telemetry.add tel Telemetry.Faults_simulated !lanes;
              Telemetry.add tel Telemetry.Faulty_cycles !cycles;
              Telemetry.add tel Telemetry.Fault_detections !nhits;
              Telemetry.add tel Telemetry.Budget_polls count;
              !hits
            in
            sweep_groups ?pool
              ~make_engine:(fun () -> Engine2.create c [])
              groups ~chunk ~empty:[] ~merge
        | Sim_kernel.Levelized ->
            let gb = good_gb tel (Kernel.create c) c ~si ~sw ~seq ~len in
            let chunk k (start, count) =
              let hits = ref [] and nhits = ref 0 and lanes = ref 0 and cycles = ref 0 in
              for gi = start to start + count - 1 do
                Budget.check budget;
                let group = groups.(gi) in
                let d = detect_group_lv k ~gb ~len ~cycles group in
                lanes := !lanes + Array.length group.members;
                Word.iter_set
                  (fun lane ->
                    hits := group.members.(lane) :: !hits;
                    incr nhits)
                  d
              done;
              Telemetry.add tel Telemetry.Faults_simulated !lanes;
              Telemetry.add tel Telemetry.Faulty_cycles !cycles;
              Telemetry.add tel Telemetry.Fault_detections !nhits;
              Telemetry.add tel Telemetry.Budget_polls count;
              Telemetry.add tel Telemetry.Cone_gates_evaluated (Kernel.take_evaluated k);
              !hits
            in
            sweep_groups ?pool
              ~make_engine:(fun () -> Kernel.create c)
              groups ~chunk ~empty:[] ~merge);
        result)

(* Detection-time profile over a fault subset.

   [po_time.(k)] is the earliest time unit at which subset fault [k]
   differs at a PO ([max_int] if never); [state_diff_at.(k)] has bit [t]
   set when the faulty state differs from the fault-free state after the
   vector of time unit [t] — i.e. scanning out at time [t] would detect
   the fault. *)
type profile = {
  subset : int array;
  po_time : int array;
  state_diff_at : Bitvec.t array;
}

let profile ?pool ?(budget = Budget.unlimited) ?tel c ~si ~seq ~faults ~subset =
  Telemetry.span tel "fsim:profile"
    ~args:
      [
        ("faults", string_of_int (Array.length subset));
        ("len", string_of_int (Array.length seq));
      ]
  @@ fun () ->
  let len = Array.length seq in
  let sw = seq_words c seq in
  let total = Array.length subset in
  let po_time = Array.make total max_int in
  let state_diff_at = Array.make total (Bitvec.create len) in
  let groups = make_groups faults subset in
  let merge (gstart, _) (po, sdiff) =
    let base0 = gstart * Word.width in
    Array.blit po 0 po_time base0 (Array.length po);
    Array.blit sdiff 0 state_diff_at base0 (Array.length sdiff)
  in
  (* A chunk covers subset positions [gstart*W, gstart*W + span) and
     returns its profile slices; the submitter blits them into place. *)
  (match Sim_kernel.current () with
  | Sim_kernel.Reference ->
      let good = good_run c ~si ~seq in
      Telemetry.add tel Telemetry.Good_cycles len;
      let chunk engine (gstart, gcount) =
        let base0 = gstart * Word.width in
        let span = min total ((gstart + gcount) * Word.width) - base0 in
        let po = Array.make span max_int in
        let sdiff = Array.init span (fun _ -> Bitvec.create len) in
        Telemetry.add tel Telemetry.Faults_simulated span;
        Telemetry.add tel Telemetry.Faulty_cycles (gcount * len);
        Telemetry.add tel Telemetry.Budget_polls gcount;
        for gi = gstart to gstart + gcount - 1 do
          Budget.check budget;
          let group = groups.(gi) in
          let base = (gi * Word.width) - base0 in
          Engine2.set_overrides engine group.overrides;
          Engine2.set_state_bools engine si;
          let po_seen = ref 0 in
          for t = 0 to len - 1 do
            Engine2.eval engine ~pi_words:sw.(t);
            let fresh = po_diff engine good t land group.lanes land lnot !po_seen in
            Word.iter_set (fun lane -> po.(base + lane) <- t) fresh;
            po_seen := !po_seen lor fresh;
            Engine2.capture engine;
            let sd = state_diff engine good (t + 1) land group.lanes in
            Word.iter_set (fun lane -> Bitvec.set sdiff.(base + lane) t) sd
          done
        done;
        (po, sdiff)
      in
      sweep_groups ?pool
        ~make_engine:(fun () -> Engine2.create c [])
        groups ~chunk ~empty:([||], [||]) ~merge
  | Sim_kernel.Levelized ->
      let gb = good_gb tel (Kernel.create c) c ~si ~sw ~seq ~len in
      let chunk k (gstart, gcount) =
        let base0 = gstart * Word.width in
        let span = min total ((gstart + gcount) * Word.width) - base0 in
        let po = Array.make span max_int in
        let sdiff = Array.init span (fun _ -> Bitvec.create len) in
        Telemetry.add tel Telemetry.Faults_simulated span;
        Telemetry.add tel Telemetry.Faulty_cycles (gcount * len);
        Telemetry.add tel Telemetry.Budget_polls gcount;
        for gi = gstart to gstart + gcount - 1 do
          Budget.check budget;
          let group = groups.(gi) in
          let base = (gi * Word.width) - base0 in
          Kernel.set_overrides k group.overrides;
          Kernel.reset k;
          let po_seen = ref 0 in
          for t = 0 to len - 1 do
            Kernel.cycle_bits k ~gb:gb.(t);
            let fresh = Kernel.po_diff k land group.lanes land lnot !po_seen in
            Word.iter_set (fun lane -> po.(base + lane) <- t) fresh;
            po_seen := !po_seen lor fresh;
            Kernel.finish_cycle_bits k ~gb:gb.(t);
            let sd = Kernel.state_diff_word k land group.lanes in
            Word.iter_set (fun lane -> Bitvec.set sdiff.(base + lane) t) sd
          done
        done;
        Telemetry.add tel Telemetry.Cone_gates_evaluated (Kernel.take_evaluated k);
        (po, sdiff)
      in
      sweep_groups ?pool
        ~make_engine:(fun () -> Kernel.create c)
        groups ~chunk ~empty:([||], [||]) ~merge);
  { subset; po_time; state_diff_at }

(* Faults detected by the test truncated to end (and scan out) at time
   [u]: PO detection at a time <= u, or state difference at u. *)
let profile_detected_at p ~u =
  let det = Bitvec.create (Array.length p.subset) in
  Array.iteri
    (fun k _ ->
      if p.po_time.(k) <= u || Bitvec.get p.state_diff_at.(k) u then Bitvec.set det k)
    p.subset;
  det

(* Candidate scan-in evaluation (Phase 1, Step 2): rows are candidate
   scan-in states, columns are fault indices; entry set when the test
   (candidate, seq) detects the fault.  One fault is simulated at a time
   across up to 62 candidate initial states per word.

   Parallel decomposition: the candidate packing and the fault-free runs
   (one per candidate group) are cheap and stay on the submitting domain;
   the [subset] faults — the heavy dimension — are chunked across the
   pool, each chunk simulating its faults against every candidate group on
   a private engine.  Chunks return raw detection words; the submitter
   alone writes the result matrix. *)
type cand_group = {
  cbase : int; (* index of the first candidate of this group *)
  cfull : int; (* mask of lanes carrying a real candidate *)
  init_words : int array; (* packed candidate states, per DFF *)
  good_po : int array array; (* fault-free PO words per time unit *)
  good_final : int array; (* fault-free final state words *)
}

let candidate_detections ?pool ?(budget = Budget.unlimited) ?tel c ~sis ~seq ~faults ~subset =
  Telemetry.span tel "fsim:candidates"
    ~args:
      [
        ("candidates", string_of_int (Array.length sis));
        ("faults", string_of_int (Array.length subset));
      ]
  @@ fun () ->
  let n_candidates = Array.length sis in
  let n_ff = Circuit.n_dffs c in
  let n_po = Circuit.n_outputs c in
  let len = Array.length seq in
  let sw = seq_words c seq in
  let result = Bitmat.create n_candidates (Array.length faults) in
  let n_cgroups = (n_candidates + Word.width - 1) / Word.width in
  (* Pack the candidate states: lane = candidate (cbase + lane). *)
  let pack_group cg =
    let cbase = cg * Word.width in
    let count = min Word.width (n_candidates - cbase) in
    let cfull = if count = Word.width then Word.mask else (1 lsl count) - 1 in
    let init_words = Array.make n_ff 0 in
    for lane = 0 to count - 1 do
      let si = sis.(cbase + lane) in
      if Array.length si <> n_ff then invalid_arg "Seq_fsim.candidate_detections: state arity";
      for i = 0 to n_ff - 1 do
        if si.(i) then init_words.(i) <- Word.set init_words.(i) lane
      done
    done;
    (cbase, cfull, init_words)
  in
  (* Chunk the [subset] faults — the heavy dimension — across the pool;
     each chunk returns raw per-(fault, cgroup) detection words and the
     submitter alone writes the result matrix, in index order. *)
  let sweep_fault_chunks ~make_engine ~detect_cand ~flush cgroup_meta =
    let nf = Array.length subset in
    let ranges = Domain_pool.split ~n:nf ~pieces:(Domain_pool.chunk_count pool nf) in
    let parts = Array.make (Array.length ranges) [||] in
    Domain_pool.run_opt pool (Array.length ranges) (fun ci ->
        let start, count = ranges.(ci) in
        let engine = make_engine () in
        let dets = Array.make_matrix count n_cgroups 0 in
        let cycles = ref 0 and nhits = ref 0 in
        for k = 0 to count - 1 do
          Budget.check budget;
          let fi = subset.(start + k) in
          for cgi = 0 to n_cgroups - 1 do
            let d = detect_cand engine ~cycles fi cgi in
            nhits := !nhits + Word.popcount d;
            dets.(k).(cgi) <- d
          done
        done;
        Telemetry.add tel Telemetry.Faults_simulated count;
        Telemetry.add tel Telemetry.Faulty_cycles !cycles;
        Telemetry.add tel Telemetry.Fault_detections !nhits;
        Telemetry.add tel Telemetry.Budget_polls count;
        flush engine;
        parts.(ci) <- dets);
    Array.iteri
      (fun ci dets ->
        let start, _ = ranges.(ci) in
        Array.iteri
          (fun k per_cg ->
            let fi = subset.(start + k) in
            Array.iteri
              (fun cgi det ->
                let cbase, _, _ = cgroup_meta.(cgi) in
                Word.iter_set (fun lane -> Bitmat.set result (cbase + lane) fi) det)
              per_cg)
          dets)
      parts
  in
  (match Sim_kernel.current () with
  | Sim_kernel.Reference ->
      let engine0 = Engine2.create c [] in
      let meta = Array.init n_cgroups pack_group in
      let cgroups =
        Array.map
          (fun (cbase, cfull, init_words) ->
            (* Fault-free machines for all candidates at once. *)
            Engine2.set_overrides engine0 [];
            Engine2.set_state_words engine0 init_words;
            let good_po = Array.make len [||] in
            for t = 0 to len - 1 do
              Engine2.eval engine0 ~pi_words:sw.(t);
              good_po.(t) <- Array.init n_po (Engine2.po_word engine0);
              Engine2.capture engine0
            done;
            let good_final = Array.init n_ff (Engine2.state_word engine0) in
            { cbase; cfull; init_words; good_po; good_final })
          meta
      in
      Telemetry.add tel Telemetry.Good_cycles (n_cgroups * len);
      (* One fault at a time, injected in every candidate lane.  [cycles]
         accumulates evaluated time units for the chunk's telemetry. *)
      let detect_cand engine ~cycles fi cgi =
        let cg = cgroups.(cgi) in
        Engine2.set_overrides engine [ Fault.to_override faults.(fi) ~lanes:Word.mask ];
        Engine2.set_state_words engine cg.init_words;
        let det = ref 0 in
        let t = ref 0 in
        while !det <> cg.cfull && !t < len do
          Engine2.eval engine ~pi_words:sw.(!t);
          let gpo = cg.good_po.(!t) in
          for i = 0 to n_po - 1 do
            det := !det lor (Engine2.po_word engine i lxor gpo.(i))
          done;
          Engine2.capture engine;
          incr t
        done;
        cycles := !cycles + !t;
        if !t = len && !det <> cg.cfull then
          for i = 0 to n_ff - 1 do
            det := !det lor (Engine2.state_word engine i lxor cg.good_final.(i))
          done;
        !det land cg.cfull
      in
      sweep_fault_chunks
        ~make_engine:(fun () -> Engine2.create c [])
        ~detect_cand
        ~flush:(fun _ -> ())
        meta
  | Sim_kernel.Levelized ->
      let k0 = Kernel.create c in
      let meta = Array.init n_cgroups pack_group in
      (* Per-group fault-free word traces, computed (or recalled) on the
         submitter and shared read-only with every chunk. *)
      let traces =
        Array.map
          (fun (_, _, init_words) -> good_cand_gw tel k0 c ~init_words ~sw ~seq ~len)
          meta
      in
      let detect_cand k ~cycles fi cgi =
        let _, cfull, _ = meta.(cgi) in
        let gwt = traces.(cgi) in
        Kernel.set_overrides k [ Fault.to_override faults.(fi) ~lanes:Word.mask ];
        Kernel.reset k;
        let det = ref 0 in
        let t = ref 0 in
        while !det <> cfull && !t < len do
          Kernel.cycle k ~prune:!det ~gw:gwt.(!t);
          det := !det lor Kernel.po_diff k;
          Kernel.finish_cycle k ~gw:gwt.(!t);
          incr t
        done;
        cycles := !cycles + !t;
        if !t = len && !det <> cfull then det := !det lor Kernel.state_diff_word k;
        !det land cfull
      in
      sweep_fault_chunks
        ~make_engine:(fun () -> Kernel.create c)
        ~detect_cand
        ~flush:(fun k ->
          Telemetry.add tel Telemetry.Cone_gates_evaluated (Kernel.take_evaluated k))
        meta);
  result

(* Verification: does (si, seq) detect *every* fault index in [subset]?
   Any failing group stops the sweep: sequentially via the loop condition,
   across domains via a shared flag checked between groups. *)
let verify_required ?pool ?(budget = Budget.unlimited) ?tel c ~si ~seq ~faults ~subset =
  if Array.length subset = 0 then true
  else
    Telemetry.span tel "fsim:verify"
      ~args:[ ("faults", string_of_int (Array.length subset)) ]
      (fun () ->
        let sw = seq_words c seq in
        let len = Array.length seq in
        let groups = make_groups faults subset in
        let failed = Atomic.make false in
        (match Sim_kernel.current () with
        | Sim_kernel.Reference ->
            let good = good_run c ~si ~seq in
            Telemetry.add tel Telemetry.Good_cycles len;
            let chunk engine (start, count) =
              let gi = ref start in
              let lanes = ref 0 and cycles = ref 0 and polls = ref 0 in
              while (not (Atomic.get failed)) && !gi < start + count do
                Budget.check budget;
                incr polls;
                let group = groups.(!gi) in
                let d = detect_group engine ~si ~sw ~good ~len ~cycles group in
                lanes := !lanes + Array.length group.members;
                if d <> group.lanes then Atomic.set failed true;
                incr gi
              done;
              Telemetry.add tel Telemetry.Faults_simulated !lanes;
              Telemetry.add tel Telemetry.Faulty_cycles !cycles;
              Telemetry.add tel Telemetry.Budget_polls !polls
            in
            sweep_groups ?pool
              ~make_engine:(fun () -> Engine2.create c [])
              groups ~chunk ~empty:()
              ~merge:(fun _ () -> ())
        | Sim_kernel.Levelized ->
            let gb = good_gb tel (Kernel.create c) c ~si ~sw ~seq ~len in
            let chunk k (start, count) =
              let gi = ref start in
              let lanes = ref 0 and cycles = ref 0 and polls = ref 0 in
              while (not (Atomic.get failed)) && !gi < start + count do
                Budget.check budget;
                incr polls;
                let group = groups.(!gi) in
                let d = detect_group_lv k ~gb ~len ~cycles group in
                lanes := !lanes + Array.length group.members;
                if d <> group.lanes then Atomic.set failed true;
                incr gi
              done;
              Telemetry.add tel Telemetry.Faults_simulated !lanes;
              Telemetry.add tel Telemetry.Faulty_cycles !cycles;
              Telemetry.add tel Telemetry.Budget_polls !polls;
              Telemetry.add tel Telemetry.Cone_gates_evaluated (Kernel.take_evaluated k)
            in
            sweep_groups ?pool
              ~make_engine:(fun () -> Kernel.create c)
              groups ~chunk ~empty:()
              ~merge:(fun _ () -> ()));
        not (Atomic.get failed))

(* --- 3-valued, unknown initial state ("without scan") ------------------ *)

(* A fault counts as detected only when the fault-free value at a PO is a
   binary value and the faulty value is the complementary binary value. *)
let detect_no_scan ?pool ?(budget = Budget.unlimited) ?tel ?only c ~seq ~faults =
  let n = Array.length faults in
  let result = Bitvec.create n in
  let subset = subset_of_only n only in
  if Array.length subset = 0 then result
  else
    Telemetry.span tel "fsim:detect-no-scan"
      ~args:
        [
          ("faults", string_of_int (Array.length subset));
          ("len", string_of_int (Array.length seq));
        ]
      (fun () ->
        let len = Array.length seq in
        let sw = seq_words c seq in
        let n_po = Circuit.n_outputs c in
        (* Fault-free 3-valued run from the all-X state. *)
        let good = Engine3.create c [] in
        Engine3.set_state_x good;
        let good_po = Array.make len [||] in
        for t = 0 to len - 1 do
          Engine3.eval_binary good ~pi_words:sw.(t);
          good_po.(t) <- Array.init n_po (Engine3.po_word good);
          Engine3.capture good
        done;
        Telemetry.add tel Telemetry.Good_cycles len;
        let groups = make_groups faults subset in
        let detect_group3 engine ~cycles (group : group) =
          Engine3.set_overrides engine group.overrides;
          Engine3.set_state_x engine;
          let det = ref 0 in
          let t = ref 0 in
          while !det <> group.lanes && !t < len do
            Engine3.eval_binary engine ~pi_words:sw.(!t);
            for i = 0 to n_po - 1 do
              let gz, go = good_po.(!t).(i) in
              let fz, fo = Engine3.po_word engine i in
              det := !det lor ((gz land fo) lor (go land fz))
            done;
            Engine3.capture engine;
            incr t
          done;
          cycles := !cycles + !t;
          !det land group.lanes
        in
        let ng = Array.length groups in
        let ranges = Domain_pool.split ~n:ng ~pieces:(Domain_pool.chunk_count pool ng) in
        let parts = Array.make (Array.length ranges) [] in
        Domain_pool.run_opt pool (Array.length ranges) (fun ci ->
            let start, count = ranges.(ci) in
            let engine = Engine3.create c [] in
            let hits = ref [] and nhits = ref 0 and lanes = ref 0 and cycles = ref 0 in
            for gi = start to start + count - 1 do
              Budget.check budget;
              let group = groups.(gi) in
              lanes := !lanes + Array.length group.members;
              Word.iter_set
                (fun lane ->
                  hits := group.members.(lane) :: !hits;
                  incr nhits)
                (detect_group3 engine ~cycles group)
            done;
            Telemetry.add tel Telemetry.Faults_simulated !lanes;
            Telemetry.add tel Telemetry.Faulty_cycles !cycles;
            Telemetry.add tel Telemetry.Fault_detections !nhits;
            Telemetry.add tel Telemetry.Budget_polls count;
            parts.(ci) <- !hits);
        Array.iter (List.iter (Bitvec.set result)) parts;
        result)

(* --- Incremental 3-valued co-simulation (for sequence generation) ------ *)

(* Keeps, per fault group, the 3-valued faulty states at the end of the
   sequence built so far, plus the fault-free state; candidate extension
   segments can be evaluated ([peek]) or appended ([commit]) without
   re-simulating the prefix. *)
type inc3 = {
  c3 : Circuit.t;
  faults3 : Fault.t array;
  mutable groups3 : group array;
  mutable engines : Engine3.t array; (* per group, end-of-prefix states *)
  good3 : Engine3.t;
  detected3 : Bitvec.t;
  mutable length : int;
  mutable commits_since_compact : int;
}

let inc3_make_engines c groups =
  Array.map
    (fun g ->
      let e = Engine3.create c g.overrides in
      Engine3.set_state_x e;
      e)
    groups

let inc3_create c faults =
  let subset = all_indices (Array.length faults) in
  let groups3 = make_groups faults subset in
  {
    c3 = c;
    faults3 = faults;
    groups3;
    engines = inc3_make_engines c groups3;
    good3 = (let e = Engine3.create c [] in Engine3.set_state_x e; e);
    detected3 = Bitvec.create (Array.length faults);
    length = 0;
    commits_since_compact = 0;
  }

let inc3_detected t = t.detected3

let inc3_length t = t.length

(* Repack the still-undetected faults into as few groups as possible,
   carrying each faulty machine's 3-valued state into its new lane.  Group
   count tracks the undetected population, which collapses after the first
   mass detection wave — without this, every candidate evaluation would
   keep paying for the full fault list. *)
let inc3_compact t =
  let undetected =
    Array.of_list
      (Bitvec.to_list
         (Bitvec.init (Array.length t.faults3) (fun i -> not (Bitvec.get t.detected3 i))))
  in
  let n_ff = Circuit.n_dffs t.c3 in
  (* Old lane coordinates of every fault index. *)
  let coord = Hashtbl.create 256 in
  Array.iteri
    (fun gi (g : group) ->
      Array.iteri (fun lane fi -> Hashtbl.replace coord fi (gi, lane)) g.members)
    t.groups3;
  let old_states = Array.map Engine3.state_words t.engines in
  let groups = make_groups t.faults3 undetected in
  let engines = inc3_make_engines t.c3 groups in
  Array.iteri
    (fun gi (g : group) ->
      let z = Array.make n_ff 0 and o = Array.make n_ff 0 in
      Array.iteri
        (fun lane fi ->
          let ogi, olane = Hashtbl.find coord fi in
          let oz, oo = old_states.(ogi) in
          for i = 0 to n_ff - 1 do
            if Word.get oz.(i) olane then z.(i) <- Word.set z.(i) lane;
            if Word.get oo.(i) olane then o.(i) <- Word.set o.(i) lane
          done)
        g.members;
      Engine3.set_state_words engines.(gi) ~z ~o)
    groups;
  t.groups3 <- groups;
  t.engines <- engines;
  t.commits_since_compact <- 0

(* Lanes of group [gi] not yet detected. *)
let undetected_lanes t gi =
  let group = t.groups3.(gi) in
  let lanes = ref 0 in
  Array.iteri
    (fun lane fi -> if not (Bitvec.get t.detected3 fi) then lanes := !lanes lor (1 lsl lane))
    group.members;
  !lanes land group.lanes

(* Run [segment] on group [gi] from its current state; returns the mask of
   newly detected lanes.  Mutates the engine's state. *)
let run_segment t gi ~sw ~good_po =
  let n_po = Circuit.n_outputs t.c3 in
  let engine = t.engines.(gi) in
  let want = undetected_lanes t gi in
  let det = ref 0 in
  let len = Array.length sw in
  let t' = ref 0 in
  while !t' < len do
    Engine3.eval_binary engine ~pi_words:sw.(!t');
    if !det land want <> want then
      for i = 0 to n_po - 1 do
        let gz, go = good_po.(!t').(i) in
        let fz, fo = Engine3.po_word engine i in
        det := !det lor ((gz land fo) lor (go land fz))
      done;
    Engine3.capture engine;
    incr t'
  done;
  !det land want

(* Fault-free 3-valued PO trace over a segment from the good machine's
   current state.  Also reports whether any PO is ever binary: while the
   fault-free machine is still fully unknown at the outputs, no fault can
   be detected and the faulty machines need not be simulated at all. *)
let good_segment t sw =
  let n_po = Circuit.n_outputs t.c3 in
  let good_po = Array.make (Array.length sw) [||] in
  let any_known = ref false in
  for u = 0 to Array.length sw - 1 do
    Engine3.eval_binary t.good3 ~pi_words:sw.(u);
    good_po.(u) <-
      Array.init n_po (fun i ->
          let z, o = Engine3.po_word t.good3 i in
          if z lor o <> 0 then any_known := true;
          (z, o));
    Engine3.capture t.good3
  done;
  (good_po, !any_known)

(* Chunked parallel sweep over the incremental engines.  Each chunk owns a
   contiguous group range: group [gi]'s engine is touched only by the task
   that owns [gi], the good-machine PO trace and [detected3] are read-only
   during the sweep, and per-group results land in group-indexed slots the
   submitter merges in index order — so peek counts and commit detections
   are bit-identical for any domain count. *)
let inc3_sweep ?pool t ~(f : int -> int) =
  let n_groups = Array.length t.groups3 in
  let dets = Array.make n_groups 0 in
  let ranges =
    Domain_pool.split ~n:n_groups ~pieces:(Domain_pool.chunk_count pool n_groups)
  in
  Domain_pool.run_opt pool (Array.length ranges) (fun ci ->
      let start, count = ranges.(ci) in
      for gi = start to start + count - 1 do
        dets.(gi) <- f gi
      done);
  dets

(* Evaluate a candidate segment without committing: number of newly
   detected faults.  Engine states are saved and restored. *)
let inc3_peek ?pool ?(budget = Budget.unlimited) ?tel t (segment : seq) =
  let sw = seq_words t.c3 segment in
  let saved_good = Engine3.state_words t.good3 in
  let good_po, any_known = good_segment t sw in
  let z, o = saved_good in
  Engine3.set_state_words t.good3 ~z ~o;
  Telemetry.add tel Telemetry.Good_cycles (Array.length segment);
  if not any_known then 0
  else begin
    let seg_len = Array.length segment in
    let dets =
      inc3_sweep ?pool t ~f:(fun gi ->
          (* Polled before the engine is touched: a raise here leaves the
             group at its committed-prefix state, so an exhausted peek
             never corrupts the incremental simulation. *)
          Budget.check budget;
          if undetected_lanes t gi = 0 then 0
          else begin
            Telemetry.add tel Telemetry.Faulty_cycles seg_len;
            let saved = Engine3.state_words t.engines.(gi) in
            let d = run_segment t gi ~sw ~good_po in
            let z, o = saved in
            Engine3.set_state_words t.engines.(gi) ~z ~o;
            d
          end)
    in
    Array.fold_left (fun acc d -> acc + Word.popcount d) 0 dets
  end

(* Append a segment: update every machine, mark newly detected faults,
   return how many were newly detected.  The budget is polled only on
   entry: once the sweep starts mutating engine states, the commit runs to
   completion so the incremental state stays consistent.  (A pool with its
   own budget may still abort the sweep mid-commit; callers must then stop
   using [t], which the generators do — they unwind without committing.) *)
let inc3_commit ?pool ?(budget = Budget.unlimited) ?tel t (segment : seq) =
  Budget.check budget;
  let sw = seq_words t.c3 segment in
  let good_po, _ = good_segment t sw in
  Telemetry.add tel Telemetry.Good_cycles (Array.length segment);
  Telemetry.add tel Telemetry.Faulty_cycles
    (Array.length t.groups3 * Array.length segment);
  (* Even fully-detected groups must advance their state. *)
  let dets = inc3_sweep ?pool t ~f:(fun gi -> run_segment t gi ~sw ~good_po) in
  let newly = ref 0 in
  Array.iteri
    (fun gi group ->
      Word.iter_set
        (fun lane ->
          let fi = group.members.(lane) in
          if not (Bitvec.get t.detected3 fi) then begin
            Bitvec.set t.detected3 fi;
            incr newly
          end)
        dets.(gi))
    t.groups3;
  t.length <- t.length + Array.length segment;
  t.commits_since_compact <- t.commits_since_compact + 1;
  (* Repack once detections have shrunk the undetected set appreciably. *)
  let undetected_count = Array.length t.faults3 - Bitvec.count t.detected3 in
  let capacity = Array.length t.groups3 * Word.width in
  if
    t.commits_since_compact >= 8
    && capacity > 2 * Word.width
    && undetected_count * 2 < capacity
  then inc3_compact t;
  Telemetry.add tel Telemetry.Fault_detections !newly;
  !newly
