(** Sequential fault simulation of scan tests.

    A scan test [(SI, T)] loads state [SI], applies the vectors of [T] with
    the functional clock, and scans out the final state.  Detection: a
    difference at a primary output at any time unit, or in the final
    (scanned-out) state.  Faults live in the functional logic; the scan
    operation itself is fault-free (standard full-scan assumption).

    Bit-parallel: up to 62 faulty machines per word — or, in
    {!candidate_detections}, one fault across up to 62 candidate scan-in
    states per word.  Every entry point additionally takes an optional
    [pool]: fault groups are chunked across worker domains, each chunk on
    a private engine, and the results are merged deterministically — the
    output is bit-identical for any domain count.

    Every entry point also takes an optional [budget]
    ({!Asc_util.Budget.t}), polled once per fault group; a fired budget
    raises {!Asc_util.Budget.Exhausted} at the next group boundary.

    An optional [tel] ({!Asc_util.Telemetry.t}) records a span per entry
    call plus engine counters (faults swept, good/faulty cycles,
    detections, budget polls) at chunk granularity.  Telemetry never
    affects results. *)

type seq = bool array array
(** A primary-input sequence: [L] vectors of [n_pis] values. *)

(** Empty the shared good-machine trace cache (levelized kernel only):
    the fault-free trace of a scan test depends only on
    (circuit, scan-in, seq), so the levelized path computes it once and
    recalls it across calls — detect, profile, verify of the same test —
    and across domains.  Benchmarks call this between repetitions to
    measure cold-cache behaviour; results never depend on cache state. *)
val clear_trace_cache : unit -> unit

(** Fault-free trace.  [po.(t)] are splat PO words at time [t];
    [states.(t)] is the state entering time [t] ([states.(L)] is final). *)
type good = { po : int array array; states : int array array }

val good_run : Asc_netlist.Circuit.t -> si:bool array -> seq:seq -> good

(** The fault-free scan-out state of a run. *)
val good_final_state : Asc_netlist.Circuit.t -> good -> bool array

(** Fault indices detected by the scan test; [only] restricts simulation. *)
val detect :
  ?pool:Asc_util.Domain_pool.t ->
  ?budget:Asc_util.Budget.t ->
  ?tel:Asc_util.Telemetry.t ->
  ?only:Asc_util.Bitvec.t ->
  Asc_netlist.Circuit.t ->
  si:bool array ->
  seq:seq ->
  faults:Fault.t array ->
  Asc_util.Bitvec.t

(** Detection-time profile over [subset] (fault indices).  [po_time.(k)]:
    earliest PO-difference time of subset fault [k] ([max_int] if none);
    [state_diff_at.(k)]: time units after whose vector the faulty state
    differs (scanning out there would detect the fault). *)
type profile = {
  subset : int array;
  po_time : int array;
  state_diff_at : Asc_util.Bitvec.t array;
}

val profile :
  ?pool:Asc_util.Domain_pool.t ->
  ?budget:Asc_util.Budget.t ->
  ?tel:Asc_util.Telemetry.t ->
  Asc_netlist.Circuit.t ->
  si:bool array ->
  seq:seq ->
  faults:Fault.t array ->
  subset:int array ->
  profile

(** Subset faults detected when the test is truncated to scan out at time
    [u] (bit [k] refers to [subset.(k)]). *)
val profile_detected_at : profile -> u:int -> Asc_util.Bitvec.t

(** Phase-1 scan-in selection: rows are candidate scan-in states, columns
    fault indices; set when [(candidate, seq)] detects the fault.  Only
    [subset] columns are simulated. *)
val candidate_detections :
  ?pool:Asc_util.Domain_pool.t ->
  ?budget:Asc_util.Budget.t ->
  ?tel:Asc_util.Telemetry.t ->
  Asc_netlist.Circuit.t ->
  sis:bool array array ->
  seq:seq ->
  faults:Fault.t array ->
  subset:int array ->
  Asc_util.Bitmat.t

(** Does the test detect every fault index in [subset]?  Checked in subset
    order with early failure exit — put fragile faults first. *)
val verify_required :
  ?pool:Asc_util.Domain_pool.t ->
  ?budget:Asc_util.Budget.t ->
  ?tel:Asc_util.Telemetry.t ->
  Asc_netlist.Circuit.t ->
  si:bool array ->
  seq:seq ->
  faults:Fault.t array ->
  subset:int array ->
  bool

(** Faults detected by [seq] from an unknown initial state, no scan-out
    (3-valued; detection requires complementary binary values at a PO). *)
val detect_no_scan :
  ?pool:Asc_util.Domain_pool.t ->
  ?budget:Asc_util.Budget.t ->
  ?tel:Asc_util.Telemetry.t ->
  ?only:Asc_util.Bitvec.t ->
  Asc_netlist.Circuit.t ->
  seq:seq ->
  faults:Fault.t array ->
  Asc_util.Bitvec.t

(** Incremental 3-valued co-simulation for sequence generation: keeps every
    faulty machine's state at the end of the sequence built so far, so
    candidate extensions are evaluated without re-simulating the prefix. *)
type inc3

val inc3_create : Asc_netlist.Circuit.t -> Fault.t array -> inc3

(** Faults detected by the committed sequence so far. *)
val inc3_detected : inc3 -> Asc_util.Bitvec.t

(** Length of the committed sequence. *)
val inc3_length : inc3 -> int

(** Number of new detections a candidate segment would add (no commit).
    [pool] chunks the fault groups across worker domains (each group's
    engine stays private to one task); the count is identical for any
    domain count. *)
val inc3_peek :
  ?pool:Asc_util.Domain_pool.t ->
  ?budget:Asc_util.Budget.t ->
  ?tel:Asc_util.Telemetry.t ->
  inc3 ->
  seq ->
  int

(** Append a segment; returns the number of newly detected faults.  Same
    [pool] contract as {!inc3_peek}.  The budget is polled on entry only,
    so a commit that starts runs to completion (unless aborted by the
    pool's own budget, after which the [inc3] must be discarded). *)
val inc3_commit :
  ?pool:Asc_util.Domain_pool.t ->
  ?budget:Asc_util.Budget.t ->
  ?tel:Asc_util.Telemetry.t ->
  inc3 ->
  seq ->
  int
