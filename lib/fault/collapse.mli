(** Structural equivalence collapsing of the stuck-at universe.

    Applies the classic local equivalences (controlling-value inputs vs.
    output, BUF/NOT pass-through, single-fanout stem/branch identity) with
    a union-find.  The collapsed representatives are the target fault list
    of every experiment. *)

type t

(** Build the collapsed fault structure for a circuit. *)
val run : Asc_netlist.Circuit.t -> t

(** The full uncollapsed universe (same order as {!Fault.universe}). *)
val universe : t -> Fault.t array

(** One representative fault per equivalence class, in universe order. *)
val reps : t -> Fault.t array

val n_classes : t -> int

(** Representative universe index of universe fault [i]. *)
val class_of : t -> int -> int

(** Index into {!reps} of universe fault [i]'s class. *)
val rep_of : t -> int -> int
