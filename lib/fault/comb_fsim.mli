(** Combinational fault simulation (parallel-pattern single-fault).

    A pattern is a PI + present-state assignment; detection means a
    difference at a primary output or in the captured next state — exactly
    the detection condition of a length-one scan test under full scan. *)

(** [detect_matrix ?only c ~patterns ~faults] — rows are patterns, columns
    are fault indices; [only] restricts which fault indices are simulated
    (others are left undetected). *)
val detect_matrix :
  ?only:Asc_util.Bitvec.t ->
  Asc_netlist.Circuit.t ->
  patterns:Asc_sim.Pattern.t array ->
  faults:Fault.t array ->
  Asc_util.Bitmat.t

(** Fault indices detected by at least one pattern. *)
val detect_union :
  ?only:Asc_util.Bitvec.t ->
  Asc_netlist.Circuit.t ->
  patterns:Asc_sim.Pattern.t array ->
  faults:Fault.t array ->
  Asc_util.Bitvec.t

(** Which patterns detect one given fault. *)
val patterns_detecting :
  Asc_netlist.Circuit.t ->
  patterns:Asc_sim.Pattern.t array ->
  fault:Fault.t ->
  Asc_util.Bitvec.t
