(** Combinational fault simulation (parallel-pattern single-fault).

    A pattern is a PI + present-state assignment; detection means a
    difference at a primary output or in the captured next state — exactly
    the detection condition of a length-one scan test under full scan. *)

(** [detect_matrix ?pool ?only c ~patterns ~faults] — rows are patterns,
    columns are fault indices; [only] restricts which fault indices are
    simulated (others are left undetected).  [pool] chunks the pattern
    groups across worker domains; results are identical for any domain
    count.  [budget] is polled per pattern group (raises
    {!Asc_util.Budget.Exhausted} once fired).  [tel] records a span per
    call plus engine counters; telemetry never affects results. *)
val detect_matrix :
  ?pool:Asc_util.Domain_pool.t ->
  ?budget:Asc_util.Budget.t ->
  ?tel:Asc_util.Telemetry.t ->
  ?only:Asc_util.Bitvec.t ->
  Asc_netlist.Circuit.t ->
  patterns:Asc_sim.Pattern.t array ->
  faults:Fault.t array ->
  Asc_util.Bitmat.t

(** Fault indices detected by at least one pattern. *)
val detect_union :
  ?pool:Asc_util.Domain_pool.t ->
  ?budget:Asc_util.Budget.t ->
  ?tel:Asc_util.Telemetry.t ->
  ?only:Asc_util.Bitvec.t ->
  Asc_netlist.Circuit.t ->
  patterns:Asc_sim.Pattern.t array ->
  faults:Fault.t array ->
  Asc_util.Bitvec.t

(** Which patterns detect one given fault. *)
val patterns_detecting :
  Asc_netlist.Circuit.t ->
  patterns:Asc_sim.Pattern.t array ->
  fault:Fault.t ->
  Asc_util.Bitvec.t
