(* Combinational fault simulation, parallel-pattern single-fault (PPSFP).

   Patterns (PI + present-state assignments) are packed 62 to a word; each
   fault is injected in all lanes and the faulty outputs and next-state
   values are compared against the fault-free ones.  Under full scan this
   is exactly the detection condition of a scan test with a length-one
   primary input sequence: a difference at a PO or in the captured state
   (observed by the scan-out) detects the fault. *)

open Asc_util
module Circuit = Asc_netlist.Circuit
module Engine2 = Asc_sim.Engine2
module Kernel = Asc_sim.Kernel
module Sim_kernel = Asc_sim.Sim_kernel
module Pattern = Asc_sim.Pattern

type group = {
  pi_words : int array; (* per PI *)
  state_words : int array; (* per DFF *)
  lanes : int; (* mask of lanes carrying a real pattern *)
  base : int; (* index of the first pattern of this group *)
  count : int;
}

let pack c (patterns : Pattern.t array) =
  let n_pis = Circuit.n_inputs c and n_ffs = Circuit.n_dffs c in
  let total = Array.length patterns in
  let n_groups = (total + Word.width - 1) / Word.width in
  Array.init n_groups (fun gi ->
      let base = gi * Word.width in
      let count = min Word.width (total - base) in
      let pi_words = Array.make n_pis 0 in
      let state_words = Array.make n_ffs 0 in
      for lane = 0 to count - 1 do
        let p = patterns.(base + lane) in
        if Array.length p.pis <> n_pis || Array.length p.state <> n_ffs then
          invalid_arg "Comb_fsim.pack: pattern arity mismatch";
        for i = 0 to n_pis - 1 do
          if p.pis.(i) then pi_words.(i) <- Word.set pi_words.(i) lane
        done;
        for i = 0 to n_ffs - 1 do
          if p.state.(i) then state_words.(i) <- Word.set state_words.(i) lane
        done
      done;
      let lanes = if count = Word.width then Word.mask else (1 lsl count) - 1 in
      { pi_words; state_words; lanes; base; count })

(* Fault-free responses of one packed group. *)
type good = { po : int array; next_state : int array }

let good_of_group engine group =
  Engine2.set_overrides engine [];
  Engine2.set_state_words engine group.state_words;
  Engine2.eval engine ~pi_words:group.pi_words;
  let c = Engine2.circuit engine in
  {
    po = Array.init (Circuit.n_outputs c) (Engine2.po_word engine);
    next_state = Array.init (Circuit.n_dffs c) (Engine2.next_state_word engine);
  }

(* Lanes of [group] on which [fault] is detected. *)
let detect_word engine group (good : good) fault =
  Engine2.set_overrides engine [ Fault.to_override fault ~lanes:Word.mask ];
  Engine2.set_state_words engine group.state_words;
  Engine2.eval engine ~pi_words:group.pi_words;
  let c = Engine2.circuit engine in
  let det = ref 0 in
  for i = 0 to Circuit.n_outputs c - 1 do
    det := !det lor (Engine2.po_word engine i lxor good.po.(i))
  done;
  for i = 0 to Circuit.n_dffs c - 1 do
    det := !det lor (Engine2.next_state_word engine i lxor good.next_state.(i))
  done;
  !det land group.lanes

(* Per-chunk simulator, chosen by the active kernel: [prep] derives the
   fault-free response of a pattern group, [det] the detection word of
   one fault against it, [flush] drains engine-local counters into
   telemetry at chunk end.

   The reference path re-evaluates the whole circuit per fault
   (Engine2); the levelized path evaluates the group's good machine once
   with the closure-free schedule sweep, then runs each fault as a
   cone-limited difference against it — the captured-state difference
   from Kernel.finish_cycle matches Engine2's next_state_word comparison
   bit for bit, DFF pin-0 overrides included. *)
let make_sim kern c tel =
  match (kern : Sim_kernel.which) with
  | Sim_kernel.Reference ->
      let engine = Engine2.create c [] in
      let good = ref None in
      let prep group = good := Some (good_of_group engine group) in
      let det group fault =
        match !good with
        | Some g -> detect_word engine group g fault
        | None -> invalid_arg "Comb_fsim: detection before group prep"
      in
      (prep, det, fun () -> ())
  | Sim_kernel.Levelized ->
      let k = Kernel.create c in
      let gv = Array.make (Circuit.n_gates c) 0 in
      let prep group =
        Kernel.good_cycle k ~pi_words:group.pi_words ~state:group.state_words ~v:gv
      in
      let det group fault =
        Kernel.set_overrides k [ Fault.to_override fault ~lanes:Word.mask ];
        Kernel.reset k;
        Kernel.cycle k ~gw:gv;
        let d = ref (Kernel.po_diff k) in
        Kernel.finish_cycle k ~gw:gv;
        d := !d lor Kernel.state_diff_word k;
        !d land group.lanes
      in
      let flush () =
        Telemetry.add tel Telemetry.Cone_gates_evaluated (Kernel.take_evaluated k)
      in
      (prep, det, flush)

(* Chunked parallel sweep over pattern groups (see Asc_util.Domain_pool):
   each chunk simulates a contiguous group range on a private engine and
   fills its own slot of [parts]; the submitter merges in index order. *)
let sweep_groups ?pool groups ~chunk ~merge ~empty =
  let n = Array.length groups in
  let ranges = Domain_pool.split ~n ~pieces:(Domain_pool.chunk_count pool n) in
  let parts = Array.make (Array.length ranges) empty in
  Domain_pool.run_opt pool (Array.length ranges) (fun ci -> parts.(ci) <- chunk ranges.(ci));
  Array.iteri (fun ci part -> merge ranges.(ci) part) parts

(* Detection matrix: rows are patterns, columns are faults.  [only]
   restricts the simulated fault indices (default: all). *)
let detect_matrix ?pool ?(budget = Budget.unlimited) ?tel ?only c ~patterns ~faults =
  Telemetry.span tel "fsim:matrix"
    ~args:
      [
        ("patterns", string_of_int (Array.length patterns));
        ("faults", string_of_int (Array.length faults));
      ]
  @@ fun () ->
  let n_faults = Array.length faults in
  let mat = Bitmat.create (Array.length patterns) n_faults in
  let groups = pack c patterns in
  let kern = Sim_kernel.current () in
  let chunk (start, count) =
    let prep, det, flush = make_sim kern c tel in
    let base0 = groups.(start).base in
    let last = groups.(start + count - 1) in
    let rows =
      Array.init (last.base + last.count - base0) (fun _ -> Bitvec.create n_faults)
    in
    let sims = ref 0 and hits = ref 0 in
    for gi = start to start + count - 1 do
      Budget.check budget;
      let group = groups.(gi) in
      prep group;
      let simulate fi =
        incr sims;
        let d = det group faults.(fi) in
        hits := !hits + Word.popcount d;
        Word.iter_set (fun lane -> Bitvec.set rows.(group.base - base0 + lane) fi) d
      in
      match only with
      | None ->
          for fi = 0 to n_faults - 1 do
            simulate fi
          done
      | Some mask -> Bitvec.iter_set simulate mask
    done;
    Telemetry.add tel Telemetry.Faults_simulated !sims;
    Telemetry.add tel Telemetry.Faulty_cycles !sims;
    Telemetry.add tel Telemetry.Good_cycles count;
    Telemetry.add tel Telemetry.Fault_detections !hits;
    Telemetry.add tel Telemetry.Budget_polls count;
    flush ();
    rows
  in
  sweep_groups ?pool groups ~chunk ~empty:[||] ~merge:(fun (start, _) rows ->
      let base0 = groups.(start).base in
      Array.iteri (fun k row -> Bitmat.set_row mat (base0 + k) row) rows);
  mat

(* Union detection: the set of fault indices detected by at least one
   pattern.  [only] restricts the simulated faults.  Sequentially, a fault
   already detected by an earlier group is skipped; across domains the
   skip applies within each chunk only (results are identical, some
   redundant simulation is traded for wall-clock). *)
let detect_union ?pool ?(budget = Budget.unlimited) ?tel ?only c ~patterns ~faults =
  Telemetry.span tel "fsim:union"
    ~args:
      [
        ("patterns", string_of_int (Array.length patterns));
        ("faults", string_of_int (Array.length faults));
      ]
  @@ fun () ->
  let n_faults = Array.length faults in
  let det = Bitvec.create n_faults in
  let groups = pack c patterns in
  let kern = Sim_kernel.current () in
  let chunk (start, count) =
    let prep, detw, flush = make_sim kern c tel in
    let local = Bitvec.create n_faults in
    let sims = ref 0 in
    for gi = start to start + count - 1 do
      Budget.check budget;
      let group = groups.(gi) in
      prep group;
      let simulate fi =
        if not (Bitvec.get local fi) then begin
          incr sims;
          if detw group faults.(fi) <> 0 then Bitvec.set local fi
        end
      in
      match only with
      | None ->
          for fi = 0 to n_faults - 1 do
            simulate fi
          done
      | Some mask -> Bitvec.iter_set simulate mask
    done;
    Telemetry.add tel Telemetry.Faults_simulated !sims;
    Telemetry.add tel Telemetry.Faulty_cycles !sims;
    Telemetry.add tel Telemetry.Good_cycles count;
    Telemetry.add tel Telemetry.Fault_detections (Bitvec.count local);
    Telemetry.add tel Telemetry.Budget_polls count;
    flush ();
    local
  in
  sweep_groups ?pool groups ~chunk ~empty:(Bitvec.create n_faults)
    ~merge:(fun _ local -> Bitvec.union_into ~into:det local);
  det

(* Per-pattern detection of a *single* fault: which patterns detect it. *)
let patterns_detecting c ~patterns ~fault =
  let result = Bitvec.create (Array.length patterns) in
  let prep, det, _flush = make_sim (Sim_kernel.current ()) c None in
  Array.iter
    (fun group ->
      prep group;
      let d = det group fault in
      Word.iter_set (fun lane -> Bitvec.set result (group.base + lane)) d)
    (pack c patterns);
  result
