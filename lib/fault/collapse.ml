(* Structural equivalence collapsing of stuck-at faults.

   Classic local equivalences, applied with a union-find over the fault
   universe:

   - controlling-value gates: for AND, every input sa0 is equivalent to the
     output sa0; NAND: input sa0 ~ output sa1; OR: input sa1 ~ output sa1;
     NOR: input sa1 ~ output sa0;
   - BUF: input sa-v ~ output sa-v; NOT: input sa-v ~ output sa-(not v);
   - single-fanout stems: if gate s drives exactly one pin (h, k), the
     branch faults at (h, k) are the same physical line as s's output
     faults (this includes a DFF's D pin when s feeds only that DFF).

   DFFs are never collapsed *through* (a D-line fault is not equivalent to
   the corresponding Q output fault: Q is also directly controlled by the
   scan chain and observed a cycle earlier). *)

module Circuit = Asc_netlist.Circuit
module Gate = Asc_netlist.Gate

type t = {
  universe : Fault.t array;
  class_of : int array; (* universe index -> representative universe index *)
  reps : Fault.t array; (* one fault per class, in universe order *)
  rep_index : int array; (* universe index -> index into [reps] *)
}

let universe t = t.universe
let reps t = t.reps

let n_classes t = Array.length t.reps

(* Representative (universe index) of an arbitrary universe fault. *)
let class_of t i = t.class_of.(i)

(* Index into [reps] for an arbitrary universe fault index. *)
let rep_of t i = t.rep_index.(t.class_of.(i))

(* Union-find with path compression; roots are the smallest index so the
   representative order is deterministic. *)
let rec find parent i = if parent.(i) = i then i else (parent.(i) <- find parent parent.(i); parent.(i))

let union parent a b =
  let ra = find parent a and rb = find parent b in
  if ra <> rb then if ra < rb then parent.(rb) <- ra else parent.(ra) <- rb

let run c =
  let universe = Fault.universe c in
  let n = Array.length universe in
  let index = Hashtbl.create (2 * n) in
  Array.iteri (fun i (f : Fault.t) -> Hashtbl.replace index f i) universe;
  let idx f =
    match Hashtbl.find_opt index f with
    | Some i -> i
    | None -> invalid_arg "Collapse.run: fault outside universe"
  in
  let parent = Array.init n (fun i -> i) in
  for g = 0 to Circuit.n_gates c - 1 do
    let kind = Circuit.kind c g in
    let arity = Array.length (Circuit.fanins c g) in
    (match Gate.controlling_value kind with
    | Some cv ->
        let out_value = if Gate.inverting kind then not cv else cv in
        for pin = 0 to arity - 1 do
          union parent (idx (Fault.input g pin cv)) (idx (Fault.output g out_value))
        done
    | None -> ());
    (match kind with
    | Gate.Buf ->
        union parent (idx (Fault.input g 0 false)) (idx (Fault.output g false));
        union parent (idx (Fault.input g 0 true)) (idx (Fault.output g true))
    | Gate.Not ->
        union parent (idx (Fault.input g 0 false)) (idx (Fault.output g true));
        union parent (idx (Fault.input g 0 true)) (idx (Fault.output g false))
    | _ -> ());
    (* Single-fanout stem: the output line and its only branch are one
       line.  Not applied when the stem also drives a primary output
       (the PO observation keeps the stem distinct from the branch). *)
    let fanouts = Circuit.fanouts c g in
    let drives_po = Array.exists (( = ) g) (Circuit.outputs c) in
    if Array.length fanouts = 1 && not drives_po then begin
      let h = fanouts.(0) in
      let fi = Circuit.fanins c h in
      (* Find the unique pin of h driven by g (single fanout entry). *)
      let pin = ref (-1) in
      Array.iteri (fun k f -> if f = g && !pin = -1 then pin := k) fi;
      if !pin >= 0 then begin
        union parent (idx (Fault.input h !pin false)) (idx (Fault.output g false));
        union parent (idx (Fault.input h !pin true)) (idx (Fault.output g true))
      end
    end
  done;
  let class_of = Array.init n (find parent) in
  let rep_index = Array.make n (-1) in
  let reps = ref [] in
  let count = ref 0 in
  for i = 0 to n - 1 do
    if class_of.(i) = i then begin
      rep_index.(i) <- !count;
      incr count;
      reps := universe.(i) :: !reps
    end
  done;
  { universe; class_of; reps = Array.of_list (List.rev !reps); rep_index }
