(* Single stuck-at faults.

   A fault site is either a gate output ([pin = -1], the stem) or one fanin
   pin of a gate ([pin >= 0], a fanout branch; for a DFF, pin 0 is the
   next-state / D line).  [stuck] is the stuck value. *)

module Circuit = Asc_netlist.Circuit
module Gate = Asc_netlist.Gate

type t = { gate : int; pin : int; stuck : bool }

let output gate stuck = { gate; pin = -1; stuck }

let input gate pin stuck =
  if pin < 0 then invalid_arg "Fault.input: negative pin";
  { gate; pin; stuck }

let compare = compare
let equal = ( = )

let to_string c f =
  let site =
    if f.pin = -1 then Circuit.signal_name c f.gate
    else Printf.sprintf "%s.in%d" (Circuit.signal_name c f.gate) f.pin
  in
  Printf.sprintf "%s/sa%d" site (if f.stuck then 1 else 0)

(* The override that injects this fault into the given lanes. *)
let to_override f ~lanes : Asc_sim.Override.t = { gate = f.gate; pin = f.pin; stuck = f.stuck; lanes }

(* The full (uncollapsed) stuck-at universe: both polarities on every gate
   output and on every gate input pin, in a deterministic order. *)
let universe c =
  let acc = ref [] in
  for g = Circuit.n_gates c - 1 downto 0 do
    let arity = Array.length (Circuit.fanins c g) in
    for pin = arity - 1 downto 0 do
      acc := input g pin true :: !acc;
      acc := input g pin false :: !acc
    done;
    acc := output g true :: !acc;
    acc := output g false :: !acc
  done;
  Array.of_list !acc
