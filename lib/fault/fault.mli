(** Single stuck-at faults on gate outputs (stems) and gate input pins
    (fanout branches; a DFF's pin 0 is its D line). *)

type t = { gate : int; pin : int; stuck : bool }

val output : int -> bool -> t
val input : int -> int -> bool -> t

val compare : t -> t -> int
val equal : t -> t -> bool

(** ["signal/sa0"] or ["signal.in2/sa1"]. *)
val to_string : Asc_netlist.Circuit.t -> t -> string

(** The override injecting the fault into the given lanes. *)
val to_override : t -> lanes:int -> Asc_sim.Override.t

(** The full (uncollapsed) stuck-at universe, deterministic order:
    for each gate, output sa0/sa1 then each input pin sa0/sa1. *)
val universe : Asc_netlist.Circuit.t -> t array
