(** The [asc serve] daemon: a single-threaded select loop that accepts
    {!Protocol} requests over a stream socket and drains the
    {!Scheduler}'s queue between socket services (docs/SERVING.md).

    One loop iteration services every readable connection (accepting new
    ones, buffering frames, answering [ping] / [metrics] / [shutdown] and
    enqueuing [submit]s), then dispatches {e one} queued job to
    completion.  Jobs therefore never interleave — each gets the whole
    shared pool — while the socket stays responsive between jobs at job
    granularity.

    Failure contract: a malformed frame gets an error response and the
    connection stays open; an over-long frame (no newline within
    [max_frame] bytes) gets an error response and the connection is
    closed; a write failure (client gone) closes the connection and the
    job's result is dropped.  A chaos [Kill] at any armed point
    propagates out of {!serve} like a crash — deliberately: the soak
    test restarts the server and expects checkpointed jobs to resume. *)

type listen =
  | Unix_socket of string  (** Path; a stale socket file is replaced. *)
  | Tcp of string * int  (** Host (name or dotted quad) and port. *)

type config = {
  listen : listen;
  state_dir : string option;  (** Enables per-job checkpoint/resume. *)
  max_frame : int;  (** Per-frame byte cap; {!default_max_frame}. *)
}

val default_max_frame : int

(** [serve ?pool ?tel ?chaos ?on_ready ?workers ?job_retries ?make_pool
    config] runs until a client sends [shutdown].  A shutdown with work
    outstanding enters {e drain mode}: queued and in-flight jobs finish
    first (new submissions are rejected with ["server is draining for
    shutdown"]), then the shutdown response reports how many jobs were
    drained.

    [workers = 0] (default) serves in-process: one job at a time on the
    calling domain with [pool].  [workers > 0] forks a {!Supervisor}
    fleet: the parent must {e not} own a pool (domains do not survive
    fork) — pass [make_pool] instead, which runs in each worker after
    fork.  [job_retries] bounds dispatch attempts per job before a
    worker-crashing job fails with [worker_crash].  When every worker
    slot exhausts its restart budget the server degrades to in-process
    (single-domain, still bit-identical) execution.

    {b Admission control} (docs/SERVING.md "Fleet") — [max_pending] /
    [max_pending_per_source] bound the global and per-source queue
    depths; a submission over either cap is refused with a typed
    [overloaded] reject carrying a [retry_after_ms] backpressure hint
    instead of growing the queue without bound.  Queued jobs whose
    submit-side [timeout] expires before dispatch are {e shed}: answered
    with a [partial] ([reason="deadline"], [stage="queue"]) response
    without occupying a dispatch slot.  The caps surface as gauges
    ([max_pending], [max_pending_per_source]; 0 = unbounded) next to the
    [jobs_shed] / [jobs_rejected_overload] counters.

    [hb_stale] overrides the supervised-mode heartbeat staleness
    threshold in seconds (default 30; the [ASC_HB_STALE] knob exists so
    tests can shrink it) — see {!Supervisor.create}.

    [pool] must carry no budget — job deadlines are per-submission.
    [tel] feeds the [metrics] op; counters are accumulated across
    {!Asc_util.Telemetry.drain} calls — including each worker's drains,
    shipped with its results — so they are cumulative since server
    start.  [on_ready] fires once the socket is bound and listening.

    {b Observability} (docs/OBSERVABILITY.md "Serving metrics") — all of
    it optional, and none of it consulted by any scheduling decision, so
    served results are byte-identical with these on or off.  [log]
    receives structured lifecycle events for every job and worker (see
    {!Asc_util.Log}).  [trace_file] writes one stitched Chrome trace at
    exit: the parent's spans plus, in supervised mode, one process
    track per worker pid (workers ship their span buffers with each
    result, re-based onto the parent's timeline).  [prom_file] keeps a
    Prometheus text-exposition file current (rewritten write-then-rename
    after each delivery batch and at shutdown); a sink failure warns
    once and disables the file, never the server. *)
val serve :
  ?pool:Asc_util.Domain_pool.t ->
  ?tel:Asc_util.Telemetry.t ->
  ?chaos:Asc_util.Chaos.t ->
  ?log:Asc_util.Log.t ->
  ?trace_file:string ->
  ?prom_file:string ->
  ?on_ready:(unit -> unit) ->
  ?workers:int ->
  ?job_retries:int ->
  ?make_pool:(tel:Asc_util.Telemetry.t -> Asc_util.Domain_pool.t option) ->
  ?max_pending:int ->
  ?max_pending_per_source:int ->
  ?hb_stale:float ->
  config ->
  unit
