(* Persistent content-addressed result cache for the serving layer.
   One file per job key under the state directory, following the
   Checkpoint v2 durability discipline: plain text with a CRC-32 trailer
   over every preceding byte, written atomically (temp file + rename)
   with bounded retry, and corrupt or foreign entries skipped *and
   deleted* on load so a torn write never wedges a key.

   Format ([result-<key>.res]):

     ascres v1
     key <key>
     tests <n>
     cycles <n>
     detected <n>
     targets <n>
     iterations <n>
     tset <nbytes>
     <raw test-set bytes, exactly nbytes>
     endtset
     crc <8 hex digits>

   The test set is framed by byte count (it contains newlines), so the
   parser is cursor-based rather than line-split.  Only Complete results
   are ever stored; status therefore needs no encoding — a loaded entry
   is Complete by construction. *)

module Crc = Asc_util.Crc

type entry = {
  e_key : string;
  e_tests : int;
  e_cycles : int;
  e_detected : int;
  e_targets : int;
  e_iterations : int;
  e_tset : string;
}

type t = {
  dir : string option;
  mem : (string, entry) Hashtbl.t;
}

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?dir () =
  Option.iter mkdir_p dir;
  { dir; mem = Hashtbl.create 64 }

let path ~dir key = Filename.concat dir ("result-" ^ key ^ ".res")

(* --- Codec -------------------------------------------------------------- *)

let entry_to_string e =
  let buf = Buffer.create (String.length e.e_tset + 256) in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "ascres v1\n";
  add "key %s\n" e.e_key;
  add "tests %d\n" e.e_tests;
  add "cycles %d\n" e.e_cycles;
  add "detected %d\n" e.e_detected;
  add "targets %d\n" e.e_targets;
  add "iterations %d\n" e.e_iterations;
  add "tset %d\n" (String.length e.e_tset);
  Buffer.add_string buf e.e_tset;
  add "endtset\n";
  let body = Buffer.contents buf in
  body ^ Printf.sprintf "crc %s\n" (Crc.to_hex (Crc.crc32 body))

exception Bad of string

let entry_of_string text =
  let pos = ref 0 in
  let len = String.length text in
  (* Next newline-terminated line; the cursor advances past the '\n'. *)
  let line () =
    if !pos >= len then raise (Bad "unexpected end of entry");
    match String.index_from_opt text !pos '\n' with
    | None -> raise (Bad "unterminated line")
    | Some i ->
        let l = String.sub text !pos (i - !pos) in
        pos := i + 1;
        l
  in
  let int_line name =
    let l = line () in
    let prefix = name ^ " " in
    if not (String.length l > String.length prefix
            && String.sub l 0 (String.length prefix) = prefix) then
      raise (Bad (Printf.sprintf "expected %s line, got %S" name l));
    let v = String.sub l (String.length prefix)
              (String.length l - String.length prefix) in
    match int_of_string_opt v with
    | Some n when n >= 0 -> n
    | _ -> raise (Bad (Printf.sprintf "bad %s %S" name v))
  in
  try
    if line () <> "ascres v1" then raise (Bad "bad magic");
    let key =
      let l = line () in
      if String.length l < 5 || String.sub l 0 4 <> "key " then
        raise (Bad "expected key line");
      String.sub l 4 (String.length l - 4)
    in
    let tests = int_line "tests" in
    let cycles = int_line "cycles" in
    let detected = int_line "detected" in
    let targets = int_line "targets" in
    let iterations = int_line "iterations" in
    let nbytes = int_line "tset" in
    if !pos + nbytes > len then raise (Bad "truncated tset");
    let tset = String.sub text !pos nbytes in
    pos := !pos + nbytes;
    if line () <> "endtset" then raise (Bad "missing endtset");
    (* The trailer covers every byte before its own line. *)
    let body_len = !pos in
    let cl = line () in
    if String.length cl <> 12 || String.sub cl 0 4 <> "crc " then
      raise (Bad "missing crc trailer");
    (match Crc.of_hex (String.sub cl 4 8) with
    | None -> raise (Bad "bad crc digits")
    | Some claimed ->
        if Crc.crc32 (String.sub text 0 body_len) <> claimed then
          raise (Bad "crc mismatch (corrupt entry)"));
    if !pos <> len then raise (Bad "content after crc trailer");
    Ok
      {
        e_key = key;
        e_tests = tests;
        e_cycles = cycles;
        e_detected = detected;
        e_targets = targets;
        e_iterations = iterations;
        e_tset = tset;
      }
  with Bad message -> Error message

(* --- Store / find ------------------------------------------------------- *)

(* One atomic write attempt, as in Checkpoint.write_once. *)
let write_once p text =
  let tmp = p ^ ".tmp" in
  try
    let oc = open_out_bin tmp in
    (try
       output_string oc text;
       close_out oc
     with e ->
       close_out_noerr oc;
       raise e);
    Sys.rename tmp p
  with e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

let store t e =
  Hashtbl.replace t.mem e.e_key e;
  match t.dir with
  | None -> ()
  | Some dir -> (
      let p = path ~dir e.e_key in
      let text = entry_to_string e in
      (* The on-disk copy is an availability optimisation, not ground
         truth (the in-memory entry already answers this process): retry
         transient failures briefly, then give up without failing the
         job that produced the result. *)
      let rec attempt n =
        match write_once p text with
        | () -> ()
        | exception Sys_error _ when n < 2 ->
            Unix.sleepf (0.002 *. float_of_int (n + 1));
            attempt (n + 1)
        | exception Sys_error _ -> ()
      in
      attempt 0)

let read_file p =
  let ic = open_in_bin p in
  let text =
    try really_input_string ic (in_channel_length ic)
    with e ->
      close_in_noerr ic;
      raise e
  in
  close_in ic;
  text

(* [find] returns [from_disk = true] when the entry was faulted in from
   the persistent store (a restart-surviving hit).  A file that fails to
   decode — torn write, bit rot, or a key mismatch from a hash collision
   of file names — is deleted so it cannot shadow a future store. *)
let find t key =
  match Hashtbl.find_opt t.mem key with
  | Some e -> Some (e, false)
  | None -> (
      match t.dir with
      | None -> None
      | Some dir -> (
          let p = path ~dir key in
          if not (Sys.file_exists p) then None
          else
            match entry_of_string (read_file p) with
            | Ok e when e.e_key = key ->
                Hashtbl.replace t.mem key e;
                Some (e, true)
            | Ok _ | Error _ ->
                (try Sys.remove p with Sys_error _ -> ());
                None
            | exception Sys_error _ -> None))
