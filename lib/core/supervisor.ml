(* Supervised multi-worker job execution for [asc serve --workers N].

   The parent (the server's select loop) never runs jobs: it forks N
   worker processes, ships queued jobs to idle workers over pipe-based
   control channels, and folds results back.  Each worker runs the
   existing single-threaded job loop — resolve, execute with the whole
   (worker-private) domain pool, checkpoint — so a job still runs on
   exactly one process with a deterministic pool and reproduces the
   one-shot result bit for bit.

   Process tree and channels:

     asc serve (parent: accept/select loop, scheduler queues,
       |        persistent result cache — the single writer)
       +-- worker 0   <- job pipe    (parent -> worker, one JSON line/job)
       |              -> event pipe  (worker -> parent: heartbeats, results)
       +-- worker 1   ...
       +-- worker N-1

   Failure semantics (docs/SERVING.md "Process model & failure
   semantics"):
   - A worker crash (chaos kill, OOM, segfault) closes its event pipe;
     the parent sees EOF, reaps the child, requeues the in-flight job
     and schedules a respawn with exponential backoff.
   - Requeues are bounded by a per-job retry budget ([job_retries]
     dispatch attempts): a poison job that crashes every worker it
     touches fails cleanly with a typed [Failed "worker_crash"] result
     instead of crash-looping the fleet.
   - A slot that exhausts its restart budget is retired; when every
     slot is retired the caller degrades to in-process execution.
   - Idle workers heartbeat about once a second; an idle worker silent
     past the staleness threshold is killed and restarted.  Busy
     workers are single-threaded and deliberately do not heartbeat —
     crash detection for them is pipe EOF, a hang is normally bounded
     by the job's own budget deadline, and a busy worker that overruns
     that deadline by more than the staleness threshold (it stopped
     polling entirely: SIGSTOP, livelock below the poll sites) is
     killed the same way an idle-stale one is.

   Chaos points: [worker.fork] fires in the parent before each fork (a
   [Fail] rule models a failed spawn and exercises backoff);
   [supervisor.dispatch] fires in the parent at each dispatch, and a
   [Kill] rule there is translated into SIGKILL of the chosen worker
   after the job is on the wire — a deterministic, parent-side-counted
   stand-in for "the worker crashed mid-job"; [worker.heartbeat] fires
   in a worker before each idle heartbeat ([Kill] crashes an idle
   worker).  Workers inherit the parent's armed chaos handle across
   fork, so in-worker points (pool, checkpoint I/O) re-count from the
   fork-time state in every respawned worker. *)

module J = Asc_util.Json
module Chaos = Asc_util.Chaos
module Telemetry = Asc_util.Telemetry
module Log = Asc_util.Log
module Rng = Asc_util.Rng
module Backoff = Asc_util.Backoff

type worker = {
  w_slot : int;
  mutable w_pid : int;
  mutable w_to : Unix.file_descr;  (* parent -> worker job channel *)
  mutable w_from : Unix.file_descr;  (* worker -> parent event channel *)
  w_buf : Buffer.t;
  mutable w_busy : Scheduler.job option;
  mutable w_alive : bool;
  mutable w_retired : bool;
  mutable w_restarts : int;
  mutable w_restart_at : float;  (* earliest respawn time when dead *)
  mutable w_last_hb : float;
}

(* One finished job as the parent collects it: the worker's counter drain
   folds into the fleet table, and — only when trace stitching is on —
   the worker's span tracks, already re-based onto the parent's
   telemetry timeline, tagged with the worker process that ran them. *)
type outcome = {
  o_job : Scheduler.job;
  o_result : Scheduler.result;
  o_counters : (string * int) list;
  o_worker_pid : int; (* -1 when no worker produced the result *)
  o_worker_slot : int;
  o_tracks : Telemetry.track list;
}

type t = {
  tel : Telemetry.t option;
  chaos : Chaos.t option;
  log : Log.t option;
  trace : bool; (* ship worker span buffers with each result *)
  state_dir : string option;
  job_retries : int;
  restart_limit : int;
  backoff_base : float;
  hb_stale : float;
  make_pool : (tel:Telemetry.t -> Asc_util.Domain_pool.t option) option;
  on_child_fork : (unit -> unit) option;
  workers : worker array;
  results : outcome Queue.t;
  rng : Rng.t;  (* respawn-jitter stream; parent-side only *)
  mutable stopping : bool;
}

(* Respawn delays take full jitter — uniform in [0, base * 2^restarts],
   capped at 5 s — so N slots killed by the same event (a chaos schedule,
   an OOM sweep) do not respawn in lockstep and stampede the machine.
   The stream is seeded from the parent pid: deterministic within one
   supervisor, decorrelated across a fleet of servers. *)
let backoff t restarts = Backoff.full_jitter ~cap:5.0 ~rng:t.rng ~base:t.backoff_base restarts

(* --- Wire codec (one JSON object per line on each pipe) ----------------- *)

let write_all fd s =
  let n = String.length s in
  let sent = ref 0 in
  while !sent < n do
    sent := !sent + Unix.write_substring fd s !sent (n - !sent)
  done

let send_line fd json = write_all fd (J.to_string ~compact:true json ^ "\n")

let job_message (job : Scheduler.job) =
  J.Obj
    ([
       ("op", J.Str "job");
       ("id", J.Int job.Scheduler.j_id);
       ("source", J.Int job.Scheduler.j_source);
     ]
    @ Protocol.spec_to_members job.Scheduler.j_spec)

let hb_message = J.Obj [ ("op", J.Str "hb") ]

(* Worker span tracks on the wire: compact per-event objects
   ([{"b":name,"t":ts,"a":{...}}] / [{"e":name,"t":ts}]) under one
   ["spans"] member, with ["dt"] — the worker origin minus the parent
   origin, computed worker-side where both origins are known exactly —
   letting the parent re-base every relative timestamp onto its own
   timeline without shipping absolute epoch floats (which would lose
   sub-millisecond precision to the JSON float format). *)
let spans_to_json ~dt (tracks : Telemetry.track list) =
  let event_json = function
    | Telemetry.Begin { name; ts; args } ->
        J.Obj
          ([ ("b", J.Str name); ("t", J.Float ts) ]
          @
          if args = [] then []
          else [ ("a", J.Obj (List.map (fun (k, v) -> (k, J.Str v)) args)) ])
    | Telemetry.End { name; ts } ->
        J.Obj [ ("e", J.Str name); ("t", J.Float ts) ]
  in
  J.Obj
    [
      ("dt", J.Float dt);
      ( "tracks",
        J.List
          (List.map
             (fun (tr : Telemetry.track) ->
               J.Obj
                 [
                   ("dom", J.Int tr.Telemetry.dom);
                   ("events", J.List (List.map event_json tr.Telemetry.events));
                 ])
             tracks) );
    ]

let spans_of_message json =
  match J.member "spans" json with
  | None -> []
  | Some spans -> (
      let dt =
        Option.value ~default:0.0
          (Option.bind (J.member "dt" spans) J.as_float)
      in
      let event_of = function
        | J.Obj _ as e -> (
            let ts =
              Option.value ~default:0.0 (Option.bind (J.member "t" e) J.as_float)
              +. dt
            in
            match J.member "b" e with
            | Some (J.Str name) ->
                let args =
                  match J.member "a" e with
                  | Some (J.Obj members) ->
                      List.filter_map
                        (fun (k, v) ->
                          Option.map (fun s -> (k, s)) (J.as_str v))
                        members
                  | _ -> []
                in
                Some (Telemetry.Begin { name; ts; args })
            | _ -> (
                match J.member "e" e with
                | Some (J.Str name) -> Some (Telemetry.End { name; ts })
                | _ -> None))
        | _ -> None
      in
      match J.member "tracks" spans with
      | Some (J.List tracks) ->
          List.filter_map
            (function
              | J.Obj _ as tr -> (
                  match (J.member "dom" tr, J.member "events" tr) with
                  | Some (J.Int dom), Some (J.List events) ->
                      Some
                        {
                          Telemetry.dom;
                          events = List.filter_map event_of events;
                        }
                  | _ -> None)
              | _ -> None)
            tracks
      | _ -> [])

let result_message ?spans ~id (r : Scheduler.result) counters =
  let opt_str = function None -> J.Null | Some s -> J.Str s in
  let reason, stage, error =
    match r.Scheduler.r_status with
    | Scheduler.Complete -> (None, None, None)
    | Scheduler.Partial { reason; stage } -> (Some reason, Some stage, None)
    | Scheduler.Failed message -> (None, None, Some message)
  in
  J.Obj
    ([
       ("op", J.Str "result");
       ("id", J.Int id);
       ("status", J.Str (Protocol.status_string r.Scheduler.r_status));
       ("reason", opt_str reason);
       ("stage", opt_str stage);
       ("error", opt_str error);
       ("tests", J.Int r.Scheduler.r_tests);
       ("cycles", J.Int r.Scheduler.r_cycles);
       ("detected", J.Int r.Scheduler.r_detected);
       ("targets", J.Int r.Scheduler.r_targets);
       ("iterations", J.Int r.Scheduler.r_iterations);
       ("resumed", J.Bool r.Scheduler.r_resumed);
       ("tset", opt_str r.Scheduler.r_tset);
       ("counters", J.Obj (List.map (fun (k, v) -> (k, J.Int v)) counters));
     ]
    @ match spans with None -> [] | Some s -> [ ("spans", s) ])

let member_int json key =
  Option.bind (J.member key json) J.as_int

let member_str json key =
  match J.member key json with
  | Some (J.Str s) -> Some s
  | _ -> None

let result_of_message json =
  let i key = Option.value ~default:0 (member_int json key) in
  let status =
    match member_str json "status" with
    | Some "complete" -> Scheduler.Complete
    | Some "partial" ->
        Scheduler.Partial
          {
            reason = Option.value ~default:"" (member_str json "reason");
            stage = Option.value ~default:"" (member_str json "stage");
          }
    | Some "failed" | _ ->
        Scheduler.Failed
          (Option.value ~default:"worker protocol error"
             (member_str json "error"))
  in
  {
    Scheduler.r_status = status;
    r_tests = i "tests";
    r_cycles = i "cycles";
    r_detected = i "detected";
    r_targets = i "targets";
    r_iterations = i "iterations";
    r_tset = member_str json "tset";
    r_resumed =
      (match Option.bind (J.member "resumed" json) J.as_bool with
      | Some b -> b
      | None -> false);
  }

let counters_of_message json =
  match Option.bind (J.member "counters" json) J.as_obj with
  | None -> []
  | Some members ->
      List.filter_map
        (fun (k, v) -> Option.map (fun n -> (k, n)) (J.as_int v))
        members

(* --- Worker process ------------------------------------------------------ *)

(* The worker's whole life: read job lines off [from_parent], run them
   with a worker-private pool, ship each result (with this worker's
   telemetry drain) up [to_parent], and heartbeat on idle ticks.  EOF
   from the parent is an orderly shutdown; a chaos [Kill] exits 137 like
   the CLI's kill contract; a dead parent pipe exits 0.  Exits use
   [Unix._exit] so the child never flushes channel buffers it inherited
   from the parent. *)
let worker_main t ~from_parent ~to_parent =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let tel = Telemetry.create () in
  let pool = Option.bind t.make_pool (fun f -> f ~tel) in
  let sched =
    Scheduler.create ?pool ~tel ?chaos:t.chaos ?state_dir:t.state_dir
      ~persist_results:false ()
  in
  let send json =
    match send_line to_parent json with
    | () -> true
    | exception (Unix.Unix_error _ | Sys_error _) -> false
  in
  (* The worker's telemetry origin minus the parent's: both known exactly
     here, so re-based span timestamps lose no precision on the wire. *)
  let dt =
    match t.tel with
    | Some parent_tel -> Telemetry.origin tel -. Telemetry.origin parent_tel
    | None -> 0.0
  in
  let drain () =
    let snap = Telemetry.drain tel in
    let counters =
      List.filter (fun (_, v) -> v <> 0) snap.Telemetry.counters
    in
    let spans =
      (* Span buffers are preserved only when the parent stitches traces;
         otherwise they are folded away with the drain as before. *)
      if t.trace && snap.Telemetry.tracks <> [] then
        Some (spans_to_json ~dt snap.Telemetry.tracks)
      else None
    in
    (counters, spans)
  in
  let run_line line =
    match J.parse line with
    | Error _ -> true (* unparseable control frame: drop, stay alive *)
    | Ok json -> (
        let id = Option.value ~default:0 (member_int json "id") in
        let source = Option.value ~default:0 (member_int json "source") in
        let result =
          match Protocol.spec_of_json json with
          | Error message -> Scheduler.empty_result (Scheduler.Failed message)
          | Ok spec -> (
              match Scheduler.job_of_spec ~id ~source spec with
              | Error message ->
                  Scheduler.empty_result (Scheduler.Failed message)
              | Ok job -> Scheduler.execute sched job)
        in
        let counters, spans = drain () in
        send (result_message ?spans ~id result counters))
  in
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  let rec loop () =
    match Unix.select [ from_parent ] [] [] 1.0 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | [], _, _ ->
        (* Idle tick: heartbeat.  A chaos [Fail] here models a dropped
           heartbeat (skip the tick); [Kill] crashes the worker. *)
        let ok =
          match Chaos.hit t.chaos Chaos.worker_heartbeat with
          | () -> send hb_message
          | exception Sys_error _ -> true
        in
        if ok then loop () else Unix._exit 0
    | _ -> (
        match Unix.read from_parent chunk 0 (Bytes.length chunk) with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
        | 0 -> Unix._exit 0 (* parent closed the job channel: shut down *)
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            let continue = ref true in
            while !continue do
              let text = Buffer.contents buf in
              match String.index_opt text '\n' with
              | None -> continue := false
              | Some i ->
                  let line = String.sub text 0 i in
                  Buffer.clear buf;
                  Buffer.add_substring buf text (i + 1)
                    (String.length text - i - 1);
                  if line <> "" && not (run_line line) then Unix._exit 0
            done;
            loop ())
  in
  match loop () with
  | () -> Unix._exit 0
  | exception Chaos.Killed _ -> Unix._exit 137
  | exception _ -> Unix._exit 70

(* --- Parent: spawn / reap / restart ------------------------------------- *)

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Fork one worker into [w]'s slot.  Raises [Sys_error] when the chaos
   [worker.fork] point injects a spawn failure (the caller backs off and
   retries).  The child closes every inherited parent-side fd — sibling
   pipes via this module, server sockets via [on_child_fork] — so a
   sibling's EOF-based crash detection cannot be masked by a stray
   duplicate descriptor. *)
let spawn t w =
  Chaos.hit t.chaos Chaos.worker_fork;
  let job_r, job_w = Unix.pipe ~cloexec:false () in
  let ev_r, ev_w = Unix.pipe ~cloexec:false () in
  match Unix.fork () with
  | 0 ->
      close_quietly job_w;
      close_quietly ev_r;
      Array.iter
        (fun s ->
          if s.w_alive && s.w_slot <> w.w_slot then begin
            close_quietly s.w_to;
            close_quietly s.w_from
          end)
        t.workers;
      Option.iter (fun f -> f ()) t.on_child_fork;
      worker_main t ~from_parent:job_r ~to_parent:ev_w
  | pid ->
      close_quietly job_r;
      close_quietly ev_w;
      w.w_pid <- pid;
      w.w_to <- job_w;
      w.w_from <- ev_r;
      w.w_alive <- true;
      w.w_busy <- None;
      Buffer.clear w.w_buf;
      w.w_last_hb <- Unix.gettimeofday ();
      Log.emit t.log
        (if w.w_restarts = 0 then "worker.start" else "worker.restart")
        ~fields:
          [
            ("slot", J.Int w.w_slot);
            ("pid", J.Int pid);
            ("restarts", J.Int w.w_restarts);
          ]

let failed_result message =
  {
    Scheduler.r_status = Scheduler.Failed message;
    r_tests = 0;
    r_cycles = 0;
    r_detected = 0;
    r_targets = 0;
    r_iterations = 0;
    r_tset = None;
    r_resumed = false;
  }

(* A worker died (pipe EOF, or we killed it for a stale heartbeat): reap
   it, requeue or fail its in-flight job against the retry budget, and
   schedule the slot's respawn with exponential backoff. *)
let parent_outcome job result =
  {
    o_job = job;
    o_result = result;
    o_counters = [];
    o_worker_pid = -1;
    o_worker_slot = -1;
    o_tracks = [];
  }

let handle_death t ~sched w =
  if w.w_alive then begin
    w.w_alive <- false;
    close_quietly w.w_to;
    close_quietly w.w_from;
    Buffer.clear w.w_buf;
    (try ignore (Unix.waitpid [] w.w_pid) with Unix.Unix_error _ -> ());
    if not t.stopping then begin
      Telemetry.incr t.tel Telemetry.Worker_crashes;
      Log.emit t.log "worker.crash" ~level:Log.Warn
        ~fields:[ ("slot", J.Int w.w_slot); ("pid", J.Int w.w_pid) ];
      (match w.w_busy with
      | None -> ()
      | Some job ->
          w.w_busy <- None;
          if job.Scheduler.j_attempts >= t.job_retries then begin
            (* Poison job: every attempt took a worker down.  Fail it
               with the typed reason instead of crash-looping. *)
            Telemetry.incr t.tel Telemetry.Jobs_failed;
            Queue.push (parent_outcome job (failed_result "worker_crash"))
              t.results
          end
          else begin
            Telemetry.incr t.tel Telemetry.Jobs_requeued;
            Log.emit t.log "job.requeued" ~level:Log.Warn
              ~job:job.Scheduler.j_key
              ~fields:
                [
                  ("id", J.Int job.Scheduler.j_id);
                  ("attempts", J.Int job.Scheduler.j_attempts);
                ];
            Scheduler.requeue sched job
          end);
      w.w_restart_at <- Unix.gettimeofday () +. backoff t w.w_restarts
    end
  end

(* Respawn dead slots whose backoff expired; retire slots out of restart
   budget; kill idle workers whose heartbeat went stale. *)
let pump t ~sched =
  let now = Unix.gettimeofday () in
  Array.iter
    (fun w ->
      if (not w.w_alive) && (not w.w_retired) && now >= w.w_restart_at then begin
        if w.w_restarts >= t.restart_limit then begin
          w.w_retired <- true;
          Log.emit t.log "worker.retired" ~level:Log.Warn
            ~fields:
              [ ("slot", J.Int w.w_slot); ("restarts", J.Int w.w_restarts) ]
        end
        else begin
          w.w_restarts <- w.w_restarts + 1;
          match spawn t w with
          | () -> Telemetry.incr t.tel Telemetry.Worker_restarts
          | exception Sys_error _ -> w.w_restart_at <- now +. backoff t w.w_restarts
        end
      end;
      if w.w_alive && w.w_busy = None && now -. w.w_last_hb > t.hb_stale then begin
        (* An idle worker that stopped heartbeating is wedged: replace
           it. *)
        (try Unix.kill w.w_pid Sys.sigkill with Unix.Unix_error _ -> ());
        handle_death t ~sched w
      end;
      (match w.w_busy with
      | Some job
        when w.w_alive
             && (match job.Scheduler.j_timeout with
                | Some tm ->
                    now -. job.Scheduler.j_dispatched > tm +. t.hb_stale
                | None -> false) ->
          (* A busy worker polls its own budget, so a deadline overrun
             longer than the staleness threshold means the process is
             wedged (SIGSTOPped, livelocked below the poll sites), not
             slow: kill it so the requeue/shed machinery can answer the
             submitter.  Jobs without a timeout keep the old contract —
             crash detection by pipe EOF only. *)
          (try Unix.kill w.w_pid Sys.sigkill with Unix.Unix_error _ -> ());
          handle_death t ~sched w
      | _ -> ()))
    t.workers

(* --- Parent: event channel and dispatch --------------------------------- *)

let handle_message t w json =
  w.w_last_hb <- Unix.gettimeofday ();
  match member_str json "op" with
  | Some "hb" -> ()
  | Some "result" -> (
      match w.w_busy with
      | Some job
        when Some job.Scheduler.j_id = member_int json "id" ->
          w.w_busy <- None;
          Queue.push
            {
              o_job = job;
              o_result = result_of_message json;
              o_counters = counters_of_message json;
              o_worker_pid = w.w_pid;
              o_worker_slot = w.w_slot;
              o_tracks = (if t.trace then spans_of_message json else []);
            }
            t.results
      | _ -> () (* stale or duplicate result: drop *))
  | _ -> ()

let handle_readable t ~sched fd =
  match
    Array.fold_left
      (fun acc w -> if w.w_alive && w.w_from == fd then Some w else acc)
      None t.workers
  with
  | None -> ()
  | Some w -> (
      let chunk = Bytes.create 65536 in
      match Unix.read w.w_from chunk 0 (Bytes.length chunk) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error _ -> handle_death t ~sched w
      | 0 -> handle_death t ~sched w
      | n ->
          Buffer.add_subbytes w.w_buf chunk 0 n;
          let continue = ref true in
          while !continue && w.w_alive do
            let text = Buffer.contents w.w_buf in
            match String.index_opt text '\n' with
            | None -> continue := false
            | Some i ->
                let line = String.sub text 0 i in
                Buffer.clear w.w_buf;
                Buffer.add_substring w.w_buf text (i + 1)
                  (String.length text - i - 1);
                if line <> "" then begin
                  match J.parse line with
                  | Ok json -> handle_message t w json
                  | Error _ -> ()
                end
          done)

let idle_worker t =
  Array.fold_left
    (fun acc w ->
      match acc with
      | Some _ -> acc
      | None -> if w.w_alive && w.w_busy = None then Some w else None)
    None t.workers

(* Hand queued jobs to idle workers, one job per worker.  The
   [supervisor.dispatch] chaos point fires per dispatch in the parent —
   occurrence counting stays deterministic — and a [Kill] rule there
   SIGKILLs the chosen worker right after the job is on the wire,
   modelling a crash mid-job (the requeue/restart machinery takes over
   via pipe EOF). *)
let dispatch t ~sched =
  let rec go () =
    match idle_worker t with
    | None -> ()
    | Some w -> (
        match Scheduler.pick sched with
        | None -> ()
        | Some job -> (
            job.Scheduler.j_attempts <- job.Scheduler.j_attempts + 1;
            let kill_after =
              match Chaos.hit t.chaos Chaos.supervisor_dispatch with
              | () -> false
              | exception Chaos.Killed _ -> true
              | exception Sys_error _ -> false (* transient: dispatch anyway *)
            in
            match send_line w.w_to (job_message job) with
            | () ->
                w.w_busy <- Some job;
                Log.emit t.log "job.dispatched" ~job:job.Scheduler.j_key
                  ~fields:
                    [
                      ("id", J.Int job.Scheduler.j_id);
                      ("worker", J.Int w.w_slot);
                      ("pid", J.Int w.w_pid);
                    ];
                if kill_after then
                  (try Unix.kill w.w_pid Sys.sigkill
                   with Unix.Unix_error _ -> ());
                go ()
            | exception (Unix.Unix_error _ | Sys_error _) ->
                (* The worker died between selection and send: requeue
                   against the budget and let pump respawn the slot. *)
                handle_death t ~sched w;
                if job.Scheduler.j_attempts >= t.job_retries then begin
                  Telemetry.incr t.tel Telemetry.Jobs_failed;
                  Queue.push (parent_outcome job (failed_result "worker_crash"))
                    t.results
                end
                else begin
                  Telemetry.incr t.tel Telemetry.Jobs_requeued;
                  Log.emit t.log "job.requeued" ~level:Log.Warn
                    ~job:job.Scheduler.j_key
                    ~fields:
                      [
                        ("id", J.Int job.Scheduler.j_id);
                        ("attempts", J.Int job.Scheduler.j_attempts);
                      ];
                  Scheduler.requeue sched job
                end;
                go ()))
  in
  go ()

(* --- Lifecycle and queries ---------------------------------------------- *)

let create ?tel ?chaos ?log ?(trace = false) ?state_dir ?(job_retries = 3)
    ?(restart_limit = 5) ?(backoff_base = 0.05) ?(hb_stale = 30.0) ?make_pool
    ?on_child_fork ~workers () =
  if workers < 1 then invalid_arg "Supervisor.create: workers must be >= 1";
  if job_retries < 1 then invalid_arg "Supervisor.create: job_retries must be >= 1";
  let t =
    {
      tel;
      chaos;
      log;
      trace;
      state_dir;
      job_retries;
      restart_limit;
      backoff_base;
      hb_stale;
      make_pool;
      on_child_fork;
      workers =
        Array.init workers (fun slot ->
            {
              w_slot = slot;
              w_pid = -1;
              w_to = Unix.stdin;
              w_from = Unix.stdin;
              w_buf = Buffer.create 256;
              w_busy = None;
              w_alive = false;
              w_retired = false;
              w_restarts = 0;
              w_restart_at = 0.0;
              w_last_hb = 0.0;
            });
      results = Queue.create ();
      rng = Rng.of_name ~seed:(Unix.getpid ()) "supervisor/backoff";
      stopping = false;
    }
  in
  Array.iter
    (fun w ->
      match spawn t w with
      | () -> ()
      | exception Sys_error _ ->
          (* Initial spawn failed (chaos worker.fork): leave the slot
             dead; pump retries it on the restart budget. *)
          w.w_restart_at <- Unix.gettimeofday () +. backoff t 0)
    t.workers;
  t

let fds t =
  Array.fold_left
    (fun acc w -> if w.w_alive then w.w_from :: acc else acc)
    [] t.workers

let take_results t =
  let out = ref [] in
  while not (Queue.is_empty t.results) do
    out := Queue.pop t.results :: !out
  done;
  List.rev !out

let busy_count t =
  Array.fold_left
    (fun acc w -> if w.w_alive && w.w_busy <> None then acc + 1 else acc)
    0 t.workers

let live_count t =
  Array.fold_left (fun acc w -> acc + if w.w_alive then 1 else 0) 0 t.workers

let all_retired t = Array.for_all (fun w -> w.w_retired) t.workers

let worker_pids t =
  Array.fold_left
    (fun acc w -> if w.w_alive then (w.w_slot, w.w_pid) :: acc else acc)
    [] t.workers
  |> List.rev

let stop t =
  t.stopping <- true;
  Array.iter
    (fun w ->
      if w.w_alive then begin
        w.w_alive <- false;
        (* Closing the job channel is the shutdown signal: the worker
           sees EOF on its next loop turn and exits 0. *)
        close_quietly w.w_to;
        close_quietly w.w_from;
        (try ignore (Unix.waitpid [] w.w_pid) with Unix.Unix_error _ -> ())
      end)
    t.workers
