(* The baseline flow of [4]: the combinational test set C, viewed as scan
   tests with length-one PI sequences, compacted by the combining
   procedure.  Produces the paper's "[4] init" and "[4] comp" columns. *)

module Circuit = Asc_netlist.Circuit
module Scan_test = Asc_scan.Scan_test

type result = {
  initial_tests : Scan_test.t array;
  final_tests : Scan_test.t array;
  cycles_initial : int;
  cycles_final : int;
  combinations : int;
}

let run ?pool ?(combine = Asc_compact.Combine.default_config) (p : Pipeline.prepared) =
  let c = p.circuit in
  let initial_tests = Array.map Scan_test.of_pattern p.comb_tests in
  let cycles_initial = Asc_scan.Time_model.cycles_of_tests c initial_tests in
  let combined =
    Asc_compact.Combine.run ?pool ~config:combine c initial_tests ~faults:p.faults
      ~targets:p.targets
  in
  {
    initial_tests;
    final_tests = combined.tests;
    cycles_initial;
    cycles_final = Asc_scan.Time_model.cycles_of_tests c combined.tests;
    combinations = combined.combinations;
  }
