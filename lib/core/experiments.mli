(** Per-circuit experiment orchestration: everything Tables 1–5 need for
    one benchmark circuit. *)

type circuit_run = {
  name : string;
  prepared : Pipeline.prepared;
  prepare_seconds : float;
      (** Wall-clock spent in {!Pipeline.prepare} (fault collapse + ATPG). *)
  directed : Pipeline.result;  (** Proposed, directed T0 ([10]–[12] columns). *)
  random : Pipeline.result;  (** Proposed, random T0 ("rand" columns). *)
  static_baseline : Baseline_static.result;  (** The [4] columns. *)
  dynamic_baseline : Asc_compact.Dynamic_baseline.result option;
      (** The [2,3] column (optional; slowest baseline). *)
}

(** Clock cycles of a dynamic-baseline test set. *)
val dynamic_cycles :
  Asc_compact.Dynamic_baseline.result -> Asc_netlist.Circuit.t -> int

val config_for : seed:int -> t0_source:Pipeline.t0_source -> Pipeline.config

val run_circuit :
  ?pool:Asc_util.Domain_pool.t ->
  ?tel:Asc_util.Telemetry.t ->
  ?seed:int ->
  ?with_dynamic:bool ->
  ?random_t0_len:int ->
  string ->
  circuit_run
