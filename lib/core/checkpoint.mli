(** Plain-text serialization of {!Pipeline.snapshot} — the state a killed
    [asc run] needs to continue from where it stopped and still produce a
    bit-identical result (format in docs/ROBUSTNESS.md).

    Writes are atomic (temp file + rename): a crash mid-write leaves the
    previous checkpoint intact.  On top of that the layer is self-healing:
    the v2 format carries a CRC-32 trailer so silent corruption cannot
    load, {!write_file} rotates previous snapshots ([keep]) and retries
    transient failures, and {!load_latest_valid} falls back across rotated
    copies when the newest one is corrupt or missing. *)

(** Raised by the parser on a malformed checkpoint file (including a v2
    CRC mismatch). *)
exception Corrupt of { line : int; message : string }

(** Raised by {!validate} when a checkpoint belongs to a different
    (circuit, seed, T0 source, C) than the resuming run. *)
exception Incompatible of string

(** Serializes in the v2 format: body plus a [crc] trailer line covering
    every byte before it. *)
val to_string : Pipeline.snapshot -> string

(** Parses v1 (no trailer) and v2 (trailer required and verified) files.
    Raises {!Corrupt} on anything else — in particular, no bit-flipped or
    truncated v2 file can load as a snapshot that differs from what was
    saved. *)
val of_string : string -> Pipeline.snapshot

(** Check a loaded snapshot against the run about to resume from it. *)
val validate : Pipeline.prepared -> config:Pipeline.config -> Pipeline.snapshot -> unit

(** [write_file ?tel ?chaos ?keep ?retries path s] atomically replaces
    [path] with [s].

    [keep] (default 1) is the total number of snapshots retained: before
    the write, existing copies are promoted one suffix up
    ([path] to [path.1], [path.1] to [path.2], …), each by one atomic
    rename.  [retries] (default 2) bounds retry-with-backoff on transient
    [Sys_error]s; the error is re-raised once retries are exhausted, and
    the stray temp file is removed on every failure path (except a chaos
    [Kill], which models a hard crash).

    [tel] records a ["checkpoint:write"] span and bumps
    [Checkpoint_writes] on success and [Checkpoint_write_failures] per
    failed attempt.  [chaos] arms the [checkpoint.open] /
    [checkpoint.output] / [checkpoint.rename] / [checkpoint.rotate]
    injection points. *)
val write_file :
  ?tel:Asc_util.Telemetry.t ->
  ?chaos:Asc_util.Chaos.t ->
  ?keep:int ->
  ?retries:int ->
  string ->
  Pipeline.snapshot ->
  unit

(** [chaos] arms the [checkpoint.read] injection point. *)
val read_file : ?chaos:Asc_util.Chaos.t -> string -> Pipeline.snapshot

type loaded = {
  snapshot : Pipeline.snapshot;
  source : string;  (** The file the snapshot was actually read from. *)
  recovered : bool;  (** [source] is a rotated copy, not [path] itself. *)
}

(** [load_latest_valid ?tel ?chaos path] reads the newest valid snapshot
    among [path], [path.1], [path.2], … (in that order — newest first).
    Copies that are missing or raise {!Corrupt} are skipped; a successful
    fallback bumps the [Checkpoint_recoveries] counter.  If no copy
    loads, re-raises the {e newest} copy's error ([Sys_error] when no
    file exists at all). *)
val load_latest_valid :
  ?tel:Asc_util.Telemetry.t -> ?chaos:Asc_util.Chaos.t -> string -> loaded
