(** Plain-text serialization of {!Pipeline.snapshot} — the state a killed
    [asc run] needs to continue from where it stopped and still produce a
    bit-identical result (format in docs/ROBUSTNESS.md).

    Writes are atomic (temp file + rename): a crash mid-write leaves the
    previous checkpoint intact. *)

(** Raised by the parser on a malformed checkpoint file. *)
exception Corrupt of { line : int; message : string }

(** Raised by {!validate} when a checkpoint belongs to a different
    (circuit, seed, T0 source, C) than the resuming run. *)
exception Incompatible of string

val to_string : Pipeline.snapshot -> string
val of_string : string -> Pipeline.snapshot

(** Check a loaded snapshot against the run about to resume from it. *)
val validate : Pipeline.prepared -> config:Pipeline.config -> Pipeline.snapshot -> unit

(** [tel] records a ["checkpoint:write"] span and bumps the
    [Checkpoint_writes] counter. *)
val write_file : ?tel:Asc_util.Telemetry.t -> string -> Pipeline.snapshot -> unit

val read_file : string -> Pipeline.snapshot
