(** Supervised multi-worker job execution for [asc serve --workers N]
    (docs/SERVING.md, "Process model & failure semantics").

    The supervisor forks [workers] processes, each running the existing
    single-threaded job loop with its own domain pool, and gives the
    parent a dispatch/collect interface that plugs into the server's
    select loop: {!fds} to watch, {!handle_readable} on activity,
    {!dispatch} to hand queued jobs to idle workers, {!pump} to reap
    crashes and respawn with exponential backoff, {!take_results} to
    collect finished jobs.

    Bit-identity is preserved: each job runs on exactly one worker with
    a deterministic pool, so a supervised result is byte-identical to
    in-process serving and to the one-shot CLI.

    Failure semantics: a worker crash requeues its in-flight job, up to
    [job_retries] total dispatch attempts per job — past that the job
    fails cleanly with a typed [Failed "worker_crash"] result.  A slot
    restarts with full-jitter exponential backoff (uniform in
    [\[0, backoff_base · 2{^restarts}\]], capped at 5 s —
    {!Asc_util.Backoff.full_jitter}, so slots killed by one event don't
    respawn in lockstep) up to [restart_limit] times, then is retired;
    when every slot is retired ({!all_retired}), the caller should
    degrade to in-process execution.  Idle workers heartbeat about once
    a second and are killed/respawned when silent past [hb_stale]
    seconds; busy workers don't heartbeat (they block in the job,
    bounded by its budget) — but a busy worker that overruns its job's
    deadline by more than [hb_stale] has stopped polling entirely
    (SIGSTOP, livelock) and is killed/respawned the same way, its job
    requeued against the retry budget.

    Telemetry (parent side): [worker_crashes], [jobs_requeued],
    [worker_restarts], and [jobs_failed] when a retry budget exhausts.
    Worker-side counters arrive with each result via {!take_results} for
    the server to fold into its cumulative table. *)

type t

(** One finished job as the parent collects it.  [o_counters] is the
    worker's telemetry drain (nonzero counters only) for the server to
    fold into the fleet table.  [o_tracks] carries the worker's span
    buffers — already re-based onto the parent telemetry timeline — and
    is nonempty only when the supervisor was created with
    [~trace:true]; [o_worker_pid]/[o_worker_slot] identify the process
    that ran the job ([-1] when none did, e.g. a retry-budget
    exhaustion synthesised by the parent). *)
type outcome = {
  o_job : Scheduler.job;
  o_result : Scheduler.result;
  o_counters : (string * int) list;
  o_worker_pid : int;
  o_worker_slot : int;
  o_tracks : Asc_util.Telemetry.track list;
}

(** [create ~workers ()] forks the initial fleet.  [make_pool] runs {e in
    the child} after fork to build the worker-private domain pool
    (domains do not survive fork, so the parent of a supervised server
    must not own a pool); it receives the worker's own telemetry handle
    so pool task counters and spans land in the drains the worker ships
    with its results.  [on_child_fork] also runs in the child, for
    the server to close its listener and client sockets.  [state_dir]
    gives workers per-job checkpoint/resume; workers never write the
    result-cache files (the parent is the single writer).  [chaos] arms
    [worker.fork] and [supervisor.dispatch] in the parent and is
    inherited by workers across fork for in-worker points.

    [log] receives structured lifecycle events in the parent
    ([worker.start] / [worker.restart] / [worker.crash] /
    [worker.retired] / [job.dispatched] / [job.requeued]) — workers
    never write the event log, so lines cannot interleave.  [trace]
    (default [false]) makes each worker ship its span buffers with
    every result, re-based worker-side onto the parent's telemetry
    timeline so the server can stitch one fleet-wide trace; off, span
    buffers are folded away with the drain as before. *)
val create :
  ?tel:Asc_util.Telemetry.t ->
  ?chaos:Asc_util.Chaos.t ->
  ?log:Asc_util.Log.t ->
  ?trace:bool ->
  ?state_dir:string ->
  ?job_retries:int ->
  ?restart_limit:int ->
  ?backoff_base:float ->
  ?hb_stale:float ->
  ?make_pool:(tel:Asc_util.Telemetry.t -> Asc_util.Domain_pool.t option) ->
  ?on_child_fork:(unit -> unit) ->
  workers:int ->
  unit ->
  t

(** Event-channel fds of live workers, for the server's select set. *)
val fds : t -> Unix.file_descr list

(** Service one readable worker fd: buffer frames, record heartbeats,
    collect results; EOF reaps the worker, requeues its in-flight job on
    [sched] (or fails it past the retry budget) and schedules a respawn. *)
val handle_readable : t -> sched:Scheduler.t -> Unix.file_descr -> unit

(** Hand queued jobs ({!Scheduler.pick}) to idle workers, one in-flight
    job per worker, until either runs out. *)
val dispatch : t -> sched:Scheduler.t -> unit

(** Housekeeping, called once per loop turn: respawn dead slots whose
    backoff expired (retiring those out of restart budget) and replace
    idle workers with stale heartbeats. *)
val pump : t -> sched:Scheduler.t -> unit

(** Finished jobs since the last call — see {!outcome}. *)
val take_results : t -> outcome list

(** Workers currently executing a job — the drain-mode exit gate. *)
val busy_count : t -> int

val live_count : t -> int

(** Every slot exhausted its restart budget: degrade to in-process
    execution. *)
val all_retired : t -> bool

(** [(slot, pid)] of every live worker, in slot order — lets tests (and
    diagnostics) address a specific worker process, e.g. to SIGSTOP it
    and exercise the staleness path. *)
val worker_pids : t -> (int * int) list

(** Orderly shutdown: close job channels (workers exit on EOF) and reap
    every child.  In-flight work is abandoned — drain first. *)
val stop : t -> unit
