(** Job scheduling for the serving layer (docs/SERVING.md).

    A scheduler owns the run-side state of [asc serve]: per-source FIFO
    queues multiplexed round-robin over one shared {!Asc_util.Domain_pool},
    a content-addressed cache of completed results, and per-job
    checkpoint/resume through a state directory.

    {b Fair sharing.}  The pool must never be driven from two domains at
    once, so the scheduler time-multiplexes it at job granularity: each
    {!run_next} dispatches exactly one job, which gets the whole pool to
    itself.  Fairness across clients comes from the dispatch order — one
    job per source in rotation — not from slicing the pool.  Because every
    job runs with the full pool and the pipeline is bit-identical for any
    domain count, a served job reproduces the one-shot [asc run] result
    exactly.

    {b Budgets.}  Each job gets a private {!Asc_util.Budget} created at
    dispatch from its spec's timeout; the shared pool carries {e no}
    budget.  A deadline therefore unwinds only its own job — the pool
    survives and the next dispatch is unaffected.

    {b Caching.}  Submissions are keyed by a content hash of the canonical
    netlist text plus every result-affecting option.  Only [Complete]
    results enter the cache; a [Partial] or failed job is recomputed on
    resubmission (resuming from its checkpoint when one survives). *)

type spec = {
  sp_circuit : string option;  (** Registry name (see [asc list]). *)
  sp_netlist : string option;  (** Inline [.bench] text (exclusive with [sp_circuit]). *)
  sp_seed : int;
  sp_t0 : string;  (** ["directed"] or ["random"]. *)
  sp_timeout : float option;  (** Per-job wall-clock budget, seconds. *)
}

val default_spec : spec

type job = {
  j_id : int;  (** Dense, scheduler-local; echoed in protocol responses. *)
  j_key : string;  (** Content hash; also the checkpoint file stem. *)
  j_source : int;  (** Submitting connection, for round-robin fairness. *)
  j_circuit : Asc_netlist.Circuit.t;
  j_name : string;
  j_config : Pipeline.config;
  j_timeout : float option;
  j_spec : spec;
      (** The original submission, kept so a supervisor can ship the job
          to a worker process verbatim (re-resolving the {e spec}, not
          the canonical netlist, preserves registry-vs-inline budgets). *)
  mutable j_attempts : int;
      (** Dispatch attempts so far — the supervisor's retry budget. *)
  j_submitted : float;  (** [Unix.gettimeofday] at submission. *)
  mutable j_dispatched : float;
      (** Stamped by {!pick}.  With [j_submitted] and the delivery time,
          the server derives the queue-wait / execute / end-to-end
          latency histograms — pure observability, never consulted by
          scheduling decisions. *)
}

type status =
  | Complete
  | Partial of { reason : string; stage : string }
      (** The job's budget fired; the result fields hold the best test set
          found (maps to the CLI's exit-3 contract). *)
  | Failed of string  (** The job raised; no result fields are meaningful. *)

type result = {
  r_status : status;
  r_tests : int;
  r_cycles : int;
  r_detected : int;
  r_targets : int;
  r_iterations : int;
  r_tset : string option;
      (** The test set in {!Asc_scan.Tset_io} format — byte-identical to
          what [asc save-tests] writes for the same inputs. *)
  r_resumed : bool;  (** The run resumed from a checkpoint in the state dir. *)
}

type submit_outcome =
  | Accepted of job  (** Queued; a later {!run_next} will execute it. *)
  | Cached of result  (** Answered from the result cache. *)
  | Rejected of string  (** Spec invalid (bad circuit, bad netlist, bad t0). *)
  | Overloaded of { retry_after_ms : int }
      (** Refused at admission: a queue cap ([max_pending] /
          [max_pending_per_source]) was hit.  [retry_after_ms] is a
          backpressure hint proportional to the backlog (100 ms per
          queued job, capped at 5 s).  Resolution errors and cache hits
          are never overload-rejected — caps apply only to work that
          would occupy the queue. *)

(** A result with the given status and every other field zero/absent. *)
val empty_result : status -> result

type t

(** [create ?pool ?tel ?chaos ?state_dir ()] — the pool is shared by every
    job and must have been created {e without} a budget (job budgets are
    per-dispatch).  [state_dir], when given, enables per-job
    checkpointing: job [k] writes [state_dir/job-<k>.ckpt] (rotated,
    [keep = 2]) at every snapshot boundary, and a resubmission of [k]
    resumes from the newest valid copy.  The directory is created if
    missing.  [chaos] arms the [serve.dispatch] point plus the checkpoint
    I/O points of every job.

    [persist_results] (default [true]) additionally backs the result
    cache with {!Result_cache} files under [state_dir], so completed
    results survive restarts.  Workers in a supervised server pass
    [false]: the parent is the single writer of the results store, while
    workers still own their per-key job checkpoints.

    [log], when given, receives structured lifecycle events
    ([job.submitted] / [job.cache_hit] / [job.rejected] / [job.shed] /
    [job.dispatched]) — see {!Asc_util.Log}.

    [max_pending] / [max_pending_per_source] bound the global and
    per-source queue depths: a submission that would exceed either is
    answered {!Overloaded} instead of queued (admission control —
    docs/SERVING.md "Fleet").  [None] (the default) means unbounded,
    preserving the pre-cap behaviour; both must be [>= 1]. *)
val create :
  ?pool:Asc_util.Domain_pool.t ->
  ?tel:Asc_util.Telemetry.t ->
  ?chaos:Asc_util.Chaos.t ->
  ?log:Asc_util.Log.t ->
  ?state_dir:string ->
  ?persist_results:bool ->
  ?max_pending:int ->
  ?max_pending_per_source:int ->
  unit ->
  t

(** The content hash a spec would be cached under.  Raises nothing: specs
    that fail to resolve have no key and [key_of_spec] returns [Error]
    with the same message {!submit} would reject with. *)
val key_of_spec : spec -> (string, string) Stdlib.result

(** [submit t ~source spec] resolves and enqueues a job.  Resolution
    (registry lookup or netlist parse, option validation) happens here, so
    a bad spec is rejected synchronously and never occupies the queue.
    Bumps [Jobs_submitted] for every accepted or cached submission, and
    [Result_cache_hits] / [Result_cache_misses] accordingly; a hit served
    from the on-disk store additionally bumps
    [Result_cache_persisted_hits]. *)
val submit : t -> source:int -> spec -> submit_outcome

(** Jobs queued and not yet dispatched — the redo queue plus every
    per-source FIFO, computed from the queues themselves so the count
    cannot drift. *)
val pending : t -> int

(** {1 Supervisor interface}

    A supervised server splits dispatch from execution: the parent
    {!pick}s jobs and ships their specs to worker processes, workers
    {!job_of_spec} + {!execute} them, and the parent folds results back
    with {!cache_store}.  In-process serving keeps using {!run_next},
    which composes the same pieces. *)

(** Pop the next job — requeued in-flight jobs first, then round-robin
    source order.  [None] when nothing is queued.

    Deadline-aware shedding: a queued job whose submit-side [timeout]
    has already elapsed is dropped instead of dispatched — it could only
    have produced an immediate budget-exhausted partial — and parked on
    the shed queue with a [Partial {reason="deadline"; stage="queue"}]
    result (bumping [Jobs_shed] and [Jobs_partial]); picking continues
    with the next live job.  Drain the drops with {!take_shed}. *)
val pick : t -> job option

(** Deadline-shed (job, result) pairs awaiting delivery, oldest first;
    the queue is emptied.  The server calls this every loop turn so shed
    submitters still receive their partial responses. *)
val take_shed : t -> (job * result) list

(** Put a dispatched job back at the head of the line (its worker
    crashed).  The caller owns the retry budget ([j_attempts]). *)
val requeue : t -> job -> unit

(** Resolve a spec into a runnable job {e without} queueing it or bumping
    the submission counters — the worker side of the control channel,
    where the parent already accounted for the submission.  [id] is the
    parent's job id, echoed so results match up. *)
val job_of_spec : id:int -> source:int -> spec -> (job, string) Stdlib.result

(** Run one job to its outcome on the calling domain (blocking) — the
    execution half of {!run_next}, with identical telemetry, checkpoint
    and chaos behaviour. *)
val execute : t -> job -> result

(** Record a finished job's result: [Complete] results (which always
    carry a test set) enter the cache — and its persistent store, when
    enabled; anything else is a no-op.  The supervised parent calls this
    with worker-produced results. *)
val cache_store : t -> key:string -> result -> unit

(** [run_next t] dispatches the next job in round-robin source order and
    runs it to its outcome on the calling domain (blocking).  [None] when
    no job is queued.  Completion bumps [Jobs_completed] / [Jobs_partial]
    / [Jobs_failed]; a checkpoint resume bumps [Jobs_resumed].  A chaos
    [Kill] propagates (the server dies like a crash); every other
    exception is captured as [Failed].  After a [Complete] outcome the
    job's checkpoints are deleted and the result is cached. *)
val run_next : t -> (job * result) option
