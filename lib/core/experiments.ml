(* Per-circuit experiment orchestration.

   Runs, for one benchmark circuit, everything the paper's Tables 1-5
   need: the shared preparation (fault list + combinational set C), the
   proposed procedure with a directed T0 and with a random T0 of length
   1000, the static baseline of [4], and (optionally — it is the slowest
   and least faithful baseline) the dynamic baseline of [2,3]. *)

module Circuit = Asc_netlist.Circuit

type circuit_run = {
  name : string;
  prepared : Pipeline.prepared;
  prepare_seconds : float; (* wall-clock of Pipeline.prepare (ATPG) *)
  directed : Pipeline.result;
  random : Pipeline.result;
  static_baseline : Baseline_static.result;
  dynamic_baseline : Asc_compact.Dynamic_baseline.result option;
}

let dynamic_cycles (d : Asc_compact.Dynamic_baseline.result) c =
  Asc_scan.Time_model.cycles_of_tests c d.tests

let config_for ~seed ~t0_source = { Pipeline.default_config with seed; t0_source }

let run_circuit ?pool ?tel ?(seed = 1) ?(with_dynamic = false) ?(random_t0_len = 1000)
    name =
  let c = Asc_circuits.Registry.get ~seed name in
  let budget = Asc_circuits.Registry.t0_budget name in
  let base_config = config_for ~seed ~t0_source:(Pipeline.Directed budget) in
  let t_prepare = Unix.gettimeofday () in
  let prepared = Pipeline.prepare ?pool ?tel ~config:base_config c in
  let prepare_seconds = Unix.gettimeofday () -. t_prepare in
  let directed = Pipeline.run ?pool ?tel ~config:base_config prepared in
  let random =
    Pipeline.run ?pool ?tel
      ~config:(config_for ~seed ~t0_source:(Pipeline.Random_seq random_t0_len))
      prepared
  in
  let static_baseline = Baseline_static.run ?pool prepared in
  let dynamic_baseline =
    if with_dynamic then
      let rng = Asc_util.Rng.of_name ~seed (name ^ "/dynamic") in
      Some
        (Asc_compact.Dynamic_baseline.run c ~faults:prepared.faults
           ~targets:prepared.targets ~rng)
    else None
  in
  { name; prepared; prepare_seconds; directed; random; static_baseline; dynamic_baseline }
