(* The proposed procedure, extended to partial scan.

   The paper notes (Section 1) that "the proposed procedure can be
   extended to the case of partial-scan circuits"; this module is that
   extension.  The four phases carry over with partial-scan semantics:

   - scan-in vectors set only the scanned flip-flops; the unscanned ones
     are X at test start (conservative 3-valued evaluation);
   - the scan-out observes the scanned flip-flops only;
   - a scan operation costs N_scanned cycles, so the time model rewards
     compaction less than full scan does — and rewards the long-sequence
     shape *more*, since functional cycles are where unscanned state gets
     set and observed.

   Phase 1 uses the partial analogues of the candidate-selection and
   detection-time-profile queries ([Asc_scan.Partial]); Phase 2 is a
   chunked omission verified under partial semantics; Phase 3 covers with
   length-one tests from C as before (their partial detection is weaker:
   one functional cycle can't initialise unscanned state); Phase 4 is a
   pair-combining pass verified under partial semantics.

   Because detection is 3-valued and unscanned state starts X, complete
   coverage of the full-scan target set is generally *not* reachable —
   the result reports the partial-scan detectable coverage instead. *)

open Asc_util
module Circuit = Asc_netlist.Circuit
module Scan_test = Asc_scan.Scan_test
module Partial = Asc_scan.Partial

type config = {
  seed : int;
  t0_source : Pipeline.t0_source;
  max_iterations : int;
  omission_chunk : int;
  omission_checks : int;
  combine_attempts : int;
}

let default_config =
  {
    seed = 1;
    t0_source = Pipeline.Directed 1000;
    max_iterations = 4;
    omission_chunk = 16;
    omission_checks = 120;
    combine_attempts = 2_000;
  }

type result = {
  chain : Partial.chain;
  tau_seq : Scan_test.t;
  f_seq : Bitvec.t;
  added : Scan_test.t array;
  final_tests : Scan_test.t array;
  final_detected : Bitvec.t;
  cycles_initial : int;
  cycles_final : int;
}

(* Phase 1, Step 2 under partial scan: best candidate scan-in from C. *)
let select_scan_in c chain ~faults ~candidates ~t0 ~f0 ~targets ~selected =
  let subset = Array.of_list (Bitvec.to_list (Bitvec.diff targets f0)) in
  let sis = Array.map (fun (p : Asc_sim.Pattern.t) -> p.state) candidates in
  let rows = Partial.candidate_detections c chain ~sis ~seq:t0 ~faults ~subset in
  let best_of pred =
    let best = ref (-1) and best_count = ref (-1) in
    Array.iteri
      (fun j _ ->
        if pred j then begin
          let count = Bitvec.count (Bitmat.row rows j) in
          if count > !best_count then begin
            best := j;
            best_count := count
          end
        end)
      candidates;
    (!best, !best_count)
  in
  let unsel, unsel_count = best_of (fun j -> not (Bitvec.get selected j)) in
  let sel, sel_count = best_of (fun j -> Bitvec.get selected j) in
  let index, already_selected =
    if unsel >= 0 && unsel_count >= sel_count then (unsel, false) else (sel, true)
  in
  let f_si = Bitvec.union f0 (Bitmat.row rows index) in
  Bitvec.inter_into ~into:f_si targets;
  (index, f_si, already_selected)

(* Phase 1, Step 3 under partial scan: earliest valid scan-out time. *)
let select_scan_out c chain ~faults ~si ~t0 ~f_si ~targets =
  let len = Array.length t0 in
  let full_test = Scan_test.create ~si ~seq:t0 in
  let subset = Array.of_list (Bitvec.to_list f_si) in
  let prof = Partial.profile c chain full_test ~faults ~subset in
  let allowed = Bitvec.create ~default:true len in
  Array.iteri
    (fun k _ ->
      let ok = Bitvec.copy prof.state_diff_at.(k) in
      if prof.po_time.(k) < len then
        for u = prof.po_time.(k) to len - 1 do
          Bitvec.set ok u
        done;
      Bitvec.inter_into ~into:allowed ok)
    subset;
  let u = match Bitvec.first_set allowed with -1 -> len - 1 | u -> u in
  let test = Scan_test.truncate full_test ~u in
  let f_so = Bitvec.inter (Partial.detect ~only:targets c chain test ~faults) targets in
  (test, u, f_so)

(* Phase 2 under partial scan: chunked omission with subset checks. *)
let omit c chain (test : Scan_test.t) ~faults ~required ~config =
  let keeps candidate =
    let det = Partial.detect ~only:required c chain candidate ~faults in
    Bitvec.subset required det
  in
  let current = ref test in
  let checks = ref 0 in
  let chunk = ref (min config.omission_chunk (max 1 (Scan_test.length test / 4))) in
  while !chunk land (!chunk - 1) <> 0 do
    chunk := !chunk land (!chunk - 1)
  done;
  if !chunk = 0 then chunk := 1;
  let continue_ = ref true in
  while !continue_ do
    let len = Scan_test.length !current in
    let p = ref (len - !chunk) in
    while !p >= 0 && !checks < config.omission_checks do
      (if !p + !chunk <= Scan_test.length !current && !chunk < Scan_test.length !current
       then begin
         incr checks;
         let candidate = Scan_test.omit_span !current ~p:!p ~count:!chunk in
         if keeps candidate then current := candidate
       end);
      p := !p - !chunk
    done;
    if !chunk = 1 || !checks >= config.omission_checks then continue_ := false
    else chunk := !chunk / 2
  done;
  !current

(* Phase 4 under partial scan: greedy pair combining with partial-semantics
   verification. *)
let combine c chain tests ~faults ~targets ~config =
  let n = Array.length tests in
  if n <= 1 then tests
  else begin
    let current = Array.copy tests in
    let alive = Array.make n true in
    let rows =
      Array.map (fun t -> Bitvec.inter (Partial.detect ~only:targets c chain t ~faults) targets) current
    in
    let counts = Array.make (Array.length faults) 0 in
    Array.iter (fun row -> Bitvec.iter_set (fun f -> counts.(f) <- counts.(f) + 1) row) rows;
    let attempts = ref 0 in
    let try_combine i j =
      incr attempts;
      let risk =
        Bitvec.fold_set
          (fun acc f ->
            let own =
              (if Bitvec.get rows.(i) f then 1 else 0)
              + if Bitvec.get rows.(j) f then 1 else 0
            in
            if counts.(f) = own then f :: acc else acc)
          []
          (Bitvec.union rows.(i) rows.(j))
      in
      let combined = Scan_test.combine current.(i) current.(j) in
      let det = Partial.detect ~only:targets c chain combined ~faults in
      if List.for_all (fun f -> Bitvec.get det f) risk then begin
        let row' = Bitvec.inter det targets in
        Bitvec.iter_set (fun f -> counts.(f) <- counts.(f) - 1) rows.(i);
        Bitvec.iter_set (fun f -> counts.(f) <- counts.(f) - 1) rows.(j);
        Bitvec.iter_set (fun f -> counts.(f) <- counts.(f) + 1) row';
        current.(i) <- combined;
        rows.(i) <- row';
        rows.(j) <- Bitvec.create (Array.length faults);
        alive.(j) <- false;
        true
      end
      else false
    in
    let progress = ref true in
    while !progress && !attempts < config.combine_attempts do
      progress := false;
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if i <> j && alive.(i) && alive.(j) && !attempts < config.combine_attempts
          then if try_combine i j then progress := true
        done
      done
    done;
    let kept = ref [] in
    for i = n - 1 downto 0 do
      if alive.(i) then kept := current.(i) :: !kept
    done;
    Array.of_list !kept
  end

let run ?(config = default_config) (p : Pipeline.prepared) ~chain =
  let c = p.circuit in
  let faults = p.faults in
  let pipeline_config =
    { Pipeline.default_config with seed = config.seed; t0_source = config.t0_source }
  in
  let t0 = Pipeline.make_t0 pipeline_config p in
  let f0 =
    Bitvec.inter (Asc_fault.Seq_fsim.detect_no_scan c ~seq:t0 ~faults) p.targets
  in
  (* Phases 1 + 2, iterated. *)
  let selected = Bitvec.create (Array.length p.comb_tests) in
  let current_seq = ref t0 in
  let current_f0 = ref f0 in
  let tau = ref None in
  let stop = ref false in
  let iter = ref 0 in
  while not !stop do
    incr iter;
    let index, f_si, already_selected =
      select_scan_in c chain ~faults ~candidates:p.comb_tests ~t0:!current_seq
        ~f0:!current_f0 ~targets:p.targets ~selected
    in
    let test, _u, f_so =
      select_scan_out c chain ~faults
        ~si:p.comb_tests.(index).state
        ~t0:!current_seq ~f_si ~targets:p.targets
    in
    let omitted = omit c chain test ~faults ~required:f_so ~config in
    let f_c = Bitvec.inter (Partial.detect ~only:p.targets c chain omitted ~faults) p.targets in
    let better =
      match !tau with
      | None -> true
      | Some (t, f) ->
          let cmp = compare (Bitvec.count f_c) (Bitvec.count f) in
          cmp > 0 || (cmp = 0 && Scan_test.length omitted < Scan_test.length t)
    in
    if better then tau := Some (omitted, f_c);
    if already_selected || !iter >= config.max_iterations || not better then stop := true
    else begin
      Bitvec.set selected index;
      current_seq := omitted.seq;
      current_f0 :=
        Bitvec.inter (Asc_fault.Seq_fsim.detect_no_scan c ~seq:!current_seq ~faults)
          p.targets
    end
  done;
  let tau_seq, f_seq = match !tau with Some x -> x | None -> assert false in
  (* Phase 3: top up with length-one tests from C, under partial
     detection. *)
  let undetected = ref (Bitvec.diff p.targets f_seq) in
  let n_c = Array.length p.comb_tests in
  let matrix = Bitmat.create n_c (Array.length faults) in
  Array.iteri
    (fun j (pat : Asc_sim.Pattern.t) ->
      let t = Scan_test.of_pattern pat in
      Bitmat.set_row matrix j (Partial.detect ~only:!undetected c chain t ~faults))
    p.comb_tests;
  let cover = Asc_compact.Set_cover.select ~matrix ~undetected:!undetected in
  let added =
    Array.of_list
      (List.map (fun j -> Scan_test.of_pattern p.comb_tests.(j)) cover.selected)
  in
  let initial_tests = Array.append [| tau_seq |] added in
  let cycles_initial = Partial.cycles c chain initial_tests in
  (* Phase 4. *)
  let final_tests = combine c chain initial_tests ~faults ~targets:p.targets ~config in
  let cycles_final = Partial.cycles c chain final_tests in
  let final_detected = Partial.coverage c chain final_tests ~faults in
  Bitvec.inter_into ~into:final_detected p.targets;
  {
    chain;
    tau_seq;
    f_seq;
    added;
    final_tests;
    final_detected;
    cycles_initial;
    cycles_final;
  }
