(** The proposed compaction procedure, end to end (Section 3).

    {!prepare} builds what the procedure and every baseline share — the
    collapsed fault list, the target set, and the combinational test set C.
    {!run} executes Phases 1–4 for a chosen T0 source and returns
    everything the paper's Tables 1–5 report. *)

type t0_source =
  | Directed of int
      (** PROPTEST-style directed sequence with the given length budget
          (the paper's [10]–[12] columns). *)
  | Random_seq of int
      (** Uniform random sequence of the given length (the paper's "rand"
          columns use 1000). *)
  | Genetic of int
      (** STRATEGATE-style genetic sequence with the given length budget
          (the T0-quality ablation's strongest source). *)

type config = {
  seed : int;
  t0_source : t0_source;
  max_iterations : int;  (** Cap on Phase 1+2 rounds. *)
  scan_out_policy : Phase1.scan_out_policy;  (** [i_0] (paper) or [i_1]. *)
  omission : Asc_compact.Vector_omission.config;
  combine : Asc_compact.Combine.config;
  comb_tgen : Asc_atpg.Comb_tgen.config;
}

val default_config : config

type prepared = {
  circuit : Asc_netlist.Circuit.t;
  faults : Asc_fault.Fault.t array;  (** Collapsed representatives. *)
  targets : Asc_util.Bitvec.t;  (** Collapsed minus proven-redundant. *)
  comb_tests : Asc_sim.Pattern.t array;  (** The compact set C. *)
  comb_detected : Asc_util.Bitvec.t;
  redundant : Asc_util.Bitvec.t;
  aborted : Asc_util.Bitvec.t;
}

(** [prepare ?pool ?config c] builds the shared preparation.  [pool]
    parallelises combinational test generation (the PODEM phase chunks
    target faults across domains, each chunk with private ATPG state); the
    [prepared] record is bit-identical for any domain count.  [budget]
    degrades the ATPG gracefully (see {!Asc_atpg.Comb_tgen.generate}).
    [tel] records a ["prepare"] span plus engine counters; telemetry
    never affects the result. *)
val prepare :
  ?pool:Asc_util.Domain_pool.t ->
  ?budget:Asc_util.Budget.t ->
  ?tel:Asc_util.Telemetry.t ->
  ?config:config ->
  Asc_netlist.Circuit.t ->
  prepared

(** Generate the configured T0 sequence (exposed for pipeline variants).
    [pool] parallelises the generators' fault co-simulation.  [budget]
    makes the generators degrade gracefully (best sequence so far). *)
val make_t0 :
  ?pool:Asc_util.Domain_pool.t ->
  ?budget:Asc_util.Budget.t ->
  ?tel:Asc_util.Telemetry.t ->
  config ->
  prepared ->
  bool array array

type iteration = {
  si_index : int;
  u_so : int;
  len_after_omission : int;
  detected_count : int;
}

type result = {
  config : config;
  t0_length : int;  (** Table 2, "T0". *)
  f0_count : int;  (** Table 1, "T0". *)
  tau_seq : Asc_scan.Scan_test.t;
  f_seq : Asc_util.Bitvec.t;  (** Table 1, "scan". *)
  iterations : iteration list;
  added : Asc_scan.Scan_test.t array;  (** Table 2, "added c.tst". *)
  uncovered : Asc_util.Bitvec.t;
  initial_tests : Asc_scan.Scan_test.t array;  (** End of Phase 3. *)
  final_tests : Asc_scan.Scan_test.t array;  (** End of Phase 4. *)
  final_detected : Asc_util.Bitvec.t;  (** Table 1, "final". *)
  cycles_initial : int;  (** Table 3, "init". *)
  cycles_final : int;  (** Table 3, "comp". *)
}

(** [run ?pool ?config prepared] executes Phases 1–4.  [pool] parallelises
    the fault-simulation inner loops across domains; the result is
    identical for any domain count.  Raises {!Asc_util.Budget.Exhausted}
    if the pool carries a budget that fires mid-run (prefer
    {!run_bounded} for interruptible runs). *)
val run :
  ?pool:Asc_util.Domain_pool.t ->
  ?tel:Asc_util.Telemetry.t ->
  ?config:config ->
  prepared ->
  result

(** {2 Deadline-aware execution (see docs/ROBUSTNESS.md)} *)

(** Phase-3 output captured at the post-Phase-3 boundary: the added
    length-one tests and the target faults not even C covers.  A snapshot
    carrying one resumes straight into Phase 4. *)
type phase3_snap = {
  ph3_added : Asc_scan.Scan_test.t array;
  ph3_uncovered : Asc_util.Bitvec.t;
}

(** Inter-iteration state of the Phase 1+2 loop, captured at an iteration
    boundary — or, with [snap_phase3] present, at the post-Phase-3
    boundary.  Identity fields ([snap_circuit] … [snap_comb_size]) pin the
    snapshot to one (circuit, seed, T0 source, C) combination; the rest is
    the loop's explicit state.  Derived state is recomputed on resume, so
    a resumed run reproduces the uninterrupted result bit-identically. *)
type snapshot = {
  snap_circuit : string;
  snap_pis : int;
  snap_ffs : int;
  snap_seed : int;
  snap_t0 : string;  (** {!t0_fingerprint} of the T0 source. *)
  snap_comb_size : int;  (** |C|. *)
  snap_t0_length : int;
  snap_f0_count : int;
  snap_iter : int;  (** Iterations completed. *)
  snap_selected : Asc_util.Bitvec.t;
  snap_seq : bool array array;  (** T_C entering the next iteration. *)
  snap_best : Asc_scan.Scan_test.t option;
  snap_iterations : iteration list;  (** Newest first. *)
  snap_phase3 : phase3_snap option;  (** Present once Phase 3 completed. *)
}

(** Stable textual identity of a T0 source (recorded in snapshots). *)
val t0_fingerprint : t0_source -> string

(** Where a run was when its budget fired. *)
type stage = Stage_t0 | Stage_iterate | Stage_cover | Stage_combine

val stage_to_string : stage -> string

(** Best-so-far state of an interrupted run: the stage reached, the
    iteration log, and a usable (if incomplete) test set with its target
    coverage and [N_cyc]. *)
type partial = {
  p_reason : Asc_util.Budget.reason;
  p_stage : stage;
  p_iterations : iteration list;  (** Oldest first, like [result]. *)
  p_tests : Asc_scan.Scan_test.t array;
  p_detected : Asc_util.Bitvec.t;
  p_cycles : int;
}

type outcome = Complete of result | Partial of partial

(** [run_bounded ?pool ?budget ?config ?resume ?on_checkpoint prepared]:
    {!run}, made interruptible and resumable.

    [budget] is polled at every iteration and threaded through every
    kernel; once it fires the run unwinds cooperatively and returns
    [Partial] with the best test set computed so far — it does not raise.

    [on_checkpoint] is called with a {!snapshot} at each iteration
    boundary the loop decides to continue past (so it fires at least once
    whenever a second iteration starts), and once more — with
    [snap_phase3] filled in — when Phase 3 completes, so an interruption
    during Phase 4 resumes without replaying the iterate loop or the
    Phase-3 covering.  A [Sys_error] raised by the
    callback (a persistent checkpoint-write failure) {e degrades} the run
    instead of aborting it: the failure is logged as a warning and the
    computation continues without that snapshot.  [resume] restarts from
    such a snapshot: the remaining iterations and Phases 3–4 replay exactly, so
    the final result is bit-identical to an uninterrupted run for any
    domain count.  Raises [Invalid_argument] if the snapshot does not
    match this (circuit, seed, T0 source, |C|).

    [tel] records one span per phase (["t0-generation"], ["phase1+2"] with
    an [iter] argument per round, ["phase3"], ["phase4"]) plus the engine
    counters of every kernel it reaches; {!Asc_util.Telemetry.metrics_json}
    turns the drained snapshot into the per-phase wall-time breakdown.
    Telemetry never affects the outcome. *)
val run_bounded :
  ?pool:Asc_util.Domain_pool.t ->
  ?budget:Asc_util.Budget.t ->
  ?tel:Asc_util.Telemetry.t ->
  ?config:config ->
  ?resume:snapshot ->
  ?on_checkpoint:(snapshot -> unit) ->
  prepared ->
  outcome
