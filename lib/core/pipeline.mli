(** The proposed compaction procedure, end to end (Section 3).

    {!prepare} builds what the procedure and every baseline share — the
    collapsed fault list, the target set, and the combinational test set C.
    {!run} executes Phases 1–4 for a chosen T0 source and returns
    everything the paper's Tables 1–5 report. *)

type t0_source =
  | Directed of int
      (** PROPTEST-style directed sequence with the given length budget
          (the paper's [10]–[12] columns). *)
  | Random_seq of int
      (** Uniform random sequence of the given length (the paper's "rand"
          columns use 1000). *)
  | Genetic of int
      (** STRATEGATE-style genetic sequence with the given length budget
          (the T0-quality ablation's strongest source). *)

type config = {
  seed : int;
  t0_source : t0_source;
  max_iterations : int;  (** Cap on Phase 1+2 rounds. *)
  scan_out_policy : Phase1.scan_out_policy;  (** [i_0] (paper) or [i_1]. *)
  omission : Asc_compact.Vector_omission.config;
  combine : Asc_compact.Combine.config;
  comb_tgen : Asc_atpg.Comb_tgen.config;
}

val default_config : config

type prepared = {
  circuit : Asc_netlist.Circuit.t;
  faults : Asc_fault.Fault.t array;  (** Collapsed representatives. *)
  targets : Asc_util.Bitvec.t;  (** Collapsed minus proven-redundant. *)
  comb_tests : Asc_sim.Pattern.t array;  (** The compact set C. *)
  comb_detected : Asc_util.Bitvec.t;
  redundant : Asc_util.Bitvec.t;
  aborted : Asc_util.Bitvec.t;
}

(** [prepare ?pool ?config c] builds the shared preparation.  [pool]
    parallelises combinational test generation (the PODEM phase chunks
    target faults across domains, each chunk with private ATPG state); the
    [prepared] record is bit-identical for any domain count. *)
val prepare :
  ?pool:Asc_util.Domain_pool.t -> ?config:config -> Asc_netlist.Circuit.t -> prepared

(** Generate the configured T0 sequence (exposed for pipeline variants).
    [pool] parallelises the generators' fault co-simulation. *)
val make_t0 : ?pool:Asc_util.Domain_pool.t -> config -> prepared -> bool array array

type iteration = {
  si_index : int;
  u_so : int;
  len_after_omission : int;
  detected_count : int;
}

type result = {
  config : config;
  t0_length : int;  (** Table 2, "T0". *)
  f0_count : int;  (** Table 1, "T0". *)
  tau_seq : Asc_scan.Scan_test.t;
  f_seq : Asc_util.Bitvec.t;  (** Table 1, "scan". *)
  iterations : iteration list;
  added : Asc_scan.Scan_test.t array;  (** Table 2, "added c.tst". *)
  uncovered : Asc_util.Bitvec.t;
  initial_tests : Asc_scan.Scan_test.t array;  (** End of Phase 3. *)
  final_tests : Asc_scan.Scan_test.t array;  (** End of Phase 4. *)
  final_detected : Asc_util.Bitvec.t;  (** Table 1, "final". *)
  cycles_initial : int;  (** Table 3, "init". *)
  cycles_final : int;  (** Table 3, "comp". *)
}

(** [run ?pool ?config prepared] executes Phases 1–4.  [pool] parallelises
    the fault-simulation inner loops across domains; the result is
    identical for any domain count. *)
val run : ?pool:Asc_util.Domain_pool.t -> ?config:config -> prepared -> result
