(* Phase 1 of the proposed procedure: turn a test sequence T0 into a
   scan-based test.

   Step 1 (fault simulation of T0 without scan) is done by the caller —
   its result is [f0].  Step 2 selects the scan-in state among the state
   parts of the combinational test set C, maximising the number of faults
   of F - F0 detected by (SI, T0); the paper's "unselected preferred"
   tie-breaking drives the iteration's termination.  Step 3 picks the
   earliest scan-out time u_SO such that the truncated test still detects
   every fault of F_SI — computed from one detection-time profile instead
   of the paper's per-u re-simulations (same i_0 criterion). *)

open Asc_util
module Circuit = Asc_netlist.Circuit
module Pattern = Asc_sim.Pattern
module Scan_test = Asc_scan.Scan_test
module Seq_fsim = Asc_fault.Seq_fsim

type scan_in_choice = {
  index : int; (* index into the candidate (combinational test) array *)
  f_si : Bitvec.t; (* F_SI = F0 + detections of (SI, T0), within targets *)
  already_selected : bool;
      (* The choice had already been selected in an earlier iteration —
         the paper's termination condition for the Phase 1+2 loop. *)
}

(* Step 2. [selected] marks candidates chosen in earlier iterations. *)
let select_scan_in ?pool ?budget ?tel c ~faults ~candidates ~t0 ~f0 ~targets ~selected =
  Telemetry.span tel "phase1:scan-in" @@ fun () ->
  let subset =
    Array.of_list
      (Bitvec.to_list (Bitvec.diff targets f0))
  in
  let sis = Array.map (fun (p : Pattern.t) -> p.state) candidates in
  let rows = Seq_fsim.candidate_detections ?pool ?budget ?tel c ~sis ~seq:t0 ~faults ~subset in
  let best_of pred =
    let best = ref (-1) and best_count = ref (-1) in
    Array.iteri
      (fun j _ ->
        if pred j then begin
          let count = Bitvec.count (Bitmat.row rows j) in
          if count > !best_count then begin
            best := j;
            best_count := count
          end
        end)
      candidates;
    (!best, !best_count)
  in
  let unsel, unsel_count = best_of (fun j -> not (Bitvec.get selected j)) in
  let sel, sel_count = best_of (fun j -> Bitvec.get selected j) in
  (* A previously selected state is used only when it is strictly better
     than every unselected one. *)
  let index, already_selected =
    if unsel >= 0 && unsel_count >= sel_count then (unsel, false) else (sel, true)
  in
  let f_si = Bitvec.union f0 (Bitmat.row rows index) in
  Bitvec.inter_into ~into:f_si targets;
  { index; f_si; already_selected }

type scan_out_choice = {
  test : Scan_test.t; (* tau_SO = (SI, T0[0, u]) *)
  u : int;
  f_so : Bitvec.t; (* all target faults the truncated test detects *)
}

(* The paper's two scan-out criteria (Section 3.1): [Earliest] is i_0 —
   the smallest u keeping every fault of F_SI; [Max_detection] is i_1 —
   among the valid u, the one whose truncated test detects the most target
   faults (ties to the smallest u).  The paper reports that i_1 buys
   marginal coverage for significantly longer sequences and uses i_0; the
   ablation bench reproduces that comparison. *)
type scan_out_policy = Earliest | Max_detection

(* Valid scan-out times: every fault of the profiled subset is PO-detected
   at a time <= u or differs in the state right after time u's vector. *)
let valid_times (prof : Seq_fsim.profile) ~len =
  let allowed = Bitvec.create ~default:true len in
  Array.iteri
    (fun k _ ->
      let ok = Bitvec.copy prof.state_diff_at.(k) in
      if prof.po_time.(k) < len then
        for u = prof.po_time.(k) to len - 1 do
          Bitvec.set ok u
        done;
      Bitvec.inter_into ~into:allowed ok)
    prof.subset;
  allowed

(* Step 3. *)
let select_scan_out ?pool ?budget ?tel ?(policy = Earliest) c ~faults ~si ~t0 ~f_si ~targets =
  Telemetry.span tel "phase1:scan-out" @@ fun () ->
  let len = Array.length t0 in
  let subset = Array.of_list (Bitvec.to_list f_si) in
  let prof = Seq_fsim.profile ?pool ?budget ?tel c ~si ~seq:t0 ~faults ~subset in
  let allowed = valid_times prof ~len in
  (* u = len-1 is always valid: f_si are the full test's detections. *)
  if Bitvec.first_set allowed < 0 then Bitvec.set allowed (len - 1);
  let u =
    match policy with
    | Earliest -> Bitvec.first_set allowed
    | Max_detection ->
        (* Count, for every valid u, the target faults the truncated test
           would detect, from one profile over all targets. *)
        let all = Array.of_list (Bitvec.to_list targets) in
        let full = Seq_fsim.profile ?pool ?budget ?tel c ~si ~seq:t0 ~faults ~subset:all in
        let best_u = ref (-1) and best_count = ref (-1) in
        Bitvec.iter_set
          (fun u ->
            let det = Seq_fsim.profile_detected_at full ~u in
            let count = Bitvec.count det in
            if count > !best_count then begin
              best_count := count;
              best_u := u
            end)
          allowed;
        !best_u
  in
  let test = Scan_test.create ~si ~seq:(Array.sub t0 0 (u + 1)) in
  let f_so = Bitvec.inter (Scan_test.detect ?pool ?budget ?tel ~only:targets c test ~faults) targets in
  { test; u; f_so }
