(* Job scheduling for the serving layer: per-source round-robin queues
   over one shared pool, a content-addressed result cache, and per-job
   checkpoint/resume (docs/SERVING.md). *)

module Bv = Asc_util.Bitvec
module Budget = Asc_util.Budget
module Chaos = Asc_util.Chaos
module Crc = Asc_util.Crc
module Telemetry = Asc_util.Telemetry
module Log = Asc_util.Log
module Json = Asc_util.Json
module Circuit = Asc_netlist.Circuit
module Bench_io = Asc_netlist.Bench_io
module Tset_io = Asc_scan.Tset_io

type spec = {
  sp_circuit : string option;
  sp_netlist : string option;
  sp_seed : int;
  sp_t0 : string;
  sp_timeout : float option;
}

let default_spec =
  { sp_circuit = None; sp_netlist = None; sp_seed = 1; sp_t0 = "directed";
    sp_timeout = None }

type job = {
  j_id : int;
  j_key : string;
  j_source : int;
  j_circuit : Circuit.t;
  j_name : string;
  j_config : Pipeline.config;
  j_timeout : float option;
  j_spec : spec;
  mutable j_attempts : int;
  j_submitted : float; (* Unix.gettimeofday at submission *)
  mutable j_dispatched : float; (* stamped by [pick]; feeds the latency histograms *)
}

type status =
  | Complete
  | Partial of { reason : string; stage : string }
  | Failed of string

type result = {
  r_status : status;
  r_tests : int;
  r_cycles : int;
  r_detected : int;
  r_targets : int;
  r_iterations : int;
  r_tset : string option;
  r_resumed : bool;
}

type submit_outcome =
  | Accepted of job
  | Cached of result
  | Rejected of string
  | Overloaded of { retry_after_ms : int }

(* --- Spec resolution --------------------------------------------------- *)

(* The fallback directed-T0 length budget for circuits the profile table
   does not know (inline netlists) — the same value {!Registry.t0_budget}
   falls back to, so a netlist submitted inline and the same circuit
   submitted by name configure identically. *)
let fallback_t0_budget = 50

let t0_source_of ~directed_budget = function
  | "directed" -> Ok (Pipeline.Directed directed_budget)
  | "random" -> Ok (Pipeline.Random_seq 1000)
  | s -> Error (Printf.sprintf "bad t0 %S (expected directed|random)" s)

(* The canonical content of a job: everything that can change the result,
   with the netlist in its canonical rendering so two spellings of the
   same circuit share a cache line.  The key doubles the 32-bit CRC with
   a salted second pass; the checkpoint layer re-validates identity on
   resume, so a key collision can mis-hit only the result cache. *)
let canonical circuit config =
  String.concat "\n"
    [
      "asc-job/1";
      "seed " ^ string_of_int config.Pipeline.seed;
      "t0 " ^ Pipeline.t0_fingerprint config.Pipeline.t0_source;
      Bench_io.to_string circuit;
    ]

let key_of_canonical canon =
  Crc.to_hex (Crc.crc32 canon) ^ Crc.to_hex (Crc.crc32 ("asc\x00" ^ canon))

type resolved = {
  rv_circuit : Circuit.t;
  rv_name : string;
  rv_config : Pipeline.config;
  rv_key : string;
}

let resolve spec =
  let with_circuit circuit name ~directed_budget =
    match t0_source_of ~directed_budget spec.sp_t0 with
    | Error _ as e -> e
    | Ok t0_source ->
        let config = Experiments.config_for ~seed:spec.sp_seed ~t0_source in
        Ok
          {
            rv_circuit = circuit;
            rv_name = name;
            rv_config = config;
            rv_key = key_of_canonical (canonical circuit config);
          }
  in
  match (spec.sp_circuit, spec.sp_netlist) with
  | Some _, Some _ ->
      Error "give either a circuit name or an inline netlist, not both"
  | None, None -> Error "a submission needs a circuit name or an inline netlist"
  | Some name, None ->
      if not (Asc_circuits.Registry.mem name) then
        Error (Printf.sprintf "unknown circuit %S" name)
      else
        with_circuit
          (Asc_circuits.Registry.get ~seed:spec.sp_seed name)
          name
          ~directed_budget:(Asc_circuits.Registry.t0_budget name)
  | None, Some text -> (
      try
        let circuit = Bench_io.parse_string ~name:"inline" text in
        with_circuit circuit (Circuit.name circuit)
          ~directed_budget:fallback_t0_budget
      with
      | Bench_io.Parse_error { line; message } ->
          Error (Printf.sprintf "netlist parse error at line %d: %s" line message)
      | Circuit.Structural_error message ->
          Error (Printf.sprintf "netlist structural error: %s" message))

let key_of_spec spec =
  match resolve spec with Ok rv -> Ok rv.rv_key | Error _ as e -> e

(* --- Scheduler state --------------------------------------------------- *)

type t = {
  pool : Asc_util.Domain_pool.t option;
  tel : Telemetry.t option;
  chaos : Chaos.t option;
  log : Log.t option;
  state_dir : string option;
  cache : Result_cache.t;
  queues : (int, job Queue.t) Hashtbl.t;
  redo : job Queue.t;  (* requeued in-flight jobs, served before fresh work *)
  mutable rotation : int list;  (* sources with queued work, service order *)
  mutable next_id : int;
  max_pending : int option;  (* global admission cap; None = unbounded *)
  max_pending_per_source : int option;
  sheds : (job * result) Queue.t;
      (* deadline-expired jobs dropped by [pick], awaiting delivery *)
}

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?pool ?tel ?chaos ?log ?state_dir ?(persist_results = true)
    ?max_pending ?max_pending_per_source () =
  Option.iter mkdir_p state_dir;
  let positive name = function
    | Some n when n < 1 ->
        invalid_arg (Printf.sprintf "Scheduler.create: %s must be >= 1" name)
    | cap -> cap
  in
  {
    pool;
    tel;
    chaos;
    log;
    state_dir;
    cache =
      Result_cache.create
        ?dir:(if persist_results then state_dir else None)
        ();
    queues = Hashtbl.create 8;
    redo = Queue.create ();
    rotation = [];
    next_id = 0;
    max_pending = positive "max_pending" max_pending;
    max_pending_per_source =
      positive "max_pending_per_source" max_pending_per_source;
    sheds = Queue.create ();
  }

(* Queue depth, computed from the queues themselves — the redo queue plus
   every per-source FIFO — so it cannot drift from the structures it
   describes. *)
let pending t =
  Hashtbl.fold
    (fun _ q acc -> acc + Queue.length q)
    t.queues
    (Queue.length t.redo)

(* Only Complete results (which always carry a test set) enter the
   cache; Partial and Failed outcomes are recomputed on resubmission. *)
let cache_store t ~key result =
  match (result.r_status, result.r_tset) with
  | Complete, Some tset ->
      Result_cache.store t.cache
        {
          Result_cache.e_key = key;
          e_tests = result.r_tests;
          e_cycles = result.r_cycles;
          e_detected = result.r_detected;
          e_targets = result.r_targets;
          e_iterations = result.r_iterations;
          e_tset = tset;
        }
  | _ -> ()

let result_of_entry (e : Result_cache.entry) =
  {
    r_status = Complete;
    r_tests = e.Result_cache.e_tests;
    r_cycles = e.Result_cache.e_cycles;
    r_detected = e.Result_cache.e_detected;
    r_targets = e.Result_cache.e_targets;
    r_iterations = e.Result_cache.e_iterations;
    r_tset = Some e.Result_cache.e_tset;
    r_resumed = false;
  }

(* Resolve a spec into a runnable job without touching the queue or the
   submission counters — the worker side of the supervised control
   channel, where the parent already accounted for the submission. *)
let job_of_spec ~id ~source spec =
  match resolve spec with
  | Error _ as e -> e
  | Ok rv ->
      let now = Unix.gettimeofday () in
      Ok
        {
          j_id = id;
          j_key = rv.rv_key;
          j_source = source;
          j_circuit = rv.rv_circuit;
          j_name = rv.rv_name;
          j_config = rv.rv_config;
          j_timeout = spec.sp_timeout;
          j_spec = spec;
          j_attempts = 0;
          j_submitted = now;
          j_dispatched = now;
        }

(* Admission control: a submission that would push a queue past its cap
   is refused with a backpressure hint proportional to the backlog —
   100 ms per queued job, capped at 5 s — so a polite client's retry
   schedule stretches with the queue it is waiting on.  Caps are checked
   only for work that would actually occupy the queue: resolution errors
   and cache hits are never overload-rejected. *)
let retry_after_ms t = min 5000 (100 * (pending t + 1))

let admission t ~source =
  let over cap depth =
    match cap with Some c -> depth >= c | None -> false
  in
  let source_depth =
    match Hashtbl.find_opt t.queues source with
    | Some q -> Queue.length q
    | None -> 0
  in
  if over t.max_pending (pending t)
     || over t.max_pending_per_source source_depth
  then Some (retry_after_ms t)
  else None

let submit t ~source spec =
  match resolve spec with
  | Error message ->
      Telemetry.incr t.tel Telemetry.Jobs_failed;
      Log.emit t.log "job.rejected" ~level:Log.Warn
        ~fields:[ ("source", Json.Int source); ("reason", Json.Str message) ];
      Rejected message
  | Ok rv -> (
      match Result_cache.find t.cache rv.rv_key with
      | Some (entry, from_disk) ->
          Telemetry.incr t.tel Telemetry.Jobs_submitted;
          Telemetry.incr t.tel Telemetry.Result_cache_hits;
          if from_disk then
            Telemetry.incr t.tel Telemetry.Result_cache_persisted_hits;
          Log.emit t.log "job.cache_hit" ~job:rv.rv_key
            ~fields:
              [
                ("source", Json.Int source);
                ("store", Json.Str (if from_disk then "disk" else "memory"));
              ];
          Cached (result_of_entry entry)
      | None -> (
      match admission t ~source with
      | Some retry_after_ms ->
          Telemetry.incr t.tel Telemetry.Jobs_rejected_overload;
          Log.emit t.log "job.rejected" ~level:Log.Warn ~job:rv.rv_key
            ~fields:
              [
                ("source", Json.Int source);
                ("reason", Json.Str "overloaded");
                ("retry_after_ms", Json.Int retry_after_ms);
              ];
          Overloaded { retry_after_ms }
      | None ->
          Telemetry.incr t.tel Telemetry.Jobs_submitted;
          Telemetry.incr t.tel Telemetry.Result_cache_misses;
          let job =
            {
              j_id = t.next_id;
              j_key = rv.rv_key;
              j_source = source;
              j_circuit = rv.rv_circuit;
              j_name = rv.rv_name;
              j_config = rv.rv_config;
              j_timeout = spec.sp_timeout;
              j_spec = spec;
              j_attempts = 0;
              j_submitted = Unix.gettimeofday ();
              j_dispatched = 0.0;
            }
          in
          t.next_id <- t.next_id + 1;
          let q =
            match Hashtbl.find_opt t.queues source with
            | Some q -> q
            | None ->
                let q = Queue.create () in
                Hashtbl.replace t.queues source q;
                q
          in
          Queue.push job q;
          if not (List.mem source t.rotation) then
            t.rotation <- t.rotation @ [ source ];
          Log.emit t.log "job.submitted" ~job:job.j_key
            ~fields:
              [
                ("id", Json.Int job.j_id);
                ("source", Json.Int source);
                ("circuit", Json.Str job.j_name);
              ];
          Accepted job))

let empty_result status =
  { r_status = status; r_tests = 0; r_cycles = 0; r_detected = 0; r_targets = 0;
    r_iterations = 0; r_tset = None; r_resumed = false }

(* Pop one job: requeued in-flight jobs first (they already waited their
   turn), then round-robin source order — serve the head source, then
   rotate it to the tail (or retire it if its queue drained).

   Deadline-aware shedding happens here, at the single point every
   queued job must pass through: a job whose submit-side [timeout] has
   already elapsed while it waited is doomed — its budget would fire on
   the first poll — so executing it wastes a whole dispatch slot.  It is
   dropped instead (bumping [Jobs_shed]) with a [Partial] result
   ([reason="deadline"], [stage="queue"]) parked on the shed queue for
   the server to deliver, and picking continues with the next job. *)
let pick t =
  let now = Unix.gettimeofday () in
  let expired job =
    match job.j_timeout with
    | Some tm -> now -. job.j_submitted >= tm
    | None -> false
  in
  let shed job =
    Telemetry.incr t.tel Telemetry.Jobs_shed;
    Telemetry.incr t.tel Telemetry.Jobs_partial;
    Log.emit t.log "job.shed" ~level:Log.Warn ~job:job.j_key
      ~fields:[ ("id", Json.Int job.j_id); ("source", Json.Int job.j_source) ];
    Queue.push
      (job, empty_result (Partial { reason = "deadline"; stage = "queue" }))
      t.sheds
  in
  let stamp job =
    job.j_dispatched <- Unix.gettimeofday ();
    job
  in
  let rec next () =
    if not (Queue.is_empty t.redo) then check (Queue.pop t.redo)
    else
      match t.rotation with
      | [] -> None
      | source :: rest -> (
          match Hashtbl.find_opt t.queues source with
          | None ->
              t.rotation <- rest;
              None
          | Some q ->
              let job = Queue.pop q in
              t.rotation <-
                (if Queue.is_empty q then rest else rest @ [ source ]);
              check job)
  and check job = if expired job then (shed job; next ()) else Some (stamp job)
  in
  next ()

(* Shed (job, result) pairs awaiting delivery, oldest first.  The server
   drains this after every dispatch so a shed job's submitter still gets
   its (partial) answer. *)
let take_shed t =
  let rec drain acc =
    match Queue.take_opt t.sheds with
    | None -> List.rev acc
    | Some pair -> drain (pair :: acc)
  in
  drain []

(* Put a dispatched job back at the head of the line (a worker crashed
   under it).  The caller owns the retry budget. *)
let requeue t job = Queue.push job t.redo

(* --- Job execution ----------------------------------------------------- *)

let ckpt_path t job =
  Option.map
    (fun dir -> Filename.concat dir ("job-" ^ job.j_key ^ ".ckpt"))
    t.state_dir

(* Best-effort removal of a completed job's snapshot and rotated copies. *)
let cleanup_checkpoints path =
  for i = 0 to 4 do
    let f = if i = 0 then path else path ^ "." ^ string_of_int i in
    if Sys.file_exists f then (try Sys.remove f with Sys_error _ -> ())
  done

let execute t job =
  let budget = Budget.create ?timeout:job.j_timeout () in
  let config = job.j_config in
  let resumed = ref false in
  try
    Telemetry.span t.tel "serve:job"
      ~args:[ ("circuit", job.j_name); ("key", job.j_key) ]
    @@ fun () ->
    let prepared =
      Pipeline.prepare ?pool:t.pool ~budget ?tel:t.tel ~config job.j_circuit
    in
    let ckpt = ckpt_path t job in
    let resume =
      match ckpt with
      | None -> None
      | Some path -> (
          (* A leftover snapshot from an interrupted (or killed) earlier
             attempt at this same job key resumes it; anything unreadable
             or foreign starts the job from scratch. *)
          try
            let l = Checkpoint.load_latest_valid ?tel:t.tel ?chaos:t.chaos path in
            Checkpoint.validate prepared ~config l.Checkpoint.snapshot;
            resumed := true;
            Telemetry.incr t.tel Telemetry.Jobs_resumed;
            Some l.Checkpoint.snapshot
          with Sys_error _ | Checkpoint.Corrupt _ | Checkpoint.Incompatible _ ->
            None)
    in
    let on_checkpoint =
      Option.map
        (fun path snap ->
          Checkpoint.write_file ?tel:t.tel ?chaos:t.chaos ~keep:2 path snap)
        ckpt
    in
    match
      Pipeline.run_bounded ?pool:t.pool ~budget ?tel:t.tel ~config ?resume
        ?on_checkpoint prepared
    with
    | Pipeline.Complete r ->
        Option.iter cleanup_checkpoints ckpt;
        let result =
          {
            r_status = Complete;
            r_tests = Array.length r.Pipeline.final_tests;
            r_cycles = r.Pipeline.cycles_final;
            r_detected = Bv.count r.Pipeline.final_detected;
            r_targets = Bv.count prepared.Pipeline.targets;
            r_iterations = List.length r.Pipeline.iterations;
            r_tset = Some (Tset_io.to_string job.j_circuit r.Pipeline.final_tests);
            r_resumed = !resumed;
          }
        in
        Telemetry.incr t.tel Telemetry.Jobs_completed;
        cache_store t ~key:job.j_key result;
        result
    | Pipeline.Partial p ->
        Telemetry.incr t.tel Telemetry.Jobs_partial;
        {
          r_status =
            Partial
              {
                reason = Budget.reason_to_string p.Pipeline.p_reason;
                stage = Pipeline.stage_to_string p.Pipeline.p_stage;
              };
          r_tests = Array.length p.Pipeline.p_tests;
          r_cycles = p.Pipeline.p_cycles;
          r_detected = Bv.count p.Pipeline.p_detected;
          r_targets = Bv.count prepared.Pipeline.targets;
          r_iterations = List.length p.Pipeline.p_iterations;
          r_tset = Some (Tset_io.to_string job.j_circuit p.Pipeline.p_tests);
          r_resumed = !resumed;
        }
  with
  | Chaos.Killed _ as e -> raise e
  | Budget.Exhausted reason ->
      (* The budget fired inside [prepare], before any snapshot existed:
         report Partial with nothing usable, mirroring the CLI. *)
      Telemetry.incr t.tel Telemetry.Jobs_partial;
      {
        (empty_result
           (Partial
              { reason = Budget.reason_to_string reason; stage = "prepare" }))
        with r_resumed = !resumed;
      }
  | e ->
      Telemetry.incr t.tel Telemetry.Jobs_failed;
      empty_result (Failed (Printexc.to_string e))

let run_next t =
  match pick t with
  | None -> None
  | Some job ->
      Chaos.hit t.chaos Chaos.serve_dispatch;
      Log.emit t.log "job.dispatched" ~job:job.j_key
        ~fields:
          [ ("id", Json.Int job.j_id); ("worker", Json.Str "in-process") ];
      Some (job, execute t job)
