(* Plain-text serialization of Pipeline snapshots (crash-safe resume).

   Format (one item per line, '#' comments, bit strings as in Tset_io):

     checkpoint v2
     circuit <name> <n_pis> <n_ffs>
     seed <n>
     t0 <fingerprint>            # e.g. directed/1000
     comb <|C|>
     t0len <n>
     f0count <n>
     iter <n>
     selected <bits>             # |C| bits, chosen scan-in states
     it <si> <u_so> <len> <det>  # iteration log, newest first
     seq                         # T_C entering the next iteration
     v <bits>
     endseq
     tau                         # best iterate so far (optional block)
     si <bits>
     v <bits>
     endtau
     phase3 <bits>               # post-Phase-3 snapshot: uncovered faults
     add                         # one block per Phase-3 added test
     si <bits>
     v <bits>
     endadd
     crc <8 hex digits>          # CRC-32 of every byte before this line

   The [phase3] line (and its [add] blocks) appear only in snapshots taken
   at the post-Phase-3 boundary; resuming from one skips straight to
   Phase 4.  A [phase3] line requires a [tau] block (Phase 3 cannot have
   run without a best iterate).

   v2 appends a CRC-32 trailer covering the raw bytes of everything
   before the [crc] line, so a bit-flipped-but-grammatical file can never
   load as a snapshot that differs from what was saved.  v1 files (no
   trailer) still load; a v1 file carrying a [crc] line is rejected.

   Files are written atomically (temp file + rename), so a run killed
   mid-write leaves the previous checkpoint intact.  [write_file] adds
   rotation ([keep] copies: <file>, <file>.1, …), bounded retry with
   backoff on transient [Sys_error]s, and chaos injection points around
   every syscall; [load_latest_valid] recovers by falling back across
   rotated copies when the newest one is corrupt or missing. *)

module Circuit = Asc_netlist.Circuit
module Scan_test = Asc_scan.Scan_test
module Tset_io = Asc_scan.Tset_io

exception Corrupt of { line : int; message : string }

exception Incompatible of string

let fail line fmt =
  Format.kasprintf (fun message -> raise (Corrupt { line; message })) fmt

let to_string (s : Pipeline.snapshot) =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "# asc pipeline checkpoint (iteration %d)\n" s.snap_iter;
  add "checkpoint v2\n";
  add "circuit %s %d %d\n" s.snap_circuit s.snap_pis s.snap_ffs;
  add "seed %d\n" s.snap_seed;
  add "t0 %s\n" s.snap_t0;
  add "comb %d\n" s.snap_comb_size;
  add "t0len %d\n" s.snap_t0_length;
  add "f0count %d\n" s.snap_f0_count;
  add "iter %d\n" s.snap_iter;
  add "selected %s\n"
    (Tset_io.bits_to_string
       (Array.init
          (Asc_util.Bitvec.length s.snap_selected)
          (Asc_util.Bitvec.get s.snap_selected)));
  List.iter
    (fun (it : Pipeline.iteration) ->
      add "it %d %d %d %d\n" it.si_index it.u_so it.len_after_omission it.detected_count)
    s.snap_iterations;
  add "seq\n";
  Array.iter (fun v -> add "v %s\n" (Tset_io.bits_to_string v)) s.snap_seq;
  add "endseq\n";
  (match s.snap_best with
  | None -> ()
  | Some t ->
      add "tau\n";
      add "si %s\n" (Tset_io.bits_to_string t.si);
      Array.iter (fun v -> add "v %s\n" (Tset_io.bits_to_string v)) t.seq;
      add "endtau\n");
  (match s.snap_phase3 with
  | None -> ()
  | Some p3 ->
      add "phase3 %s\n"
        (Tset_io.bits_to_string
           (Array.init
              (Asc_util.Bitvec.length p3.ph3_uncovered)
              (Asc_util.Bitvec.get p3.ph3_uncovered)));
      Array.iter
        (fun (t : Scan_test.t) ->
          add "add\n";
          add "si %s\n" (Tset_io.bits_to_string t.si);
          Array.iter (fun v -> add "v %s\n" (Tset_io.bits_to_string v)) t.seq;
          add "endadd\n")
        p3.ph3_added);
  (* The trailer covers every byte emitted so far, comments included. *)
  let body = Buffer.contents buf in
  body ^ Printf.sprintf "crc %s\n" (Asc_util.Crc.to_hex (Asc_util.Crc.crc32 body))

(* Parser: single pass, mutable slots; [section] tracks whether v-lines
   belong to the header (none), the T_C block or the tau block. *)
type section = Top | In_seq | In_tau | In_add

let of_string text =
  let lines = String.split_on_char '\n' text in
  let version = ref None in
  let crc_claim = ref None in
  let circuit = ref None in
  let seed = ref None
  and t0 = ref None
  and comb = ref None
  and t0len = ref None
  and f0count = ref None
  and iter = ref None in
  let selected = ref None in
  let its = ref [] in
  let seq = ref None in
  let seq_acc = ref [] in
  let tau = ref None in
  let tau_si = ref None in
  let tau_acc = ref [] in
  let phase3_uncovered = ref None in
  let adds = ref [] in
  let add_si = ref None in
  let add_acc = ref [] in
  let section = ref Top in
  let int_field line name r v =
    if !r <> None then fail line "duplicate %s" name;
    match int_of_string_opt v with
    | Some n -> r := Some n
    | None -> fail line "bad %s %S" name v
  in
  let bits line v =
    try Tset_io.bits_of_string line v
    with Tset_io.Format_error { line; message } -> fail line "%s" message
  in
  List.iteri
    (fun i raw ->
      let line = i + 1 in
      let s = String.trim raw in
      let s =
        match String.index_opt s '#' with
        | Some k -> String.trim (String.sub s 0 k)
        | None -> s
      in
      if s <> "" then begin
        (* The CRC trailer covers every byte before it, so nothing may
           follow it. *)
        (match !crc_claim with
        | Some (cl, _) when cl <> line -> fail line "content after crc trailer"
        | _ -> ());
        match (String.split_on_char ' ' s, !section) with
        | [ "checkpoint"; "v1" ], Top -> version := Some 1
        | [ "checkpoint"; "v2" ], Top -> version := Some 2
        | [ "checkpoint"; v ], Top -> fail line "unsupported checkpoint version %S" v
        | [ "circuit"; name; pis; ffs ], Top -> (
            if !circuit <> None then fail line "duplicate circuit";
            match (int_of_string_opt pis, int_of_string_opt ffs) with
            | Some pis, Some ffs -> circuit := Some (name, pis, ffs)
            | _ -> fail line "bad circuit header")
        | [ "seed"; v ], Top -> int_field line "seed" seed v
        | [ "t0"; v ], Top ->
            if !t0 <> None then fail line "duplicate t0";
            t0 := Some v
        | [ "comb"; v ], Top -> int_field line "comb" comb v
        | [ "t0len"; v ], Top -> int_field line "t0len" t0len v
        | [ "f0count"; v ], Top -> int_field line "f0count" f0count v
        | [ "iter"; v ], Top -> int_field line "iter" iter v
        | [ "selected"; v ], Top ->
            if !selected <> None then fail line "duplicate selected";
            selected := Some (bits line v)
        | [ "it"; a; b; c; d ], Top -> (
            match
              ( int_of_string_opt a,
                int_of_string_opt b,
                int_of_string_opt c,
                int_of_string_opt d )
            with
            | Some si_index, Some u_so, Some len_after_omission, Some detected_count ->
                its :=
                  { Pipeline.si_index; u_so; len_after_omission; detected_count } :: !its
            | _ -> fail line "bad iteration record %S" s)
        | [ "seq" ], Top ->
            if !seq <> None then fail line "duplicate seq block";
            seq_acc := [];
            section := In_seq
        | [ "v"; v ], In_seq -> seq_acc := bits line v :: !seq_acc
        | [ "endseq" ], In_seq ->
            seq := Some (Array.of_list (List.rev !seq_acc));
            section := Top
        | [ "tau" ], Top ->
            if !tau <> None then fail line "duplicate tau block";
            tau_si := None;
            tau_acc := [];
            section := In_tau
        | [ "si"; v ], In_tau ->
            if !tau_si <> None then fail line "duplicate si";
            tau_si := Some (bits line v)
        | [ "v"; v ], In_tau -> tau_acc := bits line v :: !tau_acc
        | [ "endtau" ], In_tau ->
            let si = match !tau_si with Some x -> x | None -> fail line "tau without si" in
            if !tau_acc = [] then fail line "tau without vectors";
            tau := Some (Scan_test.create ~si ~seq:(Array.of_list (List.rev !tau_acc)));
            section := Top
        | [ "phase3"; v ], Top ->
            if !phase3_uncovered <> None then fail line "duplicate phase3";
            phase3_uncovered := Some (bits line v)
        | [ "add" ], Top ->
            if !phase3_uncovered = None then fail line "add block before phase3";
            add_si := None;
            add_acc := [];
            section := In_add
        | [ "si"; v ], In_add ->
            if !add_si <> None then fail line "duplicate si";
            add_si := Some (bits line v)
        | [ "v"; v ], In_add -> add_acc := bits line v :: !add_acc
        | [ "endadd" ], In_add ->
            let si = match !add_si with Some x -> x | None -> fail line "add without si" in
            if !add_acc = [] then fail line "add without vectors";
            adds := Scan_test.create ~si ~seq:(Array.of_list (List.rev !add_acc)) :: !adds;
            section := Top
        | [ "crc"; v ], Top -> (
            if !crc_claim <> None then fail line "duplicate crc trailer";
            match Asc_util.Crc.of_hex v with
            | Some n -> crc_claim := Some (line, n)
            | None -> fail line "bad crc %S" v)
        | _, _ -> fail line "unrecognised line %S" s
      end)
    lines;
  if !section <> Top then fail 0 "unterminated block";
  (match (!version, !crc_claim) with
  | None, _ -> fail 0 "missing checkpoint version line"
  | Some 1, Some (line, _) -> fail line "crc trailer in a v1 checkpoint"
  | Some 1, None -> ()
  | Some 2, None -> fail 0 "missing crc trailer"
  | Some 2, Some (crc_line, claimed) ->
      (* The trailer covers the raw bytes of every line before it. *)
      let offset =
        let rec go i off = function
          | [] -> off
          | l :: tl -> if i = crc_line then off else go (i + 1) (off + String.length l + 1) tl
        in
        go 1 0 lines
      in
      let body = String.sub text 0 offset in
      if Asc_util.Crc.crc32 body <> claimed then
        fail crc_line "crc mismatch (corrupt checkpoint)"
  | Some _, _ -> assert false);
  let req name r = match !r with Some x -> x | None -> fail 0 "missing %s" name in
  let snap_circuit, snap_pis, snap_ffs = req "circuit" circuit in
  let snap_seq = req "seq block" seq in
  let snap_selected_bits = req "selected" selected in
  Array.iter
    (fun v ->
      if Array.length v <> snap_pis then fail 0 "seq vector arity mismatch")
    snap_seq;
  (match !tau with
  | Some (t : Scan_test.t) ->
      if Array.length t.si <> snap_ffs then fail 0 "tau si arity mismatch";
      Array.iter
        (fun v -> if Array.length v <> snap_pis then fail 0 "tau vector arity mismatch")
        t.seq
  | None -> ());
  let snap_phase3 =
    match !phase3_uncovered with
    | None ->
        if !adds <> [] then fail 0 "add blocks without a phase3 line";
        None
    | Some uncovered_bits ->
        if !tau = None then fail 0 "phase3 without a tau block";
        let ph3_added = Array.of_list (List.rev !adds) in
        Array.iter
          (fun (t : Scan_test.t) ->
            if Array.length t.si <> snap_ffs then fail 0 "add si arity mismatch";
            Array.iter
              (fun v ->
                if Array.length v <> snap_pis then fail 0 "add vector arity mismatch")
              t.seq)
          ph3_added;
        Some
          {
            Pipeline.ph3_added;
            ph3_uncovered =
              Asc_util.Bitvec.init (Array.length uncovered_bits) (fun i ->
                  uncovered_bits.(i));
          }
  in
  let snap_comb_size = req "comb" comb in
  if Array.length snap_selected_bits <> snap_comb_size then
    fail 0 "selected length %d does not match comb %d"
      (Array.length snap_selected_bits)
      snap_comb_size;
  {
    Pipeline.snap_circuit;
    snap_pis;
    snap_ffs;
    snap_seed = req "seed" seed;
    snap_t0 = req "t0" t0;
    snap_comb_size;
    snap_t0_length = req "t0len" t0len;
    snap_f0_count = req "f0count" f0count;
    snap_iter = req "iter" iter;
    snap_selected =
      Asc_util.Bitvec.init (Array.length snap_selected_bits) (fun i ->
          snap_selected_bits.(i));
    snap_seq;
    snap_best = !tau;
    (* The file lists iterations newest-first, like the snapshot; undo the
       reversal that accumulating with [::] introduced. *)
    snap_iterations = List.rev !its;
    snap_phase3;
  }

let validate (p : Pipeline.prepared) ~(config : Pipeline.config)
    (s : Pipeline.snapshot) =
  let c = p.circuit in
  let expect what got want =
    if got <> want then
      raise
        (Incompatible (Printf.sprintf "%s: checkpoint has %s, this run has %s" what got want))
  in
  expect "circuit" s.snap_circuit (Circuit.name c);
  expect "inputs" (string_of_int s.snap_pis) (string_of_int (Circuit.n_inputs c));
  expect "flip-flops" (string_of_int s.snap_ffs) (string_of_int (Circuit.n_dffs c));
  expect "seed" (string_of_int s.snap_seed) (string_of_int config.seed);
  expect "t0 source" s.snap_t0 (Pipeline.t0_fingerprint config.t0_source);
  expect "|C|"
    (string_of_int s.snap_comb_size)
    (string_of_int (Array.length p.comb_tests));
  match s.snap_phase3 with
  | None -> ()
  | Some p3 ->
      expect "phase3 fault universe"
        (string_of_int (Asc_util.Bitvec.length p3.ph3_uncovered))
        (string_of_int (Array.length p.faults))

module Chaos = Asc_util.Chaos
module Tel = Asc_util.Telemetry

(* One atomic write attempt: temp file + rename, chaos points around each
   syscall.  Any failure removes the stray temp file before re-raising —
   except [Chaos.Killed], which models a hard crash and must leave disk
   state exactly as a SIGKILL would (the partial temp file stays; later
   writes overwrite it, loads never look at it). *)
let write_once ?chaos path text =
  let tmp = path ^ ".tmp" in
  try
    Chaos.hit chaos Chaos.checkpoint_open;
    let oc = open_out tmp in
    (try
       Chaos.hit chaos Chaos.checkpoint_output;
       output_string oc text;
       close_out oc
     with e ->
       let bt = Printexc.get_raw_backtrace () in
       close_out_noerr oc;
       Printexc.raise_with_backtrace e bt);
    Chaos.hit chaos Chaos.checkpoint_rename;
    Sys.rename tmp path
  with
  | Chaos.Killed _ as e -> raise e
  | e ->
      let bt = Printexc.get_raw_backtrace () in
      (try Sys.remove tmp with Sys_error _ -> ());
      Printexc.raise_with_backtrace e bt

(* Promote existing copies one suffix up: <file>.(k) -> <file>.(k+1), then
   <file> -> <file>.1.  Each step is one atomic rename, so a crash at any
   point leaves every snapshot intact under exactly one of the names that
   [load_latest_valid] probes.  Re-running after a partial rotation is
   harmless: already-promoted names no longer exist and are skipped. *)
let rotate ?chaos path ~keep =
  if keep > 1 && Sys.file_exists path then begin
    for k = keep - 2 downto 1 do
      let src = Printf.sprintf "%s.%d" path k in
      if Sys.file_exists src then begin
        Chaos.hit chaos Chaos.checkpoint_rotate;
        Sys.rename src (Printf.sprintf "%s.%d" path (k + 1))
      end
    done;
    Chaos.hit chaos Chaos.checkpoint_rotate;
    Sys.rename path (path ^ ".1")
  end

let write_file ?tel ?chaos ?(keep = 1) ?(retries = 2) path (s : Pipeline.snapshot) =
  if keep < 1 then invalid_arg "Checkpoint.write_file: keep must be >= 1";
  if retries < 0 then invalid_arg "Checkpoint.write_file: retries must be >= 0";
  Tel.span tel "checkpoint:write" ~args:[ ("iter", string_of_int s.snap_iter) ]
  @@ fun () ->
  let text = to_string s in
  let rec attempt n =
    match
      if n = 0 then rotate ?chaos path ~keep;
      write_once ?chaos path text
    with
    | () -> Tel.incr tel Tel.Checkpoint_writes
    | exception (Chaos.Killed _ as e) -> raise e
    | exception (Sys_error _ as e) ->
        Tel.incr tel Tel.Checkpoint_write_failures;
        if n >= retries then raise e
        else begin
          (* Linear backoff, short enough not to distort deadline-aware
             runs: transient failures (ENOSPC racing a cleaner, NFS
             hiccups) usually clear within a few milliseconds. *)
          Unix.sleepf (0.002 *. float_of_int (n + 1));
          attempt (n + 1)
        end
  in
  attempt 0

let read_file ?chaos path =
  Chaos.hit chaos Chaos.checkpoint_read;
  let ic = open_in path in
  let text =
    try really_input_string ic (in_channel_length ic)
    with e ->
      close_in_noerr ic;
      raise e
  in
  close_in ic;
  of_string text

type loaded = {
  snapshot : Pipeline.snapshot;
  source : string; (* the file the snapshot was read from *)
  recovered : bool; (* a rotated copy, not the newest file *)
}

let load_latest_valid ?tel ?chaos path =
  let rec rotated k =
    let p = Printf.sprintf "%s.%d" path k in
    if Sys.file_exists p then p :: rotated (k + 1) else []
  in
  let rec probe first_error = function
    | [] -> (
        match first_error with
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> raise (Sys_error (path ^ ": no checkpoint found")))
    | p :: rest -> (
        match read_file ?chaos p with
        | snapshot ->
            let recovered = p <> path in
            if recovered then Tel.incr tel Tel.Checkpoint_recoveries;
            { snapshot; source = p; recovered }
        | exception ((Corrupt _ | Sys_error _) as e) ->
            (* Keep the newest file's error: if every copy is bad, that is
               the most useful one to report. *)
            let first_error =
              match first_error with
              | Some _ -> first_error
              | None -> Some (e, Printexc.get_raw_backtrace ())
            in
            probe first_error rest)
  in
  probe None (path :: rotated 1)
