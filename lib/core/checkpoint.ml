(* Plain-text serialization of Pipeline snapshots (crash-safe resume).

   Format (one item per line, '#' comments, bit strings as in Tset_io):

     checkpoint v1
     circuit <name> <n_pis> <n_ffs>
     seed <n>
     t0 <fingerprint>            # e.g. directed/1000
     comb <|C|>
     t0len <n>
     f0count <n>
     iter <n>
     selected <bits>             # |C| bits, chosen scan-in states
     it <si> <u_so> <len> <det>  # iteration log, newest first
     seq                         # T_C entering the next iteration
     v <bits>
     endseq
     tau                         # best iterate so far (optional block)
     si <bits>
     v <bits>
     endtau

   Files are written atomically (temp file + rename), so a run killed
   mid-write leaves the previous checkpoint intact. *)

module Circuit = Asc_netlist.Circuit
module Scan_test = Asc_scan.Scan_test
module Tset_io = Asc_scan.Tset_io

exception Corrupt of { line : int; message : string }

exception Incompatible of string

let fail line fmt =
  Format.kasprintf (fun message -> raise (Corrupt { line; message })) fmt

let to_string (s : Pipeline.snapshot) =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "# asc pipeline checkpoint (iteration %d)\n" s.snap_iter;
  add "checkpoint v1\n";
  add "circuit %s %d %d\n" s.snap_circuit s.snap_pis s.snap_ffs;
  add "seed %d\n" s.snap_seed;
  add "t0 %s\n" s.snap_t0;
  add "comb %d\n" s.snap_comb_size;
  add "t0len %d\n" s.snap_t0_length;
  add "f0count %d\n" s.snap_f0_count;
  add "iter %d\n" s.snap_iter;
  add "selected %s\n"
    (Tset_io.bits_to_string
       (Array.init
          (Asc_util.Bitvec.length s.snap_selected)
          (Asc_util.Bitvec.get s.snap_selected)));
  List.iter
    (fun (it : Pipeline.iteration) ->
      add "it %d %d %d %d\n" it.si_index it.u_so it.len_after_omission it.detected_count)
    s.snap_iterations;
  add "seq\n";
  Array.iter (fun v -> add "v %s\n" (Tset_io.bits_to_string v)) s.snap_seq;
  add "endseq\n";
  (match s.snap_best with
  | None -> ()
  | Some t ->
      add "tau\n";
      add "si %s\n" (Tset_io.bits_to_string t.si);
      Array.iter (fun v -> add "v %s\n" (Tset_io.bits_to_string v)) t.seq;
      add "endtau\n");
  Buffer.contents buf

(* Parser: single pass, mutable slots; [section] tracks whether v-lines
   belong to the header (none), the T_C block or the tau block. *)
type section = Top | In_seq | In_tau

let of_string text =
  let version = ref false in
  let circuit = ref None in
  let seed = ref None
  and t0 = ref None
  and comb = ref None
  and t0len = ref None
  and f0count = ref None
  and iter = ref None in
  let selected = ref None in
  let its = ref [] in
  let seq = ref None in
  let seq_acc = ref [] in
  let tau = ref None in
  let tau_si = ref None in
  let tau_acc = ref [] in
  let section = ref Top in
  let int_field line name r v =
    if !r <> None then fail line "duplicate %s" name;
    match int_of_string_opt v with
    | Some n -> r := Some n
    | None -> fail line "bad %s %S" name v
  in
  let bits line v =
    try Tset_io.bits_of_string line v
    with Tset_io.Format_error { line; message } -> fail line "%s" message
  in
  List.iteri
    (fun i raw ->
      let line = i + 1 in
      let s = String.trim raw in
      let s =
        match String.index_opt s '#' with
        | Some k -> String.trim (String.sub s 0 k)
        | None -> s
      in
      if s <> "" then
        match (String.split_on_char ' ' s, !section) with
        | [ "checkpoint"; "v1" ], Top -> version := true
        | [ "checkpoint"; v ], Top -> fail line "unsupported checkpoint version %S" v
        | [ "circuit"; name; pis; ffs ], Top -> (
            if !circuit <> None then fail line "duplicate circuit";
            match (int_of_string_opt pis, int_of_string_opt ffs) with
            | Some pis, Some ffs -> circuit := Some (name, pis, ffs)
            | _ -> fail line "bad circuit header")
        | [ "seed"; v ], Top -> int_field line "seed" seed v
        | [ "t0"; v ], Top ->
            if !t0 <> None then fail line "duplicate t0";
            t0 := Some v
        | [ "comb"; v ], Top -> int_field line "comb" comb v
        | [ "t0len"; v ], Top -> int_field line "t0len" t0len v
        | [ "f0count"; v ], Top -> int_field line "f0count" f0count v
        | [ "iter"; v ], Top -> int_field line "iter" iter v
        | [ "selected"; v ], Top ->
            if !selected <> None then fail line "duplicate selected";
            selected := Some (bits line v)
        | [ "it"; a; b; c; d ], Top -> (
            match
              ( int_of_string_opt a,
                int_of_string_opt b,
                int_of_string_opt c,
                int_of_string_opt d )
            with
            | Some si_index, Some u_so, Some len_after_omission, Some detected_count ->
                its :=
                  { Pipeline.si_index; u_so; len_after_omission; detected_count } :: !its
            | _ -> fail line "bad iteration record %S" s)
        | [ "seq" ], Top ->
            if !seq <> None then fail line "duplicate seq block";
            seq_acc := [];
            section := In_seq
        | [ "v"; v ], In_seq -> seq_acc := bits line v :: !seq_acc
        | [ "endseq" ], In_seq ->
            seq := Some (Array.of_list (List.rev !seq_acc));
            section := Top
        | [ "tau" ], Top ->
            if !tau <> None then fail line "duplicate tau block";
            tau_si := None;
            tau_acc := [];
            section := In_tau
        | [ "si"; v ], In_tau ->
            if !tau_si <> None then fail line "duplicate si";
            tau_si := Some (bits line v)
        | [ "v"; v ], In_tau -> tau_acc := bits line v :: !tau_acc
        | [ "endtau" ], In_tau ->
            let si = match !tau_si with Some x -> x | None -> fail line "tau without si" in
            if !tau_acc = [] then fail line "tau without vectors";
            tau := Some (Scan_test.create ~si ~seq:(Array.of_list (List.rev !tau_acc)));
            section := Top
        | _, _ -> fail line "unrecognised line %S" s)
    (String.split_on_char '\n' text);
  if !section <> Top then fail 0 "unterminated block";
  if not !version then fail 0 "missing checkpoint version line";
  let req name r = match !r with Some x -> x | None -> fail 0 "missing %s" name in
  let snap_circuit, snap_pis, snap_ffs = req "circuit" circuit in
  let snap_seq = req "seq block" seq in
  let snap_selected_bits = req "selected" selected in
  Array.iter
    (fun v ->
      if Array.length v <> snap_pis then fail 0 "seq vector arity mismatch")
    snap_seq;
  (match !tau with
  | Some (t : Scan_test.t) ->
      if Array.length t.si <> snap_ffs then fail 0 "tau si arity mismatch";
      Array.iter
        (fun v -> if Array.length v <> snap_pis then fail 0 "tau vector arity mismatch")
        t.seq
  | None -> ());
  let snap_comb_size = req "comb" comb in
  if Array.length snap_selected_bits <> snap_comb_size then
    fail 0 "selected length %d does not match comb %d"
      (Array.length snap_selected_bits)
      snap_comb_size;
  {
    Pipeline.snap_circuit;
    snap_pis;
    snap_ffs;
    snap_seed = req "seed" seed;
    snap_t0 = req "t0" t0;
    snap_comb_size;
    snap_t0_length = req "t0len" t0len;
    snap_f0_count = req "f0count" f0count;
    snap_iter = req "iter" iter;
    snap_selected =
      Asc_util.Bitvec.init (Array.length snap_selected_bits) (fun i ->
          snap_selected_bits.(i));
    snap_seq;
    snap_best = !tau;
    (* The file lists iterations newest-first, like the snapshot; undo the
       reversal that accumulating with [::] introduced. *)
    snap_iterations = List.rev !its;
  }

let validate (p : Pipeline.prepared) ~(config : Pipeline.config)
    (s : Pipeline.snapshot) =
  let c = p.circuit in
  let expect what got want =
    if got <> want then
      raise
        (Incompatible (Printf.sprintf "%s: checkpoint has %s, this run has %s" what got want))
  in
  expect "circuit" s.snap_circuit (Circuit.name c);
  expect "inputs" (string_of_int s.snap_pis) (string_of_int (Circuit.n_inputs c));
  expect "flip-flops" (string_of_int s.snap_ffs) (string_of_int (Circuit.n_dffs c));
  expect "seed" (string_of_int s.snap_seed) (string_of_int config.seed);
  expect "t0 source" s.snap_t0 (Pipeline.t0_fingerprint config.t0_source);
  expect "|C|"
    (string_of_int s.snap_comb_size)
    (string_of_int (Array.length p.comb_tests))

(* Atomic write: the previous checkpoint survives a crash mid-write. *)
let write_file ?tel path (s : Pipeline.snapshot) =
  let module Tel = Asc_util.Telemetry in
  Tel.span tel "checkpoint:write" ~args:[ ("iter", string_of_int s.snap_iter) ]
  @@ fun () ->
  Tel.incr tel Tel.Checkpoint_writes;
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (try output_string oc (to_string s)
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc;
  Sys.rename tmp path

let read_file path =
  let ic = open_in path in
  let text =
    try really_input_string ic (in_channel_length ic)
    with e ->
      close_in_noerr ic;
      raise e
  in
  close_in ic;
  of_string text
