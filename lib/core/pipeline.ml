(* The proposed compaction procedure, end to end (Section 3 of the paper).

   Phases:
   1. build a scan-based test from a test sequence T0 (scan-in selection
      from the combinational set C, scan-out time selection);
   2. vector omission;
   1+2 iterate with T0 := T_C until the selected scan-in state repeats
      (or an iteration cap);
   3. top up to complete coverage with length-one tests from C, greedy
      minimum-n(f) first;
   4. static compaction of the resulting set with the combining procedure
      of [4].

   [prepare] builds everything the procedure (and the baselines) share:
   the collapsed fault list, the combinational test set C, and the target
   fault set (collapsed faults minus proven-redundant ones). *)

open Asc_util
module Circuit = Asc_netlist.Circuit
module Pattern = Asc_sim.Pattern
module Scan_test = Asc_scan.Scan_test
module Seq_fsim = Asc_fault.Seq_fsim

let log = Logs.Src.create "asc.pipeline" ~doc:"Proposed compaction procedure"

module Log = (val Logs.src_log log)

type t0_source = Directed of int | Random_seq of int | Genetic of int
(* [Directed budget] — the PROPTEST-style generator; [Random_seq len] — a
   uniform random sequence (the paper's "rand" columns); [Genetic budget] —
   the STRATEGATE-style genetic generator. *)

type config = {
  seed : int;
  t0_source : t0_source;
  max_iterations : int;
  scan_out_policy : Phase1.scan_out_policy;
  omission : Asc_compact.Vector_omission.config;
  combine : Asc_compact.Combine.config;
  comb_tgen : Asc_atpg.Comb_tgen.config;
}

let default_config =
  {
    seed = 1;
    t0_source = Directed 1000;
    max_iterations = 8;
    scan_out_policy = Phase1.Earliest;
    omission = Asc_compact.Vector_omission.default_config;
    combine = Asc_compact.Combine.default_config;
    comb_tgen = Asc_atpg.Comb_tgen.default_config;
  }

type prepared = {
  circuit : Circuit.t;
  faults : Asc_fault.Fault.t array; (* collapsed representatives *)
  targets : Bitvec.t; (* collapsed minus proven-redundant *)
  comb_tests : Pattern.t array; (* the compact combinational set C *)
  comb_detected : Bitvec.t; (* coverage of C *)
  redundant : Bitvec.t;
  aborted : Bitvec.t;
}

let prepare ?pool ?(config = default_config) c =
  let collapse = Asc_fault.Collapse.run c in
  let faults = Asc_fault.Collapse.reps collapse in
  let rng = Rng.of_name ~seed:config.seed (Circuit.name c ^ "/comb") in
  let gen = Asc_atpg.Comb_tgen.generate ?pool ~config:config.comb_tgen c ~faults ~rng in
  let n = Array.length faults in
  let targets = Bitvec.init n (fun i -> not (Bitvec.get gen.redundant i)) in
  {
    circuit = c;
    faults;
    targets;
    comb_tests = gen.tests;
    comb_detected = gen.detected;
    redundant = gen.redundant;
    aborted = gen.aborted;
  }

type iteration = {
  si_index : int;
  u_so : int; (* chosen scan-out time *)
  len_after_omission : int;
  detected_count : int;
}

type result = {
  config : config;
  t0_length : int;
  f0_count : int; (* faults T0 detects without scan (Table 1 "T0") *)
  tau_seq : Scan_test.t;
  f_seq : Bitvec.t; (* faults tau_seq detects (Table 1 "scan") *)
  iterations : iteration list;
  added : Scan_test.t array; (* Phase 3 tests (Table 2 "added") *)
  uncovered : Bitvec.t; (* target faults not even C detects *)
  initial_tests : Scan_test.t array; (* end of Phase 3 *)
  final_tests : Scan_test.t array; (* end of Phase 4 *)
  final_detected : Bitvec.t;
  cycles_initial : int;
  cycles_final : int;
}

let make_t0 ?pool config (p : prepared) =
  let c = p.circuit in
  let rng = Rng.of_name ~seed:config.seed (Circuit.name c ^ "/t0") in
  match config.t0_source with
  | Random_seq len ->
      Asc_atpg.Random_tgen.generate rng ~n_pis:(Circuit.n_inputs c) ~len
  | Directed budget ->
      let cfg = { Asc_atpg.Seq_tgen.default_config with budget } in
      (Asc_atpg.Seq_tgen.generate ?pool ~config:cfg c ~faults:p.faults ~rng).seq
  | Genetic budget ->
      let cfg = { Asc_atpg.Ga_tgen.default_config with budget } in
      (Asc_atpg.Ga_tgen.generate ?pool ~config:cfg c ~faults:p.faults ~rng).seq

let run ?pool ?(config = default_config) (p : prepared) =
  let c = p.circuit in
  if Array.length p.comb_tests = 0 then
    invalid_arg
      (Printf.sprintf
         "Pipeline.run: circuit %s has an empty combinational test set (no \
          detectable faults?)"
         (Circuit.name c));
  let faults = p.faults in
  let t0 = make_t0 ?pool config p in
  let f0_orig =
    Bitvec.inter (Seq_fsim.detect_no_scan ?pool c ~seq:t0 ~faults) p.targets
  in
  (* --- Phases 1 + 2, iterated ------------------------------------- *)
  let selected = Bitvec.create (Array.length p.comb_tests) in
  let iterations = ref [] in
  let current_seq = ref t0 in
  let current_f0 = ref f0_orig in
  let tau = ref None in
  let stop = ref false in
  let iter = ref 0 in
  let timed label f =
    let t0 = Sys.time () in
    let r = f () in
    Log.debug (fun m -> m "%s %s: %.2fs" (Circuit.name c) label (Sys.time () -. t0));
    r
  in
  while not !stop do
    incr iter;
    let choice =
      timed "select_scan_in" (fun () ->
          Phase1.select_scan_in ?pool c ~faults ~candidates:p.comb_tests ~t0:!current_seq
            ~f0:!current_f0 ~targets:p.targets ~selected)
    in
    let so =
      timed "select_scan_out" (fun () ->
          Phase1.select_scan_out ?pool ~policy:config.scan_out_policy c ~faults
            ~si:p.comb_tests.(choice.index).state
            ~t0:!current_seq ~f_si:choice.f_si ~targets:p.targets)
    in
    let om =
      timed "vector_omission" (fun () ->
          Asc_compact.Vector_omission.run ?pool ~config:config.omission c so.test ~faults
            ~required:so.f_so)
    in
    let f_c =
      Bitvec.inter (Scan_test.detect ?pool ~only:p.targets c om.test ~faults) p.targets
    in
    Log.debug (fun m ->
        m "%s iter %d: SI=%d%s u_SO=%d len %d->%d detected %d" (Circuit.name c) !iter
          choice.index
          (if choice.already_selected then " (repeat)" else "")
          so.u
          (Scan_test.length so.test) (Scan_test.length om.test) (Bitvec.count f_c));
    iterations :=
      {
        si_index = choice.index;
        u_so = so.u;
        len_after_omission = Scan_test.length om.test;
        detected_count = Bitvec.count f_c;
      }
      :: !iterations;
    (* Keep the best iterate: changing the scan-in state between rounds
       can lose detections, and the best round dominates the last one.
       Because round 1 already detects F_SI(1) >= F0, this also keeps the
       Table-1 invariant |F0| <= |F_seq|. *)
    let better =
      match !tau with
      | None -> true
      | Some (t, f) ->
          let cmp = compare (Bitvec.count f_c) (Bitvec.count f) in
          cmp > 0 || (cmp = 0 && Scan_test.length om.test < Scan_test.length t)
    in
    if better then tau := Some (om.test, f_c);
    (* Stop on the paper's condition (a repeated scan-in state), on the
       iteration cap, or when the round brought no improvement — further
       rounds only re-shuffle equivalent scan-in states. *)
    if choice.already_selected || !iter >= config.max_iterations || not better then
      stop := true
    else begin
      Bitvec.set selected choice.index;
      current_seq := om.test.seq;
      current_f0 :=
        Bitvec.inter (Seq_fsim.detect_no_scan ?pool c ~seq:!current_seq ~faults) p.targets
    end
  done;
  let tau_seq, f_seq =
    match !tau with Some x -> x | None -> assert false
  in
  (* --- Phase 3: complete the coverage ------------------------------ *)
  let undetected = Bitvec.diff p.targets f_seq in
  let matrix =
    Asc_fault.Comb_fsim.detect_matrix ?pool ~only:undetected c ~patterns:p.comb_tests
      ~faults
  in
  let cover = Asc_compact.Set_cover.select ~matrix ~undetected in
  let added =
    Array.of_list
      (List.map (fun j -> Scan_test.of_pattern p.comb_tests.(j)) cover.selected)
  in
  let initial_tests = Array.append [| tau_seq |] added in
  let cycles_initial = Asc_scan.Time_model.cycles_of_tests c initial_tests in
  (* --- Phase 4: static compaction of the result -------------------- *)
  let combined =
    Asc_compact.Combine.run ?pool ~config:config.combine c initial_tests ~faults
      ~targets:p.targets
  in
  let final_tests = combined.tests in
  let cycles_final = Asc_scan.Time_model.cycles_of_tests c final_tests in
  let final_detected = Asc_scan.Tset.coverage ?pool ~only:p.targets c final_tests ~faults in
  {
    config;
    t0_length = Array.length t0;
    f0_count = Bitvec.count f0_orig;
    tau_seq;
    f_seq;
    iterations = List.rev !iterations;
    added;
    uncovered = cover.uncovered;
    initial_tests;
    final_tests;
    final_detected;
    cycles_initial;
    cycles_final;
  }
