(* The proposed compaction procedure, end to end (Section 3 of the paper).

   Phases:
   1. build a scan-based test from a test sequence T0 (scan-in selection
      from the combinational set C, scan-out time selection);
   2. vector omission;
   1+2 iterate with T0 := T_C until the selected scan-in state repeats
      (or an iteration cap);
   3. top up to complete coverage with length-one tests from C, greedy
      minimum-n(f) first;
   4. static compaction of the resulting set with the combining procedure
      of [4].

   [prepare] builds everything the procedure (and the baselines) share:
   the collapsed fault list, the combinational test set C, and the target
   fault set (collapsed faults minus proven-redundant ones). *)

open Asc_util
module Circuit = Asc_netlist.Circuit
module Pattern = Asc_sim.Pattern
module Scan_test = Asc_scan.Scan_test
module Seq_fsim = Asc_fault.Seq_fsim

let log = Logs.Src.create "asc.pipeline" ~doc:"Proposed compaction procedure"

module Log = (val Logs.src_log log)

type t0_source = Directed of int | Random_seq of int | Genetic of int
(* [Directed budget] — the PROPTEST-style generator; [Random_seq len] — a
   uniform random sequence (the paper's "rand" columns); [Genetic budget] —
   the STRATEGATE-style genetic generator. *)

type config = {
  seed : int;
  t0_source : t0_source;
  max_iterations : int;
  scan_out_policy : Phase1.scan_out_policy;
  omission : Asc_compact.Vector_omission.config;
  combine : Asc_compact.Combine.config;
  comb_tgen : Asc_atpg.Comb_tgen.config;
}

let default_config =
  {
    seed = 1;
    t0_source = Directed 1000;
    max_iterations = 8;
    scan_out_policy = Phase1.Earliest;
    omission = Asc_compact.Vector_omission.default_config;
    combine = Asc_compact.Combine.default_config;
    comb_tgen = Asc_atpg.Comb_tgen.default_config;
  }

type prepared = {
  circuit : Circuit.t;
  faults : Asc_fault.Fault.t array; (* collapsed representatives *)
  targets : Bitvec.t; (* collapsed minus proven-redundant *)
  comb_tests : Pattern.t array; (* the compact combinational set C *)
  comb_detected : Bitvec.t; (* coverage of C *)
  redundant : Bitvec.t;
  aborted : Bitvec.t;
}

let prepare ?pool ?budget ?tel ?(config = default_config) c =
  Telemetry.span tel "prepare" ~args:[ ("circuit", Circuit.name c) ]
  @@ fun () ->
  let collapse = Asc_fault.Collapse.run c in
  let faults = Asc_fault.Collapse.reps collapse in
  let rng = Rng.of_name ~seed:config.seed (Circuit.name c ^ "/comb") in
  let gen =
    Asc_atpg.Comb_tgen.generate ?pool ?budget ?tel ~config:config.comb_tgen c ~faults
      ~rng
  in
  let n = Array.length faults in
  let targets = Bitvec.init n (fun i -> not (Bitvec.get gen.redundant i)) in
  {
    circuit = c;
    faults;
    targets;
    comb_tests = gen.tests;
    comb_detected = gen.detected;
    redundant = gen.redundant;
    aborted = gen.aborted;
  }

type iteration = {
  si_index : int;
  u_so : int; (* chosen scan-out time *)
  len_after_omission : int;
  detected_count : int;
}

type result = {
  config : config;
  t0_length : int;
  f0_count : int; (* faults T0 detects without scan (Table 1 "T0") *)
  tau_seq : Scan_test.t;
  f_seq : Bitvec.t; (* faults tau_seq detects (Table 1 "scan") *)
  iterations : iteration list;
  added : Scan_test.t array; (* Phase 3 tests (Table 2 "added") *)
  uncovered : Bitvec.t; (* target faults not even C detects *)
  initial_tests : Scan_test.t array; (* end of Phase 3 *)
  final_tests : Scan_test.t array; (* end of Phase 4 *)
  final_detected : Bitvec.t;
  cycles_initial : int;
  cycles_final : int;
}

let make_t0 ?pool ?budget ?tel config (p : prepared) =
  let c = p.circuit in
  let rng = Rng.of_name ~seed:config.seed (Circuit.name c ^ "/t0") in
  match config.t0_source with
  | Random_seq len ->
      Asc_atpg.Random_tgen.generate rng ~n_pis:(Circuit.n_inputs c) ~len
  | Directed budget' ->
      let cfg = { Asc_atpg.Seq_tgen.default_config with budget = budget' } in
      (Asc_atpg.Seq_tgen.generate ?pool ?budget ?tel ~config:cfg c ~faults:p.faults ~rng)
        .seq
  | Genetic budget' ->
      let cfg = { Asc_atpg.Ga_tgen.default_config with budget = budget' } in
      (Asc_atpg.Ga_tgen.generate ?pool ?budget ?tel ~config:cfg c ~faults:p.faults ~rng)
        .seq

(* --- Robustness layer: snapshots, partial results ---------------------- *)

let t0_fingerprint = function
  | Directed b -> Printf.sprintf "directed/%d" b
  | Random_seq l -> Printf.sprintf "random/%d" l
  | Genetic b -> Printf.sprintf "genetic/%d" b

(* Phase-3 output captured at the post-Phase-3 boundary: the added
   length-one tests and the faults not even C covers.  Everything else a
   resumed Phase 4 needs (initial_tests, N_cyc, coverage) is derived from
   these plus [snap_best] by the same deterministic simulations the
   uninterrupted run used. *)
type phase3_snap = {
  ph3_added : Scan_test.t array;
  ph3_uncovered : Bitvec.t;
}

type snapshot = {
  snap_circuit : string;
  snap_pis : int;
  snap_ffs : int;
  snap_seed : int;
  snap_t0 : string; (* [t0_fingerprint] of the run's T0 source *)
  snap_comb_size : int; (* |C|, sanity-checked on resume *)
  snap_t0_length : int;
  snap_f0_count : int;
  snap_iter : int; (* Phase 1+2 iterations completed *)
  snap_selected : Bitvec.t; (* scan-in states already selected *)
  snap_seq : bool array array; (* T_C entering the next iteration *)
  snap_best : Scan_test.t option; (* best iterate tau so far *)
  snap_iterations : iteration list; (* newest first (loop accumulator order) *)
  snap_phase3 : phase3_snap option; (* present once Phase 3 has completed *)
}

type stage = Stage_t0 | Stage_iterate | Stage_cover | Stage_combine

let stage_to_string = function
  | Stage_t0 -> "t0-generation"
  | Stage_iterate -> "phase1+2"
  | Stage_cover -> "phase3"
  | Stage_combine -> "phase4"

type partial = {
  p_reason : Budget.reason;
  p_stage : stage;
  p_iterations : iteration list; (* oldest first, like [result.iterations] *)
  p_tests : Scan_test.t array; (* best-so-far test set (possibly empty) *)
  p_detected : Bitvec.t; (* target faults [p_tests] detects *)
  p_cycles : int; (* N_cyc of [p_tests] *)
}

type outcome = Complete of result | Partial of partial

(* The deterministic-resume contract: a snapshot is taken only at an
   iteration *boundary* (after the "continue" updates), and it captures the
   loop's full explicit state — selected scan-ins, T_C, the best iterate,
   the iteration log.  The derived state (no-scan detections of T_C, the
   best iterate's detection set) is recomputed on resume by the same
   deterministic simulations the uninterrupted run used, so a resumed run
   replays the remaining iterations and Phases 3–4 bit-identically. *)
let run_bounded ?pool ?(budget = Budget.unlimited) ?tel ?(config = default_config)
    ?resume ?on_checkpoint (p : prepared) =
  let c = p.circuit in
  if Array.length p.comb_tests = 0 then begin
    (* An exhausted budget during [prepare] also leaves the set empty;
       that is a deadline, not a diagnosis. *)
    Budget.check budget;
    invalid_arg
      (Printf.sprintf
         "Pipeline.run: circuit %s has an empty combinational test set (no \
          detectable faults?)"
         (Circuit.name c))
  end;
  (match resume with
  | Some s ->
      if
        s.snap_circuit <> Circuit.name c
        || s.snap_pis <> Circuit.n_inputs c
        || s.snap_ffs <> Circuit.n_dffs c
        || s.snap_comb_size <> Array.length p.comb_tests
        || s.snap_seed <> config.seed
        || s.snap_t0 <> t0_fingerprint config.t0_source
      then
        invalid_arg
          (Printf.sprintf
             "Pipeline.run_bounded: snapshot (%s seed %d t0 %s |C|=%d) does not match \
              this run (%s seed %d t0 %s |C|=%d)"
             s.snap_circuit s.snap_seed s.snap_t0 s.snap_comb_size (Circuit.name c)
             config.seed
             (t0_fingerprint config.t0_source)
             (Array.length p.comb_tests))
  | None -> ());
  let faults = p.faults in
  let timed label f =
    let t0 = Sys.time () in
    let r = f () in
    Log.debug (fun m -> m "%s %s: %.2fs" (Circuit.name c) label (Sys.time () -. t0));
    r
  in
  (* --- Phase 1+2 loop state (fresh, or rebuilt from a snapshot) ----- *)
  let selected =
    match resume with
    | Some s -> Bitvec.copy s.snap_selected
    | None -> Bitvec.create (Array.length p.comb_tests)
  in
  let iterations = ref [] in
  let current_seq = ref [||] in
  let current_f0 = ref (Bitvec.create (Array.length faults)) in
  let tau = ref None in
  let iter = ref 0 in
  let t0_length = ref 0 in
  let f0_count = ref 0 in
  let partial reason stage =
    let tests, detected =
      match !tau with
      | Some (t, f) -> ([| t |], f)
      | None -> ([||], Bitvec.create (Array.length faults))
    in
    Partial
      {
        p_reason = reason;
        p_stage = stage;
        p_iterations = List.rev !iterations;
        p_tests = tests;
        p_detected = detected;
        p_cycles =
          (if Array.length tests = 0 then 0
           else Asc_scan.Time_model.cycles_of_tests c tests);
      }
  in
  let snapshot () =
    {
      snap_circuit = Circuit.name c;
      snap_pis = Circuit.n_inputs c;
      snap_ffs = Circuit.n_dffs c;
      snap_seed = config.seed;
      snap_t0 = t0_fingerprint config.t0_source;
      snap_comb_size = Array.length p.comb_tests;
      snap_t0_length = !t0_length;
      snap_f0_count = !f0_count;
      snap_iter = !iter;
      snap_selected = Bitvec.copy selected;
      snap_seq = Array.map Array.copy !current_seq;
      snap_best = (match !tau with Some (t, _) -> Some t | None -> None);
      snap_iterations = !iterations;
      snap_phase3 = None;
    }
  in
  (* A post-Phase-3 snapshot implies a best iterate and an uncovered set
     sized to this run's fault universe; reject mismatches up front like
     the identity fields above. *)
  (match resume with
  | Some { snap_phase3 = Some p3; snap_best; _ } ->
      if snap_best = None then
        invalid_arg "Pipeline.run_bounded: phase3 snapshot without a tau block";
      if Bitvec.length p3.ph3_uncovered <> Array.length faults then
        invalid_arg
          (Printf.sprintf
             "Pipeline.run_bounded: phase3 uncovered length %d does not match %d \
              faults"
             (Bitvec.length p3.ph3_uncovered)
             (Array.length faults))
  | _ -> ());
  let resume_phase3 =
    match resume with Some { snap_phase3 = Some p3; _ } -> Some p3 | _ -> None
  in
  let checkpoint_degrading snap =
    match on_checkpoint with
    | Some f -> (
        try f snap
        with Sys_error msg ->
          (* Checkpoint.write_file already counted the failed attempts
             under Checkpoint_write_failures. *)
          Log.warn (fun m ->
              m "%s: checkpoint write failed (%s); continuing without a snapshot"
                (Circuit.name c) msg))
    | None -> ()
  in
  let init =
    try
      (match resume with
      | Some s ->
          iterations := s.snap_iterations;
          iter := s.snap_iter;
          t0_length := s.snap_t0_length;
          f0_count := s.snap_f0_count;
          current_seq := s.snap_seq;
          current_f0 :=
            Bitvec.inter
              (Seq_fsim.detect_no_scan ?pool ~budget ?tel c ~seq:!current_seq ~faults)
              p.targets;
          tau :=
            Option.map
              (fun t ->
                ( t,
                  Bitvec.inter
                    (Scan_test.detect ?pool ~budget ?tel ~only:p.targets c t ~faults)
                    p.targets ))
              s.snap_best
      | None ->
          Telemetry.span tel "t0-generation" (fun () ->
              let t0 = make_t0 ?pool ~budget ?tel config p in
              Budget.check budget;
              let f0 =
                Bitvec.inter
                  (Seq_fsim.detect_no_scan ?pool ~budget ?tel c ~seq:t0 ~faults)
                  p.targets
              in
              current_seq := t0;
              current_f0 := f0;
              t0_length := Array.length t0;
              f0_count := Bitvec.count f0));
      `Ok
    with Budget.Exhausted reason -> `Exhausted reason
  in
  match init with
  | `Exhausted reason -> partial reason Stage_t0
  | `Ok -> (
      (* --- Phases 1 + 2, iterated (skipped entirely when resuming from
         a post-Phase-3 snapshot: the loop's outputs are already final) *)
      let loop =
        try
          let stop = ref (resume_phase3 <> None) in
          while not !stop do
            Budget.check budget;
            incr iter;
            Telemetry.span tel "phase1+2"
              ~args:[ ("iter", string_of_int !iter) ]
            @@ fun () ->
            let choice =
              timed "select_scan_in" (fun () ->
                  Phase1.select_scan_in ?pool ~budget ?tel c ~faults
                    ~candidates:p.comb_tests ~t0:!current_seq ~f0:!current_f0
                    ~targets:p.targets ~selected)
            in
            let so =
              timed "select_scan_out" (fun () ->
                  Phase1.select_scan_out ?pool ~budget ?tel
                    ~policy:config.scan_out_policy c ~faults
                    ~si:p.comb_tests.(choice.index).state
                    ~t0:!current_seq ~f_si:choice.f_si ~targets:p.targets)
            in
            let om =
              timed "vector_omission" (fun () ->
                  Asc_compact.Vector_omission.run ?pool ~budget ?tel
                    ~config:config.omission c so.test ~faults ~required:so.f_so)
            in
            let f_c =
              Bitvec.inter
                (Scan_test.detect ?pool ~budget ?tel ~only:p.targets c om.test ~faults)
                p.targets
            in
            Log.debug (fun m ->
                m "%s iter %d: SI=%d%s u_SO=%d len %d->%d detected %d" (Circuit.name c)
                  !iter choice.index
                  (if choice.already_selected then " (repeat)" else "")
                  so.u
                  (Scan_test.length so.test) (Scan_test.length om.test) (Bitvec.count f_c));
            iterations :=
              {
                si_index = choice.index;
                u_so = so.u;
                len_after_omission = Scan_test.length om.test;
                detected_count = Bitvec.count f_c;
              }
              :: !iterations;
            (* Keep the best iterate: changing the scan-in state between rounds
               can lose detections, and the best round dominates the last one.
               Because round 1 already detects F_SI(1) >= F0, this also keeps the
               Table-1 invariant |F0| <= |F_seq|. *)
            let better =
              match !tau with
              | None -> true
              | Some (t, f) ->
                  let cmp = compare (Bitvec.count f_c) (Bitvec.count f) in
                  cmp > 0 || (cmp = 0 && Scan_test.length om.test < Scan_test.length t)
            in
            if better then tau := Some (om.test, f_c);
            (* Stop on the paper's condition (a repeated scan-in state), on the
               iteration cap, or when the round brought no improvement — further
               rounds only re-shuffle equivalent scan-in states. *)
            if choice.already_selected || !iter >= config.max_iterations || not better
            then stop := true
            else begin
              Bitvec.set selected choice.index;
              current_seq := om.test.seq;
              current_f0 :=
                Bitvec.inter
                  (Seq_fsim.detect_no_scan ?pool ~budget ?tel c ~seq:!current_seq ~faults)
                  p.targets;
              (* Iteration boundary: a checkpoint point — resuming here
                 replays the rest of the run bit-identically.  A persistent
                 write failure must not abort the run: losing a snapshot
                 costs resume granularity, aborting loses the best-so-far
                 test set the whole run built.  (Chaos.Killed models a
                 hard crash and is deliberately not caught.) *)
              checkpoint_degrading (snapshot ())
            end
          done;
          `Ok
        with Budget.Exhausted reason -> `Exhausted reason
      in
      match loop with
      | `Exhausted reason -> partial reason Stage_iterate
      | `Ok -> (
          let tau_seq, f_seq = match !tau with Some x -> x | None -> assert false in
          (* Phases 3 and 4, each a cancellation region: a budget firing in
             Phase 3 degrades to the tau-only set, in Phase 4 to the
             uncombined end-of-Phase-3 set. *)
          let after_phase3 = ref None in
          try
            (* --- Phase 3: complete the coverage -------------------- *)
            let initial_tests, cycles_initial, detected_initial, uncovered, added =
              match resume_phase3 with
              | Some p3 ->
                  (* Phase 3 already ran before the interruption: rebuild
                     its outputs from the snapshot.  [detected_initial] is
                     recomputed by fault simulation of the very same tests
                     whose per-test detections the fresh path unions, so
                     the value is bit-identical. *)
                  let added = p3.ph3_added in
                  let initial_tests = Array.append [| tau_seq |] added in
                  let cycles_initial =
                    Asc_scan.Time_model.cycles_of_tests c initial_tests
                  in
                  let detected_initial =
                    Asc_scan.Tset.coverage ?pool ~budget ?tel ~only:p.targets c
                      initial_tests ~faults
                  in
                  (initial_tests, cycles_initial, detected_initial, p3.ph3_uncovered, added)
              | None ->
                  Telemetry.span tel "phase3" @@ fun () ->
                  let undetected = Bitvec.diff p.targets f_seq in
                  let matrix =
                    Asc_fault.Comb_fsim.detect_matrix ?pool ~budget ?tel ~only:undetected c
                      ~patterns:p.comb_tests ~faults
                  in
                  let cover = Asc_compact.Set_cover.select ~matrix ~undetected in
                  let added =
                    Array.of_list
                      (List.map
                         (fun j -> Scan_test.of_pattern p.comb_tests.(j))
                         cover.selected)
                  in
                  let initial_tests = Array.append [| tau_seq |] added in
                  let cycles_initial = Asc_scan.Time_model.cycles_of_tests c initial_tests in
                  let detected_initial =
                    List.fold_left
                      (fun acc j -> Bitvec.union acc (Bitmat.row matrix j))
                      f_seq cover.selected
                  in
                  (initial_tests, cycles_initial, detected_initial, cover.uncovered, added)
            in
            after_phase3 := Some (initial_tests, cycles_initial, detected_initial, uncovered, added);
            (* Post-Phase-3 boundary: checkpoint again so a late
               interruption (or a server-side job eviction) resumes
               straight into Phase 4 instead of replaying the iterate
               loop.  Skipped when this run itself resumed past Phase 3 —
               the on-disk snapshot is already this one. *)
            if resume_phase3 = None then
              checkpoint_degrading
                { (snapshot ()) with
                  snap_phase3 = Some { ph3_added = added; ph3_uncovered = uncovered } };
            (* --- Phase 4: static compaction of the result ----------- *)
            let final_tests, cycles_final, final_detected =
              Telemetry.span tel "phase4" @@ fun () ->
              let combined =
                Asc_compact.Combine.run ?pool ~budget ?tel ~config:config.combine c
                  initial_tests ~faults ~targets:p.targets
              in
              let final_tests = combined.tests in
              let cycles_final = Asc_scan.Time_model.cycles_of_tests c final_tests in
              let final_detected =
                Asc_scan.Tset.coverage ?pool ~budget ?tel ~only:p.targets c final_tests
                  ~faults
              in
              (final_tests, cycles_final, final_detected)
            in
            Complete
              {
                config;
                t0_length = !t0_length;
                f0_count = !f0_count;
                tau_seq;
                f_seq;
                iterations = List.rev !iterations;
                added;
                uncovered;
                initial_tests;
                final_tests;
                final_detected;
                cycles_initial;
                cycles_final;
              }
          with Budget.Exhausted reason -> (
            match !after_phase3 with
            | None -> partial reason Stage_cover
            | Some (tests, cycles, detected, _, _) ->
                Partial
                  {
                    p_reason = reason;
                    p_stage = Stage_combine;
                    p_iterations = List.rev !iterations;
                    p_tests = tests;
                    p_detected = detected;
                    p_cycles = cycles;
                  })))

let run ?pool ?tel ?(config = default_config) (p : prepared) =
  match run_bounded ?pool ?tel ~config p with
  | Complete r -> r
  | Partial pr ->
      (* Only reachable through a pool whose own budget fired (the explicit
         budget above is unlimited); surface it as the exception legacy
         callers expect. *)
      raise (Budget.Exhausted pr.p_reason)
