(** The baseline of [4]: C as length-one scan tests, statically compacted
    by combining (the paper's "[4] init" / "[4] comp" columns).

    The set C itself comes from the shared {!Pipeline.prepare} — build the
    [prepared] record with the same [pool] to parallelise its ATPG too. *)

type result = {
  initial_tests : Asc_scan.Scan_test.t array;
  final_tests : Asc_scan.Scan_test.t array;
  cycles_initial : int;
  cycles_final : int;
  combinations : int;
}

val run :
  ?pool:Asc_util.Domain_pool.t ->
  ?combine:Asc_compact.Combine.config ->
  Pipeline.prepared ->
  result
