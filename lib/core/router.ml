(* The [asc route] shard router: a protocol-v1 front that fans submits
   across N backend [asc serve] instances (docs/SERVING.md "Fleet:
   routing, sharding and overload").

   Topology:

     clients --- asc route --- shard 0  (asc serve, own cache/state)
                     |  \----- shard 1
                     |   \---- ...
                   (rendezvous hash on the job's content key)

   Routing is by rendezvous (highest-random-weight) hashing of the
   canonical content key — {!Scheduler.key_of_spec}, the same key the
   result cache uses — against each backend's name: every router
   instance agrees on the placement without coordination, and a
   backend's death only re-homes the keys it owned.  Hashing the
   {e content} key (not the client) gives cache locality for free: a
   resubmission of the same job lands on the shard whose result cache
   already holds it.

   Failure semantics: any error on a backend connection — connect,
   write, read, EOF — marks the backend {e down} (Router_markdowns),
   fails its in-flight submits over to the next live shard
   (Router_failovers, bounded by a per-request retry budget; safe
   because submission is idempotent under the content-key result
   cache), and starts re-probing it with full-jitter exponential
   backoff; a probe answered by a [ping] pong marks it back {e up}
   (Router_markups).  With no live backend a submit is rejected with a
   typed [no_backend] error rather than queued — the router holds no
   work a dead fleet can't finish.

   The router's chaos points mirror the server's: [router.backend_write]
   (each forwarded request), [router.backend_read] (each backend
   response frame), [router.backend_health] (each health probe) — a
   [Fail] is handled exactly like the corresponding backend failure; a
   [Kill] propagates out of {!run} like a crash.

   [ping] is answered locally (the router is alive, that's the
   question).  [metrics] aggregates: it polls every live backend over a
   fresh connection, sums [pending] and the counters, merges the
   latency histograms (same bounds by construction), and adds the
   router's own counters plus [backends_up]/[backends_total] gauges.
   [shutdown] drains the router only: in-flight submits finish, new
   ones are rejected, backends stay up (shut shards down directly). *)

module J = Asc_util.Json
module Chaos = Asc_util.Chaos
module Telemetry = Asc_util.Telemetry
module Histogram = Asc_util.Histogram
module Log = Asc_util.Log
module Crc = Asc_util.Crc
module Rng = Asc_util.Rng
module Backoff = Asc_util.Backoff

type config = {
  listen : Server.listen;
  backends : (string * Server.listen) list;  (* display name, address *)
  max_frame : int;
  request_retries : int;  (* failover attempts per submit past the first *)
}

let default_request_retries = 3

(* Health cadence: ping live backends about once a second; a probe of a
   down backend that goes unanswered this long has failed. *)
let ping_interval = 1.0
let probe_timeout = 2.0
let probe_backoff_base = 0.1

type conn = {
  fd : Unix.file_descr;
  cid : int;
  buf : Buffer.t;
  mutable alive : bool;
}

(* One submit the router has accepted and not yet answered.  [e_rid] is
   the router-assigned correlation id on the backend wire; the client's
   own ["id"] member (if any) is restored on the way back. *)
type entry = {
  e_rid : int;
  e_cid : int;  (* client connection *)
  e_client_id : int option;
  e_key : string;  (* content key — the rendezvous hash input *)
  e_spec : Scheduler.spec;
  e_want_tset : bool;
  mutable e_attempts : int;
  mutable e_tried : string list;  (* backend names tried this cycle *)
}

type backend_state =
  | Down  (* awaiting its next probe *)
  | Probing of float  (* probe sent at t; pong pending *)
  | Up

type backend = {
  b_name : string;
  b_addr : Server.listen;
  mutable b_state : backend_state;
  mutable b_fd : Unix.file_descr option;
  b_buf : Buffer.t;
  b_inflight : (int, entry) Hashtbl.t;  (* router id -> entry *)
  mutable b_fails : int;  (* consecutive failed probes, for backoff *)
  mutable b_next_probe : float;
  mutable b_last_ping : float;
  mutable b_ever_up : bool;  (* first connect is a start, not a mark-up *)
}

type state = {
  cfg : config;
  tel : Telemetry.t option;
  chaos : Chaos.t option;
  log : Log.t option;
  rng : Rng.t;  (* probe-backoff jitter *)
  started : float;
  backends : backend array;
  conns : (int, conn) Hashtbl.t;
  cumulative : (string, int) Hashtbl.t;
  mutable next_cid : int;
  mutable next_rid : int;
  mutable running : bool;
  mutable draining : bool;
  mutable drained : int;  (* submits answered during drain *)
  mutable shutdown_waiters : int list;
}

(* --- Client side (the same framing discipline as Server) ---------------- *)

let close_conn state conn =
  if conn.alive then begin
    conn.alive <- false;
    Hashtbl.remove state.conns conn.cid;
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  end

let write_client state conn json =
  let line = J.to_string ~compact:true json ^ "\n" in
  try
    let n = String.length line in
    let sent = ref 0 in
    while !sent < n do
      sent := !sent + Unix.write_substring conn.fd line !sent (n - !sent)
    done
  with Unix.Unix_error _ | Sys_error _ -> close_conn state conn

let answer_client state cid json =
  match Hashtbl.find_opt state.conns cid with
  | Some conn when conn.alive -> write_client state conn json
  | _ -> ()

(* --- Rendezvous hashing -------------------------------------------------- *)

(* Highest-random-weight: every router ranks (key, backend) pairs the
   same way, so placement needs no shared state; removing a backend
   re-homes only the keys it won.  CRC-32 is plenty here — the hash
   spreads load, it doesn't defend against an adversary. *)
let weight ~key name = Crc.crc32 (key ^ "\x00" ^ name)

let choose state ~key ~tried =
  Array.fold_left
    (fun best b ->
      if b.b_state <> Up || List.mem b.b_name tried then best
      else
        let w = weight ~key b.b_name in
        match best with
        | Some (bw, _) when bw >= w -> best
        | _ -> Some (w, b))
    None state.backends
  |> Option.map snd

(* --- Backend lifecycle --------------------------------------------------- *)

let resolve_host host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found | Invalid_argument _ ->
      invalid_arg (Printf.sprintf "cannot resolve host %S" host))

let connect_addr = function
  | Server.Unix_socket path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX path)
       with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
      fd
  | Server.Tcp (host, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_INET (resolve_host host, port))
       with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
      fd

let write_backend b json =
  match b.b_fd with
  | None -> raise (Sys_error "backend not connected")
  | Some fd ->
      let line = J.to_string ~compact:true json ^ "\n" in
      let n = String.length line in
      let sent = ref 0 in
      while !sent < n do
        sent := !sent + Unix.write_substring fd line !sent (n - !sent)
      done

let submit_request entry =
  Protocol.request_to_json
    (Protocol.Submit
       {
         spec = entry.e_spec;
         want_tset = entry.e_want_tset;
         client_id = Some entry.e_rid;
       })

(* Forward one submit to one backend; raises on any write failure. *)
let forward state b entry =
  Chaos.hit state.chaos Chaos.router_backend_write;
  write_backend b (submit_request entry);
  Hashtbl.replace b.b_inflight entry.e_rid entry

let reject state entry ~reason message =
  answer_client state entry.e_cid
    (Protocol.error_response ~reason ?id:entry.e_client_id message)

(* Dispatch an accepted submit to the shard the content key hashes to,
   failing over to the next live shard on a write error, within the
   request's retry budget.  [e_tried] prevents hammering one half-dead
   backend in a tight loop; once every live backend has been tried the
   cycle resets (a marked-down backend may have come back). *)
let rec dispatch state entry =
  if entry.e_attempts > state.cfg.request_retries then
    reject state entry ~reason:"no_backend"
      (Printf.sprintf "no backend completed the job after %d attempts"
         entry.e_attempts)
  else
    match choose state ~key:entry.e_key ~tried:entry.e_tried with
    | None when entry.e_tried <> [] ->
        entry.e_tried <- [];
        dispatch state entry
    | None ->
        reject state entry ~reason:"no_backend" "no live backend"
    | Some b -> (
        entry.e_attempts <- entry.e_attempts + 1;
        entry.e_tried <- b.b_name :: entry.e_tried;
        match forward state b entry with
        | () -> ()
        | exception (Chaos.Killed _ as e) -> raise e
        | exception (Unix.Unix_error _ | Sys_error _) ->
            mark_down state b;
            Telemetry.incr state.tel Telemetry.Router_failovers;
            dispatch state entry)

(* A backend failed: close it, schedule its next probe with full-jitter
   backoff, and fail every in-flight submit it owned over to the next
   live shard (idempotent: results are keyed by content hash, so a job
   whose first attempt completed server-side is a cache hit on the
   retry). *)
and mark_down state b =
  let was_up = b.b_state = Up in
  b.b_state <- Down;
  Option.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    b.b_fd;
  b.b_fd <- None;
  Buffer.clear b.b_buf;
  b.b_fails <- b.b_fails + 1;
  b.b_next_probe <-
    Unix.gettimeofday ()
    +. Backoff.full_jitter ~rng:state.rng ~base:probe_backoff_base b.b_fails;
  if was_up then begin
    Telemetry.incr state.tel Telemetry.Router_markdowns;
    Log.emit state.log "router.backend_down" ~level:Log.Warn
      ~fields:
        [
          ("backend", J.Str b.b_name);
          ("inflight", J.Int (Hashtbl.length b.b_inflight));
        ]
  end;
  let orphans = Hashtbl.fold (fun _ e acc -> e :: acc) b.b_inflight [] in
  Hashtbl.reset b.b_inflight;
  List.iter
    (fun e ->
      Telemetry.incr state.tel Telemetry.Router_failovers;
      Log.emit state.log "router.failover" ~job:e.e_key
        ~fields:
          [ ("backend", J.Str b.b_name); ("attempts", J.Int e.e_attempts) ];
      dispatch state e)
    orphans

let mark_up state b fd =
  b.b_fd <- Some fd;
  b.b_state <- Up;
  b.b_fails <- 0;
  b.b_last_ping <- Unix.gettimeofday ();
  if b.b_ever_up then begin
    Telemetry.incr state.tel Telemetry.Router_markups;
    Log.emit state.log "router.backend_up"
      ~fields:[ ("backend", J.Str b.b_name) ]
  end
  else
    Log.emit state.log "router.backend_start"
      ~fields:[ ("backend", J.Str b.b_name) ];
  b.b_ever_up <- true

(* Probe a down backend: connect and send a ping.  The pong (read off
   the new connection like any backend frame) completes the mark-up;
   silence past [probe_timeout] or any error counts as a failed probe
   and pushes the next one out on the backoff schedule. *)
let probe state b =
  match
    Chaos.hit state.chaos Chaos.router_backend_health;
    let fd = connect_addr b.b_addr in
    b.b_fd <- Some fd;
    write_backend b (Protocol.request_to_json Protocol.Ping)
  with
  | () -> b.b_state <- Probing (Unix.gettimeofday ())
  | exception (Chaos.Killed _ as e) -> raise e
  | exception (Unix.Unix_error _ | Sys_error _) ->
      Option.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        b.b_fd;
      b.b_fd <- None;
      b.b_fails <- b.b_fails + 1;
      b.b_next_probe <-
        Unix.gettimeofday ()
        +. Backoff.full_jitter ~rng:state.rng ~base:probe_backoff_base
             b.b_fails

(* Once per loop turn: send periodic pings on live backends, launch due
   probes, time out silent ones. *)
let health_tick state =
  let now = Unix.gettimeofday () in
  Array.iter
    (fun b ->
      match b.b_state with
      | Up when now -. b.b_last_ping >= ping_interval -> (
          b.b_last_ping <- now;
          match
            Chaos.hit state.chaos Chaos.router_backend_health;
            write_backend b (Protocol.request_to_json Protocol.Ping)
          with
          | () -> ()
          | exception (Chaos.Killed _ as e) -> raise e
          | exception (Unix.Unix_error _ | Sys_error _) -> mark_down state b)
      | Down when now >= b.b_next_probe -> probe state b
      | Probing sent when now -. sent > probe_timeout ->
          Option.iter
            (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
            b.b_fd;
          b.b_fd <- None;
          b.b_state <- Down;
          b.b_fails <- b.b_fails + 1;
          b.b_next_probe <-
            now
            +. Backoff.full_jitter ~rng:state.rng ~base:probe_backoff_base
                 b.b_fails
      | _ -> ())
    state.backends

(* --- Backend responses --------------------------------------------------- *)

(* A submit (or typed reject) answered by a backend: restore the
   client's view of the ["id"] member — their own correlation id when
   the request carried one, [null] otherwise (the backend's job id is a
   shard-local detail no client can interpret fleet-wide). *)
let relay state b json =
  match Option.bind (J.member "id" json) J.as_int with
  | None -> () (* an anonymous backend error frame; nothing to match *)
  | Some rid -> (
      match Hashtbl.find_opt b.b_inflight rid with
      | None -> () (* stale: the submit already failed over elsewhere *)
      | Some entry ->
          Hashtbl.remove b.b_inflight rid;
          if state.draining then state.drained <- state.drained + 1;
          let rewritten =
            match J.as_obj json with
            | None -> json
            | Some members ->
                J.Obj
                  (List.map
                     (fun (k, v) ->
                       if k = "id" then
                         ( k,
                           match entry.e_client_id with
                           | Some i -> J.Int i
                           | None -> J.Null )
                       else (k, v))
                     members)
          in
          answer_client state entry.e_cid rewritten)

let handle_backend_frame state b line =
  match J.parse line with
  | Error _ -> () (* a torn backend frame; EOF will follow if it died *)
  | Ok json -> (
      match Option.bind (J.member "op" json) J.as_str with
      | Some "ping" -> (
          match b.b_state with
          | Probing _ -> mark_up state b (Option.get b.b_fd)
          | _ -> () (* periodic pong: the read itself proves liveness *))
      | _ -> relay state b json)

let read_backend state b =
  match b.b_fd with
  | None -> ()
  | Some fd -> (
      let chunk = Bytes.create 65536 in
      match
        Chaos.hit state.chaos Chaos.router_backend_read;
        Unix.read fd chunk 0 (Bytes.length chunk)
      with
      | exception (Chaos.Killed _ as e) -> raise e
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception (Unix.Unix_error _ | Sys_error _) -> mark_down state b
      | 0 -> mark_down state b
      | n ->
          Buffer.add_subbytes b.b_buf chunk 0 n;
          let continue = ref true in
          while !continue && b.b_fd <> None do
            let text = Buffer.contents b.b_buf in
            match String.index_opt text '\n' with
            | None -> continue := false
            | Some i ->
                let line = String.sub text 0 i in
                Buffer.clear b.b_buf;
                Buffer.add_substring b.b_buf text (i + 1)
                  (String.length text - i - 1);
                if line <> "" then handle_backend_frame state b line
          done)

(* --- Metrics aggregation ------------------------------------------------- *)

let fold_counters state counters =
  List.iter
    (fun (k, v) ->
      let prev = Option.value ~default:0 (Hashtbl.find_opt state.cumulative k) in
      Hashtbl.replace state.cumulative k (prev + v))
    counters

let accumulate state =
  Option.iter
    (fun tel ->
      let snap = Telemetry.drain tel in
      fold_counters state snap.Telemetry.counters)
    state.tel

(* One blocking metrics round trip on a fresh connection, so aggregation
   never interleaves with submit traffic on the persistent channels.  An
   unresponsive backend is skipped, not marked down — the health probes
   own that verdict. *)
let poll_backend_metrics b =
  match connect_addr b.b_addr with
  | exception (Unix.Unix_error _ | Sys_error _ | Invalid_argument _) -> None
  | fd -> (
      let finally () = try Unix.close fd with Unix.Unix_error _ -> () in
      Fun.protect ~finally @@ fun () ->
      match
        let line = J.to_string ~compact:true
            (Protocol.request_to_json Protocol.Metrics) ^ "\n" in
        let n = String.length line in
        let sent = ref 0 in
        while !sent < n do
          sent := !sent + Unix.write_substring fd line !sent (n - !sent)
        done;
        let buf = Buffer.create 4096 in
        let chunk = Bytes.create 65536 in
        let deadline = Unix.gettimeofday () +. probe_timeout in
        let rec read_line () =
          let text = Buffer.contents buf in
          match String.index_opt text '\n' with
          | Some i -> Some (String.sub text 0 i)
          | None -> (
              let remaining = deadline -. Unix.gettimeofday () in
              if remaining <= 0.0 then None
              else
                match Unix.select [ fd ] [] [] remaining with
                | [], _, _ -> None
                | _ -> (
                    match Unix.read fd chunk 0 (Bytes.length chunk) with
                    | 0 -> None
                    | n ->
                        Buffer.add_subbytes buf chunk 0 n;
                        read_line ()))
        in
        read_line ()
      with
      | None -> None
      | Some line -> (
          match J.parse line with Ok json -> Some json | Error _ -> None)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> None
      | exception (Unix.Unix_error _ | Sys_error _) -> None)

let aggregate_metrics state =
  accumulate state;
  let pending = ref 0 in
  let counters : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let gauge_sums : (string, float) Hashtbl.t = Hashtbl.create 16 in
  let hists : (string, Histogram.t) Hashtbl.t = Hashtbl.create 8 in
  let up = ref 0 in
  Array.iter
    (fun b ->
      if b.b_state = Up then
        match poll_backend_metrics b with
        | None -> ()
        | Some json ->
            incr up;
            (match Option.bind (J.member "pending" json) J.as_int with
            | Some n -> pending := !pending + n
            | None -> ());
            (match Option.bind (J.member "counters" json) J.as_obj with
            | Some members ->
                List.iter
                  (fun (k, v) ->
                    match J.as_int v with
                    | Some n ->
                        let prev =
                          Option.value ~default:0 (Hashtbl.find_opt counters k)
                        in
                        Hashtbl.replace counters k (prev + n)
                    | None -> ())
                  members
            | None -> ());
            (match Option.bind (J.member "gauges" json) J.as_obj with
            | Some members ->
                List.iter
                  (fun (k, v) ->
                    (* Uptime and cap gauges are per-process facts that
                       don't sum meaningfully across shards. *)
                    if k = "queue_depth" || k = "live_workers" then
                      match J.as_float v with
                      | Some f ->
                          let prev =
                            Option.value ~default:0.0
                              (Hashtbl.find_opt gauge_sums k)
                          in
                          Hashtbl.replace gauge_sums k (prev +. f)
                      | None -> ())
                  members
            | None -> ());
            (match Option.bind (J.member "histograms" json) J.as_obj with
            | Some members ->
                List.iter
                  (fun (k, v) ->
                    match Histogram.of_json v with
                    | Error _ -> ()
                    | Ok h -> (
                        match Hashtbl.find_opt hists k with
                        | Some prev ->
                            Hashtbl.replace hists k (Histogram.merge prev h)
                        | None -> Hashtbl.replace hists k h))
                  members
            | None -> ()))
    state.backends;
  (* The router's own counters (failovers, markdowns, markups) ride the
     same catalogue, so `asc client metrics` against a router shows the
     fleet totals plus routing health in one table. *)
  List.iter
    (fun c ->
      let name = Telemetry.counter_name c in
      match Hashtbl.find_opt state.cumulative name with
      | Some n when n > 0 ->
          let prev = Option.value ~default:0 (Hashtbl.find_opt counters name) in
          Hashtbl.replace counters name (prev + n)
      | _ -> ())
    Telemetry.all_counters;
  let counters =
    List.map
      (fun c ->
        let name = Telemetry.counter_name c in
        (name, Option.value ~default:0 (Hashtbl.find_opt counters name)))
      Telemetry.all_counters
  in
  let gauges =
    [
      ( "queue_depth",
        Option.value ~default:0.0 (Hashtbl.find_opt gauge_sums "queue_depth") );
      ( "live_workers",
        Option.value ~default:0.0 (Hashtbl.find_opt gauge_sums "live_workers") );
      ("uptime_seconds", Unix.gettimeofday () -. state.started);
      ("backends_up", float_of_int !up);
      ("backends_total", float_of_int (Array.length state.backends));
    ]
  in
  let histograms = Hashtbl.fold (fun k h acc -> (k, h) :: acc) hists [] in
  Protocol.metrics_response ~gauges ~histograms ~pending:!pending ~counters ()

(* --- Requests ------------------------------------------------------------ *)

let inflight_total state =
  Array.fold_left
    (fun acc b -> acc + Hashtbl.length b.b_inflight)
    0 state.backends

let handle_request state conn = function
  | Protocol.Ping -> write_client state conn Protocol.ping_response
  | Protocol.Metrics -> write_client state conn (aggregate_metrics state)
  | Protocol.Shutdown ->
      if inflight_total state = 0 && not state.draining then begin
        write_client state conn
          (Protocol.shutdown_response ~drained:state.drained);
        state.running <- false
      end
      else begin
        state.draining <- true;
        state.shutdown_waiters <- conn.cid :: state.shutdown_waiters
      end
  | Protocol.Submit { spec; want_tset; client_id } -> (
      if state.draining then
        write_client state conn
          (Protocol.error_response ~reason:"draining" ?id:client_id
             "router is draining for shutdown")
      else
        match Scheduler.key_of_spec spec with
        | Error message ->
            (* Resolve errors locally — no point burning a shard round
               trip on a spec every backend would reject identically. *)
            write_client state conn
              (Protocol.error_response ?id:client_id message)
        | Ok key ->
            let entry =
              {
                e_rid = state.next_rid;
                e_cid = conn.cid;
                e_client_id = client_id;
                e_key = key;
                e_spec = spec;
                e_want_tset = want_tset;
                e_attempts = 0;
                e_tried = [];
              }
            in
            state.next_rid <- state.next_rid + 1;
            dispatch state entry)

let handle_client_frame state conn line =
  match Protocol.request_of_string line with
  | Error message ->
      write_client state conn (Protocol.error_response message)
  | Ok request -> handle_request state conn request

let drain_client_frames state conn =
  let continue = ref true in
  while !continue && conn.alive do
    let text = Buffer.contents conn.buf in
    match String.index_opt text '\n' with
    | Some i ->
        let line = String.sub text 0 i in
        let line =
          if i > 0 && line.[i - 1] = '\r' then String.sub line 0 (i - 1)
          else line
        in
        Buffer.clear conn.buf;
        Buffer.add_substring conn.buf text (i + 1) (String.length text - i - 1);
        if line <> "" then handle_client_frame state conn line
    | None ->
        if Buffer.length conn.buf > state.cfg.max_frame then begin
          write_client state conn
            (Protocol.error_response
               (Printf.sprintf "frame exceeds %d bytes" state.cfg.max_frame));
          close_conn state conn
        end;
        continue := false
  done

let read_client state conn =
  let chunk = Bytes.create 65536 in
  match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
  | 0 -> close_conn state conn
  | n ->
      Buffer.add_subbytes conn.buf chunk 0 n;
      drain_client_frames state conn
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      close_conn state conn
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()

let accept_conn state listener =
  match Unix.accept listener with
  | fd, _ ->
      let conn =
        { fd; cid = state.next_cid; buf = Buffer.create 256; alive = true }
      in
      state.next_cid <- state.next_cid + 1;
      Hashtbl.replace state.conns conn.cid conn
  | exception Unix.Unix_error _ -> ()

let bind_listener = function
  | Server.Unix_socket path ->
      if Sys.file_exists path then
        (try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 16;
      fd
  | Server.Tcp (host, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (resolve_host host, port));
      Unix.listen fd 16;
      fd

let finish_drain state =
  if state.draining && inflight_total state = 0 then begin
    List.iter
      (fun cid ->
        match Hashtbl.find_opt state.conns cid with
        | Some conn when conn.alive ->
            write_client state conn
              (Protocol.shutdown_response ~drained:state.drained)
        | _ -> ())
      (List.rev state.shutdown_waiters);
    state.shutdown_waiters <- [];
    state.running <- false
  end

let run ?tel ?chaos ?log ?on_ready (cfg : config) =
  if cfg.backends = [] then invalid_arg "Router.run: no backends";
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let state =
    {
      cfg;
      tel;
      chaos;
      log;
      rng = Rng.of_name ~seed:(Unix.getpid ()) "router/backoff";
      started = Unix.gettimeofday ();
      backends =
        Array.of_list
          (List.map
             (fun (name, addr) ->
               {
                 b_name = name;
                 b_addr = addr;
                 b_state = Down;
                 b_fd = None;
                 b_buf = Buffer.create 4096;
                 b_inflight = Hashtbl.create 16;
                 b_fails = 0;
                 b_next_probe = 0.0;  (* probe immediately *)
                 b_last_ping = 0.0;
                 b_ever_up = false;
               })
             cfg.backends);
      conns = Hashtbl.create 16;
      cumulative = Hashtbl.create 64;
      next_cid = 0;
      next_rid = 0;
      running = true;
      draining = false;
      drained = 0;
      shutdown_waiters = [];
    }
  in
  let listener = bind_listener cfg.listen in
  Log.emit log "router.start"
    ~fields:
      [
        ("backends", J.Int (Array.length state.backends));
        ( "listen",
          J.Str
            (match cfg.listen with
            | Server.Unix_socket path -> path
            | Server.Tcp (host, port) -> Printf.sprintf "%s:%d" host port) );
      ];
  (* Bring the fleet up before announcing readiness, so an immediate
     first submit doesn't race the initial probes. *)
  health_tick state;
  Option.iter (fun f -> f ()) on_ready;
  Fun.protect
    ~finally:(fun () ->
      Log.emit log "router.shutdown"
        ~fields:[ ("drained", J.Int state.drained) ];
      Hashtbl.iter
        (fun _ conn -> close_conn state conn)
        (Hashtbl.copy state.conns);
      Array.iter
        (fun b ->
          Option.iter
            (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
            b.b_fd)
        state.backends;
      (try Unix.close listener with Unix.Unix_error _ -> ());
      match cfg.listen with
      | Server.Unix_socket path -> (
          try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
      | Server.Tcp _ -> ())
    (fun () ->
      while state.running do
        let backend_fds =
          Array.fold_left
            (fun acc b ->
              match b.b_fd with Some fd -> fd :: acc | None -> acc)
            [] state.backends
        in
        let fds =
          (listener :: Hashtbl.fold (fun _ c acc -> c.fd :: acc) state.conns [])
          @ backend_fds
        in
        let readable =
          match Unix.select fds [] [] 0.2 with
          | r, _, _ -> r
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
        in
        List.iter
          (fun fd ->
            if state.running then
              if fd == listener then accept_conn state listener
              else
                let client =
                  Hashtbl.fold
                    (fun _ c acc -> if c.fd == fd then Some c else acc)
                    state.conns None
                in
                match client with
                | Some c -> read_client state c
                | None ->
                    Array.iter
                      (fun b ->
                        match b.b_fd with
                        | Some bfd when bfd == fd -> read_backend state b
                        | _ -> ())
                      state.backends)
          readable;
        if state.running then begin
          health_tick state;
          finish_drain state
        end
      done)
