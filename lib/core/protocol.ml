(* Line-delimited JSON request/response codecs for the serving layer
   (docs/SERVING.md). *)

module J = Asc_util.Json
module Histogram = Asc_util.Histogram

let version = 1

type request =
  | Ping
  | Metrics
  | Shutdown
  | Submit of {
      spec : Scheduler.spec;
      want_tset : bool;
      client_id : int option;
    }

(* Typed member access: absent is fine (gives the default), present with
   the wrong type is a decode error. *)
let field json key as_type ~default =
  match J.member key json with
  | None | Some J.Null -> Ok default
  | Some v -> (
      match as_type v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "bad %S member" key))

let ( let* ) r f = match r with Ok x -> f x | Error _ as e -> e

(* The spec members of a submit object — shared with the supervisor's
   control channel, whose job messages carry the same encoding. *)
let spec_of_json json =
  let d = Scheduler.default_spec in
  let* circuit =
    field json "circuit" (fun v -> Option.map Option.some (J.as_str v))
      ~default:d.Scheduler.sp_circuit
  in
  let* netlist =
    field json "netlist" (fun v -> Option.map Option.some (J.as_str v))
      ~default:d.Scheduler.sp_netlist
  in
  let* seed = field json "seed" J.as_int ~default:d.Scheduler.sp_seed in
  let* t0 = field json "t0" J.as_str ~default:d.Scheduler.sp_t0 in
  let* timeout =
    field json "timeout" (fun v -> Option.map Option.some (J.as_float v))
      ~default:d.Scheduler.sp_timeout
  in
  Ok
    {
      Scheduler.sp_circuit = circuit;
      sp_netlist = netlist;
      sp_seed = seed;
      sp_t0 = t0;
      sp_timeout = timeout;
    }

let spec_to_members (spec : Scheduler.spec) =
  let opt k v = match v with None -> [] | Some x -> [ (k, x) ] in
  opt "circuit" (Option.map (fun s -> J.Str s) spec.Scheduler.sp_circuit)
  @ opt "netlist" (Option.map (fun s -> J.Str s) spec.Scheduler.sp_netlist)
  @ [ ("seed", J.Int spec.Scheduler.sp_seed); ("t0", J.Str spec.Scheduler.sp_t0) ]
  @ opt "timeout" (Option.map (fun t -> J.Float t) spec.Scheduler.sp_timeout)

let submit_of_json json =
  let* spec = spec_of_json json in
  let* want_tset = field json "tset" J.as_bool ~default:false in
  let* client_id =
    field json "id" (fun v -> Option.map Option.some (J.as_int v)) ~default:None
  in
  Ok (Submit { spec; want_tset; client_id })

let request_of_json json =
  match J.member "op" json with
  | None -> Error "missing \"op\" member"
  | Some op -> (
      match J.as_str op with
      | None -> Error "\"op\" must be a string"
      | Some "ping" -> Ok Ping
      | Some "metrics" -> Ok Metrics
      | Some "shutdown" -> Ok Shutdown
      | Some "submit" -> submit_of_json json
      | Some other -> Error (Printf.sprintf "unknown op %S" other))

let request_of_string line =
  match J.parse line with
  | Error e -> Error e
  | Ok json -> request_of_json json

let request_to_json = function
  | Ping -> J.Obj [ ("op", J.Str "ping") ]
  | Metrics -> J.Obj [ ("op", J.Str "metrics") ]
  | Shutdown -> J.Obj [ ("op", J.Str "shutdown") ]
  | Submit { spec; want_tset; client_id } ->
      J.Obj
        ([ ("op", J.Str "submit") ]
        @ spec_to_members spec
        @ (if want_tset then [ ("tset", J.Bool true) ] else [])
        @ match client_id with None -> [] | Some i -> [ ("id", J.Int i) ])

(* --- Responses --------------------------------------------------------- *)

let ping_response =
  J.Obj [ ("ok", J.Bool true); ("op", J.Str "ping"); ("protocol", J.Int version) ]

let shutdown_response ~drained =
  J.Obj
    [ ("ok", J.Bool true); ("op", J.Str "shutdown"); ("drained", J.Int drained) ]

(* Revision of the metrics payload, not the wire protocol: version 2
   added the sorted [gauges]/[histograms] sections.  Version-1 clients
   ignore unknown members, so the extension is purely additive. *)
let metrics_version = 2

let sort_by_key l = List.sort (fun (a, _) (b, _) -> compare a b) l

let metrics_response ?(gauges = []) ?(histograms = []) ~pending ~counters () =
  J.Obj
    [
      ("ok", J.Bool true);
      ("op", J.Str "metrics");
      ("pending", J.Int pending);
      ( "counters",
        J.Obj (sort_by_key (List.map (fun (k, v) -> (k, J.Int v)) counters)) );
      ("metrics_version", J.Int metrics_version);
      ( "gauges",
        J.Obj (sort_by_key (List.map (fun (k, v) -> (k, J.Float v)) gauges)) );
      ( "histograms",
        J.Obj
          (sort_by_key
             (List.map (fun (k, h) -> (k, Histogram.to_json h)) histograms)) );
    ]

(* Optional members are emitted only when supplied, so pre-existing
   reject responses — which the conformance transcripts pin byte-for-
   byte — are unchanged: a bare [error_response msg] still renders as
   {"ok":false,"error":MSG}. *)
let error_response ?reason ?retry_after_ms ?id message =
  J.Obj
    ([ ("ok", J.Bool false); ("error", J.Str message) ]
    @ (match reason with None -> [] | Some r -> [ ("reason", J.Str r) ])
    @ (match retry_after_ms with
      | None -> []
      | Some ms -> [ ("retry_after_ms", J.Int ms) ])
    @ match id with None -> [] | Some i -> [ ("id", J.Int i) ])

let status_string = function
  | Scheduler.Complete -> "complete"
  | Scheduler.Partial _ -> "partial"
  | Scheduler.Failed _ -> "failed"

let submit_response ~id ~cached ~want_tset (r : Scheduler.result) =
  let opt_str = function None -> J.Null | Some s -> J.Str s in
  let reason, stage, error =
    match r.Scheduler.r_status with
    | Scheduler.Complete -> (None, None, None)
    | Scheduler.Partial { reason; stage } -> (Some reason, Some stage, None)
    | Scheduler.Failed message -> (None, None, Some message)
  in
  J.Obj
    ([
       ("ok", J.Bool (error = None));
       ("op", J.Str "submit");
       ("id", match id with None -> J.Null | Some i -> J.Int i);
       ("status", J.Str (status_string r.Scheduler.r_status));
       ("reason", opt_str reason);
       ("stage", opt_str stage);
       ("cached", J.Bool cached);
       ("resumed", J.Bool r.Scheduler.r_resumed);
       ("tests", J.Int r.Scheduler.r_tests);
       ("cycles", J.Int r.Scheduler.r_cycles);
       ("detected", J.Int r.Scheduler.r_detected);
       ("targets", J.Int r.Scheduler.r_targets);
       ("iterations", J.Int r.Scheduler.r_iterations);
     ]
    @ (match error with None -> [] | Some e -> [ ("error", J.Str e) ])
    @
    match (want_tset, r.Scheduler.r_tset) with
    | true, Some tset -> [ ("tset", J.Str tset) ]
    | _ -> [])

(* --- Prometheus text exposition ---------------------------------------- *)

(* Render a metrics response in the Prometheus text exposition format
   (`asc client metrics --prometheus`, `asc serve --prom-file`).  Series
   are prefixed `asc_`; counters get the conventional `_total` suffix;
   histograms publish cumulative `_bucket{le="..."}` series ending at
   `le="+Inf"` plus `_sum`/`_count`.  Input member order is already
   sorted by [metrics_response], so the exposition is byte-stable for a
   given state — the CI scrape-smoke job diffs and grammar-checks it. *)
let prometheus_of_metrics json =
  let number = function
    | J.Int i -> Some (float_of_int i)
    | J.Float f -> Some f
    | _ -> None
  in
  let members name =
    match J.member name json with Some (J.Obj m) -> m | _ -> []
  in
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  (* %.12g matches the JSON writer, so a scrape never shows more precision
     than the metrics op itself. *)
  let num v = Printf.sprintf "%.12g" v in
  match J.member "counters" json with
  | None | Some J.Null ->
      Error "metrics response lacks a \"counters\" member"
  | Some _ ->
      List.iter
        (fun (k, v) ->
          match v with
          | J.Int n ->
              add "# HELP asc_%s_total Cumulative count since server start.\n" k;
              add "# TYPE asc_%s_total counter\n" k;
              add "asc_%s_total %d\n" k n
          | _ -> ())
        (members "counters");
      (match J.member "pending" json with
      | Some (J.Int n) ->
          add "# HELP asc_pending Jobs queued (redo queue plus per-source FIFOs).\n";
          add "# TYPE asc_pending gauge\n";
          add "asc_pending %d\n" n
      | _ -> ());
      List.iter
        (fun (k, v) ->
          match number v with
          | Some f ->
              add "# HELP asc_%s Instantaneous value at scrape time.\n" k;
              add "# TYPE asc_%s gauge\n" k;
              add "asc_%s %s\n" k (num f)
          | None -> ())
        (members "gauges");
      List.iter
        (fun (k, v) ->
          match Histogram.of_json v with
          | Error _ -> ()
          | Ok h ->
              add "# HELP asc_%s Latency distribution in seconds.\n" k;
              add "# TYPE asc_%s histogram\n" k;
              Array.iter
                (fun (bound, cum) ->
                  add "asc_%s_bucket{le=\"%s\"} %d\n" k (num bound) cum)
                (Histogram.cumulative h);
              add "asc_%s_bucket{le=\"+Inf\"} %d\n" k (Histogram.count h);
              add "asc_%s_sum %s\n" k (num (Histogram.sum h));
              add "asc_%s_count %d\n" k (Histogram.count h))
        (members "histograms");
      Ok (Buffer.contents buf)
