(** The serving layer's wire protocol: line-delimited JSON over a stream
    socket (grammar in docs/SERVING.md).

    One request per line, one response object per request.  Responses to
    [submit] are deferred until the job runs and are matched to their
    request by the job [id] field; every other response is immediate, so
    a connection that pipelines submissions can see responses out of
    request order. *)

(** Protocol revision, echoed in every [ping] response.  Bump on any
    field rename or semantic change. *)
val version : int

type request =
  | Ping
  | Metrics
  | Shutdown
  | Submit of {
      spec : Scheduler.spec;
      want_tset : bool;
      client_id : int option;
    }
      (** [want_tset] asks for the serialized test set in the response.
          [client_id] is an optional client-chosen correlation id (the
          request's ["id"] member): when present the server echoes it as
          the response's [id] — including on cache hits and typed
          rejects — which is what lets a pipelined client (or the shard
          router) match out-of-order responses to requests.  Without it
          the response [id] keeps its original meaning (server
          submission order; [null] for cache hits). *)

(** Decode a request object.  Unknown members are ignored (forward
    compatibility); a missing or unknown ["op"], or a present member of
    the wrong type, is an error. *)
val request_of_json : Asc_util.Json.t -> (request, string) Stdlib.result

(** Parse one frame (a line, without its terminator) and decode it. *)
val request_of_string : string -> (request, string) Stdlib.result

(** Encode a request — the inverse of {!request_of_json}, used by the
    bundled client. *)
val request_to_json : request -> Asc_util.Json.t

(** {1 Responses} *)

val ping_response : Asc_util.Json.t

(** [shutdown_response ~drained] — [drained] reports how many queued or
    in-flight jobs the server finished during drain before exiting. *)
val shutdown_response : drained:int -> Asc_util.Json.t

(** Revision of the metrics payload (not the wire protocol): version 2
    added the [gauges] and [histograms] sections.  Version-1 clients
    ignore unknown members, so the extension is additive. *)
val metrics_version : int

(** [metrics_response ~pending ~counters ()] — the fleet-wide counter
    catalogue (cumulative since server start) plus the queue depth, and,
    since metrics version 2, instantaneous [gauges] and per-job latency
    [histograms] ({!Asc_util.Histogram.to_json} shape).  Counter, gauge
    and histogram keys are emitted sorted, so equal state renders
    byte-identically. *)
val metrics_response :
  ?gauges:(string * float) list ->
  ?histograms:(string * Asc_util.Histogram.t) list ->
  pending:int ->
  counters:(string * int) list ->
  unit ->
  Asc_util.Json.t

(** [error_response ?reason ?retry_after_ms ?id message] — a reject.
    Optional members are emitted only when supplied, so the bare form
    renders exactly as before ([{"ok":false,"error":MSG}]).  [reason] is
    the typed reject class (["overloaded"], ["draining"], ["no_backend"]);
    [retry_after_ms] is the server's backpressure hint; [id] echoes the
    request's client id so pipelined clients can match the reject. *)
val error_response :
  ?reason:string ->
  ?retry_after_ms:int ->
  ?id:int ->
  string ->
  Asc_util.Json.t

(** [submit_response ~id ~cached ~want_tset result] — [id] is [Null] for
    cache hits (no job ran).  The [tset] member is present only when
    [want_tset] and the result carries a test set. *)
val submit_response :
  id:int option -> cached:bool -> want_tset:bool -> Scheduler.result -> Asc_util.Json.t

(** The status string of a submit response: ["complete"], ["partial"] or
    ["failed"]. *)
val status_string : Scheduler.status -> string

(** {1 Spec codec} — shared with {!Supervisor}'s control channel, whose
    job messages carry the same member encoding as [submit] requests. *)

(** Decode the spec members of an object (absent members default as in a
    [submit] request). *)
val spec_of_json : Asc_util.Json.t -> (Scheduler.spec, string) Stdlib.result

(** The spec rendered as object members (the inverse of
    {!spec_of_json}). *)
val spec_to_members : Scheduler.spec -> (string * Asc_util.Json.t) list

(** {1 Prometheus exposition} *)

(** Render a metrics response in the Prometheus text exposition format:
    counters as [asc_<name>_total], [pending] and the gauges as
    [asc_<name>] gauges, histograms as cumulative
    [asc_<name>_bucket{le="..."}] series ending at [le="+Inf"] with
    [_sum]/[_count].  Errors when the JSON is not a metrics response. *)
val prometheus_of_metrics : Asc_util.Json.t -> (string, string) Stdlib.result
