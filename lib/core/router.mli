(** The [asc route] shard router: a protocol-v1 front that shards
    submissions across N backend [asc serve] instances by rendezvous
    hashing of the job's canonical content key, with health-checked
    mark-down/mark-up of backends and failover of in-flight submits
    (docs/SERVING.md "Fleet: routing, sharding and overload").

    Placement: each submit's content key ({!Scheduler.key_of_spec} — the
    same key the result cache uses) is ranked against every backend name
    by highest-random-weight hashing, so any number of router instances
    agree on placement with no coordination, a backend's death re-homes
    only the keys it owned, and resubmissions of the same job land on
    the shard whose cache already holds the result.

    Failure semantics: any error on a backend connection marks the
    backend down ([router_markdowns]) and fails its in-flight submits
    over to the next live shard ([router_failovers]) within a
    per-request budget of [request_retries] dispatch attempts — safe
    because submission is idempotent under the content-keyed result
    cache.  Down backends are re-probed with [ping] on a full-jitter
    exponential backoff schedule; a pong marks them back up
    ([router_markups]).  With no live backend a submit is rejected with
    a typed [no_backend] error — the router queues nothing.

    [ping] is answered locally; [metrics] polls every live backend and
    returns the fleet aggregate (summed counters and queue depth, merged
    latency histograms) plus the router's own counters and
    [backends_up]/[backends_total] gauges; [shutdown] drains the router
    only (in-flight submits finish; the shards stay up).

    Chaos points ({!Asc_util.Chaos}): [router.backend_write] before each
    forwarded request, [router.backend_read] before each backend read,
    [router.backend_health] before each health probe — a [Fail] is
    handled exactly like the corresponding backend failure; a [Kill]
    propagates out of {!run} like a crash. *)

type config = {
  listen : Server.listen;  (** The router's own front socket. *)
  backends : (string * Server.listen) list;
      (** [(name, address)] per shard.  The name (the literal
          [--backend] argument) is the rendezvous-hash identity: keep it
          stable across restarts or placement reshuffles. *)
  max_frame : int;  (** Per-frame byte cap; {!Server.default_max_frame}. *)
  request_retries : int;
      (** Failover budget: total dispatch attempts allowed per submit.
          {!default_request_retries}. *)
}

val default_request_retries : int

(** [run cfg] binds the front socket and routes until a client sends
    [shutdown] (drain semantics above).  [tel] feeds the router's own
    counters into aggregated [metrics] responses; [log] receives
    lifecycle events ([router.start], [router.backend_down],
    [router.backend_up], [router.failover], [router.shutdown]);
    [on_ready] fires after the socket is bound and the initial backend
    probes have been sent.  Raises [Invalid_argument] on an empty
    backend list. *)
val run :
  ?tel:Asc_util.Telemetry.t ->
  ?chaos:Asc_util.Chaos.t ->
  ?log:Asc_util.Log.t ->
  ?on_ready:(unit -> unit) ->
  config ->
  unit
