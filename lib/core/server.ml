(* The serving daemon: a single-threaded select loop over a stream
   socket.  In-process mode drains the scheduler one job per iteration;
   supervised mode ([workers > 0]) forks a Supervisor fleet and the loop
   only dispatches and collects (docs/SERVING.md).

   Observability (docs/OBSERVABILITY.md "Serving metrics"): the server
   owns three latency histograms — queue wait, execution, end-to-end —
   recorded at each delivery from the job's submission/dispatch stamps;
   instantaneous gauges are computed at metrics time.  Both ride the
   version-2 [metrics] payload and the optional [--prom-file]
   exposition.  With [--trace], span buffers (the parent's own plus
   those each worker ships with its results, already re-based onto the
   parent's timeline) accumulate per process and are written as one
   stitched Chrome trace at exit.  None of this is consulted by any
   scheduling decision: results are byte-identical with observability
   on or off. *)

module J = Asc_util.Json
module Chaos = Asc_util.Chaos
module Telemetry = Asc_util.Telemetry
module Histogram = Asc_util.Histogram
module Log = Asc_util.Log

type listen = Unix_socket of string | Tcp of string * int

type config = { listen : listen; state_dir : string option; max_frame : int }

let default_max_frame = 8 * 1024 * 1024

type conn = {
  fd : Unix.file_descr;
  cid : int;
  buf : Buffer.t;
  mutable alive : bool;
}

type state = {
  sched : Scheduler.t;
  tel : Telemetry.t option;
  chaos : Chaos.t option;
  log : Log.t option;
  trace_file : string option;
  prom_file : string option;
  started : float;
  max_frame : int;
  conns : (int, conn) Hashtbl.t;
  waiting : (int, int * bool * int option) Hashtbl.t;
      (* job id -> (conn id, want tset, client-supplied id to echo) *)
  max_pending : int option;  (* echoed as gauges; enforced by the scheduler *)
  max_pending_per_source : int option;
  cumulative : (string, int) Hashtbl.t;  (* counters across telemetry drains *)
  h_queue_wait : Histogram.t;  (* submit -> dispatch *)
  h_execute : Histogram.t;  (* dispatch -> delivery *)
  h_e2e : Histogram.t;  (* submit -> delivery *)
  mutable parent_tracks : Telemetry.track list;  (* preserved across drains *)
  worker_tracks : (int, Telemetry.track list) Hashtbl.t;  (* by worker pid *)
  mutable sup : Supervisor.t option;
  mutable next_cid : int;
  mutable running : bool;
  mutable draining : bool;  (* shutdown received with work outstanding *)
  mutable drained : int;  (* jobs finished during drain *)
  mutable shutdown_waiters : int list;  (* conns owed a shutdown response *)
  mutable prom_dirty : bool;  (* a delivery happened since the last write *)
  mutable prom_failed : bool;  (* warn once, then drop silently *)
}

let close_conn state conn =
  if conn.alive then begin
    conn.alive <- false;
    Hashtbl.remove state.conns conn.cid;
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  end

(* Blocking write of one response line; a failure (client gone, or an
   injected serve.write fault) closes the connection.  Chaos [Kill]
   propagates like a crash. *)
let write_response state conn json =
  let line = J.to_string ~compact:true json ^ "\n" in
  try
    Chaos.hit state.chaos Chaos.serve_write;
    let n = String.length line in
    let sent = ref 0 in
    while !sent < n do
      sent := !sent + Unix.write_substring conn.fd line !sent (n - !sent)
    done
  with
  | Chaos.Killed _ as e -> raise e
  | Unix.Unix_error _ | Sys_error _ -> close_conn state conn

(* Fold a counter list into the cumulative table. *)
let fold_counters state counters =
  List.iter
    (fun (k, v) ->
      let prev = Option.value ~default:0 (Hashtbl.find_opt state.cumulative k) in
      Hashtbl.replace state.cumulative k (prev + v))
    counters

(* Fold a fresh telemetry drain into the cumulative table ([drain]
   resets the handle, so the server must aggregate to stay monotonic).
   When stitching a trace, the parent's span buffers — folded away with
   the drain before — are preserved the same way. *)
let accumulate state =
  Option.iter
    (fun tel ->
      let snap = Telemetry.drain tel in
      fold_counters state snap.Telemetry.counters;
      if state.trace_file <> None && snap.Telemetry.tracks <> [] then
        state.parent_tracks <- state.parent_tracks @ snap.Telemetry.tracks)
    state.tel

let live_workers state =
  match state.sup with Some s -> Supervisor.live_count s | None -> 0

let metrics state =
  accumulate state;
  let counters =
    List.map
      (fun c ->
        let name = Telemetry.counter_name c in
        (name, Option.value ~default:0 (Hashtbl.find_opt state.cumulative name)))
      Telemetry.all_counters
  in
  let cap = function Some c -> float_of_int c | None -> 0.0 in
  let gauges =
    [
      ("queue_depth", float_of_int (Scheduler.pending state.sched));
      ("live_workers", float_of_int (live_workers state));
      ("uptime_seconds", Unix.gettimeofday () -. state.started);
      (* 0 = unbounded, so a dashboard can alert on queue_depth
         approaching a non-zero cap without a presence check. *)
      ("max_pending", cap state.max_pending);
      ("max_pending_per_source", cap state.max_pending_per_source);
    ]
  in
  let histograms =
    [
      ("job_queue_wait_seconds", state.h_queue_wait);
      ("job_execute_seconds", state.h_execute);
      ("job_e2e_seconds", state.h_e2e);
    ]
  in
  Protocol.metrics_response ~gauges ~histograms
    ~pending:(Scheduler.pending state.sched) ~counters ()

(* Rewrite the Prometheus exposition file (write-then-rename, so a
   scraper never reads a torn file).  A sink failure warns once and
   disables further writes — observability never takes the server
   down. *)
let write_prom state =
  match state.prom_file with
  | None -> ()
  | Some path when not state.prom_failed -> (
      match Protocol.prometheus_of_metrics (metrics state) with
      | Error _ -> ()
      | Ok text -> (
          let tmp = path ^ ".tmp" in
          try
            let oc = open_out tmp in
            output_string oc text;
            close_out oc;
            Sys.rename tmp path
          with Sys_error reason | Unix.Unix_error (_, reason, _) ->
            state.prom_failed <- true;
            Printf.eprintf "asc: prometheus file %s: %s; disabling\n%!" path
              reason))
  | Some _ -> ()

let busy_count state =
  match state.sup with Some s -> Supervisor.busy_count s | None -> 0

let outstanding state = Scheduler.pending state.sched + busy_count state

let handle_request state conn = function
  | Protocol.Ping -> write_response state conn Protocol.ping_response
  | Protocol.Metrics -> write_response state conn (metrics state)
  | Protocol.Shutdown ->
      if outstanding state = 0 && not state.draining then begin
        write_response state conn
          (Protocol.shutdown_response ~drained:state.drained);
        state.running <- false
      end
      else begin
        (* Drain mode: finish queued and in-flight jobs first; the
           response (with the drained count) is deferred to drain
           completion. *)
        state.draining <- true;
        state.shutdown_waiters <- conn.cid :: state.shutdown_waiters
      end
  | Protocol.Submit { spec; want_tset; client_id } -> (
      if state.draining then
        write_response state conn
          (Protocol.error_response ~reason:"draining" ?id:client_id
             "server is draining for shutdown")
      else
        match Scheduler.submit state.sched ~source:conn.cid spec with
        | Scheduler.Rejected message ->
            write_response state conn (Protocol.error_response ?id:client_id message)
        | Scheduler.Overloaded { retry_after_ms } ->
            write_response state conn
              (Protocol.error_response ~reason:"overloaded" ~retry_after_ms
                 ?id:client_id "server overloaded: queue is full")
        | Scheduler.Cached result ->
            write_response state conn
              (Protocol.submit_response ~id:client_id ~cached:true ~want_tset
                 result)
        | Scheduler.Accepted job ->
            (* Deferred: the response is written when the job runs. *)
            Hashtbl.replace state.waiting job.Scheduler.j_id
              (conn.cid, want_tset, client_id))

let handle_frame state conn line =
  try
    Chaos.hit state.chaos Chaos.serve_read;
    match Protocol.request_of_string line with
    | Error message -> write_response state conn (Protocol.error_response message)
    | Ok request -> handle_request state conn request
  with
  | Chaos.Killed _ as e -> raise e
  | Sys_error _ -> close_conn state conn

(* Split complete frames out of the connection's buffer. *)
let drain_frames state conn =
  let continue = ref true in
  while !continue && conn.alive do
    let text = Buffer.contents conn.buf in
    match String.index_opt text '\n' with
    | Some i ->
        let line = String.sub text 0 i in
        let line =
          if i > 0 && line.[i - 1] = '\r' then String.sub line 0 (i - 1) else line
        in
        Buffer.clear conn.buf;
        Buffer.add_substring conn.buf text (i + 1) (String.length text - i - 1);
        if line <> "" then handle_frame state conn line
    | None ->
        if Buffer.length conn.buf > state.max_frame then begin
          write_response state conn
            (Protocol.error_response
               (Printf.sprintf "frame exceeds %d bytes" state.max_frame));
          close_conn state conn
        end;
        continue := false
  done

let read_conn state conn =
  let chunk = Bytes.create 65536 in
  match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
  | 0 -> close_conn state conn
  | n ->
      Buffer.add_subbytes conn.buf chunk 0 n;
      drain_frames state conn
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      close_conn state conn
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()

let accept_conn state listener =
  match Unix.accept listener with
  | fd, _ ->
      let conn = { fd; cid = state.next_cid; buf = Buffer.create 256; alive = true } in
      state.next_cid <- state.next_cid + 1;
      Hashtbl.replace state.conns conn.cid conn
  | exception Unix.Unix_error _ -> ()

let resolve_host host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found | Invalid_argument _ ->
      invalid_arg (Printf.sprintf "cannot resolve host %S" host))

let bind_listener = function
  | Unix_socket path ->
      if Sys.file_exists path then (try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 16;
      fd
  | Tcp (host, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (resolve_host host, port));
      Unix.listen fd 16;
      fd

(* Deliver one finished job's response to its submitter, if the
   connection is still around.  Delivery is where the latency
   histograms are fed — the only consumer of the job's
   submission/dispatch stamps — and where the lifecycle event for the
   outcome is logged. *)
let deliver state (job, result) =
  let now = Unix.gettimeofday () in
  if job.Scheduler.j_dispatched > 0.0 then begin
    Histogram.record state.h_queue_wait
      (job.Scheduler.j_dispatched -. job.Scheduler.j_submitted);
    Histogram.record state.h_execute (now -. job.Scheduler.j_dispatched)
  end;
  Histogram.record state.h_e2e (now -. job.Scheduler.j_submitted);
  let event, level =
    match result.Scheduler.r_status with
    | Scheduler.Complete -> ("job.completed", Log.Info)
    | Scheduler.Partial _ -> ("job.partial", Log.Warn)
    | Scheduler.Failed _ -> ("job.failed", Log.Error)
  in
  Log.emit state.log event ~level ~job:job.Scheduler.j_key
    ~fields:
      [
        ("id", J.Int job.Scheduler.j_id);
        ("tests", J.Int result.Scheduler.r_tests);
        ("detected", J.Int result.Scheduler.r_detected);
        ("seconds", J.Float (now -. job.Scheduler.j_submitted));
      ];
  state.prom_dirty <- true;
  if state.draining then state.drained <- state.drained + 1;
  match Hashtbl.find_opt state.waiting job.Scheduler.j_id with
  | None -> ()
  | Some (cid, want_tset, client_id) -> (
      Hashtbl.remove state.waiting job.Scheduler.j_id;
      match Hashtbl.find_opt state.conns cid with
      | Some conn when conn.alive ->
          (* The response id is the client's correlation id when the
             request carried one (pipelined clients, the shard router),
             the server's job id otherwise. *)
          let id = Some (Option.value client_id ~default:job.Scheduler.j_id) in
          write_response state conn
            (Protocol.submit_response ~id ~cached:false ~want_tset result)
      | _ -> ())

(* Collect supervised results: fold each worker's telemetry drain into
   the cumulative table (so [metrics] reflects multi-worker runs), keep
   its span tracks by worker pid when stitching a trace, persist the
   result, answer the submitter. *)
let collect_supervised state sup =
  List.iter
    (fun (o : Supervisor.outcome) ->
      fold_counters state o.Supervisor.o_counters;
      if o.Supervisor.o_tracks <> [] && o.Supervisor.o_worker_pid > 0 then begin
        let pid = o.Supervisor.o_worker_pid in
        let prev =
          Option.value ~default:[] (Hashtbl.find_opt state.worker_tracks pid)
        in
        Hashtbl.replace state.worker_tracks pid (prev @ o.Supervisor.o_tracks)
      end;
      Scheduler.cache_store state.sched ~key:o.Supervisor.o_job.Scheduler.j_key
        o.Supervisor.o_result;
      deliver state (o.Supervisor.o_job, o.Supervisor.o_result))
    (Supervisor.take_results sup)

(* One stitched Chrome trace for the whole fleet: the parent process
   first (its own spans — everything in-process mode ran, or just the
   select loop's in supervised mode), then one process per worker pid
   in pid order.  A respawned slot has a fresh pid, so its spans land
   on their own process track. *)
let write_trace state =
  match state.trace_file with
  | None -> ()
  | Some path -> (
      accumulate state;
      let parent_name = if state.sup = None then "asc" else "asc supervisor" in
      let workers =
        List.sort compare
          (Hashtbl.fold
             (fun pid tracks acc -> (pid, "asc worker", tracks) :: acc)
             state.worker_tracks [])
      in
      let doc =
        Telemetry.stitched_trace_json
          ((Unix.getpid (), parent_name, state.parent_tracks) :: workers)
      in
      try
        let oc = open_out path in
        output_string oc (J.to_string doc);
        output_char oc '\n';
        close_out oc
      with Sys_error reason ->
        Printf.eprintf "asc: trace file %s: %s; trace dropped\n%!" path reason)

(* Drain complete: answer every shutdown in arrival order, then stop. *)
let finish_drain state =
  if state.draining && outstanding state = 0 then begin
    List.iter
      (fun cid ->
        match Hashtbl.find_opt state.conns cid with
        | Some conn when conn.alive ->
            write_response state conn
              (Protocol.shutdown_response ~drained:state.drained)
        | _ -> ())
      (List.rev state.shutdown_waiters);
    state.shutdown_waiters <- [];
    state.running <- false
  end

let serve ?pool ?tel ?chaos ?log ?trace_file ?prom_file ?on_ready ?(workers = 0)
    ?job_retries ?make_pool ?max_pending ?max_pending_per_source ?hb_stale
    config =
  (* A client that disconnects mid-write must not kill the server. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  if workers > 0 && pool <> None then
    invalid_arg "Server.serve: a supervised parent must not own a pool";
  let sched =
    Scheduler.create ?pool ?tel ?chaos ?log ?state_dir:config.state_dir
      ?max_pending ?max_pending_per_source ()
  in
  let state =
    {
      sched;
      tel;
      chaos;
      log;
      trace_file;
      prom_file;
      started = Unix.gettimeofday ();
      max_frame = config.max_frame;
      conns = Hashtbl.create 16;
      waiting = Hashtbl.create 16;
      max_pending;
      max_pending_per_source;
      cumulative = Hashtbl.create 64;
      h_queue_wait = Histogram.create ();
      h_execute = Histogram.create ();
      h_e2e = Histogram.create ();
      parent_tracks = [];
      worker_tracks = Hashtbl.create 8;
      sup = None;
      next_cid = 0;
      running = true;
      draining = false;
      drained = 0;
      shutdown_waiters = [];
      prom_dirty = false;
      prom_failed = false;
    }
  in
  let listener = bind_listener config.listen in
  if workers > 0 then
    state.sup <-
      Some
        (Supervisor.create ?tel ?chaos ?log ~trace:(trace_file <> None)
           ?state_dir:config.state_dir ?job_retries ?hb_stale ?make_pool
           ~on_child_fork:(fun () ->
             (* Children must not hold the server's sockets: a stray
                duplicate would keep client connections half-open past
                the parent's close. *)
             (try Unix.close listener with Unix.Unix_error _ -> ());
             Hashtbl.iter
               (fun _ c ->
                 try Unix.close c.fd with Unix.Unix_error _ -> ())
               state.conns)
           ~workers ());
  Log.emit log "server.start"
    ~fields:
      [
        ("workers", J.Int workers);
        ( "listen",
          J.Str
            (match config.listen with
            | Unix_socket path -> path
            | Tcp (host, port) -> Printf.sprintf "%s:%d" host port) );
      ];
  write_prom state;
  Option.iter (fun f -> f ()) on_ready;
  Fun.protect
    ~finally:(fun () ->
      Option.iter Supervisor.stop state.sup;
      Log.emit log "server.shutdown" ~fields:[ ("drained", J.Int state.drained) ];
      write_prom state;
      write_trace state;
      Hashtbl.iter (fun _ conn -> close_conn state conn)
        (Hashtbl.copy state.conns);
      (try Unix.close listener with Unix.Unix_error _ -> ());
      match config.listen with
      | Unix_socket path -> (
          try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
      | Tcp _ -> ())
    (fun () ->
      while state.running do
        (* Service the socket first — zero timeout when a dispatch can
           happen right now so a burst of submissions lands before it. *)
        let dispatch_ready =
          Scheduler.pending state.sched > 0
          &&
          match state.sup with
          | None -> true
          | Some s ->
              Supervisor.live_count s - Supervisor.busy_count s > 0
              || (Supervisor.all_retired s && Supervisor.live_count s = 0)
        in
        let timeout = if dispatch_ready then 0.0 else 0.2 in
        let sup_fds =
          match state.sup with Some s -> Supervisor.fds s | None -> []
        in
        let fds =
          (listener :: Hashtbl.fold (fun _ c acc -> c.fd :: acc) state.conns [])
          @ sup_fds
        in
        let readable =
          match Unix.select fds [] [] timeout with
          | r, _, _ -> r
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
        in
        List.iter
          (fun fd ->
            if state.running then
              if fd == listener then accept_conn state listener
              else
                let found =
                  Hashtbl.fold
                    (fun _ c acc -> if c.fd == fd then Some c else acc)
                    state.conns None
                in
                match found with
                | Some c -> read_conn state c
                | None ->
                    Option.iter
                      (fun s -> Supervisor.handle_readable s ~sched fd)
                      state.sup)
          readable;
        if state.running then begin
          (match state.sup with
          | None ->
              (* In-process mode: run exactly one queued job to
                 completion. *)
              Option.iter (deliver state) (Scheduler.run_next sched)
          | Some s ->
              Supervisor.pump s ~sched;
              if Supervisor.all_retired s && Supervisor.live_count s = 0 then
                (* Every slot burned its restart budget: degrade to
                   in-process execution (no pool in the parent, so
                   single-domain — still bit-identical). *)
                Option.iter (deliver state) (Scheduler.run_next sched)
              else Supervisor.dispatch s ~sched;
              collect_supervised state s);
          (* Deadline-expired jobs dropped by [pick] still owe their
             submitters a (partial) response. *)
          List.iter (deliver state) (Scheduler.take_shed sched);
          if state.prom_dirty then begin
            state.prom_dirty <- false;
            write_prom state
          end;
          finish_drain state
        end
      done)
