(** The proposed procedure extended to partial scan — the paper's stated
    extension, realised.

    Same four phases with partial-scan semantics: unscanned flip-flops are
    X at test start, the scan-out observes scanned flip-flops only, and a
    scan operation costs [N_scanned] cycles.  Complete full-scan coverage
    is generally unreachable; the result reports the partial-scan
    detectable coverage. *)

type config = {
  seed : int;
  t0_source : Pipeline.t0_source;
  max_iterations : int;
  omission_chunk : int;
  omission_checks : int;
  combine_attempts : int;
}

val default_config : config

type result = {
  chain : Asc_scan.Partial.chain;
  tau_seq : Asc_scan.Scan_test.t;
  f_seq : Asc_util.Bitvec.t;
  added : Asc_scan.Scan_test.t array;
  final_tests : Asc_scan.Scan_test.t array;
  final_detected : Asc_util.Bitvec.t;
  cycles_initial : int;
  cycles_final : int;
}

val run :
  ?config:config -> Pipeline.prepared -> chain:Asc_scan.Partial.chain -> result
