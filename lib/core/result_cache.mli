(** Persistent content-addressed result cache for the serving layer
    (docs/SERVING.md).

    A cache is an in-memory table over an optional on-disk store: one
    [result-<key>.res] file per completed job under the state directory,
    CRC-32-trailed and written atomically (temp file + rename) following
    the Checkpoint v2 discipline, so completed results survive daemon
    restarts and a crash mid-write leaves no readable garbage.

    Only [Complete] results are stored (the {!Scheduler} converts), so a
    loaded entry is complete by construction.  A file that fails to
    decode — truncation, bit flip, foreign content — is skipped {e and
    deleted} on access: corruption costs one recomputation, never an
    error. *)

type entry = {
  e_key : string;  (** The job's content hash ({!Scheduler.key_of_spec}). *)
  e_tests : int;
  e_cycles : int;
  e_detected : int;
  e_targets : int;
  e_iterations : int;
  e_tset : string;
      (** The test set in {!Asc_scan.Tset_io} format, byte-identical to
          the serving response's [tset] member. *)
}

type t

(** [create ?dir ()] — with [dir], entries are persisted there (the
    directory is created if missing); without, the cache is memory-only. *)
val create : ?dir:string -> unit -> t

(** [find t key] — [Some (entry, from_disk)] where [from_disk] reports
    that the entry was faulted in from the persistent store rather than
    answered from memory (the [result_cache_persisted_hits] signal).
    Never raises: unreadable or corrupt files are deleted and reported as
    a miss. *)
val find : t -> string -> (entry * bool) option

(** [store t entry] — insert in memory and, when persistent, write the
    entry's file atomically.  Disk failures are swallowed after a bounded
    retry: the on-disk copy is an availability optimisation, and a failed
    write must not fail the job that produced the result. *)
val store : t -> entry -> unit

(** The file a key persists to — exposed for tests and operators. *)
val path : dir:string -> string -> string

(** {1 Codec} — exposed for the corruption property tests. *)

val entry_to_string : entry -> string

(** Decode one file's bytes.  [Error] on any malformation: bad magic,
    truncation, CRC mismatch, trailing bytes. *)
val entry_of_string : string -> (entry, string) result
