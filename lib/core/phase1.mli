(** Phase 1: from a test sequence T0 to a scan-based test.

    Step 2 — scan-in selection among the state parts of the combinational
    set C (maximum new detections, unselected candidates preferred); Step 3
    — earliest scan-out time preserving every fault of [F_SI], computed
    from a single detection-time profile (the paper's [i_0] criterion). *)

type scan_in_choice = {
  index : int;  (** Chosen candidate index into C. *)
  f_si : Asc_util.Bitvec.t;  (** [F_SI = F0 + new detections], in targets. *)
  already_selected : bool;
      (** True when a previously selected state won — the Phase 1+2
          iteration's termination condition. *)
}

val select_scan_in :
  ?pool:Asc_util.Domain_pool.t ->
  ?budget:Asc_util.Budget.t ->
  ?tel:Asc_util.Telemetry.t ->
  Asc_netlist.Circuit.t ->
  faults:Asc_fault.Fault.t array ->
  candidates:Asc_sim.Pattern.t array ->
  t0:bool array array ->
  f0:Asc_util.Bitvec.t ->
  targets:Asc_util.Bitvec.t ->
  selected:Asc_util.Bitvec.t ->
  scan_in_choice

type scan_out_choice = {
  test : Asc_scan.Scan_test.t;  (** [tau_SO = (SI, T0[0, u])]. *)
  u : int;
  f_so : Asc_util.Bitvec.t;  (** All target faults the truncated test detects. *)
}

(** The paper's two scan-out criteria (Section 3.1): [Earliest] is [i_0]
    (used by the paper), [Max_detection] is the [i_1] alternative it
    discusses and rejects. *)
type scan_out_policy = Earliest | Max_detection

val select_scan_out :
  ?pool:Asc_util.Domain_pool.t ->
  ?budget:Asc_util.Budget.t ->
  ?tel:Asc_util.Telemetry.t ->
  ?policy:scan_out_policy ->
  Asc_netlist.Circuit.t ->
  faults:Asc_fault.Fault.t array ->
  si:bool array ->
  t0:bool array array ->
  f_si:Asc_util.Bitvec.t ->
  targets:Asc_util.Bitvec.t ->
  scan_out_choice
