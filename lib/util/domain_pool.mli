(** Fixed pool of worker domains with a chunked work queue.

    Callers split independent work into indexed tasks; tasks are claimed
    from a shared atomic counter, so uneven task costs rebalance across
    domains.  Task results must be written to disjoint, task-indexed slots
    — the pool then guarantees the submitter reads them after a
    happens-before edge, and the submitter merges them in index order, so
    results are deterministic regardless of scheduling.

    A pool of size 1 spawns no domains and runs everything inline; nested
    [run] calls from inside a task also degrade to inline execution rather
    than deadlock.

    Fail-fast: once a task raises, or the pool's budget fires, remaining
    unclaimed tasks are {e skipped} (their result slots keep the caller's
    initial values) and the exception is re-raised on the submitter as soon
    as in-flight tasks finish. *)

type t

(** [create ?budget ?domains ()] spawns a pool of [domains] total
    participants (including the submitting domain), so [domains - 1]
    worker domains.  Default: [default_domains ()].

    [budget] (default {!Budget.unlimited}) is polled between tasks by every
    participant; once it fires, {!run} skips the remaining tasks and raises
    {!Budget.Exhausted} on the submitter.  The budget belongs to the
    pool's creator — tasks only ever observe it through this polling.

    [tel] records a {!Telemetry.pool_task_name} span (and a [Pool_tasks]
    count) around every task claimed on a parallel job, on the claiming
    domain's track — the raw material for per-domain utilization.  Inline
    execution (size-1 pools, nested runs) records no task spans: its work
    is attributed to whatever span encloses the submitter.

    [chaos] arms the {!Chaos.pool_poll} and {!Chaos.pool_task} injection
    points, hit once per claimed task (parallel and inline paths alike).
    An injected exception behaves exactly like a task failure: captured,
    remaining tasks skipped, re-raised on the submitter. *)
val create :
  ?budget:Budget.t -> ?tel:Telemetry.t -> ?chaos:Chaos.t -> ?domains:int -> unit -> t

(** Pool size (total participating domains; 1 means fully sequential). *)
val size : t -> int

(** The default pool size: the [ASC_DOMAINS] environment variable when set
    to a positive integer, otherwise [Domain.recommended_domain_count ()]
    (which is 1 on single-core hosts). *)
val default_domains : unit -> int

(** [run t n f] executes [f 0 .. f (n-1)] across the pool and returns when
    the job has drained.  The first task exception (if any) is re-raised on
    the submitting domain; tasks not yet claimed when it was captured are
    skipped.  Raises {!Budget.Exhausted} without claiming any task if the
    pool budget has already fired.  Must not be called concurrently from
    two domains. *)
val run : t -> int -> (int -> unit) -> unit

(** [run_opt pool n f]: [run] through [Some pool], plain sequential loop on
    [None]. *)
val run_opt : t option -> int -> (int -> unit) -> unit

(** Stop and join the worker domains.  Idempotent; subsequent [run] calls
    execute sequentially. *)
val shutdown : t -> unit

(** [split ~n ~pieces] cuts [0, n) into at most [pieces] contiguous
    [(start, len)] ranges of near-equal length. *)
val split : n:int -> pieces:int -> (int * int) array

(** Task count to split [n] independent items into over [pool] (a few
    chunks per domain, capped at [n]; 1 when [pool] is [None]). *)
val chunk_count : t option -> int -> int

(** [map pool arr ~f] maps [f] over [arr] with one task per element and
    returns results in element order. *)
val map : t option -> 'a array -> f:('a -> 'b) -> 'b array
