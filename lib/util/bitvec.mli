(** Packed bit vectors over native words.

    The library represents fault sets (detected / target / undetected) and
    time-unit sets as bit vectors; all set algebra used by the compaction
    procedures goes through this module. *)

type t

(** [create ?default len] is a vector of [len] bits, all [default]
    (default [false]). *)
val create : ?default:bool -> int -> t

val length : t -> int

val get : t -> int -> bool
val set : t -> int -> unit
val clear : t -> int -> unit
val assign : t -> int -> bool -> unit

val copy : t -> t

(** Set every bit to [b]. *)
val fill : t -> bool -> unit

(** In-place set algebra; lengths must match. *)
val union_into : into:t -> t -> unit

val inter_into : into:t -> t -> unit

(** [diff_into ~into src] removes the bits of [src] from [into]. *)
val diff_into : into:t -> t -> unit

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t

(** Number of set bits. *)
val count : t -> int

val is_empty : t -> bool
val equal : t -> t -> bool

(** [subset a b] is true when every set bit of [a] is set in [b]. *)
val subset : t -> t -> bool

(** Iterate over set indices in increasing order. *)
val iter_set : (int -> unit) -> t -> unit

val fold_set : ('a -> int -> 'a) -> 'a -> t -> 'a
val to_list : t -> int list

(** Lowest set index, or [-1] if empty. *)
val first_set : t -> int

val of_list : int -> int list -> t
val init : int -> (int -> bool) -> t

val to_string : t -> string
val pp : Format.formatter -> t -> unit
