(** Deterministic SplitMix64 pseudo-random number generator.

    Every stochastic step in the library draws from this generator, so all
    experiments are reproducible from an integer seed. *)

type t

(** [create seed] is a fresh generator seeded with [seed]. *)
val create : int -> t

(** [of_name ~seed name] derives an independent stream for [name]; used to
    give each circuit / experiment its own reproducible stream. *)
val of_name : seed:int -> string -> t

(** [split t] is a statistically independent child generator; [t] advances. *)
val split : t -> t

(** [copy t] is a generator with the same future output as [t]. *)
val copy : t -> t

(** Raw 64-bit output. *)
val next_int64 : t -> int64

(** A uniform non-negative value of 62 bits. *)
val bits : t -> int

(** [int t bound] is uniform in [0, bound); [bound] must be positive. *)
val int : t -> int -> int

val bool : t -> bool

(** Uniform in [0, 1). *)
val float : t -> float

(** [weighted t w] picks index [i] with probability [w.(i) / sum w]. *)
val weighted : t -> int array -> int

(** In-place Fisher–Yates shuffle. *)
val shuffle : t -> 'a array -> unit

(** [word t ~width] is a uniform [width]-bit pattern word, [0 <= width <= 62]. *)
val word : t -> width:int -> int

(** [bool_array t n] is an array of [n] fair coin flips. *)
val bool_array : t -> int -> bool array
