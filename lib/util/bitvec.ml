(* Packed bit vectors.

   Used throughout for fault sets (detected / undetected / target masks) and
   for per-fault time profiles.  Words carry [Word.width] bits each; the
   trailing word is kept masked so that [count] and [equal] are exact. *)

type t = { len : int; words : int array }

let bpw = Word.width

let nwords len = (len + bpw - 1) / bpw

(* Mask off trailing bits beyond [len].  When [len] is a multiple of [bpw]
   the last word is fully used and needs no mask — shifting by a full word
   width there would be undefined ([1 lsl 62] overflows a 62-bit lane
   word). *)
let mask_trailing words len =
  let used = len mod bpw in
  if used > 0 then begin
    let last = nwords len - 1 in
    words.(last) <- words.(last) land ((1 lsl used) - 1)
  end

let create ?(default = false) len =
  if len < 0 then invalid_arg "Bitvec.create: negative length";
  let words = Array.make (max 1 (nwords len)) (if default then Word.mask else 0) in
  if default then if len = 0 then words.(0) <- 0 else mask_trailing words len;
  { len; words }

let length t = t.len

let check t i =
  if i < 0 || i >= t.len then invalid_arg "Bitvec: index out of bounds"

let get t i =
  check t i;
  Word.get t.words.(i / bpw) (i mod bpw)

let set t i =
  check t i;
  t.words.(i / bpw) <- Word.set t.words.(i / bpw) (i mod bpw)

let clear t i =
  check t i;
  t.words.(i / bpw) <- Word.clear t.words.(i / bpw) (i mod bpw)

let assign t i b = if b then set t i else clear t i

let copy t = { len = t.len; words = Array.copy t.words }

let fill t b =
  if b then begin
    Array.fill t.words 0 (Array.length t.words) Word.mask;
    if t.len = 0 then t.words.(0) <- 0 else mask_trailing t.words t.len
  end
  else Array.fill t.words 0 (Array.length t.words) 0

let same_len a b =
  if a.len <> b.len then invalid_arg "Bitvec: length mismatch"

let union_into ~into src =
  same_len into src;
  for i = 0 to Array.length into.words - 1 do
    into.words.(i) <- into.words.(i) lor src.words.(i)
  done

let inter_into ~into src =
  same_len into src;
  for i = 0 to Array.length into.words - 1 do
    into.words.(i) <- into.words.(i) land src.words.(i)
  done

let diff_into ~into src =
  same_len into src;
  for i = 0 to Array.length into.words - 1 do
    into.words.(i) <- into.words.(i) land lnot src.words.(i)
  done

let union a b = let r = copy a in union_into ~into:r b; r
let inter a b = let r = copy a in inter_into ~into:r b; r
let diff a b = let r = copy a in diff_into ~into:r b; r

let count t = Array.fold_left (fun acc w -> acc + Word.popcount w) 0 t.words

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let equal a b = a.len = b.len && a.words = b.words

(* [subset a b] is true when every bit of [a] is also set in [b]. *)
let subset a b =
  same_len a b;
  let rec go i =
    i >= Array.length a.words || (a.words.(i) land lnot b.words.(i) = 0 && go (i + 1))
  in
  go 0

let iter_set f t =
  for w = 0 to Array.length t.words - 1 do
    let base = w * bpw in
    Word.iter_set (fun i -> f (base + i)) t.words.(w)
  done

let fold_set f acc t =
  let acc = ref acc in
  iter_set (fun i -> acc := f !acc i) t;
  !acc

let to_list t = List.rev (fold_set (fun acc i -> i :: acc) [] t)

let first_set t =
  let rec go w =
    if w >= Array.length t.words then -1
    else if t.words.(w) = 0 then go (w + 1)
    else (w * bpw) + Word.lowest_set t.words.(w)
  in
  go 0

let of_list len l =
  let t = create len in
  List.iter (fun i -> set t i) l;
  t

let init len f =
  let t = create len in
  for i = 0 to len - 1 do
    if f i then set t i
  done;
  t

let to_string t = String.init t.len (fun i -> if get t i then '1' else '0')

let pp fmt t = Format.pp_print_string fmt (to_string t)
