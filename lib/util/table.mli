(** Plain-text table rendering for experiment reports.

    Tables mirror the layout of the paper: a caption, an optional group
    header spanning several columns (e.g. "detected" over three columns),
    column titles, and aligned rows. *)

type align = Left | Right

type column

val column : ?align:align -> string -> column

(** Left-aligned column (circuit names). *)
val left : string -> column

(** Right-aligned column (numbers). *)
val right : string -> column

type t

(** [create ?groups ~caption columns] — if [groups] is given, its spans must
    add up to the number of columns. *)
val create : ?groups:(string * int) list -> caption:string -> column list -> t

(** Append a row; the number of cells must match the number of columns. *)
val add_row : t -> string list -> unit

val render : t -> string
val print : t -> unit
