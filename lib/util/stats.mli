(** Numeric helpers for experiment reporting. *)

val mean : int list -> float

(** Raises [Invalid_argument] on the empty list. *)
val min_max : int list -> int * int

(** ["lo-hi"], as in the paper's range columns. *)
val range_string : int list -> string

(** Mean with two decimals, as in the paper's "ave" columns. *)
val mean_string : int list -> string

val median : int list -> float
val sum : int list -> int

(** [percent ~num ~den] is [100 * num / den], or [0.] when [den = 0]. *)
val percent : num:int -> den:int -> float
