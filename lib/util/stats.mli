(** Numeric helpers for experiment reporting. *)

val mean : int list -> float

(** Raises [Invalid_argument] on the empty list. *)
val min_max : int list -> int * int

(** ["lo-hi"], as in the paper's range columns. *)
val range_string : int list -> string

(** Mean with two decimals, as in the paper's "ave" columns. *)
val mean_string : int list -> string

val median : int list -> float
val sum : int list -> int

(** [percent ~num ~den] is [100 * num / den], or [0.] when [den = 0]. *)
val percent : num:int -> den:int -> float

(** {1 Float-list variants} *)

val sum_f : float list -> float

(** 0. on the empty list, like {!mean}. *)
val mean_f : float list -> float

(** Raises [Invalid_argument] on the empty list. *)
val min_max_f : float list -> float * float

(** Raises [Invalid_argument] on the empty list. *)
val median_f : float list -> float

(** Population standard deviation; 0. for lists of fewer than two
    elements. *)
val stddev_f : float list -> float

val stddev : int list -> float

(** [percentile_f ~p l] is the [p]-th percentile (linear interpolation
    between closest ranks; [p = 50.] equals {!median_f}).  Raises
    [Invalid_argument] on the empty list or [p] outside [0, 100]. *)
val percentile_f : p:float -> float list -> float

val percentile : p:float -> int list -> float
