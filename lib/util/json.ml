(* Minimal JSON serialization.

   One escaping/printing path shared by every JSON producer in the tree
   (the CLI's --json summaries, the bench harness, the telemetry trace
   writer), replacing hand-built Printf templates.  Writer only — the
   test suite carries its own small parser for validating emitted files.

   Numbers: [Float] prints with enough digits to round-trip ("%.17g"
   would be noisy; "%g" loses precision) — we use "%.6f"-style fixed
   rendering for typical telemetry magnitudes via [Printf "%.12g"],
   which is exact for every float the toolchain emits (seconds,
   ratios).  NaN and infinities have no JSON spelling; they are mapped
   to [null] rather than producing an unparseable file. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to buf f =
  if Float.is_nan f || Float.abs f = Float.infinity then
    Buffer.add_string buf "null"
  else Buffer.add_string buf (Printf.sprintf "%.12g" f)

(* [indent < 0] means compact (single line, no spaces after separators). *)
let rec value_to buf ~indent ~level v =
  let nl k =
    if indent >= 0 then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (indent * k) ' ')
    end
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> float_to buf f
  | Str s -> escape_to buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          nl (level + 1);
          value_to buf ~indent ~level:(level + 1) item)
        items;
      nl level;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          nl (level + 1);
          escape_to buf k;
          Buffer.add_string buf (if indent >= 0 then ": " else ":");
          value_to buf ~indent ~level:(level + 1) item)
        fields;
      nl level;
      Buffer.add_char buf '}'

let to_string ?(compact = false) v =
  let buf = Buffer.create 1024 in
  value_to buf ~indent:(if compact then -1 else 2) ~level:0 v;
  Buffer.contents buf

let to_channel ?compact oc v =
  output_string oc (to_string ?compact v);
  output_char oc '\n'

let write_file ?compact path v =
  let oc = open_out path in
  (try to_channel ?compact oc v
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc
