(* Minimal JSON serialization and parsing.

   One escaping/printing path shared by every JSON producer in the tree
   (the CLI's --json summaries, the bench harness, the telemetry trace
   writer), replacing hand-built Printf templates.  The parser exists for
   the serving layer's line-delimited protocol (docs/SERVING.md): one
   request or response per line, so it must accept anything [to_string]
   emits plus the usual hand-written client JSON, and reject everything
   else with a position.

   Numbers: [Float] prints with enough digits to round-trip ("%.17g"
   would be noisy; "%g" loses precision) — we use "%.6f"-style fixed
   rendering for typical telemetry magnitudes via [Printf "%.12g"],
   which is exact for every float the toolchain emits (seconds,
   ratios).  NaN and infinities have no JSON spelling; they are mapped
   to [null] rather than producing an unparseable file. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to buf f =
  if Float.is_nan f || Float.abs f = Float.infinity then
    Buffer.add_string buf "null"
  else Buffer.add_string buf (Printf.sprintf "%.12g" f)

(* [indent < 0] means compact (single line, no spaces after separators). *)
let rec value_to buf ~indent ~level v =
  let nl k =
    if indent >= 0 then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (indent * k) ' ')
    end
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> float_to buf f
  | Str s -> escape_to buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          nl (level + 1);
          value_to buf ~indent ~level:(level + 1) item)
        items;
      nl level;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          nl (level + 1);
          escape_to buf k;
          Buffer.add_string buf (if indent >= 0 then ": " else ":");
          value_to buf ~indent ~level:(level + 1) item)
        fields;
      nl level;
      Buffer.add_char buf '}'

let to_string ?(compact = false) v =
  let buf = Buffer.create 1024 in
  value_to buf ~indent:(if compact then -1 else 2) ~level:0 v;
  Buffer.contents buf

let to_channel ?compact oc v =
  output_string oc (to_string ?compact v);
  output_char oc '\n'

let write_file ?compact path v =
  let oc = open_out path in
  (try to_channel ?compact oc v
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc

(* --- Parsing ------------------------------------------------------------ *)

exception Parse_error of { pos : int; message : string }

(* Recursive-descent over a string with one lookahead character.  Numbers
   that are integral and fit in [int] parse as [Int]; everything else
   numeric parses as [Float], mirroring the writer (which prints integral
   floats without a point, so Int/Float is not round-trippable — by
   design, both spell the same JSON number). *)
type parser_state = { text : string; mutable pos : int }

let perr st fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { pos = st.pos; message })) fmt

let peek st = if st.pos < String.length st.text then Some st.text.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  let n = String.length st.text in
  while
    st.pos < n
    && match st.text.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    advance st
  done

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | Some d -> perr st "expected %C, found %C" c d
  | None -> perr st "expected %C, found end of input" c

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.text
    && String.sub st.text st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else perr st "bad literal (expected %s)" word

let hex_digit st c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> perr st "bad hex digit %C in \\u escape" c

(* Encode a Unicode scalar value as UTF-8.  The writer only ever emits
   \u00XX for control characters, but clients may send any BMP escape. *)
let add_utf8 buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_string_body st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> perr st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        (match peek st with
        | None -> perr st "unterminated escape"
        | Some c ->
            advance st;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                if st.pos + 4 > String.length st.text then
                  perr st "truncated \\u escape";
                let code =
                  let d k = hex_digit st st.text.[st.pos + k] in
                  (d 0 lsl 12) lor (d 1 lsl 8) lor (d 2 lsl 4) lor d 3
                in
                st.pos <- st.pos + 4;
                add_utf8 buf code
            | c -> perr st "bad escape \\%C" c));
        go ())
    | Some c when Char.code c < 0x20 -> perr st "raw control character in string"
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let n = String.length st.text in
  if peek st = Some '-' then advance st;
  while
    st.pos < n
    && match st.text.[st.pos] with
       | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
       | _ -> false
  do
    advance st
  done;
  let s = String.sub st.text start (st.pos - start) in
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None ->
          st.pos <- start;
          perr st "bad number %S" s)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> perr st "unexpected end of input"
  | Some 'n' -> literal st "null" Null
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some '"' -> Str (parse_string_body st)
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        List []
      end
      else
        let rec items acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              items (v :: acc)
          | Some ']' ->
              advance st;
              List (List.rev (v :: acc))
          | _ -> perr st "expected ',' or ']' in array"
        in
        items []
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else
        let field () =
          skip_ws st;
          let k = parse_string_body st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              fields (kv :: acc)
          | Some '}' ->
              advance st;
              Obj (List.rev (kv :: acc))
          | _ -> perr st "expected ',' or '}' in object"
        in
        fields []
  | Some c -> perr st "unexpected character %C" c

let of_string text =
  let st = { text; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length text then perr st "trailing content after JSON value";
  v

let parse text =
  match of_string text with
  | v -> Ok v
  | exception Parse_error { pos; message } ->
      Error (Printf.sprintf "at offset %d: %s" pos message)

(* --- Accessors ----------------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let as_str = function Str s -> Some s | _ -> None

let as_int = function Int n -> Some n | _ -> None

let as_float = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None

let as_bool = function Bool b -> Some b | _ -> None

let as_list = function List l -> Some l | _ -> None

let as_obj = function Obj fields -> Some fields | _ -> None
