(** Simulation words: 62 parallel binary lanes packed in one native [int].

    The whole simulation stack is bit-parallel: one word carries 62
    independent patterns (or 62 independent faulty machines). *)

(** Number of lanes per word (62). *)
val width : int

(** All-lanes mask, [2^width - 1]. *)
val mask : int

val zero : int
val ones : int

(** Number of set lanes. *)
val popcount : int -> int

val get : int -> int -> bool
val set : int -> int -> int
val clear : int -> int -> int

(** [splat b] replicates the scalar bit [b] into every lane. *)
val splat : bool -> int

(** Iterate over indices of set lanes, lowest first. *)
val iter_set : (int -> unit) -> int -> unit

val fold_set : ('a -> int -> 'a) -> 'a -> int -> 'a

(** Index of the lowest set lane, or [-1] if none. *)
val lowest_set : int -> int

(** MSB-first binary rendering (debugging). *)
val to_string : int -> string
