(** Wall-clock deadline plus cancellation token for cooperative
    interruption of long-running kernels.

    A budget fires at most once — the first of {e deadline passed} or
    {e cancel called} wins — and the reason latches.  Kernels poll it at
    loop boundaries (fault groups, PODEM backtracks, pipeline iterations),
    so an exhausted budget unwinds at the next poll point with state still
    consistent.  All operations are safe to call from any domain; a signal
    handler may call {!cancel}.

    Ownership rule (mirrors the pool's engine-ownership rule): a budget is
    created by the top-level driver and threaded {e downward} through
    [?budget] parameters; library code never creates or cancels one, it
    only polls. *)

type reason =
  | Deadline  (** The wall-clock timeout elapsed. *)
  | Cancelled  (** {!cancel} was called (e.g. from a SIGINT handler). *)

(** Raised by {!check} (and by pool-dispatched kernels) once the budget has
    fired. *)
exception Exhausted of reason

type t

(** A budget that never fires; {!cancel} on it is a no-op.  This is the
    shared default of every [?budget] parameter. *)
val unlimited : t

(** [create ?timeout ()] makes a fresh budget; [timeout] is in wall-clock
    seconds from now.  Raises [Invalid_argument] if [timeout <= 0].
    Omitting [timeout] gives a cancel-only token. *)
val create : ?timeout:float -> unit -> t

(** Fire the budget with reason {!Cancelled} (first firing wins; no-op on
    an already-fired budget or on {!unlimited}).  Async-signal-safe. *)
val cancel : t -> unit

(** [None] while the budget is live, [Some reason] once fired.  Checking
    the deadline is what trips it, so polling is required for deadlines to
    take effect. *)
val status : t -> reason option

(** [exhausted t] = [status t <> None]. *)
val exhausted : t -> bool

(** Raise {!Exhausted} if the budget has fired, else return unit.  The
    standard poll point for kernels that unwind by exception. *)
val check : t -> unit

val reason_to_string : reason -> string
