(** Dense bit matrices (one {!Bitvec.t} per row).

    The compaction procedures keep detection matrices — rows are tests,
    columns are faults — and query per-fault detection counts and last
    detecting tests. *)

type t

val create : int -> int -> t
val rows : t -> int
val cols : t -> int

(** The row is the live underlying vector, not a copy. *)
val row : t -> int -> Bitvec.t

val get : t -> int -> int -> bool
val set : t -> int -> int -> unit
val clear : t -> int -> int -> unit
val assign : t -> int -> int -> bool -> unit

(** Replace a row wholesale (length must equal [cols]). *)
val set_row : t -> int -> Bitvec.t -> unit

(** Union of all rows: the set of columns covered by at least one row. *)
val column_union : t -> Bitvec.t

(** Number of rows with the given column set. *)
val column_count : t -> int -> int

(** All column counts in one pass. *)
val column_counts : t -> int array

(** Highest row index with the column set, or [-1]. *)
val last_row_with : t -> int -> int

val copy : t -> t
