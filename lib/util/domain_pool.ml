(* Fixed pool of worker domains with a chunked work queue.

   The fault simulators split their group arrays into contiguous chunks and
   run one chunk per task; tasks are claimed by index from a shared atomic
   counter, so load-imbalanced chunks (early-exit detection makes group
   cost uneven) are absorbed by whichever domain frees up first.  Results
   are indexed by chunk, so callers merge them deterministically regardless
   of execution order.

   Ownership rule: a task must not touch mutable state shared with another
   task — simulation tasks each create their own engine and write only
   their own result slot.  The pool provides the happens-before edges: task
   closures published to workers through the job mutex, task results read
   back by the submitter only after the atomic completion count reaches the
   task total.

   A pool of size 1 spawns no domains and runs everything inline on the
   caller; [default_domains] also collapses to 1 when
   [Domain.recommended_domain_count () = 1].  The [ASC_DOMAINS] environment
   variable overrides the default size (min 1).

   Fail-fast: once a task has raised, or the pool's [budget] has fired,
   remaining unclaimed task indices are skipped — their result slots keep
   whatever the caller initialised them to — and [run] re-raises on the
   submitter as soon as the job drains.  A fired budget surfaces as
   [Budget.Exhausted]. *)

(* One parallel-for invocation. *)
type job = {
  next : int Atomic.t; (* next task index to claim *)
  total : int;
  f : int -> unit;
  completed : int Atomic.t;
  failed : (exn * Printexc.raw_backtrace) option Atomic.t;
}

type t = {
  size : int; (* domains participating, including the submitter *)
  budget : Budget.t; (* polled between tasks; fired => skip + Exhausted *)
  tel : Telemetry.t option; (* task claim/run spans, one track per domain *)
  chaos : Chaos.t option; (* injection points: pool.poll, pool.task *)
  mutable workers : unit Domain.t array;
  mutex : Mutex.t;
  wake : Condition.t; (* job arrival (workers) and job completion (submitter) *)
  mutable job : job option;
  mutable generation : int; (* bumped per job so workers recognise new work *)
  mutable stopped : bool;
  in_task : bool Atomic.t; (* re-entrancy guard: nested runs go sequential *)
}

let env_override () =
  match Sys.getenv_opt "ASC_DOMAINS" with
  | None -> None
  | Some s -> ( match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | _ -> None)

let default_domains () =
  match env_override () with
  | Some n -> n
  | None -> max 1 (Domain.recommended_domain_count ())

(* Claim task indices until the job is drained; the last finisher wakes the
   submitter.  Any exception is kept (first writer wins) and re-raised on
   the submitting domain.  Once [failed] holds an exception — from a task
   or from the pool budget firing — remaining claimed indices are *skipped*
   (their result slots keep the caller's initial value): a poisoned or
   cancelled 1000-task job drains in the time of the tasks already in
   flight, not of all 1000. *)
let drain pool job =
  let continue_ = ref true in
  while !continue_ do
    let i = Atomic.fetch_and_add job.next 1 in
    if i >= job.total then continue_ := false
    else begin
      (if Atomic.get job.failed <> None then ()
       else begin
         Telemetry.incr pool.tel Telemetry.Budget_polls;
         match Budget.status pool.budget with
         | Some reason ->
             ignore
               (Atomic.compare_and_set job.failed None
                  (Some (Budget.Exhausted reason, Printexc.get_callstack 0)))
         | None -> (
             (* Chaos hits stay inside the try: an injected exception is a
                task failure (captured, re-raised on the submitter), never
                a dead worker domain. *)
             try
               Chaos.hit pool.chaos Chaos.pool_poll;
               Telemetry.incr pool.tel Telemetry.Pool_tasks;
               Chaos.hit pool.chaos Chaos.pool_task;
               Telemetry.span pool.tel
                 ~args:[ ("task", string_of_int i) ]
                 Telemetry.pool_task_name
                 (fun () -> job.f i)
             with e ->
               let bt = Printexc.get_raw_backtrace () in
               ignore (Atomic.compare_and_set job.failed None (Some (e, bt))))
       end);
      if Atomic.fetch_and_add job.completed 1 = job.total - 1 then begin
        Mutex.lock pool.mutex;
        Condition.broadcast pool.wake;
        Mutex.unlock pool.mutex
      end
    end
  done

let rec worker_loop pool seen_generation =
  Mutex.lock pool.mutex;
  while (not pool.stopped) && pool.generation = seen_generation do
    Condition.wait pool.wake pool.mutex
  done;
  if pool.stopped then Mutex.unlock pool.mutex
  else begin
    let generation = pool.generation in
    let job = match pool.job with Some j -> j | None -> assert false in
    Mutex.unlock pool.mutex;
    drain pool job;
    worker_loop pool generation
  end

let create ?(budget = Budget.unlimited) ?tel ?chaos ?domains () =
  let size =
    match domains with Some n -> max 1 n | None -> default_domains ()
  in
  let pool =
    {
      size;
      budget;
      tel;
      chaos;
      workers = [||];
      mutex = Mutex.create ();
      wake = Condition.create ();
      job = None;
      generation = 0;
      stopped = false;
      in_task = Atomic.make false;
    }
  in
  if size > 1 then
    pool.workers <- Array.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool 0));
  pool

let size t = t.size

let shutdown t =
  if not t.stopped then begin
    Mutex.lock t.mutex;
    t.stopped <- true;
    Condition.broadcast t.wake;
    Mutex.unlock t.mutex;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end

let run_sequential n f =
  for i = 0 to n - 1 do
    f i
  done

let run t n f =
  if n > 0 then begin
    Budget.check t.budget;
    if t.size = 1 || t.stopped || n = 1 || not (Atomic.compare_and_set t.in_task false true)
    then
      (* Inline fallback keeps the same cancellation contract as the
         parallel path: poll between tasks, same injection points. *)
      for i = 0 to n - 1 do
        Chaos.hit t.chaos Chaos.pool_poll;
        Budget.check t.budget;
        Chaos.hit t.chaos Chaos.pool_task;
        f i
      done
    else begin
      let job =
        {
          next = Atomic.make 0;
          total = n;
          f;
          completed = Atomic.make 0;
          failed = Atomic.make None;
        }
      in
      Mutex.lock t.mutex;
      t.job <- Some job;
      t.generation <- t.generation + 1;
      Condition.broadcast t.wake;
      Mutex.unlock t.mutex;
      (* The submitter participates instead of blocking. *)
      drain t job;
      Mutex.lock t.mutex;
      while Atomic.get job.completed < n do
        Condition.wait t.wake t.mutex
      done;
      (* [t.job] deliberately keeps the drained job: a late-waking worker
         re-reads it, finds the counter exhausted, and goes back to sleep.
         Clearing it here would race that worker into an invalid state. *)
      Mutex.unlock t.mutex;
      Atomic.set t.in_task false;
      match Atomic.get job.failed with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end
  end

let run_opt pool n f =
  match pool with Some p -> run p n f | None -> run_sequential n f

(* [split n pieces] cuts [0, n) into at most [pieces] contiguous
   [(start, len)] ranges of near-equal length (empty ranges elided). *)
let split ~n ~pieces =
  if n <= 0 then [||]
  else begin
    let pieces = max 1 (min pieces n) in
    let base = n / pieces and extra = n mod pieces in
    Array.init pieces (fun i ->
        let len = base + if i < extra then 1 else 0 in
        let start = (i * base) + min i extra in
        (start, len))
  end

(* Chunk count for splitting [n] independent work items over [pool]:
   oversubscribe so uneven chunks rebalance through the shared counter. *)
let chunk_count pool n = max 1 (min n (4 * match pool with Some p -> p.size | None -> 1))

let map pool arr ~f =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    run_opt pool n (fun i -> results.(i) <- Some (f arr.(i)));
    Array.map (function Some x -> x | None -> assert false) results
  end
