(* Dense bit matrices, stored row-major as one bit vector per row.

   Used for detection matrices (tests x faults) in Phase 3 set covering and
   in the static combining procedure of [4]. *)

type t = { rows : int; cols : int; data : Bitvec.t array }

let create rows cols =
  if rows < 0 || cols < 0 then invalid_arg "Bitmat.create";
  { rows; cols; data = Array.init rows (fun _ -> Bitvec.create cols) }

let rows t = t.rows
let cols t = t.cols

let row t r =
  if r < 0 || r >= t.rows then invalid_arg "Bitmat.row";
  t.data.(r)

let get t r c = Bitvec.get (row t r) c
let set t r c = Bitvec.set (row t r) c
let clear t r c = Bitvec.clear (row t r) c
let assign t r c b = Bitvec.assign (row t r) c b

let set_row t r v =
  if Bitvec.length v <> t.cols then invalid_arg "Bitmat.set_row";
  t.data.(r) <- v

(* Union of all rows. *)
let column_union t =
  let acc = Bitvec.create t.cols in
  Array.iter (fun r -> Bitvec.union_into ~into:acc r) t.data;
  acc

(* Number of rows with bit [c] set. *)
let column_count t c =
  let n = ref 0 in
  for r = 0 to t.rows - 1 do
    if Bitvec.get t.data.(r) c then incr n
  done;
  !n

(* Per-column counts, in one pass. *)
let column_counts t =
  let counts = Array.make t.cols 0 in
  Array.iter (fun r -> Bitvec.iter_set (fun c -> counts.(c) <- counts.(c) + 1) r) t.data;
  counts

(* Highest row index with bit [c] set, or [-1]. *)
let last_row_with t c =
  let rec go r = if r < 0 then -1 else if Bitvec.get t.data.(r) c then r else go (r - 1) in
  go (t.rows - 1)

let copy t = { t with data = Array.map Bitvec.copy t.data }
