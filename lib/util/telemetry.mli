(** Span tracing, engine counters and per-domain utilization metrics.

    A telemetry handle follows the same ownership rule as {!Budget} and
    {!Domain_pool}: the top-level driver creates it, threads it downward
    as [?tel : t option], and drains it when the run is over.  Library
    code only records into it.

    Every recording operation takes the handle as an [option] and is a
    no-op — one branch, no lock, no clock read — when the handle is
    [None], so instrumentation never costs anything when disabled and
    never influences results (enabled, it only reads the clock and
    appends to per-domain buffers).

    Each domain writes its own buffer (found via domain-local storage),
    so recording is safe from any domain without synchronisation;
    {!drain} merges the buffers into an immutable {!snapshot} and resets
    them.  Call it from the driver when no pool job is in flight. *)

type t

val create : unit -> t

(** [Unix.gettimeofday] at handle creation; every event timestamp is
    relative to it.  Lets a supervisor re-base spans shipped by worker
    processes (whose handles have their own origins) onto one timeline. *)
val origin : t -> float

(** {1 Counters}

    Monotonic event counters, merged across domains on {!drain}.  Bump
    them at fault-group / chunk granularity, not per simulated cycle. *)

type counter =
  | Faults_simulated  (** fault lanes swept by a fault-simulation kernel *)
  | Good_cycles  (** fault-free engine evaluations (one per time unit) *)
  | Faulty_cycles  (** faulty-machine engine evaluations (group x cycle) *)
  | Fault_detections  (** (fault, test) detection events observed *)
  | Podem_decisions  (** PODEM decision-loop rounds *)
  | Podem_backtracks
  | Podem_aborts
  | Podem_redundant
  | Podem_tests
  | Budget_polls  (** budget poll points reached by instrumented kernels *)
  | Checkpoint_writes
  | Checkpoint_write_failures  (** failed checkpoint write attempts *)
  | Checkpoint_recoveries  (** checkpoint loads that fell back to a rotated copy *)
  | Chaos_injections  (** faults injected by an armed {!Chaos} handle *)
  | Pool_tasks  (** pool tasks claimed (parallel jobs only) *)
  | Tgen_candidates  (** candidate segments scored by a T0 generator *)
  | Tgen_commits  (** candidate segments committed *)
  | Trace_cache_hits  (** good-machine trace cache hits *)
  | Trace_cache_misses  (** good-machine trace cache misses (trace computed) *)
  | Cone_gates_evaluated  (** gates evaluated by the levelized cone kernel *)
  | Jobs_submitted  (** jobs accepted by the serving scheduler *)
  | Jobs_completed  (** served jobs that ran to a Complete result *)
  | Jobs_partial  (** served jobs returned Partial (deadline/cancel) *)
  | Jobs_failed  (** served jobs rejected or failed during execution *)
  | Jobs_resumed  (** served jobs that resumed from a checkpoint *)
  | Result_cache_hits  (** served submissions answered from the result cache *)
  | Result_cache_misses  (** served submissions that had to compute *)
  | Worker_restarts  (** worker processes restarted by the supervisor *)
  | Jobs_requeued  (** in-flight jobs requeued after a worker crash *)
  | Worker_crashes  (** worker exits the supervisor classed as crashes *)
  | Result_cache_persisted_hits
      (** result-cache hits served from the on-disk store *)
  | Log_write_failures
      (** event-log lines dropped because the sink could not be written *)
  | Jobs_shed  (** queued jobs dropped because their deadline already expired *)
  | Jobs_rejected_overload
      (** submissions refused at admission because a queue cap was hit *)
  | Router_failovers  (** router submits re-hashed to the next live shard *)
  | Router_markdowns  (** backends the router marked down after a failure *)
  | Router_markups  (** marked-down backends the router restored to service *)

val counter_name : counter -> string

(** The full counter catalogue, in snapshot order. *)
val all_counters : counter list

(** [add tel c n] adds [n] to counter [c] on the calling domain's buffer;
    no-op when [tel] is [None]. *)
val add : t option -> counter -> int -> unit

val incr : t option -> counter -> unit

(** {1 Spans} *)

(** [span tel ?args name f] runs [f ()] bracketed by a begin/end pair on
    the calling domain's track; the end event is recorded even when [f]
    raises.  [args] become the trace event's arguments.  When [tel] is
    [None] this is exactly [f ()]. *)
val span : t option -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a

(** The span name {!Domain_pool} records around each claimed task;
    {!pool_loads} keys on it. *)
val pool_task_name : string

(** {1 Snapshots} *)

type event =
  | Begin of { name : string; ts : float; args : (string * string) list }
  | End of { name : string; ts : float }

type track = { dom : int; events : event list (* chronological *) }

type snapshot = {
  duration : float; (* seconds from handle creation to the drain *)
  counters : (string * int) list; (* full catalogue, merged across domains *)
  tracks : track list; (* sorted by domain id *)
}

(** Merge every domain's buffer into a snapshot and reset the buffers.
    Call when no pool job is in flight. *)
val drain : t -> snapshot

(** Value of a counter by {!counter_name} (0 when absent). *)
val counter_value : snapshot -> string -> int

(** {1 Derived metrics} *)

type span_record = {
  s_name : string;
  s_dom : int;
  s_begin : float;
  s_end : float;
  s_depth : int; (* nesting depth within its track, 0 = outermost *)
  s_args : (string * string) list;
  s_shadowed : bool; (* an enclosing span on this track has the same name *)
}

(** Paired spans of every track, in begin order per track. *)
val spans : snapshot -> span_record list

(** Every track brackets properly: no end without a begin, nothing left
    open. *)
val balanced : snapshot -> bool

type span_total = { t_name : string; t_seconds : float; t_count : int }

(** Wall seconds and occurrence count per span name (spans shadowed by a
    same-named ancestor are excluded, so recursion cannot double-count). *)
val span_totals : snapshot -> span_total list

val span_seconds : snapshot -> string -> float

type load = {
  l_dom : int;
  l_tasks : int; (* pool tasks claimed by this domain *)
  l_busy : float; (* seconds inside task spans *)
  l_util : float; (* busy seconds / parallel-window duration *)
}

(** Per-domain utilization computed from {!pool_task_name} spans over the
    parallel window (first task claim to last task completion).  Empty
    when the run never dispatched a parallel job. *)
val pool_loads : snapshot -> load list

(** Busiest domain's busy seconds over the mean — 1.0 is perfect balance;
    1.0 also for empty/idle load lists. *)
val imbalance : load list -> float

(** {1 Export} *)

(** The snapshot as a Chrome trace-event JSON document (one track per
    domain; loads in Perfetto and chrome://tracing). *)
val trace_json : snapshot -> Json.t

(** [stitched_trace_json [(pid, name, tracks); ...]] is one trace
    document spanning several processes — a supervisor plus its workers —
    each rendered as a Perfetto process with one thread per domain track.
    All timestamps must already be on one timeline (see {!origin}). *)
val stitched_trace_json : (int * string * track list) list -> Json.t

(** [trace_json] written compactly to a file. *)
val write_trace : string -> snapshot -> unit

(** Span names {!metrics_json} reports under ["phases"]. *)
val phase_names : string list

(** The run-summary metrics object: wall seconds, per-phase seconds,
    counters, per-domain utilization, imbalance. *)
val metrics_json : snapshot -> Json.t
