(** CRC-32 (IEEE 802.3) checksums, used by the checkpoint format's
    integrity trailer.  Detects all single-bit errors and all bursts up to
    32 bits — the corruption class of torn or bit-rotted files. *)

(** [crc32 s] is the CRC-32 of [s] as a non-negative int in [0, 2^32). *)
val crc32 : string -> int

(** Fixed-width (8 hex digit, zero-padded) rendering, and its inverse.
    [of_hex] returns [None] unless the input is exactly 8 hex digits. *)
val to_hex : int -> string

val of_hex : string -> int option
