(* Deterministic SplitMix64 pseudo-random number generator.

   All stochastic choices in the library (synthetic circuit generation,
   random fill of unspecified ATPG inputs, random test sequences) go through
   this module so that every experiment is reproducible bit-for-bit from a
   seed.  The 64-bit arithmetic uses [Int64]; derived values are folded into
   OCaml's native 63-bit [int] range. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

(* FNV-1a over the bytes of [s], used to derive per-name streams. *)
let hash_string s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    s;
  !h

let of_name ~seed name =
  let t = { state = Int64.logxor (Int64.of_int seed) (hash_string name) } in
  (* Warm up so that nearby seeds diverge immediately. *)
  ignore (next_int64 t);
  t

let split t = { state = next_int64 t }

let copy t = { state = t.state }

(* A non-negative 62-bit value. *)
let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let limit = (max_int / bound) * bound in
  let rec go () =
    let v = bits t in
    if v < limit then v mod bound else go ()
  in
  go ()

let bool t = Int64.logand (next_int64 t) 1L = 1L

let float t =
  (* 53 random bits mapped to [0, 1). *)
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int v /. 9007199254740992.0

(* Pick an index in [0, n) with weights [w]; [w] must be non-empty with a
   positive total. *)
let weighted t w =
  let total = Array.fold_left ( + ) 0 w in
  if total <= 0 then invalid_arg "Rng.weighted: non-positive total weight";
  let x = int t total in
  let rec go i acc =
    let acc = acc + w.(i) in
    if x < acc then i else go (i + 1) acc
  in
  go 0 0

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let word t ~width =
  if width < 0 || width > 62 then invalid_arg "Rng.word: width out of range";
  if width = 0 then 0
  else Int64.to_int (Int64.shift_right_logical (next_int64 t) (64 - width))

let bool_array t n = Array.init n (fun _ -> bool t)
