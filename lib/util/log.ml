(* Structured event log: line-delimited JSON with size-based rotation.

   A log handle follows the [?tel]/[?chaos] ownership rule: the top-level
   driver creates it (from --log-file) and threads it downward as
   [?log : t option]; library code only emits into it, and the disabled
   handle costs one branch per site.

   Events are one JSON object per line — timestamp, level, event name,
   optional job key, free-form extra fields — so the file is greppable
   and `python -c "json.loads(line)"`-checkable (the CI scrape-smoke job
   does exactly that).  Rotation reuses the checkpoint idiom
   (docs/ROBUSTNESS.md): when a write would push the file past
   [max_bytes], existing copies are promoted <file>.(k) -> <file>.(k+1)
   by atomic renames and the log reopens a fresh <file>.

   Observability must never take the service down: any write failure (a
   full disk, a closed fd, an injected [log.write] chaos Fail) degrades
   the handle — one warning on stderr, every subsequent event dropped and
   counted in the [log_write_failures] telemetry counter — and never
   raises into the select loop.  Only [Chaos.Killed] (a simulated hard
   crash) propagates. *)

type level = Debug | Info | Warn | Error

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" -> Some Warn
  | "error" -> Some Error
  | _ -> None

(* --- Event codec -------------------------------------------------------- *)

type event = {
  ev_ts : float; (* Unix.gettimeofday *)
  ev_level : level;
  ev_event : string; (* e.g. "job.completed", "worker.crash" *)
  ev_job : string option; (* content-hash job key, when job-scoped *)
  ev_fields : (string * Json.t) list; (* extra members, event-specific *)
}

let reserved = [ "ts"; "level"; "event"; "job" ]

let event_to_json e =
  [
    ("ts", Json.Float e.ev_ts);
    ("level", Json.Str (level_name e.ev_level));
    ("event", Json.Str e.ev_event);
  ]
  @ (match e.ev_job with None -> [] | Some k -> [ ("job", Json.Str k) ])
  @ List.filter (fun (k, _) -> not (List.mem k reserved)) e.ev_fields
  |> fun members -> Json.Obj members

let event_of_json json =
  let ( let* ) r f = Result.bind r f in
  let str name =
    match Option.bind (Json.member name json) Json.as_str with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "event lacks string %S" name)
  in
  let* ts =
    match Option.bind (Json.member "ts" json) Json.as_float with
    | Some t -> Ok t
    | None -> Error "event lacks float \"ts\""
  in
  let* level_s = str "level" in
  let* level =
    match level_of_string level_s with
    | Some l -> Ok l
    | None -> Error (Printf.sprintf "unknown level %S" level_s)
  in
  let* name = str "event" in
  let job = Option.bind (Json.member "job" json) Json.as_str in
  let* members =
    match Json.as_obj json with
    | Some m -> Ok m
    | None -> Error "event is not an object"
  in
  let fields = List.filter (fun (k, _) -> not (List.mem k reserved)) members in
  Ok { ev_ts = ts; ev_level = level; ev_event = name; ev_job = job; ev_fields = fields }

(* --- Handle ------------------------------------------------------------- *)

type t = {
  path : string;
  threshold : level;
  max_bytes : int;
  keep : int;
  tel : Telemetry.t option;
  chaos : Chaos.t option;
  mutable oc : out_channel option; (* None once degraded *)
  mutable size : int; (* bytes written to the current file *)
  mutable failures : int; (* events dropped after a write failure *)
}

let create ?(level = Info) ?(max_bytes = 8 * 1024 * 1024) ?(keep = 2) ?tel
    ?chaos path =
  if max_bytes <= 0 then invalid_arg "Log.create: max_bytes must be positive";
  if keep < 1 then invalid_arg "Log.create: keep must be >= 1";
  match open_out_gen [ Open_append; Open_creat ] 0o644 path with
  | oc ->
      {
        path;
        threshold = level;
        max_bytes;
        keep;
        tel;
        chaos;
        oc = Some oc;
        size = out_channel_length oc;
        failures = 0;
      }
  | exception Sys_error m ->
      Printf.eprintf "asc: event log %s: %s; events will be dropped\n%!" path m;
      Telemetry.incr tel Telemetry.Log_write_failures;
      {
        path;
        threshold = level;
        max_bytes;
        keep;
        tel;
        chaos;
        oc = None;
        size = 0;
        failures = 1;
      }

let write_failures t = t.failures

let enabled log lvl =
  match log with
  | None -> false
  | Some t -> t.oc <> None && level_rank lvl >= level_rank t.threshold

(* Promote existing copies one suffix up, then reopen a fresh file — the
   checkpoint writer's rotation, minus its chaos points (the log has its
   own single [log.write] point at the emit site). *)
let rotate t oc =
  close_out oc;
  if t.keep > 1 then begin
    for k = t.keep - 2 downto 1 do
      let src = Printf.sprintf "%s.%d" t.path k in
      if Sys.file_exists src then
        Sys.rename src (Printf.sprintf "%s.%d" t.path (k + 1))
    done;
    Sys.rename t.path (t.path ^ ".1")
  end
  else Sys.remove t.path;
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 t.path in
  t.oc <- Some oc;
  t.size <- 0;
  oc

let degrade t reason =
  (match t.oc with
  | Some oc -> (
      t.oc <- None;
      try close_out oc with Sys_error _ -> ())
  | None -> ());
  Printf.eprintf "asc: event log %s: %s; dropping further events\n%!" t.path
    reason

let drop t =
  t.failures <- t.failures + 1;
  Telemetry.incr t.tel Telemetry.Log_write_failures

let emit ?(level = Info) ?job ?(fields = []) log name =
  match log with
  | None -> ()
  | Some t when level_rank level < level_rank t.threshold -> ()
  | Some t -> (
      match t.oc with
      | None -> drop t
      | Some oc -> (
          let e =
            {
              ev_ts = Unix.gettimeofday ();
              ev_level = level;
              ev_event = name;
              ev_job = job;
              ev_fields = fields;
            }
          in
          let line = Json.to_string ~compact:true (event_to_json e) ^ "\n" in
          match
            Chaos.hit t.chaos Chaos.log_write;
            let oc =
              if t.size + String.length line > t.max_bytes && t.size > 0 then
                rotate t oc
              else oc
            in
            output_string oc line;
            flush oc
          with
          | () -> t.size <- t.size + String.length line
          | exception (Chaos.Killed _ as e) -> raise e
          | exception Sys_error m ->
              degrade t m;
              drop t
          | exception Unix.Unix_error (err, _, _) ->
              degrade t (Unix.error_message err);
              drop t))

let close log =
  match log with
  | None -> ()
  | Some t -> (
      match t.oc with
      | None -> ()
      | Some oc -> (
          t.oc <- None;
          try close_out oc with Sys_error _ -> ()))
