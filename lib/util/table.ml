(* Plain-text table rendering in the visual style of the paper's tables:
   a caption, an optional two-level header, and aligned columns. *)

type align = Left | Right

type column = { title : string; align : align }

let column ?(align = Right) title = { title; align }

let left title = { title; align = Left }
let right title = { title; align = Right }

type t = {
  caption : string;
  (* Optional group header: (label, span) pairs covering all columns. *)
  groups : (string * int) list option;
  columns : column array;
  mutable rows : string array list; (* reversed *)
}

let create ?groups ~caption columns =
  (match groups with
  | Some g ->
      let span = List.fold_left (fun acc (_, n) -> acc + n) 0 g in
      if span <> List.length columns then invalid_arg "Table.create: group span mismatch"
  | None -> ());
  { caption; groups; columns = Array.of_list columns; rows = [] }

let add_row t cells =
  let cells = Array.of_list cells in
  if Array.length cells <> Array.length t.columns then
    invalid_arg "Table.add_row: cell count mismatch";
  t.rows <- cells :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let render t =
  let rows = List.rev t.rows in
  let ncols = Array.length t.columns in
  let widths = Array.map (fun c -> String.length c.title) t.columns in
  List.iter
    (fun row ->
      Array.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    rows;
  (* Widen group spans that are narrower than their label (extra width
     goes to the group's last column). *)
  (match t.groups with
  | None -> ()
  | Some groups ->
      let col = ref 0 in
      List.iter
        (fun (label, span) ->
          let w = ref 0 in
          for i = !col to !col + span - 1 do
            w := !w + widths.(i);
            if i > !col then w := !w + 2
          done;
          if String.length label > !w then
            widths.(!col + span - 1) <-
              widths.(!col + span - 1) + (String.length label - !w);
          col := !col + span)
        groups);
  let buf = Buffer.create 1024 in
  let emit_row cells =
    Array.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad t.columns.(i).align widths.(i) cell))
      cells;
    Buffer.add_char buf '\n'
  in
  let total_width = Array.fold_left ( + ) 0 widths + (2 * (ncols - 1)) in
  Buffer.add_string buf t.caption;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (String.make total_width '=');
  Buffer.add_char buf '\n';
  (match t.groups with
  | None -> ()
  | Some groups ->
      (* Render group labels centred over their spanned columns. *)
      let col = ref 0 in
      List.iter
        (fun (label, span) ->
          if !col > 0 then Buffer.add_string buf "  ";
          let w = ref 0 in
          for i = !col to !col + span - 1 do
            w := !w + widths.(i);
            if i > !col then w := !w + 2
          done;
          let label = if String.length label > !w then String.sub label 0 !w else label in
          let pad_total = !w - String.length label in
          let lpad = pad_total / 2 in
          Buffer.add_string buf (String.make lpad ' ');
          Buffer.add_string buf label;
          Buffer.add_string buf (String.make (pad_total - lpad) ' ');
          col := !col + span)
        groups;
      Buffer.add_char buf '\n');
  emit_row (Array.map (fun c -> c.title) t.columns);
  Buffer.add_string buf (String.make total_width '-');
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.add_string buf (String.make total_width '=');
  Buffer.add_char buf '\n';
  Buffer.contents buf

let print t = print_string (render t)
