(** Fixed-bucket latency histograms for the serving layer.

    A histogram holds log-spaced bucket upper bounds plus one overflow
    bucket, per-bucket counts, and running sum/min/max.  {!record} is
    allocation-free, so the serving loop can stamp every job's
    queue-wait, execute and end-to-end times without perturbing it.
    Histograms with identical bounds {!merge} by component-wise addition
    (associative and commutative), which is how per-worker distributions
    fold into fleet totals.

    Bounds are upper-inclusive ([v <= bound]), the Prometheus [le]
    convention; {!cumulative} gives the bucket series a text-exposition
    renderer needs. *)

type t

(** 24 powers of two from 100 µs (0.0001 s .. ~838 s). *)
val default_bounds : float array

(** [create ()] is an empty histogram over [default_bounds] (or [bounds],
    which must be strictly increasing and non-empty; the array is
    copied). *)
val create : ?bounds:float array -> unit -> t

(** Add one observation.  Allocation-free. *)
val record : t -> float -> unit

val count : t -> int

(** Sum of all observations (0.0 when empty). *)
val sum : t -> float

val min_value : t -> float option
val max_value : t -> float option

(** The bucket upper bounds (copy). *)
val bounds : t -> float array

(** Per-bucket counts (copy); one longer than {!bounds} — the last entry
    is the +Inf overflow bucket. *)
val bucket_counts : t -> int array

(** [(bound, cumulative count)] per bound, ascending; the +Inf bucket's
    cumulative count is {!count}. *)
val cumulative : t -> (float * int) array

(** Component-wise sum of two histograms with identical bounds.
    @raise Invalid_argument when the bounds differ. *)
val merge : t -> t -> t

(** [quantile t ~p] estimates the [p]-th percentile ([0 <= p <= 100], the
    {!Stats.percentile_f} convention) by linear interpolation inside the
    bucket where the cumulative count reaches the nearest rank, clamped
    to the observed min/max.  [None] when empty. *)
val quantile : t -> p:float -> float option

(** The JSON shape the [metrics] protocol op ships:
    [{"count", "sum", "le": [bounds], "buckets": [per-bucket counts]}]. *)
val to_json : t -> Json.t

(** Decode {!to_json} output (min/max are not shipped, so a decoded
    histogram merges and renders but clamps quantiles loosely). *)
val of_json : Json.t -> (t, string) result
