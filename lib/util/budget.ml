(* Wall-clock deadline plus cancellation token, shared across domains.

   A budget is a single latch: the first of {deadline passed, cancel called}
   wins and the reason sticks.  Kernels poll [check] (raises) or [exhausted]
   (returns a flag) at loop boundaries — between fault groups, PODEM
   backtracks, candidate scores, pipeline iterations — so a fired budget
   unwinds cooperatively at the next poll point rather than killing work
   mid-write.

   The clock is wall time ([Unix.gettimeofday]), not CPU time: under a
   multi-domain pool, CPU time advances [size] times faster than the clock
   the user reasons about, and a `--timeout 10` must mean ten seconds.

   [unlimited] is a shared constant used as the default everywhere; its
   [cancel] is a no-op so one caller cannot poison every other default
   user. *)

type reason = Deadline | Cancelled

exception Exhausted of reason

type t = {
  deadline : float option; (* absolute, Unix.gettimeofday scale *)
  fired : reason option Atomic.t; (* the latch; first writer wins *)
  pinned : bool; (* the shared [unlimited] constant ignores [cancel] *)
}

let unlimited = { deadline = None; fired = Atomic.make None; pinned = true }

let create ?timeout () =
  let deadline =
    match timeout with
    | None -> None
    | Some s ->
        if not (s > 0.) then
          invalid_arg (Printf.sprintf "Budget.create: timeout must be > 0 (got %g)" s);
        Some (Unix.gettimeofday () +. s)
  in
  { deadline; fired = Atomic.make None; pinned = false }

let cancel t =
  if not t.pinned then
    ignore (Atomic.compare_and_set t.fired None (Some Cancelled))

let status t =
  match Atomic.get t.fired with
  | Some _ as r -> r
  | None -> (
      match t.deadline with
      | Some d when Unix.gettimeofday () >= d ->
          (* Latch the deadline so a concurrent [cancel] cannot make two
             observers report different reasons. *)
          ignore (Atomic.compare_and_set t.fired None (Some Deadline));
          Atomic.get t.fired
      | _ -> None)

let exhausted t = status t <> None

let check t = match status t with None -> () | Some r -> raise (Exhausted r)

let reason_to_string = function
  | Deadline -> "deadline"
  | Cancelled -> "cancelled"
