(* Fixed-bucket latency histograms for the serving layer.

   A histogram is an array of log-spaced bucket upper bounds plus one
   overflow bucket, a per-bucket count array, and running sum/min/max.
   [record] is allocation-free — a linear scan over ~two dozen floats and
   three unboxed float-array stores — so the serving loop can stamp every
   job without perturbing it.  Histograms with the same bounds merge by
   component-wise addition, which is associative and commutative (QCheck
   properties in test/test_obs.ml), so the server can fold per-worker
   histograms into fleet totals exactly like it folds counters.

   Bucket bounds are upper-inclusive ([v <= bound]), matching the
   Prometheus histogram convention where cumulative bucket counts are
   published under `le` labels. *)

type t = {
  bounds : float array; (* strictly increasing bucket upper bounds *)
  counts : int array; (* length bounds + 1; last bucket is +Inf overflow *)
  scalars : float array; (* unboxed [| sum; min; max |] *)
  mutable total : int;
}

(* 24 powers of two from 100 µs: 0.0001 s .. ~838 s, then +Inf.  Wide
   enough for queue-wait through end-to-end times of any served job. *)
let default_bounds = Array.init 24 (fun i -> 1e-4 *. (2.0 ** float_of_int i))

let check_bounds bounds =
  let n = Array.length bounds in
  if n = 0 then invalid_arg "Histogram.create: empty bounds";
  for i = 1 to n - 1 do
    if bounds.(i - 1) >= bounds.(i) then
      invalid_arg "Histogram.create: bounds must be strictly increasing"
  done

let create ?(bounds = default_bounds) () =
  check_bounds bounds;
  {
    bounds = Array.copy bounds;
    counts = Array.make (Array.length bounds + 1) 0;
    scalars = [| 0.0; infinity; neg_infinity |];
    total = 0;
  }

let bucket_of t v =
  let n = Array.length t.bounds in
  let i = ref 0 in
  while !i < n && v > t.bounds.(!i) do
    incr i
  done;
  !i

let record t v =
  let i = bucket_of t v in
  t.counts.(i) <- t.counts.(i) + 1;
  t.total <- t.total + 1;
  t.scalars.(0) <- t.scalars.(0) +. v;
  if v < t.scalars.(1) then t.scalars.(1) <- v;
  if v > t.scalars.(2) then t.scalars.(2) <- v

let count t = t.total

let sum t = if t.total = 0 then 0.0 else t.scalars.(0)

let min_value t = if t.total = 0 then None else Some t.scalars.(1)

let max_value t = if t.total = 0 then None else Some t.scalars.(2)

let bounds t = Array.copy t.bounds

let bucket_counts t = Array.copy t.counts

(* Cumulative counts per Prometheus `le` bound; the caller appends the
   +Inf bucket as [count t]. *)
let cumulative t =
  let acc = ref 0 in
  Array.mapi
    (fun i bound ->
      acc := !acc + t.counts.(i);
      (bound, !acc))
    t.bounds

let same_bounds a b =
  Array.length a.bounds = Array.length b.bounds
  && Array.for_all2 (fun x y -> x = y) a.bounds b.bounds

let merge a b =
  if not (same_bounds a b) then invalid_arg "Histogram.merge: bounds differ";
  let t = create ~bounds:a.bounds () in
  Array.iteri (fun i n -> t.counts.(i) <- n + b.counts.(i)) a.counts;
  t.total <- a.total + b.total;
  if t.total > 0 then begin
    t.scalars.(0) <- sum a +. sum b;
    t.scalars.(1) <- Float.min a.scalars.(1) b.scalars.(1);
    t.scalars.(2) <- Float.max a.scalars.(2) b.scalars.(2)
  end;
  t

(* Percentile estimate (p in [0, 100], the {!Stats.percentile_f}
   convention): find the bucket where the cumulative count reaches the
   nearest rank, interpolate linearly inside it, and clamp to the
   observed [min, max].  The estimate is exact to within one bucket's
   width of the true sample percentile — the QCheck cross-check in
   test/test_obs.ml holds it to that. *)
let quantile t ~p =
  if p < 0.0 || p > 100.0 then
    invalid_arg (Printf.sprintf "Histogram.quantile: p must be in [0, 100] (got %g)" p);
  if t.total = 0 then None
  else begin
    let rank =
      Stdlib.max 1
        (Stdlib.min t.total
           (int_of_float (Float.ceil (p /. 100.0 *. float_of_int t.total))))
    in
    let n = Array.length t.bounds in
    let rec find i acc =
      if i > n then n
      else
        let acc = acc + t.counts.(i) in
        if acc >= rank then i else find (i + 1) acc
    in
    let k = find 0 0 in
    let before = ref 0 in
    for i = 0 to k - 1 do
      before := !before + t.counts.(i)
    done;
    let estimate =
      if k = n then t.scalars.(2) (* overflow bucket: best bound is the max *)
      else
        let lo = if k = 0 then 0.0 else t.bounds.(k - 1) in
        let hi = t.bounds.(k) in
        let inside = float_of_int (rank - !before) in
        let width = float_of_int t.counts.(k) in
        lo +. ((hi -. lo) *. (inside /. width))
    in
    Some (Float.max t.scalars.(1) (Float.min t.scalars.(2) estimate))
  end

(* --- JSON codec (the `histograms` section of the metrics op) ----------- *)

let to_json t =
  Json.Obj
    [
      ("count", Json.Int t.total);
      ("sum", Json.Float (sum t));
      ("le", Json.List (Array.to_list (Array.map (fun b -> Json.Float b) t.bounds)));
      ( "buckets",
        Json.List (Array.to_list (Array.map (fun n -> Json.Int n) t.counts)) );
    ]

let of_json json =
  let ( let* ) r f = Result.bind r f in
  let field name conv =
    match Option.bind (Json.member name json) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "histogram lacks %S" name)
  in
  let* total = field "count" Json.as_int in
  let* s = field "sum" Json.as_float in
  let* le = field "le" Json.as_list in
  let* buckets = field "buckets" Json.as_list in
  let* bounds =
    try
      Ok (Array.of_list (List.map (fun j -> Option.get (Json.as_float j)) le))
    with Invalid_argument _ -> Error "histogram: non-numeric bound"
  in
  let* counts =
    try
      Ok (Array.of_list (List.map (fun j -> Option.get (Json.as_int j)) buckets))
    with Invalid_argument _ -> Error "histogram: non-integer bucket"
  in
  if Array.length counts <> Array.length bounds + 1 then
    Error "histogram: bucket/bound arity mismatch"
  else begin
    match check_bounds bounds with
    | () ->
        let t = create ~bounds () in
        Array.blit counts 0 t.counts 0 (Array.length counts);
        t.total <- total;
        (* min/max are not shipped; a decoded histogram merges and renders
           but reports bound-based quantiles only. *)
        if total > 0 then begin
          t.scalars.(0) <- s;
          t.scalars.(1) <- 0.0;
          t.scalars.(2) <- infinity
        end;
        Ok t
    | exception Invalid_argument m -> Error m
  end
