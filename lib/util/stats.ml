(* Small numeric helpers for experiment reporting. *)

let mean = function
  | [] -> 0.0
  | l -> List.fold_left ( +. ) 0.0 (List.map float_of_int l) /. float_of_int (List.length l)

let min_max = function
  | [] -> invalid_arg "Stats.min_max: empty list"
  | x :: rest ->
      List.fold_left (fun (lo, hi) v -> (min lo v, max hi v)) (x, x) rest

(* Render "lo-hi" as in the paper's range columns. *)
let range_string l =
  let lo, hi = min_max l in
  Printf.sprintf "%d-%d" lo hi

(* Render a mean with two decimals as in the paper's "ave" columns. *)
let mean_string l = Printf.sprintf "%.2f" (mean l)

let median l =
  match List.sort compare l with
  | [] -> invalid_arg "Stats.median: empty list"
  | sorted ->
      let n = List.length sorted in
      let a = Array.of_list sorted in
      if n mod 2 = 1 then float_of_int a.(n / 2)
      else (float_of_int a.((n / 2) - 1) +. float_of_int a.(n / 2)) /. 2.0

let sum = List.fold_left ( + ) 0

(* Percentage with one decimal, guarding the empty denominator. *)
let percent ~num ~den = if den = 0 then 0.0 else 100.0 *. float_of_int num /. float_of_int den
