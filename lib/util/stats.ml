(* Small numeric helpers for experiment reporting. *)

let mean = function
  | [] -> 0.0
  | l -> List.fold_left ( +. ) 0.0 (List.map float_of_int l) /. float_of_int (List.length l)

let min_max = function
  | [] -> invalid_arg "Stats.min_max: empty list"
  | x :: rest ->
      List.fold_left (fun (lo, hi) v -> (min lo v, max hi v)) (x, x) rest

(* Render "lo-hi" as in the paper's range columns. *)
let range_string l =
  let lo, hi = min_max l in
  Printf.sprintf "%d-%d" lo hi

(* Render a mean with two decimals as in the paper's "ave" columns. *)
let mean_string l = Printf.sprintf "%.2f" (mean l)

let median l =
  match List.sort compare l with
  | [] -> invalid_arg "Stats.median: empty list"
  | sorted ->
      let n = List.length sorted in
      let a = Array.of_list sorted in
      if n mod 2 = 1 then float_of_int a.(n / 2)
      else (float_of_int a.((n / 2) - 1) +. float_of_int a.(n / 2)) /. 2.0

let sum = List.fold_left ( + ) 0

(* Percentage with one decimal, guarding the empty denominator. *)
let percent ~num ~den = if den = 0 then 0.0 else 100.0 *. float_of_int num /. float_of_int den

(* --- Float-list variants (utilization / imbalance reporting) ----------- *)

let sum_f = List.fold_left ( +. ) 0.0

let mean_f = function
  | [] -> 0.0
  | l -> sum_f l /. float_of_int (List.length l)

let min_max_f = function
  | [] -> invalid_arg "Stats.min_max_f: empty list"
  | x :: rest ->
      List.fold_left (fun (lo, hi) v -> (Float.min lo v, Float.max hi v)) (x, x) rest

let median_f l =
  match List.sort compare l with
  | [] -> invalid_arg "Stats.median_f: empty list"
  | sorted ->
      let a = Array.of_list sorted in
      let n = Array.length a in
      if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

(* Population standard deviation (the whole set is observed, not a
   sample). *)
let stddev_f l =
  match l with
  | [] | [ _ ] -> 0.0
  | _ ->
      let m = mean_f l in
      sqrt (mean_f (List.map (fun v -> (v -. m) ** 2.0) l))

let stddev l = stddev_f (List.map float_of_int l)

(* [percentile_f ~p l]: the p-th percentile (0 <= p <= 100) with linear
   interpolation between closest ranks, the common "linear" definition
   (numpy's default).  p = 0 is the minimum, p = 100 the maximum, p = 50
   the median. *)
let percentile_f ~p l =
  if not (p >= 0.0 && p <= 100.0) then
    invalid_arg (Printf.sprintf "Stats.percentile_f: p must be in [0, 100] (got %g)" p);
  match List.sort compare l with
  | [] -> invalid_arg "Stats.percentile_f: empty list"
  | sorted ->
      let a = Array.of_list sorted in
      let n = Array.length a in
      let rank = p /. 100.0 *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor rank) in
      let hi = int_of_float (Float.ceil rank) in
      if lo = hi then a.(lo) else a.(lo) +. ((rank -. float_of_int lo) *. (a.(hi) -. a.(lo)))

let percentile ~p l = percentile_f ~p (List.map float_of_int l)
