(* CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over strings.

   Used as the checkpoint-trailer integrity check: CRC-32 detects every
   single-bit error and every burst up to 32 bits, which is exactly the
   corruption class a torn or bit-rotted checkpoint file exhibits.  The
   value fits in 32 bits and is kept in a non-negative [int]. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let t = Lazy.force table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := t.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

let to_hex c = Printf.sprintf "%08x" c

let of_hex s =
  if String.length s <> 8 then None
  else
    match int_of_string_opt ("0x" ^ s) with
    | Some n when n >= 0 && n <= 0xFFFFFFFF -> Some n
    | _ -> None
