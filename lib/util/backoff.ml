(* Exponential backoff schedules with optional full jitter.

   One module owns every retry sleep in the repository — the client's
   reconnect loop, the supervisor's worker-respawn delays, the router's
   backend re-probe schedule — so they all share the same shape:

     delay n = min cap (base * 2^n)

   and, where a *fleet* of independent agents might retry in lockstep
   (clients stampeding a recovering server, worker slots respawning
   together), the full-jitter variant draws uniformly from
   [0, delay n] (AWS's "full jitter"), which decorrelates the herd
   while keeping the same expected-growth envelope.  Jitter draws come
   from the caller's seeded {!Rng} stream, so tests replay schedules
   exactly. *)

let delay ?(cap = 5.0) ~base n =
  if base < 0.0 then invalid_arg "Backoff.delay: negative base";
  if n < 0 then invalid_arg "Backoff.delay: negative attempt";
  (* 2^n overflows float for huge n only; min against cap first via
     exponent clamp so pathological attempt counts stay finite. *)
  let n = min n 60 in
  Float.min cap (base *. (2.0 ** float_of_int n))

let full_jitter ?cap ~rng ~base n = Rng.float rng *. delay ?cap ~base n
