(* Simulation words: 62 parallel binary lanes packed in one native [int].

   62 (rather than 63) lanes keep every word non-negative, which makes
   comparisons, popcounts and debug printing straightforward. *)

let width = 62

let mask = (1 lsl width) - 1

let zero = 0

let ones = mask

(* Number of set bits; words are guaranteed non-negative (<= 62 bits, so
   the masks below are the standard 64-bit ones truncated to OCaml's native
   int width). *)
let popcount w =
  let w = w - ((w lsr 1) land 0x1555555555555555) in
  let w = (w land 0x3333333333333333) + ((w lsr 2) land 0x3333333333333333) in
  let w = (w + (w lsr 4)) land 0x0F0F0F0F0F0F0F0F in
  (w * 0x0101010101010101) lsr 56

let get w i = (w lsr i) land 1 = 1

let set w i = w lor (1 lsl i)

let clear w i = w land lnot (1 lsl i)

(* Replicate a scalar bit across all lanes. *)
let splat b = if b then mask else 0

(* Index of the single set bit of a power of two. *)
let rec log2 b acc = if b <= 1 then acc else log2 (b lsr 1) (acc + 1)

let lowest_set w = if w = 0 then -1 else log2 (w land -w) 0

let iter_set f w =
  let rec go w =
    if w <> 0 then begin
      f (log2 (w land -w) 0);
      go (w land (w - 1))
    end
  in
  go w

let fold_set f acc w =
  let rec go acc w =
    if w = 0 then acc else go (f acc (log2 (w land -w) 0)) (w land (w - 1))
  in
  go acc w

let to_string w =
  String.init width (fun i -> if get w (width - 1 - i) then '1' else '0')
