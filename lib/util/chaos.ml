(* Deterministic fault injection for exercising failure paths.

   A chaos handle follows the same ownership rule as [?pool]/[?budget]/
   [?tel]: the top-level driver creates it (usually from the ASC_CHAOS
   environment variable) and threads it downward as [?chaos : t option];
   library code only calls [hit] at its named injection points.  The
   disabled handle ([None]) costs a single branch — no lock, no lookup,
   no allocation — so production runs pay nothing.

   Injection is by *occurrence*: every call to [hit chaos point] bumps a
   per-point counter under the handle's mutex, and a rule
   [{point; occurrence = n; action}] fires exactly when the point is
   reached for the n-th time.  Driver-side points (the checkpoint I/O
   syscalls) are reached in a deterministic order, so a schedule replays
   exactly; pool-side points ([pool.task], [pool.poll]) are reached in
   task-claim order, which varies across runs on a multi-domain pool —
   the rule still fires exactly once, but *which* task it poisons is
   scheduling-dependent (the repository's determinism guarantees are
   about results surviving such failures, not about which task fails).

   Actions model the three failure classes the robustness layer must
   survive:
   - [Fail]   — a transient I/O error: raises [Sys_error], which the
                checkpoint writer retries and the pipeline degrades on;
   - [Kill]   — a hard crash mid-operation: raises [Killed], which no
                library layer catches (cleanup handlers deliberately
                re-raise it without running), so disk state is exactly
                what a SIGKILL would leave behind;
   - [Poison] — a task failure: raises [Injected], exercising the pool's
                fail-fast drain and the submitter re-raise. *)

type action = Fail | Kill | Poison

type rule = { point : string; occurrence : int; action : action }

exception Injected of { point : string; occurrence : int }

exception Killed of { point : string; occurrence : int }

type t = {
  rules : rule list;
  counts : (string, int ref) Hashtbl.t; (* per-point occurrence counters *)
  mutex : Mutex.t; (* pool tasks hit points from any domain *)
  injected : int Atomic.t;
  tel : Telemetry.t option;
}

(* --- Injection-point catalogue (docs/ROBUSTNESS.md) -------------------- *)

let checkpoint_open = "checkpoint.open"
let checkpoint_output = "checkpoint.output"
let checkpoint_rename = "checkpoint.rename"
let checkpoint_rotate = "checkpoint.rotate"
let checkpoint_read = "checkpoint.read"
let pool_task = "pool.task"
let pool_poll = "pool.poll"
let bench_io_read = "bench_io.read"
let tset_io_read = "tset_io.read"
let serve_read = "serve.read"
let serve_write = "serve.write"
let serve_dispatch = "serve.dispatch"
let worker_fork = "worker.fork"
let worker_heartbeat = "worker.heartbeat"
let supervisor_dispatch = "supervisor.dispatch"
let log_write = "log.write"
let router_backend_read = "router.backend_read"
let router_backend_write = "router.backend_write"
let router_backend_health = "router.backend_health"

let all_points =
  [
    checkpoint_open; checkpoint_output; checkpoint_rename; checkpoint_rotate;
    checkpoint_read; pool_task; pool_poll; bench_io_read; tset_io_read;
    serve_read; serve_write; serve_dispatch; worker_fork; worker_heartbeat;
    supervisor_dispatch; log_write;
    router_backend_read; router_backend_write; router_backend_health;
  ]

let create ?tel rules =
  {
    rules;
    counts = Hashtbl.create 8;
    mutex = Mutex.create ();
    injected = Atomic.make 0;
    tel;
  }

let hit chaos point =
  match chaos with
  | None -> ()
  | Some t -> (
      Mutex.lock t.mutex;
      let r =
        match Hashtbl.find_opt t.counts point with
        | Some r -> r
        | None ->
            let r = ref 0 in
            Hashtbl.add t.counts point r;
            r
      in
      incr r;
      let n = !r in
      let rule =
        List.find_opt (fun ru -> ru.point = point && ru.occurrence = n) t.rules
      in
      Mutex.unlock t.mutex;
      match rule with
      | None -> ()
      | Some ru -> (
          Atomic.incr t.injected;
          Telemetry.incr t.tel Telemetry.Chaos_injections;
          match ru.action with
          | Fail ->
              raise
                (Sys_error
                   (Printf.sprintf "chaos: injected transient failure at %s#%d"
                      point n))
          | Kill -> raise (Killed { point; occurrence = n })
          | Poison -> raise (Injected { point; occurrence = n })))

let injections t = Atomic.get t.injected

let occurrences t point =
  Mutex.lock t.mutex;
  let n = match Hashtbl.find_opt t.counts point with Some r -> !r | None -> 0 in
  Mutex.unlock t.mutex;
  n

(* --- Schedule syntax: "point@occurrence=action[,...]" ------------------- *)

let action_to_string = function
  | Fail -> "fail"
  | Kill -> "kill"
  | Poison -> "poison"

let action_of_string = function
  | "fail" -> Some Fail
  | "kill" -> Some Kill
  | "poison" -> Some Poison
  | _ -> None

let rule_to_string r =
  Printf.sprintf "%s@%d=%s" r.point r.occurrence (action_to_string r.action)

let to_string rules = String.concat "," (List.map rule_to_string rules)

let parse_rule s =
  match String.index_opt s '@' with
  | None -> Error (Printf.sprintf "%S: expected point@occurrence=action" s)
  | Some at -> (
      let point = String.sub s 0 at in
      let rest = String.sub s (at + 1) (String.length s - at - 1) in
      match String.index_opt rest '=' with
      | None -> Error (Printf.sprintf "%S: expected point@occurrence=action" s)
      | Some eq -> (
          let occ = String.sub rest 0 eq in
          let act = String.sub rest (eq + 1) (String.length rest - eq - 1) in
          if point = "" then Error (Printf.sprintf "%S: empty point name" s)
          else
            match (int_of_string_opt occ, action_of_string act) with
            | None, _ -> Error (Printf.sprintf "%S: bad occurrence %S" s occ)
            | Some n, _ when n < 1 ->
                Error (Printf.sprintf "%S: occurrence must be >= 1" s)
            | _, None ->
                Error
                  (Printf.sprintf "%S: bad action %S (expected fail|kill|poison)"
                     s act)
            | Some occurrence, Some action -> Ok { point; occurrence; action }))

let parse s =
  let parts =
    List.filter
      (fun p -> p <> "")
      (List.map String.trim (String.split_on_char ',' s))
  in
  if parts = [] then Error "empty schedule"
  else
    List.fold_left
      (fun acc part ->
        match (acc, parse_rule part) with
        | Error _, _ -> acc
        | _, Error e -> Error e
        | Ok rules, Ok r -> Ok (r :: rules))
      (Ok []) parts
    |> Result.map List.rev

let env_var = "ASC_CHAOS"

let of_env ?tel () =
  match Sys.getenv_opt env_var with
  | None -> None
  | Some s when String.trim s = "" -> None
  | Some s -> (
      match parse s with
      | Ok rules -> Some (create ?tel rules)
      | Error msg ->
          invalid_arg (Printf.sprintf "Chaos.of_env: bad %s: %s" env_var msg))

(* Seeded random schedules for property tests: [n] rules drawn uniformly
   over the given points, occurrences in [1, max_occurrence] and the given
   action, reproducible from the seed. *)
let random_rules ~seed ~points ~max_occurrence ~action n =
  if points = [] then invalid_arg "Chaos.random_rules: no points";
  if max_occurrence < 1 then invalid_arg "Chaos.random_rules: max_occurrence < 1";
  let rng = Rng.of_name ~seed "chaos/schedule" in
  let points = Array.of_list points in
  List.init n (fun _ ->
      {
        point = points.(Rng.int rng (Array.length points));
        occurrence = 1 + Rng.int rng max_occurrence;
        action;
      })
