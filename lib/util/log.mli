(** Structured event log: line-delimited JSON with size-based rotation.

    A log handle follows the {!Telemetry}/{!Chaos} ownership rule: the
    top-level driver creates it (from [--log-file]) and threads it
    downward as [?log : t option]; library code only {!emit}s into it,
    and the disabled handle costs one branch per site.

    Observability must never take the service down: any write failure (a
    full disk, a closed fd, an injected [log.write] chaos [Fail])
    degrades the handle — one warning on stderr, subsequent events
    dropped and counted under the [log_write_failures] telemetry counter
    — and never raises into the serving loop.  Only {!Chaos.Killed}
    propagates. *)

type level = Debug | Info | Warn | Error

val level_name : level -> string
val level_of_string : string -> level option

(** {1 Events}

    One JSON object per line: [ts] (Unix seconds), [level], [event], an
    optional [job] content-hash key, then event-specific extra members.
    The schema is documented in docs/OBSERVABILITY.md. *)

type event = {
  ev_ts : float;
  ev_level : level;
  ev_event : string;
  ev_job : string option;
  ev_fields : (string * Json.t) list;
      (** extra members; reserved names (ts/level/event/job) are skipped *)
}

val event_to_json : event -> Json.t

(** Decode one logged line ({!event_to_json} round-trips — QCheck
    property in test/test_obs.ml). *)
val event_of_json : Json.t -> (event, string) result

(** {1 Handles} *)

type t

(** [create path] opens [path] for appending.  Events below [level]
    (default [Info]) are dropped.  When a write would push the file past
    [max_bytes] (default 8 MiB), copies rotate [<file>.(k)] to
    [<file>.(k+1)] up to [keep] (default 2) by atomic renames — the
    checkpoint rotation idiom.  A path that cannot be opened degrades
    the handle immediately instead of raising. *)
val create :
  ?level:level ->
  ?max_bytes:int ->
  ?keep:int ->
  ?tel:Telemetry.t ->
  ?chaos:Chaos.t ->
  string ->
  t

(** [emit log name] appends one event line; [job] and [fields] become the
    [job] member and extra members.  No-op when [log] is [None] or the
    level is below the handle's threshold; drops (and counts) when the
    handle has degraded. *)
val emit :
  ?level:level ->
  ?job:string ->
  ?fields:(string * Json.t) list ->
  t option ->
  string ->
  unit

(** Whether an {!emit} at [level] would actually write — lets callers
    skip building expensive fields. *)
val enabled : t option -> level -> bool

(** Events dropped by write failures (including the failing write). *)
val write_failures : t -> int

val close : t option -> unit
