(** Deterministic, replayable fault injection for exercising failure
    paths (docs/ROBUSTNESS.md).

    A chaos handle follows the ownership rule of {!Budget}, {!Domain_pool}
    and {!Telemetry}: the top-level driver creates it — usually from the
    [ASC_CHAOS] environment variable — and threads it downward as
    [?chaos : t option]; library code only calls {!hit} at named
    injection points.  The disabled handle ([None]) costs one branch: no
    lock, no lookup, no allocation.

    Injection is by {e occurrence}: each {!hit} bumps a per-point counter,
    and a rule [point@n=action] fires exactly when [point] is reached for
    the [n]-th time, so a schedule replays a failure at the same place
    every run.  Driver-side points (checkpoint I/O) are reached in
    deterministic order; pool-side points fire in task-claim order, so a
    poisoned occurrence lands on a scheduling-dependent task — the
    robustness guarantee under test is that {e results} survive the
    failure, not which task fails. *)

(** The three injected failure classes. *)
type action =
  | Fail  (** transient I/O error: raises [Sys_error] (retryable) *)
  | Kill
      (** hard crash: raises {!Killed}, which cleanup handlers re-raise
          without running — disk state is exactly a SIGKILL's *)
  | Poison  (** task failure: raises {!Injected} inside a pool task *)

type rule = { point : string; occurrence : int; action : action }

(** Raised by a [Poison] rule. *)
exception Injected of { point : string; occurrence : int }

(** Raised by a [Kill] rule.  Never caught by library code: it must
    propagate to the driver like a crash. *)
exception Killed of { point : string; occurrence : int }

type t

(** [create ?tel rules] arms a handle with a schedule.  [tel] gets a
    [Chaos_injections] bump per fired rule. *)
val create : ?tel:Telemetry.t -> rule list -> t

(** [hit chaos point]: bump [point]'s occurrence counter and fire the
    matching rule, if any.  [None] is a no-op.  Safe from any domain. *)
val hit : t option -> string -> unit

(** Rules fired so far. *)
val injections : t -> int

(** Times [point] has been reached (for sweeping schedules in tests). *)
val occurrences : t -> string -> int

(** {1 Injection-point catalogue} *)

val checkpoint_open : string
(** [open_out] of the checkpoint temp file. *)

val checkpoint_output : string
(** [output_string] of the serialized snapshot. *)

val checkpoint_rename : string
(** The atomic temp-file-into-place [Sys.rename]. *)

val checkpoint_rotate : string
(** Each rotation [Sys.rename] ([<file>] to [<file>.1], …). *)

val checkpoint_read : string
(** Checkpoint file reads (including each {!Checkpoint.load_latest_valid}
    probe). *)

val pool_task : string
(** Immediately before a {!Domain_pool} task body runs. *)

val pool_poll : string
(** The pool's per-task budget poll site. *)

val bench_io_read : string
(** Mid-read of a [.bench] netlist file ({!Asc_netlist.Bench_io}), after
    the file is opened. *)

val tset_io_read : string
(** Mid-read of a test-set file ({!Asc_scan.Tset_io}), after the file is
    opened. *)

val serve_read : string
(** Each complete protocol frame the server reads off a client socket,
    before it is parsed ({!Asc_core.Server}). *)

val serve_write : string
(** Each protocol response the server is about to write back. *)

val serve_dispatch : string
(** Immediately before the scheduler dispatches a queued job. *)

val worker_fork : string
(** In the supervisor, immediately before forking a worker process
    ({!Asc_core.Supervisor}).  A [Fail] rule models a failed spawn and
    exercises the restart/backoff path. *)

val worker_heartbeat : string
(** In a worker, immediately before each idle heartbeat is written to
    the control pipe.  A [Kill] rule crashes an idle worker. *)

val supervisor_dispatch : string
(** In the supervisor, immediately before a job is handed to an idle
    worker.  A [Kill] rule here is translated by the supervisor into a
    [SIGKILL] of the chosen worker — modelling a worker crash mid-job —
    so occurrence counting stays parent-side and deterministic. *)

val log_write : string
(** Immediately before an event-log line is written ({!Asc_util.Log}).  A
    [Fail] rule models a full disk / closed fd: the log degrades (warns
    once, drops events, bumps [log_write_failures]) — it never raises
    into the serving loop. *)

val router_backend_read : string
(** In the shard router, each complete response frame read off a backend
    connection ({!Asc_core.Router}).  A [Fail] rule models a backend that
    dies mid-response: the router marks it down and fails affected
    submits over to the next live shard. *)

val router_backend_write : string
(** In the shard router, each request the router is about to forward to
    a backend.  A [Fail] rule models a refused / reset backend
    connection at dispatch time. *)

val router_backend_health : string
(** In the shard router, immediately before each health-check [ping] is
    sent.  A [Fail] rule makes the probe fail, driving the
    mark-down / backoff / mark-up machinery without touching a real
    backend. *)

val all_points : string list

(** {1 Schedules}

    Textual syntax (the [ASC_CHAOS] environment variable):
    ["point@occurrence=action"] joined with commas, e.g.
    ["checkpoint.output@2=kill,pool.task@5=poison"].  Actions are
    [fail | kill | poison]. *)

val parse : string -> (rule list, string) result

val to_string : rule list -> string

val env_var : string

(** Read and parse {!env_var}; [None] when unset or blank.  Raises
    [Invalid_argument] on a malformed schedule. *)
val of_env : ?tel:Telemetry.t -> unit -> t option

(** [random_rules ~seed ~points ~max_occurrence ~action n]: [n] rules
    drawn reproducibly from [seed] — the seeded-schedule generator used
    by the property tests. *)
val random_rules :
  seed:int ->
  points:string list ->
  max_occurrence:int ->
  action:action ->
  int ->
  rule list
