(** Minimal JSON serialization and parsing — the one escaping/printing
    path shared by every JSON producer in the tree (CLI summaries, bench
    output, trace files), plus the parser behind the serving layer's
    line-delimited protocol (docs/SERVING.md).

    Non-finite floats have no JSON spelling and are emitted as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** Render with 2-space indentation, or on one line with [~compact:true]. *)
val to_string : ?compact:bool -> t -> string

(** [to_string] plus a trailing newline, to a channel. *)
val to_channel : ?compact:bool -> out_channel -> t -> unit

(** Write to [path] (truncating), with a trailing newline. *)
val write_file : ?compact:bool -> string -> t -> unit

(** {1 Parsing}

    A number that is integral and fits in [int] parses as [Int], anything
    else numeric as [Float] — mirroring the writer, which prints integral
    floats without a point.  String escapes cover the JSON set including
    [\uXXXX] (decoded to UTF-8). *)

exception Parse_error of { pos : int; message : string }

(** Parse one complete JSON value; trailing non-whitespace is an error.
    Raises {!Parse_error}. *)
val of_string : string -> t

(** {!of_string} with the error rendered as ["at offset N: ..."]. *)
val parse : string -> (t, string) result

(** {1 Accessors} — shallow, [None] on a shape mismatch. *)

val member : string -> t -> t option

val as_str : t -> string option

val as_int : t -> int option

(** [Int] widens to [float]; everything non-numeric is [None]. *)
val as_float : t -> float option

val as_bool : t -> bool option

val as_list : t -> t list option

val as_obj : t -> (string * t) list option
