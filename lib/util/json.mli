(** Minimal JSON serialization — the one escaping/printing path shared by
    every JSON producer in the tree (CLI summaries, bench output, trace
    files).  Writer only.

    Non-finite floats have no JSON spelling and are emitted as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** Render with 2-space indentation, or on one line with [~compact:true]. *)
val to_string : ?compact:bool -> t -> string

(** [to_string] plus a trailing newline, to a channel. *)
val to_channel : ?compact:bool -> out_channel -> t -> unit

(** Write to [path] (truncating), with a trailing newline. *)
val write_file : ?compact:bool -> string -> t -> unit
