(* Telemetry: span tracing, engine counters, per-domain utilization.

   A handle is threaded through the pipeline exactly like [?pool] and
   [?budget]: created by the top-level driver, passed downward as
   [?tel : t option], never created by library code.  Every operation on
   the disabled handle ([None]) is a single branch on the option — no
   lock, no clock read, no allocation — so instrumented kernels cost
   nothing when telemetry is off, and the instrumentation itself never
   influences results (it only reads the clock and appends to buffers).

   Thread safety follows the pool's ownership rule: each domain writes
   only its own buffer (discovered through domain-local storage and
   registered under the handle's mutex on first use), and [drain] — called
   by the driver when no job is in flight — merges the per-domain buffers
   into one immutable snapshot.

   Spans are named begin/end brackets with optional string arguments,
   recorded per domain at the executing domain's clock; [write_trace]
   exports them in the Chrome trace-event JSON format (one track per
   domain), which Perfetto and chrome://tracing load directly.  Counters
   are plain monotonic integers, merged across domains on drain.

   Granularity guidance for instrumentation sites: bump counters at fault-
   group or chunk granularity (not per simulated cycle) and open spans at
   phase/chunk granularity — the clock reads are the dominant cost. *)

(* --- Counters ----------------------------------------------------------- *)

type counter =
  | Faults_simulated  (** fault lanes swept by a fault-simulation kernel *)
  | Good_cycles  (** fault-free engine evaluations (one per time unit) *)
  | Faulty_cycles  (** faulty-machine engine evaluations (group x cycle) *)
  | Fault_detections  (** detections observed (fault, test) pairs *)
  | Podem_decisions
  | Podem_backtracks
  | Podem_aborts
  | Podem_redundant
  | Podem_tests
  | Budget_polls
  | Checkpoint_writes
  | Checkpoint_write_failures  (** failed checkpoint write attempts *)
  | Checkpoint_recoveries  (** loads that fell back to a rotated copy *)
  | Chaos_injections  (** faults injected by an armed Chaos handle *)
  | Pool_tasks  (** pool tasks claimed (parallel jobs only) *)
  | Tgen_candidates  (** candidate segments scored by a T0 generator *)
  | Tgen_commits  (** candidate segments committed *)
  | Trace_cache_hits  (** good-machine trace cache hits *)
  | Trace_cache_misses  (** good-machine trace cache misses (trace computed) *)
  | Cone_gates_evaluated  (** gates evaluated by the levelized cone kernel *)
  | Jobs_submitted  (** jobs accepted by the serving scheduler *)
  | Jobs_completed  (** served jobs that ran to a Complete result *)
  | Jobs_partial  (** served jobs returned Partial (deadline/cancel) *)
  | Jobs_failed  (** served jobs rejected or failed during execution *)
  | Jobs_resumed  (** served jobs that resumed from a checkpoint *)
  | Result_cache_hits  (** served submissions answered from the result cache *)
  | Result_cache_misses  (** served submissions that had to compute *)
  | Worker_restarts  (** worker processes restarted by the supervisor *)
  | Jobs_requeued  (** in-flight jobs requeued after a worker crash *)
  | Worker_crashes  (** worker exits the supervisor classed as crashes *)
  | Result_cache_persisted_hits
      (** result-cache hits served from the on-disk store *)
  | Log_write_failures
      (** event-log lines dropped because the sink could not be written *)
  | Jobs_shed  (** queued jobs dropped because their deadline already expired *)
  | Jobs_rejected_overload
      (** submissions refused at admission because a queue cap was hit *)
  | Router_failovers  (** router submits re-hashed to the next live shard *)
  | Router_markdowns  (** backends the router marked down after a failure *)
  | Router_markups  (** marked-down backends the router restored to service *)

let counter_index = function
  | Faults_simulated -> 0
  | Good_cycles -> 1
  | Faulty_cycles -> 2
  | Fault_detections -> 3
  | Podem_decisions -> 4
  | Podem_backtracks -> 5
  | Podem_aborts -> 6
  | Podem_redundant -> 7
  | Podem_tests -> 8
  | Budget_polls -> 9
  | Checkpoint_writes -> 10
  | Checkpoint_write_failures -> 11
  | Checkpoint_recoveries -> 12
  | Chaos_injections -> 13
  | Pool_tasks -> 14
  | Tgen_candidates -> 15
  | Tgen_commits -> 16
  | Trace_cache_hits -> 17
  | Trace_cache_misses -> 18
  | Cone_gates_evaluated -> 19
  | Jobs_submitted -> 20
  | Jobs_completed -> 21
  | Jobs_partial -> 22
  | Jobs_failed -> 23
  | Jobs_resumed -> 24
  | Result_cache_hits -> 25
  | Result_cache_misses -> 26
  | Worker_restarts -> 27
  | Jobs_requeued -> 28
  | Worker_crashes -> 29
  | Result_cache_persisted_hits -> 30
  | Log_write_failures -> 31
  | Jobs_shed -> 32
  | Jobs_rejected_overload -> 33
  | Router_failovers -> 34
  | Router_markdowns -> 35
  | Router_markups -> 36

let counter_name = function
  | Faults_simulated -> "faults_simulated"
  | Good_cycles -> "good_cycles"
  | Faulty_cycles -> "faulty_cycles"
  | Fault_detections -> "fault_detections"
  | Podem_decisions -> "podem_decisions"
  | Podem_backtracks -> "podem_backtracks"
  | Podem_aborts -> "podem_aborts"
  | Podem_redundant -> "podem_redundant"
  | Podem_tests -> "podem_tests"
  | Budget_polls -> "budget_polls"
  | Checkpoint_writes -> "checkpoint_writes"
  | Checkpoint_write_failures -> "checkpoint_write_failures"
  | Checkpoint_recoveries -> "checkpoint_recoveries"
  | Chaos_injections -> "chaos_injections"
  | Pool_tasks -> "pool_tasks"
  | Tgen_candidates -> "tgen_candidates"
  | Tgen_commits -> "tgen_commits"
  | Trace_cache_hits -> "trace_cache_hits"
  | Trace_cache_misses -> "trace_cache_misses"
  | Cone_gates_evaluated -> "cone_gates_evaluated"
  | Jobs_submitted -> "jobs_submitted"
  | Jobs_completed -> "jobs_completed"
  | Jobs_partial -> "jobs_partial"
  | Jobs_failed -> "jobs_failed"
  | Jobs_resumed -> "jobs_resumed"
  | Result_cache_hits -> "result_cache_hits"
  | Result_cache_misses -> "result_cache_misses"
  | Worker_restarts -> "worker_restarts"
  | Jobs_requeued -> "jobs_requeued"
  | Worker_crashes -> "worker_crashes"
  | Result_cache_persisted_hits -> "result_cache_persisted_hits"
  | Log_write_failures -> "log_write_failures"
  | Jobs_shed -> "jobs_shed"
  | Jobs_rejected_overload -> "jobs_rejected_overload"
  | Router_failovers -> "router_failovers"
  | Router_markdowns -> "router_markdowns"
  | Router_markups -> "router_markups"

let all_counters =
  [
    Faults_simulated; Good_cycles; Faulty_cycles; Fault_detections;
    Podem_decisions; Podem_backtracks; Podem_aborts; Podem_redundant;
    Podem_tests; Budget_polls; Checkpoint_writes; Checkpoint_write_failures;
    Checkpoint_recoveries; Chaos_injections; Pool_tasks;
    Tgen_candidates; Tgen_commits;
    Trace_cache_hits; Trace_cache_misses; Cone_gates_evaluated;
    Jobs_submitted; Jobs_completed; Jobs_partial; Jobs_failed; Jobs_resumed;
    Result_cache_hits; Result_cache_misses;
    Worker_restarts; Jobs_requeued; Worker_crashes; Result_cache_persisted_hits;
    Log_write_failures;
    Jobs_shed; Jobs_rejected_overload;
    Router_failovers; Router_markdowns; Router_markups;
  ]

let n_counters = List.length all_counters

(* --- Handle and per-domain buffers -------------------------------------- *)

type event =
  | Begin of { name : string; ts : float; args : (string * string) list }
  | End of { name : string; ts : float }

type buffer = {
  dom : int;
  counts : int array; (* indexed by counter_index *)
  mutable events : event list; (* newest first *)
}

type t = {
  uid : int; (* key into each domain's handle->buffer table *)
  origin : float; (* Unix.gettimeofday at creation; event ts are relative *)
  mutex : Mutex.t; (* guards [buffers] registration and drain *)
  mutable buffers : buffer list;
}

let next_uid = Atomic.make 0

(* Domain-local registry: handle uid -> this domain's buffer.  Buffers are
   registered with the handle on first use, so drain sees every domain
   that ever recorded into the handle. *)
let dls : (int, buffer) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 4)

let create () =
  {
    uid = Atomic.fetch_and_add next_uid 1;
    origin = Unix.gettimeofday ();
    mutex = Mutex.create ();
    buffers = [];
  }

let buffer t =
  let tbl = Domain.DLS.get dls in
  match Hashtbl.find_opt tbl t.uid with
  | Some b -> b
  | None ->
      let b =
        {
          dom = (Domain.self () :> int);
          counts = Array.make n_counters 0;
          events = [];
        }
      in
      Hashtbl.add tbl t.uid b;
      Mutex.lock t.mutex;
      t.buffers <- b :: t.buffers;
      Mutex.unlock t.mutex;
      b

let now t = Unix.gettimeofday () -. t.origin

let origin t = t.origin

let add tel c n =
  match tel with
  | None -> ()
  | Some t ->
      let b = buffer t in
      let i = counter_index c in
      b.counts.(i) <- b.counts.(i) + n

let incr tel c = add tel c 1

let span tel ?(args = []) name f =
  match tel with
  | None -> f ()
  | Some t ->
      let b = buffer t in
      b.events <- Begin { name; ts = now t; args } :: b.events;
      Fun.protect
        ~finally:(fun () -> b.events <- End { name; ts = now t } :: b.events)
        f

(* The span name Domain_pool gives its task spans; pool_loads keys on it. *)
let pool_task_name = "pool:task"

(* --- Drained snapshots --------------------------------------------------- *)

type track = { dom : int; events : event list (* chronological *) }

type snapshot = {
  duration : float; (* seconds from handle creation to the drain *)
  counters : (string * int) list; (* full catalogue, merged across domains *)
  tracks : track list; (* sorted by domain id *)
}

let drain t =
  let duration = now t in
  Mutex.lock t.mutex;
  let buffers = t.buffers in
  Mutex.unlock t.mutex;
  let totals = Array.make n_counters 0 in
  let tracks =
    List.filter_map
      (fun b ->
        Array.iteri (fun i n -> totals.(i) <- totals.(i) + n) b.counts;
        Array.fill b.counts 0 n_counters 0;
        let events = List.rev b.events in
        b.events <- [];
        if events = [] then None else Some { dom = b.dom; events })
      buffers
  in
  {
    duration;
    counters =
      List.map (fun c -> (counter_name c, totals.(counter_index c))) all_counters;
    tracks = List.sort (fun a b -> compare a.dom b.dom) tracks;
  }

let counter_value snapshot name =
  match List.assoc_opt name snapshot.counters with Some n -> n | None -> 0

(* --- Derived metrics ----------------------------------------------------- *)

type span_record = {
  s_name : string;
  s_dom : int;
  s_begin : float;
  s_end : float;
  s_depth : int; (* nesting depth within its track, 0 = outermost *)
  s_args : (string * string) list;
  s_shadowed : bool; (* an enclosing span on this track has the same name *)
}

(* Pair begin/end events per track with a stack walk.  Unbalanced events
   (an End with an empty stack, or Begins left open at drain time) are
   dropped rather than guessed at. *)
let spans snapshot =
  List.concat_map
    (fun tr ->
      let stack = ref [] in
      let out = ref [] in
      List.iter
        (function
          | Begin { name; ts; args } ->
              let shadowed =
                List.exists (fun (n, _, _, _) -> n = name) !stack
              in
              stack := (name, ts, args, shadowed) :: !stack
          | End { name = _; ts } -> (
              match !stack with
              | [] -> ()
              | (name, t0, args, shadowed) :: rest ->
                  stack := rest;
                  out :=
                    {
                      s_name = name;
                      s_dom = tr.dom;
                      s_begin = t0;
                      s_end = ts;
                      s_depth = List.length rest;
                      s_args = args;
                      s_shadowed = shadowed;
                    }
                    :: !out))
        tr.events;
      List.rev !out)
    snapshot.tracks

(* Every track's begin/end events bracket properly and close by the end of
   the snapshot (spans are closure-scoped, so this only fails if a kernel
   leaked an exception past [Fun.protect]'s re-raise into a raw buffer). *)
let balanced snapshot =
  List.for_all
    (fun tr ->
      let depth = ref 0 in
      let ok = ref true in
      List.iter
        (function
          | Begin _ -> Stdlib.incr depth
          | End _ ->
              Stdlib.decr depth;
              if !depth < 0 then ok := false)
        tr.events;
      !ok && !depth = 0)
    snapshot.tracks

type span_total = { t_name : string; t_seconds : float; t_count : int }

(* Wall seconds and occurrence count per span name.  Spans shadowed by a
   same-named ancestor are excluded, so recursion cannot double-count. *)
let span_totals snapshot =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun s ->
      if not s.s_shadowed then begin
        if not (Hashtbl.mem tbl s.s_name) then order := s.s_name :: !order;
        let tot, n =
          match Hashtbl.find_opt tbl s.s_name with
          | Some x -> x
          | None -> (0.0, 0)
        in
        Hashtbl.replace tbl s.s_name (tot +. (s.s_end -. s.s_begin), n + 1)
      end)
    (spans snapshot);
  List.rev_map
    (fun name ->
      let seconds, count = Hashtbl.find tbl name in
      { t_name = name; t_seconds = seconds; t_count = count })
    !order

let span_seconds snapshot name =
  match List.find_opt (fun t -> t.t_name = name) (span_totals snapshot) with
  | Some t -> t.t_seconds
  | None -> 0.0

type load = {
  l_dom : int;
  l_tasks : int; (* pool tasks claimed by this domain *)
  l_busy : float; (* seconds inside task spans *)
  l_util : float; (* l_busy / parallel-window duration *)
}

(* Per-domain utilization over the parallel window — the interval from the
   first task claim to the last task completion across all domains.  A run
   with no pool (or no parallel job) has no task spans and an empty load
   list. *)
let pool_loads snapshot =
  let tasks =
    List.filter
      (fun s -> s.s_name = pool_task_name && not s.s_shadowed)
      (spans snapshot)
  in
  match tasks with
  | [] -> []
  | first :: _ ->
      let w0 =
        List.fold_left (fun acc s -> min acc s.s_begin) first.s_begin tasks
      in
      let w1 =
        List.fold_left (fun acc s -> max acc s.s_end) first.s_end tasks
      in
      let window = Float.max (w1 -. w0) epsilon_float in
      let tbl = Hashtbl.create 8 in
      List.iter
        (fun s ->
          let n, busy =
            match Hashtbl.find_opt tbl s.s_dom with
            | Some x -> x
            | None -> (0, 0.0)
          in
          Hashtbl.replace tbl s.s_dom (n + 1, busy +. (s.s_end -. s.s_begin)))
        tasks;
      Hashtbl.fold
        (fun dom (n, busy) acc ->
          { l_dom = dom; l_tasks = n; l_busy = busy; l_util = busy /. window }
          :: acc)
        tbl []
      |> List.sort (fun a b -> compare a.l_dom b.l_dom)

(* Imbalance ratio: busiest domain over mean busy seconds.  1.0 is perfect
   balance; 2.0 means the busiest domain carried twice the average.  Empty
   or all-idle load lists report 1.0 (nothing to balance). *)
let imbalance loads =
  match loads with
  | [] -> 1.0
  | _ ->
      let busy = List.map (fun l -> l.l_busy) loads in
      let mean =
        List.fold_left ( +. ) 0.0 busy /. float_of_int (List.length busy)
      in
      if mean <= 0.0 then 1.0
      else List.fold_left Float.max 0.0 busy /. mean

(* --- Chrome trace-event export ------------------------------------------ *)

(* µs, the trace-event time unit. *)
let us ts = ts *. 1e6

(* One trace document over any number of processes: each [(pid, name,
   tracks)] element renders as a Perfetto process with one thread per
   domain track.  Event timestamps must already share one timeline (the
   server re-bases worker events onto its own origin before stitching). *)
let stitched_trace_json processes =
  let process_events (pid, pname, tracks) =
    let process_meta =
      Json.Obj
        [
          ("name", Json.Str "process_name");
          ("ph", Json.Str "M");
          ("pid", Json.Int pid);
          ("args", Json.Obj [ ("name", Json.Str pname) ]);
        ]
    in
    let meta =
      List.map
        (fun tr ->
          Json.Obj
            [
              ("name", Json.Str "thread_name");
              ("ph", Json.Str "M");
              ("pid", Json.Int pid);
              ("tid", Json.Int tr.dom);
              ("args", Json.Obj [ ("name", Json.Str (Printf.sprintf "domain %d" tr.dom)) ]);
            ])
        tracks
    in
    let events =
      List.concat_map
        (fun tr ->
          List.map
            (function
              | Begin { name; ts; args } ->
                  Json.Obj
                    ([
                       ("name", Json.Str name);
                       ("cat", Json.Str "asc");
                       ("ph", Json.Str "B");
                       ("ts", Json.Float (us ts));
                       ("pid", Json.Int pid);
                       ("tid", Json.Int tr.dom);
                     ]
                    @
                    if args = [] then []
                    else
                      [
                        ( "args",
                          Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) args)
                        );
                      ])
              | End { name; ts } ->
                  Json.Obj
                    [
                      ("name", Json.Str name);
                      ("cat", Json.Str "asc");
                      ("ph", Json.Str "E");
                      ("ts", Json.Float (us ts));
                      ("pid", Json.Int pid);
                      ("tid", Json.Int tr.dom);
                    ])
          tr.events)
        tracks
    in
    (process_meta :: meta) @ events
  in
  Json.Obj
    [
      ("traceEvents", Json.List (List.concat_map process_events processes));
      ("displayTimeUnit", Json.Str "ms");
    ]

let trace_json snapshot = stitched_trace_json [ (1, "asc", snapshot.tracks) ]

let write_trace path snapshot = Json.write_file ~compact:true path (trace_json snapshot)

(* --- Metrics summary (the CLI's --json "metrics" object) ---------------- *)

let phase_names = [ "prepare"; "t0-generation"; "phase1+2"; "phase3"; "phase4" ]

let metrics_json snapshot =
  let totals = span_totals snapshot in
  let phase name =
    match List.find_opt (fun t -> t.t_name = name) totals with
    | Some t -> Some (name, Json.Float t.t_seconds)
    | None -> None
  in
  let loads = pool_loads snapshot in
  Json.Obj
    [
      ("wall_seconds", Json.Float snapshot.duration);
      ("phases", Json.Obj (List.filter_map phase phase_names));
      ( "iterations_seconds",
        match List.find_opt (fun t -> t.t_name = "phase1+2") totals with
        | Some t ->
            Json.Obj
              [ ("seconds", Json.Float t.t_seconds); ("count", Json.Int t.t_count) ]
        | None -> Json.Null );
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) snapshot.counters) );
      ( "domains",
        Json.List
          (List.map
             (fun l ->
               Json.Obj
                 [
                   ("domain", Json.Int l.l_dom);
                   ("tasks", Json.Int l.l_tasks);
                   ("busy_seconds", Json.Float l.l_busy);
                   ("utilization", Json.Float l.l_util);
                 ])
             loads) );
      ("imbalance", Json.Float (imbalance loads));
    ]
