(** Exponential backoff schedules with optional full jitter.

    Every retry sleep in the repository — client reconnects, supervisor
    worker respawns, router backend re-probes — draws its delay here so
    they share one shape and one test surface. *)

(** [delay ?cap ~base n] is the deterministic schedule
    [min cap (base * 2^n)] for attempt [n] (0-based).  [cap] defaults
    to 5 s.  Raises [Invalid_argument] on a negative [base] or [n]. *)
val delay : ?cap:float -> base:float -> int -> float

(** [full_jitter ?cap ~rng ~base n] is uniform in [\[0, delay n\]] —
    AWS-style "full jitter", which decorrelates fleets of agents that
    would otherwise retry in lockstep.  Deterministic given [rng]'s
    state, so seeded tests replay schedules exactly. *)
val full_jitter : ?cap:float -> rng:Rng.t -> base:float -> int -> float
