(* SCOAP-style testability estimates for the combinational core.

   [cc0]/[cc1] approximate the effort of setting a signal to 0/1 from the
   assignable inputs (primary inputs and flip-flop outputs, which full scan
   makes directly controllable).  [obs_depth] is the distance from a gate
   to the nearest observation point (a primary output or a flip-flop
   next-state input, both directly observable under full scan).  PODEM uses
   the controllabilities to pick easiest/hardest inputs during backtrace
   and the observation depth to pick D-frontier gates. *)

module Circuit = Asc_netlist.Circuit
module Gate = Asc_netlist.Gate

type t = { cc0 : int array; cc1 : int array; obs_depth : int array }

let big = 1_000_000

let saturating_add a b = min big (a + b)

let compute c =
  let n = Circuit.n_gates c in
  let cc0 = Array.make n big and cc1 = Array.make n big in
  Array.iter
    (fun g ->
      cc0.(g) <- 1;
      cc1.(g) <- 1)
    (Circuit.inputs c);
  Array.iter
    (fun g ->
      cc0.(g) <- 1;
      cc1.(g) <- 1)
    (Circuit.dffs c);
  let min_over fi cc = Array.fold_left (fun acc f -> min acc cc.(f)) big fi in
  let sum_over fi cc =
    Array.fold_left (fun acc f -> saturating_add acc cc.(f)) 0 fi
  in
  Array.iter
    (fun g ->
      let fi = Circuit.fanins c g in
      let body0, body1 =
        match Circuit.kind c g with
        | Gate.And | Gate.Nand -> (min_over fi cc0, sum_over fi cc1)
        | Gate.Or | Gate.Nor -> (sum_over fi cc0, min_over fi cc1)
        | Gate.Xor | Gate.Xnor ->
            (* Crude: parity needs all inputs set either way. *)
            let all = saturating_add (sum_over fi cc0) (sum_over fi cc1) in
            (all / 2, all / 2)
        | Gate.Not | Gate.Buf -> (cc0.(fi.(0)), cc1.(fi.(0)))
        | Gate.Const0 -> (0, big)
        | Gate.Const1 -> (big, 0)
        | Gate.Input | Gate.Dff -> assert false
      in
      let inv = Gate.inverting (Circuit.kind c g) in
      let v0 = saturating_add body0 1 and v1 = saturating_add body1 1 in
      if inv then begin
        cc0.(g) <- v1;
        cc1.(g) <- v0
      end
      else begin
        cc0.(g) <- v0;
        cc1.(g) <- v1
      end)
    (Circuit.order c);
  (* Backward BFS from observation points over fanin edges. *)
  let obs_depth = Array.make n big in
  let queue = Queue.create () in
  let enqueue g d =
    if d < obs_depth.(g) then begin
      obs_depth.(g) <- d;
      Queue.add g queue
    end
  in
  Array.iter (fun g -> enqueue g 0) (Circuit.outputs c);
  Array.iter (fun d -> enqueue (Circuit.dff_input c d) 0) (Circuit.dffs c);
  while not (Queue.is_empty queue) do
    let g = Queue.pop queue in
    if not (Gate.is_source (Circuit.kind c g)) then
      Array.iter (fun f -> enqueue f (obs_depth.(g) + 1)) (Circuit.fanins c g)
  done;
  { cc0; cc1; obs_depth }

(* Controllability of setting gate [g] to [v]. *)
let cc t g v = if v then t.cc1.(g) else t.cc0.(g)

let obs_depth t g = t.obs_depth.(g)
