(** Random primary-input sequences (the paper's "rand" T0 source). *)

(** [generate rng ~n_pis ~len] — uniform random vectors. *)
val generate : Asc_util.Rng.t -> n_pis:int -> len:int -> bool array array

(** Correlated random walk from [start], flipping each bit with
    probability [flip] per cycle. *)
val walk :
  Asc_util.Rng.t ->
  n_pis:int ->
  len:int ->
  flip:float ->
  start:bool array ->
  bool array array
