(* Random primary-input sequences.

   The paper's "rand" columns use a random input sequence of length 1000
   as the initial test sequence T0; this module produces those sequences
   (and arbitrary-length ones for tests). *)

let generate rng ~n_pis ~len =
  Array.init len (fun _ -> Asc_util.Rng.bool_array rng n_pis)

(* A correlated random walk: each vector flips each bit of its predecessor
   with probability [flip].  Sequential circuits often need correlated
   inputs to leave the reset-ish state region; the directed generator uses
   these as one of its candidate segment sources. *)
let walk rng ~n_pis ~len ~flip ~start =
  let current = Array.copy start in
  Array.init len (fun _ ->
      for i = 0 to n_pis - 1 do
        if Asc_util.Rng.float rng < flip then current.(i) <- not current.(i)
      done;
      Array.copy current)
