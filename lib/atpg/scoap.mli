(** SCOAP-style testability estimates for the combinational core (primary
    inputs and flip-flop outputs are the assignable inputs; primary outputs
    and flip-flop next-state inputs are the observation points). *)

type t

val compute : Asc_netlist.Circuit.t -> t

(** Effort estimate for setting gate [g] to value [v]. *)
val cc : t -> int -> bool -> int

(** Distance from gate [g] to the nearest observation point. *)
val obs_depth : t -> int -> int
