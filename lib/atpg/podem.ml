(* PODEM combinational ATPG over the full-scan combinational core.

   Assignable inputs are the primary inputs and the flip-flop outputs
   (directly controllable through the scan chain); observation points are
   the primary outputs and the flip-flop next-state inputs (directly
   observable through the scan chain).

   Implication is a dual-rail 3-valued forward simulation: [gv] holds the
   fault-free value of every gate, [fv] the faulty value with the target
   fault forced; values are 0, 1 or X.  A fault effect is present at a gate
   when both rails are binary and differ.  The decision loop is classic
   PODEM: excitation/propagation objective, backtrace to an unassigned
   input guided by SCOAP controllabilities, implication, and backtracking
   with a backtrack limit.  An exhausted search space proves combinational
   redundancy (untestability under full scan); exceeding the limit aborts. *)

module Circuit = Asc_netlist.Circuit
module Gate = Asc_netlist.Gate
module Fault = Asc_fault.Fault

(* Scalar 3-valued values. *)
let v0 = 0
let v1 = 1
let vx = 2

type result = Test of Cube.t | Redundant | Aborted

type t = {
  c : Circuit.t;
  scoap : Scoap.t;
  asn : int array; (* per gate: assigned value of assignable sources *)
  gv : int array;
  fv : int array;
  obs : int array; (* observation gates: PO drivers and DFF next-state inputs *)
  feeds_obs : bool array; (* gate is an observation gate *)
}

let create c =
  let n = Circuit.n_gates c in
  let obs_list = ref [] in
  let feeds_obs = Array.make n false in
  Array.iter
    (fun g ->
      if not feeds_obs.(g) then begin
        feeds_obs.(g) <- true;
        obs_list := g :: !obs_list
      end)
    (Circuit.outputs c);
  Array.iter
    (fun d ->
      let g = Circuit.dff_input c d in
      if not feeds_obs.(g) then begin
        feeds_obs.(g) <- true;
        obs_list := g :: !obs_list
      end)
    (Circuit.dffs c);
  {
    c;
    scoap = Scoap.compute c;
    asn = Array.make n vx;
    gv = Array.make n vx;
    fv = Array.make n vx;
    obs = Array.of_list !obs_list;
    feeds_obs;
  }

(* 3-valued gate body over a fanin-value accessor. *)
let eval3 kind get n =
  match (kind : Gate.kind) with
  | Gate.And | Gate.Nand ->
      let any0 = ref false and all1 = ref true in
      for i = 0 to n - 1 do
        let v = get i in
        if v = v0 then any0 := true;
        if v <> v1 then all1 := false
      done;
      let body = if !any0 then v0 else if !all1 then v1 else vx in
      if kind = Gate.And then body else if body = vx then vx else 1 - body
  | Gate.Or | Gate.Nor ->
      let any1 = ref false and all0 = ref true in
      for i = 0 to n - 1 do
        let v = get i in
        if v = v1 then any1 := true;
        if v <> v0 then all0 := false
      done;
      let body = if !any1 then v1 else if !all0 then v0 else vx in
      if kind = Gate.Or then body else if body = vx then vx else 1 - body
  | Gate.Xor | Gate.Xnor ->
      let parity = ref 0 and known = ref true in
      for i = 0 to n - 1 do
        let v = get i in
        if v = vx then known := false else parity := !parity lxor v
      done;
      if not !known then vx
      else if kind = Gate.Xor then !parity
      else 1 - !parity
  | Gate.Not -> ( match get 0 with v when v = vx -> vx | v -> 1 - v)
  | Gate.Buf -> get 0
  | Gate.Const0 -> v0
  | Gate.Const1 -> v1
  | Gate.Input | Gate.Dff -> invalid_arg "Podem.eval3: source gate"

(* Full dual-rail implication of the current input assignments under
   [fault]. *)
let imply t (fault : Fault.t) =
  let c = t.c in
  let stuck_v = if fault.stuck then v1 else v0 in
  Array.iter
    (fun g ->
      t.gv.(g) <- t.asn.(g);
      t.fv.(g) <- if fault.pin = -1 && fault.gate = g then stuck_v else t.asn.(g))
    (Circuit.inputs c);
  Array.iter
    (fun g ->
      t.gv.(g) <- t.asn.(g);
      t.fv.(g) <- if fault.pin = -1 && fault.gate = g then stuck_v else t.asn.(g))
    (Circuit.dffs c);
  Array.iter
    (fun g ->
      let fi = Circuit.fanins c g in
      let n = Array.length fi in
      let kind = Circuit.kind c g in
      t.gv.(g) <- eval3 kind (fun i -> t.gv.(fi.(i))) n;
      let faulty_get =
        if fault.gate = g && fault.pin >= 0 then fun i ->
          if i = fault.pin then stuck_v else t.fv.(fi.(i))
        else fun i -> t.fv.(fi.(i))
      in
      let fvv = eval3 kind faulty_get n in
      t.fv.(g) <- (if fault.pin = -1 && fault.gate = g then stuck_v else fvv))
    (Circuit.order c)

(* Fault effect (D or D-bar) present at gate [g]. *)
let has_d t g = t.gv.(g) <> vx && t.fv.(g) <> vx && t.gv.(g) <> t.fv.(g)

(* A DFF's D-pin fault is injected at the capture step, which the
   combinational implication never evaluates: it is detected exactly when
   the fault-free D value is the complement of the stuck value (the faulty
   capture is then wrong and the scan-out observes it). *)
let detected t (fault : Fault.t) =
  (match Circuit.kind t.c fault.gate with
  | Gate.Dff when fault.pin = 0 ->
      let din = Circuit.dff_input t.c fault.gate in
      let stuck_v = if fault.stuck then v1 else v0 in
      t.gv.(din) <> vx && t.gv.(din) <> stuck_v
  | _ -> false)
  || Array.exists (has_d t) t.obs

(* The fault-site line's fault-free value: gate output for stem faults,
   the driving gate's value for branch faults (same line). *)
let site_good t (fault : Fault.t) =
  if fault.pin = -1 then t.gv.(fault.gate)
  else t.gv.((Circuit.fanins t.c fault.gate).(fault.pin))

(* D-frontier: gates whose output still has an X on some rail while a
   fault effect sits on an input.  The faulted gate of a branch fault
   carries a virtual D input once the branch is excited. *)
let d_frontier t (fault : Fault.t) =
  let c = t.c in
  let frontier = ref [] in
  let stuck_v = if fault.stuck then v1 else v0 in
  Array.iter
    (fun g ->
      if t.gv.(g) = vx || t.fv.(g) = vx then begin
        let fi = Circuit.fanins c g in
        let has_d_input = Array.exists (has_d t) fi in
        let virtual_d =
          fault.gate = g && fault.pin >= 0
          && t.gv.(fi.(fault.pin)) <> vx
          && t.gv.(fi.(fault.pin)) <> stuck_v
        in
        if has_d_input || virtual_d then frontier := g :: !frontier
      end)
    (Circuit.order c);
  !frontier

(* Is there a path of composite-X gates from some frontier gate to an
   observation point? *)
let x_path_exists t frontier =
  let c = t.c in
  let visited = Array.make (Circuit.n_gates c) false in
  let rec go g =
    (not visited.(g))
    && begin
         visited.(g) <- true;
         (t.gv.(g) = vx || t.fv.(g) = vx)
         && (t.feeds_obs.(g) || Array.exists go (Circuit.fanouts c g))
       end
  in
  List.exists
    (fun g ->
      (* The frontier gate itself has an X output by construction. *)
      visited.(g) <- true;
      t.feeds_obs.(g) || Array.exists go (Circuit.fanouts c g))
    frontier

(* Backtrace an objective (gate, value) to an unassigned assignable input.
   Returns [None] when the objective is unreachable (constant, or no X
   input left). *)
let rec backtrace t g v =
  let c = t.c in
  match Circuit.kind c g with
  | Gate.Input | Gate.Dff -> if t.asn.(g) = vx then Some (g, v) else None
  | Gate.Const0 | Gate.Const1 -> None
  | kind ->
      if t.gv.(g) <> vx then None
      else begin
        let fi = Circuit.fanins c g in
        let u = if Gate.inverting kind then not v else v in
        let x_fanins =
          Array.to_list fi |> List.filter (fun f -> t.gv.(f) = vx)
        in
        match (kind, x_fanins) with
        | _, [] -> None
        | (Gate.Buf | Gate.Not), f :: _ -> backtrace t f u
        | (Gate.And | Gate.Nand), _ ->
            if u then
              (* All inputs must be 1: attack the hardest X input first. *)
              let f =
                List.fold_left
                  (fun best f ->
                    if Scoap.cc t.scoap f true > Scoap.cc t.scoap best true then f else best)
                  (List.hd x_fanins) x_fanins
              in
              backtrace t f true
            else
              let f =
                List.fold_left
                  (fun best f ->
                    if Scoap.cc t.scoap f false < Scoap.cc t.scoap best false then f
                    else best)
                  (List.hd x_fanins) x_fanins
              in
              backtrace t f false
        | (Gate.Or | Gate.Nor), _ ->
            if u then
              let f =
                List.fold_left
                  (fun best f ->
                    if Scoap.cc t.scoap f true < Scoap.cc t.scoap best true then f else best)
                  (List.hd x_fanins) x_fanins
              in
              backtrace t f true
            else
              let f =
                List.fold_left
                  (fun best f ->
                    if Scoap.cc t.scoap f false > Scoap.cc t.scoap best false then f
                    else best)
                  (List.hd x_fanins) x_fanins
              in
              backtrace t f false
        | (Gate.Xor | Gate.Xnor), f :: _ ->
            (* Aim the parity assuming the remaining X inputs settle to 0. *)
            let parity =
              Array.fold_left
                (fun acc fg -> if t.gv.(fg) = v1 then not acc else acc)
                false fi
            in
            backtrace t f (u <> parity)
        | (Gate.Input | Gate.Dff | Gate.Const0 | Gate.Const1), _ -> None
      end

(* The next objective: excite the fault if it is not excited, otherwise
   drive a D-frontier gate (closest to an observation point first). *)
let objective t (fault : Fault.t) =
  let stuck_v = if fault.stuck then v1 else v0 in
  let site = site_good t fault in
  if site = vx then begin
    let site_gate =
      if fault.pin = -1 then fault.gate
      else (Circuit.fanins t.c fault.gate).(fault.pin)
    in
    Some (site_gate, stuck_v = v0)
  end
  else if site = stuck_v then None (* cannot excite under current assignments *)
  else begin
    let frontier = d_frontier t fault in
    match frontier with
    | [] -> None
    | _ ->
        if not (x_path_exists t frontier) then None
        else begin
          let sorted =
            List.sort
              (fun a b -> compare (Scoap.obs_depth t.scoap a) (Scoap.obs_depth t.scoap b))
              frontier
          in
          (* First frontier gate offering a controllable X input. *)
          let rec try_gates = function
            | [] -> None
            | g :: rest -> (
                let fi = Circuit.fanins t.c g in
                let xs = Array.to_list fi |> List.filter (fun f -> t.gv.(f) = vx) in
                match xs with
                | [] -> try_gates rest
                | f :: _ -> (
                    match Gate.controlling_value (Circuit.kind t.c g) with
                    | Some cv -> Some (f, not cv)
                    | None -> Some (f, false)))
          in
          try_gates sorted
        end
  end

let cube_of t =
  let c = t.c in
  let cube = Cube.create ~n_pis:(Circuit.n_inputs c) ~n_ffs:(Circuit.n_dffs c) in
  Array.iteri
    (fun i g ->
      cube.pis.(i) <-
        (if t.asn.(g) = v0 then Cube.Zero else if t.asn.(g) = v1 then Cube.One else Cube.X))
    (Circuit.inputs c);
  Array.iteri
    (fun i g ->
      cube.state.(i) <-
        (if t.asn.(g) = v0 then Cube.Zero else if t.asn.(g) = v1 then Cube.One else Cube.X))
    (Circuit.dffs c);
  cube

(* Generate a test for [fault].  [backtrack_limit] bounds the search; an
   exhausted search space proves redundancy.  [fixed] pre-assigns input
   gates (e.g. the present state reached by a previous vector in dynamic
   compaction); the search never revisits them, so [Redundant] then only
   means "untestable under the fixed assignment".  [budget] is polled once
   per decision-loop round: a fired deadline or cancellation yields
   [Aborted] — a graceful "don't know", never a bogus [Redundant]. *)
let run ?(backtrack_limit = 200) ?(budget = Asc_util.Budget.unlimited) ?tel ?(fixed = []) t
    (fault : Fault.t) =
  Array.fill t.asn 0 (Array.length t.asn) vx;
  List.iter
    (fun (g, v) ->
      if not (Gate.is_source (Circuit.kind t.c g)) then
        invalid_arg "Podem.run: fixed assignment on a non-source gate";
      t.asn.(g) <- (if v then v1 else v0))
    fixed;
  (* Decision stack: (input gate, current value, alternative tried?). *)
  let stack = ref [] in
  let backtracks = ref 0 in
  let decisions = ref 0 in
  let polls = ref 0 in
  let result = ref None in
  imply t fault;
  (* Backtrack: flip the deepest untried decision; [false] when the search
     space is exhausted. *)
  let backtrack () =
    incr backtracks;
    let rec pop () =
      match !stack with
      | [] -> false
      | (g, v, tried) :: rest ->
          if tried then begin
            t.asn.(g) <- vx;
            stack := rest;
            pop ()
          end
          else begin
            t.asn.(g) <- 1 - v;
            stack := (g, 1 - v, true) :: rest;
            true
          end
    in
    let more = pop () in
    if more then imply t fault;
    more
  in
  (try
     while !result = None do
       incr polls;
       if Asc_util.Budget.exhausted budget then result := Some Aborted
       else if detected t fault then result := Some (Test (cube_of t))
       else begin
         match objective t fault with
         | None ->
             if !backtracks >= backtrack_limit then result := Some Aborted
             else if not (backtrack ()) then result := Some Redundant
         | Some (obj_gate, obj_value) -> (
             match backtrace t obj_gate obj_value with
             | None ->
                 if !backtracks >= backtrack_limit then result := Some Aborted
                 else if not (backtrack ()) then result := Some Redundant
             | Some (pi, pv) ->
                 incr decisions;
                 let v = if pv then v1 else v0 in
                 t.asn.(pi) <- v;
                 stack := (pi, v, false) :: !stack;
                 imply t fault)
       end
     done
   with Stack_overflow -> result := Some Aborted);
  let r = match !result with Some r -> r | None -> Aborted in
  (let module Tel = Asc_util.Telemetry in
   Tel.add tel Tel.Podem_decisions !decisions;
   Tel.add tel Tel.Podem_backtracks !backtracks;
   Tel.add tel Tel.Budget_polls !polls;
   Tel.incr tel
     (match r with
     | Test _ -> Tel.Podem_tests
     | Redundant -> Tel.Podem_redundant
     | Aborted -> Tel.Podem_aborts));
  r
