(** Partially specified test cubes (PODEM output).  [fill] randomises the
    unspecified positions into a concrete {!Asc_sim.Pattern.t}. *)

type v = Zero | One | X

type t = { pis : v array; state : v array }

val create : n_pis:int -> n_ffs:int -> t
val v_of_bool : bool -> v
val specified : v -> bool

(** Number of specified (non-X) positions. *)
val specified_count : t -> int

val fill : Asc_util.Rng.t -> t -> Asc_sim.Pattern.t
val to_string : t -> string
