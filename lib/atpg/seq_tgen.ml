(* Directed sequential test-sequence generation (the T0 of the paper).

   The paper obtains T0 from STRATEGATE [10] or PROPTEST [12]; both are
   simulation-based sequential test generators.  This module is a
   PROPTEST-style substitute: grow the sequence segment by segment, at each
   round proposing several candidate segments (uniform random and
   correlated random walks of varying flip rates), evaluating each with
   incremental 3-valued fault co-simulation from an unknown initial state,
   and committing the best candidate that detects new faults.  Segment
   length backs off upward when no candidate helps; generation stops at the
   length budget or when patience runs out.

   The result detects a large share of the faults with a sequence of a few
   hundred to ~1000 vectors — the characteristics Phase 1 relies on. *)

open Asc_util
module Circuit = Asc_netlist.Circuit
module Seq_fsim = Asc_fault.Seq_fsim

type config = {
  budget : int; (* maximum total length *)
  seg_len : int; (* initial candidate segment length *)
  max_seg_len : int;
  candidates : int; (* candidate segments per round *)
  patience : int; (* fruitless rounds (per segment length) before backing off *)
}

let default_config =
  { budget = 1000; seg_len = 8; max_seg_len = 64; candidates = 5; patience = 2 }

type result = {
  seq : bool array array;
  detected : Bitvec.t; (* no-scan detections of the full sequence *)
}

(* [budget] (wall-clock, distinct from [config.budget]'s length cap) makes
   the generator degrade gracefully: a fired budget stops the growth loop —
   unwinding out of the co-simulation kernels via [Budget.Exhausted] — and
   the sequence committed so far is returned. *)
let generate ?pool ?(budget = Budget.unlimited) ?tel ?(config = default_config) c
    ~faults ~rng =
  Telemetry.span tel "tgen:seq"
    ~args:[ ("faults", string_of_int (Array.length faults)) ]
  @@ fun () ->
  let n_pis = Circuit.n_inputs c in
  let inc = Seq_fsim.inc3_create c faults in
  let segments = ref [] in
  let last_vector = ref (Rng.bool_array rng n_pis) in
  let seg_len = ref config.seg_len in
  let fruitless = ref 0 in
  let finished = ref false in
  (try
  while not !finished do
    let remaining = config.budget - Seq_fsim.inc3_length inc in
    if remaining <= 0 || Budget.exhausted budget then finished := true
    else begin
      let len = min !seg_len remaining in
      let make_candidate k =
        if k = 0 then Random_tgen.generate rng ~n_pis ~len
        else if k = 1 then begin
          (* A held constant vector: synchronous-reset conditions and
             enable chains typically need an input pattern held over
             several cycles, which uniform noise essentially never does. *)
          let v = Rng.bool_array rng n_pis in
          Array.init len (fun _ -> Array.copy v)
        end
        else begin
          let flip = [| 0.5; 0.25; 0.1; 0.05 |].((k - 2) mod 4) in
          Random_tgen.walk rng ~n_pis ~len ~flip ~start:!last_vector
        end
      in
      let candidates = Array.init (max 1 config.candidates) make_candidate in
      Telemetry.add tel Telemetry.Tgen_candidates (Array.length candidates);
      let best = ref (-1) and best_gain = ref 0 in
      Array.iteri
        (fun k seg ->
          let gain = Seq_fsim.inc3_peek ?pool ~budget ?tel inc seg in
          if gain > !best_gain then begin
            best := k;
            best_gain := gain
          end)
        candidates;
      if !best >= 0 then begin
        let seg = candidates.(!best) in
        let (_ : int) = Seq_fsim.inc3_commit ?pool ~budget ?tel inc seg in
        Telemetry.incr tel Telemetry.Tgen_commits;
        segments := seg :: !segments;
        last_vector := seg.(Array.length seg - 1);
        fruitless := 0
      end
      else begin
        incr fruitless;
        if !fruitless >= config.patience then begin
          fruitless := 0;
          if !seg_len >= config.max_seg_len then finished := true
          else seg_len := min config.max_seg_len (2 * !seg_len)
        end
      end
    end
  done
  with Budget.Exhausted _ -> ());
  (* Guarantee a non-empty sequence even when nothing is detectable
     without scan — the compaction procedure still needs a T0 to work on. *)
  if !segments = [] then begin
    let seg = Random_tgen.generate rng ~n_pis ~len:(min config.budget config.max_seg_len) in
    (try
       let (_ : int) = Seq_fsim.inc3_commit ?pool inc seg in
       ()
     with Budget.Exhausted _ -> ());
    segments := [ seg ]
  end;
  let seq = Array.concat (List.rev !segments) in
  { seq; detected = Bitvec.copy (Seq_fsim.inc3_detected inc) }
