(** Combinational test-set generation (the compact set C of the paper).

    Random phase with fault dropping, PODEM for the remaining faults with
    random fill, then reverse-order fault-simulation compaction.  Detection
    is the full-scan combinational condition (PO or captured-state
    difference).

    The PODEM phase runs across worker domains when [pool] is given: fault
    chunks each own a private [Podem.t], random fill draws from per-fault
    streams seeded by fault id, and the greedy fortuitous-dropping pass is
    a sequential fault-index-order merge over the chunked candidates — the
    result is bit-identical for any domain count. *)

type result = {
  tests : Asc_sim.Pattern.t array;  (** The compacted test set C. *)
  detected : Asc_util.Bitvec.t;  (** Fault indices covered by [tests]. *)
  redundant : Asc_util.Bitvec.t;  (** Proven combinationally untestable. *)
  aborted : Asc_util.Bitvec.t;  (** PODEM hit its backtrack limit. *)
}

type config = {
  random_batches : int;
  random_patience : int;
  backtrack_limit : int;
  fill_tries : int;
}

val default_config : config

(** [budget] makes the generator degrade gracefully: a fired budget stops
    the random phase and makes PODEM return [Aborted] promptly, but the
    result record is still well-formed (unless a pool carrying its own
    fired budget raises {!Asc_util.Budget.Exhausted} out of a sweep).
    [tel] records a span per PODEM chunk plus decision / candidate /
    commit counters; it never affects the generated set. *)
val generate :
  ?pool:Asc_util.Domain_pool.t ->
  ?budget:Asc_util.Budget.t ->
  ?tel:Asc_util.Telemetry.t ->
  ?config:config ->
  Asc_netlist.Circuit.t ->
  faults:Asc_fault.Fault.t array ->
  rng:Asc_util.Rng.t ->
  result
