(* Combinational test-set generation: the compact test set C.

   The paper takes C from [9] ("cost-effective generation of minimal test
   sets"); any compact combinational test set with complete coverage of the
   detectable faults plays the same role.  We produce one with the standard
   flow: a random-pattern phase with fault dropping, a deterministic PODEM
   phase for the remaining faults (random fill of unspecified positions),
   and reverse-order fault-simulation compaction. *)

open Asc_util
module Circuit = Asc_netlist.Circuit
module Fault = Asc_fault.Fault
module Comb_fsim = Asc_fault.Comb_fsim
module Pattern = Asc_sim.Pattern

type result = {
  tests : Pattern.t array; (* the compacted test set C *)
  detected : Bitvec.t; (* fault indices covered by [tests] *)
  redundant : Bitvec.t; (* proven combinationally untestable *)
  aborted : Bitvec.t; (* PODEM gave up within the backtrack limit *)
}

type config = {
  random_batches : int; (* max random-phase batches of 62 patterns *)
  random_patience : int; (* stop after this many fruitless batches *)
  backtrack_limit : int;
  fill_tries : int; (* random fills simulated per PODEM cube *)
}

let default_config =
  { random_batches = 24; random_patience = 3; backtrack_limit = 200; fill_tries = 1 }

let generate ?(config = default_config) c ~faults ~rng =
  let n_faults = Array.length faults in
  let n_pis = Circuit.n_inputs c and n_ffs = Circuit.n_dffs c in
  let detected = Bitvec.create n_faults in
  let undetected () =
    Bitvec.init n_faults (fun i -> not (Bitvec.get detected i))
  in
  let kept = ref [] in
  (* Random phase: batches of 62 random patterns, keeping a batch's
     patterns only when the batch detected something new. *)
  let fruitless = ref 0 in
  let batch_index = ref 0 in
  while !batch_index < config.random_batches && !fruitless < config.random_patience do
    incr batch_index;
    let batch = Array.init Word.width (fun _ -> Pattern.random rng ~n_pis ~n_ffs) in
    let only = undetected () in
    if Bitvec.is_empty only then fruitless := config.random_patience
    else begin
      let mat = Comb_fsim.detect_matrix ~only c ~patterns:batch ~faults in
      (* Keep, within the batch, only patterns that add coverage. *)
      let added = ref false in
      Array.iteri
        (fun p _ ->
          let row = Bitmat.row mat p in
          let fresh = Bitvec.diff row detected in
          if not (Bitvec.is_empty fresh) then begin
            Bitvec.union_into ~into:detected row;
            kept := batch.(p) :: !kept;
            added := true
          end)
        batch;
      if !added then fruitless := 0 else incr fruitless
    end
  done;
  (* Deterministic phase: PODEM per remaining fault, immediate dropping. *)
  let podem = Podem.create c in
  let redundant = Bitvec.create n_faults in
  let aborted = Bitvec.create n_faults in
  for fi = 0 to n_faults - 1 do
    if not (Bitvec.get detected fi || Bitvec.get redundant fi || Bitvec.get aborted fi)
    then begin
      match Podem.run ~backtrack_limit:config.backtrack_limit podem faults.(fi) with
      | Podem.Redundant -> Bitvec.set redundant fi
      | Podem.Aborted -> Bitvec.set aborted fi
      | Podem.Test cube ->
          let best = ref None in
          for _try = 1 to max 1 config.fill_tries do
            let pattern = Cube.fill rng cube in
            let only = undetected () in
            let det = Comb_fsim.detect_union ~only c ~patterns:[| pattern |] ~faults in
            let gain = Bitvec.count det in
            match !best with
            | Some (g, _, _) when g >= gain -> ()
            | _ -> best := Some (gain, pattern, det)
          done;
          (match !best with
          | Some (_, pattern, det) ->
              kept := pattern :: !kept;
              Bitvec.union_into ~into:detected det;
              (* The cube's own target must be covered by construction;
                 random fill cannot undo the PODEM assignments. *)
              Bitvec.set detected fi
          | None -> ())
    end
  done;
  (* Reverse-order compaction: walk the tests newest-first and keep only
     those still contributing coverage. *)
  let tests = Array.of_list (List.rev !kept) in
  let mat = Comb_fsim.detect_matrix ~only:detected c ~patterns:tests ~faults in
  let still_needed = Bitvec.copy detected in
  let final = ref [] in
  for p = Array.length tests - 1 downto 0 do
    let row = Bitmat.row mat p in
    let contribution = Bitvec.inter row still_needed in
    if not (Bitvec.is_empty contribution) then begin
      Bitvec.diff_into ~into:still_needed row;
      final := tests.(p) :: !final
    end
  done;
  { tests = Array.of_list !final; detected; redundant; aborted }
