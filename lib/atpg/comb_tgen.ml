(* Combinational test-set generation: the compact test set C.

   The paper takes C from [9] ("cost-effective generation of minimal test
   sets"); any compact combinational test set with complete coverage of the
   detectable faults plays the same role.  We produce one with the standard
   flow: a random-pattern phase with fault dropping, a deterministic PODEM
   phase for the remaining faults (random fill of unspecified positions),
   and reverse-order fault-simulation compaction.

   The PODEM phase is domain-parallel (see docs/PARALLELISM.md).  Target
   faults are split into contiguous chunks; each chunk runs on a private
   [Podem.t] — PODEM is a pure function of (circuit, fault, limit), so
   chunking cannot change its answers.  Random fill draws from a per-fault
   stream derived with [Rng.of_name] from the fault's index, not from the
   shared generator, so the candidate patterns are independent of
   generation order.  Candidate detection rows are simulated in one
   parallel [detect_matrix] sweep, and the greedy cross-fault drop phase
   (fortuitous detection) then runs as a sequential merge in fault-index
   order over the merged candidates — bit-identical output for any domain
   count, including fully sequential runs. *)

open Asc_util
module Circuit = Asc_netlist.Circuit
module Fault = Asc_fault.Fault
module Comb_fsim = Asc_fault.Comb_fsim
module Pattern = Asc_sim.Pattern

type result = {
  tests : Pattern.t array; (* the compacted test set C *)
  detected : Bitvec.t; (* fault indices covered by [tests] *)
  redundant : Bitvec.t; (* proven combinationally untestable *)
  aborted : Bitvec.t; (* PODEM gave up within the backtrack limit *)
}

type config = {
  random_batches : int; (* max random-phase batches of 62 patterns *)
  random_patience : int; (* stop after this many fruitless batches *)
  backtrack_limit : int;
  fill_tries : int; (* random fills simulated per PODEM cube *)
}

let default_config =
  { random_batches = 24; random_patience = 3; backtrack_limit = 200; fill_tries = 1 }

(* Per-fault PODEM outcome, produced in parallel and consumed by the
   sequential index-order merge. *)
type candidate =
  | Cand_redundant
  | Cand_aborted
  | Cand_fills of Pattern.t array (* fill_tries concrete fills of the cube *)

(* [budget] reaches two places: the random-phase batch loop (a fired budget
   stops proposing batches) and PODEM (which returns [Aborted] promptly).
   The fault-simulation sweeps deliberately run without it, so [generate]
   still returns a well-formed (if weaker) result after the budget fires —
   the cooperative unwind happens at the caller's next poll point.  (A pool
   carrying its own fired budget raises out of [generate] instead.) *)
let generate ?pool ?(budget = Budget.unlimited) ?tel ?(config = default_config) c ~faults
    ~rng =
  Telemetry.span tel "tgen:comb"
    ~args:[ ("faults", string_of_int (Array.length faults)) ]
  @@ fun () ->
  let n_faults = Array.length faults in
  let n_pis = Circuit.n_inputs c and n_ffs = Circuit.n_dffs c in
  let detected = Bitvec.create n_faults in
  let undetected () =
    Bitvec.init n_faults (fun i -> not (Bitvec.get detected i))
  in
  let kept = ref [] in
  (* Random phase: batches of 62 random patterns, keeping a batch's
     patterns only when the batch detected something new. *)
  let fruitless = ref 0 in
  let batch_index = ref 0 in
  while
    !batch_index < config.random_batches
    && !fruitless < config.random_patience
    && not (Budget.exhausted budget)
  do
    incr batch_index;
    let batch = Array.init Word.width (fun _ -> Pattern.random rng ~n_pis ~n_ffs) in
    let only = undetected () in
    if Bitvec.is_empty only then fruitless := config.random_patience
    else begin
      let mat = Comb_fsim.detect_matrix ?pool ?tel ~only c ~patterns:batch ~faults in
      (* Keep, within the batch, only patterns that add coverage. *)
      let added = ref false in
      Array.iteri
        (fun p _ ->
          let row = Bitmat.row mat p in
          let fresh = Bitvec.diff row detected in
          if not (Bitvec.is_empty fresh) then begin
            Bitvec.union_into ~into:detected row;
            kept := batch.(p) :: !kept;
            added := true
          end)
        batch;
      if !added then fruitless := 0 else incr fruitless
    end
  done;
  (* Deterministic phase: PODEM per remaining fault.  Candidate generation
     runs in parallel chunks, each with a private Podem.t and per-fault
     fill streams; fortuitous dropping happens in the merge below. *)
  let redundant = Bitvec.create n_faults in
  let aborted = Bitvec.create n_faults in
  let remaining = undetected () in
  let todo = Array.of_list (Bitvec.to_list remaining) in
  let n_todo = Array.length todo in
  (* One base drawn from the shared stream (deterministic: the random
     phase above consumes [rng] identically for any domain count), then an
     independent stream per fault id. *)
  let fill_base = Rng.bits rng in
  let fill_rng fi = Rng.of_name ~seed:fill_base (Printf.sprintf "fill/%d" fi) in
  let cands = Array.make n_todo Cand_aborted in
  let ranges =
    Domain_pool.split ~n:n_todo ~pieces:(Domain_pool.chunk_count pool n_todo)
  in
  Domain_pool.run_opt pool (Array.length ranges) (fun ci ->
      let start, count = ranges.(ci) in
      Telemetry.span tel "podem:chunk"
        ~args:[ ("faults", string_of_int count) ]
      @@ fun () ->
      let podem = Podem.create c in
      for k = start to start + count - 1 do
        let fi = todo.(k) in
        cands.(k) <-
          (match
             Podem.run ~backtrack_limit:config.backtrack_limit ~budget ?tel podem
               faults.(fi)
           with
          | Podem.Redundant -> Cand_redundant
          | Podem.Aborted -> Cand_aborted
          | Podem.Test cube ->
              let frng = fill_rng fi in
              Cand_fills
                (Array.init (max 1 config.fill_tries) (fun _ -> Cube.fill frng cube)))
      done);
  (* One parallel sweep gives every fill its detection row over the faults
     still undetected after the random phase; intersecting a row with the
     evolving undetected set during the merge equals simulating the fill
     against that evolving set directly. *)
  let all_fills =
    Array.concat
      (Array.to_list
         (Array.map (function Cand_fills ps -> ps | _ -> [||]) cands))
  in
  Telemetry.add tel Telemetry.Tgen_candidates (Array.length all_fills);
  let fill_rows =
    Comb_fsim.detect_matrix ?pool ?tel ~only:remaining c ~patterns:all_fills ~faults
  in
  (* Sequential greedy merge in fault-index order: a fault fortuitously
     detected by an earlier accepted fill contributes nothing (its
     candidate is discarded, exactly as if PODEM had been skipped). *)
  let offset = ref 0 in
  Array.iteri
    (fun k cand ->
      let fi = todo.(k) in
      match cand with
      | Cand_redundant -> if not (Bitvec.get detected fi) then Bitvec.set redundant fi
      | Cand_aborted -> if not (Bitvec.get detected fi) then Bitvec.set aborted fi
      | Cand_fills fills ->
          let base = !offset in
          offset := base + Array.length fills;
          if not (Bitvec.get detected fi) then begin
            let best = ref None in
            Array.iteri
              (fun j pattern ->
                let row = Bitmat.row fill_rows (base + j) in
                let gain = Bitvec.count (Bitvec.diff row detected) in
                match !best with
                | Some (g, _, _) when g >= gain -> ()
                | _ -> best := Some (gain, pattern, row))
              fills;
            match !best with
            | Some (_, pattern, row) ->
                kept := pattern :: !kept;
                Bitvec.union_into ~into:detected row;
                (* The cube's own target must be covered by construction;
                   random fill cannot undo the PODEM assignments. *)
                Bitvec.set detected fi
            | None -> ()
          end)
    cands;
  (* Reverse-order compaction: walk the tests newest-first and keep only
     those still contributing coverage. *)
  let tests = Array.of_list (List.rev !kept) in
  let mat = Comb_fsim.detect_matrix ?pool ?tel ~only:detected c ~patterns:tests ~faults in
  let still_needed = Bitvec.copy detected in
  let final = ref [] in
  for p = Array.length tests - 1 downto 0 do
    let row = Bitmat.row mat p in
    let contribution = Bitvec.inter row still_needed in
    if not (Bitvec.is_empty contribution) then begin
      Bitvec.diff_into ~into:still_needed row;
      final := tests.(p) :: !final
    end
  done;
  let result = { tests = Array.of_list !final; detected; redundant; aborted } in
  Telemetry.add tel Telemetry.Tgen_commits (Array.length result.tests);
  result
