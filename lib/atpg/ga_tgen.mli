(** Genetic sequence generation in the spirit of STRATEGATE [10]:
    population of candidate segments, temporal crossover, bit mutation;
    fitness = new fault detections, tie-broken by newly visited fault-free
    states (the state-traversal pressure).  Slower per committed vector
    than {!Seq_tgen}, better at deep sequential detections. *)

type config = {
  budget : int;
  seg_len : int;
  max_seg_len : int;
  population : int;
  generations : int;
  mutation : float;  (** Per-bit flip probability. *)
  patience : int;
}

val default_config : config

type result = {
  seq : bool array array;
  detected : Asc_util.Bitvec.t;
      (** No-scan (unknown initial state) detections of the sequence. *)
}

(** [pool] parallelises the per-individual fault co-simulation across
    domains; the generated sequence is identical for any domain count.
    [budget] (wall-clock) degrades gracefully: once fired, evolution stops
    and the committed prefix is returned.  [tel] records a ["tgen:ga"]
    span plus candidate/commit counters; it never affects the sequence. *)
val generate :
  ?pool:Asc_util.Domain_pool.t ->
  ?budget:Asc_util.Budget.t ->
  ?tel:Asc_util.Telemetry.t ->
  ?config:config ->
  Asc_netlist.Circuit.t ->
  faults:Asc_fault.Fault.t array ->
  rng:Asc_util.Rng.t ->
  result
