(* Partially specified test cubes produced by PODEM.

   A cube assigns 0, 1 or X to each primary input and each present-state
   variable.  [fill] randomises the X positions to obtain a concrete
   pattern; randomised fill is the usual way unspecified ATPG inputs are
   completed and gives the fault simulator extra incidental detections. *)

type v = Zero | One | X

type t = { pis : v array; state : v array }

let create ~n_pis ~n_ffs = { pis = Array.make n_pis X; state = Array.make n_ffs X }

let v_of_bool b = if b then One else Zero

let specified = function Zero | One -> true | X -> false

let specified_count t =
  let count = Array.fold_left (fun acc v -> if specified v then acc + 1 else acc) 0 in
  count t.pis + count t.state

let fill rng t : Asc_sim.Pattern.t =
  let concretize v =
    match v with Zero -> false | One -> true | X -> Asc_util.Rng.bool rng
  in
  { pis = Array.map concretize t.pis; state = Array.map concretize t.state }

let to_string t =
  let char_of = function Zero -> '0' | One -> '1' | X -> 'x' in
  let s a = String.init (Array.length a) (fun i -> char_of a.(i)) in
  s t.state ^ "/" ^ s t.pis
