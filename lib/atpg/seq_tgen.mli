(** Directed sequential test-sequence generation — the PROPTEST-style
    substitute for the paper's T0 sources ([10], [12]).

    Grows the sequence by candidate segments evaluated with incremental
    3-valued fault co-simulation from an unknown initial state, keeping
    segments that detect new faults. *)

type config = {
  budget : int;
  seg_len : int;
  max_seg_len : int;
  candidates : int;
  patience : int;
}

val default_config : config

type result = {
  seq : bool array array;
  detected : Asc_util.Bitvec.t;
      (** Faults the full sequence detects without scan (unknown initial
          state). *)
}

(** [pool] parallelises the per-candidate fault co-simulation across
    domains; the generated sequence is identical for any domain count.
    [budget] (wall-clock, distinct from [config.budget]'s length cap)
    degrades gracefully: once fired, growth stops and the sequence
    committed so far is returned.  [tel] records a ["tgen:seq"] span plus
    candidate/commit counters; it never affects the sequence. *)
val generate :
  ?pool:Asc_util.Domain_pool.t ->
  ?budget:Asc_util.Budget.t ->
  ?tel:Asc_util.Telemetry.t ->
  ?config:config ->
  Asc_netlist.Circuit.t ->
  faults:Asc_fault.Fault.t array ->
  rng:Asc_util.Rng.t ->
  result
