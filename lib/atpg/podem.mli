(** PODEM combinational ATPG over the full-scan combinational core.

    Assignable inputs: primary inputs and flip-flop outputs.  Observation
    points: primary outputs and flip-flop next-state inputs.  Implication
    is a dual-rail 3-valued forward simulation; the decision loop is
    classic PODEM with SCOAP-guided backtrace and a backtrack limit. *)

type result =
  | Test of Cube.t  (** A (possibly partial) test cube detecting the fault. *)
  | Redundant  (** Search space exhausted: combinationally untestable. *)
  | Aborted  (** Backtrack limit exceeded, or the budget fired mid-search. *)

type t

(** Reusable ATPG context for one circuit (computes SCOAP estimates). *)
val create : Asc_netlist.Circuit.t -> t

(** Generate a test for one stuck-at fault.  [fixed] pre-assigns source
    gates (PIs / flip-flops); with it, [Redundant] only means "untestable
    under the fixed assignment".  [budget] is polled once per decision
    round; once fired the search returns {!Aborted} (never a spurious
    {!Redundant}) instead of raising.  [tel] counts decisions, backtracks,
    budget polls and the outcome (test / redundant / aborted); it never
    affects the search. *)
val run :
  ?backtrack_limit:int ->
  ?budget:Asc_util.Budget.t ->
  ?tel:Asc_util.Telemetry.t ->
  ?fixed:(int * bool) list ->
  t ->
  Asc_fault.Fault.t ->
  result
