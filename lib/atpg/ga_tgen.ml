(* Genetic sequence generation, in the spirit of STRATEGATE [10].

   STRATEGATE evolves candidate vector sequences with a genetic algorithm,
   using fault detection as fitness and dynamic state traversal to escape
   plateaus.  This module follows that shape: a population of candidate
   segments evolves through tournament selection, single-point temporal
   crossover and bit mutation; fitness is the number of newly detected
   faults (incremental 3-valued co-simulation from the committed prefix),
   with the number of newly visited fault-free states as a tie-breaker —
   the state-traversal pressure that lets the search cross detection
   plateaus.  The best individual is committed when it detects new faults
   or visits new states; otherwise patience decays and segment length
   grows.

   Compared to {!Seq_tgen} (the cheaper PROPTEST-style generator), this
   one spends more simulation per committed vector and tends to find the
   deep sequential detections; the bench's T0-quality ablation compares
   the two (and plain random) end to end. *)

open Asc_util
module Circuit = Asc_netlist.Circuit
module Seq_fsim = Asc_fault.Seq_fsim
module Engine3 = Asc_sim.Engine3

type config = {
  budget : int;
  seg_len : int;
  max_seg_len : int;
  population : int;
  generations : int;
  mutation : float; (* per-bit flip probability *)
  patience : int;
}

let default_config =
  {
    budget = 1000;
    seg_len = 10;
    max_seg_len = 40;
    population = 8;
    generations = 4;
    mutation = 0.05;
    patience = 3;
  }

type result = { seq : bool array array; detected : Bitvec.t }

(* A compact signature of the good machine's (3-valued) state. *)
let state_signature (z, o) =
  Array.fold_left
    (fun acc w -> (acc * 1000003) lxor w)
    (Array.fold_left (fun acc w -> (acc * 999983) lxor w) 17 z)
    o

(* Count the states a segment visits that are not in [visited]; the good
   engine's state is saved and restored. *)
let count_novel_states good visited segment =
  let saved = Engine3.state_words good in
  let novel = ref 0 in
  Array.iter
    (fun vec ->
      Engine3.step_binary good ~pi_words:(Array.map Word.splat vec);
      let s = state_signature (Engine3.state_words good) in
      if not (Hashtbl.mem visited s) then begin
        Hashtbl.replace visited s ();
        incr novel
      end)
    segment;
  let z, o = saved in
  Engine3.set_state_words good ~z ~o;
  !novel

(* Record the states of a committed segment permanently. *)
let commit_states good visited segment =
  Array.iter
    (fun vec ->
      Engine3.step_binary good ~pi_words:(Array.map Word.splat vec);
      Hashtbl.replace visited (state_signature (Engine3.state_words good)) ())
    segment

(* [budget] (wall-clock, distinct from [config.budget]'s length cap): a
   fired budget ends the evolution loop — unwinding out of the fitness
   co-simulation via [Budget.Exhausted] — and the committed prefix is
   returned as the sequence. *)
let generate ?pool ?(budget = Budget.unlimited) ?tel ?(config = default_config) c
    ~faults ~rng =
  Telemetry.span tel "tgen:ga"
    ~args:[ ("faults", string_of_int (Array.length faults)) ]
  @@ fun () ->
  let n_pis = Circuit.n_inputs c in
  let inc = Seq_fsim.inc3_create c faults in
  (* A fault-free mirror for state-novelty accounting. *)
  let good = Engine3.create c [] in
  Engine3.set_state_x good;
  let visited = Hashtbl.create 1024 in
  let segments = ref [] in
  let seg_len = ref config.seg_len in
  let fruitless = ref 0 in
  let finished = ref false in
  let random_individual len =
    if Rng.int rng 100 < 25 then begin
      (* Held vectors matter for reset/enable conditions. *)
      let v = Rng.bool_array rng n_pis in
      Array.init len (fun _ -> Array.copy v)
    end
    else Array.init len (fun _ -> Rng.bool_array rng n_pis)
  in
  let mutate ind =
    Array.map
      (fun vec ->
        Array.map (fun b -> if Rng.float rng < config.mutation then not b else b) vec)
      ind
  in
  let crossover a b =
    let len = Array.length a in
    let point = 1 + Rng.int rng (max 1 (len - 1)) in
    Array.init len (fun i -> Array.copy (if i < point then a.(i) else b.(i)))
  in
  (* Lexicographic fitness: detections first, novel states second.  The
     novelty count is evaluated against a throwaway copy of [visited] so
     candidates don't spoil each other. *)
  let fitness ind =
    Telemetry.incr tel Telemetry.Tgen_candidates;
    let detections = Seq_fsim.inc3_peek ?pool ~budget ?tel inc ind in
    let novelty = count_novel_states good (Hashtbl.copy visited) ind in
    (detections, novelty)
  in
  (try
  while not !finished do
    let remaining = config.budget - Seq_fsim.inc3_length inc in
    if remaining <= 0 || Budget.exhausted budget then finished := true
    else begin
      let len = min !seg_len remaining in
      let population = ref (Array.init config.population (fun _ -> random_individual len)) in
      let best = ref None in
      for _gen = 1 to config.generations do
        let scored =
          Array.map (fun ind -> (fitness ind, ind)) !population
        in
        Array.sort (fun (fa, _) (fb, _) -> compare fb fa) scored;
        (match (!best, scored.(0)) with
        | None, s -> best := Some s
        | Some (fb, _), (f, _ ) when f > fb -> best := Some scored.(0)
        | Some _, _ -> ());
        (* Elitism + offspring of the top half. *)
        let parents = Array.sub scored 0 (max 1 (config.population / 2)) in
        let offspring k =
          if k = 0 then snd scored.(0)
          else begin
            let pick () = snd parents.(Rng.int rng (Array.length parents)) in
            mutate (crossover (pick ()) (pick ()))
          end
        in
        population := Array.init config.population offspring
      done;
      match !best with
      | Some ((detections, novelty), ind) when detections > 0 || novelty > 0 ->
          let (_ : int) = Seq_fsim.inc3_commit ?pool ~budget ?tel inc ind in
          Telemetry.incr tel Telemetry.Tgen_commits;
          commit_states good visited ind;
          segments := ind :: !segments;
          if detections > 0 then fruitless := 0
          else begin
            (* Novel states only: useful, but don't wander forever. *)
            incr fruitless;
            if !fruitless >= 3 * config.patience then finished := true
          end
      | _ ->
          incr fruitless;
          if !fruitless >= config.patience then begin
            fruitless := 0;
            if !seg_len >= config.max_seg_len then finished := true
            else seg_len := min config.max_seg_len (2 * !seg_len)
          end
    end
  done
  with Budget.Exhausted _ -> ());
  if !segments = [] then begin
    let seg = random_individual (min config.budget config.seg_len) in
    (try
       let (_ : int) = Seq_fsim.inc3_commit ?pool inc seg in
       ()
     with Budget.Exhausted _ -> ());
    segments := [ seg ]
  end;
  { seq = Array.concat (List.rev !segments); detected = Bitvec.copy (Seq_fsim.inc3_detected inc) }
