(* Lane-masked value overrides: the generic fault-injection mechanism.

   An override forces a signal to [stuck] in the lanes selected by [lanes]:
   - [pin = -1]: the gate's output (after evaluation);
   - [pin = k >= 0]: the gate's [k]-th fanin as seen by this gate only
     (a fanout-branch fault); for a DFF, pin 0 is the captured D value.

   [table] indexes overrides by the gate they attach to, so the simulation
   sweep pays nothing for gates without overrides. *)

type t = { gate : int; pin : int; stuck : bool; lanes : int }

let output ~gate ~stuck ~lanes = { gate; pin = -1; stuck; lanes }
let input ~gate ~pin ~stuck ~lanes =
  if pin < 0 then invalid_arg "Override.input: negative pin";
  { gate; pin; stuck; lanes }

(* [apply o w] forces the override's lanes of word [w] to the stuck value. *)
let apply o w =
  if o.stuck then w lor o.lanes else w land lnot o.lanes

type table = {
  (* For each gate: the overrides attached to it (usually none). *)
  by_gate : t list array;
  touched : int list; (* gates with at least one override *)
}

let table n_gates overrides =
  let by_gate = Array.make n_gates [] in
  let touched = ref [] in
  List.iter
    (fun o ->
      if o.gate < 0 || o.gate >= n_gates then invalid_arg "Override.table: bad gate";
      if by_gate.(o.gate) = [] then touched := o.gate :: !touched;
      by_gate.(o.gate) <- o :: by_gate.(o.gate))
    overrides;
  { by_gate; touched = !touched }

let empty n_gates = { by_gate = Array.make n_gates []; touched = [] }

let at tbl g = tbl.by_gate.(g)

let has tbl g = tbl.by_gate.(g) <> []

let touched tbl = tbl.touched
