(** Process-wide simulation-kernel selection.

    The levelized event-driven kernel ({!Kernel}) is the default hot path;
    the interpretive sweep ({!Engine2} over [Circuit.order]) remains
    available as a bit-identical reference for equivalence testing and
    bisection.  Drivers select a kernel via {!set} (the [--sim-kernel]
    CLI flag) or the [ASC_SIM_KERNEL] environment variable; library code
    reads {!current} once per top-level fault-simulation call. *)

type which = Levelized | Reference

(** ["ASC_SIM_KERNEL"]. *)
val env_var : string

val of_string : string -> which option

val to_string : which -> string

(** Explicit selection; overrides the environment. *)
val set : which -> unit

(** The active kernel: the last {!set}, else the environment variable,
    else [Levelized].  Raises [Invalid_argument] on a malformed
    environment value. *)
val current : unit -> which
