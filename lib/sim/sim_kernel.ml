(* Process-wide simulation-kernel selection.

   The levelized event-driven kernel (Kernel) is the default; the
   interpretive sweep (Engine2 over Circuit.order) is kept as a reference
   escape hatch so equivalence suites and bisection can pin the old path.
   Selection is read once per top-level fault-simulation call, so a chunk
   never mixes kernels mid-run. *)

type which = Levelized | Reference

let env_var = "ASC_SIM_KERNEL"

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "levelized" -> Some Levelized
  | "reference" -> Some Reference
  | _ -> None

let to_string = function Levelized -> "levelized" | Reference -> "reference"

let default () =
  match Sys.getenv_opt env_var with
  | None -> Levelized
  | Some s -> (
      match of_string s with
      | Some k -> k
      | None ->
          invalid_arg
            (Printf.sprintf "%s: unknown kernel %S (expected levelized|reference)" env_var
               s))

let selected = Atomic.make None

let set k = Atomic.set selected (Some k)

let current () =
  match Atomic.get selected with Some k -> k | None -> default ()
