(** Levelized event-driven fault-simulation kernel.

    Simulates faulty machines as lane-masked *differences* against a
    precomputed fault-free trace: per cycle, the difference is seeded at
    the fault sites and diverged flip-flops and propagated level by level
    through the fanout cone only, dying out where the faulty machine
    reconverges with the good one.  All values are {!Asc_util.Word}
    bit-parallel words (62 lanes).

    The schedule comes from the circuit's flat levelized arrays
    ({!Asc_netlist.Circuit.level_order}) — ints, not closures — computed
    once per netlist and shared read-only across kernels and domains.

    Detection results are bit-identical to comparing an interpretive
    {!Engine2} faulty run against the fault-free run (the
    [--sim-kernel=reference] path); the kernel-equivalence suite pins
    this.

    A kernel instance is single-domain mutable state: create one per
    pool chunk, like {!Engine2}. *)

type t

val create : Asc_netlist.Circuit.t -> t

val circuit : t -> Asc_netlist.Circuit.t

(** Swap the injected fault set (no state-array reallocation).  Override
    application order matches {!Engine2}, so grouped fault lanes behave
    identically. *)
val set_overrides : t -> Override.t list -> unit

(** Zero all difference state: the faulty machine restarts equal to the
    good one.  Call before simulating a new fault group or test. *)
val reset : t -> unit

(** [cycle t ~gw]: settle the faulty machine's combinational difference
    against the good values [gw] of this time unit (one word per gate,
    sources included).  Only the fanout cone of the seeds is evaluated.

    [prune] masks lanes out of the propagation (they behave fault-free
    from here on).  Sound exactly when the caller no longer reads those
    lanes' differences — detection loops prune already-detected lanes,
    whose result bit is a monotonic OR; profile-style consumers must
    not prune. *)
val cycle : ?prune:int -> t -> gw:int array -> unit

(** PO difference word of the settled cycle.  Read after {!cycle},
    before {!finish_cycle}. *)
val po_diff : t -> int

(** Clock edge: capture the next-state difference (folding in DFF pin-0
    overrides against the good captured values in [gw]) and clear the
    in-cycle difference. *)
val finish_cycle : t -> gw:int array -> unit

(** {1 Byte-trace variants}

    When every lane carries the same fault-free machine (a splat trace),
    the good values of a cycle are one byte per gate, recovered as
    [(-byte) land Word.mask] on access — 8x denser than word arrays, so
    long traces stay cache-resident.  Semantics are identical to the
    word-array entry points. *)

val cycle_bits : ?prune:int -> t -> gb:Bytes.t -> unit
val finish_cycle_bits : t -> gb:Bytes.t -> unit

(** OR of all flip-flop state differences — after the final
    {!finish_cycle} this is the scan-out difference word. *)
val state_diff_word : t -> int

(** State difference of flip-flop index [i]. *)
val state_diff : t -> int -> int

(** Cone gates evaluated since the last call; returns and resets the
    counter (feeds the [Cone_gates_evaluated] telemetry counter). *)
val take_evaluated : t -> int

(** {1 Fault-free levelized sweep}

    The 62-wide good-machine kernel: a closure-free sweep over the
    levelized schedule with no override machinery at all. *)

(** [good_cycle t ~pi_words ~state ~v] evaluates one fault-free cycle
    into [v] (one word per gate, sources included). *)
val good_cycle : t -> pi_words:int array -> state:int array -> v:int array -> unit

(** [good_capture t ~v ~state] clocks the fault-free machine:
    [state.(i) <- v.(dff_input i)]. *)
val good_capture : t -> v:int array -> state:int array -> unit
