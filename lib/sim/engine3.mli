(** Bit-parallel 3-valued (0/1/X) simulation engine.

    Each signal is a pair of words [(z, o)]: lane set in [z] means known-0,
    in [o] means known-1, in neither means X.  Used for simulation from an
    unknown initial state ("without scan"). *)

type t

val create : Asc_netlist.Circuit.t -> Override.t list -> t
val circuit : t -> Asc_netlist.Circuit.t

(** Swap the injected override set, reusing the machine's arrays. *)
val set_overrides : t -> Override.t list -> unit

(** All flip-flops to X (unknown initial state). *)
val set_state_x : t -> unit

(** Scalar binary state replicated across lanes. *)
val set_state_bools : t -> bool array -> unit

val set_state_words : t -> z:int array -> o:int array -> unit
val state_word : t -> int -> int * int
val state_words : t -> int array * int array

(** Evaluate with 3-valued PI words. *)
val eval : t -> pi_z:int array -> pi_o:int array -> unit

(** Evaluate with binary PI words (each lane fully specified). *)
val eval_binary : t -> pi_words:int array -> unit

val value : t -> int -> int * int
val po_word : t -> int -> int * int
val next_state_word : t -> int -> int * int
val capture : t -> unit

(** [eval_binary] followed by [capture]. *)
val step_binary : t -> pi_words:int array -> unit
