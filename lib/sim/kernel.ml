(* Levelized event-driven fault-simulation kernel.

   The interpretive engines re-evaluate every gate every cycle.  This
   kernel instead simulates a faulty machine as a *difference* against a
   precomputed fault-free trace: [dv.(g)] holds [faulty XOR good] for gate
   [g], zero almost everywhere.  Each cycle seeds the difference at the
   fault sites and at flip-flops whose state diverged, then propagates it
   level by level through the fanout cone only — a gate is evaluated
   exactly when some fanin (or an injected override) might have changed
   it, and propagation dies out as soon as the faulty machine reconverges
   with the good one.  All values are [Asc_util.Word] bit-parallel words,
   so the cone walk serves 62 faulty machines (or candidate states) at
   once.

   The schedule is the circuit's flat levelized arrays
   ({!Asc_netlist.Circuit.level_order}): ints, no closures, shared
   read-only across engines and domains.  Combinational fanouts always
   sit at strictly higher levels, so an ascending level walk evaluates
   each gate at most once per cycle, after all its fanins.

   Equivalence contract: for any override set, the detection words
   derived from [po_diff]/[state_diff] are bit-identical to comparing an
   interpretive {!Engine2} faulty run against the fault-free run — the
   kernel-equivalence test suite pins this against the
   [--sim-kernel=reference] path. *)

open Asc_util
module Circuit = Asc_netlist.Circuit
module Gate = Asc_netlist.Gate

type t = {
  c : Circuit.t;
  kinds : Gate.kind array;
  flat : int array; (* fanins, CSR *)
  off : int array;
  coflat : int array; (* combinational-only fanouts, CSR *)
  cooff : int array;
  level : int array;
  sched : int array; (* comb gates, ascending level (Circuit.level_order) *)
  level_off : int array; (* sched offsets per level *)
  spill_bar : int; (* queue-evaluated gates per cycle before spilling *)
  dffs : int array; (* flip-flop gate ids *)
  dff_din : int array; (* per DFF index: its next-state signal's gate id *)
  outputs : int array;
  dv : int array; (* faulty XOR good, per gate; zero outside the cone *)
  mutable keep : int (* lanes still propagated; the complement is pruned *);
  queued : Bytes.t; (* gate already in its level bucket this cycle *)
  ovr_flag : Bytes.t; (* combinational gate carries an override *)
  buckets : int array array; (* per level, capacity = level population *)
  blen : int array;
  touched : int array; (* gates with dv set this cycle, for O(cone) reset *)
  mutable ntouched : int;
  state_diff : int array; (* per DFF index; persists across cycles *)
  mutable source_ovr : Override.t array; (* pin = -1 on Input/Dff, input order *)
  mutable dff_pin0 : (int * Override.t list) list; (* DFF index -> pin-0 overrides *)
  mutable comb_sites : int array; (* overridden comb gates, for per-cycle seeding *)
  ovr : Override.t list array; (* per-gate overrides (comb gates only) *)
  mutable evaluated : int; (* cone gates evaluated since last [take_evaluated] *)
}

let create c =
  let n = Circuit.n_gates c in
  let level_off = Circuit.level_off c in
  let nlevels = Array.length level_off - 1 in
  (* Fanouts with the DFF successors dropped: sequential edges are
     handled by [finish_cycle], so the in-cycle walk never tests gate
     kinds on the hot push path. *)
  let oflat = Circuit.fanout_flat c and ooff = Circuit.fanout_off c in
  let kinds = Array.init n (Circuit.kind c) in
  let cooff = Array.make (n + 1) 0 in
  for g = 0 to n - 1 do
    let count = ref 0 in
    for i = ooff.(g) to ooff.(g + 1) - 1 do
      if kinds.(oflat.(i)) <> Gate.Dff then incr count
    done;
    cooff.(g + 1) <- cooff.(g) + !count
  done;
  let coflat = Array.make (max 1 cooff.(n)) 0 in
  for g = 0 to n - 1 do
    let w = ref cooff.(g) in
    for i = ooff.(g) to ooff.(g + 1) - 1 do
      let s = oflat.(i) in
      if kinds.(s) <> Gate.Dff then begin
        coflat.(!w) <- s;
        incr w
      end
    done
  done;
  {
    c;
    kinds;
    flat = Circuit.fanin_flat c;
    off = Circuit.fanin_off c;
    coflat;
    cooff;
    level = Array.init n (Circuit.level c);
    sched = Circuit.level_order c;
    level_off;
    spill_bar = max 16 (Array.length (Circuit.level_order c) / 6);
    dffs = Circuit.dffs c;
    dff_din = Array.map (Circuit.dff_input c) (Circuit.dffs c);
    outputs = Circuit.outputs c;
    dv = Array.make n 0;
    keep = Word.mask;
    queued = Bytes.make n '\000';
    ovr_flag = Bytes.make n '\000';
    buckets =
      Array.init nlevels (fun l -> Array.make (max 1 (level_off.(l + 1) - level_off.(l))) 0);
    blen = Array.make nlevels 0;
    touched = Array.make n 0;
    ntouched = 0;
    state_diff = Array.make (Circuit.n_dffs c) 0;
    source_ovr = [||];
    dff_pin0 = [];
    comb_sites = [||];
    ovr = Array.make n [];
    evaluated = 0;
  }

let circuit t = t.c

(* Group [overrides] by attachment point.  Comb-gate and DFF-pin-0 lists
   are built by consing a left-to-right scan — the same (reversed) order
   [Override.table] hands to Engine2 — and source overrides keep input
   order, matching Engine2's [List.filter]; application order is
   therefore identical to the reference engine. *)
let set_overrides t overrides =
  Array.iter
    (fun g ->
      Bytes.set t.ovr_flag g '\000';
      t.ovr.(g) <- [])
    t.comb_sites;
  let rec add g o = function
    | [] -> [ (g, [ o ]) ]
    | (g', l) :: rest when g' = g -> (g, o :: l) :: rest
    | e :: rest -> e :: add g o rest
  in
  let source = ref [] and pin0 = ref [] and comb = ref [] in
  List.iter
    (fun (o : Override.t) ->
      match t.kinds.(o.gate) with
      | Gate.Input -> source := o :: !source
      | Gate.Dff ->
          if o.pin = -1 then source := o :: !source
          else pin0 := add (Circuit.dff_index t.c o.gate) o !pin0
      | _ -> comb := add o.gate o !comb)
    overrides;
  t.source_ovr <- Array.of_list (List.rev !source);
  t.dff_pin0 <- !pin0;
  t.comb_sites <- Array.of_list (List.map fst !comb);
  List.iter
    (fun (g, l) ->
      Bytes.set t.ovr_flag g '\001';
      t.ovr.(g) <- l)
    !comb

(* Zero the persistent state difference and any leftover in-cycle
   difference (a detection loop may stop between [cycle] and
   [finish_cycle] on its early exit). *)
let reset t =
  Array.fill t.state_diff 0 (Array.length t.state_diff) 0;
  for k = 0 to t.ntouched - 1 do
    t.dv.(t.touched.(k)) <- 0
  done;
  t.ntouched <- 0

let[@inline] set_dv t g ndv =
  if t.dv.(g) = 0 && ndv <> 0 then begin
    t.touched.(t.ntouched) <- g;
    t.ntouched <- t.ntouched + 1
  end;
  t.dv.(g) <- ndv

let[@inline] push t g =
  if Bytes.unsafe_get t.queued g = '\000' then begin
    Bytes.unsafe_set t.queued g '\001';
    let l = Array.unsafe_get t.level g in
    let b = Array.unsafe_get t.buckets l in
    Array.unsafe_set b (Array.unsafe_get t.blen l) g;
    Array.unsafe_set t.blen l (Array.unsafe_get t.blen l + 1)
  end

(* Queue the combinational fanouts of [g]; DFF fanins are sequential
   edges, picked up by [finish_cycle] instead. *)
let[@inline] push_comb_fanouts t g =
  let coflat = t.coflat in
  for i = Array.unsafe_get t.cooff g to Array.unsafe_get t.cooff (g + 1) - 1 do
    push t (Array.unsafe_get coflat i)
  done

(* Faulty value of an overridden combinational gate (cold path): the body
   over faulty fanin words with pin overrides, then output overrides —
   mirroring Engine2.eval_overridden. *)
let eval_overridden t gw g =
  let lo = t.off.(g) in
  let overrides = t.ovr.(g) in
  let get i =
    let f = t.flat.(lo + i) in
    let w = ref (gw.(f) lxor t.dv.(f)) in
    List.iter (fun (o : Override.t) -> if o.pin = i then w := Override.apply o !w) overrides;
    !w
  in
  let n = t.off.(g + 1) - lo in
  let body =
    match t.kinds.(g) with
    | Gate.And ->
        let acc = ref (get 0) in
        for i = 1 to n - 1 do
          acc := !acc land get i
        done;
        !acc
    | Gate.Nand ->
        let acc = ref (get 0) in
        for i = 1 to n - 1 do
          acc := !acc land get i
        done;
        lnot !acc land Word.mask
    | Gate.Or ->
        let acc = ref (get 0) in
        for i = 1 to n - 1 do
          acc := !acc lor get i
        done;
        !acc
    | Gate.Nor ->
        let acc = ref (get 0) in
        for i = 1 to n - 1 do
          acc := !acc lor get i
        done;
        lnot !acc land Word.mask
    | Gate.Xor ->
        let acc = ref (get 0) in
        for i = 1 to n - 1 do
          acc := !acc lxor get i
        done;
        !acc
    | Gate.Xnor ->
        let acc = ref (get 0) in
        for i = 1 to n - 1 do
          acc := !acc lxor get i
        done;
        lnot !acc land Word.mask
    | Gate.Not -> lnot (get 0) land Word.mask
    | Gate.Buf -> get 0
    | Gate.Const0 -> 0
    | Gate.Const1 -> Word.mask
    | Gate.Input | Gate.Dff -> invalid_arg "Kernel: source gate in cone"
  in
  List.fold_left
    (fun w (o : Override.t) -> if o.pin = -1 then Override.apply o w else w)
    body overrides

(* Faulty value of a plain combinational gate: the body over
   [good XOR dv] fanin words, with a 2-input fast path. *)
let eval_plain t gw g =
  let flat = t.flat and dv = t.dv in
  let lo = Array.unsafe_get t.off g in
  let hi = Array.unsafe_get t.off (g + 1) in
  if hi - lo = 2 then begin
    let f0 = Array.unsafe_get flat lo and f1 = Array.unsafe_get flat (lo + 1) in
    let a = Array.unsafe_get gw f0 lxor Array.unsafe_get dv f0 in
    let b = Array.unsafe_get gw f1 lxor Array.unsafe_get dv f1 in
    match Array.unsafe_get t.kinds g with
    | Gate.And -> a land b
    | Gate.Nand -> lnot (a land b) land Word.mask
    | Gate.Or -> a lor b
    | Gate.Nor -> lnot (a lor b) land Word.mask
    | Gate.Xor -> a lxor b
    | Gate.Xnor -> lnot (a lxor b) land Word.mask
    | Gate.Not | Gate.Buf | Gate.Const0 | Gate.Const1 | Gate.Input | Gate.Dff ->
        assert false
  end
  else
    let fv i =
      let f = Array.unsafe_get flat i in
      Array.unsafe_get gw f lxor Array.unsafe_get dv f
    in
    match Array.unsafe_get t.kinds g with
    | Gate.And ->
        let acc = ref (fv lo) in
        for i = lo + 1 to hi - 1 do
          acc := !acc land fv i
        done;
        !acc
    | Gate.Nand ->
        let acc = ref (fv lo) in
        for i = lo + 1 to hi - 1 do
          acc := !acc land fv i
        done;
        lnot !acc land Word.mask
    | Gate.Or ->
        let acc = ref (fv lo) in
        for i = lo + 1 to hi - 1 do
          acc := !acc lor fv i
        done;
        !acc
    | Gate.Nor ->
        let acc = ref (fv lo) in
        for i = lo + 1 to hi - 1 do
          acc := !acc lor fv i
        done;
        lnot !acc land Word.mask
    | Gate.Xor ->
        let acc = ref (fv lo) in
        for i = lo + 1 to hi - 1 do
          acc := !acc lxor fv i
        done;
        !acc
    | Gate.Xnor ->
        let acc = ref (fv lo) in
        for i = lo + 1 to hi - 1 do
          acc := !acc lxor fv i
        done;
        lnot !acc land Word.mask
    | Gate.Not -> lnot (fv lo) land Word.mask
    | Gate.Buf -> fv lo
    | Gate.Const0 -> 0
    | Gate.Const1 -> Word.mask
    | Gate.Input | Gate.Dff -> assert false

(* One combinational settle of the faulty machine against the good
   values [gw] (one word per gate, sources included).  Seeds: diverged
   flip-flops, source output overrides, combinational override sites;
   then an ascending level walk over the queued cone.  A gate whose
   faulty value matches the good one queues nothing — reconvergence
   stops the walk.

   [prune] masks lanes out of the propagation.  Lanes are independent,
   so a pruned lane merely behaves fault-free from here on — sound
   exactly when the caller no longer reads that lane's differences
   (detection loops prune lanes already detected, whose result bit is a
   monotonic OR; profile-style consumers must not prune). *)
let cycle ?(prune = 0) t ~gw =
  t.keep <- Word.mask land lnot prune;
  let keep = t.keep in
  let dv = t.dv in
  for i = 0 to Array.length t.state_diff - 1 do
    let sd = Array.unsafe_get t.state_diff i land keep in
    if sd <> 0 then set_dv t t.dffs.(i) sd
  done;
  let source_ovr = t.source_ovr in
  for i = 0 to Array.length source_ovr - 1 do
    let o = source_ovr.(i) in
    let g = o.Override.gate in
    set_dv t g ((Override.apply o (gw.(g) lxor dv.(g)) lxor gw.(g)) land keep)
  done;
  for k = 0 to t.ntouched - 1 do
    let g = t.touched.(k) in
    if dv.(g) <> 0 then push_comb_fanouts t g
  done;
  let comb_sites = t.comb_sites in
  for i = 0 to Array.length comb_sites - 1 do
    push t comb_sites.(i)
  done;
  let nlevels = Array.length t.blen in
  let evaluated = ref 0 in
  let l = ref 0 in
  while !l < nlevels && !evaluated <= t.spill_bar do
    let bucket = t.buckets.(!l) in
    let len = t.blen.(!l) in
    for bi = 0 to len - 1 do
      let g = Array.unsafe_get bucket bi in
      incr evaluated;
      let fv =
        if Bytes.unsafe_get t.ovr_flag g = '\001' then eval_overridden t gw g
        else eval_plain t gw g
      in
      let ndv = (fv lxor Array.unsafe_get gw g) land keep in
      if ndv <> 0 then begin
        set_dv t g ndv;
        push_comb_fanouts t g
      end
    done;
    for bi = 0 to len - 1 do
      Bytes.unsafe_set t.queued (Array.unsafe_get bucket bi) '\000'
    done;
    t.blen.(!l) <- 0;
    incr l
  done;
  (* Spill: once the cone covers a sizable part of the circuit the event
     queue costs more per gate than a straight schedule sweep, so finish
     the remaining levels linearly — evaluate every gate there whether
     queued or not (a gate outside the cone just reconverges to ndv = 0).
     The result is identical; only the walk strategy changes. *)
  if !l < nlevels then begin
    for l' = !l to nlevels - 1 do
      let bucket = t.buckets.(l') in
      for bi = 0 to t.blen.(l') - 1 do
        Bytes.unsafe_set t.queued (Array.unsafe_get bucket bi) '\000'
      done;
      t.blen.(l') <- 0
    done;
    let sched = t.sched in
    let ovr_flag = t.ovr_flag in
    for idx = t.level_off.(!l) to Array.length sched - 1 do
      let g = Array.unsafe_get sched idx in
      incr evaluated;
      let fv =
        if Bytes.unsafe_get ovr_flag g = '\001' then eval_overridden t gw g
        else eval_plain t gw g
      in
      let ndv = (fv lxor Array.unsafe_get gw g) land keep in
      if ndv <> 0 then set_dv t g ndv
    done
  end;
  t.evaluated <- t.evaluated + !evaluated

(* --- byte-trace variants ----------------------------------------------- *)

(* Splat good traces (every lane the same fault-free machine) are stored
   as one byte per gate ([Seq_fsim]'s trace cache): 8x denser than word
   arrays, so a whole cycle's good values live in a handful of cache
   lines.  The word of gate [g] is recovered on the fly:
   [(-byte) land Word.mask] is 0 for byte 0 and the all-lanes word for
   byte 1.  These are exact duplicates of [eval_plain]/[eval_overridden]/
   [cycle]/[finish_cycle] over that accessor — kept as copies because the
   per-access indirection of a shared abstraction is what they exist to
   avoid. *)

let[@inline] gword gb g = (0 - Char.code (Bytes.unsafe_get gb g)) land Word.mask

let eval_overridden_bits t gb g =
  let lo = t.off.(g) in
  let overrides = t.ovr.(g) in
  let get i =
    let f = t.flat.(lo + i) in
    let w = ref (gword gb f lxor t.dv.(f)) in
    List.iter (fun (o : Override.t) -> if o.pin = i then w := Override.apply o !w) overrides;
    !w
  in
  let n = t.off.(g + 1) - lo in
  let body =
    match t.kinds.(g) with
    | Gate.And ->
        let acc = ref (get 0) in
        for i = 1 to n - 1 do
          acc := !acc land get i
        done;
        !acc
    | Gate.Nand ->
        let acc = ref (get 0) in
        for i = 1 to n - 1 do
          acc := !acc land get i
        done;
        lnot !acc land Word.mask
    | Gate.Or ->
        let acc = ref (get 0) in
        for i = 1 to n - 1 do
          acc := !acc lor get i
        done;
        !acc
    | Gate.Nor ->
        let acc = ref (get 0) in
        for i = 1 to n - 1 do
          acc := !acc lor get i
        done;
        lnot !acc land Word.mask
    | Gate.Xor ->
        let acc = ref (get 0) in
        for i = 1 to n - 1 do
          acc := !acc lxor get i
        done;
        !acc
    | Gate.Xnor ->
        let acc = ref (get 0) in
        for i = 1 to n - 1 do
          acc := !acc lxor get i
        done;
        lnot !acc land Word.mask
    | Gate.Not -> lnot (get 0) land Word.mask
    | Gate.Buf -> get 0
    | Gate.Const0 -> 0
    | Gate.Const1 -> Word.mask
    | Gate.Input | Gate.Dff -> invalid_arg "Kernel: source gate in cone"
  in
  List.fold_left
    (fun w (o : Override.t) -> if o.pin = -1 then Override.apply o w else w)
    body overrides

let eval_plain_bits t gb g =
  let flat = t.flat and dv = t.dv in
  let lo = Array.unsafe_get t.off g in
  let hi = Array.unsafe_get t.off (g + 1) in
  if hi - lo = 2 then begin
    let f0 = Array.unsafe_get flat lo and f1 = Array.unsafe_get flat (lo + 1) in
    let a = gword gb f0 lxor Array.unsafe_get dv f0 in
    let b = gword gb f1 lxor Array.unsafe_get dv f1 in
    match Array.unsafe_get t.kinds g with
    | Gate.And -> a land b
    | Gate.Nand -> lnot (a land b) land Word.mask
    | Gate.Or -> a lor b
    | Gate.Nor -> lnot (a lor b) land Word.mask
    | Gate.Xor -> a lxor b
    | Gate.Xnor -> lnot (a lxor b) land Word.mask
    | Gate.Not | Gate.Buf | Gate.Const0 | Gate.Const1 | Gate.Input | Gate.Dff ->
        assert false
  end
  else
    let fv i =
      let f = Array.unsafe_get flat i in
      gword gb f lxor Array.unsafe_get dv f
    in
    match Array.unsafe_get t.kinds g with
    | Gate.And ->
        let acc = ref (fv lo) in
        for i = lo + 1 to hi - 1 do
          acc := !acc land fv i
        done;
        !acc
    | Gate.Nand ->
        let acc = ref (fv lo) in
        for i = lo + 1 to hi - 1 do
          acc := !acc land fv i
        done;
        lnot !acc land Word.mask
    | Gate.Or ->
        let acc = ref (fv lo) in
        for i = lo + 1 to hi - 1 do
          acc := !acc lor fv i
        done;
        !acc
    | Gate.Nor ->
        let acc = ref (fv lo) in
        for i = lo + 1 to hi - 1 do
          acc := !acc lor fv i
        done;
        lnot !acc land Word.mask
    | Gate.Xor ->
        let acc = ref (fv lo) in
        for i = lo + 1 to hi - 1 do
          acc := !acc lxor fv i
        done;
        !acc
    | Gate.Xnor ->
        let acc = ref (fv lo) in
        for i = lo + 1 to hi - 1 do
          acc := !acc lxor fv i
        done;
        lnot !acc land Word.mask
    | Gate.Not -> lnot (fv lo) land Word.mask
    | Gate.Buf -> fv lo
    | Gate.Const0 -> 0
    | Gate.Const1 -> Word.mask
    | Gate.Input | Gate.Dff -> assert false

let cycle_bits ?(prune = 0) t ~gb =
  t.keep <- Word.mask land lnot prune;
  let keep = t.keep in
  let dv = t.dv in
  for i = 0 to Array.length t.state_diff - 1 do
    let sd = Array.unsafe_get t.state_diff i land keep in
    if sd <> 0 then set_dv t t.dffs.(i) sd
  done;
  let source_ovr = t.source_ovr in
  for i = 0 to Array.length source_ovr - 1 do
    let o = source_ovr.(i) in
    let g = o.Override.gate in
    let good = gword gb g in
    set_dv t g ((Override.apply o (good lxor dv.(g)) lxor good) land keep)
  done;
  for k = 0 to t.ntouched - 1 do
    let g = t.touched.(k) in
    if dv.(g) <> 0 then push_comb_fanouts t g
  done;
  let comb_sites = t.comb_sites in
  for i = 0 to Array.length comb_sites - 1 do
    push t comb_sites.(i)
  done;
  let nlevels = Array.length t.blen in
  let evaluated = ref 0 in
  let l = ref 0 in
  while !l < nlevels && !evaluated <= t.spill_bar do
    let bucket = t.buckets.(!l) in
    let len = t.blen.(!l) in
    for bi = 0 to len - 1 do
      let g = Array.unsafe_get bucket bi in
      incr evaluated;
      let fv =
        if Bytes.unsafe_get t.ovr_flag g = '\001' then eval_overridden_bits t gb g
        else eval_plain_bits t gb g
      in
      let ndv = (fv lxor gword gb g) land keep in
      if ndv <> 0 then begin
        set_dv t g ndv;
        push_comb_fanouts t g
      end
    done;
    for bi = 0 to len - 1 do
      Bytes.unsafe_set t.queued (Array.unsafe_get bucket bi) '\000'
    done;
    t.blen.(!l) <- 0;
    incr l
  done;
  if !l < nlevels then begin
    for l' = !l to nlevels - 1 do
      let bucket = t.buckets.(l') in
      for bi = 0 to t.blen.(l') - 1 do
        Bytes.unsafe_set t.queued (Array.unsafe_get bucket bi) '\000'
      done;
      t.blen.(l') <- 0
    done;
    let sched = t.sched in
    let ovr_flag = t.ovr_flag in
    for idx = t.level_off.(!l) to Array.length sched - 1 do
      let g = Array.unsafe_get sched idx in
      incr evaluated;
      let fv =
        if Bytes.unsafe_get ovr_flag g = '\001' then eval_overridden_bits t gb g
        else eval_plain_bits t gb g
      in
      let ndv = (fv lxor gword gb g) land keep in
      if ndv <> 0 then set_dv t g ndv
    done
  end;
  t.evaluated <- t.evaluated + !evaluated

let finish_cycle_bits t ~gb =
  let din = t.dff_din in
  for i = 0 to Array.length din - 1 do
    t.state_diff.(i) <- t.dv.(din.(i))
  done;
  List.iter
    (fun (i, ovrs) ->
      let d = din.(i) in
      let good = gword gb d in
      let fv = ref (good lxor t.dv.(d)) in
      List.iter (fun (o : Override.t) -> if o.pin = 0 then fv := Override.apply o !fv) ovrs;
      t.state_diff.(i) <- (!fv lxor good) land t.keep)
    t.dff_pin0;
  for k = 0 to t.ntouched - 1 do
    t.dv.(t.touched.(k)) <- 0
  done;
  t.ntouched <- 0

(* PO difference word of the settled cycle (read before [finish_cycle]). *)
let po_diff t =
  let outputs = t.outputs in
  let diff = ref 0 in
  for i = 0 to Array.length outputs - 1 do
    diff := !diff lor Array.unsafe_get t.dv (Array.unsafe_get outputs i)
  done;
  !diff

(* Clock edge: capture next-state differences (with DFF pin-0 overrides
   folded in against the good captured value [gw.(din)]) and clear the
   in-cycle difference in O(cone). *)
let finish_cycle t ~gw =
  let din = t.dff_din in
  for i = 0 to Array.length din - 1 do
    t.state_diff.(i) <- t.dv.(din.(i))
  done;
  List.iter
    (fun (i, ovrs) ->
      let d = din.(i) in
      let good = gw.(d) in
      let fv = ref (good lxor t.dv.(d)) in
      List.iter (fun (o : Override.t) -> if o.pin = 0 then fv := Override.apply o !fv) ovrs;
      t.state_diff.(i) <- (!fv lxor good) land t.keep)
    t.dff_pin0;
  for k = 0 to t.ntouched - 1 do
    t.dv.(t.touched.(k)) <- 0
  done;
  t.ntouched <- 0

(* State difference entering the next cycle (equals the scan-out
   difference after the final [finish_cycle]). *)
let state_diff_word t =
  let diff = ref 0 in
  for i = 0 to Array.length t.state_diff - 1 do
    diff := !diff lor t.state_diff.(i)
  done;
  !diff

let state_diff t i = t.state_diff.(i)

let take_evaluated t =
  let n = t.evaluated in
  t.evaluated <- 0;
  n

(* --- fault-free levelized sweep --------------------------------------- *)

(* Evaluate the fault-free machine for one cycle into [v] (every gate,
   sources included): the 62-wide good-machine kernel.  No overrides, no
   per-gate override test — leaner than Engine2's sweep. *)
let good_cycle t ~pi_words ~state ~v =
  let c = t.c in
  let inputs = Circuit.inputs c in
  if Array.length pi_words <> Array.length inputs then invalid_arg "Kernel.good_cycle";
  Array.iteri (fun i g -> v.(g) <- pi_words.(i)) inputs;
  Array.iteri (fun i g -> v.(g) <- state.(i)) (Circuit.dffs c);
  let sched = Circuit.level_order c in
  let kinds = t.kinds and flat = t.flat and off = t.off in
  for idx = 0 to Array.length sched - 1 do
    let g = Array.unsafe_get sched idx in
    let lo = Array.unsafe_get off g in
    let hi = Array.unsafe_get off (g + 1) in
    let w =
      if hi - lo = 2 then begin
        let a = Array.unsafe_get v (Array.unsafe_get flat lo) in
        let b = Array.unsafe_get v (Array.unsafe_get flat (lo + 1)) in
        match Array.unsafe_get kinds g with
        | Gate.And -> a land b
        | Gate.Nand -> lnot (a land b) land Word.mask
        | Gate.Or -> a lor b
        | Gate.Nor -> lnot (a lor b) land Word.mask
        | Gate.Xor -> a lxor b
        | Gate.Xnor -> lnot (a lxor b) land Word.mask
        | Gate.Not | Gate.Buf | Gate.Const0 | Gate.Const1 | Gate.Input | Gate.Dff ->
            assert false
      end
      else
        match Array.unsafe_get kinds g with
        | Gate.And ->
            let acc = ref (Array.unsafe_get v (Array.unsafe_get flat lo)) in
            for i = lo + 1 to hi - 1 do
              acc := !acc land Array.unsafe_get v (Array.unsafe_get flat i)
            done;
            !acc
        | Gate.Nand ->
            let acc = ref (Array.unsafe_get v (Array.unsafe_get flat lo)) in
            for i = lo + 1 to hi - 1 do
              acc := !acc land Array.unsafe_get v (Array.unsafe_get flat i)
            done;
            lnot !acc land Word.mask
        | Gate.Or ->
            let acc = ref (Array.unsafe_get v (Array.unsafe_get flat lo)) in
            for i = lo + 1 to hi - 1 do
              acc := !acc lor Array.unsafe_get v (Array.unsafe_get flat i)
            done;
            !acc
        | Gate.Nor ->
            let acc = ref (Array.unsafe_get v (Array.unsafe_get flat lo)) in
            for i = lo + 1 to hi - 1 do
              acc := !acc lor Array.unsafe_get v (Array.unsafe_get flat i)
            done;
            lnot !acc land Word.mask
        | Gate.Xor ->
            let acc = ref (Array.unsafe_get v (Array.unsafe_get flat lo)) in
            for i = lo + 1 to hi - 1 do
              acc := !acc lxor Array.unsafe_get v (Array.unsafe_get flat i)
            done;
            !acc
        | Gate.Xnor ->
            let acc = ref (Array.unsafe_get v (Array.unsafe_get flat lo)) in
            for i = lo + 1 to hi - 1 do
              acc := !acc lxor Array.unsafe_get v (Array.unsafe_get flat i)
            done;
            lnot !acc land Word.mask
        | Gate.Not -> lnot (Array.unsafe_get v (Array.unsafe_get flat lo)) land Word.mask
        | Gate.Buf -> Array.unsafe_get v (Array.unsafe_get flat lo)
        | Gate.Const0 -> 0
        | Gate.Const1 -> Word.mask
        | Gate.Input | Gate.Dff -> assert false
    in
    Array.unsafe_set v g w
  done

(* Clock edge of the fault-free sweep: [state.(i) <- v.(din i)]. *)
let good_capture t ~v ~state =
  let c = t.c in
  let dffs = Circuit.dffs c in
  for i = 0 to Array.length dffs - 1 do
    state.(i) <- v.(Circuit.dff_input c dffs.(i))
  done
