(** Lane-masked value overrides — the generic fault-injection mechanism
    shared by the 2-valued and 3-valued engines.

    An override forces a signal stuck at a value in selected lanes:
    [pin = -1] forces the gate's output; [pin = k >= 0] forces the gate's
    [k]-th fanin as seen by this gate only (fanout-branch fault; for a DFF,
    pin 0 is the captured D value). *)

type t = { gate : int; pin : int; stuck : bool; lanes : int }

val output : gate:int -> stuck:bool -> lanes:int -> t
val input : gate:int -> pin:int -> stuck:bool -> lanes:int -> t

(** Force the override's lanes of a word to the stuck value. *)
val apply : t -> int -> int

(** Per-gate index of a set of overrides. *)
type table

val table : int -> t list -> table

(** A table with no overrides (fault-free simulation). *)
val empty : int -> table

val at : table -> int -> t list
val has : table -> int -> bool

(** Gates carrying at least one override. *)
val touched : table -> int list
