(** VCD (Value Change Dump) writer: the fault-free trajectory of a scan
    test over every circuit signal, viewable in GTKWave. *)

(** The VCD text of the fault-free run of [(si, seq)]. *)
val of_scan_test :
  Asc_netlist.Circuit.t -> si:bool array -> seq:bool array array -> string

val write_file :
  string -> Asc_netlist.Circuit.t -> si:bool array -> seq:bool array array -> unit
