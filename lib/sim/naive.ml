(* Scalar reference simulator.

   Direct, obviously-correct evaluation over [bool] (2-valued) and
   [bool option] (3-valued, [None] = X) values.  The test suite checks the
   bit-parallel engines and the fault simulators against this module; it is
   also convenient for debugging small circuits. *)

module Circuit = Asc_netlist.Circuit
module Gate = Asc_netlist.Gate

let eval_gate2 kind (ins : bool list) =
  match (kind : Gate.kind), ins with
  | Gate.And, _ -> List.for_all Fun.id ins
  | Gate.Nand, _ -> not (List.for_all Fun.id ins)
  | Gate.Or, _ -> List.exists Fun.id ins
  | Gate.Nor, _ -> not (List.exists Fun.id ins)
  | Gate.Xor, _ -> List.fold_left (fun acc b -> acc <> b) false ins
  | Gate.Xnor, _ -> not (List.fold_left (fun acc b -> acc <> b) false ins)
  | Gate.Not, [ a ] -> not a
  | Gate.Buf, [ a ] -> a
  | Gate.Const0, [] -> false
  | Gate.Const1, [] -> true
  | (Gate.Not | Gate.Buf | Gate.Const0 | Gate.Const1 | Gate.Input | Gate.Dff), _ ->
      invalid_arg "Naive.eval_gate2: bad gate/arity"

(* Pessimistic 3-valued evaluation, [None] = X. *)
let rec eval_gate3 kind (ins : bool option list) =
  let all_known = List.for_all Option.is_some ins in
  match (kind : Gate.kind), ins with
  | Gate.And, _ ->
      if List.exists (( = ) (Some false)) ins then Some false
      else if all_known then Some true
      else None
  | Gate.Nand, _ -> Option.map not (eval_gate3 Gate.And ins)
  | Gate.Or, _ ->
      if List.exists (( = ) (Some true)) ins then Some true
      else if all_known then Some false
      else None
  | Gate.Nor, _ -> Option.map not (eval_gate3 Gate.Or ins)
  | Gate.Xor, _ ->
      if all_known then
        Some (List.fold_left (fun acc b -> acc <> Option.get b) false ins)
      else None
  | Gate.Xnor, _ -> Option.map not (eval_gate3 Gate.Xor ins)
  | Gate.Not, [ a ] -> Option.map not a
  | Gate.Buf, [ a ] -> a
  | Gate.Const0, [] -> Some false
  | Gate.Const1, [] -> Some true
  | (Gate.Not | Gate.Buf | Gate.Const0 | Gate.Const1 | Gate.Input | Gate.Dff), _ ->
      invalid_arg "Naive.eval_gate3: bad gate/arity"

(* Full combinational evaluation; returns the value of every gate. *)
let eval_comb c ~pis ~state =
  let n = Circuit.n_gates c in
  let v = Array.make n false in
  Array.iteri (fun i g -> v.(g) <- pis.(i)) (Circuit.inputs c);
  Array.iteri (fun i g -> v.(g) <- state.(i)) (Circuit.dffs c);
  Array.iter
    (fun g ->
      let ins = Array.to_list (Array.map (fun f -> v.(f)) (Circuit.fanins c g)) in
      v.(g) <- eval_gate2 (Circuit.kind c g) ins)
    (Circuit.order c);
  v

let outputs_of c v = Array.map (fun g -> v.(g)) (Circuit.outputs c)

let next_state_of c v =
  Array.map (fun d -> v.(Circuit.dff_input c d)) (Circuit.dffs c)

(* Run a PI sequence from a binary initial state; returns the per-cycle PO
   vectors and the final state. *)
let run c ~init ~seq =
  let state = ref init in
  let responses =
    Array.map
      (fun pis ->
        let v = eval_comb c ~pis ~state:!state in
        state := next_state_of c v;
        outputs_of c v)
      seq
  in
  (responses, !state)

let eval_comb3 c ~pis ~state =
  let n = Circuit.n_gates c in
  let v = Array.make n None in
  Array.iteri (fun i g -> v.(g) <- pis.(i)) (Circuit.inputs c);
  Array.iteri (fun i g -> v.(g) <- state.(i)) (Circuit.dffs c);
  Array.iter
    (fun g ->
      let ins = Array.to_list (Array.map (fun f -> v.(f)) (Circuit.fanins c g)) in
      v.(g) <- eval_gate3 (Circuit.kind c g) ins)
    (Circuit.order c);
  v

let run3 c ~init ~seq =
  let state = ref init in
  let responses =
    Array.map
      (fun pis ->
        let pis = Array.map (fun b -> Some b) pis in
        let v = eval_comb3 c ~pis ~state:!state in
        state := Array.map (fun d -> v.(Circuit.dff_input c d)) (Circuit.dffs c);
        Array.map (fun g -> v.(g)) (Circuit.outputs c))
      seq
  in
  (responses, !state)
