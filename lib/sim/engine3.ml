(* Bit-parallel 3-valued (0/1/X) simulation engine.

   Each signal holds two words: [z] marks lanes known to be 0, [o] marks
   lanes known to be 1; a lane set in neither is X.  Used wherever the
   circuit state is unknown — simulation "without scan" from an
   unknown initial state (Step 1 of Phase 1, sequential test generation).

   The gate functions are the standard pessimistic 3-valued extensions:
   an AND output is 0 when any input is 0, 1 when all inputs are 1, X
   otherwise; XOR is known only when every input is known. *)

open Asc_util

module Circuit = Asc_netlist.Circuit
module Gate = Asc_netlist.Gate

type t = {
  c : Circuit.t;
  kinds : Gate.kind array;
  fanins : int array array;
  mutable ovr : Override.table;
  mutable source_ovr : Override.t list;
  z : int array;
  o : int array;
  state_z : int array;
  state_o : int array;
}

let split_overrides c overrides =
  let table = Override.table (Circuit.n_gates c) overrides in
  let source_ovr =
    List.filter
      (fun (onode : Override.t) ->
        onode.pin = -1 && Gate.is_source (Circuit.kind c onode.gate))
      overrides
  in
  (table, source_ovr)

let create c overrides =
  let n = Circuit.n_gates c in
  let ovr, source_ovr = split_overrides c overrides in
  {
    c;
    kinds = Array.init n (Circuit.kind c);
    fanins = Array.init n (Circuit.fanins c);
    ovr;
    source_ovr;
    z = Array.make n 0;
    o = Array.make n 0;
    state_z = Array.make (Circuit.n_dffs c) 0;
    state_o = Array.make (Circuit.n_dffs c) 0;
  }

(* Swap the injected fault set without reallocating the value arrays. *)
let set_overrides t overrides =
  let ovr, source_ovr = split_overrides t.c overrides in
  t.ovr <- ovr;
  t.source_ovr <- source_ovr

let circuit t = t.c

(* Force the override's lanes to its stuck value on a (z, o) pair. *)
let apply_ovr (ov : Override.t) z o =
  if ov.stuck then (z land lnot ov.lanes, o lor ov.lanes)
  else (z lor ov.lanes, o land lnot ov.lanes)

let set_state_x t =
  Array.fill t.state_z 0 (Array.length t.state_z) 0;
  Array.fill t.state_o 0 (Array.length t.state_o) 0

let set_state_bools t bits =
  if Array.length bits <> Array.length t.state_z then invalid_arg "Engine3.set_state_bools";
  Array.iteri
    (fun i b ->
      t.state_z.(i) <- Word.splat (not b);
      t.state_o.(i) <- Word.splat b)
    bits

let set_state_words t ~z ~o =
  if Array.length z <> Array.length t.state_z || Array.length o <> Array.length t.state_o
  then invalid_arg "Engine3.set_state_words";
  Array.blit z 0 t.state_z 0 (Array.length z);
  Array.blit o 0 t.state_o 0 (Array.length o)

let state_word t i = (t.state_z.(i), t.state_o.(i))

let state_words t = (Array.copy t.state_z, Array.copy t.state_o)

let eval_body kind getz geto n =
  match (kind : Gate.kind) with
  | Gate.And | Gate.Nand ->
      let zero = ref (getz 0) and one = ref (geto 0) in
      for i = 1 to n - 1 do
        zero := !zero lor getz i;
        one := !one land geto i
      done;
      if kind = Gate.And then (!zero, !one) else (!one, !zero)
  | Gate.Or | Gate.Nor ->
      let zero = ref (getz 0) and one = ref (geto 0) in
      for i = 1 to n - 1 do
        zero := !zero land getz i;
        one := !one lor geto i
      done;
      if kind = Gate.Or then (!zero, !one) else (!one, !zero)
  | Gate.Xor | Gate.Xnor ->
      let known = ref (getz 0 lor geto 0) and parity = ref (geto 0) in
      for i = 1 to n - 1 do
        known := !known land (getz i lor geto i);
        parity := !parity lxor geto i
      done;
      let one = !parity land !known and zero = lnot !parity land !known in
      if kind = Gate.Xor then (zero, one) else (one, zero)
  | Gate.Not -> (geto 0, getz 0)
  | Gate.Buf -> (getz 0, geto 0)
  | Gate.Const0 -> (Word.mask, 0)
  | Gate.Const1 -> (0, Word.mask)
  | Gate.Input | Gate.Dff -> invalid_arg "Engine3: source gate in evaluation order"

let eval_overridden t g =
  let fi = t.fanins.(g) in
  let overrides = Override.at t.ovr g in
  let get i =
    let z = ref t.z.(fi.(i)) and o = ref t.o.(fi.(i)) in
    List.iter
      (fun (ov : Override.t) ->
        if ov.pin = i then begin
          let z', o' = apply_ovr ov !z !o in
          z := z';
          o := o'
        end)
      overrides;
    (!z, !o)
  in
  let getz i = fst (get i) and geto i = snd (get i) in
  let z, o = eval_body t.kinds.(g) getz geto (Array.length fi) in
  List.fold_left
    (fun (z, o) (ov : Override.t) -> if ov.pin = -1 then apply_ovr ov z o else (z, o))
    (z, o) overrides

(* [pi_z]/[pi_o] give the 3-valued PI words; for fully binary inputs use
   [eval_binary]. *)
let eval t ~pi_z ~pi_o =
  let c = t.c and z = t.z and o = t.o in
  let inputs = Circuit.inputs c in
  if Array.length pi_z <> Array.length inputs || Array.length pi_o <> Array.length inputs
  then invalid_arg "Engine3.eval: PI arity";
  Array.iteri
    (fun i g ->
      z.(g) <- pi_z.(i);
      o.(g) <- pi_o.(i))
    inputs;
  Array.iteri
    (fun i g ->
      z.(g) <- t.state_z.(i);
      o.(g) <- t.state_o.(i))
    (Circuit.dffs c);
  List.iter
    (fun (ov : Override.t) ->
      let z', o' = apply_ovr ov z.(ov.gate) o.(ov.gate) in
      z.(ov.gate) <- z';
      o.(ov.gate) <- o')
    t.source_ovr;
  let order = Circuit.order c in
  for idx = 0 to Array.length order - 1 do
    let g = Array.unsafe_get order idx in
    if Override.has t.ovr g then begin
      let zg, og = eval_overridden t g in
      z.(g) <- zg;
      o.(g) <- og
    end
    else begin
      let fi = t.fanins.(g) in
      let getz i = Array.unsafe_get z (Array.unsafe_get fi i)
      and geto i = Array.unsafe_get o (Array.unsafe_get fi i) in
      let zg, og = eval_body t.kinds.(g) getz geto (Array.length fi) in
      z.(g) <- zg;
      o.(g) <- og
    end
  done

let eval_binary t ~pi_words =
  let pi_o = pi_words in
  let pi_z = Array.map (fun w -> lnot w land Word.mask) pi_words in
  eval t ~pi_z ~pi_o

let value t g = (t.z.(g), t.o.(g))

let po_word t i =
  let g = (Circuit.outputs t.c).(i) in
  (t.z.(g), t.o.(g))

let next_state_word t i =
  let d = (Circuit.dffs t.c).(i) in
  let din = Circuit.dff_input t.c d in
  let z = ref t.z.(din) and o = ref t.o.(din) in
  if Override.has t.ovr d then
    List.iter
      (fun (ov : Override.t) ->
        if ov.pin = 0 then begin
          let z', o' = apply_ovr ov !z !o in
          z := z';
          o := o'
        end)
      (Override.at t.ovr d);
  (!z, !o)

let capture t =
  for i = 0 to Array.length t.state_z - 1 do
    let z, o = next_state_word t i in
    t.state_z.(i) <- z;
    t.state_o.(i) <- o
  done

let step_binary t ~pi_words =
  eval_binary t ~pi_words;
  capture t
