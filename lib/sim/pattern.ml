(* A combinational test pattern: values for the primary inputs and for the
   present-state variables (the scan-in vector).

   This is both a combinational ATPG test (PI + pseudo-PI assignment) and,
   viewed as a scan test, a test with a length-one primary input sequence. *)

type t = { pis : bool array; state : bool array }

let create ~pis ~state = { pis; state }

let random rng ~n_pis ~n_ffs =
  { pis = Asc_util.Rng.bool_array rng n_pis; state = Asc_util.Rng.bool_array rng n_ffs }

let n_pis t = Array.length t.pis
let n_ffs t = Array.length t.state

let equal a b = a.pis = b.pis && a.state = b.state

let bits_to_string bits =
  String.init (Array.length bits) (fun i -> if bits.(i) then '1' else '0')

let to_string t = bits_to_string t.state ^ "/" ^ bits_to_string t.pis
