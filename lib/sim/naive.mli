(** Scalar reference simulator (obviously-correct, slow).

    The test suite validates the bit-parallel engines and fault simulators
    against this module. *)

(** [eval_gate2 kind inputs] — 2-valued gate function. *)
val eval_gate2 : Asc_netlist.Gate.kind -> bool list -> bool

(** [eval_gate3 kind inputs] — pessimistic 3-valued gate function,
    [None] = X. *)
val eval_gate3 : Asc_netlist.Gate.kind -> bool option list -> bool option

(** Combinational evaluation; returns every gate's value. *)
val eval_comb :
  Asc_netlist.Circuit.t -> pis:bool array -> state:bool array -> bool array

(** PO values out of a full gate-value array. *)
val outputs_of : Asc_netlist.Circuit.t -> bool array -> bool array

(** Next-state values out of a full gate-value array. *)
val next_state_of : Asc_netlist.Circuit.t -> bool array -> bool array

(** Run a PI sequence from a binary state: per-cycle PO vectors and the
    final state. *)
val run :
  Asc_netlist.Circuit.t ->
  init:bool array ->
  seq:bool array array ->
  bool array array * bool array

val eval_comb3 :
  Asc_netlist.Circuit.t ->
  pis:bool option array ->
  state:bool option array ->
  bool option array

(** 3-valued run from a (possibly unknown) initial state. *)
val run3 :
  Asc_netlist.Circuit.t ->
  init:bool option array ->
  seq:bool array array ->
  bool option array array * bool option array
