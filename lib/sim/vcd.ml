(* VCD (Value Change Dump) waveform writer.

   Dumps the fault-free trajectory of a scan test — every signal of the
   circuit over the test's functional cycles, plus a generated clock — in
   the standard VCD format, viewable in GTKWave and friends.  One VCD time
   step is half a clock cycle: values change on the rising edge. *)

module Circuit = Asc_netlist.Circuit

(* VCD identifier codes: printable ASCII, multi-character, excluding '#'
   and '$' (legal per the standard but confusing to simple parsers). *)
let alphabet =
  let chars = ref [] in
  for ch = 126 downto 33 do
    if ch <> Char.code '#' && ch <> Char.code '$' then chars := Char.chr ch :: !chars
  done;
  Array.of_list !chars

let code_of_index i =
  let base = Array.length alphabet in
  let rec go i acc =
    let acc = String.make 1 alphabet.(i mod base) ^ acc in
    if i < base then acc else go ((i / base) - 1) acc
  in
  go i ""

let header c =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "$version asc waveform dump $end\n";
  Buffer.add_string buf "$timescale 1ns $end\n";
  Buffer.add_string buf (Printf.sprintf "$scope module %s $end\n" (Circuit.name c));
  Buffer.add_string buf "$var wire 1 ! clock $end\n";
  for g = 0 to Circuit.n_gates c - 1 do
    Buffer.add_string buf
      (Printf.sprintf "$var wire 1 %s %s $end\n" (code_of_index (g + 1))
         (Circuit.signal_name c g))
  done;
  Buffer.add_string buf "$upscope $end\n$enddefinitions $end\n";
  buf

(* Dump the fault-free run of (si, seq). *)
let of_scan_test c ~si ~seq =
  let buf = header c in
  let n = Circuit.n_gates c in
  let previous = Array.make n None in
  let state = ref (Array.copy si) in
  let emit_time t = Buffer.add_string buf (Printf.sprintf "#%d\n" t) in
  Array.iteri
    (fun cycle pis ->
      let values = Naive.eval_comb c ~pis ~state:!state in
      emit_time (2 * cycle);
      Buffer.add_string buf "1!\n";
      for g = 0 to n - 1 do
        if previous.(g) <> Some values.(g) then begin
          Buffer.add_string buf
            (Printf.sprintf "%c%s\n" (if values.(g) then '1' else '0')
               (code_of_index (g + 1)));
          previous.(g) <- Some values.(g)
        end
      done;
      emit_time ((2 * cycle) + 1);
      Buffer.add_string buf "0!\n";
      state := Naive.next_state_of c values)
    seq;
  emit_time (2 * Array.length seq);
  Buffer.contents buf

let write_file path c ~si ~seq =
  let oc = open_out path in
  (try output_string oc (of_scan_test c ~si ~seq)
   with e ->
     close_out oc;
     raise e);
  close_out oc
