(** A combinational test pattern: primary-input values plus present-state
    (scan-in) values.  Equivalent to a scan test with a length-one PI
    sequence. *)

type t = { pis : bool array; state : bool array }

val create : pis:bool array -> state:bool array -> t
val random : Asc_util.Rng.t -> n_pis:int -> n_ffs:int -> t
val n_pis : t -> int
val n_ffs : t -> int
val equal : t -> t -> bool

(** ["state/pis"] bit-string rendering. *)
val to_string : t -> string
