(** Bit-parallel 2-valued simulation engine.

    Each signal carries one {!Asc_util.Word.width}-lane word.  Lanes are,
    depending on the caller: parallel patterns, parallel faulty machines, or
    parallel candidate scan-in states.  Faults are injected with lane-masked
    {!Override}s.

    A clock cycle is {!eval} (combinational sweep), reads of {!po_word} /
    {!next_state_word}, then {!capture}. *)

type t

(** [create c overrides] — a machine for circuit [c] with the given
    injected overrides (empty list for a fault-free machine). *)
val create : Asc_netlist.Circuit.t -> Override.t list -> t

val circuit : t -> Asc_netlist.Circuit.t

(** Swap the injected override set, reusing the machine's arrays. *)
val set_overrides : t -> Override.t list -> unit

(** Load a scalar state, replicated across all lanes. *)
val set_state_bools : t -> bool array -> unit

(** Load per-lane state words (one word per flip-flop, copied). *)
val set_state_words : t -> int array -> unit

val state_word : t -> int -> int

(** Copy of the current state words. *)
val state_words : t -> int array

(** Evaluate the combinational logic from the given PI words and the
    current state. *)
val eval : t -> pi_words:int array -> unit

(** Value of an arbitrary gate after {!eval}. *)
val value : t -> int -> int

(** Value at primary output [i] after {!eval}. *)
val po_word : t -> int -> int

(** The D value flip-flop [i] would capture (with DFF-pin overrides). *)
val next_state_word : t -> int -> int

(** Clock edge: latch all next-state values. *)
val capture : t -> unit

(** [eval] followed by [capture]. *)
val step : t -> pi_words:int array -> unit

(** [eval_body kind get n] — the raw word-parallel gate function over [n]
    fanin words supplied by [get]; exposed for engines built on top (e.g.
    the transition-fault simulator). *)
val eval_body : Asc_netlist.Gate.kind -> (int -> int) -> int -> int
