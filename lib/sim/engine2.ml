(* Bit-parallel 2-valued simulation engine.

   Every signal holds one word of [Asc_util.Word.width] independent lanes.
   Depending on the caller, lanes are parallel input patterns (PPSFP-style
   combinational fault simulation), parallel faulty machines (sequential
   fault simulation of one scan test), or parallel candidate scan-in states
   (Phase 1 of the compaction procedure).  Fault injection is expressed with
   lane-masked {!Override}s, so the same engine serves all three uses.

   One cycle is: [eval] (load sources, sweep the combinational order), read
   PO/next-state words, [capture] (clock edge). *)

open Asc_util

module Circuit = Asc_netlist.Circuit
module Gate = Asc_netlist.Gate

type t = {
  c : Circuit.t;
  kinds : Gate.kind array;
  (* Flattened fanins shared with the circuit: gate [g]'s fanins are
     [flat.(off.(g)) .. flat.(off.(g+1) - 1)] — one contiguous array keeps
     the evaluation sweep cache-friendly.  Read-only. *)
  flat : int array;
  off : int array;
  mutable ovr : Override.table;
  mutable source_ovr : Override.t list; (* output overrides on Input/Dff gates *)
  v : int array;
  state : int array; (* per DFF index *)
}

let split_overrides c overrides =
  let table = Override.table (Circuit.n_gates c) overrides in
  let source_ovr =
    List.filter
      (fun (o : Override.t) -> o.pin = -1 && Gate.is_source (Circuit.kind c o.gate))
      overrides
  in
  (table, source_ovr)

let create c overrides =
  let n = Circuit.n_gates c in
  let ovr, source_ovr = split_overrides c overrides in
  {
    c;
    kinds = Array.init n (Circuit.kind c);
    flat = Circuit.fanin_flat c;
    off = Circuit.fanin_off c;
    ovr;
    source_ovr;
    v = Array.make n 0;
    state = Array.make (Circuit.n_dffs c) 0;
  }

(* Swap the injected fault set without reallocating the value arrays; lets
   fault simulators reuse one machine across fault groups. *)
let set_overrides t overrides =
  let ovr, source_ovr = split_overrides t.c overrides in
  t.ovr <- ovr;
  t.source_ovr <- source_ovr

let circuit t = t.c

let set_state_bools t bits =
  if Array.length bits <> Array.length t.state then invalid_arg "Engine2.set_state_bools";
  Array.iteri (fun i b -> t.state.(i) <- Word.splat b) bits

let set_state_words t words =
  if Array.length words <> Array.length t.state then invalid_arg "Engine2.set_state_words";
  Array.blit words 0 t.state 0 (Array.length words)

let state_word t i = t.state.(i)

let state_words t = Array.copy t.state

(* Evaluate the body function of gate [g] with fanin words supplied by
   [get]; the result is masked to the lane width. *)
let eval_body kind get n =
  match (kind : Gate.kind) with
  | Gate.And ->
      let acc = ref (get 0) in
      for i = 1 to n - 1 do
        acc := !acc land get i
      done;
      !acc
  | Gate.Nand ->
      let acc = ref (get 0) in
      for i = 1 to n - 1 do
        acc := !acc land get i
      done;
      lnot !acc land Word.mask
  | Gate.Or ->
      let acc = ref (get 0) in
      for i = 1 to n - 1 do
        acc := !acc lor get i
      done;
      !acc
  | Gate.Nor ->
      let acc = ref (get 0) in
      for i = 1 to n - 1 do
        acc := !acc lor get i
      done;
      lnot !acc land Word.mask
  | Gate.Xor ->
      let acc = ref (get 0) in
      for i = 1 to n - 1 do
        acc := !acc lxor get i
      done;
      !acc
  | Gate.Xnor ->
      let acc = ref (get 0) in
      for i = 1 to n - 1 do
        acc := !acc lxor get i
      done;
      lnot !acc land Word.mask
  | Gate.Not -> lnot (get 0) land Word.mask
  | Gate.Buf -> get 0
  | Gate.Const0 -> 0
  | Gate.Const1 -> Word.mask
  | Gate.Input | Gate.Dff -> invalid_arg "Engine2: source gate in evaluation order"

let eval_overridden t g =
  let lo = t.off.(g) in
  let overrides = Override.at t.ovr g in
  let get i =
    let w = ref t.v.(t.flat.(lo + i)) in
    List.iter (fun (o : Override.t) -> if o.pin = i then w := Override.apply o !w) overrides;
    !w
  in
  let body = eval_body t.kinds.(g) get (t.off.(g + 1) - lo) in
  List.fold_left
    (fun w (o : Override.t) -> if o.pin = -1 then Override.apply o w else w)
    body overrides

let eval t ~pi_words =
  let c = t.c and v = t.v in
  let inputs = Circuit.inputs c in
  if Array.length pi_words <> Array.length inputs then invalid_arg "Engine2.eval: PI arity";
  Array.iteri (fun i g -> v.(g) <- pi_words.(i)) inputs;
  Array.iteri (fun i g -> v.(g) <- t.state.(i)) (Circuit.dffs c);
  List.iter (fun (o : Override.t) -> v.(o.gate) <- Override.apply o v.(o.gate)) t.source_ovr;
  let order = Circuit.order c in
  let kinds = t.kinds and flat = t.flat and off = t.off in
  for idx = 0 to Array.length order - 1 do
    let g = Array.unsafe_get order idx in
    if Override.has t.ovr g then v.(g) <- eval_overridden t g
    else begin
      (* Hot path: inline the common gate bodies over the flattened fanin
         slice, with a dedicated 2-input fast path. *)
      let lo = Array.unsafe_get off g in
      let hi = Array.unsafe_get off (g + 1) in
      let w =
        if hi - lo = 2 then begin
          let a = Array.unsafe_get v (Array.unsafe_get flat lo) in
          let b = Array.unsafe_get v (Array.unsafe_get flat (lo + 1)) in
          match Array.unsafe_get kinds g with
          | Gate.And -> a land b
          | Gate.Nand -> lnot (a land b) land Word.mask
          | Gate.Or -> a lor b
          | Gate.Nor -> lnot (a lor b) land Word.mask
          | Gate.Xor -> a lxor b
          | Gate.Xnor -> lnot (a lxor b) land Word.mask
          | Gate.Not | Gate.Buf | Gate.Const0 | Gate.Const1 | Gate.Input | Gate.Dff ->
              assert false
        end
        else
          match Array.unsafe_get kinds g with
          | Gate.And ->
              let acc = ref (Array.unsafe_get v (Array.unsafe_get flat lo)) in
              for i = lo + 1 to hi - 1 do
                acc := !acc land Array.unsafe_get v (Array.unsafe_get flat i)
              done;
              !acc
          | Gate.Nand ->
              let acc = ref (Array.unsafe_get v (Array.unsafe_get flat lo)) in
              for i = lo + 1 to hi - 1 do
                acc := !acc land Array.unsafe_get v (Array.unsafe_get flat i)
              done;
              lnot !acc land Word.mask
          | Gate.Or ->
              let acc = ref (Array.unsafe_get v (Array.unsafe_get flat lo)) in
              for i = lo + 1 to hi - 1 do
                acc := !acc lor Array.unsafe_get v (Array.unsafe_get flat i)
              done;
              !acc
          | Gate.Nor ->
              let acc = ref (Array.unsafe_get v (Array.unsafe_get flat lo)) in
              for i = lo + 1 to hi - 1 do
                acc := !acc lor Array.unsafe_get v (Array.unsafe_get flat i)
              done;
              lnot !acc land Word.mask
          | Gate.Xor ->
              let acc = ref (Array.unsafe_get v (Array.unsafe_get flat lo)) in
              for i = lo + 1 to hi - 1 do
                acc := !acc lxor Array.unsafe_get v (Array.unsafe_get flat i)
              done;
              !acc
          | Gate.Xnor ->
              let acc = ref (Array.unsafe_get v (Array.unsafe_get flat lo)) in
              for i = lo + 1 to hi - 1 do
                acc := !acc lxor Array.unsafe_get v (Array.unsafe_get flat i)
              done;
              lnot !acc land Word.mask
          | Gate.Not -> lnot (Array.unsafe_get v (Array.unsafe_get flat lo)) land Word.mask
          | Gate.Buf -> Array.unsafe_get v (Array.unsafe_get flat lo)
          | Gate.Const0 -> 0
          | Gate.Const1 -> Word.mask
          | Gate.Input | Gate.Dff -> assert false
      in
      Array.unsafe_set v g w
    end
  done

let value t g = t.v.(g)

let po_word t i = t.v.((Circuit.outputs t.c).(i))

(* The D value flip-flop [i] would capture at the next clock edge, with any
   DFF input-pin overrides applied. *)
let next_state_word t i =
  let d = (Circuit.dffs t.c).(i) in
  let w = ref t.v.(Circuit.dff_input t.c d) in
  if Override.has t.ovr d then
    List.iter
      (fun (o : Override.t) -> if o.pin = 0 then w := Override.apply o !w)
      (Override.at t.ovr d);
  !w

let capture t =
  for i = 0 to Array.length t.state - 1 do
    t.state.(i) <- next_state_word t i
  done

let step t ~pi_words =
  eval t ~pi_words;
  capture t
