(** Regeneration of the paper's Tables 1–5 (plus the at-speed extension
    table) from per-circuit experiment runs. *)

type run = Asc_core.Experiments.circuit_run

val table1 : run list -> Asc_util.Table.t
val table2 : run list -> Asc_util.Table.t

(** Totals exclude s35932, matching the paper's footnote. *)
val table3 : run list -> Asc_util.Table.t

val table4 : run list -> Asc_util.Table.t
val table5 : run list -> Asc_util.Table.t

(** Extension: transition-fault coverage of the final test sets. *)
val table_at_speed : run list -> Asc_util.Table.t

val all_tables : ?with_at_speed:bool -> run list -> Asc_util.Table.t list
val render_all : ?with_at_speed:bool -> run list -> string
