(* Regeneration of the paper's tables.

   Each [tableN] function renders the corresponding table of the paper
   from a list of per-circuit experiment runs, with the same columns and
   layout (Table 3's total row excludes s35932, as the paper's footnote
   does).  [table_at_speed] is the repository's extension: transition-fault
   coverage, quantifying the paper's at-speed claim. *)

open Asc_util
module Circuit = Asc_netlist.Circuit
module Scan_test = Asc_scan.Scan_test
module Experiments = Asc_core.Experiments

type run = Experiments.circuit_run

let n_sv (r : run) = Circuit.n_dffs r.prepared.circuit

let detected_count (_ : run) (result : Asc_core.Pipeline.result) =
  Bitvec.count result.final_detected

(* Table 1: faults detected by T0, by tau_seq ("scan"), by the final set. *)
let table1 (runs : run list) =
  let t =
    Table.create ~caption:"Table 1: Detected faults (directed T0)"
      ~groups:[ ("", 4); ("detected", 3) ]
      [
        Table.left "circuit"; Table.right "ff"; Table.right "comb tsts";
        Table.right "flts"; Table.right "T0"; Table.right "scan";
        Table.right "final";
      ]
  in
  List.iter
    (fun (r : run) ->
      Table.add_row t
        [
          r.name;
          string_of_int (n_sv r);
          string_of_int (Array.length r.prepared.comb_tests);
          string_of_int (Array.length r.prepared.faults);
          string_of_int r.directed.f0_count;
          string_of_int (Bitvec.count r.directed.f_seq);
          string_of_int (detected_count r r.directed);
        ])
    runs;
  t

(* Table 2: sequence lengths and Phase-3 top-up counts. *)
let table2 (runs : run list) =
  let t =
    Table.create ~caption:"Table 2: Test lengths (directed T0)"
      ~groups:[ ("", 1); ("seq length", 2); ("", 1) ]
      [
        Table.left "circuit"; Table.right "T0"; Table.right "scan";
        Table.right "added c.tst";
      ]
  in
  List.iter
    (fun (r : run) ->
      Table.add_row t
        [
          r.name;
          string_of_int r.directed.t0_length;
          string_of_int (Scan_test.length r.directed.tau_seq);
          string_of_int (Array.length r.directed.added);
        ])
    runs;
  t

(* Table 3: clock cycles of every flow.  The paper's totals exclude
   s35932. *)
let table3 (runs : run list) =
  let t =
    Table.create ~caption:"Table 3: Numbers of clock cycles"
      ~groups:[ ("", 2); ("[4]", 2); ("prop directed", 2); ("prop rand", 2) ]
      [
        Table.left "circuit"; Table.right "[2,3]"; Table.right "init";
        Table.right "comp"; Table.right "init"; Table.right "comp";
        Table.right "init"; Table.right "comp";
      ]
  in
  let totals = Array.make 6 0 in
  List.iter
    (fun (r : run) ->
      let dyn =
        match r.dynamic_baseline with
        | Some d ->
            string_of_int (Experiments.dynamic_cycles d r.prepared.circuit)
        | None -> "-"
      in
      let cells =
        [|
          r.static_baseline.cycles_initial; r.static_baseline.cycles_final;
          r.directed.cycles_initial; r.directed.cycles_final;
          r.random.cycles_initial; r.random.cycles_final;
        |]
      in
      if r.name <> "s35932" then Array.iteri (fun i v -> totals.(i) <- totals.(i) + v) cells;
      Table.add_row t
        (r.name :: dyn :: Array.to_list (Array.map string_of_int cells)))
    runs;
  if List.length runs > 1 then
    Table.add_row t
      ("total*" :: "-" :: Array.to_list (Array.map string_of_int totals));
  t

(* Table 4: at-speed PI sequence lengths (average and range) of the final
   compacted test sets. *)
let table4 (runs : run list) =
  let t =
    Table.create ~caption:"Table 4: At-speed test lengths"
      ~groups:[ ("", 1); ("[4]", 2); ("prop directed", 2); ("prop rand", 2) ]
      [
        Table.left "circuit"; Table.right "ave"; Table.right "range";
        Table.right "ave"; Table.right "range"; Table.right "ave";
        Table.right "range";
      ]
  in
  let fmt tests =
    let s = Asc_scan.Time_model.length_stats tests in
    (Printf.sprintf "%.2f" s.average, Printf.sprintf "%d-%d" s.lo s.hi)
  in
  List.iter
    (fun (r : run) ->
      let a4, r4 = fmt r.static_baseline.final_tests in
      let ad, rd = fmt r.directed.final_tests in
      let ar, rr = fmt r.random.final_tests in
      Table.add_row t [ r.name; a4; r4; ad; rd; ar; rr ])
    runs;
  t

(* Table 5: the random-T0 runs in the paper's layout. *)
let table5 (runs : run list) =
  let t =
    Table.create ~caption:"Table 5: Results for random sequences"
      ~groups:[ ("", 1); ("detected", 3); ("seq length", 2); ("", 1) ]
      [
        Table.left "circuit"; Table.right "T0"; Table.right "scan";
        Table.right "final"; Table.right "T0"; Table.right "scan";
        Table.right "added c.tst";
      ]
  in
  List.iter
    (fun (r : run) ->
      Table.add_row t
        [
          r.name;
          string_of_int r.random.f0_count;
          string_of_int (Bitvec.count r.random.f_seq);
          string_of_int (detected_count r r.random);
          string_of_int r.random.t0_length;
          string_of_int (Scan_test.length r.random.tau_seq);
          string_of_int (Array.length r.random.added);
        ])
    runs;
  t

(* Extension: transition-fault coverage of the final test sets — the
   paper's at-speed claim, quantified. *)
let table_at_speed (runs : run list) =
  let t =
    Table.create
      ~caption:
        "Table A (extension): Transition-fault coverage of the final test sets"
      [
        Table.left "circuit"; Table.right "trans flts"; Table.right "[4] comp";
        Table.right "prop directed"; Table.right "prop rand";
      ]
  in
  List.iter
    (fun (r : run) ->
      let c = r.prepared.circuit in
      let tf = Asc_tfault.Tfault.universe c in
      let cov tests = Bitvec.count (Asc_tfault.Tfault.coverage c tests ~faults:tf) in
      Table.add_row t
        [
          r.name;
          string_of_int (Array.length tf);
          string_of_int (cov r.static_baseline.final_tests);
          string_of_int (cov r.directed.final_tests);
          string_of_int (cov r.random.final_tests);
        ])
    runs;
  t

let all_tables ?(with_at_speed = true) runs =
  let base =
    [ table1 runs; table2 runs; table3 runs; table4 runs; table5 runs ]
  in
  if with_at_speed then base @ [ table_at_speed runs ] else base

let render_all ?with_at_speed runs =
  String.concat "\n" (List.map Table.render (all_tables ?with_at_speed runs))
