(* Static test compaction by combining tests — the procedure of [4].

   Combining tau_i and tau_j removes SO_i and SI_j and concatenates the
   primary input sequences: tau_{i,j} = (SI_i, T_i . T_j).  Each combination
   removes one scan operation, saving N_SV clock cycles at the price of
   re-running T_j from whatever state T_i leaves behind.  A combination is
   accepted only if the fault coverage of the whole test set does not drop.

   Coverage bookkeeping: with the tests x faults detection matrix and
   per-fault detection counts, the only faults at risk when combining
   (i, j) are those detected by tau_i or tau_j and by no other test; the
   combined test is simulated over the union of the two rows, and accepted
   iff every at-risk fault is still detected.

   Pair order: at-risk sets are cheap to size, so attempts are made in
   ascending |at-risk| order (easiest first), sweeping until a full sweep
   makes no change. *)

open Asc_util
module Circuit = Asc_netlist.Circuit
module Scan_test = Asc_scan.Scan_test

type result = {
  tests : Scan_test.t array;
  combinations : int; (* accepted combinations *)
  attempts : int; (* simulated candidate pairs *)
}

type config = { max_sweeps : int; max_attempts : int }

let default_config = { max_sweeps = 6; max_attempts = 60_000 }

let run ?pool ?budget ?tel ?(config = default_config) c (tests : Scan_test.t array) ~faults ~targets =
  let n = Array.length tests in
  if n = 0 then { tests; combinations = 0; attempts = 0 }
  else begin
    let mat = Asc_scan.Tset.detection_matrix ?pool ?budget ?tel ~only:targets c tests ~faults in
    (* Restrict every row to the target faults. *)
    for i = 0 to n - 1 do
      Bitvec.inter_into ~into:(Bitmat.row mat i) targets
    done;
    let counts = Bitmat.column_counts mat in
    let current = Array.copy tests in
    let alive = Array.make n true in
    let combinations = ref 0 and attempts = ref 0 in
    (* Faults whose coverage would be lost if rows i and j both vanish. *)
    let at_risk i j =
      let union = Bitvec.union (Bitmat.row mat i) (Bitmat.row mat j) in
      Bitvec.fold_set
        (fun acc f ->
          let own =
            (if Bitvec.get (Bitmat.row mat i) f then 1 else 0)
            + if Bitvec.get (Bitmat.row mat j) f then 1 else 0
          in
          if counts.(f) = own then f :: acc else acc)
        [] union
      |> List.rev
    in
    let try_combine i j =
      incr attempts;
      let risk = at_risk i j in
      let combined = Scan_test.combine current.(i) current.(j) in
      let subset = Array.of_list risk in
      if
        Asc_fault.Seq_fsim.verify_required ?pool ?budget ?tel c ~si:combined.si ~seq:combined.seq
          ~faults ~subset
      then begin
        (* Re-derive row i over everything the two tests used to detect
           (the combined test may detect more; that only helps and is left
           uncounted, keeping the bookkeeping conservative). *)
        let union = Bitvec.union (Bitmat.row mat i) (Bitmat.row mat j) in
        let row' = Scan_test.detect ?pool ?budget ?tel ~only:union c combined ~faults in
        Bitvec.iter_set (fun f -> counts.(f) <- counts.(f) - 1) (Bitmat.row mat i);
        Bitvec.iter_set (fun f -> counts.(f) <- counts.(f) - 1) (Bitmat.row mat j);
        Bitvec.iter_set (fun f -> counts.(f) <- counts.(f) + 1) row';
        current.(i) <- combined;
        Bitmat.set_row mat i row';
        Bitmat.set_row mat j (Bitvec.create (Array.length faults));
        alive.(j) <- false;
        incr combinations;
        true
      end
      else false
    in
    let progress = ref true in
    let sweep = ref 0 in
    while !progress && !sweep < config.max_sweeps && !attempts < config.max_attempts do
      incr sweep;
      progress := false;
      (* Order candidate pairs by at-risk size (cheap to compute). *)
      let pairs = ref [] in
      for i = 0 to n - 1 do
        if alive.(i) then
          for j = 0 to n - 1 do
            if j <> i && alive.(j) then begin
              let risk_size = List.length (at_risk i j) in
              pairs := (risk_size, i, j) :: !pairs
            end
          done
      done;
      let pairs = List.sort compare !pairs in
      List.iter
        (fun (_, i, j) ->
          if alive.(i) && alive.(j) && !attempts < config.max_attempts then
            if try_combine i j then progress := true)
        pairs
    done;
    let kept = ref [] in
    for i = n - 1 downto 0 do
      if alive.(i) then kept := current.(i) :: !kept
    done;
    { tests = Array.of_list !kept; combinations = !combinations; attempts = !attempts }
  end
