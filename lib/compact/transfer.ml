(* Static compaction with transfer sequences, after [7].

   The combining operation of [4] fails on a pair (tau_i, tau_j) whenever
   T_j no longer detects its needed faults from the state tau_i leaves
   behind.  [7] improves on this by inserting a *transfer sequence* T_x
   between T_i and T_j that drives the circuit from tau_i's final state
   toward SI_j:

     tau_{i,x,j} = (SI_i, T_i . T_x . T_j)

   The combination removes one scan operation (N_SV cycles) at the price
   of L(T_x) extra functional cycles, so any transfer shorter than N_SV is
   a win when coverage is preserved.

   Transfer search is simulation-based: candidate sequences (random,
   correlated walks, held vectors) of growing length are simulated from
   tau_i's scan-out state and ranked by Hamming closeness of their final
   state to SI_j; the best few candidates are then verified for coverage
   preservation exactly like a plain combination.  The paper reports [7]
   as orthogonal to its own contribution; the ablation bench measures how
   much it adds on top of [4] here. *)

open Asc_util
module Circuit = Asc_netlist.Circuit
module Scan_test = Asc_scan.Scan_test
module Naive = Asc_sim.Naive

type config = {
  combine : Combine.config; (* the plain combining pass run first *)
  candidates : int; (* transfer candidates simulated per pair *)
  verify_best : int; (* how many of them get a full coverage check *)
  max_length : int option; (* cap on L(T_x); default N_SV / 4 *)
  max_pairs : int; (* pairs attempted with transfers *)
}

let default_config =
  { combine = Combine.default_config; candidates = 12; verify_best = 2;
    max_length = None; max_pairs = 400 }

type result = {
  tests : Scan_test.t array;
  combinations : int; (* plain combinations accepted *)
  transfers : int; (* transfer-enabled combinations accepted *)
  transfer_cycles : int; (* functional cycles spent on transfers *)
}

(* Final fault-free state of a sequence applied from [state]. *)
let run_state c ~state ~seq =
  let s = ref state in
  Array.iter (fun pis -> s := Naive.next_state_of c (Naive.eval_comb c ~pis ~state:!s)) seq;
  !s

let hamming a b =
  let d = ref 0 in
  Array.iteri (fun i v -> if v <> b.(i) then incr d) a;
  !d

let run ?(config = default_config) c (tests : Scan_test.t array) ~faults ~targets ~rng =
  (* Plain [4] combining first; transfers only attack the leftovers. *)
  let base = Combine.run ~config:config.combine c tests ~faults ~targets in
  let n = Array.length base.tests in
  let max_length =
    match config.max_length with
    | Some l -> max 1 l
    | None -> max 1 (Circuit.n_dffs c / 4)
  in
  if n <= 1 || Circuit.n_dffs c = 0 then
    { tests = base.tests; combinations = base.combinations; transfers = 0;
      transfer_cycles = 0 }
  else begin
    let current = Array.copy base.tests in
    let alive = Array.make n true in
    let transfers = ref 0 and transfer_cycles = ref 0 and attempts = ref 0 in
    (* Coverage bookkeeping, as in Combine. *)
    let mat = Asc_scan.Tset.detection_matrix ~only:targets c current ~faults in
    for i = 0 to n - 1 do
      Bitvec.inter_into ~into:(Bitmat.row mat i) targets
    done;
    let counts = Bitmat.column_counts mat in
    let at_risk i j =
      let union = Bitvec.union (Bitmat.row mat i) (Bitmat.row mat j) in
      Bitvec.fold_set
        (fun acc f ->
          let own =
            (if Bitvec.get (Bitmat.row mat i) f then 1 else 0)
            + if Bitvec.get (Bitmat.row mat j) f then 1 else 0
          in
          if counts.(f) = own then f :: acc else acc)
        [] union
      |> List.rev |> Array.of_list
    in
    let n_pis = Circuit.n_inputs c in
    let make_candidate len last =
      match Rng.int rng 3 with
      | 0 -> Asc_atpg.Random_tgen.generate rng ~n_pis ~len
      | 1 ->
          let v = Rng.bool_array rng n_pis in
          Array.init len (fun _ -> Array.copy v)
      | _ -> Asc_atpg.Random_tgen.walk rng ~n_pis ~len ~flip:0.2 ~start:last
    in
    let try_pair i j =
      incr attempts;
      let ti = current.(i) and tj = current.(j) in
      let from_state = Scan_test.scan_out c ti in
      (* Rank candidate transfers by how close they park the state to
         SI_j; [None] stands for the empty transfer (plain combining
         already failed, but lengths may have changed since). *)
      let last = ti.seq.(Scan_test.length ti - 1) in
      let scored = ref [ (hamming from_state tj.si, [||]) ] in
      for _ = 1 to config.candidates do
        let len = 1 + Rng.int rng max_length in
        let tx = make_candidate len last in
        let final = run_state c ~state:from_state ~seq:tx in
        scored := (hamming final tj.si + Array.length tx, tx) :: !scored
      done;
      let ranked = List.sort (fun (a, _) (b, _) -> compare a b) !scored in
      let rec verify k = function
        | [] -> false
        | (_, tx) :: rest ->
            if k >= config.verify_best then false
            else begin
              let combined =
                Scan_test.create ~si:ti.si ~seq:(Array.concat [ ti.seq; tx; tj.seq ])
              in
              let risk = at_risk i j in
              if
                Asc_fault.Seq_fsim.verify_required c ~si:combined.si ~seq:combined.seq
                  ~faults ~subset:risk
              then begin
                let union = Bitvec.union (Bitmat.row mat i) (Bitmat.row mat j) in
                let row' = Scan_test.detect ~only:union c combined ~faults in
                Bitvec.iter_set (fun f -> counts.(f) <- counts.(f) - 1) (Bitmat.row mat i);
                Bitvec.iter_set (fun f -> counts.(f) <- counts.(f) - 1) (Bitmat.row mat j);
                Bitvec.iter_set (fun f -> counts.(f) <- counts.(f) + 1) row';
                current.(i) <- combined;
                Bitmat.set_row mat i row';
                Bitmat.set_row mat j (Bitvec.create (Array.length faults));
                alive.(j) <- false;
                incr transfers;
                transfer_cycles := !transfer_cycles + Array.length tx;
                true
              end
              else verify (k + 1) rest
            end
      in
      verify 0 ranked
    in
    (* One greedy pass over the surviving pairs. *)
    (try
       for i = 0 to n - 1 do
         for j = 0 to n - 1 do
           if !attempts >= config.max_pairs then raise Exit;
           if i <> j && alive.(i) && alive.(j) then ignore (try_pair i j)
         done
       done
     with Exit -> ());
    let kept = ref [] in
    for i = n - 1 downto 0 do
      if alive.(i) then kept := current.(i) :: !kept
    done;
    {
      tests = Array.of_list !kept;
      combinations = base.combinations;
      transfers = !transfers;
      transfer_cycles = !transfer_cycles;
    }
  end
