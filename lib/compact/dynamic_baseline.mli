(** Dynamic compaction baseline in the spirit of [2], [3]: after each
    scan-in, keep applying functional vectors (constrained PODEM from the
    captured state) while they detect new faults; scan out when extension
    stops paying.  An approximation — see DESIGN.md — used for Table 3's
    [2,3] column. *)

type config = { extension_tries : int; backtrack_limit : int }

val default_config : config

type result = {
  tests : Asc_scan.Scan_test.t array;
  detected : Asc_util.Bitvec.t;
  unresolved : Asc_util.Bitvec.t;
      (** Targets PODEM could not classify or detect. *)
}

val run :
  ?config:config ->
  Asc_netlist.Circuit.t ->
  faults:Asc_fault.Fault.t array ->
  targets:Asc_util.Bitvec.t ->
  rng:Asc_util.Rng.t ->
  result
