(** Static compaction with transfer sequences, after [7]: when plain
    combining fails on a pair, search for a short transfer sequence [T_x]
    such that [(SI_i, T_i . T_x . T_j)] preserves coverage — trading
    [L(T_x)] functional cycles for one scan operation ([N_SV] cycles). *)

type config = {
  combine : Combine.config;  (** The plain combining pass run first. *)
  candidates : int;  (** Transfer candidates simulated per pair. *)
  verify_best : int;  (** Candidates given a full coverage check. *)
  max_length : int option;  (** Cap on [L(T_x)]; default [N_SV / 4]. *)
  max_pairs : int;  (** Pairs attempted with transfers. *)
}

val default_config : config

type result = {
  tests : Asc_scan.Scan_test.t array;
  combinations : int;  (** Plain combinations accepted. *)
  transfers : int;  (** Transfer-enabled combinations accepted. *)
  transfer_cycles : int;  (** Functional cycles spent on transfers. *)
}

val run :
  ?config:config ->
  Asc_netlist.Circuit.t ->
  Asc_scan.Scan_test.t array ->
  faults:Asc_fault.Fault.t array ->
  targets:Asc_util.Bitvec.t ->
  rng:Asc_util.Rng.t ->
  result
