(** Phase 3 test selection: greedy covering of the faults left undetected
    by [tau_seq] using length-one tests from the combinational set C —
    minimum-[n(f)] fault first, covered by [tau_last(f)], as in the paper. *)

type result = {
  selected : int list;  (** Row (test) indices of [matrix], selection order. *)
  uncovered : Asc_util.Bitvec.t;  (** Faults no test detects ([n(f) = 0]). *)
}

(** [select ~matrix ~undetected] — [matrix] rows are the candidate tests,
    columns the faults; [undetected] marks the faults to cover. *)
val select : matrix:Asc_util.Bitmat.t -> undetected:Asc_util.Bitvec.t -> result
