(* Phase 3 test selection (Section 3.4 of the paper).

   Given the detection matrix of the combinational test set C over the
   faults left undetected by tau_seq: repeatedly take the fault f with the
   minimum number n(f) of detecting tests, add the *last* test that detects
   it (tau_last(f)), and drop every fault that test covers.  Faults with
   n(f) = 1 are necessarily picked first, exactly as the paper notes.

   n(f) and last(f) are computed once, up front, per the paper's text. *)

open Asc_util

type result = {
  selected : int list; (* test indices, in selection order *)
  uncovered : Bitvec.t; (* faults no test in C detects (n(f) = 0) *)
}

let select ~matrix ~undetected =
  let n_faults = Bitmat.cols matrix in
  let counts = Bitmat.column_counts matrix in
  let remaining = Bitvec.copy undetected in
  let uncovered = Bitvec.create n_faults in
  Bitvec.iter_set
    (fun f ->
      if counts.(f) = 0 then begin
        Bitvec.set uncovered f;
        Bitvec.clear remaining f
      end)
    undetected;
  let selected = ref [] in
  while not (Bitvec.is_empty remaining) do
    (* The fault detected by the fewest tests. *)
    let best = ref (-1) in
    Bitvec.iter_set
      (fun f -> if !best = -1 || counts.(f) < counts.(!best) then best := f)
      remaining;
    let f = !best in
    let test = Bitmat.last_row_with matrix f in
    assert (test >= 0);
    selected := test :: !selected;
    Bitvec.diff_into ~into:remaining (Bitmat.row matrix test)
  done;
  { selected = List.rev !selected; uncovered }
