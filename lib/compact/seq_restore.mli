(** Static compaction of non-scan test sequences, after [11] (vector
    restoration): restore, hardest faults first, only the vectors each
    fault needs; polish with a chunked omission sweep.  Detection is the
    "without scan" condition (unknown initial state, PO-only).

    The paper compacts its STRATEGATE T0 sequences with [11] before using
    them; this module makes the same preprocessing available. *)

type config = { polish_checks : int }

val default_config : config

type result = {
  seq : bool array array;
  omitted : int;
  detected : Asc_util.Bitvec.t;
      (** No-scan detections of the compacted sequence. *)
}

val run :
  ?config:config ->
  Asc_netlist.Circuit.t ->
  seq:bool array array ->
  faults:Asc_fault.Fault.t array ->
  result
