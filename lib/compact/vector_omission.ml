(* Phase 2: vector omission, after [8].

   Starting from a test (SI, T) that detects the fault set F, omit vectors
   from T without losing any fault in F.  Omission of positions >= p leaves
   the prefix [0, p-1] untouched, so only faults not PO-detected before p —
   plus faults detected only through the scan-out — need re-verification;
   per-fault earliest-PO-detection times drive that narrowing.

   Each trial runs the cheap early-exit verifier over the affected faults,
   most fragile first (scan-out-detected, then latest PO detection), so
   failing trials die quickly; only *accepted* omissions pay for a full
   profile pass to refresh the detection times.  Trials proceed in aligned
   chunks of halving size from the tail, under both a trial-count budget
   and a simulation-work budget (large circuits hit the work budget first). *)

open Asc_util
module Circuit = Asc_netlist.Circuit
module Scan_test = Asc_scan.Scan_test
module Seq_fsim = Asc_fault.Seq_fsim

type config = {
  max_checks : int;
  initial_chunk : int;
  max_work : int; (* budget in fault-group x cycle x gate units *)
}

let default_config =
  { max_checks = 400; initial_chunk = 32; max_work = 60_000_000 }

type result = {
  test : Scan_test.t;
  omitted : int; (* vectors removed *)
  checks : int; (* simulations spent *)
}

let run ?pool ?budget ?tel ?(config = default_config) c (test : Scan_test.t) ~faults ~required =
  let required = Array.of_list (Bitvec.to_list required) in
  if Array.length required = 0 then { test; omitted = 0; checks = 0 }
  else begin
    let n_gates = Circuit.n_gates c in
    let current = ref test in
    let checks = ref 0 and omitted = ref 0 and work = ref 0 in
    (* Earliest PO detection time per required fault under the current
       test; [max_int] for faults that rely on the scan-out. *)
    let po_time =
      let p = Seq_fsim.profile ?pool ?budget ?tel c ~si:test.si ~seq:test.seq ~faults ~subset:required in
      Array.copy p.po_time
    in
    let budget_left () = !checks < config.max_checks && !work < config.max_work in
    (* Try removing [count] vectors at [p]. *)
    let try_omit ~p ~count =
      let len = Scan_test.length !current in
      if count >= len || p + count > len then false
      else begin
        incr checks;
        (* Only faults whose PO detection happens at or after [p] (or that
           are scan-out-detected) can be affected; check the most fragile
           first so failing trials exit early. *)
        let affected = ref [] in
        Array.iteri
          (fun k _ -> if po_time.(k) >= p then affected := k :: !affected)
          required;
        let affected =
          List.sort (fun a b -> compare po_time.(b) po_time.(a)) !affected
          |> Array.of_list
        in
        let candidate = Scan_test.omit_span !current ~p ~count in
        let subset = Array.map (fun k -> required.(k)) affected in
        let new_len = Scan_test.length candidate in
        let groups = (Array.length subset + Word.width - 1) / Word.width in
        work := !work + (groups * new_len * n_gates);
        let ok =
          Seq_fsim.verify_required ?pool ?budget ?tel c ~si:candidate.si ~seq:candidate.seq ~faults
            ~subset
        in
        if ok then begin
          (* Refresh the detection times of the re-verified faults. *)
          let prof =
            Seq_fsim.profile ?pool ?budget ?tel c ~si:candidate.si ~seq:candidate.seq ~faults ~subset
          in
          work := !work + (groups * new_len * n_gates);
          current := candidate;
          omitted := !omitted + count;
          Array.iteri (fun a k -> po_time.(k) <- prof.po_time.(a)) affected
        end;
        ok
      end
    in
    let chunk = ref (min config.initial_chunk (max 1 (Scan_test.length test / 4))) in
    (* Round down to a power of two so halving refines cleanly. *)
    while !chunk land (!chunk - 1) <> 0 do
      chunk := !chunk land (!chunk - 1)
    done;
    if !chunk = 0 then chunk := 1;
    let continue_ = ref true in
    while !continue_ do
      let len = Scan_test.length !current in
      let p = ref (len - !chunk) in
      while !p >= 0 && budget_left () do
        ignore (try_omit ~p:!p ~count:!chunk);
        p := !p - !chunk
      done;
      if !chunk = 1 || not (budget_left ()) then continue_ := false
      else chunk := !chunk / 2
    done;
    { test = !current; omitted = !omitted; checks = !checks }
  end
