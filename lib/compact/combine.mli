(** Static test compaction by combining tests — the procedure of [4].

    Repeatedly replaces a pair [tau_i, tau_j] with [(SI_i, T_i . T_j)] when
    the test set's coverage of [targets] is preserved, removing one scan
    operation per accepted combination. *)

type result = {
  tests : Asc_scan.Scan_test.t array;
  combinations : int;  (** Accepted combinations. *)
  attempts : int;  (** Simulated candidate pairs. *)
}

type config = { max_sweeps : int; max_attempts : int }

val default_config : config

val run :
  ?pool:Asc_util.Domain_pool.t ->
  ?budget:Asc_util.Budget.t ->
  ?tel:Asc_util.Telemetry.t ->
  ?config:config ->
  Asc_netlist.Circuit.t ->
  Asc_scan.Scan_test.t array ->
  faults:Asc_fault.Fault.t array ->
  targets:Asc_util.Bitvec.t ->
  result
