(** Phase 2: vector omission, after [8] — shorten a test's PI sequence
    without losing any fault in [required].

    Omissions are tried in halving chunks from the tail under a check
    budget; per-fault earliest-PO-detection times narrow each check to the
    faults an omission could actually disturb. *)

type config = {
  max_checks : int;  (** Trial-count budget. *)
  initial_chunk : int;  (** Starting chunk size (rounded to a power of 2). *)
  max_work : int;  (** Simulation-work budget (group x cycle x gate units). *)
}

val default_config : config

type result = {
  test : Asc_scan.Scan_test.t;
  omitted : int;  (** Vectors removed. *)
  checks : int;  (** Simulations spent. *)
}

val run :
  ?pool:Asc_util.Domain_pool.t ->
  ?budget:Asc_util.Budget.t ->
  ?tel:Asc_util.Telemetry.t ->
  ?config:config ->
  Asc_netlist.Circuit.t ->
  Asc_scan.Scan_test.t ->
  faults:Asc_fault.Fault.t array ->
  required:Asc_util.Bitvec.t ->
  result
