(* Static compaction of *non-scan* test sequences, after [11] ("vector
   restoration based static compaction").

   The paper's experimental setup compacts its STRATEGATE sequences with
   [11] before using them as T0.  The restoration idea: rather than trying
   to omit vectors one by one, start from an empty selection and *restore*
   the vectors each fault actually needs, working from the hardest faults
   (latest detection time) backwards; vectors never restored are omitted.

   Detection here is the "without scan" condition (unknown initial state,
   3-valued, PO-only).  Dropping a vector shifts the suffix left, so
   restoration decisions are verified by re-simulating the candidate
   subsequence; the loop processes faults in decreasing detection-time
   order and extends the restored *prefix-of-suffixes* until every target
   fault stays detected:

   - candidate = the restored vector set, as a subsequence in original order;
   - a fault still detected by the candidate needs nothing;
   - otherwise restore the omitted vectors up to its original detection
     time (a coarse-grained restoration — one simulation per extension —
     which keeps the pass count linear in the fault count rather than in
     the sequence length).

   A final greedy chunk-omission pass (the [8]-style sweep under no-scan
   semantics) polishes the result. *)

open Asc_util
module Circuit = Asc_netlist.Circuit
module Seq_fsim = Asc_fault.Seq_fsim

type config = { polish_checks : int }

let default_config = { polish_checks = 60 }

type result = {
  seq : bool array array;
  omitted : int;
  detected : Bitvec.t; (* no-scan detections of the compacted sequence *)
}

(* First no-scan detection time of every fault, via prefix bisection-free
   single sweep: simulate once, recording detections per cycle.  The
   incremental simulator gives exactly this by committing one vector at a
   time. *)
let detection_times c ~seq ~faults =
  let inc = Seq_fsim.inc3_create c faults in
  let times = Array.make (Array.length faults) max_int in
  Array.iteri
    (fun t vec ->
      let before = Bitvec.copy (Seq_fsim.inc3_detected inc) in
      let (_ : int) = Seq_fsim.inc3_commit inc [| vec |] in
      let after = Seq_fsim.inc3_detected inc in
      Bitvec.iter_set
        (fun fi -> if not (Bitvec.get before fi) then times.(fi) <- t)
        after)
    seq;
  (times, Bitvec.copy (Seq_fsim.inc3_detected inc))

let subsequence seq keep =
  let out = ref [] in
  Array.iteri (fun i v -> if keep.(i) then out := v :: !out) seq;
  Array.of_list (List.rev !out)

let run ?(config = default_config) c ~seq ~faults =
  let len = Array.length seq in
  if len = 0 then
    { seq; omitted = 0; detected = Bitvec.create (Array.length faults) }
  else begin
    let times, baseline = detection_times c ~seq ~faults in
    let targets = Array.of_list (Bitvec.to_list baseline) in
    (* Hardest first: decreasing original detection time. *)
    Array.sort (fun a b -> compare times.(b) times.(a)) targets;
    let keep = Array.make len false in
    let covered = Bitvec.create (Array.length faults) in
    let current () = subsequence seq keep in
    Array.iter
      (fun fi ->
        if not (Bitvec.get covered fi) then begin
          let det = Seq_fsim.detect_no_scan c ~seq:(current ()) ~faults in
          Bitvec.union_into ~into:covered det;
          if not (Bitvec.get det fi) then begin
            (* Restore everything up to the fault's original detection
               time; by construction the full prefix detects it. *)
            for t = 0 to times.(fi) do
              keep.(t) <- true
            done;
            let det' = Seq_fsim.detect_no_scan c ~seq:(current ()) ~faults in
            Bitvec.union_into ~into:covered det'
          end
        end)
      targets;
    (* Polish: greedy chunk omission under the no-scan condition. *)
    let current = ref (current ()) in
    let checks = ref 0 in
    let required = baseline in
    let chunk = ref (max 1 (Array.length !current / 8)) in
    while !chunk land (!chunk - 1) <> 0 do
      chunk := !chunk land (!chunk - 1)
    done;
    let continue_ = ref true in
    while !continue_ do
      let cur_len = Array.length !current in
      let p = ref (cur_len - !chunk) in
      while !p >= 0 && !checks < config.polish_checks do
        (if !chunk < Array.length !current then begin
           incr checks;
           let candidate =
             Array.append (Array.sub !current 0 !p)
               (Array.sub !current (!p + !chunk) (Array.length !current - !p - !chunk))
           in
           if Array.length candidate > 0 then begin
             let det = Seq_fsim.detect_no_scan c ~seq:candidate ~faults in
             if Bitvec.subset required det then current := candidate
           end
         end);
        p := !p - !chunk
      done;
      if !chunk = 1 || !checks >= config.polish_checks then continue_ := false
      else chunk := !chunk / 2
    done;
    let detected = Seq_fsim.detect_no_scan c ~seq:!current ~faults in
    { seq = !current; omitted = len - Array.length !current; detected }
  end
