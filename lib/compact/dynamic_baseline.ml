(* Dynamic compaction baseline, in the spirit of [2], [3] (Lee & Saluja).

   The dynamic procedures reduce test application time while *generating*
   tests: after a scan-in, they keep applying functional-clock vectors as
   long as doing so detects additional faults, scanning out only when the
   sequence stops paying for itself — each functional vector costs 1 cycle
   against the N_SV cycles of a scan operation.

   This reconstruction: take the next undetected fault, generate a test
   with PODEM (scan-in state + one vector), then repeatedly try to extend
   the test from the *captured* state — a constrained PODEM run with the
   present-state inputs fixed — for further undetected faults.  Extension
   stops when no target succeeds within a try budget or the sequence
   reaches N_SV vectors (beyond which a fresh scan could never be worse).
   The exact algorithm of [2,3] is not specified in the paper; DESIGN.md
   records this as an approximation used only for Table 3's baseline
   column. *)

open Asc_util
module Circuit = Asc_netlist.Circuit
module Scan_test = Asc_scan.Scan_test
module Naive = Asc_sim.Naive

type config = {
  extension_tries : int; (* PODEM targets attempted per extension step *)
  backtrack_limit : int;
}

let default_config = { extension_tries = 10; backtrack_limit = 100 }

type result = {
  tests : Scan_test.t array;
  detected : Bitvec.t;
  unresolved : Bitvec.t; (* targets PODEM could not classify or detect *)
}

let run ?(config = default_config) c ~faults ~targets ~rng =
  let n = Array.length faults in
  let podem = Asc_atpg.Podem.create c in
  let dff_gates = Circuit.dffs c in
  let detected = Bitvec.create n in
  let unresolved = Bitvec.create n in
  let tests = ref [] in
  let next_target () =
    let found = ref (-1) in
    (try
       Bitvec.iter_set
         (fun f ->
           if
             (not (Bitvec.get detected f))
             && not (Bitvec.get unresolved f)
           then begin
             found := f;
             raise Exit
           end)
         targets
     with Exit -> ());
    !found
  in
  let fresh_targets_from ~state ~limit =
    (* Undetected, unresolved-free targets to try under a fixed state. *)
    let fixed =
      Array.to_list (Array.mapi (fun i g -> (g, state.(i))) dff_gates)
    in
    let tried = ref 0 in
    let result = ref None in
    (try
       Bitvec.iter_set
         (fun f ->
           if
             !result = None && !tried < limit
             && (not (Bitvec.get detected f))
             && not (Bitvec.get unresolved f)
           then begin
             incr tried;
             match
               Asc_atpg.Podem.run ~backtrack_limit:config.backtrack_limit ~fixed podem
                 faults.(f)
             with
             | Asc_atpg.Podem.Test cube -> result := Some cube
             | Asc_atpg.Podem.Redundant | Asc_atpg.Podem.Aborted -> ()
           end;
           if !result <> None then raise Exit)
         targets
     with Exit -> ());
    !result
  in
  let finished = ref false in
  while not !finished do
    let f = next_target () in
    if f < 0 then finished := true
    else begin
      match Asc_atpg.Podem.run ~backtrack_limit:config.backtrack_limit podem faults.(f) with
      | Asc_atpg.Podem.Redundant | Asc_atpg.Podem.Aborted -> Bitvec.set unresolved f
      | Asc_atpg.Podem.Test cube ->
          let pattern = Asc_atpg.Cube.fill rng cube in
          let si = pattern.state in
          let seq = ref [ pattern.pis ] in
          (* Track the fault-free state for constrained extension. *)
          let state = ref (Naive.next_state_of c (Naive.eval_comb c ~pis:pattern.pis ~state:si)) in
          let extending = ref true in
          while !extending && List.length !seq < Circuit.n_dffs c do
            match fresh_targets_from ~state:!state ~limit:config.extension_tries with
            | None -> extending := false
            | Some cube' ->
                let p' = Asc_atpg.Cube.fill rng cube' in
                seq := p'.pis :: !seq;
                state := Naive.next_state_of c (Naive.eval_comb c ~pis:p'.pis ~state:!state)
          done;
          let test = Scan_test.create ~si ~seq:(Array.of_list (List.rev !seq)) in
          let undet =
            Bitvec.init n (fun i -> Bitvec.get targets i && not (Bitvec.get detected i))
          in
          let det = Scan_test.detect ~only:undet c test ~faults in
          (* A capture-observed detection of the original target can decay
             before the delayed scan-out; fall back to the unextended test,
             which detects it by construction, when that happens. *)
          let test, det =
            if Bitvec.get det f || Scan_test.length test = 1 then (test, det)
            else begin
              let short = Scan_test.create ~si ~seq:[| pattern.pis |] in
              (short, Scan_test.detect ~only:undet c short ~faults)
            end
          in
          Bitvec.set det f;
          Bitvec.union_into ~into:detected det;
          tests := test :: !tests
    end
  done;
  { tests = Array.of_list (List.rev !tests); detected; unresolved }
