(* Dictionary-based fault diagnosis.

   The natural downstream consumer of a compacted test set: once a part
   fails on the tester, which fault explains the behaviour?  The classic
   pass/fail fault dictionary answers it:

   - the dictionary stores, per modelled fault, its *signature* — the set
     of tests the fault makes fail (a column of the detection matrix);
   - the tester reports the observed pass/fail vector over the same tests;
   - candidates are ranked by Hamming distance between signature and
     observation; distance 0 means the fault explains the behaviour
     exactly (equivalence classes of identical signatures tie, as they
     must — no test set distinguishes them).

   Interesting consequence for the paper's test sets: a compact set with
   few, long tests has *coarser* pass/fail signatures than the many
   length-one tests of [4]'s initial set, so compaction trades diagnostic
   resolution for application time.  [resolution_histogram] measures that
   trade — see the diagnosis example. *)

open Asc_util
module Circuit = Asc_netlist.Circuit
module Scan_test = Asc_scan.Scan_test

type t = {
  faults : Asc_fault.Fault.t array;
  matrix : Bitmat.t; (* tests x faults *)
  n_tests : int;
}

let build c (tests : Scan_test.t array) ~faults =
  {
    faults;
    matrix = Asc_scan.Tset.detection_matrix c tests ~faults;
    n_tests = Array.length tests;
  }

(* The signature of fault [fi]: which tests fail. *)
let signature t fi =
  Bitvec.init t.n_tests (fun ti -> Bitmat.get t.matrix ti fi)

(* Simulate a defective part: the pass/fail vector a tester would observe
   on a part carrying [fault]. *)
let observe c (tests : Scan_test.t array) ~fault =
  Bitvec.init (Array.length tests) (fun ti ->
      let det = Scan_test.detect c tests.(ti) ~faults:[| fault |] in
      Bitvec.get det 0)

type candidate = { fault_index : int; distance : int }

(* Rank every modelled fault by signature distance to the observation;
   ties broken by fault index for determinism. *)
let diagnose t ~observed =
  if Bitvec.length observed <> t.n_tests then invalid_arg "Diag.diagnose: arity";
  let scored =
    Array.init (Array.length t.faults) (fun fi ->
        let s = signature t fi in
        let diff = Bitvec.count (Bitvec.diff s observed) + Bitvec.count (Bitvec.diff observed s) in
        { fault_index = fi; distance = diff })
  in
  Array.sort (fun a b -> compare (a.distance, a.fault_index) (b.distance, b.fault_index)) scored;
  scored

(* The exact-match candidates (distance 0). *)
let perfect_matches t ~observed =
  diagnose t ~observed
  |> Array.to_list
  |> List.filter (fun c -> c.distance = 0)
  |> List.map (fun c -> c.fault_index)

(* Diagnostic resolution: group faults by identical signature; the
   histogram maps class size -> number of classes.  Undetected faults
   (empty signature) form one big indistinguishable class. *)
let resolution_histogram t =
  let classes = Hashtbl.create 256 in
  Array.iteri
    (fun fi _ ->
      let key = Bitvec.to_string (signature t fi) in
      Hashtbl.replace classes key (fi :: Option.value ~default:[] (Hashtbl.find_opt classes key)))
    t.faults;
  let histogram = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _ members ->
      let size = List.length members in
      Hashtbl.replace histogram size
        (1 + Option.value ~default:0 (Hashtbl.find_opt histogram size)))
    classes;
  List.sort compare (Hashtbl.fold (fun size count acc -> (size, count) :: acc) histogram [])

(* Share of faults uniquely diagnosable (singleton signature classes,
   counting only detected faults). *)
let unique_resolution t =
  let detected = ref 0 and unique = ref 0 in
  let classes = Hashtbl.create 256 in
  Array.iteri
    (fun fi _ ->
      let s = signature t fi in
      if not (Bitvec.is_empty s) then begin
        incr detected;
        let key = Bitvec.to_string s in
        Hashtbl.replace classes key
          (fi :: Option.value ~default:[] (Hashtbl.find_opt classes key))
      end)
    t.faults;
  Hashtbl.iter (fun _ members -> if List.length members = 1 then incr unique) classes;
  if !detected = 0 then 0.0 else float_of_int !unique /. float_of_int !detected
