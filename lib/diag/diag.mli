(** Dictionary-based fault diagnosis over a scan test set.

    Builds pass/fail signatures for every modelled fault, ranks candidates
    against an observed pass/fail vector, and measures the diagnostic
    resolution of a test set (compact sets with few long tests resolve
    less than many short ones — the flip side of compaction). *)

type t

val build :
  Asc_netlist.Circuit.t ->
  Asc_scan.Scan_test.t array ->
  faults:Asc_fault.Fault.t array ->
  t

(** The pass/fail signature of fault [fi] (bit per test). *)
val signature : t -> int -> Asc_util.Bitvec.t

(** Simulate a defective part: the pass/fail vector observed on a part
    carrying [fault]. *)
val observe :
  Asc_netlist.Circuit.t ->
  Asc_scan.Scan_test.t array ->
  fault:Asc_fault.Fault.t ->
  Asc_util.Bitvec.t

type candidate = { fault_index : int; distance : int }

(** All faults ranked by signature distance to the observation. *)
val diagnose : t -> observed:Asc_util.Bitvec.t -> candidate array

(** Fault indices whose signature matches exactly. *)
val perfect_matches : t -> observed:Asc_util.Bitvec.t -> int list

(** Map from signature-class size to number of classes. *)
val resolution_histogram : t -> (int * int) list

(** Share of detected faults with a unique signature. *)
val unique_resolution : t -> float
