(* Deterministic synthetic sequential circuit generator.

   Builds a random gate-level circuit matching a {!Profile.t}: exact PI /
   PO / flip-flop counts and exactly the profile's combinational gate
   count.  The construction keeps the invariant that every combinational
   fanin refers to an earlier-created signal, so the result is acyclic by
   construction; DFF next-state fanins may point anywhere, giving
   sequential feedback.

   Two properties separate a useful stand-in from random junk logic:

   - *Testability.*  Unconstrained random AND/OR networks drift toward
     near-constant signals and are full of untestable faults.  The
     generator tracks a signal-probability estimate for every signal and
     biases each gate's body function toward outputs balanced around 0.5.

   - *Initialisability.*  Random feedback through XOR-rich logic never
     leaves the unknown state under 3-valued simulation, so no fault would
     ever be detected "without scan".  Real circuits have resets and
     synchronous control; the generator models this by gating the
     next-state of a per-profile fraction of flip-flops with PI-only
     control cones (AND with a control forces 0, OR forces 1).  A low
     [init_frac] reproduces the paper's hard-to-initialise circuits.

   After the random construction, a repair pass guarantees full structural
   connectivity: every signal (including every PI and every flip-flop
   output) lies on some path to an observation point — a primary output or
   a flip-flop's next-state input (both observable under full scan). *)

open Asc_util
module Gate = Asc_netlist.Gate
module Builder = Asc_netlist.Builder

type body = BAnd | BOr | BXor

(* Output probability of a gate body over independent inputs (an estimate —
   reconvergent fanout correlates signals, but it steers well enough). *)
let body_prob body probs =
  match body with
  | BAnd -> List.fold_left (fun acc p -> acc *. p) 1.0 probs
  | BOr -> 1.0 -. List.fold_left (fun acc p -> acc *. (1.0 -. p)) 1.0 probs
  | BXor -> List.fold_left (fun acc p -> (acc *. (1.0 -. p)) +. ((1.0 -. acc) *. p)) 0.0 probs

(* Preference for balanced outputs: 1 at p = 0.5 falling to 0.05 at the
   extremes. *)
let balance_score q = max 0.05 (1.0 -. (2.0 *. abs_float (q -. 0.5)))

(* How far back the "local" fanin picks reach; locality keeps the circuit
   from collapsing into a single shallow cone. *)
let local_window = 48

let pick_fanin rng pool_size =
  if Rng.int rng 100 < 70 then begin
    let window = min local_window pool_size in
    pool_size - 1 - Rng.int rng window
  end
  else Rng.int rng pool_size

let pick_distinct_fanins rng pool_size n =
  let chosen = ref [] in
  let tries = ref 0 in
  while List.length !chosen < n && !tries < 20 * n do
    incr tries;
    let f = pick_fanin rng pool_size in
    if not (List.mem f !chosen) then chosen := f :: !chosen
  done;
  while List.length !chosen < n do
    chosen := pick_fanin rng pool_size :: !chosen
  done;
  List.rev !chosen

let generate ?(seed = 1) (p : Profile.t) =
  let rng = Rng.of_name ~seed p.name in
  let b = Builder.create p.name in
  (* Signal ids are dense and creation-ordered: PIs, DFFs, then gates. *)
  let (_ : int array) =
    Array.init p.n_pis (fun i -> Builder.add_input b (Printf.sprintf "pi%d" i))
  in
  let dffs = Array.init p.n_ffs (fun i -> Builder.add_dff b (Printf.sprintf "ff%d" i)) in
  let n_sources = p.n_pis + p.n_ffs in
  (* Generous bound: the reset structure may push the gate total slightly
     past the profile target on tiny profiles. *)
  let n_signals = n_sources + p.n_gates + (2 * p.n_ffs) + 12 in
  let fanin_of = Array.make (max 1 n_signals) [] in
  let prob = Array.make (max 1 n_signals) 0.5 in
  let xor_gates = ref [] and n_ary_gates = ref [] in
  let gate_count = ref 0 in
  let next_name () =
    let name = Printf.sprintf "g%d" !gate_count in
    incr gate_count;
    name
  in
  let new_gate kind fanin q =
    let id = Builder.add_gate b kind (next_name ()) fanin in
    fanin_of.(id) <- fanin;
    prob.(id) <- q;
    (match kind with
    | Gate.Xor | Gate.Xnor ->
        xor_gates := id :: !xor_gates;
        n_ary_gates := id :: !n_ary_gates
    | Gate.And | Gate.Nand | Gate.Or | Gate.Nor -> n_ary_gates := id :: !n_ary_gates
    | Gate.Buf | Gate.Not | Gate.Input | Gate.Dff | Gate.Const0 | Gate.Const1 -> ());
    id
  in
  (* Synchronous-reset structure.  A PI condition held for [m_stages]
     consecutive cycles arms a chain of reserved flip-flops; the chain's
     last stage is a global reset R that forces every other flip-flop to a
     fixed value.  Because the arming chain itself becomes binary within
     [m_stages] cycles of any input, and R = 1 makes the whole state
     binary at once, initialisation is *absorbing*: a binary state can
     never become unknown again.  Hardness (the paper's
     difficult-to-initialise circuits) comes from the rarity of the held
     condition: [m_stages] grows as [init_frac] falls. *)
  let m_stages =
    let raw = 1 + int_of_float (Float.round ((1.0 -. p.init_frac) *. 8.0)) in
    max 1 (min (min 8 (max 1 (p.n_ffs / 2))) raw)
  in
  let n_wrap = p.n_ffs - m_stages in
  (* Budget: the shared condition gate + arming ANDs (m-1) + NOT R (1) +
     wrappers (one per non-chain flip-flop) + main logic. *)
  let n_fixed = 1 + (m_stages - 1) + 1 + n_wrap in
  let n_main = max 1 (p.n_gates - n_fixed) in
  let stage_literals = min 2 p.n_pis in
  (* One shared condition over a couple of PIs: arming the reset requires
     *holding* a satisfying input pattern for m consecutive cycles, so the
     per-random-vector satisfaction probability is 2^-literals and the
     chance a random sequence ever fires the reset falls geometrically
     with m — the hard-to-initialise knob. *)
  let cond =
    let pis = pick_distinct_fanins rng p.n_pis stage_literals in
    let kind = if Rng.bool rng then Gate.And else Gate.Nor in
    let q = 0.5 ** float_of_int (List.length pis) in
    if List.length pis = 1 then
      let f = List.hd pis in
      new_gate (if kind = Gate.And then Gate.Buf else Gate.Not) [ f ] q
    else new_gate kind pis q
  in
  let chain_ffs = Array.sub dffs 0 m_stages in
  let other_ffs = Array.sub dffs m_stages n_wrap in
  Array.iteri
    (fun k r ->
      if k = 0 then begin
        Builder.set_dff_input b r cond;
        fanin_of.(r) <- [ cond ]
      end
      else begin
        let arm = new_gate Gate.And [ chain_ffs.(k - 1); cond ] 0.1 in
        Builder.set_dff_input b r arm;
        fanin_of.(r) <- [ arm ]
      end)
    chain_ffs;
  let reset = chain_ffs.(m_stages - 1) in
  let not_reset = new_gate Gate.Not [ reset ] 0.9 in
  (* Main logic. *)
  let n_pre = !gate_count in
  let main_gates = Array.make (max 1 n_main) (-1) in
  for i = 0 to n_main - 1 do
    let pool_size = n_sources + n_pre + i in
    if Rng.int rng 100 < 8 then begin
      let f = pick_fanin rng pool_size in
      let inverting = Rng.int rng 100 < 75 in
      let kind = if inverting then Gate.Not else Gate.Buf in
      let q = if inverting then 1.0 -. prob.(f) else prob.(f) in
      main_gates.(i) <- new_gate kind [ f ] q
    end
    else begin
      let arity = if Rng.int rng 100 < 78 then 2 else 3 in
      let fanin = pick_distinct_fanins rng pool_size arity in
      let probs = List.map (fun f -> prob.(f)) fanin in
      let weight body base =
        int_of_float (100.0 *. base *. balance_score (body_prob body probs))
      in
      let w = [| weight BAnd 1.0; weight BOr 1.0; weight BXor 0.35 |] in
      let w = if Array.for_all (( = ) 0) w then [| 1; 1; 1 |] else w in
      let body = [| BAnd; BOr; BXor |].(Rng.weighted rng w) in
      let invert = Rng.bool rng in
      let kind =
        match (body, invert) with
        | BAnd, false -> Gate.And
        | BAnd, true -> Gate.Nand
        | BOr, false -> Gate.Or
        | BOr, true -> Gate.Nor
        | BXor, false -> Gate.Xor
        | BXor, true -> Gate.Xnor
      in
      let q = body_prob body probs in
      main_gates.(i) <- new_gate kind fanin (if invert then 1.0 -. q else q)
    end
  done;
  (* Next-state functions of the non-chain flip-flops: a raw driver biased
     toward late main gates, wrapped so that the global reset forces a
     fixed value — AND with NOT R resets to 0, OR with R resets to 1. *)
  let raw_driver () =
    let lo = n_main / 3 in
    main_gates.(lo + Rng.int rng (n_main - lo))
  in
  Array.iter
    (fun d ->
      let raw = raw_driver () in
      let wrapper =
        if Rng.bool rng then
          new_gate Gate.And [ raw; not_reset ] (prob.(raw) *. prob.(not_reset))
        else
          new_gate Gate.Or [ raw; reset ]
            (1.0 -. ((1.0 -. prob.(raw)) *. (1.0 -. prob.(reset))))
      in
      Builder.set_dff_input b d wrapper;
      fanin_of.(d) <- [ wrapper ])
    other_ffs;
  let all_gates = Builder.size b - n_sources in
  let gate_pool =
    Array.init (max 1 all_gates) (fun i -> n_sources + i)
  in
  (* Primary outputs: distinct gates, biased toward late ones. *)
  let po_drivers = Array.make p.n_pos (-1) in
  let taken = Hashtbl.create 16 in
  for i = 0 to p.n_pos - 1 do
    let rec pick tries =
      let g =
        if all_gates = 0 then Rng.int rng n_sources
        else if tries > 50 then gate_pool.(Rng.int rng all_gates)
        else begin
          let lo = all_gates / 2 in
          gate_pool.(lo + Rng.int rng (all_gates - lo))
        end
      in
      if Hashtbl.mem taken g && tries < 100 then pick (tries + 1) else g
    in
    let g = pick 0 in
    Hashtbl.replace taken g ();
    po_drivers.(i) <- g;
    Builder.add_output b g
  done;
  (* Connectivity repair: mark everything on a path to an observation point
     (a PO driver or a DFF next-state input), then splice each unmarked
     signal into a marked gate created after it.  XOR targets are preferred:
     an extra XOR input never blocks the observability of the others. *)
  let xor_gates = Array.of_list (List.rev !xor_gates) in
  let n_ary_gates = Array.of_list (List.rev !n_ary_gates) in
  let total_signals = Builder.size b in
  let marked = Array.make total_signals false in
  let rec mark s =
    if not marked.(s) then begin
      marked.(s) <- true;
      List.iter mark fanin_of.(s)
    end
  in
  Array.iter mark po_drivers;
  Array.iter (fun d -> List.iter mark fanin_of.(d)) dffs;
  let splice s =
    let min_id = if s < n_sources then -1 else s in
    let candidates_from pool =
      Array.to_list pool |> List.filter (fun h -> h > min_id && marked.(h))
    in
    let candidates =
      match candidates_from xor_gates with [] -> candidates_from n_ary_gates | c -> c
    in
    match candidates with
    | [] -> Builder.add_output b s (* rare: keep the signal observable *)
    | _ ->
        let arr = Array.of_list candidates in
        let h = arr.(Rng.int rng (Array.length arr)) in
        Builder.append_fanin b h s;
        fanin_of.(h) <- s :: fanin_of.(h)
  in
  for s = total_signals - 1 downto 0 do
    if not marked.(s) then begin
      splice s;
      mark s
    end
  done;
  Builder.finalize b

let of_profile ?seed name =
  match Profile.find name with
  | Some p -> generate ?seed p
  | None -> invalid_arg (Printf.sprintf "Generator.of_profile: unknown circuit %S" name)
