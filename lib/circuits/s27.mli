(** The ISCAS-89 circuit s27, embedded verbatim (4 PIs, 1 PO, 3 flip-flops,
    10 logic gates).  Golden reference for the `.bench` reader and a fast
    end-to-end circuit for tests and examples. *)

(** The raw `.bench` source. *)
val bench_text : string

(** Parse the embedded netlist (fresh circuit each call). *)
val circuit : unit -> Asc_netlist.Circuit.t
