(* The ISCAS-89 circuit s27, embedded verbatim.

   s27 is tiny (10 logic gates, 3 flip-flops) and serves as the one *real*
   netlist in the repository: a golden reference for the `.bench` reader
   and a fast end-to-end circuit for tests and the quickstart example. *)

let bench_text =
  "# s27 (ISCAS-89)\n\
   INPUT(G0)\n\
   INPUT(G1)\n\
   INPUT(G2)\n\
   INPUT(G3)\n\
   OUTPUT(G17)\n\
   G5 = DFF(G10)\n\
   G6 = DFF(G11)\n\
   G7 = DFF(G13)\n\
   G14 = NOT(G0)\n\
   G17 = NOT(G11)\n\
   G8 = AND(G14, G6)\n\
   G15 = OR(G12, G8)\n\
   G16 = OR(G3, G8)\n\
   G9 = NAND(G16, G15)\n\
   G10 = NOR(G14, G11)\n\
   G11 = NOR(G5, G9)\n\
   G12 = NOR(G1, G7)\n\
   G13 = NOR(G2, G12)\n"

let circuit () = Asc_netlist.Bench_io.parse_string ~name:"s27" bench_text
