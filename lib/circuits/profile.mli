(** Interface profiles of the benchmark circuits evaluated in the paper.

    The synthetic stand-ins generated from these profiles keep the published
    PI / PO / flip-flop counts (flip-flop count sets [N_SV], which drives the
    test-application-time model); gate counts are targets.  [scaled] marks
    stand-ins whose counts were reduced for runtime (only s35932). *)

type t = {
  name : string;
  n_pis : int;
  n_pos : int;
  n_ffs : int;
  n_gates : int;
  scaled : bool;
  t0_budget : int;  (** Length budget for the directed sequence T0. *)
  init_frac : float;
      (** Fraction of flip-flops gated by PI-only control cones
          (initialisable from the unknown state); low values model the
          paper's hard-to-initialise circuits. *)
}

val make :
  ?scaled:bool ->
  ?init_frac:float ->
  t0_budget:int ->
  string ->
  int ->
  int ->
  int ->
  int ->
  t

(** The ISCAS-89 circuits of the paper's tables, in table order. *)
val iscas89 : t list

(** The ITC-99 circuits of the paper's tables, in table order. *)
val itc99 : t list

(** [iscas89 @ itc99], the paper's full circuit list. *)
val all : t list

val find : string -> t option
val names : string list
