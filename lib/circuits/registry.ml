(* Name-based access to every circuit the experiments use: the synthetic
   benchmark stand-ins plus the embedded s27.  Generated circuits are
   memoised per (name, seed). *)

let cache : (string * int, Asc_netlist.Circuit.t) Hashtbl.t = Hashtbl.create 32

let names = "s27" :: Profile.names

let mem name = List.mem name names

let get ?(seed = 1) name =
  match Hashtbl.find_opt cache (name, seed) with
  | Some c -> c
  | None ->
      let c =
        if name = "s27" then S27.circuit ()
        else
          match Profile.find name with
          | Some p -> Generator.generate ~seed p
          | None -> invalid_arg (Printf.sprintf "Registry.get: unknown circuit %S" name)
      in
      Hashtbl.replace cache (name, seed) c;
      c

(* The directed-T0 length budget for a circuit (s27 gets a small default). *)
let t0_budget name =
  match Profile.find name with Some p -> p.t0_budget | None -> 50
