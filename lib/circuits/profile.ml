(* Interface profiles of the benchmark circuits used in the paper.

   Each profile records the published PI / PO / flip-flop counts of the
   ISCAS-89 or ITC-99 circuit and a gate-count target for the synthetic
   stand-in.  Flip-flop counts are kept faithful — they set N_SV, which
   drives the clock-cycle model the paper's comparison rests on.  The one
   exception is s35932, whose gate and flip-flop counts are scaled down to
   keep the full table run tractable; DESIGN.md discusses why the paper's
   qualitative result survives the scaling. *)

type t = {
  name : string;
  n_pis : int;
  n_pos : int;
  n_ffs : int;
  n_gates : int; (* combinational gate target for the synthetic stand-in *)
  scaled : bool; (* true when the stand-in deviates from published counts *)
  t0_budget : int; (* length budget for the directed sequence T0 *)
  init_frac : float;
      (* Fraction of flip-flops whose next-state logic is gated by a
         PI-only control cone, making them initialisable from the unknown
         state.  Low values model the paper's hard-to-initialise circuits
         (s382/s400/s526/b09), where a random T0 detects few faults. *)
}

let make ?(scaled = false) ?(init_frac = 0.8) ~t0_budget name n_pis n_pos n_ffs n_gates =
  { name; n_pis; n_pos; n_ffs; n_gates; scaled; t0_budget; init_frac }

(* ISCAS-89 circuits evaluated in the paper (published interface counts;
   T0 budgets loosely follow the paper's Table 2 T0 lengths). *)
let iscas89 =
  [
    make "s298" 3 6 14 119 ~t0_budget:120;
    make "s344" 9 11 15 160 ~t0_budget:60;
    make "s382" 3 6 21 158 ~t0_budget:520 ~init_frac:0.3;
    make "s400" 3 6 21 162 ~t0_budget:610 ~init_frac:0.3;
    make "s526" 3 6 21 193 ~t0_budget:1000 ~init_frac:0.3;
    make "s641" 35 24 19 379 ~t0_budget:110;
    make "s820" 18 19 5 289 ~t0_budget:490;
    make "s1423" 17 5 74 657 ~t0_budget:1000;
    make "s1488" 8 19 6 653 ~t0_budget:460;
    make "s5378" 35 49 179 2779 ~t0_budget:650;
    (* Published: 35 PIs, 320 POs, 1728 FFs, 16065 gates — scaled stand-in. *)
    make "s35932" 35 96 432 2400 ~scaled:true ~t0_budget:150 ~init_frac:0.95;
  ]

(* ITC-99 circuits evaluated in the paper. *)
let itc99 =
  [
    make "b01" 2 2 5 45 ~t0_budget:70;
    make "b02" 1 1 4 25 ~t0_budget:50;
    make "b03" 4 4 30 150 ~t0_budget:140;
    make "b04" 11 8 66 600 ~t0_budget:170;
    make "b06" 2 6 9 55 ~t0_budget:40;
    make "b09" 1 1 28 160 ~t0_budget:280 ~init_frac:0.35;
    make "b10" 11 6 17 180 ~t0_budget:190;
    make "b11" 7 6 30 500 ~t0_budget:680 ~init_frac:0.5;
  ]

let all = iscas89 @ itc99

let find name = List.find_opt (fun p -> p.name = name) all

let names = List.map (fun p -> p.name) all
