(** Name-based access to every circuit the experiments use.

    Covers the synthetic stand-ins of {!Profile.all} plus the embedded
    {!S27}.  Results are memoised per (name, seed). *)

(** ["s27"] followed by the benchmark names in the paper's table order. *)
val names : string list

val mem : string -> bool

(** [get ?seed name] — raises [Invalid_argument] for unknown names. *)
val get : ?seed:int -> string -> Asc_netlist.Circuit.t

(** Length budget for the directed sequence T0 of this circuit. *)
val t0_budget : string -> int
