(** Deterministic synthetic sequential circuit generator.

    [generate ?seed profile] builds a random gate-level circuit with the
    profile's exact PI / PO / flip-flop counts and its combinational gate
    count.  The same [(seed, profile)] pair always yields the identical
    circuit.  Every signal is guaranteed to lie on a path to an observation
    point (a primary output or a flip-flop next-state input). *)

val generate : ?seed:int -> Profile.t -> Asc_netlist.Circuit.t

(** Generate the stand-in for a named benchmark from {!Profile.all}. *)
val of_profile : ?seed:int -> string -> Asc_netlist.Circuit.t
