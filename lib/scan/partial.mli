(** Partial scan: only a subset of the flip-flops is on the scan chain.

    Unscanned flip-flops start each test at X (conservative 3-valued
    evaluation) and are not observed by the scan-out; scan operations cost
    [N_scanned] cycles instead of [N_SV].  Substrate for the paper's
    "can be extended to partial scan" remark. *)

type chain = { scanned : bool array }

val full_chain : Asc_netlist.Circuit.t -> chain

(** Keep the [ratio] highest-fanout flip-flops on the chain. *)
val by_fanout : Asc_netlist.Circuit.t -> ratio:float -> chain

val n_scanned : chain -> int

(** Test application time under the shorter chain. *)
val cycles : Asc_netlist.Circuit.t -> chain -> Scan_test.t array -> int

(** Faults detected by one test under the partial chain (3-valued,
    pessimistic). *)
val detect :
  ?only:Asc_util.Bitvec.t ->
  Asc_netlist.Circuit.t ->
  chain ->
  Scan_test.t ->
  faults:Asc_fault.Fault.t array ->
  Asc_util.Bitvec.t

(** Coverage of a test set, with fault dropping. *)
val coverage :
  Asc_netlist.Circuit.t ->
  chain ->
  Scan_test.t array ->
  faults:Asc_fault.Fault.t array ->
  Asc_util.Bitvec.t

(** Partial-scan analogue of [Seq_fsim.candidate_detections]: rows are
    candidate scan-in states (projected onto the scanned flip-flops),
    columns fault indices; only [subset] columns are simulated. *)
val candidate_detections :
  Asc_netlist.Circuit.t ->
  chain ->
  sis:bool array array ->
  seq:bool array array ->
  faults:Asc_fault.Fault.t array ->
  subset:int array ->
  Asc_util.Bitmat.t

(** Partial-scan analogue of [Seq_fsim.profile]: earliest PO detection
    time per subset fault and the time units at which the *scanned* state
    observably differs. *)
type profile = {
  subset : int array;
  po_time : int array;
  state_diff_at : Asc_util.Bitvec.t array;
}

val profile :
  Asc_netlist.Circuit.t ->
  chain ->
  Scan_test.t ->
  faults:Asc_fault.Fault.t array ->
  subset:int array ->
  profile
