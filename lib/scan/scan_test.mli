(** Scan tests for full-scan circuits: [tau = (SI, T)] — scan-in vector
    plus an at-speed primary-input sequence (the expected scan-out is the
    derived fault-free final state). *)

type t = { si : bool array; seq : bool array array }

val create : si:bool array -> seq:bool array array -> t

(** A combinational pattern as a length-one scan test. *)
val of_pattern : Asc_sim.Pattern.t -> t

(** Length of the PI sequence, [L(T)]. *)
val length : t -> int

(** The paper's combining operation: [(SI_i, T_i . T_j)]. *)
val combine : t -> t -> t

(** Truncate to scan out at time unit [u] (inclusive, from 0). *)
val truncate : t -> u:int -> t

(** Remove the vector at position [p] (the test must keep >= 1 vector). *)
val omit : t -> p:int -> t

(** Remove [count] vectors starting at [p]. *)
val omit_span : t -> p:int -> count:int -> t

(** Fault indices detected by this test. *)
val detect :
  ?pool:Asc_util.Domain_pool.t ->
  ?budget:Asc_util.Budget.t ->
  ?tel:Asc_util.Telemetry.t ->
  ?only:Asc_util.Bitvec.t ->
  Asc_netlist.Circuit.t ->
  t ->
  faults:Asc_fault.Fault.t array ->
  Asc_util.Bitvec.t

(** The expected fault-free scan-out vector. *)
val scan_out : Asc_netlist.Circuit.t -> t -> bool array

val equal : t -> t -> bool
val to_string : t -> string
