(* Test application time.

   The paper's model (Section 2): applying k tests to a circuit with N_SV
   scanned state variables costs

     N_cyc = (k + 1) * N_SV + sum_j L(T_j)

   — k+1 scan operations (consecutive scan-out/scan-in pairs overlap) plus
   one functional clock cycle per primary input vector.  The scan clock and
   functional clock are assumed to share the cycle time. *)

let cycles ~n_sv lengths =
  let k = List.length lengths in
  if k = 0 then 0 else ((k + 1) * n_sv) + List.fold_left ( + ) 0 lengths

(* With [chains] balanced scan chains, a scan operation shifts only the
   longest chain's length: ceil(N_SV / chains) cycles.  [chains = 1] is
   the paper's model. *)
let cycles_multi_chain ~n_sv ~chains lengths =
  if chains < 1 then invalid_arg "Time_model.cycles_multi_chain";
  let shift = (n_sv + chains - 1) / chains in
  let k = List.length lengths in
  if k = 0 then 0 else ((k + 1) * shift) + List.fold_left ( + ) 0 lengths

let cycles_of_tests c (tests : Scan_test.t array) =
  cycles
    ~n_sv:(Asc_netlist.Circuit.n_dffs c)
    (Array.to_list (Array.map Scan_test.length tests))

(* At-speed sequence-length statistics for the paper's Table 4. *)
type length_stats = { average : float; lo : int; hi : int }

let length_stats (tests : Scan_test.t array) =
  if Array.length tests = 0 then invalid_arg "Time_model.length_stats: empty test set";
  let lengths = Array.to_list (Array.map Scan_test.length tests) in
  let lo, hi = Asc_util.Stats.min_max lengths in
  { average = Asc_util.Stats.mean lengths; lo; hi }
