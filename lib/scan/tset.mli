(** Test-set coverage accounting: detection matrices (tests x faults) with
    a fast combinational path for length-one tests. *)

val detection_matrix :
  ?pool:Asc_util.Domain_pool.t ->
  ?budget:Asc_util.Budget.t ->
  ?tel:Asc_util.Telemetry.t ->
  ?only:Asc_util.Bitvec.t ->
  Asc_netlist.Circuit.t ->
  Scan_test.t array ->
  faults:Asc_fault.Fault.t array ->
  Asc_util.Bitmat.t

val coverage :
  ?pool:Asc_util.Domain_pool.t ->
  ?budget:Asc_util.Budget.t ->
  ?tel:Asc_util.Telemetry.t ->
  ?only:Asc_util.Bitvec.t ->
  Asc_netlist.Circuit.t ->
  Scan_test.t array ->
  faults:Asc_fault.Fault.t array ->
  Asc_util.Bitvec.t

(** N-detect profile: tests detecting each fault. *)
val detection_counts :
  ?pool:Asc_util.Domain_pool.t ->
  ?budget:Asc_util.Budget.t ->
  ?tel:Asc_util.Telemetry.t ->
  ?only:Asc_util.Bitvec.t ->
  Asc_netlist.Circuit.t ->
  Scan_test.t array ->
  faults:Asc_fault.Fault.t array ->
  int array

(** Faults detected by at least [n] tests. *)
val n_detect_count : int array -> n:int -> int
