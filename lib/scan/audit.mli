(** Test-set audits: duplicates, useless tests, incremental coverage, and
    the expected scan-out vectors a tester compares against. *)

type report = {
  n_tests : int;
  cycles : int;
  coverage : int;
  n_targets : int;
  duplicates : (int * int) list;  (** (earlier, later) identical pairs. *)
  useless : int list;  (** Indices with no incremental coverage. *)
  incremental : int array;  (** New detections per test, in set order. *)
  scan_outs : bool array array;  (** Expected scan-out per test. *)
}

val run :
  Asc_netlist.Circuit.t ->
  Scan_test.t array ->
  faults:Asc_fault.Fault.t array ->
  targets:Asc_util.Bitvec.t ->
  report

val pp : Format.formatter -> report -> unit
