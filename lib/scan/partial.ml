(* Partial scan.

   The paper notes (Section 1) that the proposed procedure "can be
   extended to the case of partial-scan circuits"; this module provides
   the partial-scan substrate and evaluation.

   Under partial scan only a subset of the flip-flops is on the scan
   chain.  For one test:
   - scan-in sets the scanned flip-flops; the unscanned ones hold an
     unknown value (each test is evaluated conservatively from X there,
     the standard per-test assumption);
   - the PI sequence runs at-speed as usual;
   - scan-out observes the scanned flip-flops only; POs are observed
     every cycle.

   Detection is 3-valued: a fault counts only when the fault-free value is
   binary and the faulty value is the complementary binary value, at a PO
   or in a scanned flip-flop at scan-out.

   The time model scales with the chain length: k tests cost
   (k+1) * N_scanned + sum L(T_j). *)

open Asc_util
module Circuit = Asc_netlist.Circuit
module Engine3 = Asc_sim.Engine3

type chain = { scanned : bool array (* per DFF index *) }

let full_chain c = { scanned = Array.make (Circuit.n_dffs c) true }

(* Keep the [ratio] highest-fanout flip-flops on the chain — a standard
   cheap partial-scan selection heuristic (high-fanout state is the
   hardest to control). *)
let by_fanout c ~ratio =
  let n = Circuit.n_dffs c in
  let keep = max 0 (min n (int_of_float (Float.round (ratio *. float_of_int n)))) in
  let weight d = Array.length (Circuit.fanouts c d) in
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun a b -> compare (weight (Circuit.dffs c).(b)) (weight (Circuit.dffs c).(a)))
    order;
  let scanned = Array.make n false in
  for k = 0 to keep - 1 do
    scanned.(order.(k)) <- true
  done;
  { scanned }

let n_scanned chain =
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 chain.scanned

let cycles (_ : Circuit.t) chain (tests : Scan_test.t array) =
  Time_model.cycles ~n_sv:(n_scanned chain)
    (Array.to_list (Array.map Scan_test.length tests))

(* Which of [faults] does [test] detect under the partial chain?  Lanes
   are faulty machines; the scan-in value reaches scanned flip-flops only,
   the rest start X in both the fault-free and the faulty machine. *)
let detect ?only c chain (test : Scan_test.t) ~faults =
  let n = Array.length faults in
  let result = Bitvec.create n in
  let subset =
    match only with
    | None -> Array.init n (fun i -> i)
    | Some mask -> Array.of_list (Bitvec.to_list mask)
  in
  if Array.length subset = 0 then result
  else begin
    let n_ff = Circuit.n_dffs c and n_po = Circuit.n_outputs c in
    let len = Scan_test.length test in
    let sw = Array.map (fun vec -> Array.map Word.splat vec) test.seq in
    let load engine =
      Engine3.set_state_x engine;
      let z = Array.make n_ff 0 and o = Array.make n_ff 0 in
      for i = 0 to n_ff - 1 do
        if chain.scanned.(i) then
          if test.si.(i) then o.(i) <- Word.mask else z.(i) <- Word.mask
      done;
      Engine3.set_state_words engine ~z ~o
    in
    (* Fault-free trace. *)
    let good = Engine3.create c [] in
    load good;
    let good_po = Array.make len [||] in
    for t = 0 to len - 1 do
      Engine3.eval_binary good ~pi_words:sw.(t);
      good_po.(t) <- Array.init n_po (Engine3.po_word good);
      Engine3.capture good
    done;
    let good_final = Array.init n_ff (Engine3.state_word good) in
    let groups =
      let total = Array.length subset in
      let n_groups = (total + Word.width - 1) / Word.width in
      Array.init n_groups (fun gi ->
          let base = gi * Word.width in
          let count = min Word.width (total - base) in
          (Array.sub subset base count,
           List.init count (fun lane ->
               Asc_fault.Fault.to_override faults.(subset.(base + lane))
                 ~lanes:(1 lsl lane)),
           if count = Word.width then Word.mask else (1 lsl count) - 1))
    in
    let engine = Engine3.create c [] in
    Array.iter
      (fun (members, overrides, lanes) ->
        Engine3.set_overrides engine overrides;
        load engine;
        let det = ref 0 in
        let t = ref 0 in
        while !det <> lanes && !t < len do
          Engine3.eval_binary engine ~pi_words:sw.(!t);
          for i = 0 to n_po - 1 do
            let gz, go = good_po.(!t).(i) in
            let fz, fo = Engine3.po_word engine i in
            det := !det lor ((gz land fo) lor (go land fz))
          done;
          Engine3.capture engine;
          incr t
        done;
        if !t = len && !det <> lanes then
          (* Scan-out observes the scanned flip-flops only. *)
          for i = 0 to n_ff - 1 do
            if chain.scanned.(i) then begin
              let gz, go = good_final.(i) in
              let fz, fo = Engine3.state_word engine i in
              det := !det lor ((gz land fo) lor (go land fz))
            end
          done;
        Word.iter_set (fun lane -> Bitvec.set result members.(lane)) (!det land lanes))
      groups;
    result
  end

(* Coverage of a test set under a partial chain, with fault dropping. *)
let coverage c chain (tests : Scan_test.t array) ~faults =
  let n = Array.length faults in
  let detected = Bitvec.create n in
  Array.iter
    (fun test ->
      let remaining = Bitvec.init n (fun i -> not (Bitvec.get detected i)) in
      if not (Bitvec.is_empty remaining) then
        Bitvec.union_into ~into:detected (detect ~only:remaining c chain test ~faults))
    tests;
  detected

(* --- Phase-1 support under partial scan --------------------------------

   The two queries the compaction procedure asks of the simulator, under
   partial-scan semantics (unscanned flip-flops X, scan-out observes
   scanned flip-flops only, 3-valued detection). *)

(* Pack candidate scan-in states into lanes: scanned flip-flops carry the
   candidate's bit, unscanned ones stay X in every lane. *)
let pack_candidates c chain sis base count =
  let n_ff = Circuit.n_dffs c in
  let z = Array.make n_ff 0 and o = Array.make n_ff 0 in
  for lane = 0 to count - 1 do
    let si = sis.(base + lane) in
    for i = 0 to n_ff - 1 do
      if chain.scanned.(i) then
        if si.(i) then o.(i) <- Word.set o.(i) lane else z.(i) <- Word.set z.(i) lane
    done
  done;
  (z, o)

(* Rows are candidate scan-in states, columns fault indices (set when the
   candidate's test detects the fault); [subset] restricts simulation —
   the partial analogue of [Seq_fsim.candidate_detections]. *)
let candidate_detections c chain ~sis ~seq ~faults ~subset =
  let n_candidates = Array.length sis in
  let n_ff = Circuit.n_dffs c and n_po = Circuit.n_outputs c in
  let len = Array.length seq in
  let sw = Array.map (fun (vec : bool array) -> Array.map Word.splat vec) seq in
  let result = Bitmat.create n_candidates (Array.length faults) in
  let engine = Engine3.create c [] in
  let n_cgroups = (n_candidates + Word.width - 1) / Word.width in
  for cg = 0 to n_cgroups - 1 do
    let base = cg * Word.width in
    let count = min Word.width (n_candidates - base) in
    let full = if count = Word.width then Word.mask else (1 lsl count) - 1 in
    let z0, o0 = pack_candidates c chain sis base count in
    (* Fault-free machines for all candidates at once. *)
    Engine3.set_overrides engine [];
    Engine3.set_state_words engine ~z:z0 ~o:o0;
    let good_po = Array.make len [||] in
    for t = 0 to len - 1 do
      Engine3.eval_binary engine ~pi_words:sw.(t);
      good_po.(t) <- Array.init n_po (Engine3.po_word engine);
      Engine3.capture engine
    done;
    let good_final = Array.init n_ff (Engine3.state_word engine) in
    Array.iter
      (fun fi ->
        Engine3.set_overrides engine
          [ Asc_fault.Fault.to_override faults.(fi) ~lanes:Word.mask ];
        Engine3.set_state_words engine ~z:(Array.copy z0) ~o:(Array.copy o0);
        let det = ref 0 in
        let t = ref 0 in
        while !det <> full && !t < len do
          Engine3.eval_binary engine ~pi_words:sw.(!t);
          for i = 0 to n_po - 1 do
            let gz, go = good_po.(!t).(i) in
            let fz, fo = Engine3.po_word engine i in
            det := !det lor ((gz land fo) lor (go land fz))
          done;
          Engine3.capture engine;
          incr t
        done;
        if !t = len && !det <> full then
          for i = 0 to n_ff - 1 do
            if chain.scanned.(i) then begin
              let gz, go = good_final.(i) in
              let fz, fo = Engine3.state_word engine i in
              det := !det lor ((gz land fo) lor (go land fz))
            end
          done;
        Word.iter_set (fun lane -> Bitmat.set result (base + lane) fi) (!det land full))
      subset
  done;
  result

(* The partial analogue of [Seq_fsim.profile]: earliest PO detection time
   per subset fault, and the time units where the scanned state observably
   differs (3-valued detection at both). *)
type profile = {
  subset : int array;
  po_time : int array;
  state_diff_at : Bitvec.t array;
}

let profile c chain (test : Scan_test.t) ~faults ~subset =
  let n_ff = Circuit.n_dffs c and n_po = Circuit.n_outputs c in
  let len = Scan_test.length test in
  let sw = Array.map (fun vec -> Array.map Word.splat vec) test.seq in
  (* Fault-free trace. *)
  let good = Engine3.create c [] in
  let load engine z o =
    Engine3.set_state_words engine ~z:(Array.copy z) ~o:(Array.copy o)
  in
  let z0 = Array.make n_ff 0 and o0 = Array.make n_ff 0 in
  for i = 0 to n_ff - 1 do
    if chain.scanned.(i) then
      if test.si.(i) then o0.(i) <- Word.mask else z0.(i) <- Word.mask
  done;
  load good z0 o0;
  let good_po = Array.make len [||] in
  let good_state = Array.make (len + 1) [||] in
  good_state.(0) <- Array.init n_ff (Engine3.state_word good);
  for t = 0 to len - 1 do
    Engine3.eval_binary good ~pi_words:sw.(t);
    good_po.(t) <- Array.init n_po (Engine3.po_word good);
    Engine3.capture good;
    good_state.(t + 1) <- Array.init n_ff (Engine3.state_word good)
  done;
  let po_time = Array.make (Array.length subset) max_int in
  let state_diff_at = Array.init (Array.length subset) (fun _ -> Bitvec.create len) in
  let engine = Engine3.create c [] in
  let total = Array.length subset in
  let n_groups = (total + Word.width - 1) / Word.width in
  for gi = 0 to n_groups - 1 do
    let base = gi * Word.width in
    let count = min Word.width (total - base) in
    let lanes = if count = Word.width then Word.mask else (1 lsl count) - 1 in
    let overrides =
      List.init count (fun lane ->
          Asc_fault.Fault.to_override faults.(subset.(base + lane)) ~lanes:(1 lsl lane))
    in
    Engine3.set_overrides engine overrides;
    load engine z0 o0;
    let po_seen = ref 0 in
    for t = 0 to len - 1 do
      Engine3.eval_binary engine ~pi_words:sw.(t);
      let diff = ref 0 in
      for i = 0 to n_po - 1 do
        let gz, go = good_po.(t).(i) in
        let fz, fo = Engine3.po_word engine i in
        diff := !diff lor ((gz land fo) lor (go land fz))
      done;
      let fresh = !diff land lanes land lnot !po_seen in
      Word.iter_set (fun lane -> po_time.(base + lane) <- t) fresh;
      po_seen := !po_seen lor fresh;
      Engine3.capture engine;
      let sdiff = ref 0 in
      for i = 0 to n_ff - 1 do
        if chain.scanned.(i) then begin
          let gz, go = good_state.(t + 1).(i) in
          let fz, fo = Engine3.state_word engine i in
          sdiff := !sdiff lor ((gz land fo) lor (go land fz))
        end
      done;
      Word.iter_set
        (fun lane -> Bitvec.set state_diff_at.(base + lane) t)
        (!sdiff land lanes)
    done
  done;
  { subset; po_time; state_diff_at }
