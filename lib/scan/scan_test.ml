(* Scan tests for full-scan circuits.

   Following the paper's notation, a test is tau_i = (SI_i, T_i, SO_i): a
   scan-in vector, a primary input sequence applied at-speed with the
   functional clock, and the expected fault-free scan-out.  SO_i is derived
   (it is the fault-free final state), so the representation keeps only
   (SI, T), as the paper does from Section 3 on. *)

module Circuit = Asc_netlist.Circuit
module Pattern = Asc_sim.Pattern
module Seq_fsim = Asc_fault.Seq_fsim

type t = { si : bool array; seq : bool array array }

let create ~si ~seq =
  if Array.length seq = 0 then invalid_arg "Scan_test.create: empty sequence";
  { si; seq }

(* A combinational pattern viewed as a scan test with a length-one PI
   sequence. *)
let of_pattern (p : Pattern.t) = { si = p.state; seq = [| p.pis |] }

let length t = Array.length t.seq

(* The paper's combining operation: drop SO_i and SI_j, concatenate the
   sequences.  tau_{i,j} = (SI_i, T_i . T_j). *)
let combine a b = { si = a.si; seq = Array.append a.seq b.seq }

(* Truncate to scan out at time unit [u] (inclusive; [u] counts from 0). *)
let truncate t ~u =
  if u < 0 || u >= length t then invalid_arg "Scan_test.truncate";
  { t with seq = Array.sub t.seq 0 (u + 1) }

(* Remove the vector at position [p]. *)
let omit t ~p =
  let len = length t in
  if p < 0 || p >= len then invalid_arg "Scan_test.omit";
  if len = 1 then invalid_arg "Scan_test.omit: cannot empty a test";
  { t with seq = Array.init (len - 1) (fun i -> if i < p then t.seq.(i) else t.seq.(i + 1)) }

(* Remove the [count] vectors starting at position [p]. *)
let omit_span t ~p ~count =
  let len = length t in
  if p < 0 || count < 1 || p + count > len then invalid_arg "Scan_test.omit_span";
  if count = len then invalid_arg "Scan_test.omit_span: cannot empty a test";
  { t with seq = Array.init (len - count) (fun i -> if i < p then t.seq.(i) else t.seq.(i + count)) }

(* Detection through the sequential fault simulator. *)
let detect ?pool ?budget ?tel ?only c t ~faults =
  Seq_fsim.detect ?pool ?budget ?tel ?only c ~si:t.si ~seq:t.seq ~faults

(* The expected fault-free scan-out vector SO. *)
let scan_out c t =
  let good = Seq_fsim.good_run c ~si:t.si ~seq:t.seq in
  Seq_fsim.good_final_state c good

let equal a b = a.si = b.si && a.seq = b.seq

let to_string t =
  let bits a = String.init (Array.length a) (fun i -> if a.(i) then '1' else '0') in
  Printf.sprintf "SI=%s T=[%s]" (bits t.si)
    (String.concat ";" (Array.to_list (Array.map bits t.seq)))
