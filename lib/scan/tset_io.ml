(* Plain-text serialization of scan test sets.

   Format (one item per line, '#' comments):

     circuit <name> <n_pis> <n_ffs>
     test
     si <bits>
     v <bits>          # one line per PI vector, in order
     end

   The header records the interface arities so a loaded set can be
   validated against the circuit it is applied to. *)

module Circuit = Asc_netlist.Circuit

exception Format_error of { line : int; message : string }

let fail line fmt =
  Format.kasprintf (fun message -> raise (Format_error { line; message })) fmt

let bits_to_string bits =
  String.init (Array.length bits) (fun i -> if bits.(i) then '1' else '0')

let bits_of_string line s =
  Array.init (String.length s) (fun i ->
      match s.[i] with
      | '0' -> false
      | '1' -> true
      | ch -> fail line "bad bit %C" ch)

let to_string c (tests : Scan_test.t array) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "# asc scan test set (%d tests)\ncircuit %s %d %d\n"
       (Array.length tests) (Circuit.name c) (Circuit.n_inputs c) (Circuit.n_dffs c));
  Array.iter
    (fun (t : Scan_test.t) ->
      Buffer.add_string buf "test\n";
      Buffer.add_string buf (Printf.sprintf "si %s\n" (bits_to_string t.si));
      Array.iter
        (fun v -> Buffer.add_string buf (Printf.sprintf "v %s\n" (bits_to_string v)))
        t.seq;
      Buffer.add_string buf "end\n")
    tests;
  Buffer.contents buf

let of_string text =
  let lines = String.split_on_char '\n' text in
  let header = ref None in
  let tests = ref [] in
  let cur_si = ref None and cur_vs = ref [] and in_test = ref false in
  List.iteri
    (fun i raw ->
      let lineno = i + 1 in
      let s = String.trim raw in
      let s = match String.index_opt s '#' with Some k -> String.trim (String.sub s 0 k) | None -> s in
      if s <> "" then begin
        match String.split_on_char ' ' s with
        | [ "circuit"; name; pis; ffs ] ->
            if !header <> None then fail lineno "duplicate circuit header";
            (try header := Some (name, int_of_string pis, int_of_string ffs)
             with Failure _ -> fail lineno "bad circuit header")
        | [ "test" ] ->
            if !in_test then fail lineno "nested test";
            in_test := true;
            cur_si := None;
            cur_vs := []
        | [ "si"; bits ] ->
            if not !in_test then fail lineno "si outside test";
            if !cur_si <> None then fail lineno "duplicate si";
            cur_si := Some (bits_of_string lineno bits)
        | [ "v"; bits ] ->
            if not !in_test then fail lineno "vector outside test";
            cur_vs := bits_of_string lineno bits :: !cur_vs
        | [ "end" ] ->
            if not !in_test then fail lineno "end outside test";
            let si = match !cur_si with Some s -> s | None -> fail lineno "test without si" in
            if !cur_vs = [] then fail lineno "test without vectors";
            tests := Scan_test.create ~si ~seq:(Array.of_list (List.rev !cur_vs)) :: !tests;
            in_test := false
        | _ -> fail lineno "unrecognised line %S" s
      end)
    lines;
  if !in_test then fail 0 "unterminated test";
  match !header with
  | None -> fail 0 "missing circuit header"
  | Some (name, pis, ffs) ->
      let tests = Array.of_list (List.rev !tests) in
      Array.iter
        (fun (t : Scan_test.t) ->
          if Array.length t.si <> ffs then fail 0 "si arity mismatch";
          Array.iter
            (fun v -> if Array.length v <> pis then fail 0 "vector arity mismatch")
            t.seq)
        tests;
      (name, tests)

(* Validate a loaded set against the circuit it will be applied to. *)
let check_compatible c (name, tests) =
  if Circuit.name c <> name then
    fail 0 "test set is for circuit %S, not %S" name (Circuit.name c);
  Array.iter
    (fun (t : Scan_test.t) ->
      if Array.length t.si <> Circuit.n_dffs c then fail 0 "si arity mismatch";
      Array.iter
        (fun v ->
          if Array.length v <> Circuit.n_inputs c then fail 0 "vector arity mismatch")
        t.seq)
    tests;
  tests

let write_file path c tests =
  let oc = open_out path in
  (try output_string oc (to_string c tests)
   with e ->
     close_out oc;
     raise e);
  close_out oc

let read_file ?chaos path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text =
    try
      Asc_util.Chaos.hit chaos Asc_util.Chaos.tset_io_read;
      really_input_string ic len
    with
    (* Simulated crash: no cleanup, like a SIGKILL mid-read. *)
    | Asc_util.Chaos.Killed _ as e -> raise e
    | e ->
        close_in ic;
        raise e
  in
  close_in ic;
  of_string text
