(** The paper's test-application-time model:
    [N_cyc = (k+1) * N_SV + sum_j L(T_j)]. *)

(** [cycles ~n_sv lengths] for a test set with the given PI sequence
    lengths; 0 for an empty set. *)
val cycles : n_sv:int -> int list -> int

(** With [chains] balanced scan chains a scan operation costs
    [ceil (n_sv / chains)] cycles; [chains = 1] is the paper's model. *)
val cycles_multi_chain : n_sv:int -> chains:int -> int list -> int

val cycles_of_tests : Asc_netlist.Circuit.t -> Scan_test.t array -> int

(** At-speed PI sequence length statistics (Table 4's "ave" and range). *)
type length_stats = { average : float; lo : int; hi : int }

val length_stats : Scan_test.t array -> length_stats
