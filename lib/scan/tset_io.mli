(** Plain-text serialization of scan test sets (save a compacted set, load
    it back, validate against a circuit). *)

exception Format_error of { line : int; message : string }

(** Render a bit array as a ['0']/['1'] string (shared with the checkpoint
    format, which embeds the same bit encoding). *)
val bits_to_string : bool array -> string

(** Parse a ['0']/['1'] string; [line] is reported in {!Format_error} on
    any other character. *)
val bits_of_string : int -> string -> bool array

val to_string : Asc_netlist.Circuit.t -> Scan_test.t array -> string

(** Parse; returns the recorded circuit name and the tests. *)
val of_string : string -> string * Scan_test.t array

(** Validate a loaded set against a circuit (name and arities). *)
val check_compatible :
  Asc_netlist.Circuit.t -> string * Scan_test.t array -> Scan_test.t array

val write_file : string -> Asc_netlist.Circuit.t -> Scan_test.t array -> unit

(** [chaos] arms the [tset_io.read] injection point (a [Fail] rule
    surfaces as the same [Sys_error] a truncated read would raise). *)
val read_file :
  ?chaos:Asc_util.Chaos.t -> string -> string * Scan_test.t array
