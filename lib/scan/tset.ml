(* Test-set level coverage accounting.

   The static compaction procedure of [4] and Phase 3's covering both need
   the tests x faults detection matrix and per-fault detection counts.
   Length-one tests take the fast combinational path (62 tests per word);
   longer tests go through the sequential simulator. *)

open Asc_util
module Circuit = Asc_netlist.Circuit
module Comb_fsim = Asc_fault.Comb_fsim
module Pattern = Asc_sim.Pattern

let pattern_of_test (t : Scan_test.t) : Pattern.t = { pis = t.seq.(0); state = t.si }

(* Detection matrix: rows are tests, columns are fault indices.  [only]
   restricts the simulated faults. *)
let detection_matrix ?pool ?budget ?tel ?only c (tests : Scan_test.t array) ~faults =
  let n_tests = Array.length tests in
  let mat = Bitmat.create n_tests (Array.length faults) in
  (* Batch every length-one test through the combinational path. *)
  let short = ref [] in
  Array.iteri
    (fun i t -> if Scan_test.length t = 1 then short := (i, pattern_of_test t) :: !short)
    tests;
  let short = Array.of_list (List.rev !short) in
  if Array.length short > 0 then begin
    let patterns = Array.map snd short in
    let short_mat = Comb_fsim.detect_matrix ?pool ?budget ?tel ?only c ~patterns ~faults in
    Array.iteri
      (fun row (test_index, _) -> Bitmat.set_row mat test_index (Bitmat.row short_mat row))
      short
  end;
  Array.iteri
    (fun i t ->
      if Scan_test.length t > 1 then
        Bitmat.set_row mat i (Scan_test.detect ?pool ?budget ?tel ?only c t ~faults))
    tests;
  mat

(* Union coverage of a test set. *)
let coverage ?pool ?budget ?tel ?only c tests ~faults =
  Bitmat.column_union (detection_matrix ?pool ?budget ?tel ?only c tests ~faults)

(* N-detect profile: how many tests of the set detect each fault.  A
   standard quality metric for unmodelled/delay defects — faults detected
   by several different tests are likelier to be caught when the actual
   defect behaves unlike the model. *)
let detection_counts ?pool ?budget ?tel ?only c tests ~faults =
  Bitmat.column_counts (detection_matrix ?pool ?budget ?tel ?only c tests ~faults)

(* Number of faults detected by at least [n] tests. *)
let n_detect_count counts ~n =
  Array.fold_left (fun acc k -> if k >= n then acc + 1 else acc) 0 counts
