(* Test-set audits: the sanity checks a user runs before signing off on a
   compacted test set.

   - duplicate tests (identical scan-in and sequence);
   - useless tests (no incremental coverage in set order — everything they
     detect is detected by earlier tests);
   - per-test incremental coverage and the cumulative coverage curve;
   - expected scan-out vectors (what the tester must compare against). *)

open Asc_util
module Circuit = Asc_netlist.Circuit

type report = {
  n_tests : int;
  cycles : int;
  coverage : int; (* detected target faults *)
  n_targets : int;
  duplicates : (int * int) list; (* (earlier, later) index pairs *)
  useless : int list; (* indices with no incremental coverage *)
  incremental : int array; (* new detections per test, in set order *)
  scan_outs : bool array array; (* expected scan-out per test *)
}

let run c (tests : Scan_test.t array) ~faults ~targets =
  let mat = Tset.detection_matrix ~only:targets c tests ~faults in
  let n = Array.length tests in
  (* Duplicates: group by (si, seq). *)
  let seen = Hashtbl.create 16 in
  let duplicates = ref [] in
  Array.iteri
    (fun i t ->
      let key = (t.Scan_test.si, t.Scan_test.seq) in
      match Hashtbl.find_opt seen key with
      | Some j -> duplicates := (j, i) :: !duplicates
      | None -> Hashtbl.replace seen key i)
    tests;
  (* Incremental coverage in set order. *)
  let covered = Bitvec.create (Array.length faults) in
  let incremental = Array.make n 0 in
  let useless = ref [] in
  for i = 0 to n - 1 do
    let row = Bitvec.inter (Bitmat.row mat i) targets in
    let fresh = Bitvec.diff row covered in
    incremental.(i) <- Bitvec.count fresh;
    if incremental.(i) = 0 then useless := i :: !useless;
    Bitvec.union_into ~into:covered fresh
  done;
  {
    n_tests = n;
    cycles = Time_model.cycles_of_tests c tests;
    coverage = Bitvec.count covered;
    n_targets = Bitvec.count targets;
    duplicates = List.rev !duplicates;
    useless = List.rev !useless;
    incremental;
    scan_outs = Array.map (Scan_test.scan_out c) tests;
  }

let pp fmt (r : report) =
  Format.fprintf fmt
    "@[<v>%d tests, %d cycles, coverage %d/%d;@ %d duplicate(s), %d test(s) without \
     incremental coverage@]"
    r.n_tests r.cycles r.coverage r.n_targets
    (List.length r.duplicates)
    (List.length r.useless)
