(** Transition (gate-delay) faults — quantifying the paper's at-speed
    claim.

    A slow-to-rise / slow-to-fall fault delays every such transition of its
    line past the capture edge; effects propagate through the state.  A
    length-one scan test can never detect one (no at-speed predecessor to
    launch a transition), so transition coverage directly measures the
    value of the long at-speed sequences the proposed procedure produces. *)

type t = { gate : int; rising : bool }

val to_string : Asc_netlist.Circuit.t -> t -> string

(** Both polarities on every gate output (PIs and flip-flop outputs
    included). *)
val universe : Asc_netlist.Circuit.t -> t array

(** Transition faults detected by one scan test. *)
val detect :
  ?only:Asc_util.Bitvec.t ->
  Asc_netlist.Circuit.t ->
  Asc_scan.Scan_test.t ->
  faults:t array ->
  Asc_util.Bitvec.t

(** Coverage of a test set (with fault dropping; length-one tests are
    skipped — they cannot detect transition faults). *)
val coverage :
  Asc_netlist.Circuit.t ->
  Asc_scan.Scan_test.t array ->
  faults:t array ->
  Asc_util.Bitvec.t
