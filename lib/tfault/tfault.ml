(* Transition (gate-delay) faults — the extension behind the paper's
   at-speed claim.

   The paper argues that long primary input sequences applied at-speed help
   detect delay defects but reports no delay numbers; this module makes the
   claim measurable.  A slow-to-rise (resp. slow-to-fall) fault at a line
   delays every rising (falling) transition of that line past the capture
   edge: in the faulty machine the line shows its previous value for one
   cycle whenever it would transition that way.  Faulty effects propagate
   and accumulate through the state like any fault effect.

   Consequences that make this the right model here:
   - a length-one scan test can never detect a transition fault (its only
     cycle has no at-speed predecessor to launch a transition);
   - long at-speed sequences launch many transitions per line, giving the
     repeated detection opportunities the paper alludes to.

   Simulation is parallel-fault like the stuck-at simulator: 62 faulty
   machines per word, each lane delaying transitions at its own site. *)

open Asc_util
module Circuit = Asc_netlist.Circuit
module Gate = Asc_netlist.Gate
module Engine2 = Asc_sim.Engine2
module Scan_test = Asc_scan.Scan_test

type t = { gate : int; rising : bool }
(* [rising = true] — slow-to-rise; the site is the gate's output line. *)

let to_string c f =
  Printf.sprintf "%s/%s" (Circuit.signal_name c f.gate)
    (if f.rising then "str" else "stf")

(* Both polarities on every gate output (including PIs and flip-flop
   outputs, whose transitions are launched by input changes and state
   updates respectively). *)
let universe c =
  let acc = ref [] in
  for g = Circuit.n_gates c - 1 downto 0 do
    acc := { gate = g; rising = false } :: !acc;
    acc := { gate = g; rising = true } :: !acc
  done;
  Array.of_list !acc

(* One group of up to 62 faulty machines. *)
type group = {
  members : int array;
  lanes : int;
  (* Per gate: lanes whose site is this gate, split by polarity. *)
  str_mask : (int, int) Hashtbl.t;
  stf_mask : (int, int) Hashtbl.t;
}

let make_groups (faults : t array) subset =
  let total = Array.length subset in
  let n_groups = (total + Word.width - 1) / Word.width in
  Array.init n_groups (fun gi ->
      let base = gi * Word.width in
      let count = min Word.width (total - base) in
      let members = Array.sub subset base count in
      let str_mask = Hashtbl.create 64 and stf_mask = Hashtbl.create 64 in
      Array.iteri
        (fun lane fi ->
          let f = faults.(fi) in
          let tbl = if f.rising then str_mask else stf_mask in
          let cur = Option.value ~default:0 (Hashtbl.find_opt tbl f.gate) in
          Hashtbl.replace tbl f.gate (cur lor (1 lsl lane)))
        members;
      let lanes = if count = Word.width then Word.mask else (1 lsl count) - 1 in
      { members; lanes; str_mask; stf_mask })

(* Apply the delay rule at gate [g]: lanes in [str] delay rising edges
   (previous 0, current 1 -> show 0), lanes in [stf] delay falling edges.
   [prev] is the faulty line value of the previous cycle in the site
   lanes; returns the visible value and the updated [prev]. *)
let delay_rule ~v ~prev ~str ~stf =
  let rise = str land lnot prev land v in
  let fall = stf land prev land lnot v in
  let out = (v land lnot rise) lor fall in
  let site = str lor stf in
  (out, (prev land lnot site) lor (out land site))

(* Which of the subset faults does the scan test detect? *)
let detect_subset c (test : Scan_test.t) ~faults ~subset =
  let result = Bitvec.create (Array.length faults) in
  if Array.length subset = 0 then result
  else begin
    let len = Scan_test.length test in
    let good = Asc_fault.Seq_fsim.good_run c ~si:test.si ~seq:test.seq in
    let n_po = Circuit.n_outputs c and n_ff = Circuit.n_dffs c in
    let n = Circuit.n_gates c in
    let sw =
      Array.map (fun vec -> Array.map Word.splat vec) test.seq
    in
    let order = Circuit.order c in
    let kinds = Array.init n (Circuit.kind c) in
    let fanins = Array.init n (Circuit.fanins c) in
    let outputs = Circuit.outputs c and dffs = Circuit.dffs c in
    let inputs = Circuit.inputs c in
    Array.iter
      (fun group ->
        let v = Array.make n 0 in
        let state = Array.map Word.splat test.si in
        (* Previous-cycle faulty value of each lane's site line (packed by
           site gate: only the site lanes of a gate's entry matter). *)
        let prev = Hashtbl.create 64 in
        let get_prev g = Option.value ~default:0 (Hashtbl.find_opt prev g) in
        let site_masks g =
          ( Option.value ~default:0 (Hashtbl.find_opt group.str_mask g),
            Option.value ~default:0 (Hashtbl.find_opt group.stf_mask g) )
        in
        let det = ref 0 in
        let u = ref 0 in
        while !det <> group.lanes && !u < len do
          let first = !u = 0 in
          let apply g value =
            let str, stf = site_masks g in
            if str lor stf = 0 then value
            else if first then begin
              (* No at-speed predecessor: no transition to delay; just
                 record the line value as the launch point. *)
              Hashtbl.replace prev g (value land (str lor stf));
              value
            end
            else begin
              let out, prev' = delay_rule ~v:value ~prev:(get_prev g) ~str ~stf in
              Hashtbl.replace prev g prev';
              out
            end
          in
          Array.iteri (fun i g -> v.(g) <- apply g sw.(!u).(i)) inputs;
          Array.iteri (fun i g -> v.(g) <- apply g state.(i)) dffs;
          for idx = 0 to Array.length order - 1 do
            let g = order.(idx) in
            let fi = fanins.(g) in
            let nf = Array.length fi in
            let body =
              Engine2.eval_body kinds.(g) (fun i -> v.(fi.(i))) nf
            in
            v.(g) <- apply g body
          done;
          for i = 0 to n_po - 1 do
            det := !det lor (v.(outputs.(i)) lxor good.po.(!u).(i))
          done;
          for i = 0 to n_ff - 1 do
            state.(i) <- v.(Circuit.dff_input c dffs.(i))
          done;
          incr u
        done;
        if !u = len && !det <> group.lanes then begin
          let gst = good.states.(len) in
          for i = 0 to n_ff - 1 do
            det := !det lor (state.(i) lxor gst.(i))
          done
        end;
        Word.iter_set
          (fun lane -> Bitvec.set result group.members.(lane))
          (!det land group.lanes))
      (make_groups faults subset);
    result
  end

let detect ?only c test ~faults =
  let subset =
    match only with
    | None -> Array.init (Array.length faults) (fun i -> i)
    | Some mask -> Array.of_list (Bitvec.to_list mask)
  in
  detect_subset c test ~faults ~subset

(* Coverage of a whole test set, with fault dropping across tests. *)
let coverage c (tests : Scan_test.t array) ~faults =
  let n = Array.length faults in
  let detected = Bitvec.create n in
  Array.iter
    (fun test ->
      if Scan_test.length test > 1 then begin
        (* Length-one tests cannot detect transition faults: skip. *)
        let remaining = Bitvec.init n (fun i -> not (Bitvec.get detected i)) in
        if not (Bitvec.is_empty remaining) then
          Bitvec.union_into ~into:detected (detect ~only:remaining c test ~faults)
      end)
    tests;
  detected
