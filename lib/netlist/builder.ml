(* Mutable construction interface for {!Circuit}.

   Signals can be declared before their fanins are known ([declare] +
   [connect]), which lets the `.bench` reader and the synthetic generator
   create nodes in file order regardless of definition order. *)

type node = {
  mutable kind : Gate.kind;
  name : string;
  mutable fanin : int list; (* reversed *)
  mutable connected : bool;
}

type t = {
  circuit_name : string;
  mutable nodes : node array;
  mutable n : int;
  by_name : (string, int) Hashtbl.t;
  mutable outputs : int list; (* reversed *)
}

let create circuit_name =
  { circuit_name; nodes = Array.make 16 { kind = Gate.Buf; name = ""; fanin = []; connected = false };
    n = 0; by_name = Hashtbl.create 64; outputs = [] }

let size t = t.n

let grow t =
  if t.n = Array.length t.nodes then begin
    let bigger = Array.make (2 * Array.length t.nodes) t.nodes.(0) in
    Array.blit t.nodes 0 bigger 0 t.n;
    t.nodes <- bigger
  end

let declare t kind name =
  if Hashtbl.mem t.by_name name then
    invalid_arg (Printf.sprintf "Builder.declare: duplicate signal %S" name);
  grow t;
  let id = t.n in
  t.nodes.(id) <- { kind; name; fanin = []; connected = false };
  t.n <- t.n + 1;
  Hashtbl.add t.by_name name id;
  id

let connect t id fanin =
  if id < 0 || id >= t.n then invalid_arg "Builder.connect: bad id";
  let node = t.nodes.(id) in
  if node.connected then
    invalid_arg (Printf.sprintf "Builder.connect: %S already connected" node.name);
  List.iter
    (fun f -> if f < 0 || f >= t.n then invalid_arg "Builder.connect: bad fanin id")
    fanin;
  node.fanin <- List.rev fanin;
  node.connected <- true

let add_input t name =
  let id = declare t Gate.Input name in
  connect t id [];
  id

let add_const t value name =
  let id = declare t (if value then Gate.Const1 else Gate.Const0) name in
  connect t id [];
  id

let add_dff t name = declare t Gate.Dff name

let set_dff_input t id d = connect t id [ d ]

let add_gate t kind name fanin =
  let id = declare t kind name in
  connect t id fanin;
  id

(* Append one more fanin to an n-ary gate (used by the synthetic generator
   to absorb otherwise-dead logic). *)
let append_fanin t id f =
  if id < 0 || id >= t.n || f < 0 || f >= t.n then invalid_arg "Builder.append_fanin";
  let node = t.nodes.(id) in
  if not (Gate.n_ary node.kind) then
    invalid_arg (Printf.sprintf "Builder.append_fanin: %S is not n-ary" node.name);
  node.fanin <- f :: node.fanin

let add_output t id =
  if id < 0 || id >= t.n then invalid_arg "Builder.add_output: bad id";
  t.outputs <- id :: t.outputs

let find t name = Hashtbl.find_opt t.by_name name

let name_of t id = t.nodes.(id).name

let kind_of t id = t.nodes.(id).kind

let finalize t =
  let n = t.n in
  let kinds = Array.init n (fun g -> t.nodes.(g).kind) in
  let fanins =
    Array.init n (fun g ->
        let node = t.nodes.(g) in
        if not node.connected then
          raise
            (Circuit.Structural_error
               (Printf.sprintf "circuit %s: signal %S was declared but never connected"
                  t.circuit_name node.name));
        Array.of_list (List.rev node.fanin))
  in
  let signal_names = Array.init n (fun g -> t.nodes.(g).name) in
  let collect pred =
    let acc = ref [] in
    for g = n - 1 downto 0 do
      if pred kinds.(g) then acc := g :: !acc
    done;
    Array.of_list !acc
  in
  let inputs = collect (fun k -> k = Gate.Input) in
  let dffs = collect (fun k -> k = Gate.Dff) in
  Circuit.make ~name:t.circuit_name ~kinds ~fanins ~inputs
    ~outputs:(Array.of_list (List.rev t.outputs))
    ~dffs ~signal_names
