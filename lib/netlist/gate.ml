(* Gate-level primitives for the sequential netlist model.

   [Input] and [Dff] are sources for combinational evaluation: an [Input] is
   a primary input, a [Dff] outputs the current state and has exactly one
   fanin — its next-state signal — that is sampled at the clock edge. *)

type kind =
  | Input
  | Dff
  | Buf
  | Not
  | And
  | Nand
  | Or
  | Nor
  | Xor
  | Xnor
  | Const0
  | Const1

let to_string = function
  | Input -> "INPUT"
  | Dff -> "DFF"
  | Buf -> "BUF"
  | Not -> "NOT"
  | And -> "AND"
  | Nand -> "NAND"
  | Or -> "OR"
  | Nor -> "NOR"
  | Xor -> "XOR"
  | Xnor -> "XNOR"
  | Const0 -> "CONST0"
  | Const1 -> "CONST1"

let of_string s =
  match String.uppercase_ascii s with
  | "INPUT" -> Some Input
  | "DFF" -> Some Dff
  | "BUF" | "BUFF" -> Some Buf
  | "NOT" -> Some Not
  | "AND" -> Some And
  | "NAND" -> Some Nand
  | "OR" -> Some Or
  | "NOR" -> Some Nor
  | "XOR" -> Some Xor
  | "XNOR" -> Some Xnor
  | "CONST0" -> Some Const0
  | "CONST1" -> Some Const1
  | _ -> None

let arity_ok kind n =
  match kind with
  | Input | Const0 | Const1 -> n = 0
  | Dff | Buf | Not -> n = 1
  | And | Nand | Or | Nor | Xor | Xnor -> n >= 2

(* Whether the gate complements its natural body function (used by fault
   collapsing and PODEM backtrace parity). *)
let inverting = function
  | Nand | Nor | Not | Xnor -> true
  | Input | Dff | Buf | And | Or | Xor | Const0 | Const1 -> false

(* Controlling input value: a single input at this value fixes the output
   regardless of the others.  [None] for gates without one. *)
let controlling_value = function
  | And | Nand -> Some false
  | Or | Nor -> Some true
  | Input | Dff | Buf | Not | Xor | Xnor | Const0 | Const1 -> None

(* [is_source k] — evaluated as a free variable by combinational passes. *)
let is_source = function
  | Input | Dff -> true
  | Buf | Not | And | Nand | Or | Nor | Xor | Xnor | Const0 | Const1 -> false

(* Kinds that accept an arbitrary number (>= 2) of fanins; the synthetic
   circuit generator may append extra fanins to these. *)
let n_ary = function
  | And | Nand | Or | Nor | Xor | Xnor -> true
  | Input | Dff | Buf | Not | Const0 | Const1 -> false
