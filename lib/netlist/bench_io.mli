(** Reader and writer for the ISCAS-89 `.bench` netlist format.

    This lets users run the toolchain on real ISCAS-89 / ITC-99 netlists;
    the repository's experiments use synthetic stand-ins (see
    [Asc_circuits]) plus the embedded s27 golden circuit. *)

exception Parse_error of { line : int; message : string }

(** Parse `.bench` text.  Raises {!Parse_error} on syntax errors and
    {!Circuit.Structural_error} on structural ones. *)
val parse_string : name:string -> string -> Circuit.t

(** Parse a `.bench` file; the circuit is named after the file basename.
    [chaos] arms the [bench_io.read] injection point (a [Fail] rule
    surfaces as the same [Sys_error] a truncated read would raise). *)
val parse_file : ?chaos:Asc_util.Chaos.t -> string -> Circuit.t

(** Render a circuit back to `.bench` text ([CONST0]/[CONST1] gates are
    emitted with those non-standard kind names). *)
val to_string : Circuit.t -> string

val write_file : string -> Circuit.t -> unit
