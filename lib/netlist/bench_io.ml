(* Reader and writer for the ISCAS-89 `.bench` netlist format.

   Accepted grammar (one statement per line, '#' starts a comment):

     INPUT(sig)
     OUTPUT(sig)
     sig = KIND(a, b, ...)

   where KIND is one of DFF, BUF/BUFF, NOT, AND, NAND, OR, NOR, XOR, XNOR.
   Signals may be referenced before they are defined.  A signal that is
   OUTPUT-declared but never defined and never INPUT-declared is an error. *)

exception Parse_error of { line : int; message : string }

let parse_fail line fmt =
  Format.kasprintf (fun message -> raise (Parse_error { line; message })) fmt

let strip_comment s =
  match String.index_opt s '#' with Some i -> String.sub s 0 i | None -> s

let is_ident_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | '[' | ']' | '-' | '$' | '/' -> true
  | _ -> false

(* Statements as parsed, before name resolution. *)
type statement =
  | Input_decl of string
  | Output_decl of string
  | Assign of { lhs : string; kind : Gate.kind; args : string list }

let split_args line s =
  (* Split "a, b, c" on commas, trimming whitespace. *)
  let parts = String.split_on_char ',' s in
  List.map
    (fun p ->
      let p = String.trim p in
      if p = "" then parse_fail line "empty argument";
      String.iter
        (fun c -> if not (is_ident_char c) then parse_fail line "bad character %C in argument" c)
        p;
      p)
    parts

let parse_call line s =
  (* "KIND(a, b, c)" -> (KIND, [a; b; c]) *)
  match String.index_opt s '(' with
  | None -> parse_fail line "expected '(' in %S" s
  | Some lp ->
      if s.[String.length s - 1] <> ')' then parse_fail line "expected ')' at end of %S" s;
      let head = String.trim (String.sub s 0 lp) in
      let inner = String.sub s (lp + 1) (String.length s - lp - 2) in
      (head, inner)

let parse_statement line s =
  match String.index_opt s '=' with
  | Some eq ->
      let lhs = String.trim (String.sub s 0 eq) in
      if lhs = "" then parse_fail line "missing signal name before '='";
      let rhs = String.trim (String.sub s (eq + 1) (String.length s - eq - 1)) in
      let head, inner = parse_call line rhs in
      let kind =
        match Gate.of_string head with
        | Some k when k <> Gate.Input -> k
        | _ -> parse_fail line "unknown gate kind %S" head
      in
      let args = split_args line inner in
      Assign { lhs; kind; args }
  | None ->
      let head, inner = parse_call line s in
      let arg = String.trim inner in
      if arg = "" then parse_fail line "missing signal in %S" s;
      (match String.uppercase_ascii head with
      | "INPUT" -> Input_decl arg
      | "OUTPUT" -> Output_decl arg
      | _ -> parse_fail line "unknown declaration %S" head)

let statements_of_string text =
  let stmts = ref [] in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun i raw ->
      let s = String.trim (strip_comment raw) in
      if s <> "" then stmts := (i + 1, parse_statement (i + 1) s) :: !stmts)
    lines;
  List.rev !stmts

let parse_string ~name text =
  let stmts = statements_of_string text in
  let b = Builder.create name in
  (* Pass 1: declare every defined signal so references resolve. *)
  List.iter
    (fun (line, stmt) ->
      match stmt with
      | Input_decl s ->
          if Builder.find b s <> None then parse_fail line "duplicate definition of %S" s;
          ignore (Builder.add_input b s)
      | Assign { lhs; kind; _ } ->
          if Builder.find b lhs <> None then parse_fail line "duplicate definition of %S" lhs;
          ignore (Builder.declare b kind lhs)
      | Output_decl _ -> ())
    stmts;
  let resolve line s =
    match Builder.find b s with
    | Some id -> id
    | None -> parse_fail line "undefined signal %S" s
  in
  (* Pass 2: connect fanins and outputs. *)
  List.iter
    (fun (line, stmt) ->
      match stmt with
      | Input_decl _ -> ()
      | Output_decl s -> Builder.add_output b (resolve line s)
      | Assign { lhs; kind; args } ->
          let id = resolve line lhs in
          let fanin = List.map (resolve line) args in
          if not (Gate.arity_ok kind (List.length fanin)) then
            parse_fail line "gate %S (%s) has illegal arity %d" lhs (Gate.to_string kind)
              (List.length fanin);
          (* A DFF feeding itself is a legal one-bit state machine; any
             other gate reading its own output is a zero-delay loop the
             levelised simulator cannot evaluate. *)
          if kind <> Gate.Dff && List.mem id fanin then
            parse_fail line "combinational self-loop on %S" lhs;
          Builder.connect b id fanin)
    stmts;
  Builder.finalize b

let parse_file ?chaos path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text =
    try
      Asc_util.Chaos.hit chaos Asc_util.Chaos.bench_io_read;
      really_input_string ic len
    with
    (* A simulated crash must leave the process state exactly as a
       SIGKILL would: no cleanup, the channel stays open. *)
    | Asc_util.Chaos.Killed _ as e -> raise e
    | e ->
        close_in ic;
        raise e
  in
  close_in ic;
  let base = Filename.remove_extension (Filename.basename path) in
  parse_string ~name:base text

let to_string c =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "# %s\n" (Circuit.name c));
  Array.iter
    (fun g -> Buffer.add_string buf (Printf.sprintf "INPUT(%s)\n" (Circuit.signal_name c g)))
    (Circuit.inputs c);
  Array.iter
    (fun g -> Buffer.add_string buf (Printf.sprintf "OUTPUT(%s)\n" (Circuit.signal_name c g)))
    (Circuit.outputs c);
  Buffer.add_char buf '\n';
  for g = 0 to Circuit.n_gates c - 1 do
    match Circuit.kind c g with
    | Gate.Input -> ()
    | kind ->
        let args =
          Circuit.fanins c g |> Array.to_list
          |> List.map (Circuit.signal_name c)
          |> String.concat ", "
        in
        Buffer.add_string buf
          (Printf.sprintf "%s = %s(%s)\n" (Circuit.signal_name c g) (Gate.to_string kind) args)
  done;
  Buffer.contents buf

let write_file path c =
  let oc = open_out path in
  (try output_string oc (to_string c)
   with e ->
     close_out oc;
     raise e);
  close_out oc
