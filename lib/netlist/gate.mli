(** Gate-level primitives for the sequential netlist model. *)

type kind =
  | Input  (** Primary input; combinational source. *)
  | Dff
      (** D flip-flop: outputs the current state; its single fanin is the
          next-state signal sampled at the clock edge. *)
  | Buf
  | Not
  | And
  | Nand
  | Or
  | Nor
  | Xor
  | Xnor
  | Const0
  | Const1

val to_string : kind -> string

(** Parse an ISCAS `.bench` gate name ([BUFF] is accepted for [Buf]). *)
val of_string : string -> kind option

(** Whether [n] fanins is a legal arity for the kind. *)
val arity_ok : kind -> int -> bool

(** Whether the gate complements its body function (NAND/NOR/NOT/XNOR). *)
val inverting : kind -> bool

(** The input value that fixes the output on its own, if any. *)
val controlling_value : kind -> bool option

(** True for [Input] and [Dff] — sources of combinational evaluation. *)
val is_source : kind -> bool

(** Kinds accepting arbitrarily many (>= 2) fanins. *)
val n_ary : kind -> bool
