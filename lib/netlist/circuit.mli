(** Immutable gate-level sequential circuit.

    Gates carry dense integer ids.  Combinational evaluation is a single
    left-to-right sweep over {!order}; [Input] and [Dff] gates are sources
    (a DFF outputs the current state and its single fanin is the next-state
    signal captured at the clock edge).  Full scan is modelled by treating
    the DFFs, in {!dffs} order, as the scan chain. *)

type t

exception Structural_error of string

(** Construct a circuit and all derived structure (fanouts, topological
    order, levels).  Raises {!Structural_error} on malformed input — arity
    violations, dangling ids, unregistered sources, combinational cycles. *)
val make :
  name:string ->
  kinds:Gate.kind array ->
  fanins:int array array ->
  inputs:int array ->
  outputs:int array ->
  dffs:int array ->
  signal_names:string array ->
  t

val name : t -> string
val n_gates : t -> int
val n_inputs : t -> int
val n_outputs : t -> int
val n_dffs : t -> int

val kind : t -> int -> Gate.kind
val fanins : t -> int -> int array
val fanouts : t -> int -> int array
val signal_name : t -> int -> string

(** Topological level; sources are level 0. *)
val level : t -> int -> int

(** Primary input gate ids, in PI vector order. *)
val inputs : t -> int array

(** Gate ids driving the primary outputs, in PO vector order. *)
val outputs : t -> int array

(** Flip-flop gate ids, in scan-chain order. *)
val dffs : t -> int array

(** Every non-source gate in topological evaluation order. *)
val order : t -> int array

(** {2 Flat levelized schedule}

    CSR-style arrays computed once per netlist and shared read-only by all
    simulation engines.  Callers must not mutate the returned arrays. *)

(** Gate [g]'s fanins are
    [fanin_flat.(fanin_off.(g)) .. fanin_flat.(fanin_off.(g+1) - 1)]. *)
val fanin_flat : t -> int array

val fanin_off : t -> int array

(** Gate [g]'s fanouts, in the same layout as {!fanin_flat}. *)
val fanout_flat : t -> int array

val fanout_off : t -> int array

(** The non-source gates sorted by (level, id): the levelized evaluation
    schedule.  A gate's combinational fanouts always sit at strictly
    higher levels, so walking levels in ascending order evaluates every
    gate after all its fanins. *)
val level_order : t -> int array

(** [level_off.(l) .. level_off.(l+1) - 1] slices level [l] out of
    {!level_order}; length [max_level + 2]. *)
val level_off : t -> int array

(** Index of a gate in {!inputs}, or [-1]. *)
val pi_index : t -> int -> int

(** Index of a gate in {!dffs}, or [-1]. *)
val dff_index : t -> int -> int

(** The gate id of the next-state signal feeding a flip-flop. *)
val dff_input : t -> int -> int

(** Maximum combinational depth. *)
val max_level : t -> int

(** Find a gate by signal name (linear scan; for tests and tools). *)
val find_signal : t -> string -> int option

val kind_counts : t -> (Gate.kind * int) list
val pp_stats : Format.formatter -> t -> unit
