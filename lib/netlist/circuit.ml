(* Immutable gate-level sequential circuit.

   Gates are identified by dense integer ids.  [order] lists every
   non-source gate in a topological order of the combinational graph (DFF
   fanin edges are sequential and impose no ordering constraint), so a single
   left-to-right sweep over [order] evaluates the combinational logic. *)

type t = {
  name : string;
  kinds : Gate.kind array;
  fanins : int array array;
  fanouts : int array array;
  inputs : int array;
  outputs : int array;
  dffs : int array;
  signal_names : string array;
  order : int array;
  level : int array;
  pi_index : int array; (* gate id -> index in [inputs], or -1 *)
  dff_index : int array; (* gate id -> index in [dffs], or -1 *)
  (* Flat levelized schedule, shared read-only by every simulation engine:
     gate [g]'s fanins are [fanin_flat.(fanin_off.(g)) ..
     fanin_flat.(fanin_off.(g+1) - 1)] (same for fanouts), and
     [level_order] lists the non-source gates sorted by (level, id) with
     [level_off.(l) .. level_off.(l+1) - 1] slicing out level [l]. *)
  fanin_flat : int array;
  fanin_off : int array;
  fanout_flat : int array;
  fanout_off : int array;
  level_order : int array;
  level_off : int array;
}

let name t = t.name
let n_gates t = Array.length t.kinds
let n_inputs t = Array.length t.inputs
let n_outputs t = Array.length t.outputs
let n_dffs t = Array.length t.dffs

let kind t g = t.kinds.(g)
let fanins t g = t.fanins.(g)
let fanouts t g = t.fanouts.(g)
let signal_name t g = t.signal_names.(g)
let level t g = t.level.(g)

let inputs t = t.inputs
let outputs t = t.outputs
let dffs t = t.dffs
let order t = t.order

let pi_index t g = t.pi_index.(g)
let dff_index t g = t.dff_index.(g)

let fanin_flat t = t.fanin_flat
let fanin_off t = t.fanin_off
let fanout_flat t = t.fanout_flat
let fanout_off t = t.fanout_off
let level_order t = t.level_order
let level_off t = t.level_off

(* The next-state signal feeding flip-flop [d] (a gate id). *)
let dff_input t d =
  match t.kinds.(d) with
  | Gate.Dff -> t.fanins.(d).(0)
  | _ -> invalid_arg "Circuit.dff_input: not a DFF"

exception Structural_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Structural_error s)) fmt

(* Build derived structure (fanouts, topological order, levels) and check
   structural sanity.  Raises [Structural_error] on malformed input,
   including combinational cycles. *)
let make ~name ~kinds ~fanins ~inputs ~outputs ~dffs ~signal_names =
  let n = Array.length kinds in
  if Array.length fanins <> n || Array.length signal_names <> n then
    fail "circuit %s: array length mismatch" name;
  Array.iteri
    (fun g fi ->
      if not (Gate.arity_ok kinds.(g) (Array.length fi)) then
        fail "circuit %s: gate %s (%s) has illegal arity %d" name signal_names.(g)
          (Gate.to_string kinds.(g)) (Array.length fi);
      Array.iter
        (fun f ->
          if f < 0 || f >= n then
            fail "circuit %s: gate %s has out-of-range fanin %d" name signal_names.(g) f)
        fi)
    fanins;
  Array.iter
    (fun o -> if o < 0 || o >= n then fail "circuit %s: out-of-range output %d" name o)
    outputs;
  Array.iteri
    (fun i g ->
      if kinds.(g) <> Gate.Input then
        fail "circuit %s: inputs.(%d) is not an Input gate" name i)
    inputs;
  Array.iteri
    (fun i g ->
      if kinds.(g) <> Gate.Dff then fail "circuit %s: dffs.(%d) is not a DFF" name i)
    dffs;
  (* Every Input/Dff gate must be registered exactly once. *)
  let pi_index = Array.make n (-1) in
  Array.iteri
    (fun i g ->
      if pi_index.(g) >= 0 then fail "circuit %s: duplicate input registration" name;
      pi_index.(g) <- i)
    inputs;
  let dff_index = Array.make n (-1) in
  Array.iteri
    (fun i g ->
      if dff_index.(g) >= 0 then fail "circuit %s: duplicate DFF registration" name;
      dff_index.(g) <- i)
    dffs;
  Array.iteri
    (fun g k ->
      match k with
      | Gate.Input ->
          if pi_index.(g) < 0 then
            fail "circuit %s: Input gate %s not in inputs" name signal_names.(g)
      | Gate.Dff ->
          if dff_index.(g) < 0 then
            fail "circuit %s: DFF gate %s not in dffs" name signal_names.(g)
      | _ -> ())
    kinds;
  (* Fanouts. *)
  let fanout_count = Array.make n 0 in
  Array.iter (Array.iter (fun f -> fanout_count.(f) <- fanout_count.(f) + 1)) fanins;
  let fanouts = Array.init n (fun g -> Array.make fanout_count.(g) (-1)) in
  let fill = Array.make n 0 in
  Array.iteri
    (fun g fi ->
      Array.iter
        (fun f ->
          fanouts.(f).(fill.(f)) <- g;
          fill.(f) <- fill.(f) + 1)
        fi)
    fanins;
  (* Kahn's topological sort over combinational edges.  DFF gates are
     sources (their fanin edge is sequential); Input/Const gates have no
     fanins anyway. *)
  let is_comb g = not (Gate.is_source kinds.(g)) in
  let indegree = Array.make n 0 in
  Array.iteri
    (fun g fi -> if is_comb g then indegree.(g) <- Array.length fi)
    fanins;
  let queue = Queue.create () in
  let level = Array.make n 0 in
  (* Seed: sources feed their fanouts; combinational gates with no pending
     fanins (constants) start immediately. *)
  for g = 0 to n - 1 do
    if is_comb g && indegree.(g) = 0 then Queue.add g queue
  done;
  let ready_from g =
    Array.iter
      (fun s ->
        if is_comb s then begin
          indegree.(s) <- indegree.(s) - 1;
          if indegree.(s) = 0 then Queue.add s queue
        end)
      fanouts.(g)
  in
  for g = 0 to n - 1 do
    if Gate.is_source kinds.(g) then ready_from g
  done;
  let order = Array.make (max 0 (n - Array.length inputs - Array.length dffs)) (-1) in
  let pos = ref 0 in
  while not (Queue.is_empty queue) do
    let g = Queue.pop queue in
    order.(!pos) <- g;
    incr pos;
    let lv = Array.fold_left (fun acc f -> max acc (level.(f) + 1)) 0 fanins.(g) in
    level.(g) <- lv;
    ready_from g
  done;
  if !pos <> Array.length order then
    fail "circuit %s: combinational cycle detected (%d of %d gates ordered)" name !pos
      (Array.length order);
  (* Flat fanin/fanout arrays (CSR layout): one contiguous int array per
     direction keeps the evaluation sweep cache-friendly and lets engines
     share the schedule instead of flattening per instance. *)
  let flatten rows =
    let off = Array.make (n + 1) 0 in
    for g = 0 to n - 1 do
      off.(g + 1) <- off.(g) + Array.length rows.(g)
    done;
    let flat = Array.make (max 1 off.(n)) 0 in
    for g = 0 to n - 1 do
      Array.iteri (fun i f -> flat.(off.(g) + i) <- f) rows.(g)
    done;
    (flat, off)
  in
  let fanin_flat, fanin_off = flatten fanins in
  let fanout_flat, fanout_off = flatten fanouts in
  (* Level-bucketed evaluation order: counting sort of the non-source gates
     by level, ties broken by gate id, so the levelized kernel can walk one
     level at a time. *)
  let maxl = Array.fold_left max 0 level in
  let level_off = Array.make (maxl + 2) 0 in
  for g = 0 to n - 1 do
    if is_comb g then level_off.(level.(g) + 1) <- level_off.(level.(g) + 1) + 1
  done;
  for l = 1 to maxl + 1 do
    level_off.(l) <- level_off.(l) + level_off.(l - 1)
  done;
  let level_order = Array.make (Array.length order) (-1) in
  let cursor = Array.copy level_off in
  for g = 0 to n - 1 do
    if is_comb g then begin
      level_order.(cursor.(level.(g))) <- g;
      cursor.(level.(g)) <- cursor.(level.(g)) + 1
    end
  done;
  {
    name;
    kinds;
    fanins;
    fanouts;
    inputs;
    outputs;
    dffs;
    signal_names;
    order;
    level;
    pi_index;
    dff_index;
    fanin_flat;
    fanin_off;
    fanout_flat;
    fanout_off;
    level_order;
    level_off;
  }

let max_level t = Array.fold_left max 0 t.level

let find_signal t name =
  let n = n_gates t in
  let rec go g =
    if g >= n then None else if t.signal_names.(g) = name then Some g else go (g + 1)
  in
  go 0

let kind_counts t =
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun k ->
      let c = try Hashtbl.find tbl k with Not_found -> 0 in
      Hashtbl.replace tbl k (c + 1))
    t.kinds;
  Hashtbl.fold (fun k c acc -> (k, c) :: acc) tbl []

let pp_stats fmt t =
  Format.fprintf fmt "circuit %s: %d gates, %d PIs, %d POs, %d FFs, depth %d" t.name
    (n_gates t) (n_inputs t) (n_outputs t) (n_dffs t) (max_level t)
