(** Mutable construction interface for {!Circuit}.

    Two usage styles:
    - direct: {!add_input}, {!add_gate}, {!add_dff} + {!set_dff_input};
    - deferred: {!declare} every signal first, then {!connect} fanins in any
      order (used by the `.bench` reader, where signals are referenced before
      they are defined).

    Primary inputs and flip-flops appear in the final circuit in declaration
    order; declaration order of DFFs defines the scan-chain order. *)

type t

val create : string -> t

(** Number of signals declared so far. *)
val size : t -> int

(** Declare a signal with no fanins yet.  Signal names must be unique. *)
val declare : t -> Gate.kind -> string -> int

(** Provide the fanin list of a declared signal (exactly once). *)
val connect : t -> int -> int list -> unit

val add_input : t -> string -> int

(** [add_const t value name] adds a constant-0 or constant-1 source. *)
val add_const : t -> bool -> string -> int

(** Declare a flip-flop; its next-state fanin is set by {!set_dff_input}. *)
val add_dff : t -> string -> int

val set_dff_input : t -> int -> int -> unit

val add_gate : t -> Gate.kind -> string -> int list -> int

(** Append one more fanin to an n-ary gate. *)
val append_fanin : t -> int -> int -> unit

(** Mark a signal as driving a primary output (order preserved). *)
val add_output : t -> int -> unit

val find : t -> string -> int option
val name_of : t -> int -> string
val kind_of : t -> int -> Gate.kind

(** Build the circuit; raises {!Circuit.Structural_error} on unconnected
    signals or structural violations. *)
val finalize : t -> Circuit.t
