# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench bench-quick ablations micro examples fmt fmt-check clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:            ## regenerate the paper's tables (minutes)
	dune exec bench/main.exe

bench-quick:      ## small-circuit subset
	dune exec bench/main.exe -- --quick

ablations:        ## design-choice ablations A-F
	dune exec bench/main.exe -- --ablations

micro:            ## Bechamel kernel micro-benchmarks
	dune exec bench/main.exe -- --micro

examples:
	dune exec examples/quickstart.exe
	dune exec examples/compaction_flow.exe
	dune exec examples/at_speed_delay.exe
	dune exec examples/custom_circuit.exe
	dune exec examples/diagnosis.exe

fmt:              ## reformat in place (needs ocamlformat)
	dune build @fmt --auto-promote

fmt-check:        ## check formatting without modifying files
	dune build @fmt

clean:
	dune clean
