(* Compaction shoot-out on one benchmark circuit: the proposed procedure
   (directed and random T0) against the static baseline of [4] and the
   dynamic baseline of [2,3], with the clock-cycle accounting the paper
   uses throughout.

     dune exec examples/compaction_flow.exe          # s298 by default
     dune exec examples/compaction_flow.exe -- s382  # any benchmark name
*)

module Bv = Asc_util.Bitvec
module Scan_test = Asc_scan.Scan_test

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "s298" in
  if not (Asc_circuits.Registry.mem name) then begin
    Printf.eprintf "unknown circuit %S; known: %s\n" name
      (String.concat " " Asc_circuits.Registry.names);
    exit 1
  end;
  Printf.printf "circuit %s — running all four flows...\n%!" name;
  let run = Asc_core.Experiments.run_circuit ~with_dynamic:true name in
  let c = run.prepared.circuit in
  let n_sv = Asc_netlist.Circuit.n_dffs c in
  let n_targets = Bv.count run.prepared.targets in
  Printf.printf "N_SV = %d, target faults = %d, |C| = %d\n\n" n_sv n_targets
    (Array.length run.prepared.comb_tests);

  let describe label tests cycles detected =
    let stats = Asc_scan.Time_model.length_stats tests in
    Printf.printf "%-22s %3d tests, %6d cycles, %5d detected, ave L %.2f (%d-%d)\n"
      label (Array.length tests) cycles detected stats.average stats.lo stats.hi
  in
  let coverage tests =
    Bv.count
      (Bv.inter
         (Asc_scan.Tset.coverage c tests ~faults:run.prepared.faults)
         run.prepared.targets)
  in
  (* The [4] flow: C as length-one scan tests, then combining. *)
  let b = run.static_baseline in
  describe "[4] initial" b.initial_tests b.cycles_initial (coverage b.initial_tests);
  describe "[4] compacted" b.final_tests b.cycles_final (coverage b.final_tests);

  (* The dynamic flow of [2,3]. *)
  (match run.dynamic_baseline with
  | Some d ->
      let cycles = Asc_core.Experiments.dynamic_cycles d c in
      describe "[2,3] dynamic" d.tests cycles (Bv.count d.detected)
  | None -> ());

  (* The proposed procedure. *)
  let show label (r : Asc_core.Pipeline.result) =
    describe
      (label ^ " initial")
      r.initial_tests r.cycles_initial
      (Bv.count (Bv.inter r.final_detected run.prepared.targets));
    describe (label ^ " compacted") r.final_tests r.cycles_final
      (Bv.count r.final_detected);
    Printf.printf "    tau_seq: T0 %d -> L(T_seq) %d, %d faults; +%d top-up tests\n"
      r.t0_length
      (Scan_test.length r.tau_seq)
      (Bv.count r.f_seq) (Array.length r.added)
  in
  show "proposed (directed)" run.directed;
  show "proposed (random)" run.random;

  Printf.printf "\nproposed/directed vs [4] compacted: %+d cycles\n"
    (run.directed.cycles_final - b.cycles_final)
