(* Fault diagnosis with the compacted test sets — and what compaction
   costs in diagnostic resolution.

   A compacted set with one long tau_seq applies faster but has coarser
   pass/fail signatures than [4]'s many length-one tests: if almost every
   fault fails "test 0" (the long sequence), the pass/fail dictionary
   can't tell them apart.  This example injects a defect, diagnoses it
   with both test sets, and compares their resolution.

     dune exec examples/diagnosis.exe            # s298 by default
     dune exec examples/diagnosis.exe -- s344
*)

module Bv = Asc_util.Bitvec
module Diag = Asc_diag.Diag

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "s298" in
  Printf.printf "circuit %s — building both test sets...\n%!" name;
  let run = Asc_core.Experiments.run_circuit name in
  let c = run.prepared.circuit in
  let faults = run.prepared.faults in

  let proposed = run.directed.final_tests in
  let baseline = run.static_baseline.final_tests in
  let d_prop = Diag.build c proposed ~faults in
  let d_base = Diag.build c baseline ~faults in

  (* Inject a defect: a mid-circuit stuck-at the tester will see fail. *)
  let defect = faults.(Array.length faults / 2) in
  Printf.printf "injected defect: %s\n\n" (Asc_fault.Fault.to_string c defect);
  let show label dict tests =
    let observed = Diag.observe c tests ~fault:defect in
    let failing = Bv.count observed in
    let matches = Diag.perfect_matches dict ~observed in
    Printf.printf "%-22s %2d/%2d tests fail; %d perfect candidate(s)" label failing
      (Array.length tests) (List.length matches);
    (match matches with
    | first :: _ ->
        Printf.printf "; top: %s" (Asc_fault.Fault.to_string c faults.(first))
    | [] -> ());
    print_newline ();
    Printf.printf "%-22s unique resolution %.1f%%\n" "" (100.0 *. Diag.unique_resolution dict)
  in
  show "proposed (compact)" d_prop proposed;
  show "[4] compacted" d_base baseline;
  Printf.printf
    "\nThe compact set applies in %d cycles vs %d, but resolves fewer faults\n\
     uniquely: application time and diagnostic resolution trade off.\n"
    run.directed.cycles_final run.static_baseline.cycles_final
