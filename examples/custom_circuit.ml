(* Library tour on a hand-built circuit: construct a netlist with the
   Builder, write/read it in the ISCAS `.bench` format, generate tests
   with PODEM, fault simulate, and run the compaction pipeline.

     dune exec examples/custom_circuit.exe
*)

module Gate = Asc_netlist.Gate
module Builder = Asc_netlist.Builder
module Circuit = Asc_netlist.Circuit
module Bv = Asc_util.Bitvec

(* A 4-bit Johnson counter with a synchronous enable and a parity output —
   small, sequential, and fully testable. *)
let johnson () =
  let b = Builder.create "johnson4" in
  let enable = Builder.add_input b "enable" in
  let q = Array.init 4 (fun i -> Builder.add_dff b (Printf.sprintf "q%d" i)) in
  let nq3 = Builder.add_gate b Gate.Not "nq3" [ q.(3) ] in
  (* Next state: shift when enabled, hold otherwise. *)
  let mux name sel a b' builder =
    let n_sel = Builder.add_gate builder Gate.Not (name ^ "_ns") [ sel ] in
    let t0 = Builder.add_gate builder Gate.And (name ^ "_t0") [ sel; a ] in
    let t1 = Builder.add_gate builder Gate.And (name ^ "_t1") [ n_sel; b' ] in
    Builder.add_gate builder Gate.Or (name ^ "_or") [ t0; t1 ]
  in
  Builder.set_dff_input b q.(0) (mux "m0" enable nq3 q.(0) b);
  for i = 1 to 3 do
    Builder.set_dff_input b q.(i) (mux (Printf.sprintf "m%d" i) enable q.(i - 1) q.(i) b)
  done;
  let parity01 = Builder.add_gate b Gate.Xor "p01" [ q.(0); q.(1) ] in
  let parity23 = Builder.add_gate b Gate.Xor "p23" [ q.(2); q.(3) ] in
  let parity = Builder.add_gate b Gate.Xor "parity" [ parity01; parity23 ] in
  Builder.add_output b parity;
  Builder.add_output b q.(3);
  Builder.finalize b

let () =
  let c = johnson () in
  Format.printf "%a@.@." Circuit.pp_stats c;

  (* Round-trip through the `.bench` format. *)
  let path = Filename.temp_file "johnson4" ".bench" in
  Asc_netlist.Bench_io.write_file path c;
  let c = Asc_netlist.Bench_io.parse_file path in
  Sys.remove path;
  Printf.printf "bench round-trip ok (%d gates)\n" (Circuit.n_gates c);

  (* Fault list and PODEM. *)
  let collapse = Asc_fault.Collapse.run c in
  let faults = Asc_fault.Collapse.reps collapse in
  Printf.printf "collapsed faults: %d\n" (Array.length faults);
  let podem = Asc_atpg.Podem.create c in
  let testable, redundant =
    Array.fold_left
      (fun (t, r) f ->
        match Asc_atpg.Podem.run podem f with
        | Asc_atpg.Podem.Test _ -> (t + 1, r)
        | Asc_atpg.Podem.Redundant -> (t, r + 1)
        | Asc_atpg.Podem.Aborted -> (t, r))
      (0, 0) faults
  in
  Printf.printf "PODEM: %d testable, %d redundant\n" testable redundant;

  (* Sequential fault simulation of a burst of functional cycles. *)
  let rng = Asc_util.Rng.create 42 in
  let si = Asc_util.Rng.bool_array rng (Circuit.n_dffs c) in
  let seq = Array.init 12 (fun _ -> Asc_util.Rng.bool_array rng (Circuit.n_inputs c)) in
  let det = Asc_fault.Seq_fsim.detect c ~si ~seq ~faults in
  Printf.printf "a random 12-cycle scan test detects %d of %d faults\n" (Bv.count det)
    (Array.length faults);

  (* Full pipeline. *)
  let config =
    { Asc_core.Pipeline.default_config with
      t0_source = Asc_core.Pipeline.Directed 60 }
  in
  let prepared = Asc_core.Pipeline.prepare ~config c in
  let r = Asc_core.Pipeline.run ~config prepared in
  Printf.printf "pipeline: %d cycles initial, %d after phase 4, %d/%d detected\n"
    r.cycles_initial r.cycles_final
    (Bv.count r.final_detected)
    (Bv.count prepared.targets)
