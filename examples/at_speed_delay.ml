(* The at-speed claim, measured: transition-fault (delay defect) coverage
   of the paper's proposed test sets versus the [4] baseline sets.

   The paper argues (Sections 1 and 5) that the long primary input
   sequences its procedure produces are applied at-speed and therefore
   help detect delay defects, but reports no delay numbers.  This example
   quantifies the claim with the slow-to-rise / slow-to-fall model of
   [Asc_tfault]: a length-one scan test cannot detect any transition
   fault, so the coverage gap directly measures the value of the long
   sequences.

     dune exec examples/at_speed_delay.exe           # s344 by default
     dune exec examples/at_speed_delay.exe -- s298
*)

module Bv = Asc_util.Bitvec
module Tfault = Asc_tfault.Tfault

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "s344" in
  Printf.printf "circuit %s — stuck-at flows, then transition coverage...\n%!" name;
  let run = Asc_core.Experiments.run_circuit name in
  let c = run.prepared.circuit in
  let tf = Tfault.universe c in
  Printf.printf "transition faults: %d\n\n" (Array.length tf);
  let show label tests =
    let cov = Tfault.coverage c tests ~faults:tf in
    let stats = Asc_scan.Time_model.length_stats tests in
    Printf.printf "%-22s TF coverage %5d / %d (%.1f%%)  [ave L %.2f]\n" label
      (Bv.count cov) (Array.length tf)
      (Asc_util.Stats.percent ~num:(Bv.count cov) ~den:(Array.length tf))
      stats.average
  in
  show "[4] initial" run.static_baseline.initial_tests;
  show "[4] compacted" run.static_baseline.final_tests;
  show "proposed (directed)" run.directed.final_tests;
  show "proposed (random)" run.random.final_tests;
  Printf.printf
    "\nEvery [4]-initial test has length one, so its transition coverage is 0:\n\
     at-speed detection needs consecutive functional-clock vectors, which is\n\
     exactly what the proposed tau_seq provides.\n"
