(* asc — command-line interface to the scan test compaction toolchain. *)

open Cmdliner
module Bv = Asc_util.Bitvec
module Budget = Asc_util.Budget
module Circuit = Asc_netlist.Circuit
module Pipeline = Asc_core.Pipeline
module Checkpoint = Asc_core.Checkpoint

(* Exit-code contract (docs/ROBUSTNESS.md).  Cmdliner keeps its own
   124/125 for command-line parse and internal errors. *)
let exit_input = 1 (* malformed netlist / test set / checkpoint *)
let exit_usage = 2 (* unknown circuit, bad flag value *)
let exit_partial = 3 (* deadline or signal interrupted the run *)
let exit_killed = 137 (* ASC_CHAOS simulated a hard crash (mirrors SIGKILL) *)

let die code fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("asc: " ^ s);
      exit code)
    fmt

(* Map every known input-level exception to the exit contract instead of
   dying with an uncaught-exception backtrace. *)
let guard f =
  try f () with
  | Asc_netlist.Bench_io.Parse_error { line; message } ->
      die exit_input "parse error at line %d: %s" line message
  | Asc_netlist.Circuit.Structural_error message ->
      die exit_input "structural error: %s" message
  | Asc_scan.Tset_io.Format_error { line; message } ->
      die exit_input "test-set error at line %d: %s" line message
  | Checkpoint.Corrupt { line; message } ->
      die exit_input "corrupt checkpoint at line %d: %s" line message
  | Checkpoint.Incompatible message -> die exit_input "incompatible checkpoint: %s" message
  | Asc_util.Chaos.Killed { point; occurrence } ->
      die exit_killed "chaos: simulated crash at %s#%d" point occurrence
  | Asc_util.Chaos.Injected { point; occurrence } ->
      die exit_input "chaos: injected fault at %s#%d" point occurrence
  | Sys_error message -> die exit_input "%s" message

(* The ASC_CHAOS fault-injection schedule (docs/ROBUSTNESS.md): parsed
   once per command so a malformed schedule is a usage error, not a
   backtrace. *)
let chaos_of_env ?tel () =
  match Sys.getenv_opt Asc_util.Chaos.env_var with
  | None -> None
  | Some s when String.trim s = "" -> None
  | Some s -> (
      match Asc_util.Chaos.parse s with
      | Ok rules -> Some (Asc_util.Chaos.create ?tel rules)
      | Error msg -> die exit_usage "bad %s: %s" Asc_util.Chaos.env_var msg)

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Warning)

let verbose_arg =
  let doc = "Print per-phase debug logs." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let seed_arg =
  let doc = "Seed for every stochastic step (default 1)." in
  Arg.(value & opt int 1 & info [ "seed" ] ~doc)

(* Validating converters: reject bad values at parse time instead of
   silently clamping them. *)
let positive_int what =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok n
    | Some n -> Error (`Msg (Printf.sprintf "%s must be >= 1, got %d" what n))
    | None -> Error (`Msg (Printf.sprintf "expected an integer, got %S" s))
  in
  Arg.conv (parse, Format.pp_print_int)

let domain_count = positive_int "domain count"

let timeout_seconds =
  let parse s =
    match float_of_string_opt s with
    | Some t when t > 0.0 -> Ok t
    | Some t -> Error (`Msg (Printf.sprintf "timeout must be positive, got %g" t))
    | None -> Error (`Msg (Printf.sprintf "expected a number of seconds, got %S" s))
  in
  Arg.conv (parse, Format.pp_print_float)

let domains_arg =
  let doc =
    "Worker domains for fault simulation (default: the ASC_DOMAINS \
     environment variable, else the hardware's recommended count; 1 \
     disables parallelism)."
  in
  Arg.(value & opt (some domain_count) None & info [ "domains" ] ~doc ~docv:"N")

let sim_kernel_conv =
  let parse s =
    match Asc_sim.Sim_kernel.of_string s with
    | Some k -> Ok k
    | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown kernel %S (expected levelized or reference)"
                s))
  in
  let print ppf k = Format.pp_print_string ppf (Asc_sim.Sim_kernel.to_string k) in
  Arg.conv (parse, print)

let sim_kernel_arg =
  let doc =
    "Simulation kernel: $(b,levelized) (default; cone-limited event-driven) \
     or $(b,reference) (interpretive full sweep — the bit-identical escape \
     hatch for bisection and equivalence checks).  Also settable via the \
     ASC_SIM_KERNEL environment variable."
  in
  Arg.(
    value
    & opt (some sim_kernel_conv) None
    & info [ "sim-kernel" ] ~doc ~docv:"KERNEL")

let apply_sim_kernel = function
  | Some k -> Asc_sim.Sim_kernel.set k
  | None -> ()

(* Resolve the --domains flag to an optional pool; [None] keeps every
   simulation on the calling domain.  [budget] makes the pool fail fast
   once the run's deadline or a signal fires; [chaos] arms the pool's
   injection points. *)
let make_pool ?budget ?tel ?chaos domains =
  let n =
    match domains with
    | Some n -> n
    | None -> Asc_util.Domain_pool.default_domains ()
  in
  if n > 1 then
    Some (Asc_util.Domain_pool.create ?budget ?tel ?chaos ~domains:n ())
  else None

(* SIGINT/SIGTERM flip the run's budget; the pipeline unwinds at the next
   cancellation point and exits with {!exit_partial}.  Best effort: on
   platforms without these signals the run is still deadline-aware. *)
let install_signal_handlers budget =
  let handler _ = Budget.cancel budget in
  List.iter
    (fun s ->
      try Sys.set_signal s (Sys.Signal_handle handler)
      with Invalid_argument _ | Sys_error _ -> ())
    [ Sys.sigint; Sys.sigterm ]

let name_arg =
  let doc = "Benchmark circuit name (see `asc list`)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"CIRCUIT" ~doc)

let check_name name =
  if not (Asc_circuits.Registry.mem name) then
    die exit_usage "unknown circuit %S; known: %s" name
      (String.concat " " Asc_circuits.Registry.names)

(* --- list / info / export --------------------------------------------- *)

let list_cmd =
  let run () =
    let t =
      Asc_util.Table.create ~caption:"Benchmark circuits"
        [
          Asc_util.Table.left "circuit"; Asc_util.Table.right "PIs";
          Asc_util.Table.right "POs"; Asc_util.Table.right "FFs";
          Asc_util.Table.right "gates"; Asc_util.Table.right "depth";
          Asc_util.Table.left "notes";
        ]
    in
    List.iter
      (fun name ->
        let c = Asc_circuits.Registry.get name in
        let notes =
          match Asc_circuits.Profile.find name with
          | Some p when p.scaled -> "scaled stand-in"
          | Some _ -> "synthetic stand-in"
          | None -> "embedded ISCAS-89 netlist"
        in
        Asc_util.Table.add_row t
          [
            name;
            string_of_int (Circuit.n_inputs c);
            string_of_int (Circuit.n_outputs c);
            string_of_int (Circuit.n_dffs c);
            string_of_int (Circuit.n_gates c);
            string_of_int (Circuit.max_level c);
            notes;
          ])
      Asc_circuits.Registry.names;
    Asc_util.Table.print t
  in
  Cmd.v (Cmd.info "list" ~doc:"List the benchmark circuits") Term.(const run $ const ())

let info_cmd =
  let run name seed =
    check_name name;
    let c = Asc_circuits.Registry.get ~seed name in
    Format.printf "%a@." Circuit.pp_stats c;
    let collapse = Asc_fault.Collapse.run c in
    Printf.printf "stuck-at faults: %d uncollapsed, %d collapsed\n"
      (Array.length (Asc_fault.Collapse.universe collapse))
      (Asc_fault.Collapse.n_classes collapse);
    Printf.printf "transition faults: %d\n"
      (Array.length (Asc_tfault.Tfault.universe c));
    List.iter
      (fun (k, n) -> Printf.printf "  %-6s %5d\n" (Asc_netlist.Gate.to_string k) n)
      (List.sort compare (Circuit.kind_counts c))
  in
  Cmd.v (Cmd.info "info" ~doc:"Circuit statistics")
    Term.(const run $ name_arg $ seed_arg)

let export_cmd =
  let file_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"FILE")
  in
  let run name file seed =
    guard @@ fun () ->
    check_name name;
    Asc_netlist.Bench_io.write_file file (Asc_circuits.Registry.get ~seed name);
    Printf.printf "wrote %s\n" file
  in
  Cmd.v (Cmd.info "export" ~doc:"Write a circuit as an ISCAS `.bench` file")
    Term.(const run $ name_arg $ file_arg $ seed_arg)

(* --- run / baseline / atspeed ------------------------------------------ *)

let t0_arg =
  let doc = "T0 source: 'directed' or 'random'." in
  Arg.(value & opt string "directed" & info [ "t0" ] ~doc)

let t0_source_of_flag name t0 =
  match t0 with
  | "directed" -> Pipeline.Directed (Asc_circuits.Registry.t0_budget name)
  | "random" -> Pipeline.Random_seq 1000
  | _ -> die exit_usage "bad --t0 %S (expected directed|random)" t0

let timeout_arg =
  let doc =
    "Wall-clock budget in seconds.  When it fires the run stops at the \
     next cancellation point, reports the best test set found so far, and \
     exits with code 3."
  in
  Arg.(value & opt (some timeout_seconds) None & info [ "timeout" ] ~doc ~docv:"SECONDS")

let checkpoint_arg =
  let doc = "Write a resumable snapshot to $(docv) at every iteration boundary." in
  Arg.(value & opt (some string) None & info [ "checkpoint" ] ~doc ~docv:"FILE")

let checkpoint_keep_arg =
  let doc =
    "Total snapshots retained by $(b,--checkpoint): before each write the \
     previous copies are promoted to $(i,FILE).1, $(i,FILE).2, ... so \
     $(b,--resume) can fall back across them if the newest one is corrupt."
  in
  Arg.(
    value
    & opt (positive_int "checkpoint-keep") 1
    & info [ "checkpoint-keep" ] ~doc ~docv:"N")

let resume_arg =
  let doc =
    "Resume from a snapshot previously written by $(b,--checkpoint); the \
     resumed run reproduces the uninterrupted result bit-identically.  If \
     $(docv) is corrupt or missing, the newest valid rotated copy \
     ($(docv).1, $(docv).2, ...) is used instead."
  in
  Arg.(value & opt (some string) None & info [ "resume" ] ~doc ~docv:"FILE")

let json_arg =
  let doc = "Also write a machine-readable run summary to $(docv)." in
  Arg.(value & opt (some string) None & info [ "json" ] ~doc ~docv:"FILE")

(* Version of the run-summary document written by --json.  Bump on any
   field rename or semantic change so downstream consumers can dispatch. *)
let json_schema = 1

let emit_json path ~circuit ~status ~reason ~stage ~iterations ~tests ~cycles
    ~detected ~targets ~metrics =
  let module J = Asc_util.Json in
  let opt = function None -> J.Null | Some s -> J.Str s in
  J.write_file path
    (J.Obj
       ([
          ("schema", J.Int json_schema);
          ("circuit", J.Str circuit);
          ("status", J.Str status);
          ("reason", opt reason);
          ("stage", opt stage);
          ("iterations", J.Int iterations);
          ("tests", J.Int tests);
          ("cycles", J.Int cycles);
          ("detected", J.Int detected);
          ("targets", J.Int targets);
        ]
       @ match metrics with None -> [] | Some m -> [ ("metrics", m) ]))

let trace_arg =
  let doc =
    "Write a Chrome trace-event JSON file of the run to $(docv) (one \
     track per worker domain; open in Perfetto or chrome://tracing)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~doc ~docv:"FILE")

let counters_arg =
  let doc = "Print the engine's event counters after the run." in
  Arg.(value & flag & info [ "counters" ] ~doc)

let run_cmd =
  let run name t0 seed domains sim_kernel timeout checkpoint keep resume json
      trace counters verbose =
    guard @@ fun () ->
    setup_logs verbose;
    check_name name;
    apply_sim_kernel sim_kernel;
    let budget = Budget.create ?timeout () in
    install_signal_handlers budget;
    (* Telemetry rides along whenever some consumer asked for it; it is
       read-only with respect to results (bit-identical output either
       way), so flipping it on costs only the recording overhead. *)
    let tel =
      if trace <> None || counters || json <> None then
        Some (Asc_util.Telemetry.create ())
      else None
    in
    let chaos = chaos_of_env ?tel () in
    let pool = make_pool ~budget ?tel ?chaos domains in
    let c = Asc_circuits.Registry.get ~seed name in
    let t0_source = t0_source_of_flag name t0 in
    let config = Asc_core.Experiments.config_for ~seed ~t0_source in
    let ran =
      (* The budget can fire while a budget-carrying pool is mid-sweep in
         [prepare]; that surfaces as [Exhausted] before any snapshot
         exists, so there is no partial test set to report. *)
      try
        let prepared = Pipeline.prepare ?pool ~budget ?tel ~config c in
        let resume_snap =
          Option.map
            (fun path ->
              let l = Checkpoint.load_latest_valid ?tel ?chaos path in
              if l.Checkpoint.recovered then
                Printf.eprintf "asc: recovered checkpoint from %s\n%!" l.source;
              Checkpoint.validate prepared ~config l.snapshot;
              l.snapshot)
            resume
        in
        let on_checkpoint =
          Option.map
            (fun path snap -> Checkpoint.write_file ?tel ?chaos ~keep path snap)
            checkpoint
        in
        Some
          ( prepared,
            Pipeline.run_bounded ?pool ~budget ?tel ~config ?resume:resume_snap
              ?on_checkpoint prepared )
      with Budget.Exhausted _ -> None
    in
    let snap = Option.map Asc_util.Telemetry.drain tel in
    let metrics = Option.map Asc_util.Telemetry.metrics_json snap in
    let report_telemetry () =
      Option.iter
        (fun (s : Asc_util.Telemetry.snapshot) ->
          Option.iter
            (fun path ->
              Asc_util.Telemetry.write_trace path s;
              Printf.printf "wrote trace to %s\n" path)
            trace;
          if counters then begin
            print_string "counters:\n";
            List.iter
              (fun (k, v) -> Printf.printf "  %-20s %d\n" k v)
              s.Asc_util.Telemetry.counters
          end)
        snap
    in
    match ran with
    | None ->
        let reason =
          match Budget.status budget with
          | Some r -> Budget.reason_to_string r
          | None -> "deadline"
        in
        Printf.printf "budget fired (%s) during preparation; no tests generated\n"
          reason;
        Option.iter
          (fun path ->
            emit_json path ~circuit:name ~status:"partial" ~reason:(Some reason)
              ~stage:(Some "prepare") ~iterations:0 ~tests:0 ~cycles:0 ~detected:0
              ~targets:0 ~metrics)
          json;
        report_telemetry ();
        exit exit_partial
    | Some (prepared, outcome) -> (
        Printf.printf "circuit %s: %d target faults, |C| = %d\n" name
          (Bv.count prepared.targets)
          (Array.length prepared.comb_tests);
        match outcome with
        | Pipeline.Complete r ->
            Printf.printf "T0: length %d, detects %d without scan\n" r.t0_length
              r.f0_count;
            List.iteri
              (fun i (it : Pipeline.iteration) ->
                Printf.printf "  iteration %d: SI=%d u_SO=%d L=%d detected=%d\n"
                  (i + 1) it.si_index it.u_so it.len_after_omission it.detected_count)
              r.iterations;
            Printf.printf "tau_seq: L = %d, detects %d\n"
              (Asc_scan.Scan_test.length r.tau_seq)
              (Bv.count r.f_seq);
            Printf.printf "phase 3: %d added tests (%d faults uncoverable by C)\n"
              (Array.length r.added) (Bv.count r.uncovered);
            Printf.printf "cycles: %d initial, %d after phase 4\n" r.cycles_initial
              r.cycles_final;
            Printf.printf "final coverage: %d / %d\n"
              (Bv.count r.final_detected)
              (Bv.count prepared.targets);
            Option.iter
              (fun path ->
                emit_json path ~circuit:name ~status:"complete" ~reason:None
                  ~stage:None
                  ~iterations:(List.length r.iterations)
                  ~tests:(Array.length r.final_tests)
                  ~cycles:r.cycles_final
                  ~detected:(Bv.count r.final_detected)
                  ~targets:(Bv.count prepared.targets)
                  ~metrics)
              json;
            report_telemetry ()
        | Pipeline.Partial p ->
            let reason = Budget.reason_to_string p.p_reason in
            let stage = Pipeline.stage_to_string p.p_stage in
            Printf.printf "budget fired (%s) during %s\n" reason stage;
            Printf.printf
              "best so far: %d tests, %d cycles, %d / %d detected after %d \
               iterations\n"
              (Array.length p.p_tests) p.p_cycles
              (Bv.count p.p_detected)
              (Bv.count prepared.targets)
              (List.length p.p_iterations);
            Option.iter
              (fun path ->
                emit_json path ~circuit:name ~status:"partial" ~reason:(Some reason)
                  ~stage:(Some stage)
                  ~iterations:(List.length p.p_iterations)
                  ~tests:(Array.length p.p_tests)
                  ~cycles:p.p_cycles
                  ~detected:(Bv.count p.p_detected)
                  ~targets:(Bv.count prepared.targets)
                  ~metrics)
              json;
            report_telemetry ();
            exit exit_partial)
  in
  Cmd.v (Cmd.info "run" ~doc:"Run the proposed compaction procedure")
    Term.(
      const run $ name_arg $ t0_arg $ seed_arg $ domains_arg $ sim_kernel_arg
      $ timeout_arg $ checkpoint_arg $ checkpoint_keep_arg $ resume_arg
      $ json_arg $ trace_arg $ counters_arg $ verbose_arg)

let baseline_cmd =
  let run name seed domains verbose =
    guard @@ fun () ->
    setup_logs verbose;
    check_name name;
    let pool = make_pool domains in
    let c = Asc_circuits.Registry.get ~seed name in
    let config = { Pipeline.default_config with seed } in
    let prepared = Pipeline.prepare ?pool ~config c in
    let b = Asc_core.Baseline_static.run ?pool prepared in
    Printf.printf "[4] baseline on %s: |C| = %d\n" name (Array.length b.initial_tests);
    Printf.printf "initial: %d cycles\n" b.cycles_initial;
    Printf.printf "compacted: %d cycles (%d combinations, %d tests left)\n"
      b.cycles_final b.combinations (Array.length b.final_tests)
  in
  Cmd.v (Cmd.info "baseline" ~doc:"Run the static baseline of [4]")
    Term.(const run $ name_arg $ seed_arg $ domains_arg $ verbose_arg)

let atspeed_cmd =
  let run name seed =
    check_name name;
    let r = Asc_core.Experiments.run_circuit ~seed name in
    print_string (Asc_util.Table.render (Asc_report.Report.table_at_speed [ r ]))
  in
  Cmd.v
    (Cmd.info "atspeed" ~doc:"Transition-fault coverage of the final test sets")
    Term.(const run $ name_arg $ seed_arg)

(* --- test-set save / verify, import, partial scan ----------------------- *)

let save_cmd =
  let file_arg = Arg.(required & pos 1 (some string) None & info [] ~docv:"FILE") in
  let run name file t0 seed domains =
    guard @@ fun () ->
    check_name name;
    let pool = make_pool domains in
    let c = Asc_circuits.Registry.get ~seed name in
    let t0_source = t0_source_of_flag name t0 in
    let config = Asc_core.Experiments.config_for ~seed ~t0_source in
    let prepared = Pipeline.prepare ?pool ~config c in
    let r = Pipeline.run ?pool ~config prepared in
    Asc_scan.Tset_io.write_file file c r.final_tests;
    Printf.printf "wrote %d tests (%d cycles) to %s\n"
      (Array.length r.final_tests) r.cycles_final file
  in
  Cmd.v
    (Cmd.info "save-tests" ~doc:"Run the proposed procedure and save the final test set")
    Term.(const run $ name_arg $ file_arg $ t0_arg $ seed_arg $ domains_arg)

let verify_cmd =
  let file_arg = Arg.(required & pos 1 (some string) None & info [] ~docv:"FILE") in
  let run name file seed domains sim_kernel =
    guard @@ fun () ->
    check_name name;
    apply_sim_kernel sim_kernel;
    let pool = make_pool domains in
    let chaos = chaos_of_env () in
    let c = Asc_circuits.Registry.get ~seed name in
    let tests =
      Asc_scan.Tset_io.check_compatible c (Asc_scan.Tset_io.read_file ?chaos file)
    in
    let collapse = Asc_fault.Collapse.run c in
    let faults = Asc_fault.Collapse.reps collapse in
    let cov = Asc_scan.Tset.coverage ?pool c tests ~faults in
    Printf.printf "%d tests, %d cycles, %d / %d collapsed faults detected\n"
      (Array.length tests)
      (Asc_scan.Time_model.cycles_of_tests c tests)
      (Bv.count cov) (Array.length faults)
  in
  Cmd.v (Cmd.info "verify-tests" ~doc:"Fault-simulate a saved test set")
    Term.(const run $ name_arg $ file_arg $ seed_arg $ domains_arg $ sim_kernel_arg)

let import_cmd =
  let file_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  let run file =
    guard @@ fun () ->
    let chaos = chaos_of_env () in
    let c = Asc_netlist.Bench_io.parse_file ?chaos file in
    Format.printf "%a@." Circuit.pp_stats c;
    let config = Pipeline.default_config in
    let prepared = Pipeline.prepare ~config c in
    let r = Pipeline.run ~config prepared in
    Printf.printf "proposed procedure: %d cycles initial, %d final, %d/%d detected\n"
      r.cycles_initial r.cycles_final
      (Bv.count r.final_detected)
      (Bv.count prepared.targets)
  in
  Cmd.v
    (Cmd.info "import" ~doc:"Run the procedure on an ISCAS `.bench` netlist file")
    Term.(const run $ file_arg)

let partial_cmd =
  let ratio_arg =
    let doc = "Fraction of flip-flops kept on the scan chain." in
    Arg.(value & opt float 0.5 & info [ "ratio" ] ~doc)
  in
  let run name ratio seed =
    check_name name;
    let c = Asc_circuits.Registry.get ~seed name in
    let budget = Asc_circuits.Registry.t0_budget name in
    let config =
      Asc_core.Experiments.config_for ~seed ~t0_source:(Pipeline.Directed budget)
    in
    let prepared = Pipeline.prepare ~config c in
    let r = Pipeline.run ~config prepared in
    let chain = Asc_scan.Partial.by_fanout c ~ratio in
    let cov = Asc_scan.Partial.coverage c chain r.final_tests ~faults:prepared.faults in
    Printf.printf
      "%s with %d/%d flip-flops scanned (full-scan tests reused): %d cycles \
       (full scan: %d), coverage %d/%d\n"
      name
      (Asc_scan.Partial.n_scanned chain)
      (Circuit.n_dffs c)
      (Asc_scan.Partial.cycles c chain r.final_tests)
      r.cycles_final
      (Bv.count (Bv.inter cov prepared.targets))
      (Bv.count prepared.targets);
    (* The procedure adapted to the partial chain. *)
    let pconfig =
      { Asc_core.Pipeline_partial.default_config with
        seed; t0_source = Pipeline.Directed budget }
    in
    let pr = Asc_core.Pipeline_partial.run ~config:pconfig prepared ~chain in
    Printf.printf
      "adapted partial-scan procedure: %d cycles, coverage %d/%d (%d tests)\n"
      pr.cycles_final
      (Bv.count pr.final_detected)
      (Bv.count prepared.targets)
      (Array.length pr.final_tests)
  in
  Cmd.v
    (Cmd.info "partial" ~doc:"Evaluate the final test set under partial scan")
    Term.(const run $ name_arg $ ratio_arg $ seed_arg)

let audit_cmd =
  let file_arg = Arg.(required & pos 1 (some string) None & info [] ~docv:"FILE") in
  let run name file seed sim_kernel =
    guard @@ fun () ->
    check_name name;
    apply_sim_kernel sim_kernel;
    let c = Asc_circuits.Registry.get ~seed name in
    let chaos = chaos_of_env () in
    let tests =
      Asc_scan.Tset_io.check_compatible c (Asc_scan.Tset_io.read_file ?chaos file)
    in
    let collapse = Asc_fault.Collapse.run c in
    let faults = Asc_fault.Collapse.reps collapse in
    let targets = Bv.create ~default:true (Array.length faults) in
    let report = Asc_scan.Audit.run c tests ~faults ~targets in
    Format.printf "%a@." Asc_scan.Audit.pp report;
    Array.iteri
      (fun i inc -> Printf.printf "  test %2d: L=%d, +%d faults\n" i
          (Asc_scan.Scan_test.length tests.(i)) inc)
      report.incremental
  in
  Cmd.v (Cmd.info "audit" ~doc:"Audit a saved test set (duplicates, useless tests)")
    Term.(const run $ name_arg $ file_arg $ seed_arg $ sim_kernel_arg)

let waveform_cmd =
  let file_arg = Arg.(required & pos 1 (some string) None & info [] ~docv:"FILE") in
  let len_arg =
    let doc = "Number of random functional cycles to dump." in
    Arg.(value & opt int 32 & info [ "cycles" ] ~doc)
  in
  let run name file len seed =
    guard @@ fun () ->
    check_name name;
    let c = Asc_circuits.Registry.get ~seed name in
    let rng = Asc_util.Rng.of_name ~seed (name ^ "/waveform") in
    let si = Asc_util.Rng.bool_array rng (Circuit.n_dffs c) in
    let seq =
      Array.init len (fun _ -> Asc_util.Rng.bool_array rng (Circuit.n_inputs c))
    in
    Asc_sim.Vcd.write_file file c ~si ~seq;
    Printf.printf "wrote %d cycles of %s to %s (open with GTKWave)\n" len name file
  in
  Cmd.v
    (Cmd.info "waveform" ~doc:"Dump a VCD waveform of a random scan test")
    Term.(const run $ name_arg $ file_arg $ len_arg $ seed_arg)

(* --- serve / client ------------------------------------------------------ *)

let socket_arg =
  let doc = "Listen on (or connect to) a Unix-domain socket at $(docv)." in
  Arg.(value & opt (some string) None & info [ "socket" ] ~doc ~docv:"PATH")

let tcp_arg =
  let doc = "Listen on (or connect to) TCP $(docv) (e.g. 127.0.0.1:7333)." in
  Arg.(value & opt (some string) None & info [ "tcp" ] ~doc ~docv:"HOST:PORT")

let parse_host_port s =
  match String.rindex_opt s ':' with
  | None -> die exit_usage "bad --tcp %S (expected HOST:PORT)" s
  | Some i -> (
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | Some p when p > 0 && p < 65536 ->
          ((if host = "" then "127.0.0.1" else host), p)
      | _ -> die exit_usage "bad port in --tcp %S" s)

let resolve_listen socket tcp =
  match (socket, tcp) with
  | Some path, None -> Asc_core.Server.Unix_socket path
  | None, Some hp ->
      let host, port = parse_host_port hp in
      Asc_core.Server.Tcp (host, port)
  | Some _, Some _ -> die exit_usage "--socket and --tcp are mutually exclusive"
  | None, None -> die exit_usage "need --socket PATH or --tcp HOST:PORT"

let log_file_arg =
  let doc =
    "Append structured JSONL lifecycle events (job submitted / \
     dispatched / completed, worker crash / restart) to $(docv), \
     rotated by size; see docs/OBSERVABILITY.md."
  in
  Arg.(value & opt (some string) None & info [ "log-file" ] ~doc ~docv:"FILE")

let log_level_arg =
  let doc = "Event-log threshold: debug, info, warn or error." in
  Arg.(value & opt string "info" & info [ "log-level" ] ~doc ~docv:"LEVEL")

let resolve_log_level log_level =
  match Asc_util.Log.level_of_string log_level with
  | Some l -> l
  | None ->
      die exit_usage "bad --log-level %S (debug|info|warn|error)" log_level

let serve_cmd =
  let state_dir_arg =
    let doc =
      "Directory for per-job checkpoints; interrupted jobs resume from \
       here when resubmitted after a crash."
    in
    Arg.(value & opt (some string) None & info [ "state-dir" ] ~doc ~docv:"DIR")
  in
  let workers_arg =
    let doc =
      "Fork $(docv) supervised worker processes; jobs run crash-isolated \
       with per-job retry budgets and exponential-backoff restarts.  0 \
       (the default) serves in-process, one job at a time."
    in
    Arg.(value & opt int 0 & info [ "workers" ] ~doc ~docv:"N")
  in
  let job_retries_arg =
    let doc =
      "Total dispatch attempts per job before a worker-crashing job \
       fails with a typed $(b,worker_crash) error (supervised mode only)."
    in
    Arg.(
      value
      & opt (positive_int "job retries") 3
      & info [ "job-retries" ] ~doc ~docv:"K")
  in
  let max_pending_arg =
    let doc =
      "Admission cap: while $(docv) jobs are already queued, new \
       submissions are refused with a typed $(b,overloaded) reject \
       carrying a $(b,retry_after_ms) backpressure hint, instead of \
       growing the queue without bound.  Unset means unbounded."
    in
    Arg.(
      value
      & opt (some (positive_int "max pending")) None
      & info [ "max-pending" ] ~doc ~docv:"N")
  in
  let max_pending_per_source_arg =
    let doc =
      "Per-connection admission cap: like $(b,--max-pending) but \
       counting only jobs queued by the same client connection, so one \
       greedy client cannot fill the whole queue."
    in
    Arg.(
      value
      & opt (some (positive_int "max pending per source")) None
      & info [ "max-pending-per-source" ] ~doc ~docv:"N")
  in
  let trace_arg =
    let doc =
      "Write one stitched Chrome/Perfetto trace of the whole fleet \
       (supervisor plus every worker process) to $(docv) at shutdown."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~doc ~docv:"FILE")
  in
  let prom_file_arg =
    let doc =
      "Keep a Prometheus text-exposition snapshot of the metrics current \
       in $(docv) (rewritten atomically after each delivered job)."
    in
    Arg.(value & opt (some string) None & info [ "prom-file" ] ~doc ~docv:"FILE")
  in
  let run socket tcp state_dir domains workers job_retries max_pending
      max_pending_per_source log_file log_level trace prom_file sim_kernel
      verbose =
    guard @@ fun () ->
    setup_logs verbose;
    apply_sim_kernel sim_kernel;
    if workers < 0 then die exit_usage "--workers must be >= 0";
    let listen = resolve_listen socket tcp in
    (* The pool carries no budget: deadlines are per-job, created by the
       scheduler at dispatch, so one job's deadline cannot poison the
       pool for the jobs after it. *)
    let tel = Some (Asc_util.Telemetry.create ()) in
    let chaos = chaos_of_env ?tel () in
    let level = resolve_log_level log_level in
    (* Test knob: the heartbeat-staleness threshold defaults to 30 s,
       far too slow for a test that SIGSTOPs a worker on purpose. *)
    let hb_stale =
      match Sys.getenv_opt "ASC_HB_STALE" with
      | None -> None
      | Some s -> (
          match float_of_string_opt s with
          | Some v when v > 0.0 -> Some v
          | _ -> die exit_usage "bad ASC_HB_STALE %S (positive seconds)" s)
    in
    let log =
      Option.map (fun path -> Asc_util.Log.create ~level ?tel ?chaos path)
        log_file
    in
    let config =
      { Asc_core.Server.listen; state_dir;
        max_frame = Asc_core.Server.default_max_frame }
    in
    let where =
      match listen with
      | Asc_core.Server.Unix_socket p -> p
      | Asc_core.Server.Tcp (h, p) -> Printf.sprintf "%s:%d" h p
    in
    let on_ready () = Printf.printf "asc: serving on %s\n%!" where in
    Fun.protect
      ~finally:(fun () -> Asc_util.Log.close log)
      (fun () ->
        if workers > 0 then
          (* Domains do not survive fork, so the parent owns no pool; each
             worker builds its own through [make_pool], recording into its
             own telemetry handle. *)
          Asc_core.Server.serve ?tel ?chaos ?log ?trace_file:trace
            ?prom_file ~on_ready ~workers ~job_retries ?max_pending
            ?max_pending_per_source ?hb_stale
            ~make_pool:(fun ~tel -> make_pool ~tel ?chaos domains)
            config
        else begin
          let pool = make_pool ?tel ?chaos domains in
          Asc_core.Server.serve ?pool ?tel ?chaos ?log ?trace_file:trace
            ?prom_file ~on_ready ?max_pending ?max_pending_per_source config
        end);
    Printf.printf "asc: server shut down\n%!"
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve compaction jobs over a socket (line-delimited JSON; see \
          docs/SERVING.md)")
    Term.(
      const run $ socket_arg $ tcp_arg $ state_dir_arg $ domains_arg
      $ workers_arg $ job_retries_arg $ max_pending_arg
      $ max_pending_per_source_arg $ log_file_arg $ log_level_arg
      $ trace_arg $ prom_file_arg $ sim_kernel_arg $ verbose_arg)

(* A backend address: HOST:PORT when the suffix parses as a port,
   otherwise a Unix-socket path.  The literal argument string is the
   backend's rendezvous-hash identity. *)
let parse_backend s =
  let is_host_port =
    match String.rindex_opt s ':' with
    | None -> false
    | Some i -> (
        match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
        | Some p -> p > 0 && p < 65536
        | None -> false)
  in
  if is_host_port then
    let host, port = parse_host_port s in
    (s, Asc_core.Server.Tcp (host, port))
  else (s, Asc_core.Server.Unix_socket s)

let route_cmd =
  let backend_arg =
    let doc =
      "A backend `asc serve` address (repeatable; at least one): a \
       Unix-socket path, or HOST:PORT for TCP.  The literal argument \
       string is the backend's rendezvous-hash identity — keep it \
       stable across restarts, or keys re-home."
    in
    Arg.(non_empty & opt_all string [] & info [ "backend" ] ~doc ~docv:"ADDR")
  in
  let request_retries_arg =
    let doc =
      "Failover budget: total dispatch attempts per submission across \
       backends before a typed $(b,no_backend) reject."
    in
    Arg.(
      value
      & opt (positive_int "request retries")
          Asc_core.Router.default_request_retries
      & info [ "request-retries" ] ~doc ~docv:"K")
  in
  let run socket tcp backends request_retries log_file log_level verbose =
    guard @@ fun () ->
    setup_logs verbose;
    let listen = resolve_listen socket tcp in
    let tel = Some (Asc_util.Telemetry.create ()) in
    let chaos = chaos_of_env ?tel () in
    let level = resolve_log_level log_level in
    let log =
      Option.map (fun path -> Asc_util.Log.create ~level ?tel ?chaos path)
        log_file
    in
    let cfg =
      {
        Asc_core.Router.listen;
        backends = List.map parse_backend backends;
        max_frame = Asc_core.Server.default_max_frame;
        request_retries;
      }
    in
    let where =
      match listen with
      | Asc_core.Server.Unix_socket p -> p
      | Asc_core.Server.Tcp (h, p) -> Printf.sprintf "%s:%d" h p
    in
    let on_ready () =
      Printf.printf "asc: routing on %s across %d backends\n%!" where
        (List.length backends)
    in
    Fun.protect
      ~finally:(fun () -> Asc_util.Log.close log)
      (fun () -> Asc_core.Router.run ?tel ?chaos ?log ~on_ready cfg);
    Printf.printf "asc: router shut down\n%!"
  in
  Cmd.v
    (Cmd.info "route"
       ~doc:
         "Shard submissions across several `asc serve` backends \
          (rendezvous hashing on the job's content key, health-checked \
          failover; see docs/SERVING.md)")
    Term.(
      const run $ socket_arg $ tcp_arg $ backend_arg $ request_retries_arg
      $ log_file_arg $ log_level_arg $ verbose_arg)

let client_cmd =
  let op_arg =
    let doc = "Operation: ping, metrics, shutdown, submit, or raw (send one \
               JSON line from stdin)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OP" ~doc)
  in
  let circuits_arg =
    let doc =
      "Circuit names for submit (see `asc list`).  More than one makes \
       one job each; combine with $(b,--pipeline) to keep several in \
       flight at once."
    in
    Arg.(value & pos_right 0 string [] & info [] ~docv:"CIRCUIT" ~doc)
  in
  let pipeline_arg =
    let doc =
      "Keep up to $(docv) submissions in flight on the connection at \
       once (submit only).  Responses are matched to requests by the \
       echoed $(b,id) member, so they may arrive out of order; output \
       is printed in request order regardless."
    in
    Arg.(
      value
      & opt (positive_int "pipeline depth") 1
      & info [ "pipeline" ] ~doc ~docv:"K")
  in
  let netlist_arg =
    let doc = "Submit the ISCAS `.bench` netlist in $(docv) instead of a \
               registry circuit." in
    Arg.(value & opt (some string) None & info [ "netlist" ] ~doc ~docv:"FILE")
  in
  let job_timeout_arg =
    let doc = "Per-job wall-clock budget in seconds (server-side deadline)." in
    Arg.(
      value
      & opt (some timeout_seconds) None
      & info [ "job-timeout" ] ~doc ~docv:"SECONDS")
  in
  let save_arg =
    let doc = "Request the serialized test set and write it to $(docv) \
               (same format as $(b,asc save-tests))." in
    Arg.(value & opt (some string) None & info [ "save" ] ~doc ~docv:"FILE")
  in
  let read_file path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let retries_arg =
    let doc =
      "Retry a failed connection (or a connection dropped before the \
       response arrived) up to $(docv) more times.  Resubmission is \
       idempotent: results are keyed by content hash, so a retried \
       submit is answered from the server's result cache when the first \
       attempt already completed."
    in
    Arg.(value & opt int 0 & info [ "retries" ] ~doc ~docv:"K")
  in
  let retry_backoff_arg =
    let doc =
      "Base backoff between retries, in milliseconds; attempt $(i,n) \
       sleeps uniformly in [0, $(docv) * 2^$(i,n)] (full jitter, capped \
       at 5 s) before reconnecting, so a fleet of clients bounced by \
       one event does not reconnect in lockstep."
    in
    Arg.(value & opt int 100 & info [ "retry-backoff" ] ~doc ~docv:"MS")
  in
  let prometheus_arg =
    let doc =
      "Render the metrics response in the Prometheus text exposition \
       format instead of JSON (metrics op only)."
    in
    Arg.(value & flag & info [ "prometheus" ] ~doc)
  in
  let connect listen =
    match listen with
    | Asc_core.Server.Unix_socket path ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX path);
        fd
    | Asc_core.Server.Tcp (host, port) ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
        fd
  in
  (* One connect/send/receive round trip, with every connection-level
     failure turned into [Error] so the caller can retry.  Protocol-level
     failures (an unparseable response) are not retried. *)
  let try_request listen line =
    match connect listen with
    | exception Unix.Unix_error (e, _, _) ->
        Error (Printf.sprintf "cannot connect: %s" (Unix.error_message e))
    | fd -> (
        let finish r =
          (try Unix.close fd with Unix.Unix_error _ -> ());
          r
        in
        try
          let ic = Unix.in_channel_of_descr fd in
          let oc = Unix.out_channel_of_descr fd in
          output_string oc line;
          output_char oc '\n';
          flush oc;
          finish (Ok (input_line ic))
        with
        | End_of_file -> finish (Error "server closed the connection")
        | Sys_error msg -> finish (Error msg)
        | Unix.Unix_error (e, _, _) -> finish (Error (Unix.error_message e)))
  in
  (* Pipelined submission: up to [pipeline] requests in flight on one
     connection, responses matched to requests by the echoed [id]
     member, so out-of-order completion (multi-worker shards, cache
     hits) never misattributes a result.  Idempotence (results keyed by
     content hash) is what makes the failure handling simple: a dropped
     connection just reconnects with full-jitter backoff and resends
     everything unanswered, and a typed [overloaded] reject re-queues
     the job after the server's [retry_after_ms] hint. *)
  let submit_pipelined ~listen ~specs ~labels ~want_tset ~retries
      ~backoff_sleep ~pipeline =
    let module J = Asc_util.Json in
    let module P = Asc_core.Protocol in
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ | Sys_error _ -> ());
    let n = Array.length specs in
    let results : J.t option array = Array.make n None in
    let retry_at = Array.make n 0.0 in
    let attempts = Array.make n 0 in
    let pending = ref (List.init n Fun.id) in
    let outstanding : (int, unit) Hashtbl.t = Hashtbl.create 8 in
    let conn = ref None in
    let conn_attempts = ref 0 in
    let request_line j =
      J.to_string ~compact:true
        (P.request_to_json
           (P.Submit
              { spec = specs.(j); want_tset; client_id = Some j }))
    in
    let disconnect () =
      (match !conn with
      | Some (fd, _, _) -> ( try Unix.close fd with Unix.Unix_error _ -> ())
      | None -> ());
      conn := None;
      (* Unanswered submissions go back in the send queue, in request
         order so output order is stable. *)
      let orphans = Hashtbl.fold (fun j () acc -> j :: acc) outstanding [] in
      Hashtbl.reset outstanding;
      pending := List.sort_uniq compare (orphans @ !pending)
    in
    let retry_or_die msg =
      disconnect ();
      if !conn_attempts < retries then begin
        incr conn_attempts;
        let d = backoff_sleep !conn_attempts in
        Printf.eprintf "asc: %s; retry %d/%d in %.2fs\n%!" msg !conn_attempts
          retries d;
        Unix.sleepf d
      end
      else die exit_input "%s" msg
    in
    let rec ensure_conn () =
      match !conn with
      | Some c -> c
      | None -> (
          match connect listen with
          | fd ->
              let c =
                (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)
              in
              conn := Some c;
              c
          | exception Unix.Unix_error (e, _, _) ->
              retry_or_die
                (Printf.sprintf "cannot connect: %s" (Unix.error_message e));
              ensure_conn ())
    in
    let send j =
      let _, _, oc = ensure_conn () in
      match
        output_string oc (request_line j);
        output_char oc '\n';
        flush oc
      with
      | () ->
          Hashtbl.replace outstanding j ();
          pending := List.filter (fun k -> k <> j) !pending
      | exception (Sys_error _ | Unix.Unix_error _) ->
          retry_or_die "connection lost while sending"
    in
    let handle_response line =
      match J.parse line with
      | Error e -> die exit_input "unparseable response: %s" e
      | Ok json -> (
          match Option.bind (J.member "id" json) J.as_int with
          | Some j when j >= 0 && j < n && Hashtbl.mem outstanding j ->
              Hashtbl.remove outstanding j;
              let ok =
                Option.bind (J.member "ok" json) J.as_bool = Some true
              in
              let reason = Option.bind (J.member "reason" json) J.as_str in
              if (not ok) && reason = Some "overloaded" && attempts.(j) < retries
              then begin
                (* Backpressure, not failure: honor the server's hint
                   (or our own jittered backoff, whichever is longer)
                   and resubmit against the retry budget. *)
                attempts.(j) <- attempts.(j) + 1;
                let hint =
                  match
                    Option.bind (J.member "retry_after_ms" json) J.as_int
                  with
                  | Some ms -> float_of_int ms /. 1000.
                  | None -> 0.0
                in
                let d = Float.max hint (backoff_sleep attempts.(j)) in
                Printf.eprintf
                  "asc: submit %s rejected (overloaded); retry %d/%d in %.2fs\n%!"
                  labels.(j) attempts.(j) retries d;
                retry_at.(j) <- Unix.gettimeofday () +. d;
                pending := !pending @ [ j ]
              end
              else results.(j) <- Some json
          | _ -> () (* an anonymous error frame; nothing to match *))
    in
    while Array.exists Option.is_none results do
      (* Fill the window with whatever is ready to (re)send. *)
      let now = Unix.gettimeofday () in
      let ready = List.filter (fun j -> retry_at.(j) <= now) !pending in
      let slots = pipeline - Hashtbl.length outstanding in
      List.iteri (fun i j -> if i < slots then send j) ready;
      if Hashtbl.length outstanding > 0 then begin
        let _, ic, _ = ensure_conn () in
        match input_line ic with
        | line -> handle_response line
        | exception (End_of_file | Sys_error _) ->
            retry_or_die "server closed the connection"
        | exception Unix.Unix_error (e, _, _) ->
            retry_or_die (Unix.error_message e)
      end
      else if ready = [] && !pending <> [] then begin
        (* Everything left is backing off after an overloaded reject. *)
        let wake =
          List.fold_left (fun a j -> Float.min a retry_at.(j)) infinity
            !pending
        in
        Unix.sleepf (Float.max 0.0 (wake -. Unix.gettimeofday ()))
      end
    done;
    disconnect ();
    Array.map Option.get results
  in
  let run socket tcp op circuits netlist seed t0 job_timeout save retries
      retry_backoff prometheus pipeline =
    guard @@ fun () ->
    let module J = Asc_util.Json in
    let module P = Asc_core.Protocol in
    if prometheus && op <> "metrics" then
      die exit_usage "--prometheus only applies to the metrics op";
    if op <> "submit" && circuits <> [] then
      die exit_usage "only the submit op takes CIRCUIT arguments";
    let listen = resolve_listen socket tcp in
    let rng = Asc_util.Rng.of_name ~seed:(Unix.getpid ()) "client/backoff" in
    let backoff_sleep attempt =
      (* Full jitter: uniform in [0, base * 2^(attempt-1)], capped. *)
      Asc_util.Backoff.full_jitter ~rng
        ~base:(float_of_int retry_backoff /. 1000.)
        (attempt - 1)
    in
    match op with
    | "submit" ->
        let netlist_text = Option.map read_file netlist in
        if circuits = [] && netlist_text = None then
          die exit_usage "submit needs CIRCUIT names or --netlist FILE";
        let make_spec circuit =
          {
            Asc_core.Scheduler.sp_circuit = circuit;
            sp_netlist = netlist_text;
            sp_seed = seed;
            sp_t0 = t0;
            sp_timeout = job_timeout;
          }
        in
        let specs, labels =
          match circuits with
          | [] -> ([| make_spec None |], [| "netlist" |])
          | _ when netlist_text <> None ->
              die exit_usage "--netlist and CIRCUIT names are mutually exclusive"
          | _ ->
              ( Array.of_list (List.map (fun c -> make_spec (Some c)) circuits),
                Array.of_list circuits )
        in
        let responses =
          submit_pipelined ~listen ~specs ~labels ~want_tset:(save <> None)
            ~retries ~backoff_sleep ~pipeline
        in
        let has_error = ref false and has_partial = ref false in
        Array.iteri
          (fun j json ->
            (* The serialized test set can be large: divert it to --save
               (suffixed per job when submitting several) and print the
               response without it. *)
            Option.iter
              (fun path ->
                let path =
                  if Array.length responses > 1 then
                    Printf.sprintf "%s.%s" path labels.(j)
                  else path
                in
                match Option.bind (J.member "tset" json) J.as_str with
                | Some tset ->
                    let och = open_out path in
                    output_string och tset;
                    close_out och
                | None -> ())
              save;
            let shown =
              match json with
              | J.Obj fields ->
                  J.Obj (List.filter (fun (k, _) -> k <> "tset") fields)
              | other -> other
            in
            print_endline (J.to_string ~compact:true shown);
            let ok = Option.bind (J.member "ok" json) J.as_bool = Some true in
            if not ok then begin
              (* Typed reject: surface the reason class and message on
                 stderr so scripts don't have to parse the JSON. *)
              let reason =
                Option.value ~default:"error"
                  (Option.bind (J.member "reason" json) J.as_str)
              in
              let msg =
                Option.value ~default:"rejected"
                  (Option.bind (J.member "error" json) J.as_str)
              in
              Printf.eprintf "asc: submit %s rejected (%s): %s\n%!" labels.(j)
                reason msg;
              has_error := true
            end
            else
              match Option.bind (J.member "status" json) J.as_str with
              | Some "partial" -> has_partial := true
              | Some "failed" -> has_error := true
              | _ -> ())
          responses;
        if !has_error then exit exit_input;
        if !has_partial then exit exit_partial
    | _ ->
        let line =
          match op with
          | "ping" -> J.to_string ~compact:true (P.request_to_json P.Ping)
          | "metrics" -> J.to_string ~compact:true (P.request_to_json P.Metrics)
          | "shutdown" ->
              J.to_string ~compact:true (P.request_to_json P.Shutdown)
          | "raw" -> (
              try input_line stdin
              with End_of_file -> die exit_usage "raw: no JSON line on stdin")
          | other ->
              die exit_usage
                "unknown client op %S (ping|metrics|shutdown|submit|raw)" other
        in
        let rec attempt n =
          match try_request listen line with
          | Ok response -> response
          | Error msg when n < retries ->
              let delay = backoff_sleep (n + 1) in
              Printf.eprintf "asc: %s; retry %d/%d in %.2fs\n%!" msg (n + 1)
                retries delay;
              Unix.sleepf delay;
              attempt (n + 1)
          | Error msg -> die exit_input "%s" msg
        in
        let response = attempt 0 in
        (match J.parse response with
        | Error e -> die exit_input "unparseable response: %s" e
        | Ok json when prometheus -> (
            match P.prometheus_of_metrics json with
            | Ok text -> print_string text
            | Error e -> die exit_input "%s" e)
        | Ok json ->
            print_endline (J.to_string ~compact:true json);
            let ok = Option.bind (J.member "ok" json) J.as_bool = Some true in
            if not ok then begin
              (match Option.bind (J.member "error" json) J.as_str with
              | Some msg ->
                  let reason =
                    Option.value ~default:"error"
                      (Option.bind (J.member "reason" json) J.as_str)
                  in
                  Printf.eprintf "asc: %s rejected (%s): %s\n%!" op reason msg
              | None -> ());
              exit exit_input
            end)
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Talk to a running `asc serve` or `asc route` (exit 0 every job \
          complete, 3 some job partial, 1 a job failed or was rejected \
          or the connection/retry budget exhausted)")
    Term.(
      const run $ socket_arg $ tcp_arg $ op_arg $ circuits_arg $ netlist_arg
      $ seed_arg $ t0_arg $ job_timeout_arg $ save_arg $ retries_arg
      $ retry_backoff_arg $ prometheus_arg $ pipeline_arg)

(* --- tables -------------------------------------------------------------- *)

let tables_cmd =
  let circuits_arg =
    let doc = "Comma-separated circuit list (default: the paper's 19)." in
    Arg.(value & opt (some string) None & info [ "circuits" ] ~doc)
  in
  let dynamic_arg =
    let doc = "Also run the dynamic baseline of [2,3] (slow)." in
    Arg.(value & flag & info [ "dynamic" ] ~doc)
  in
  let run circuits dynamic seed domains verbose =
    setup_logs verbose;
    let pool = make_pool domains in
    let names =
      match circuits with
      | None -> Asc_circuits.Profile.names
      | Some s -> String.split_on_char ',' s
    in
    List.iter check_name names;
    let runs =
      List.map
        (fun n ->
          Printf.printf "running %s...\n%!" n;
          Asc_core.Experiments.run_circuit ?pool ~seed ~with_dynamic:dynamic n)
        names
    in
    print_string (Asc_report.Report.render_all runs)
  in
  Cmd.v (Cmd.info "tables" ~doc:"Regenerate the paper's tables")
    Term.(const run $ circuits_arg $ dynamic_arg $ seed_arg $ domains_arg $ verbose_arg)

let () =
  let doc = "scan test compaction for at-speed testing (Pomeranz & Reddy, DAC 2001)" in
  let exits =
    Cmd.Exit.info exit_input ~doc:"on malformed input (netlist, test set, checkpoint)."
    :: Cmd.Exit.info exit_usage ~doc:"on usage errors such as an unknown circuit."
    :: Cmd.Exit.info exit_partial
         ~doc:
           "when a $(b,--timeout) deadline or a SIGINT/SIGTERM interrupted the \
            run; partial results were reported."
    :: Cmd.Exit.info exit_killed
         ~doc:
           "when an $(b,ASC_CHAOS) fault-injection schedule simulated a hard \
            crash (mirrors a SIGKILL's shell status)."
    :: Cmd.Exit.defaults
  in
  let info = Cmd.info "asc" ~version:"1.0.0" ~doc ~exits in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd; info_cmd; export_cmd; import_cmd; run_cmd; baseline_cmd;
            atspeed_cmd; save_cmd; verify_cmd; audit_cmd; waveform_cmd;
            partial_cmd; tables_cmd; serve_cmd; route_cmd; client_cmd;
          ]))
