(* asc — command-line interface to the scan test compaction toolchain. *)

open Cmdliner
module Bv = Asc_util.Bitvec
module Circuit = Asc_netlist.Circuit
module Pipeline = Asc_core.Pipeline

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Warning)

let verbose_arg =
  let doc = "Print per-phase debug logs." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let seed_arg =
  let doc = "Seed for every stochastic step (default 1)." in
  Arg.(value & opt int 1 & info [ "seed" ] ~doc)

let domains_arg =
  let doc =
    "Worker domains for fault simulation (default: the ASC_DOMAINS \
     environment variable, else the hardware's recommended count; 1 \
     disables parallelism)."
  in
  Arg.(value & opt (some int) None & info [ "domains" ] ~doc ~docv:"N")

(* Resolve the --domains flag to an optional pool; [None] keeps every
   simulation on the calling domain. *)
let make_pool domains =
  let n =
    match domains with
    | Some n -> max 1 n
    | None -> Asc_util.Domain_pool.default_domains ()
  in
  if n > 1 then Some (Asc_util.Domain_pool.create ~domains:n ()) else None

let name_arg =
  let doc = "Benchmark circuit name (see `asc list`)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"CIRCUIT" ~doc)

let check_name name =
  if not (Asc_circuits.Registry.mem name) then begin
    Printf.eprintf "unknown circuit %S; known: %s\n" name
      (String.concat " " Asc_circuits.Registry.names);
    exit 1
  end

(* --- list / info / export --------------------------------------------- *)

let list_cmd =
  let run () =
    let t =
      Asc_util.Table.create ~caption:"Benchmark circuits"
        [
          Asc_util.Table.left "circuit"; Asc_util.Table.right "PIs";
          Asc_util.Table.right "POs"; Asc_util.Table.right "FFs";
          Asc_util.Table.right "gates"; Asc_util.Table.right "depth";
          Asc_util.Table.left "notes";
        ]
    in
    List.iter
      (fun name ->
        let c = Asc_circuits.Registry.get name in
        let notes =
          match Asc_circuits.Profile.find name with
          | Some p when p.scaled -> "scaled stand-in"
          | Some _ -> "synthetic stand-in"
          | None -> "embedded ISCAS-89 netlist"
        in
        Asc_util.Table.add_row t
          [
            name;
            string_of_int (Circuit.n_inputs c);
            string_of_int (Circuit.n_outputs c);
            string_of_int (Circuit.n_dffs c);
            string_of_int (Circuit.n_gates c);
            string_of_int (Circuit.max_level c);
            notes;
          ])
      Asc_circuits.Registry.names;
    Asc_util.Table.print t
  in
  Cmd.v (Cmd.info "list" ~doc:"List the benchmark circuits") Term.(const run $ const ())

let info_cmd =
  let run name seed =
    check_name name;
    let c = Asc_circuits.Registry.get ~seed name in
    Format.printf "%a@." Circuit.pp_stats c;
    let collapse = Asc_fault.Collapse.run c in
    Printf.printf "stuck-at faults: %d uncollapsed, %d collapsed\n"
      (Array.length (Asc_fault.Collapse.universe collapse))
      (Asc_fault.Collapse.n_classes collapse);
    Printf.printf "transition faults: %d\n"
      (Array.length (Asc_tfault.Tfault.universe c));
    List.iter
      (fun (k, n) -> Printf.printf "  %-6s %5d\n" (Asc_netlist.Gate.to_string k) n)
      (List.sort compare (Circuit.kind_counts c))
  in
  Cmd.v (Cmd.info "info" ~doc:"Circuit statistics")
    Term.(const run $ name_arg $ seed_arg)

let export_cmd =
  let file_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"FILE")
  in
  let run name file seed =
    check_name name;
    Asc_netlist.Bench_io.write_file file (Asc_circuits.Registry.get ~seed name);
    Printf.printf "wrote %s\n" file
  in
  Cmd.v (Cmd.info "export" ~doc:"Write a circuit as an ISCAS `.bench` file")
    Term.(const run $ name_arg $ file_arg $ seed_arg)

(* --- run / baseline / atspeed ------------------------------------------ *)

let t0_arg =
  let doc = "T0 source: 'directed' or 'random'." in
  Arg.(value & opt string "directed" & info [ "t0" ] ~doc)

let run_cmd =
  let run name t0 seed domains verbose =
    setup_logs verbose;
    check_name name;
    let pool = make_pool domains in
    let c = Asc_circuits.Registry.get ~seed name in
    let t0_source =
      match t0 with
      | "directed" -> Pipeline.Directed (Asc_circuits.Registry.t0_budget name)
      | "random" -> Pipeline.Random_seq 1000
      | _ ->
          Printf.eprintf "bad --t0 %S (expected directed|random)\n" t0;
          exit 1
    in
    let config = Asc_core.Experiments.config_for ~seed ~t0_source in
    let prepared = Pipeline.prepare ?pool ~config c in
    let r = Pipeline.run ?pool ~config prepared in
    Printf.printf "circuit %s: %d target faults, |C| = %d\n" name
      (Bv.count prepared.targets)
      (Array.length prepared.comb_tests);
    Printf.printf "T0: length %d, detects %d without scan\n" r.t0_length r.f0_count;
    List.iteri
      (fun i (it : Pipeline.iteration) ->
        Printf.printf "  iteration %d: SI=%d u_SO=%d L=%d detected=%d\n" (i + 1)
          it.si_index it.u_so it.len_after_omission it.detected_count)
      r.iterations;
    Printf.printf "tau_seq: L = %d, detects %d\n"
      (Asc_scan.Scan_test.length r.tau_seq)
      (Bv.count r.f_seq);
    Printf.printf "phase 3: %d added tests (%d faults uncoverable by C)\n"
      (Array.length r.added) (Bv.count r.uncovered);
    Printf.printf "cycles: %d initial, %d after phase 4\n" r.cycles_initial
      r.cycles_final;
    Printf.printf "final coverage: %d / %d\n"
      (Bv.count r.final_detected)
      (Bv.count prepared.targets)
  in
  Cmd.v (Cmd.info "run" ~doc:"Run the proposed compaction procedure")
    Term.(const run $ name_arg $ t0_arg $ seed_arg $ domains_arg $ verbose_arg)

let baseline_cmd =
  let run name seed domains verbose =
    setup_logs verbose;
    check_name name;
    let pool = make_pool domains in
    let c = Asc_circuits.Registry.get ~seed name in
    let config = { Pipeline.default_config with seed } in
    let prepared = Pipeline.prepare ?pool ~config c in
    let b = Asc_core.Baseline_static.run ?pool prepared in
    Printf.printf "[4] baseline on %s: |C| = %d\n" name (Array.length b.initial_tests);
    Printf.printf "initial: %d cycles\n" b.cycles_initial;
    Printf.printf "compacted: %d cycles (%d combinations, %d tests left)\n"
      b.cycles_final b.combinations (Array.length b.final_tests)
  in
  Cmd.v (Cmd.info "baseline" ~doc:"Run the static baseline of [4]")
    Term.(const run $ name_arg $ seed_arg $ domains_arg $ verbose_arg)

let atspeed_cmd =
  let run name seed =
    check_name name;
    let r = Asc_core.Experiments.run_circuit ~seed name in
    print_string (Asc_util.Table.render (Asc_report.Report.table_at_speed [ r ]))
  in
  Cmd.v
    (Cmd.info "atspeed" ~doc:"Transition-fault coverage of the final test sets")
    Term.(const run $ name_arg $ seed_arg)

(* --- test-set save / verify, import, partial scan ----------------------- *)

let save_cmd =
  let file_arg = Arg.(required & pos 1 (some string) None & info [] ~docv:"FILE") in
  let run name file t0 seed domains =
    check_name name;
    let pool = make_pool domains in
    let c = Asc_circuits.Registry.get ~seed name in
    let t0_source =
      match t0 with
      | "directed" -> Pipeline.Directed (Asc_circuits.Registry.t0_budget name)
      | "random" -> Pipeline.Random_seq 1000
      | _ ->
          Printf.eprintf "bad --t0 %S\n" t0;
          exit 1
    in
    let config = Asc_core.Experiments.config_for ~seed ~t0_source in
    let prepared = Pipeline.prepare ?pool ~config c in
    let r = Pipeline.run ?pool ~config prepared in
    Asc_scan.Tset_io.write_file file c r.final_tests;
    Printf.printf "wrote %d tests (%d cycles) to %s\n"
      (Array.length r.final_tests) r.cycles_final file
  in
  Cmd.v
    (Cmd.info "save-tests" ~doc:"Run the proposed procedure and save the final test set")
    Term.(const run $ name_arg $ file_arg $ t0_arg $ seed_arg $ domains_arg)

let verify_cmd =
  let file_arg = Arg.(required & pos 1 (some string) None & info [] ~docv:"FILE") in
  let run name file seed domains =
    check_name name;
    let pool = make_pool domains in
    let c = Asc_circuits.Registry.get ~seed name in
    let tests = Asc_scan.Tset_io.check_compatible c (Asc_scan.Tset_io.read_file file) in
    let collapse = Asc_fault.Collapse.run c in
    let faults = Asc_fault.Collapse.reps collapse in
    let cov = Asc_scan.Tset.coverage ?pool c tests ~faults in
    Printf.printf "%d tests, %d cycles, %d / %d collapsed faults detected\n"
      (Array.length tests)
      (Asc_scan.Time_model.cycles_of_tests c tests)
      (Bv.count cov) (Array.length faults)
  in
  Cmd.v (Cmd.info "verify-tests" ~doc:"Fault-simulate a saved test set")
    Term.(const run $ name_arg $ file_arg $ seed_arg $ domains_arg)

let import_cmd =
  let file_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  let run file =
    let c = Asc_netlist.Bench_io.parse_file file in
    Format.printf "%a@." Circuit.pp_stats c;
    let config = Pipeline.default_config in
    let prepared = Pipeline.prepare ~config c in
    let r = Pipeline.run ~config prepared in
    Printf.printf "proposed procedure: %d cycles initial, %d final, %d/%d detected\n"
      r.cycles_initial r.cycles_final
      (Bv.count r.final_detected)
      (Bv.count prepared.targets)
  in
  Cmd.v
    (Cmd.info "import" ~doc:"Run the procedure on an ISCAS `.bench` netlist file")
    Term.(const run $ file_arg)

let partial_cmd =
  let ratio_arg =
    let doc = "Fraction of flip-flops kept on the scan chain." in
    Arg.(value & opt float 0.5 & info [ "ratio" ] ~doc)
  in
  let run name ratio seed =
    check_name name;
    let c = Asc_circuits.Registry.get ~seed name in
    let budget = Asc_circuits.Registry.t0_budget name in
    let config =
      Asc_core.Experiments.config_for ~seed ~t0_source:(Pipeline.Directed budget)
    in
    let prepared = Pipeline.prepare ~config c in
    let r = Pipeline.run ~config prepared in
    let chain = Asc_scan.Partial.by_fanout c ~ratio in
    let cov = Asc_scan.Partial.coverage c chain r.final_tests ~faults:prepared.faults in
    Printf.printf
      "%s with %d/%d flip-flops scanned (full-scan tests reused): %d cycles \
       (full scan: %d), coverage %d/%d\n"
      name
      (Asc_scan.Partial.n_scanned chain)
      (Circuit.n_dffs c)
      (Asc_scan.Partial.cycles c chain r.final_tests)
      r.cycles_final
      (Bv.count (Bv.inter cov prepared.targets))
      (Bv.count prepared.targets);
    (* The procedure adapted to the partial chain. *)
    let pconfig =
      { Asc_core.Pipeline_partial.default_config with
        seed; t0_source = Pipeline.Directed budget }
    in
    let pr = Asc_core.Pipeline_partial.run ~config:pconfig prepared ~chain in
    Printf.printf
      "adapted partial-scan procedure: %d cycles, coverage %d/%d (%d tests)\n"
      pr.cycles_final
      (Bv.count pr.final_detected)
      (Bv.count prepared.targets)
      (Array.length pr.final_tests)
  in
  Cmd.v
    (Cmd.info "partial" ~doc:"Evaluate the final test set under partial scan")
    Term.(const run $ name_arg $ ratio_arg $ seed_arg)

let audit_cmd =
  let file_arg = Arg.(required & pos 1 (some string) None & info [] ~docv:"FILE") in
  let run name file seed =
    check_name name;
    let c = Asc_circuits.Registry.get ~seed name in
    let tests = Asc_scan.Tset_io.check_compatible c (Asc_scan.Tset_io.read_file file) in
    let collapse = Asc_fault.Collapse.run c in
    let faults = Asc_fault.Collapse.reps collapse in
    let targets = Bv.create ~default:true (Array.length faults) in
    let report = Asc_scan.Audit.run c tests ~faults ~targets in
    Format.printf "%a@." Asc_scan.Audit.pp report;
    Array.iteri
      (fun i inc -> Printf.printf "  test %2d: L=%d, +%d faults\n" i
          (Asc_scan.Scan_test.length tests.(i)) inc)
      report.incremental
  in
  Cmd.v (Cmd.info "audit" ~doc:"Audit a saved test set (duplicates, useless tests)")
    Term.(const run $ name_arg $ file_arg $ seed_arg)

let waveform_cmd =
  let file_arg = Arg.(required & pos 1 (some string) None & info [] ~docv:"FILE") in
  let len_arg =
    let doc = "Number of random functional cycles to dump." in
    Arg.(value & opt int 32 & info [ "cycles" ] ~doc)
  in
  let run name file len seed =
    check_name name;
    let c = Asc_circuits.Registry.get ~seed name in
    let rng = Asc_util.Rng.of_name ~seed (name ^ "/waveform") in
    let si = Asc_util.Rng.bool_array rng (Circuit.n_dffs c) in
    let seq =
      Array.init len (fun _ -> Asc_util.Rng.bool_array rng (Circuit.n_inputs c))
    in
    Asc_sim.Vcd.write_file file c ~si ~seq;
    Printf.printf "wrote %d cycles of %s to %s (open with GTKWave)\n" len name file
  in
  Cmd.v
    (Cmd.info "waveform" ~doc:"Dump a VCD waveform of a random scan test")
    Term.(const run $ name_arg $ file_arg $ len_arg $ seed_arg)

(* --- tables -------------------------------------------------------------- *)

let tables_cmd =
  let circuits_arg =
    let doc = "Comma-separated circuit list (default: the paper's 19)." in
    Arg.(value & opt (some string) None & info [ "circuits" ] ~doc)
  in
  let dynamic_arg =
    let doc = "Also run the dynamic baseline of [2,3] (slow)." in
    Arg.(value & flag & info [ "dynamic" ] ~doc)
  in
  let run circuits dynamic seed domains verbose =
    setup_logs verbose;
    let pool = make_pool domains in
    let names =
      match circuits with
      | None -> Asc_circuits.Profile.names
      | Some s -> String.split_on_char ',' s
    in
    List.iter check_name names;
    let runs =
      List.map
        (fun n ->
          Printf.printf "running %s...\n%!" n;
          Asc_core.Experiments.run_circuit ?pool ~seed ~with_dynamic:dynamic n)
        names
    in
    print_string (Asc_report.Report.render_all runs)
  in
  Cmd.v (Cmd.info "tables" ~doc:"Regenerate the paper's tables")
    Term.(const run $ circuits_arg $ dynamic_arg $ seed_arg $ domains_arg $ verbose_arg)

let () =
  let doc = "scan test compaction for at-speed testing (Pomeranz & Reddy, DAC 2001)" in
  let info = Cmd.info "asc" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd; info_cmd; export_cmd; import_cmd; run_cmd; baseline_cmd;
            atspeed_cmd; save_cmd; verify_cmd; audit_cmd; waveform_cmd;
            partial_cmd; tables_cmd;
          ]))
