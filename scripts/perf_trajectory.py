#!/usr/bin/env python3
"""Perf-trajectory gate for the levelized simulation kernel.

Consumes the JSON summary written by ``bench --quick --json`` and

1. emits a schema-versioned ``BENCH_<date>.json`` snapshot at the repo
   root (the trajectory: one file per recorded day, committed to main),
2. compares the fsim-kernel timing against the newest prior
   ``BENCH_*.json`` and fails when the levelized kernel regressed beyond
   the budget (default 25%).

The gated metric is ``kernel.seconds_levelized_1`` — the single-domain
steady-state time of the levelized kernel on the fixed s1423 workload.
The single-domain number is used because hosted runners disagree about
core counts far more than they disagree about single-core throughput;
the multi-domain figures are recorded in the snapshot but not gated.

When no prior snapshot exists the gate is advisory: it warns and exits 0
so the first run on a fresh trajectory can seed it.

Usage:
    perf_trajectory.py BENCH_JSON [--out-dir DIR] [--date YYYY-MM-DD]
                       [--budget FRACTION] [--commit SHA]

Exit codes: 0 ok (or advisory), 1 regression beyond budget, 2 bad input.
"""

from __future__ import annotations

import argparse
import datetime
import json
import re
import sys
from pathlib import Path

SNAPSHOT_SCHEMA = 1
SNAPSHOT_RE = re.compile(r"^BENCH_(\d{4}-\d{2}-\d{2})\.json$")


def fail(msg: str, code: int = 2) -> None:
    print(f"perf-trajectory: error: {msg}", file=sys.stderr)
    sys.exit(code)


def load_bench(path: Path) -> dict:
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot read bench JSON {path}: {e}")
    kernel = data.get("kernel")
    if not isinstance(kernel, dict):
        fail(f"{path} has no kernel section — run bench with --quick --json")
    for key in ("seconds_levelized_1", "seconds_reference", "circuit"):
        if key not in kernel:
            fail(f"{path}: kernel section missing {key!r}")
    return data


def prior_snapshots(out_dir: Path, today: str) -> list[Path]:
    """Prior BENCH_*.json files, newest (by filename date) first."""
    found = []
    for p in out_dir.iterdir():
        m = SNAPSHOT_RE.match(p.name)
        if m and m.group(1) < today:
            found.append((m.group(1), p))
    return [p for _, p in sorted(found, reverse=True)]


def kernel_seconds(snapshot: dict, path: Path) -> float:
    kernel = snapshot.get("kernel")
    if not isinstance(kernel, dict) or "seconds_levelized_1" not in kernel:
        fail(f"{path}: snapshot has no kernel.seconds_levelized_1")
    return float(kernel["seconds_levelized_1"])


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("bench_json", type=Path, help="output of bench --quick --json")
    ap.add_argument("--out-dir", type=Path, default=Path("."),
                    help="where BENCH_<date>.json snapshots live (repo root)")
    ap.add_argument("--date", default=None,
                    help="snapshot date, YYYY-MM-DD (default: today, UTC)")
    ap.add_argument("--budget", type=float, default=0.25,
                    help="allowed fractional slowdown before failing (default 0.25)")
    ap.add_argument("--commit", default=None, help="git SHA to record in the snapshot")
    args = ap.parse_args()

    date = args.date or datetime.datetime.now(datetime.timezone.utc).strftime("%Y-%m-%d")
    if not re.match(r"^\d{4}-\d{2}-\d{2}$", date):
        fail(f"--date must be YYYY-MM-DD, got {date!r}")
    if not args.out_dir.is_dir():
        fail(f"--out-dir {args.out_dir} is not a directory")

    bench = load_bench(args.bench_json)
    kernel = bench["kernel"]
    new_secs = float(kernel["seconds_levelized_1"])

    snapshot = {
        "schema": SNAPSHOT_SCHEMA,
        "date": date,
        "commit": args.commit,
        "source": "bench --quick --json",
        "bench_schema": bench.get("schema"),
        "domains": bench.get("domains"),
        "kernel": kernel,
        "fsim": bench.get("fsim"),
        "atpg": bench.get("atpg"),
        "timings": bench.get("timings"),
    }
    out_path = args.out_dir / f"BENCH_{date}.json"
    out_path.write_text(json.dumps(snapshot, indent=2) + "\n")
    speedup = kernel.get("speedup_domains_1")
    detail = f", {speedup:.2f}x vs reference" if speedup is not None else ""
    print(f"perf-trajectory: wrote {out_path} "
          f"(levelized 1-domain {new_secs:.3f}s on {kernel['circuit']}{detail})")

    priors = prior_snapshots(args.out_dir, date)
    if not priors:
        print("perf-trajectory: advisory — no prior BENCH_*.json to compare "
              "against; this snapshot seeds the trajectory")
        return
    prior_path = priors[0]
    prior = json.loads(prior_path.read_text())
    old_secs = kernel_seconds(prior, prior_path)
    ratio = new_secs / old_secs if old_secs > 0 else float("inf")
    print(f"perf-trajectory: vs {prior_path.name}: "
          f"{old_secs:.3f}s -> {new_secs:.3f}s ({ratio:.2f}x)")
    if ratio > 1.0 + args.budget:
        fail(f"levelized kernel regressed {100 * (ratio - 1):.0f}% "
             f"(budget {100 * args.budget:.0f}%) against {prior_path.name}",
             code=1)
    print(f"perf-trajectory: within budget "
          f"({100 * args.budget:.0f}% allowed slowdown)")


if __name__ == "__main__":
    main()
