(* Benchmark harness: regenerates every table of the paper.

   Default mode runs the full experiment battery — both T0 sources of the
   proposed procedure, the static baseline of [4] and (for the circuits
   where the paper reports it) the dynamic baseline of [2,3] — over all 19
   benchmark stand-ins, then prints Tables 1-5 in the paper's layout plus
   the at-speed extension table.  EXPERIMENTS.md discusses paper-vs-measured.

     dune exec bench/main.exe                  # everything (several minutes)
     dune exec bench/main.exe -- --quick       # a small circuit subset
     dune exec bench/main.exe -- --circuits s298,s344
     dune exec bench/main.exe -- --seed 7
     dune exec bench/main.exe -- --no-dynamic --no-atspeed
     dune exec bench/main.exe -- --micro       # Bechamel kernel benchmarks
     dune exec bench/main.exe -- --ablations   # design-choice ablations A-E
*)

let default_circuits = Asc_circuits.Profile.names

let quick_circuits = [ "s27"; "s298"; "s344"; "s382"; "b01"; "b02"; "b06" ]

(* The paper reports a [2,3] number only for some ISCAS circuits; the
   dynamic baseline is also the slowest flow, so it runs where the paper
   has a value (and the circuit is tractable). *)
let dynamic_circuits = [ "s298"; "s344"; "s382"; "s526"; "s820"; "s1423"; "s1488" ]

type options = {
  mutable circuits : string list;
  mutable seed : int;
  mutable dynamic : bool;
  mutable at_speed : bool;
  mutable micro : bool;
  mutable ablations : bool;
}

let parse_args () =
  let o =
    { circuits = default_circuits; seed = 1; dynamic = true; at_speed = true;
      micro = false; ablations = false }
  in
  let rec go = function
    | [] -> ()
    | "--quick" :: rest ->
        o.circuits <- quick_circuits;
        go rest
    | "--circuits" :: names :: rest ->
        o.circuits <- String.split_on_char ',' names;
        go rest
    | "--seed" :: n :: rest ->
        o.seed <- int_of_string n;
        go rest
    | "--no-dynamic" :: rest ->
        o.dynamic <- false;
        go rest
    | "--no-atspeed" :: rest ->
        o.at_speed <- false;
        go rest
    | "--micro" :: rest ->
        o.micro <- true;
        go rest
    | "--ablations" :: rest ->
        o.ablations <- true;
        go rest
    | arg :: _ ->
        Printf.eprintf "unknown argument %S\n" arg;
        exit 2
  in
  go (List.tl (Array.to_list Sys.argv));
  List.iter
    (fun name ->
      if not (Asc_circuits.Registry.mem name) then begin
        Printf.eprintf "unknown circuit %S; known: %s\n" name
          (String.concat " " Asc_circuits.Registry.names);
        exit 2
      end)
    o.circuits;
  o

(* --- Full table regeneration ------------------------------------------- *)

let run_tables o =
  let total = List.length o.circuits in
  let runs =
    List.mapi
      (fun i name ->
        let with_dynamic = o.dynamic && List.mem name dynamic_circuits in
        let t0 = Unix.gettimeofday () in
        Printf.printf "[%2d/%d] %-8s ...%!" (i + 1) total name;
        let r = Asc_core.Experiments.run_circuit ~seed:o.seed ~with_dynamic name in
        Printf.printf " %.1fs\n%!" (Unix.gettimeofday () -. t0);
        r)
      o.circuits
  in
  print_newline ();
  print_string (Asc_report.Report.render_all ~with_at_speed:o.at_speed runs)

(* --- Bechamel micro-benchmarks ----------------------------------------- *)

(* One Test.make per table: each benchmark regenerates the data behind the
   corresponding table on a small circuit, so Bechamel can sample it. *)
let micro_tests () =
  let open Bechamel in
  let name = "s298" in
  let c = Asc_circuits.Registry.get name in
  let config =
    { Asc_core.Pipeline.default_config with
      t0_source = Asc_core.Pipeline.Directed (Asc_circuits.Registry.t0_budget name) }
  in
  let prepared = Asc_core.Pipeline.prepare ~config c in
  let faults = prepared.faults in
  let directed = lazy (Asc_core.Pipeline.run ~config prepared) in
  let random_cfg =
    { config with t0_source = Asc_core.Pipeline.Random_seq 1000 }
  in
  (* Table 1 and 2 come from the proposed pipeline's phases (directed T0);
     Table 3 adds the [4] baseline; Table 4 needs the final sets' length
     statistics; Table 5 is the random-T0 pipeline.  The extension table
     exercises the transition-fault simulator. *)
  [
    Test.make ~name:"table1+2: proposed pipeline (directed T0)"
      (Staged.stage (fun () -> ignore (Asc_core.Pipeline.run ~config prepared)));
    Test.make ~name:"table3: static baseline of [4]"
      (Staged.stage (fun () -> ignore (Asc_core.Baseline_static.run prepared)));
    Test.make ~name:"table4: length statistics of the final set"
      (Staged.stage (fun () ->
           ignore
             (Asc_scan.Time_model.length_stats (Lazy.force directed).final_tests)));
    Test.make ~name:"table5: proposed pipeline (random T0)"
      (Staged.stage (fun () -> ignore (Asc_core.Pipeline.run ~config:random_cfg prepared)));
    Test.make ~name:"tableA: transition-fault coverage"
      (Staged.stage (fun () ->
           let tf = Asc_tfault.Tfault.universe c in
           ignore
             (Asc_tfault.Tfault.coverage c (Lazy.force directed).final_tests ~faults:tf)));
    (* Kernels under everything above. *)
    Test.make ~name:"kernel: sequential fault simulation (62 lanes)"
      (Staged.stage
         (let si = Array.make (Asc_netlist.Circuit.n_dffs c) false in
          let rng = Asc_util.Rng.create 7 in
          let seq =
            Array.init 64 (fun _ ->
                Asc_util.Rng.bool_array rng (Asc_netlist.Circuit.n_inputs c))
          in
          fun () -> ignore (Asc_fault.Seq_fsim.detect c ~si ~seq ~faults)));
    Test.make ~name:"kernel: PODEM over the fault list"
      (Staged.stage
         (let podem = Asc_atpg.Podem.create c in
          fun () ->
            Array.iter (fun f -> ignore (Asc_atpg.Podem.run podem f)) faults));
  ]

let run_micro () =
  let open Bechamel in
  let benchmark test =
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 2.0) ~kde:(Some 100) () in
    Benchmark.all cfg [ instance ] test
  in
  let analyze results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true
        ~predictors:[| Measure.run |]
    in
    Analyze.all ols Toolkit.Instance.monotonic_clock results
  in
  List.iter
    (fun test ->
      let results = benchmark test in
      let stats = analyze results in
      Hashtbl.iter
        (fun name r ->
          match Analyze.OLS.estimates r with
          | Some [ est ] ->
              Printf.printf "%-50s %12.0f ns/run\n%!" name est
          | _ -> Printf.printf "%-50s (no estimate)\n%!" name)
        stats)
    (micro_tests ())

let () =
  let o = parse_args () in
  if o.micro then run_micro ()
  else if o.ablations then
    Ablations.run_all ~seed:o.seed
      ?names:(if o.circuits == default_circuits then None else Some o.circuits)
      ()
  else run_tables o
