(* Benchmark harness: regenerates every table of the paper.

   Default mode runs the full experiment battery — both T0 sources of the
   proposed procedure, the static baseline of [4] and (for the circuits
   where the paper reports it) the dynamic baseline of [2,3] — over all 19
   benchmark stand-ins, then prints Tables 1-5 in the paper's layout plus
   the at-speed extension table.  EXPERIMENTS.md discusses paper-vs-measured.

     dune exec bench/main.exe                  # everything (several minutes)
     dune exec bench/main.exe -- --quick       # a small circuit subset
     dune exec bench/main.exe -- --circuits s298,s344
     dune exec bench/main.exe -- --seed 7
     dune exec bench/main.exe -- --no-dynamic --no-atspeed
     dune exec bench/main.exe -- --micro       # Bechamel kernel benchmarks
     dune exec bench/main.exe -- --ablations   # design-choice ablations A-E
*)

let default_circuits = Asc_circuits.Profile.names

let quick_circuits = [ "s27"; "s298"; "s344"; "s382"; "b01"; "b02"; "b06" ]

(* The paper reports a [2,3] number only for some ISCAS circuits; the
   dynamic baseline is also the slowest flow, so it runs where the paper
   has a value (and the circuit is tractable). *)
let dynamic_circuits = [ "s298"; "s344"; "s382"; "s526"; "s820"; "s1423"; "s1488" ]

type options = {
  mutable circuits : string list;
  mutable quick : bool;
  mutable seed : int;
  mutable dynamic : bool;
  mutable at_speed : bool;
  mutable micro : bool;
  mutable ablations : bool;
  mutable domains : int option; (* --domains N: pool size for fault simulation *)
  mutable json : string option; (* --json FILE: machine-readable summary *)
  mutable trace : string option; (* --trace FILE: Chrome trace of the battery *)
  mutable sim_kernel : Asc_sim.Sim_kernel.which option; (* --sim-kernel *)
}

let parse_args () =
  let o =
    { circuits = default_circuits; quick = false; seed = 1; dynamic = true;
      at_speed = true; micro = false; ablations = false; domains = None;
      json = None; trace = None; sim_kernel = None }
  in
  let rec go = function
    | [] -> ()
    | "--quick" :: rest ->
        o.circuits <- quick_circuits;
        o.quick <- true;
        go rest
    | "--circuits" :: names :: rest ->
        o.circuits <- String.split_on_char ',' names;
        go rest
    | "--seed" :: n :: rest ->
        o.seed <- int_of_string n;
        go rest
    | "--domains" :: n :: rest ->
        o.domains <- Some (max 1 (int_of_string n));
        go rest
    | "--sim-kernel" :: which :: rest ->
        (match Asc_sim.Sim_kernel.of_string which with
        | Some k -> o.sim_kernel <- Some k
        | None ->
            Printf.eprintf "unknown --sim-kernel %S (levelized|reference)\n" which;
            exit 2);
        go rest
    | "--json" :: file :: rest ->
        o.json <- Some file;
        go rest
    | "--trace" :: file :: rest ->
        o.trace <- Some file;
        go rest
    | "--no-dynamic" :: rest ->
        o.dynamic <- false;
        go rest
    | "--no-atspeed" :: rest ->
        o.at_speed <- false;
        go rest
    | "--micro" :: rest ->
        o.micro <- true;
        go rest
    | "--ablations" :: rest ->
        o.ablations <- true;
        go rest
    | arg :: _ ->
        Printf.eprintf "unknown argument %S\n" arg;
        exit 2
  in
  go (List.tl (Array.to_list Sys.argv));
  List.iter
    (fun name ->
      if not (Asc_circuits.Registry.mem name) then begin
        Printf.eprintf "unknown circuit %S; known: %s\n" name
          (String.concat " " Asc_circuits.Registry.names);
        exit 2
      end)
    o.circuits;
  o

(* --- Full table regeneration ------------------------------------------- *)

let run_tables o pool tel =
  let total = List.length o.circuits in
  let timings = ref [] in
  let runs =
    List.mapi
      (fun i name ->
        let with_dynamic = o.dynamic && List.mem name dynamic_circuits in
        let t0 = Unix.gettimeofday () in
        Printf.printf "[%2d/%d] %-8s ...%!" (i + 1) total name;
        let r =
          Asc_core.Experiments.run_circuit ?pool ?tel ~seed:o.seed ~with_dynamic
            name
        in
        let dt = Unix.gettimeofday () -. t0 in
        Printf.printf " %.1fs (atpg %.1fs)\n%!" dt r.prepare_seconds;
        timings := (name, dt, r.prepare_seconds) :: !timings;
        r)
      o.circuits
  in
  print_newline ();
  print_string (Asc_report.Report.render_all ~with_at_speed:o.at_speed runs);
  List.rev !timings

(* --- Fault-simulation phase speedup ------------------------------------- *)

(* Wall-clock comparison of the sequential-fault-simulation kernel with 1
   domain vs the requested pool, on the largest circuit of the run: the
   uncollapsed fault universe of that circuit across a few random scan
   tests.  Detection counts must agree bit for bit — the pool's merge is
   deterministic — so the counts are reported alongside the timings. *)
type fsim_result = {
  fs_circuit : string;
  fs_faults : int;
  fs_seq_len : int;
  fs_tests : int;
  fs_detected_1 : int;
  fs_detected_n : int;
  fs_seconds_1 : float;
  fs_seconds_n : float;
  fs_speedup : float;
  fs_loads : Asc_util.Telemetry.load list; (* per-domain, N-domain run only *)
  fs_imbalance : float;
}

(* Per-domain utilization of a pooled benchmark run, from the task-claim
   spans the pool records into [tel]: the busiest domain's busy seconds
   over the mean (1.0 = perfect balance), plus each domain's share of the
   parallel window. *)
let drain_loads tel =
  match tel with
  | None -> ([], 1.0)
  | Some tel ->
      let loads = Asc_util.Telemetry.(pool_loads (drain tel)) in
      (loads, Asc_util.Telemetry.imbalance loads)

let print_loads loads imbalance =
  if loads <> [] then
    let utils = List.map (fun (l : Asc_util.Telemetry.load) -> l.l_util) loads in
    Printf.printf
      "  pool utilization: mean %.2f, min %.2f, imbalance %.2fx (tasks: %s)\n%!"
      (Asc_util.Stats.mean_f utils)
      (fst (Asc_util.Stats.min_max_f utils))
      imbalance
      (String.concat " "
         (List.map
            (fun (l : Asc_util.Telemetry.load) -> string_of_int l.l_tasks)
            loads))

let fsim_bench ~seed ~domains names =
  let gates name =
    Asc_netlist.Circuit.n_gates (Asc_circuits.Registry.get ~seed name)
  in
  let name =
    List.fold_left
      (fun best n -> if gates n > gates best then n else best)
      (List.hd names) names
  in
  let c = Asc_circuits.Registry.get ~seed name in
  let collapse = Asc_fault.Collapse.run c in
  let faults = Asc_fault.Collapse.universe collapse in
  let rng = Asc_util.Rng.of_name ~seed (name ^ "/fsim-bench") in
  let n_tests = 4 and len = 256 in
  let tests =
    Array.init n_tests (fun _ ->
        let si = Asc_util.Rng.bool_array rng (Asc_netlist.Circuit.n_dffs c) in
        let seq =
          Array.init len (fun _ ->
              Asc_util.Rng.bool_array rng (Asc_netlist.Circuit.n_inputs c))
        in
        (si, seq))
  in
  let detect ?pool () =
    Array.fold_left
      (fun acc (si, seq) ->
        acc + Asc_util.Bitvec.count (Asc_fault.Seq_fsim.detect ?pool c ~si ~seq ~faults))
      0 tests
  in
  (* Best of a few repetitions, to shed warm-up and scheduler noise. *)
  let time_best f =
    let best = ref infinity and result = ref 0 in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      result := f ();
      best := min !best (Unix.gettimeofday () -. t0)
    done;
    (!result, !best)
  in
  let detected_1, seconds_1 = time_best (fun () -> detect ()) in
  let (detected_n, seconds_n), (loads, imbalance) =
    if domains > 1 then begin
      let tel = Asc_util.Telemetry.create () in
      let pool = Asc_util.Domain_pool.create ~tel ~domains () in
      let r = time_best (fun () -> detect ~pool ()) in
      Asc_util.Domain_pool.shutdown pool;
      (r, drain_loads (Some tel))
    end
    else (time_best (fun () -> detect ()), ([], 1.0))
  in
  let r =
    {
      fs_circuit = name;
      fs_faults = Array.length faults;
      fs_seq_len = len;
      fs_tests = n_tests;
      fs_detected_1 = detected_1;
      fs_detected_n = detected_n;
      fs_seconds_1 = seconds_1;
      fs_seconds_n = seconds_n;
      fs_speedup = seconds_1 /. seconds_n;
      fs_loads = loads;
      fs_imbalance = imbalance;
    }
  in
  Printf.printf
    "fsim phase (%s, %d faults, %d tests x %d vectors): 1 domain %.3fs, %d \
     domains %.3fs, speedup %.2fx; detected %d vs %d (%s)\n%!"
    r.fs_circuit r.fs_faults r.fs_tests r.fs_seq_len r.fs_seconds_1 domains
    r.fs_seconds_n r.fs_speedup r.fs_detected_1 r.fs_detected_n
    (if r.fs_detected_1 = r.fs_detected_n then "identical" else "MISMATCH");
  print_loads r.fs_loads r.fs_imbalance;
  r

(* --- Levelized-kernel speedup -------------------------------------------- *)

(* The acceptance benchmark of the levelized cone kernel: s1423's
   uncollapsed universe over random scan tests, reference (interpretive,
   1 domain) vs levelized at 1 domain and at the requested pool size.
   Caches are cleared inside every repetition, so the numbers are
   cold-trace; detection counts must agree bit for bit across all three
   configurations.  Kernel-side telemetry (good/faulty cycles, cone
   gates, trace-cache traffic) comes from the levelized pooled run. *)
type kernel_result = {
  k_circuit : string;
  k_faults : int;
  k_seq_len : int;
  k_tests : int;
  k_detected_ref : int;
  k_detected_lv1 : int;
  k_detected_lvn : int;
  k_seconds_ref : float;
  k_seconds_lv1 : float;
  k_seconds_lvn : float;
  k_speedup_1 : float; (* reference / levelized, 1 domain *)
  k_speedup_n : float; (* reference / levelized, N domains *)
  k_good_cycles : int;
  k_faulty_cycles : int;
  k_cone_gates : int;
  k_cache_hits : int;
  k_cache_misses : int;
  k_loads : Asc_util.Telemetry.load list;
  k_imbalance : float;
}

let kernel_bench ~seed ~domains =
  let module SK = Asc_sim.Sim_kernel in
  let name = "s1423" in
  let c = Asc_circuits.Registry.get ~seed name in
  let collapse = Asc_fault.Collapse.run c in
  let faults = Asc_fault.Collapse.universe collapse in
  let rng = Asc_util.Rng.of_name ~seed (name ^ "/kernel-bench") in
  let n_tests = 4 and len = 256 in
  let tests =
    Array.init n_tests (fun _ ->
        let si = Asc_util.Rng.bool_array rng (Asc_netlist.Circuit.n_dffs c) in
        let seq =
          Array.init len (fun _ ->
              Asc_util.Rng.bool_array rng (Asc_netlist.Circuit.n_inputs c))
        in
        (si, seq))
  in
  let detect ?pool ?tel () =
    Array.fold_left
      (fun acc (si, seq) ->
        acc
        + Asc_util.Bitvec.count
            (Asc_fault.Seq_fsim.detect ?pool ?tel c ~si ~seq ~faults))
      0 tests
  in
  (* Each configuration starts from a cold trace cache; repetitions 2-3
     then run warm, which is the shape of real compaction loops (the
     same tests are re-simulated many times).  [time_best] therefore
     reports the steady-state per-call cost. *)
  let time_best f =
    Asc_fault.Seq_fsim.clear_trace_cache ();
    let best = ref infinity and result = ref 0 in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      result := f ();
      best := min !best (Unix.gettimeofday () -. t0)
    done;
    (!result, !best)
  in
  let saved = SK.current () in
  SK.set SK.Reference;
  let detected_ref, seconds_ref = time_best (fun () -> detect ()) in
  SK.set SK.Levelized;
  let detected_lv1, seconds_lv1 = time_best (fun () -> detect ()) in
  let tel = Asc_util.Telemetry.create () in
  let detected_lvn, seconds_lvn =
    if domains > 1 then begin
      let pool = Asc_util.Domain_pool.create ~tel ~domains () in
      let r = time_best (fun () -> detect ~pool ~tel ()) in
      Asc_util.Domain_pool.shutdown pool;
      r
    end
    else time_best (fun () -> detect ~tel ())
  in
  (* One drain: the snapshot holds both the pool loads and the engine
     counters of all three repetitions of the [tel]-carrying run. *)
  let snap = Asc_util.Telemetry.drain tel in
  let loads = Asc_util.Telemetry.pool_loads snap in
  let imbalance = Asc_util.Telemetry.imbalance loads in
  SK.set saved;
  let counter = Asc_util.Telemetry.counter_value snap in
  let r =
    {
      k_circuit = name;
      k_faults = Array.length faults;
      k_seq_len = len;
      k_tests = n_tests;
      k_detected_ref = detected_ref;
      k_detected_lv1 = detected_lv1;
      k_detected_lvn = detected_lvn;
      k_seconds_ref = seconds_ref;
      k_seconds_lv1 = seconds_lv1;
      k_seconds_lvn = seconds_lvn;
      k_speedup_1 = seconds_ref /. seconds_lv1;
      k_speedup_n = seconds_ref /. seconds_lvn;
      k_good_cycles = counter "good_cycles";
      k_faulty_cycles = counter "faulty_cycles";
      k_cone_gates = counter "cone_gates_evaluated";
      k_cache_hits = counter "trace_cache_hits";
      k_cache_misses = counter "trace_cache_misses";
      k_loads = loads;
      k_imbalance = imbalance;
    }
  in
  Printf.printf
    "kernel bench (%s, %d faults, %d tests x %d vectors): reference %.3fs, \
     levelized 1 domain %.3fs (%.2fx), %d domains %.3fs (%.2fx); detected \
     %d / %d / %d (%s)\n%!"
    r.k_circuit r.k_faults r.k_tests r.k_seq_len r.k_seconds_ref r.k_seconds_lv1
    r.k_speedup_1 domains r.k_seconds_lvn r.k_speedup_n r.k_detected_ref
    r.k_detected_lv1 r.k_detected_lvn
    (if r.k_detected_ref = r.k_detected_lv1 && r.k_detected_lv1 = r.k_detected_lvn
     then "identical"
     else "MISMATCH");
  Printf.printf
    "  over 3 reps: good cycles %d, faulty cycles %d, cone gates %d, trace \
     cache %d hits / %d misses\n%!"
    r.k_good_cycles r.k_faulty_cycles r.k_cone_gates r.k_cache_hits
    r.k_cache_misses;
  print_loads r.k_loads r.k_imbalance;
  r

(* --- ATPG (test-generation) phase speedup -------------------------------- *)

(* Same shape as the fault-simulation comparison, for the other parallel
   kernel: [Comb_tgen.generate] with 1 domain vs the requested pool, on the
   largest circuit of the run.  The merge contract makes the generated set
   bit-identical for any domain count, so detected-fault and test counts
   must agree exactly. *)
type atpg_result = {
  at_circuit : string;
  at_faults : int;
  at_tests_1 : int;
  at_tests_n : int;
  at_detected_1 : int;
  at_detected_n : int;
  at_seconds_1 : float;
  at_seconds_n : float;
  at_speedup : float;
  at_loads : Asc_util.Telemetry.load list; (* per-domain, N-domain run only *)
  at_imbalance : float;
}

let atpg_bench ~seed ~domains names =
  let gates name =
    Asc_netlist.Circuit.n_gates (Asc_circuits.Registry.get ~seed name)
  in
  let name =
    List.fold_left
      (fun best n -> if gates n > gates best then n else best)
      (List.hd names) names
  in
  let c = Asc_circuits.Registry.get ~seed name in
  let faults = Asc_fault.Collapse.reps (Asc_fault.Collapse.run c) in
  let generate ?pool () =
    (* Fresh RNG per run: generate's randomness must not leak between
       repetitions, or the 1-domain and N-domain runs would diverge. *)
    let rng = Asc_util.Rng.of_name ~seed (name ^ "/atpg-bench") in
    let r = Asc_atpg.Comb_tgen.generate ?pool c ~faults ~rng in
    (Asc_util.Bitvec.count r.detected, Array.length r.tests)
  in
  let time_best f =
    let best = ref infinity and result = ref (0, 0) in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      result := f ();
      best := min !best (Unix.gettimeofday () -. t0)
    done;
    (!result, !best)
  in
  let (detected_1, tests_1), seconds_1 = time_best (fun () -> generate ()) in
  let ((detected_n, tests_n), seconds_n), (loads, imbalance) =
    if domains > 1 then begin
      let tel = Asc_util.Telemetry.create () in
      let pool = Asc_util.Domain_pool.create ~tel ~domains () in
      let r = time_best (fun () -> generate ~pool ()) in
      Asc_util.Domain_pool.shutdown pool;
      (r, drain_loads (Some tel))
    end
    else (time_best (fun () -> generate ()), ([], 1.0))
  in
  let r =
    {
      at_circuit = name;
      at_faults = Array.length faults;
      at_tests_1 = tests_1;
      at_tests_n = tests_n;
      at_detected_1 = detected_1;
      at_detected_n = detected_n;
      at_seconds_1 = seconds_1;
      at_seconds_n = seconds_n;
      at_speedup = seconds_1 /. seconds_n;
      at_loads = loads;
      at_imbalance = imbalance;
    }
  in
  Printf.printf
    "atpg phase (%s, %d faults): 1 domain %.3fs, %d domains %.3fs, speedup \
     %.2fx; detected %d vs %d, |C| %d vs %d (%s)\n%!"
    r.at_circuit r.at_faults r.at_seconds_1 domains r.at_seconds_n r.at_speedup
    r.at_detected_1 r.at_detected_n r.at_tests_1 r.at_tests_n
    (if r.at_detected_1 = r.at_detected_n && r.at_tests_1 = r.at_tests_n then
       "identical"
     else "MISMATCH");
  print_loads r.at_loads r.at_imbalance;
  r

(* --- JSON summary -------------------------------------------------------- *)

let json_summary o ~domains ~timings ~fsim ~atpg ~kernel =
  let module J = Asc_util.Json in
  let loads_json loads =
    J.List
      (List.map
         (fun (l : Asc_util.Telemetry.load) ->
           J.Obj
             [
               ("domain", J.Int l.l_dom);
               ("tasks", J.Int l.l_tasks);
               ("busy_seconds", J.Float l.l_busy);
               ("utilization", J.Float l.l_util);
             ])
         loads)
  in
  let doc =
    J.Obj
      [
        ("bench", J.Str "asc");
        ("schema", J.Int 2);
        ("mode", J.Str (if o.quick then "quick" else "full"));
        ("seed", J.Int o.seed);
        ("domains", J.Int domains);
        ( "circuits",
          J.List
            (List.map
               (fun (name, dt, atpg_dt) ->
                 J.Obj
                   [
                     ("name", J.Str name);
                     ("seconds", J.Float dt);
                     ("atpg_seconds", J.Float atpg_dt);
                   ])
               timings) );
        ( "fsim",
          match fsim with
          | None -> J.Null
          | Some f ->
              J.Obj
                [
                  ("circuit", J.Str f.fs_circuit);
                  ("faults", J.Int f.fs_faults);
                  ("tests", J.Int f.fs_tests);
                  ("seq_len", J.Int f.fs_seq_len);
                  ("detected_domains_1", J.Int f.fs_detected_1);
                  ("detected_domains_n", J.Int f.fs_detected_n);
                  ("seconds_domains_1", J.Float f.fs_seconds_1);
                  ("seconds_domains_n", J.Float f.fs_seconds_n);
                  ("speedup", J.Float f.fs_speedup);
                  ("loads", loads_json f.fs_loads);
                  ("imbalance", J.Float f.fs_imbalance);
                ] );
        ( "kernel",
          match kernel with
          | None -> J.Null
          | Some k ->
              J.Obj
                [
                  ("circuit", J.Str k.k_circuit);
                  ("faults", J.Int k.k_faults);
                  ("tests", J.Int k.k_tests);
                  ("seq_len", J.Int k.k_seq_len);
                  ("detected_reference", J.Int k.k_detected_ref);
                  ("detected_levelized_1", J.Int k.k_detected_lv1);
                  ("detected_levelized_n", J.Int k.k_detected_lvn);
                  ("seconds_reference", J.Float k.k_seconds_ref);
                  ("seconds_levelized_1", J.Float k.k_seconds_lv1);
                  ("seconds_levelized_n", J.Float k.k_seconds_lvn);
                  ("speedup_domains_1", J.Float k.k_speedup_1);
                  ("speedup_domains_n", J.Float k.k_speedup_n);
                  ("good_cycles", J.Int k.k_good_cycles);
                  ("faulty_cycles", J.Int k.k_faulty_cycles);
                  ("cone_gates_evaluated", J.Int k.k_cone_gates);
                  ("trace_cache_hits", J.Int k.k_cache_hits);
                  ("trace_cache_misses", J.Int k.k_cache_misses);
                  ("loads", loads_json k.k_loads);
                  ("imbalance", J.Float k.k_imbalance);
                ] );
        ( "atpg",
          match atpg with
          | None -> J.Null
          | Some a ->
              J.Obj
                [
                  ("circuit", J.Str a.at_circuit);
                  ("faults", J.Int a.at_faults);
                  ("tests_domains_1", J.Int a.at_tests_1);
                  ("tests_domains_n", J.Int a.at_tests_n);
                  ("detected_domains_1", J.Int a.at_detected_1);
                  ("detected_domains_n", J.Int a.at_detected_n);
                  ("seconds_domains_1", J.Float a.at_seconds_1);
                  ("seconds_domains_n", J.Float a.at_seconds_n);
                  ("speedup", J.Float a.at_speedup);
                  ("loads", loads_json a.at_loads);
                  ("imbalance", J.Float a.at_imbalance);
                ] );
      ]
  in
  (match o.json with
  | Some file -> (
      try
        J.write_file file doc;
        Printf.printf "wrote %s\n%!" file
      with Sys_error msg -> Printf.eprintf "cannot write JSON summary: %s\n%!" msg)
  | None -> ());
  print_endline (J.to_string doc)

(* --- Bechamel micro-benchmarks ----------------------------------------- *)

(* One Test.make per table: each benchmark regenerates the data behind the
   corresponding table on a small circuit, so Bechamel can sample it. *)
let micro_tests () =
  let open Bechamel in
  let name = "s298" in
  let c = Asc_circuits.Registry.get name in
  let config =
    { Asc_core.Pipeline.default_config with
      t0_source = Asc_core.Pipeline.Directed (Asc_circuits.Registry.t0_budget name) }
  in
  let prepared = Asc_core.Pipeline.prepare ~config c in
  let faults = prepared.faults in
  let directed = lazy (Asc_core.Pipeline.run ~config prepared) in
  let random_cfg =
    { config with t0_source = Asc_core.Pipeline.Random_seq 1000 }
  in
  (* Table 1 and 2 come from the proposed pipeline's phases (directed T0);
     Table 3 adds the [4] baseline; Table 4 needs the final sets' length
     statistics; Table 5 is the random-T0 pipeline.  The extension table
     exercises the transition-fault simulator. *)
  [
    Test.make ~name:"table1+2: proposed pipeline (directed T0)"
      (Staged.stage (fun () -> ignore (Asc_core.Pipeline.run ~config prepared)));
    Test.make ~name:"table3: static baseline of [4]"
      (Staged.stage (fun () -> ignore (Asc_core.Baseline_static.run prepared)));
    Test.make ~name:"table4: length statistics of the final set"
      (Staged.stage (fun () ->
           ignore
             (Asc_scan.Time_model.length_stats (Lazy.force directed).final_tests)));
    Test.make ~name:"table5: proposed pipeline (random T0)"
      (Staged.stage (fun () -> ignore (Asc_core.Pipeline.run ~config:random_cfg prepared)));
    Test.make ~name:"tableA: transition-fault coverage"
      (Staged.stage (fun () ->
           let tf = Asc_tfault.Tfault.universe c in
           ignore
             (Asc_tfault.Tfault.coverage c (Lazy.force directed).final_tests ~faults:tf)));
    (* Kernels under everything above. *)
    Test.make ~name:"kernel: sequential fault simulation (62 lanes)"
      (Staged.stage
         (let si = Array.make (Asc_netlist.Circuit.n_dffs c) false in
          let rng = Asc_util.Rng.create 7 in
          let seq =
            Array.init 64 (fun _ ->
                Asc_util.Rng.bool_array rng (Asc_netlist.Circuit.n_inputs c))
          in
          fun () -> ignore (Asc_fault.Seq_fsim.detect c ~si ~seq ~faults)));
    Test.make ~name:"kernel: PODEM over the fault list"
      (Staged.stage
         (let podem = Asc_atpg.Podem.create c in
          fun () ->
            Array.iter (fun f -> ignore (Asc_atpg.Podem.run podem f)) faults));
  ]

let run_micro () =
  let open Bechamel in
  let benchmark test =
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 2.0) ~kde:(Some 100) () in
    Benchmark.all cfg [ instance ] test
  in
  let analyze results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true
        ~predictors:[| Measure.run |]
    in
    Analyze.all ols Toolkit.Instance.monotonic_clock results
  in
  List.iter
    (fun test ->
      let results = benchmark test in
      let stats = analyze results in
      Hashtbl.iter
        (fun name r ->
          match Analyze.OLS.estimates r with
          | Some [ est ] ->
              Printf.printf "%-50s %12.0f ns/run\n%!" name est
          | _ -> Printf.printf "%-50s (no estimate)\n%!" name)
        stats)
    (micro_tests ())

let () =
  let o = parse_args () in
  (match o.sim_kernel with Some k -> Asc_sim.Sim_kernel.set k | None -> ());
  if o.micro then run_micro ()
  else if o.ablations then
    Ablations.run_all ~seed:o.seed
      ?names:(if o.circuits == default_circuits then None else Some o.circuits)
      ()
  else begin
    let domains =
      match o.domains with
      | Some n -> n
      | None -> Asc_util.Domain_pool.default_domains ()
    in
    let tel = Option.map (fun _ -> Asc_util.Telemetry.create ()) o.trace in
    let pool =
      if domains > 1 then Some (Asc_util.Domain_pool.create ?tel ~domains ())
      else None
    in
    let timings = run_tables o pool tel in
    (match pool with Some p -> Asc_util.Domain_pool.shutdown p | None -> ());
    (* The trace covers the table battery, not the speedup re-runs below
       (those drain their own handles for the utilization report). *)
    (match (tel, o.trace) with
    | Some tel, Some file ->
        Asc_util.Telemetry.write_trace file (Asc_util.Telemetry.drain tel);
        Printf.printf "wrote trace to %s\n%!" file
    | _ -> ());
    (* The fault-simulation phase comparison runs whenever a domain count
       was requested explicitly — it is the per-PR perf-regression signal
       the CI quick-bench job records. *)
    let fsim, atpg =
      match o.domains with
      | Some domains ->
          ( Some (fsim_bench ~seed:o.seed ~domains o.circuits),
            Some (atpg_bench ~seed:o.seed ~domains o.circuits) )
      | None -> (None, None)
    in
    (* The kernel acceptance benchmark runs whenever a machine-readable
       summary is requested (the perf-trajectory job) or a domain count
       was given explicitly. *)
    let kernel =
      match (o.domains, o.json) with
      | Some domains, _ -> Some (kernel_bench ~seed:o.seed ~domains)
      | None, Some _ -> Some (kernel_bench ~seed:o.seed ~domains)
      | None, None -> None
    in
    json_summary o ~domains ~timings ~fsim ~atpg ~kernel
  end
