(* Ablation studies for the design choices DESIGN.md calls out.

   A. T0-source quality: the paper's central observation is that the
      *initial* test set determines how far compaction can go.  Compare
      random, PROPTEST-style directed, and STRATEGATE-style genetic T0
      end to end.
   B. Scan-out criterion: the paper's i_0 (earliest valid) versus the i_1
      alternative it discusses and rejects (Section 3.1).
   C. Transfer sequences: how much [7] adds on top of the plain [4]
      combining.
   D. Partial scan: cycles versus coverage as the chain shrinks, on the
      paper's final test sets.
   E. Multiple scan chains: how chain count rescales the comparison of
      Table 3 (scan operations get cheaper, so the proposed procedure's
      advantage shrinks).
   F. Partial scan, adapted: the procedure re-run for a 50% chain
      (Pipeline_partial) against full-scan tests merely re-used there. *)

open Asc_util
module Circuit = Asc_netlist.Circuit
module Pipeline = Asc_core.Pipeline
module Scan_test = Asc_scan.Scan_test

let config_with ~seed t0_source = { Pipeline.default_config with seed; t0_source }

(* --- A: T0 source quality ------------------------------------------------ *)

let t0_sources name =
  let budget = Asc_circuits.Registry.t0_budget name in
  [
    ("random", Pipeline.Random_seq budget);
    ("directed", Pipeline.Directed budget);
    ("genetic", Pipeline.Genetic budget);
  ]

let t0_quality ~seed names =
  let t =
    Table.create ~caption:"Ablation A: T0 source quality (same length budget)"
      [
        Table.left "circuit"; Table.left "T0 source"; Table.right "F0";
        Table.right "Fseq"; Table.right "L(Tseq)"; Table.right "added";
        Table.right "init"; Table.right "comp";
      ]
  in
  List.iter
    (fun name ->
      let c = Asc_circuits.Registry.get ~seed name in
      let prepared = Pipeline.prepare ~config:(config_with ~seed (Pipeline.Directed 1)) c in
      List.iter
        (fun (label, source) ->
          let r = Pipeline.run ~config:(config_with ~seed source) prepared in
          Table.add_row t
            [
              name; label;
              string_of_int r.f0_count;
              string_of_int (Bitvec.count r.f_seq);
              string_of_int (Scan_test.length r.tau_seq);
              string_of_int (Array.length r.added);
              string_of_int r.cycles_initial;
              string_of_int r.cycles_final;
            ])
        (t0_sources name))
    names;
  t

(* --- B: scan-out criterion (i0 vs i1) ------------------------------------ *)

let scan_out_policy ~seed names =
  let t =
    Table.create
      ~caption:"Ablation B: scan-out criterion — the paper's i0 vs the i1 alternative"
      [
        Table.left "circuit"; Table.left "criterion"; Table.right "Fseq";
        Table.right "L(Tseq)"; Table.right "init"; Table.right "comp";
      ]
  in
  List.iter
    (fun name ->
      let c = Asc_circuits.Registry.get ~seed name in
      let budget = Asc_circuits.Registry.t0_budget name in
      let base = config_with ~seed (Pipeline.Directed budget) in
      let prepared = Pipeline.prepare ~config:base c in
      List.iter
        (fun (label, policy) ->
          let r =
            Pipeline.run ~config:{ base with scan_out_policy = policy } prepared
          in
          Table.add_row t
            [
              name; label;
              string_of_int (Bitvec.count r.f_seq);
              string_of_int (Scan_test.length r.tau_seq);
              string_of_int r.cycles_initial;
              string_of_int r.cycles_final;
            ])
        [ ("i0 (earliest)", Asc_core.Phase1.Earliest);
          ("i1 (max detection)", Asc_core.Phase1.Max_detection) ])
    names;
  t

(* --- C: transfer sequences on top of [4] --------------------------------- *)

let transfer ~seed names =
  let t =
    Table.create ~caption:"Ablation C: [4] combining vs [4] + transfer sequences [7]"
      [
        Table.left "circuit"; Table.right "[4] comp"; Table.right "+transfer";
        Table.right "transfers"; Table.right "xfer cycles";
      ]
  in
  List.iter
    (fun name ->
      let c = Asc_circuits.Registry.get ~seed name in
      let prepared = Pipeline.prepare ~config:{ Pipeline.default_config with seed } c in
      let tests = Array.map Scan_test.of_pattern prepared.comb_tests in
      let rng = Rng.of_name ~seed (name ^ "/transfer") in
      let plain =
        Asc_compact.Combine.run c tests ~faults:prepared.faults ~targets:prepared.targets
      in
      let tr =
        Asc_compact.Transfer.run c tests ~faults:prepared.faults
          ~targets:prepared.targets ~rng
      in
      Table.add_row t
        [
          name;
          string_of_int (Asc_scan.Time_model.cycles_of_tests c plain.tests);
          string_of_int (Asc_scan.Time_model.cycles_of_tests c tr.tests);
          string_of_int tr.transfers;
          string_of_int tr.transfer_cycles;
        ])
    names;
  t

(* --- D: partial scan ------------------------------------------------------ *)

let partial_scan ~seed names =
  let t =
    Table.create
      ~caption:
        "Ablation D: the proposed final test set under shrinking scan chains"
      [
        Table.left "circuit"; Table.right "chain"; Table.right "scanned";
        Table.right "cycles"; Table.right "coverage";
      ]
  in
  List.iter
    (fun name ->
      let c = Asc_circuits.Registry.get ~seed name in
      let budget = Asc_circuits.Registry.t0_budget name in
      let config = config_with ~seed (Pipeline.Directed budget) in
      let prepared = Pipeline.prepare ~config c in
      let r = Pipeline.run ~config prepared in
      List.iter
        (fun ratio ->
          let chain = Asc_scan.Partial.by_fanout c ~ratio in
          let cov =
            Asc_scan.Partial.coverage c chain r.final_tests ~faults:prepared.faults
          in
          Table.add_row t
            [
              name;
              Printf.sprintf "%.0f%%" (100.0 *. ratio);
              string_of_int (Asc_scan.Partial.n_scanned chain);
              string_of_int (Asc_scan.Partial.cycles c chain r.final_tests);
              Printf.sprintf "%d/%d"
                (Bitvec.count (Bitvec.inter cov prepared.targets))
                (Bitvec.count prepared.targets);
            ])
        [ 1.0; 0.75; 0.5; 0.25 ])
    names;
  t

(* --- E: multiple scan chains ---------------------------------------------- *)

let multi_chain ~seed names =
  let t =
    Table.create
      ~caption:
        "Ablation E: proposed vs [4] under multiple scan chains (cycles)"
      ~groups:[ ("", 1); ("1 chain", 2); ("4 chains", 2); ("16 chains", 2) ]
      [
        Table.left "circuit"; Table.right "[4]"; Table.right "prop";
        Table.right "[4]"; Table.right "prop"; Table.right "[4]";
        Table.right "prop";
      ]
  in
  List.iter
    (fun name ->
      let c = Asc_circuits.Registry.get ~seed name in
      let budget = Asc_circuits.Registry.t0_budget name in
      let config = config_with ~seed (Pipeline.Directed budget) in
      let prepared = Pipeline.prepare ~config c in
      let r = Pipeline.run ~config prepared in
      let b = Asc_core.Baseline_static.run prepared in
      let n_sv = Circuit.n_dffs c in
      let cycles chains tests =
        Asc_scan.Time_model.cycles_multi_chain ~n_sv ~chains
          (Array.to_list (Array.map Scan_test.length tests))
      in
      Table.add_row t
        [
          name;
          string_of_int (cycles 1 b.final_tests);
          string_of_int (cycles 1 r.final_tests);
          string_of_int (cycles 4 b.final_tests);
          string_of_int (cycles 4 r.final_tests);
          string_of_int (cycles 16 b.final_tests);
          string_of_int (cycles 16 r.final_tests);
        ])
    names;
  t

(* --- F: the procedure adapted to partial scan ----------------------------- *)

let partial_adapted ~seed names =
  let t =
    Table.create
      ~caption:
        "Ablation F: partial scan at 50% — full-scan tests reused vs the procedure \
         adapted to the chain"
      ~groups:[ ("", 1); ("reused", 2); ("adapted", 2) ]
      [
        Table.left "circuit"; Table.right "cycles"; Table.right "coverage";
        Table.right "cycles"; Table.right "coverage";
      ]
  in
  List.iter
    (fun name ->
      let c = Asc_circuits.Registry.get ~seed name in
      let budget = Asc_circuits.Registry.t0_budget name in
      let config = config_with ~seed (Pipeline.Directed budget) in
      let prepared = Pipeline.prepare ~config c in
      let full = Pipeline.run ~config prepared in
      let chain = Asc_scan.Partial.by_fanout c ~ratio:0.5 in
      let reused_cov =
        Bitvec.count
          (Bitvec.inter
             (Asc_scan.Partial.coverage c chain full.final_tests ~faults:prepared.faults)
             prepared.targets)
      in
      let pconfig =
        { Asc_core.Pipeline_partial.default_config with
          seed; t0_source = Pipeline.Directed budget }
      in
      let adapted = Asc_core.Pipeline_partial.run ~config:pconfig prepared ~chain in
      let n_targets = Bitvec.count prepared.targets in
      Table.add_row t
        [
          name;
          string_of_int (Asc_scan.Partial.cycles c chain full.final_tests);
          Printf.sprintf "%d/%d" reused_cov n_targets;
          string_of_int adapted.cycles_final;
          Printf.sprintf "%d/%d" (Bitvec.count adapted.final_detected) n_targets;
        ])
    names;
  t

let default_circuits = [ "s298"; "s344"; "s382"; "s820"; "b03"; "b10" ]

let run_all ?(seed = 1) ?(names = default_circuits) () =
  List.iter
    (fun table -> print_string (Table.render table ^ "\n"))
    [
      t0_quality ~seed names;
      scan_out_policy ~seed names;
      transfer ~seed names;
      partial_scan ~seed names;
      multi_chain ~seed names;
      partial_adapted ~seed names;
    ]
