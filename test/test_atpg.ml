(* Tests for Asc_atpg: SCOAP, cubes, PODEM soundness and completeness on
   exhaustively-checkable circuits, combinational test-set generation, the
   sequence generators. *)

open Asc_util
module Circuit = Asc_netlist.Circuit
module Gate = Asc_netlist.Gate
module Fault = Asc_fault.Fault
module Collapse = Asc_fault.Collapse
module Podem = Asc_atpg.Podem

let qtest = QCheck_alcotest.to_alcotest

let small_circuit ?(pis = 4) ?(ffs = 4) ?(gates = 40) seed =
  Asc_circuits.Profile.make "atpg" pis 3 ffs gates ~t0_budget:10
  |> Asc_circuits.Generator.generate ~seed

(* Ground-truth detectability by exhaustive enumeration of all PI+state
   assignments (combinational, full-scan semantics). *)
let exhaustively_detectable c fault =
  let n_pis = Circuit.n_inputs c and n_ffs = Circuit.n_dffs c in
  let total = n_pis + n_ffs in
  assert (total <= 16);
  let patterns =
    Array.init (1 lsl total) (fun k ->
        let bit i = (k lsr i) land 1 = 1 in
        {
          Asc_sim.Pattern.pis = Array.init n_pis bit;
          state = Array.init n_ffs (fun i -> bit (n_pis + i));
        })
  in
  not
    (Bitvec.is_empty (Asc_fault.Comb_fsim.patterns_detecting c ~patterns ~fault))

(* --- Scoap ------------------------------------------------------------ *)

let test_scoap_basic () =
  let b = Asc_netlist.Builder.create "scoap" in
  let a = Asc_netlist.Builder.add_input b "a" in
  let c_in = Asc_netlist.Builder.add_input b "c" in
  let g1 = Asc_netlist.Builder.add_gate b Gate.And "g1" [ a; c_in ] in
  let g2 = Asc_netlist.Builder.add_gate b Gate.And "g2" [ g1; a ] in
  Asc_netlist.Builder.add_output b g2;
  let c = Asc_netlist.Builder.finalize b in
  let s = Asc_atpg.Scoap.compute c in
  (* Setting an AND output to 1 is harder than to 0. *)
  Alcotest.(check bool) "cc1 > cc0 for and" true
    (Asc_atpg.Scoap.cc s g2 true > Asc_atpg.Scoap.cc s g2 false);
  (* Deeper gate has larger cc1. *)
  Alcotest.(check bool) "depth grows cc1" true
    (Asc_atpg.Scoap.cc s g2 true > Asc_atpg.Scoap.cc s g1 true);
  Alcotest.(check int) "po obs depth" 0 (Asc_atpg.Scoap.obs_depth s g2)

(* --- Cube -------------------------------------------------------------- *)

let test_cube_fill () =
  let cube = Asc_atpg.Cube.create ~n_pis:3 ~n_ffs:2 in
  cube.pis.(0) <- Asc_atpg.Cube.One;
  cube.state.(1) <- Asc_atpg.Cube.Zero;
  Alcotest.(check int) "specified count" 2 (Asc_atpg.Cube.specified_count cube);
  let rng = Rng.create 1 in
  let p = Asc_atpg.Cube.fill rng cube in
  Alcotest.(check bool) "specified pi preserved" true p.pis.(0);
  Alcotest.(check bool) "specified state preserved" false p.state.(1)

(* --- PODEM ------------------------------------------------------------- *)

(* Soundness: every Test is verified by fault simulation.  Completeness:
   every Redundant claim is confirmed by exhaustive enumeration. *)
let prop_podem_sound_and_complete =
  QCheck.Test.make ~name:"PODEM sound (tests) and complete (redundancy)" ~count:10
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c = small_circuit ~pis:4 ~ffs:4 ~gates:30 seed in
      let faults = Collapse.reps (Collapse.run c) in
      let podem = Podem.create c in
      let rng = Rng.create (seed + 1) in
      let ok = ref true in
      Array.iteri
        (fun fi f ->
          match Podem.run ~backtrack_limit:1000 podem f with
          | Podem.Test cube ->
              let p = Asc_atpg.Cube.fill rng cube in
              let det =
                Asc_fault.Comb_fsim.detect_union c ~patterns:[| p |] ~faults
              in
              if not (Bitvec.get det fi) then ok := false
          | Podem.Redundant -> if exhaustively_detectable c f then ok := false
          | Podem.Aborted -> ())
        faults;
      !ok)

let test_podem_fixed_assignment () =
  (* With the state fixed adversarially, a state-dependent fault becomes
     untestable; PODEM must respect the fixed pins. *)
  let b = Asc_netlist.Builder.create "fixed" in
  let a = Asc_netlist.Builder.add_input b "a" in
  let q = Asc_netlist.Builder.add_dff b "q" in
  let g = Asc_netlist.Builder.add_gate b Gate.And "g" [ a; q ] in
  Asc_netlist.Builder.set_dff_input b q g;
  Asc_netlist.Builder.add_output b g;
  let c = Asc_netlist.Builder.finalize b in
  let podem = Podem.create c in
  (* a stuck-at-0: needs a = 1 and q = 1 to excite-and-propagate. *)
  let f = Fault.output a false in
  (match Podem.run podem f with
  | Podem.Test cube ->
      Alcotest.(check bool) "state assigned 1" true (cube.state.(0) = Asc_atpg.Cube.One)
  | _ -> Alcotest.fail "expected a test");
  match Podem.run ~fixed:[ (q, false) ] podem f with
  | Podem.Redundant -> ()
  | Podem.Test _ -> Alcotest.fail "test should be impossible with q fixed to 0"
  | Podem.Aborted -> Alcotest.fail "tiny search should not abort"

let test_podem_dff_pin_fault () =
  (* D-pin faults are detected via the captured value. *)
  let b = Asc_netlist.Builder.create "dpin" in
  let a = Asc_netlist.Builder.add_input b "a" in
  let q = Asc_netlist.Builder.add_dff b "q" in
  Asc_netlist.Builder.set_dff_input b q a;
  let g = Asc_netlist.Builder.add_gate b Gate.Buf "g" [ q ] in
  Asc_netlist.Builder.add_output b g;
  let c = Asc_netlist.Builder.finalize b in
  let podem = Podem.create c in
  match Podem.run podem (Fault.input q 0 true) with
  | Podem.Test cube ->
      (* Excitation requires a = 0. *)
      Alcotest.(check bool) "a=0" true (cube.pis.(0) = Asc_atpg.Cube.Zero)
  | _ -> Alcotest.fail "expected a test"

(* --- Combinational test-set generation --------------------------------- *)

let prop_comb_tgen_complete =
  QCheck.Test.make ~name:"Comb_tgen covers every detectable fault" ~count:6
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c = small_circuit ~pis:4 ~ffs:4 ~gates:35 seed in
      let faults = Collapse.reps (Collapse.run c) in
      let rng = Rng.create (seed + 2) in
      let r = Asc_atpg.Comb_tgen.generate c ~faults ~rng in
      (* Classification is a partition modulo aborts. *)
      let classified =
        Bitvec.count (Bitvec.union r.detected (Bitvec.union r.redundant r.aborted))
      in
      if classified <> Array.length faults then false
      else begin
        (* detected/redundant must be disjoint, and the kept tests must
           reproduce the recorded coverage. *)
        Bitvec.is_empty (Bitvec.inter r.detected r.redundant)
        &&
        let cov = Asc_fault.Comb_fsim.detect_union c ~patterns:r.tests ~faults in
        Bitvec.equal cov r.detected
      end)

(* Exhaustive oracle for the domain-parallel PODEM phase, on circuits
   small enough (<= 16 PIs+FFs) to enumerate every input assignment:
   every fault the parallel generator covers is confirmed by a kept
   pattern through the independent Comb_fsim.patterns_detecting path, and
   every fault it proves redundant is exhaustively undetectable. *)
let prop_parallel_podem_oracle =
  QCheck.Test.make ~name:"parallel Comb_tgen matches the exhaustive oracle" ~count:5
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c = small_circuit ~pis:4 ~ffs:4 ~gates:35 seed in
      assert (Circuit.n_inputs c + Circuit.n_dffs c <= 16);
      let faults = Collapse.reps (Collapse.run c) in
      let rng = Rng.create (seed + 3) in
      let pool = Asc_util.Domain_pool.create ~domains:2 () in
      Fun.protect
        ~finally:(fun () -> Asc_util.Domain_pool.shutdown pool)
        (fun () ->
          let r = Asc_atpg.Comb_tgen.generate ~pool c ~faults ~rng in
          let ok = ref true in
          Array.iteri
            (fun fi f ->
              if Bitvec.get r.redundant fi then begin
                if exhaustively_detectable c f then ok := false
              end
              else if Bitvec.get r.detected fi then begin
                (* An emitted pattern must detect the fault, per the
                   independent single-fault oracle. *)
                let witnesses =
                  Asc_fault.Comb_fsim.patterns_detecting c ~patterns:r.tests ~fault:f
                in
                if Bitvec.is_empty witnesses then ok := false
              end)
            faults;
          !ok))

let test_comb_tgen_s27_full_coverage () =
  let c = Asc_circuits.S27.circuit () in
  let faults = Collapse.reps (Collapse.run c) in
  let rng = Rng.create 11 in
  let r = Asc_atpg.Comb_tgen.generate c ~faults ~rng in
  Alcotest.(check int) "full coverage" 32 (Bitvec.count r.detected);
  Alcotest.(check int) "no redundant" 0 (Bitvec.count r.redundant);
  Alcotest.(check int) "no aborted" 0 (Bitvec.count r.aborted);
  (* Compaction keeps the set small. *)
  Alcotest.(check bool) "compact" true (Array.length r.tests <= 12)

(* --- Sequence generators ------------------------------------------------ *)

let test_random_tgen () =
  let rng = Rng.create 3 in
  let seq = Asc_atpg.Random_tgen.generate rng ~n_pis:5 ~len:100 in
  Alcotest.(check int) "length" 100 (Array.length seq);
  Array.iter (fun v -> Alcotest.(check int) "arity" 5 (Array.length v)) seq;
  let start = Array.make 5 false in
  let walk = Asc_atpg.Random_tgen.walk rng ~n_pis:5 ~len:50 ~flip:0.0 ~start in
  Alcotest.(check bool) "flip 0 holds the vector" true
    (Array.for_all (fun v -> v = start) walk)

let test_seq_tgen_consistency () =
  let c = Asc_circuits.Registry.get "s298" in
  let faults = Collapse.reps (Collapse.run c) in
  let rng = Rng.create 4 in
  let cfg = { Asc_atpg.Seq_tgen.default_config with budget = 120 } in
  let r = Asc_atpg.Seq_tgen.generate ~config:cfg c ~faults ~rng in
  Alcotest.(check bool) "non-empty" true (Array.length r.seq > 0);
  Alcotest.(check bool) "within budget" true (Array.length r.seq <= 120);
  (* The recorded coverage matches a one-shot no-scan simulation. *)
  let batch = Asc_fault.Seq_fsim.detect_no_scan c ~seq:r.seq ~faults in
  Alcotest.(check bool) "coverage consistent" true (Bitvec.equal r.detected batch);
  Alcotest.(check bool) "detects a majority" true
    (Bitvec.count r.detected * 2 > Array.length faults)

let suite =
  [
    ( "atpg",
      [
        Alcotest.test_case "scoap basics" `Quick test_scoap_basic;
        Alcotest.test_case "cube fill" `Quick test_cube_fill;
        qtest prop_podem_sound_and_complete;
        Alcotest.test_case "podem fixed pins" `Quick test_podem_fixed_assignment;
        Alcotest.test_case "podem dff pin fault" `Quick test_podem_dff_pin_fault;
        qtest prop_comb_tgen_complete;
        qtest prop_parallel_podem_oracle;
        Alcotest.test_case "comb_tgen s27" `Quick test_comb_tgen_s27_full_coverage;
        Alcotest.test_case "random_tgen" `Quick test_random_tgen;
        Alcotest.test_case "seq_tgen consistency" `Quick test_seq_tgen_consistency;
      ] );
  ]
