(* Exhaustive truth-table checks: every gate kind, every input combination
   (arities 2 and 3 for the n-ary kinds), in the scalar reference, the
   2-valued engine, the 3-valued engine, and PODEM's internal evaluator's
   observable behaviour (via engine agreement). *)

open Asc_util
module Gate = Asc_netlist.Gate
module Builder = Asc_netlist.Builder

let kinds_nary = [ Gate.And; Gate.Nand; Gate.Or; Gate.Nor; Gate.Xor; Gate.Xnor ]

let reference kind ins =
  match (kind : Gate.kind) with
  | Gate.And -> List.for_all Fun.id ins
  | Gate.Nand -> not (List.for_all Fun.id ins)
  | Gate.Or -> List.exists Fun.id ins
  | Gate.Nor -> not (List.exists Fun.id ins)
  | Gate.Xor -> List.fold_left ( <> ) false ins
  | Gate.Xnor -> not (List.fold_left ( <> ) false ins)
  | Gate.Not -> not (List.hd ins)
  | Gate.Buf -> List.hd ins
  | Gate.Const0 -> false
  | Gate.Const1 -> true
  | Gate.Input | Gate.Dff -> assert false

let circuit_for kind arity =
  let b = Builder.create "tt" in
  let pis = List.init arity (fun i -> Builder.add_input b (Printf.sprintf "i%d" i)) in
  let g = Builder.add_gate b kind "g" pis in
  Builder.add_output b g;
  Builder.finalize b

let exhaustive_case kind arity () =
  let c = circuit_for kind arity in
  let e2 = Asc_sim.Engine2.create c [] in
  let e3 = Asc_sim.Engine3.create c [] in
  for combo = 0 to (1 lsl arity) - 1 do
    let ins = List.init arity (fun i -> (combo lsr i) land 1 = 1) in
    let expected = reference kind ins in
    (* Scalar reference simulator. *)
    let v = Asc_sim.Naive.eval_comb c ~pis:(Array.of_list ins) ~state:[||] in
    Alcotest.(check bool)
      (Printf.sprintf "%s/%d naive %d" (Gate.to_string kind) arity combo)
      expected
      (Asc_sim.Naive.outputs_of c v).(0);
    (* 2-valued engine. *)
    Asc_sim.Engine2.eval e2 ~pi_words:(Array.of_list (List.map Word.splat ins));
    Alcotest.(check int)
      (Printf.sprintf "%s/%d engine2 %d" (Gate.to_string kind) arity combo)
      (Word.splat expected)
      (Asc_sim.Engine2.po_word e2 0);
    (* 3-valued engine with binary inputs. *)
    Asc_sim.Engine3.eval_binary e3 ~pi_words:(Array.of_list (List.map Word.splat ins));
    let z, o = Asc_sim.Engine3.po_word e3 0 in
    Alcotest.(check int)
      (Printf.sprintf "%s/%d engine3 one %d" (Gate.to_string kind) arity combo)
      (Word.splat expected) o;
    Alcotest.(check int)
      (Printf.sprintf "%s/%d engine3 zero %d" (Gate.to_string kind) arity combo)
      (Word.splat (not expected))
      z
  done

(* 3-valued exhaustive for arity 2 over {0,1,X}^2: the engine output must
   equal the naive 3-valued evaluator's. *)
let exhaustive3_case kind () =
  let c = circuit_for kind 2 in
  let e3 = Asc_sim.Engine3.create c [] in
  let values = [ Some false; Some true; None ] in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let expected = Asc_sim.Naive.eval_gate3 kind [ a; b ] in
          let word_of = function
            | Some true -> (0, Word.mask)
            | Some false -> (Word.mask, 0)
            | None -> (0, 0)
          in
          let az, ao = word_of a and bz, bo = word_of b in
          Asc_sim.Engine3.eval e3 ~pi_z:[| az; bz |] ~pi_o:[| ao; bo |];
          let z, o = Asc_sim.Engine3.po_word e3 0 in
          let got =
            if o = Word.mask && z = 0 then Some true
            else if z = Word.mask && o = 0 then Some false
            else if z = 0 && o = 0 then None
            else Alcotest.fail "mixed lanes on uniform input"
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s 3v" (Gate.to_string kind))
            true (got = expected))
        values)
    values

let cases =
  List.concat_map
    (fun kind ->
      [
        Alcotest.test_case
          (Printf.sprintf "%s arity 2 exhaustive" (Gate.to_string kind))
          `Quick (exhaustive_case kind 2);
        Alcotest.test_case
          (Printf.sprintf "%s arity 3 exhaustive" (Gate.to_string kind))
          `Quick (exhaustive_case kind 3);
        Alcotest.test_case
          (Printf.sprintf "%s 3-valued exhaustive" (Gate.to_string kind))
          `Quick (exhaustive3_case kind);
      ])
    kinds_nary

let unary_cases =
  [
    Alcotest.test_case "NOT exhaustive" `Quick (fun () ->
        let c = circuit_for Gate.Not 1 in
        List.iter
          (fun v ->
            let r = Asc_sim.Naive.eval_comb c ~pis:[| v |] ~state:[||] in
            Alcotest.(check bool) "not" (not v) (Asc_sim.Naive.outputs_of c r).(0))
          [ true; false ]);
    Alcotest.test_case "BUF exhaustive" `Quick (fun () ->
        let c = circuit_for Gate.Buf 1 in
        List.iter
          (fun v ->
            let r = Asc_sim.Naive.eval_comb c ~pis:[| v |] ~state:[||] in
            Alcotest.(check bool) "buf" v (Asc_sim.Naive.outputs_of c r).(0))
          [ true; false ]);
  ]

let suite = [ ("truth-tables", cases @ unary_cases) ]
