(* Additional deterministic edge coverage: 3-valued source injection, the
   transition-fault DFF launch path, registry/profile metadata. *)

open Asc_util
module Gate = Asc_netlist.Gate
module Builder = Asc_netlist.Builder
module Circuit = Asc_netlist.Circuit
module Scan_test = Asc_scan.Scan_test

(* A stuck PI in selected lanes of the 3-valued engine. *)
let test_engine3_source_override () =
  let b = Builder.create "src3" in
  let a = Builder.add_input b "a" in
  let g = Builder.add_gate b Gate.Not "g" [ a ] in
  Builder.add_output b g;
  let c = Builder.finalize b in
  let lanes = 0b110 in
  let e =
    Asc_sim.Engine3.create c
      [ Asc_sim.Override.output ~gate:a ~stuck:true ~lanes ]
  in
  (* Drive a = 0 everywhere; overridden lanes see 1, so NOT a = 0 there. *)
  Asc_sim.Engine3.eval_binary e ~pi_words:[| 0 |];
  let z, o = Asc_sim.Engine3.po_word e 0 in
  Alcotest.(check int) "zero lanes" lanes (z land 0b111);
  Alcotest.(check int) "one lanes" (0b001 land Word.mask) (o land 0b111)

(* Slow-to-rise on a flip-flop output: the launch comes from the state
   update, not from a PI change. *)
let test_tfault_dff_launch () =
  let b = Builder.create "dfftf" in
  let d = Builder.add_input b "d" in
  let q = Builder.add_dff b "q" in
  Builder.set_dff_input b q d;
  let out = Builder.add_gate b Gate.Buf "out" [ q ] in
  Builder.add_output b out;
  let c = Builder.finalize b in
  let str_q = { Asc_tfault.Tfault.gate = q; rising = true } in
  let stf_q = { Asc_tfault.Tfault.gate = q; rising = false } in
  (* Scan in q = 0; d = 1 at cycle 0 so q rises at cycle 1: a slow-to-rise
     q shows 0 at cycle 1 while the good machine shows 1. *)
  let test = Scan_test.create ~si:[| false |] ~seq:[| [| true |]; [| false |] |] in
  let det = Asc_tfault.Tfault.detect c test ~faults:[| str_q; stf_q |] in
  Alcotest.(check bool) "slow-to-rise q detected" true (Bitvec.get det 0);
  (* A falling launch (q: 1 -> 0) with the mirrored test. *)
  let test_fall = Scan_test.create ~si:[| true |] ~seq:[| [| false |]; [| true |] |] in
  let det_fall = Asc_tfault.Tfault.detect c test_fall ~faults:[| str_q; stf_q |] in
  Alcotest.(check bool) "slow-to-fall q detected" true (Bitvec.get det_fall 1)

let test_registry_metadata () =
  Alcotest.(check int) "s27 default budget" 50 (Asc_circuits.Registry.t0_budget "s27");
  Alcotest.(check int) "profile budget" 120 (Asc_circuits.Registry.t0_budget "s298");
  (* Only s35932 is a scaled stand-in. *)
  List.iter
    (fun (p : Asc_circuits.Profile.t) ->
      Alcotest.(check bool) (p.name ^ " scaled flag") (p.name = "s35932") p.scaled)
    Asc_circuits.Profile.all;
  (* init_frac models the paper's hard circuits. *)
  List.iter
    (fun name ->
      match Asc_circuits.Profile.find name with
      | Some p -> Alcotest.(check bool) (name ^ " is hard") true (p.init_frac < 0.5)
      | None -> Alcotest.fail "missing profile")
    [ "s382"; "s400"; "s526"; "b09" ]

(* Scan-test detection distributes over test-set coverage. *)
let test_coverage_is_union () =
  let c = Asc_circuits.S27.circuit () in
  let faults = Asc_fault.Collapse.reps (Asc_fault.Collapse.run c) in
  let rng = Rng.create 4 in
  let mk () =
    Scan_test.create ~si:(Rng.bool_array rng 3)
      ~seq:(Array.init 2 (fun _ -> Rng.bool_array rng 4))
  in
  let t1 = mk () and t2 = mk () and t3 = mk () in
  let union =
    Bitvec.union
      (Scan_test.detect c t1 ~faults)
      (Bitvec.union (Scan_test.detect c t2 ~faults) (Scan_test.detect c t3 ~faults))
  in
  Alcotest.(check bool) "coverage = union of detections" true
    (Bitvec.equal union (Asc_scan.Tset.coverage c [| t1; t2; t3 |] ~faults))

let suite =
  [
    ( "more-edge",
      [
        Alcotest.test_case "engine3 source override" `Quick test_engine3_source_override;
        Alcotest.test_case "tfault dff launch" `Quick test_tfault_dff_launch;
        Alcotest.test_case "registry metadata" `Quick test_registry_metadata;
        Alcotest.test_case "coverage is union" `Quick test_coverage_is_union;
      ] );
  ]
