(* Malformed-`.bench` corpus: every [parse_fail] branch of Bench_io fires,
   with the right line number, and the hardened rejections (duplicate
   definitions, combinational self-loops) do too. *)

module Bench_io = Asc_netlist.Bench_io
module Circuit = Asc_netlist.Circuit

let parse text = Bench_io.parse_string ~name:"corpus" text

(* Each corpus entry: a label, the text, the line the error must name, and
   a substring the message must contain. *)
let corpus =
  [
    ("empty argument", "INPUT(a)\ng = AND(a, )\n", 2, "empty argument");
    ("bad character in argument", "INPUT(a)\ng = AND(a, b c)\n", 2, "bad character");
    ("missing open paren", "INPUT a\n", 1, "expected '('");
    ("missing close paren", "INPUT(a\n", 1, "expected ')'");
    ("unknown gate kind", "INPUT(a)\ng = FROB(a)\n", 2, "unknown gate kind");
    (* INPUT on the right of '=' is a declaration, not a gate kind. *)
    ("input as gate kind", "g = INPUT(a)\n", 1, "unknown gate kind");
    ("missing signal name", "INPUT(a)\n = AND(a, a)\n", 2, "missing signal name");
    ("missing signal in declaration", "INPUT()\n", 1, "missing signal");
    ("unknown declaration", "WIBBLE(a)\n", 1, "unknown declaration");
    ("duplicate input", "INPUT(a)\nINPUT(a)\n", 2, "duplicate definition");
    ("duplicate gate", "INPUT(a)\ng = NOT(a)\ng = BUF(a)\n", 3, "duplicate definition");
    ("input redefined as gate", "INPUT(a)\na = NOT(a)\n", 2, "duplicate definition");
    ("undefined signal", "INPUT(a)\nOUTPUT(z)\ng = AND(a, b)\n", 2, "undefined signal");
    ("illegal arity", "INPUT(a)\nINPUT(b)\ng = NOT(a, b)\n", 3, "illegal arity");
    ("self-loop on NOT", "INPUT(a)\ng = NOT(g)\nOUTPUT(g)\n", 2, "self-loop");
    ( "self-loop on AND",
      "INPUT(a)\ng = AND(a, g)\nOUTPUT(g)\n",
      2,
      "combinational self-loop" );
  ]

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_corpus () =
  List.iter
    (fun (label, text, want_line, want_msg) ->
      match parse text with
      | _ -> Alcotest.failf "%s: expected Parse_error" label
      | exception Bench_io.Parse_error { line; message } ->
          Alcotest.(check int) (label ^ ": line") want_line line;
          Alcotest.(check bool)
            (Printf.sprintf "%s: %S mentions %S" label message want_msg)
            true
            (contains ~needle:want_msg message))
    corpus

(* The positive counterpart of the self-loop rejection: a DFF feeding
   itself is a legal one-bit state machine. *)
let test_dff_self_loop_legal () =
  let c = parse "INPUT(a)\nq = DFF(q)\no = AND(a, q)\nOUTPUT(o)\n" in
  Alcotest.(check int) "one flip-flop" 1 (Circuit.n_dffs c);
  Alcotest.(check int) "one input" 1 (Circuit.n_inputs c)

(* Rejections must not depend on statement order: a self-loop is caught
   even when other statements reference the gate first. *)
let test_self_loop_late () =
  match parse "INPUT(a)\nOUTPUT(z)\nz = BUF(g)\ng = OR(a, g)\n" with
  | _ -> Alcotest.fail "expected Parse_error"
  | exception Bench_io.Parse_error { line; _ } ->
      Alcotest.(check int) "reported on the defining line" 4 line

let suite =
  [
    ( "bench-corpus",
      [
        Alcotest.test_case "malformed inputs are rejected with line numbers" `Quick
          test_corpus;
        Alcotest.test_case "DFF self-loop stays legal" `Quick test_dff_self_loop_legal;
        Alcotest.test_case "self-loop caught regardless of order" `Quick
          test_self_loop_late;
      ] );
  ]
