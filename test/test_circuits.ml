(* Tests for Asc_circuits: profiles, the synthetic generator's guarantees,
   registry memoisation. *)

module Circuit = Asc_netlist.Circuit
module Gate = Asc_netlist.Gate
module Profile = Asc_circuits.Profile
module Generator = Asc_circuits.Generator

let qtest = QCheck_alcotest.to_alcotest

let test_profiles_cover_paper () =
  (* All 19 circuits of the paper's tables. *)
  Alcotest.(check int) "circuit count" 19 (List.length Profile.all);
  List.iter
    (fun name ->
      Alcotest.(check bool) name true (Profile.find name <> None))
    [ "s298"; "s344"; "s382"; "s400"; "s526"; "s641"; "s820"; "s1423"; "s1488";
      "s5378"; "s35932"; "b01"; "b02"; "b03"; "b04"; "b06"; "b09"; "b10"; "b11" ]

let test_interface_counts () =
  List.iter
    (fun (p : Profile.t) ->
      let c = Generator.generate p in
      Alcotest.(check int) (p.name ^ " pis") p.n_pis (Circuit.n_inputs c);
      Alcotest.(check int) (p.name ^ " ffs") p.n_ffs (Circuit.n_dffs c);
      (* POs may gain a rare splice fallback; never lose any. *)
      Alcotest.(check bool) (p.name ^ " pos") true (Circuit.n_outputs c >= p.n_pos))
    (List.filter (fun (p : Profile.t) -> p.n_gates <= 700) Profile.all)

let test_determinism () =
  let p = Option.get (Profile.find "s298") in
  let c1 = Generator.generate ~seed:5 p and c2 = Generator.generate ~seed:5 p in
  Alcotest.(check string) "same netlist" (Asc_netlist.Bench_io.to_string c1)
    (Asc_netlist.Bench_io.to_string c2);
  let c3 = Generator.generate ~seed:6 p in
  Alcotest.(check bool) "different seed differs" true
    (Asc_netlist.Bench_io.to_string c1 <> Asc_netlist.Bench_io.to_string c3)

(* Every signal reaches an observation point (PO or DFF next-state). *)
let observable_everywhere c =
  let n = Circuit.n_gates c in
  let marked = Array.make n false in
  let rec mark g =
    if not marked.(g) then begin
      marked.(g) <- true;
      Array.iter mark (Circuit.fanins c g)
    end
  in
  Array.iter mark (Circuit.outputs c);
  Array.iter (fun d -> mark (Circuit.dff_input c d)) (Circuit.dffs c);
  Array.for_all Fun.id marked

let prop_generator_connectivity =
  QCheck.Test.make ~name:"generated circuits are fully observable" ~count:25
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let p = Profile.make "conn" 5 4 8 80 ~t0_budget:10 in
      observable_everywhere (Generator.generate ~seed p))

(* The reset structure makes the state fully binary after the arming
   sequence: holding the right input pattern flushes all X. *)
let test_reset_initialises () =
  let p = Option.get (Profile.find "s298") in
  let c = Generator.generate p in
  let e = Asc_sim.Engine3.create c [] in
  Asc_sim.Engine3.set_state_x e;
  let n_pis = Circuit.n_inputs c in
  (* Try all input patterns held for enough cycles; at least one must
     produce a fully binary state. *)
  let initialises v =
    Asc_sim.Engine3.set_state_x e;
    let pi_words = Array.init n_pis (fun i -> Asc_util.Word.splat ((v lsr i) land 1 = 1)) in
    for _ = 1 to Circuit.n_dffs c + 4 do
      Asc_sim.Engine3.step_binary e ~pi_words
    done;
    let binary = ref true in
    for i = 0 to Circuit.n_dffs c - 1 do
      let z, o = Asc_sim.Engine3.state_word e i in
      if (z lor o) land 1 = 0 then binary := false
    done;
    !binary
  in
  let any = ref false in
  for v = 0 to (1 lsl n_pis) - 1 do
    if initialises v then any := true
  done;
  Alcotest.(check bool) "some held pattern initialises" true !any

let test_registry () =
  let c1 = Asc_circuits.Registry.get "s298" in
  let c2 = Asc_circuits.Registry.get "s298" in
  Alcotest.(check bool) "memoised" true (c1 == c2);
  Alcotest.(check bool) "s27 present" true (Asc_circuits.Registry.mem "s27");
  Alcotest.(check bool) "unknown absent" false (Asc_circuits.Registry.mem "sXXX");
  Alcotest.check_raises "unknown raises"
    (Invalid_argument "Registry.get: unknown circuit \"sXXX\"") (fun () ->
      ignore (Asc_circuits.Registry.get "sXXX"))

let suite =
  [
    ( "circuits",
      [
        Alcotest.test_case "profiles cover the paper" `Quick test_profiles_cover_paper;
        Alcotest.test_case "interface counts" `Quick test_interface_counts;
        Alcotest.test_case "determinism" `Quick test_determinism;
        qtest prop_generator_connectivity;
        Alcotest.test_case "reset initialises" `Quick test_reset_initialises;
        Alcotest.test_case "registry" `Quick test_registry;
      ] );
  ]
