(* Tests for the fault-injection layer (Asc_util.Chaos) and the
   self-healing persistence built on top of it: schedule parsing,
   occurrence semantics, stray-temp-file cleanup, retry-with-backoff,
   rotation + fallback recovery, pool survival after a poisoned task, and
   the headline crash-recovery soak — kill a pipeline at every checkpoint
   write occurrence, resume from the latest valid snapshot, and get a
   result bit-identical to the uninterrupted run. *)

open Asc_util
module Pipeline = Asc_core.Pipeline
module Checkpoint = Asc_core.Checkpoint
module Scan_test = Asc_scan.Scan_test

(* --- Schedule syntax --------------------------------------------------- *)

let test_parse_roundtrip () =
  let rules =
    [
      { Chaos.point = Chaos.checkpoint_output; occurrence = 2; action = Chaos.Kill };
      { Chaos.point = Chaos.pool_task; occurrence = 5; action = Chaos.Poison };
      { Chaos.point = Chaos.checkpoint_rename; occurrence = 1; action = Chaos.Fail };
    ]
  in
  let text = Chaos.to_string rules in
  Alcotest.(check string) "rendering"
    "checkpoint.output@2=kill,pool.task@5=poison,checkpoint.rename@1=fail" text;
  (match Chaos.parse text with
  | Ok rules' -> Alcotest.(check bool) "roundtrip" true (rules = rules')
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (* Whitespace and stray commas are tolerated. *)
  match Chaos.parse " checkpoint.open@1=fail , ,pool.poll@3=kill," with
  | Ok [ a; b ] ->
      Alcotest.(check string) "first point" Chaos.checkpoint_open a.Chaos.point;
      Alcotest.(check int) "second occurrence" 3 b.Chaos.occurrence
  | Ok _ -> Alcotest.fail "expected two rules"
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_parse_errors () =
  List.iter
    (fun s ->
      match Chaos.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S: expected a parse error" s)
    [
      "";
      ",,";
      "no-at-sign";
      "point@=fail";
      "point@x=fail";
      "point@0=fail";
      "point@-1=fail";
      "point@1=explode";
      "@1=fail";
      "a@1=fail,b@2";
    ]

let test_of_env () =
  let set v = Unix.putenv Chaos.env_var v in
  Fun.protect
    ~finally:(fun () -> set "")
    (fun () ->
      set "";
      Alcotest.(check bool) "blank is disabled" true (Chaos.of_env () = None);
      set "   ";
      Alcotest.(check bool) "whitespace is disabled" true (Chaos.of_env () = None);
      set "checkpoint.output@2=kill";
      (match Chaos.of_env () with
      | Some _ -> ()
      | None -> Alcotest.fail "valid schedule must arm a handle");
      set "nonsense";
      match Chaos.of_env () with
      | _ -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ())

(* --- Occurrence semantics ---------------------------------------------- *)

let test_hit_occurrences () =
  let t =
    Chaos.create
      [ { Chaos.point = "p"; occurrence = 3; action = Chaos.Poison } ]
  in
  let chaos = Some t in
  Chaos.hit chaos "p";
  Chaos.hit chaos "p";
  Chaos.hit chaos "other";
  Alcotest.(check int) "two occurrences so far" 2 (Chaos.occurrences t "p");
  Alcotest.(check int) "nothing fired yet" 0 (Chaos.injections t);
  (match Chaos.hit chaos "p" with
  | () -> Alcotest.fail "third occurrence must fire"
  | exception Chaos.Injected { point = "p"; occurrence = 3 } -> ()
  | exception Chaos.Injected _ -> Alcotest.fail "wrong injection site");
  Alcotest.(check int) "one injection" 1 (Chaos.injections t);
  (* The rule is spent: the fourth occurrence passes. *)
  Chaos.hit chaos "p";
  Alcotest.(check int) "counter keeps counting" 4 (Chaos.occurrences t "p");
  (* Fail raises a retryable Sys_error; Kill raises Killed. *)
  let t2 =
    Chaos.create
      [
        { Chaos.point = "f"; occurrence = 1; action = Chaos.Fail };
        { Chaos.point = "k"; occurrence = 1; action = Chaos.Kill };
      ]
  in
  (match Chaos.hit (Some t2) "f" with
  | () -> Alcotest.fail "Fail rule must raise"
  | exception Sys_error _ -> ());
  match Chaos.hit (Some t2) "k" with
  | () -> Alcotest.fail "Kill rule must raise"
  | exception Chaos.Killed { point = "k"; occurrence = 1 } -> ()
  | exception Chaos.Killed _ -> Alcotest.fail "wrong kill site"

let test_hit_disabled () =
  (* The disabled handle is a no-op at every catalogued point. *)
  List.iter (fun p -> Chaos.hit None p) Chaos.all_points

let test_random_rules_deterministic () =
  let draw seed =
    Chaos.random_rules ~seed ~points:Chaos.all_points ~max_occurrence:9
      ~action:Chaos.Fail 32
  in
  Alcotest.(check bool) "same seed, same schedule" true (draw 7 = draw 7);
  Alcotest.(check bool) "different seeds differ" true (draw 7 <> draw 8);
  List.iter
    (fun r ->
      Alcotest.(check bool) "point from catalogue" true
        (List.mem r.Chaos.point Chaos.all_points);
      Alcotest.(check bool) "occurrence in range" true
        (r.Chaos.occurrence >= 1 && r.Chaos.occurrence <= 9))
    (draw 7)

(* --- Checkpoint writes under injection --------------------------------- *)

let ckpt_snapshot =
  {
    Pipeline.snap_circuit = "synthetic";
    snap_pis = 3;
    snap_ffs = 4;
    snap_seed = 7;
    snap_t0 = "directed/120";
    snap_comb_size = 5;
    snap_t0_length = 120;
    snap_f0_count = 42;
    snap_iter = 2;
    snap_selected = Bitvec.of_list 5 [ 1; 3 ];
    snap_seq = [| [| true; false; true |]; [| false; false; true |] |];
    snap_best = None;
    snap_iterations =
      [ { Pipeline.si_index = 2; u_so = 9; len_after_omission = 7; detected_count = 40 } ];
    snap_phase3 = None;
  }

let with_ckpt_path f =
  let path = Filename.temp_file "asc-chaos" ".ckpt" in
  Sys.remove path;
  let cleanup () =
    List.iter
      (fun p -> try Sys.remove p with Sys_error _ -> ())
      [ path; path ^ ".tmp"; path ^ ".1"; path ^ ".2"; path ^ ".3" ]
  in
  Fun.protect ~finally:cleanup (fun () -> f path)

(* Satellite regression: a failed write must not leave <file>.tmp around. *)
let test_write_failure_removes_tmp () =
  with_ckpt_path @@ fun path ->
  List.iter
    (fun point ->
      let chaos =
        Chaos.create [ { Chaos.point; occurrence = 1; action = Chaos.Fail } ]
      in
      (match Checkpoint.write_file ~chaos ~retries:0 path ckpt_snapshot with
      | () -> Alcotest.failf "%s: expected Sys_error" point
      | exception Sys_error _ -> ());
      Alcotest.(check bool) (point ^ ": no stray temp file") false
        (Sys.file_exists (path ^ ".tmp"));
      Alcotest.(check bool) (point ^ ": no partial checkpoint") false
        (Sys.file_exists path))
    [ Chaos.checkpoint_open; Chaos.checkpoint_output; Chaos.checkpoint_rename ]

let test_write_retries_transient_failure () =
  with_ckpt_path @@ fun path ->
  let tel = Telemetry.create () in
  let chaos =
    Chaos.create ~tel
      [
        { Chaos.point = Chaos.checkpoint_output; occurrence = 1; action = Chaos.Fail };
        { Chaos.point = Chaos.checkpoint_output; occurrence = 2; action = Chaos.Fail };
      ]
  in
  Checkpoint.write_file ~tel ~chaos ~retries:2 path ckpt_snapshot;
  let s = Checkpoint.read_file path in
  Alcotest.(check int) "written after retries" ckpt_snapshot.snap_iter s.snap_iter;
  Alcotest.(check bool) "no stray temp file" false (Sys.file_exists (path ^ ".tmp"));
  let snap = Telemetry.drain tel in
  Alcotest.(check int) "two failed attempts counted" 2
    (Telemetry.counter_value snap "checkpoint_write_failures");
  Alcotest.(check int) "one successful write" 1
    (Telemetry.counter_value snap "checkpoint_writes");
  Alcotest.(check int) "two injections fired" 2
    (Telemetry.counter_value snap "chaos_injections")

(* A Kill models SIGKILL: cleanup is skipped (the temp file survives) and
   the previous checkpoint is untouched. *)
let test_kill_is_a_hard_crash () =
  with_ckpt_path @@ fun path ->
  Checkpoint.write_file path ckpt_snapshot;
  let chaos =
    Chaos.create
      [ { Chaos.point = Chaos.checkpoint_output; occurrence = 1; action = Chaos.Kill } ]
  in
  let next = { ckpt_snapshot with Pipeline.snap_iter = 3 } in
  (match Checkpoint.write_file ~chaos ~retries:2 path next with
  | () -> Alcotest.fail "expected Killed"
  | exception Chaos.Killed _ -> ());
  Alcotest.(check bool) "temp file left behind, like SIGKILL" true
    (Sys.file_exists (path ^ ".tmp"));
  let s = Checkpoint.read_file path in
  Alcotest.(check int) "previous checkpoint intact" ckpt_snapshot.snap_iter s.snap_iter

let corrupt_file path =
  (* Flip one bit in the middle of the file. *)
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let b = really_input_string ic n in
  close_in ic;
  let b = Bytes.of_string b in
  let i = n / 2 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x10));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let test_rotation_and_recovery () =
  with_ckpt_path @@ fun path ->
  let tel = Telemetry.create () in
  let old = { ckpt_snapshot with Pipeline.snap_iter = 1 } in
  let young = { ckpt_snapshot with Pipeline.snap_iter = 2 } in
  Checkpoint.write_file ~keep:2 path old;
  Checkpoint.write_file ~keep:2 path young;
  Alcotest.(check bool) "newest in place" true (Sys.file_exists path);
  Alcotest.(check bool) "previous rotated" true (Sys.file_exists (path ^ ".1"));
  Alcotest.(check int) "rotated copy is the old snapshot" 1
    (Checkpoint.read_file (path ^ ".1")).snap_iter;
  (* Healthy case: the newest copy wins, no recovery counted. *)
  let l = Checkpoint.load_latest_valid ~tel path in
  Alcotest.(check int) "newest snapshot" 2 l.Checkpoint.snapshot.snap_iter;
  Alcotest.(check bool) "not a recovery" false l.Checkpoint.recovered;
  (* Corrupt the newest copy: recovery falls back to the rotated one. *)
  corrupt_file path;
  let l = Checkpoint.load_latest_valid ~tel path in
  Alcotest.(check int) "fell back to rotated copy" 1 l.Checkpoint.snapshot.snap_iter;
  Alcotest.(check bool) "flagged as recovered" true l.Checkpoint.recovered;
  Alcotest.(check string) "source names the rotated copy" (path ^ ".1")
    l.Checkpoint.source;
  let snap = Telemetry.drain tel in
  Alcotest.(check int) "one recovery counted" 1
    (Telemetry.counter_value snap "checkpoint_recoveries");
  (* Corrupt every copy: the newest copy's error is re-raised. *)
  corrupt_file (path ^ ".1");
  (match Checkpoint.load_latest_valid path with
  | _ -> Alcotest.fail "expected Corrupt"
  | exception Checkpoint.Corrupt _ -> ());
  (* No copy at all: Sys_error, like read_file on a missing path. *)
  Sys.remove path;
  Sys.remove (path ^ ".1");
  match Checkpoint.load_latest_valid path with
  | _ -> Alcotest.fail "expected Sys_error"
  | exception Sys_error _ -> ()

(* --- Pool survival after a poisoned task ------------------------------- *)

let test_pool_survives_poisoned_task () =
  let n = 64 in
  let chaos =
    Chaos.create
      [ { Chaos.point = Chaos.pool_task; occurrence = 7; action = Chaos.Poison } ]
  in
  let pool = Domain_pool.create ~chaos ~domains:4 () in
  Fun.protect ~finally:(fun () -> Domain_pool.shutdown pool)
  @@ fun () ->
  (* The poisoned job fails fast and re-raises on the submitter... *)
  (match Domain_pool.run pool n (fun _ -> ()) with
  | () -> Alcotest.fail "expected the injected poison to propagate"
  | exception Chaos.Injected { point; _ } ->
      Alcotest.(check string) "poisoned at pool.task" Chaos.pool_task point);
  (* ...and the pool remains fully usable: the next job matches a
     sequential computation exactly. *)
  let parallel = Array.make n 0 in
  Domain_pool.run pool n (fun i -> parallel.(i) <- (i * i) + 1);
  let sequential = Array.init n (fun i -> (i * i) + 1) in
  Alcotest.(check bool) "pool result matches sequential" true
    (parallel = sequential)

(* --- Crash-recovery soak ----------------------------------------------- *)

(* Run the full pipeline under a seeded kill schedule: the run writes
   rotated checkpoints until the injected crash fires mid-write, then a
   second process-equivalent resumes from the latest valid snapshot.  The
   final test set, coverage and N_cyc must be bit-identical to an
   uninterrupted run — at every kill occurrence, and at 1 and 4 domains. *)
let soak name =
  let c = Asc_circuits.Registry.get name in
  let t0_source = Pipeline.Directed (Asc_circuits.Registry.t0_budget name) in
  let config = Asc_core.Experiments.config_for ~seed:1 ~t0_source in
  let prepared = Pipeline.prepare ~config c in
  let reference =
    match Pipeline.run_bounded ~config prepared with
    | Pipeline.Complete r -> r
    | Pipeline.Partial _ -> Alcotest.fail "reference run must complete"
  in
  let check_identical label r =
    Alcotest.(check int) (label ^ ": test count")
      (Array.length reference.Pipeline.final_tests)
      (Array.length r.Pipeline.final_tests);
    Alcotest.(check bool) (label ^ ": tests bit-identical") true
      (Array.for_all2 Scan_test.equal reference.final_tests r.final_tests);
    Alcotest.(check int) (label ^ ": N_cyc") reference.cycles_final r.cycles_final;
    Alcotest.(check bool) (label ^ ": coverage") true
      (Bitvec.equal reference.final_detected r.final_detected)
  in
  (* How many checkpoint writes does an uninterrupted run perform? *)
  let writes = ref 0 in
  (match
     Pipeline.run_bounded ~config ~on_checkpoint:(fun _ -> incr writes) prepared
   with
  | Pipeline.Complete r -> check_identical "checkpoint-observed run" r
  | Pipeline.Partial _ -> Alcotest.fail "observed run must complete");
  Alcotest.(check bool) (name ^ ": enough writes for a meaningful soak") true
    (!writes >= 1);
  (* One crash-resume trial: kill at the k-th occurrence of [point], then
     resume from whatever the simulated crash left on disk. *)
  let with_pool_opt domains f =
    match domains with
    | None -> f None
    | Some d ->
        let pool = Domain_pool.create ~domains:d () in
        Fun.protect
          ~finally:(fun () -> Domain_pool.shutdown pool)
          (fun () -> f (Some pool))
  in
  let trial ?domains ~point k =
    with_ckpt_path @@ fun path ->
    with_pool_opt domains @@ fun pool ->
    let label =
      Printf.sprintf "%s kill %s#%d%s" name point k
        (match domains with
        | None -> ""
        | Some d -> Printf.sprintf " (%d domains)" d)
    in
    let chaos =
      Chaos.create [ { Chaos.point; occurrence = k; action = Chaos.Kill } ]
    in
    let on_checkpoint s = Checkpoint.write_file ~chaos ~keep:2 path s in
    (match Pipeline.run_bounded ?pool ~config ~on_checkpoint prepared with
    | Pipeline.Complete r ->
        (* The kill occurrence was never reached — still a valid trial;
           the run must be unaffected by the armed handle. *)
        check_identical (label ^ " (not reached)") r
    | Pipeline.Partial _ -> Alcotest.failf "%s: unexpected Partial" label
    | exception Chaos.Killed _ -> ());
    (* "Reboot": load the newest valid snapshot; when the crash predates
       any complete write, start afresh. *)
    let resume =
      match Checkpoint.load_latest_valid path with
      | l ->
          Checkpoint.validate prepared ~config l.Checkpoint.snapshot;
          Some l.Checkpoint.snapshot
      | exception (Sys_error _ | Checkpoint.Corrupt _) -> None
    in
    match Pipeline.run_bounded ?pool ~config ?resume prepared with
    | Pipeline.Complete r -> check_identical label r
    | Pipeline.Partial _ -> Alcotest.failf "%s: resumed run must complete" label
  in
  (* Sweep every write occurrence of the output point (mid-write crash,
     rotation already done) and the extremes of the rename point (crash
     between the write and the atomic swap). *)
  for k = 1 to !writes do
    trial ~point:Chaos.checkpoint_output k
  done;
  trial ~point:Chaos.checkpoint_rename 1;
  trial ~point:Chaos.checkpoint_rename !writes;
  (* The same crash survives parallel execution: 1 and 4 domains. *)
  let mid = (!writes + 1) / 2 in
  trial ~domains:1 ~point:Chaos.checkpoint_output mid;
  trial ~domains:4 ~point:Chaos.checkpoint_output mid;
  (* Silent corruption of the newest rotated copy: recovery falls back and
     the resumed run is still bit-identical. *)
  (with_ckpt_path @@ fun path ->
   let tel = Telemetry.create () in
   let last = ref None in
   let on_checkpoint s =
     Checkpoint.write_file ~tel ~keep:2 path s;
     last := Some s.Pipeline.snap_iter
   in
   (match Pipeline.run_bounded ~config ~on_checkpoint prepared with
   | Pipeline.Complete _ -> ()
   | Pipeline.Partial _ -> Alcotest.fail "writer run must complete");
   if !writes >= 2 then begin
     corrupt_file path;
     let l = Checkpoint.load_latest_valid ~tel path in
     Alcotest.(check bool) (name ^ ": corruption forces a fallback") true
       l.Checkpoint.recovered;
     Checkpoint.validate prepared ~config l.Checkpoint.snapshot;
     (match
        Pipeline.run_bounded ~config ~resume:l.Checkpoint.snapshot prepared
      with
     | Pipeline.Complete r -> check_identical (name ^ " corrupt-newest resume") r
     | Pipeline.Partial _ -> Alcotest.fail "recovery run must complete");
     let snap = Telemetry.drain tel in
     Alcotest.(check int) (name ^ ": recovery counted") 1
       (Telemetry.counter_value snap "checkpoint_recoveries")
   end);
  (* A poisoned pool task aborts the run; the pool survives, and rerunning
     on the very same pool still reproduces the reference bit-exactly. *)
  let chaos =
    Chaos.create
      [ { Chaos.point = Chaos.pool_task; occurrence = 10; action = Chaos.Poison } ]
  in
  let pool = Domain_pool.create ~chaos ~domains:4 () in
  Fun.protect ~finally:(fun () -> Domain_pool.shutdown pool)
  @@ fun () ->
  (match Pipeline.run_bounded ~pool ~config prepared with
  | exception Chaos.Injected _ -> ()
  | Pipeline.Complete r ->
      (* Fewer than 10 tasks before completion — nothing fired; the run
         must still be unaffected. *)
      check_identical (name ^ " poison (not reached)") r
  | Pipeline.Partial _ -> Alcotest.fail "poisoned run must not be Partial");
  match Pipeline.run_bounded ~pool ~config prepared with
  | Pipeline.Complete r -> check_identical (name ^ " rerun on poisoned pool") r
  | Pipeline.Partial _ -> Alcotest.fail "rerun must complete"

let test_soak_s298 () = soak "s298"
let test_soak_s344 () = soak "s344"

(* Persistent write failure must degrade, not abort: every checkpoint
   write fails, yet the run completes with the reference result. *)
let test_degrade_on_persistent_write_failure () =
  let c = Asc_circuits.Registry.get "s298" in
  let t0_source = Pipeline.Directed (Asc_circuits.Registry.t0_budget "s298") in
  let config = Asc_core.Experiments.config_for ~seed:1 ~t0_source in
  let prepared = Pipeline.prepare ~config c in
  let reference =
    match Pipeline.run_bounded ~config prepared with
    | Pipeline.Complete r -> r
    | Pipeline.Partial _ -> Alcotest.fail "reference run must complete"
  in
  with_ckpt_path @@ fun path ->
  let tel = Telemetry.create () in
  (* Every open fails, forever: rules for more occurrences than any run
     can reach. *)
  let rules =
    List.init 64 (fun i ->
        { Chaos.point = Chaos.checkpoint_open; occurrence = i + 1; action = Chaos.Fail })
  in
  let chaos = Chaos.create ~tel rules in
  let on_checkpoint s = Checkpoint.write_file ~tel ~chaos ~retries:1 path s in
  (match Pipeline.run_bounded ~config ~on_checkpoint prepared with
  | Pipeline.Complete r ->
      Alcotest.(check bool) "degraded run is bit-identical" true
        (Array.for_all2 Scan_test.equal reference.final_tests r.Pipeline.final_tests
        && reference.cycles_final = r.cycles_final)
  | Pipeline.Partial _ -> Alcotest.fail "degraded run must still complete");
  Alcotest.(check bool) "no checkpoint was written" false (Sys.file_exists path);
  let snap = Telemetry.drain tel in
  Alcotest.(check bool) "write failures counted" true
    (Telemetry.counter_value snap "checkpoint_write_failures" >= 2);
  Alcotest.(check int) "no successful write" 0
    (Telemetry.counter_value snap "checkpoint_writes")

(* --- Mid-read injection in the file readers ---------------------------- *)

(* Both readers arm an injection point after [open_in]: a Fail surfaces
   as the Sys_error a truncated read would raise, a Kill propagates as
   Killed (no cleanup runs), and an unarmed occurrence reads normally
   while still counting. *)
let test_io_read_points () =
  let bench = Filename.temp_file "asc-chaos" ".bench" in
  let tset = Filename.temp_file "asc-chaos" ".tests" in
  let cleanup () =
    List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) [ bench; tset ]
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  let oc = open_out bench in
  output_string oc "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n";
  close_out oc;
  let c = Asc_circuits.Registry.get "s27" in
  Asc_scan.Tset_io.write_file tset c [||];
  (* Fail at the first occurrence: Sys_error, and the occurrence counts. *)
  let chaos =
    Chaos.create
      [
        { Chaos.point = Chaos.bench_io_read; occurrence = 1; action = Chaos.Fail };
        { Chaos.point = Chaos.tset_io_read; occurrence = 1; action = Chaos.Fail };
      ]
  in
  (match Asc_netlist.Bench_io.parse_file ~chaos bench with
  | exception Sys_error _ -> ()
  | _ -> Alcotest.fail "bench_io: expected an injected Sys_error");
  (match Asc_scan.Tset_io.read_file ~chaos tset with
  | exception Sys_error _ -> ()
  | _ -> Alcotest.fail "tset_io: expected an injected Sys_error");
  (* Second occurrences are unarmed: both reads succeed and count. *)
  let c' = Asc_netlist.Bench_io.parse_file ~chaos bench in
  Alcotest.(check int) "parsed netlist" 2 (Asc_netlist.Circuit.n_gates c');
  let name, tests = Asc_scan.Tset_io.read_file ~chaos tset in
  Alcotest.(check string) "test set circuit" "s27" name;
  Alcotest.(check int) "empty test set" 0 (Array.length tests);
  Alcotest.(check int) "bench occurrences" 2 (Chaos.occurrences chaos Chaos.bench_io_read);
  Alcotest.(check int) "tset occurrences" 2 (Chaos.occurrences chaos Chaos.tset_io_read);
  Alcotest.(check int) "two rules fired" 2 (Chaos.injections chaos);
  (* A Kill propagates as Killed, not as an I/O error. *)
  let chaos =
    Chaos.create
      [ { Chaos.point = Chaos.bench_io_read; occurrence = 1; action = Chaos.Kill };
        { Chaos.point = Chaos.tset_io_read; occurrence = 1; action = Chaos.Kill } ]
  in
  (match Asc_netlist.Bench_io.parse_file ~chaos bench with
  | exception Chaos.Killed _ -> ()
  | _ -> Alcotest.fail "bench_io: expected Killed");
  match Asc_scan.Tset_io.read_file ~chaos tset with
  | exception Chaos.Killed _ -> ()
  | _ -> Alcotest.fail "tset_io: expected Killed"

(* --- Event-log sink faults ---------------------------------------------- *)

(* The [log.write] point fires before each physical event-log write.  A
   [Fail] must degrade the handle — one stderr warning, every later
   event dropped and counted — without ever raising into the caller
   (the serving select loop); a [Kill] must propagate as a hard crash
   like every other kill site. *)
let test_log_write_chaos () =
  Test_obs.with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "events.jsonl" in
  let tel = Some (Telemetry.create ()) in
  let chaos =
    Chaos.create
      [ { Chaos.point = Chaos.log_write; occurrence = 2; action = Chaos.Fail } ]
  in
  let log = Some (Log.create ?tel ~chaos path) in
  Log.emit log "first";
  Log.emit log "injected";
  (* degraded *)
  Log.emit log "dropped";
  Log.emit log "dropped";
  (match log with
  | Some t ->
      Alcotest.(check int) "failing write plus two drops" 3
        (Log.write_failures t)
  | None -> assert false);
  Log.close log;
  let ic = open_in path in
  let first = input_line ic in
  let eof = match input_line ic with _ -> false | exception End_of_file -> true in
  close_in ic;
  Alcotest.(check bool) "only the pre-fault line survives" true
    (String.length first > 0 && eof);
  Alcotest.(check int) "drops counted in telemetry" 3
    (Telemetry.counter_value
       (Telemetry.drain (Option.get tel))
       "log_write_failures");
  Alcotest.(check int) "the fault was counted as an injection" 1
    (Chaos.injections chaos);
  (* A Kill at the same point is a crash, not a degradation. *)
  let chaos =
    Chaos.create
      [ { Chaos.point = Chaos.log_write; occurrence = 1; action = Chaos.Kill } ]
  in
  let log = Some (Log.create ~chaos (Filename.concat dir "k.jsonl")) in
  match Log.emit log "boom" with
  | exception Chaos.Killed _ -> Log.close log
  | () -> Alcotest.fail "log.write kill must propagate"

let suite =
  [
    ( "chaos",
      [
        Alcotest.test_case "schedules round-trip through text" `Quick
          test_parse_roundtrip;
        Alcotest.test_case "malformed schedules are rejected" `Quick
          test_parse_errors;
        Alcotest.test_case "ASC_CHAOS arms and validates" `Quick test_of_env;
        Alcotest.test_case "rules fire at exact occurrences" `Quick
          test_hit_occurrences;
        Alcotest.test_case "disabled handle is a no-op" `Quick test_hit_disabled;
        Alcotest.test_case "seeded schedules are reproducible" `Quick
          test_random_rules_deterministic;
        Alcotest.test_case "failed writes leave no stray temp file" `Quick
          test_write_failure_removes_tmp;
        Alcotest.test_case "transient write failures are retried" `Quick
          test_write_retries_transient_failure;
        Alcotest.test_case "a kill leaves SIGKILL disk state" `Quick
          test_kill_is_a_hard_crash;
        Alcotest.test_case "rotation recovers from a corrupt newest copy" `Quick
          test_rotation_and_recovery;
        Alcotest.test_case "file readers fail and die mid-read" `Quick
          test_io_read_points;
        Alcotest.test_case "event-log sink faults degrade or kill" `Quick
          test_log_write_chaos;
        Alcotest.test_case "pool survives a poisoned task" `Quick
          test_pool_survives_poisoned_task;
        Alcotest.test_case "persistent write failure degrades, not aborts" `Slow
          test_degrade_on_persistent_write_failure;
        Alcotest.test_case "crash-recovery soak on s298" `Slow test_soak_s298;
        Alcotest.test_case "crash-recovery soak on s344" `Slow test_soak_s344;
      ] );
  ]
