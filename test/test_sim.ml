(* Tests for Asc_sim: gate truth tables, bit-parallel engines vs the naive
   reference, 3-valued monotonicity, override injection. *)

open Asc_sim
module Circuit = Asc_netlist.Circuit
module Gate = Asc_netlist.Gate

let qtest = QCheck_alcotest.to_alcotest

(* --- Truth tables ---------------------------------------------------- *)

let test_gate2_truth_tables () =
  let check kind ins expected =
    Alcotest.(check bool)
      (Gate.to_string kind ^ " " ^ String.concat "" (List.map string_of_bool ins))
      expected (Naive.eval_gate2 kind ins)
  in
  check Gate.And [ true; true ] true;
  check Gate.And [ true; false ] false;
  check Gate.Nand [ true; true ] false;
  check Gate.Or [ false; false ] false;
  check Gate.Or [ false; true ] true;
  check Gate.Nor [ false; false ] true;
  check Gate.Xor [ true; true ] false;
  check Gate.Xor [ true; false ] true;
  check Gate.Xor [ true; true; true ] true;
  check Gate.Xnor [ true; false ] false;
  check Gate.Not [ true ] false;
  check Gate.Buf [ true ] true;
  check Gate.Const0 [] false;
  check Gate.Const1 [] true

let test_gate3_pessimism () =
  (* X-dominated cases. *)
  let x = None and t = Some true and f = Some false in
  Alcotest.(check bool) "and 0 X = 0" true (Naive.eval_gate3 Gate.And [ f; x ] = f);
  Alcotest.(check bool) "and 1 X = X" true (Naive.eval_gate3 Gate.And [ t; x ] = x);
  Alcotest.(check bool) "or 1 X = 1" true (Naive.eval_gate3 Gate.Or [ t; x ] = t);
  Alcotest.(check bool) "or 0 X = X" true (Naive.eval_gate3 Gate.Or [ f; x ] = x);
  Alcotest.(check bool) "xor 1 X = X" true (Naive.eval_gate3 Gate.Xor [ t; x ] = x);
  Alcotest.(check bool) "not X = X" true (Naive.eval_gate3 Gate.Not [ x ] = x);
  Alcotest.(check bool) "nand 0 X = 1" true (Naive.eval_gate3 Gate.Nand [ f; x ] = t)

(* 3-valued refinement: replacing X inputs by any binary value refines the
   output (binary outputs never change). *)
let prop_gate3_monotone =
  let kind_gen =
    QCheck.Gen.oneofl
      [ Gate.And; Gate.Nand; Gate.Or; Gate.Nor; Gate.Xor; Gate.Xnor ]
  in
  let v3_gen = QCheck.Gen.oneofl [ Some true; Some false; None ] in
  let gen = QCheck.Gen.(pair kind_gen (list_size (int_range 2 4) v3_gen)) in
  QCheck.Test.make ~name:"3-valued eval is monotone under refinement" ~count:500
    (QCheck.make gen) (fun (kind, ins) ->
      let out = Naive.eval_gate3 kind ins in
      match out with
      | None -> true
      | Some _ ->
          (* Every refinement of the X inputs yields the same output. *)
          let rec refine acc = function
            | [] -> [ List.rev acc ]
            | Some v :: rest -> refine (Some v :: acc) rest
            | None :: rest ->
                refine (Some true :: acc) rest @ refine (Some false :: acc) rest
          in
          List.for_all
            (fun ins' -> Naive.eval_gate3 kind ins' = out)
            (refine [] ins))

(* --- Parallel engines vs naive reference ----------------------------- *)

let random_profile seed =
  Asc_circuits.Profile.make "sim-rt" 5 4 6 50 ~t0_budget:10
  |> Asc_circuits.Generator.generate ~seed

let prop_engine2_matches_naive =
  QCheck.Test.make ~name:"Engine2 lanes match naive scalar runs" ~count:40
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let c = random_profile seed in
      let rng = Asc_util.Rng.create (seed + 1) in
      let n_pis = Circuit.n_inputs c and n_ffs = Circuit.n_dffs c in
      let len = 6 in
      (* Distinct per-lane stimuli for 7 lanes. *)
      let lanes = 7 in
      let inits = Array.init lanes (fun _ -> Asc_util.Rng.bool_array rng n_ffs) in
      let seqs =
        Array.init lanes (fun _ ->
            Array.init len (fun _ -> Asc_util.Rng.bool_array rng n_pis))
      in
      let engine = Engine2.create c [] in
      let state_words =
        Array.init n_ffs (fun i ->
            let w = ref 0 in
            for l = 0 to lanes - 1 do
              if inits.(l).(i) then w := Asc_util.Word.set !w l
            done;
            !w)
      in
      Engine2.set_state_words engine state_words;
      let ok = ref true in
      let naive_runs =
        Array.init lanes (fun l -> Naive.run c ~init:inits.(l) ~seq:seqs.(l))
      in
      for t = 0 to len - 1 do
        let pi_words =
          Array.init n_pis (fun i ->
              let w = ref 0 in
              for l = 0 to lanes - 1 do
                if seqs.(l).(t).(i) then w := Asc_util.Word.set !w l
              done;
              !w)
        in
        Engine2.eval engine ~pi_words;
        for l = 0 to lanes - 1 do
          let expected = (fst naive_runs.(l)).(t) in
          for po = 0 to Circuit.n_outputs c - 1 do
            if Asc_util.Word.get (Engine2.po_word engine po) l <> expected.(po) then
              ok := false
          done
        done;
        Engine2.capture engine
      done;
      (* Final states match too. *)
      for l = 0 to lanes - 1 do
        let expected = snd naive_runs.(l) in
        for i = 0 to n_ffs - 1 do
          if Asc_util.Word.get (Engine2.state_word engine i) l <> expected.(i) then
            ok := false
        done
      done;
      !ok)

let prop_engine3_binary_matches_engine2 =
  QCheck.Test.make ~name:"Engine3 on binary inputs agrees with Engine2" ~count:30
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let c = random_profile seed in
      let rng = Asc_util.Rng.create (seed + 2) in
      let n_pis = Circuit.n_inputs c and n_ffs = Circuit.n_dffs c in
      let init = Asc_util.Rng.bool_array rng n_ffs in
      let len = 5 in
      let seq = Array.init len (fun _ -> Asc_util.Rng.bool_array rng n_pis) in
      let e2 = Engine2.create c [] and e3 = Engine3.create c [] in
      Engine2.set_state_bools e2 init;
      Engine3.set_state_bools e3 init;
      let ok = ref true in
      Array.iter
        (fun vec ->
          let pi_words = Array.map Asc_util.Word.splat vec in
          Engine2.eval e2 ~pi_words;
          Engine3.eval_binary e3 ~pi_words;
          for po = 0 to Circuit.n_outputs c - 1 do
            let w2 = Engine2.po_word e2 po in
            let z, o = Engine3.po_word e3 po in
            if o <> w2 || z <> lnot w2 land Asc_util.Word.mask then ok := false
          done;
          Engine2.capture e2;
          Engine3.capture e3)
        seq;
      !ok)

let prop_engine3_x_state_refines =
  QCheck.Test.make ~name:"Engine3 from X state is refined by binary runs" ~count:30
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let c = random_profile seed in
      let rng = Asc_util.Rng.create (seed + 3) in
      let n_pis = Circuit.n_inputs c and n_ffs = Circuit.n_dffs c in
      let len = 6 in
      let seq = Array.init len (fun _ -> Asc_util.Rng.bool_array rng n_pis) in
      let e3 = Engine3.create c [] in
      Engine3.set_state_x e3;
      let init = Asc_util.Rng.bool_array rng n_ffs in
      let scalar, _ = Naive.run c ~init ~seq in
      let ok = ref true in
      Array.iteri
        (fun t vec ->
          Engine3.eval_binary e3 ~pi_words:(Array.map Asc_util.Word.splat vec);
          for po = 0 to Circuit.n_outputs c - 1 do
            let z, o = Engine3.po_word e3 po in
            (* Wherever the X-state run is binary, every concrete initial
               state must agree. *)
            if o land 1 = 1 && not scalar.(t).(po) then ok := false;
            if z land 1 = 1 && scalar.(t).(po) then ok := false
          done;
          Engine3.capture e3)
        seq;
      !ok)

(* --- Overrides ------------------------------------------------------- *)

let test_override_output_injection () =
  (* Force a PI stuck in half the lanes and observe a NOT of it. *)
  let b = Asc_netlist.Builder.create "ovr" in
  let a = Asc_netlist.Builder.add_input b "a" in
  let g = Asc_netlist.Builder.add_gate b Gate.Not "g" [ a ] in
  Asc_netlist.Builder.add_output b g;
  let c = Asc_netlist.Builder.finalize b in
  let lanes = 0b1010 in
  let e = Engine2.create c [ Override.output ~gate:a ~stuck:true ~lanes ] in
  Engine2.eval e ~pi_words:[| 0 |];
  (* a = 0 except overridden lanes -> NOT a = all ones except lanes. *)
  Alcotest.(check int) "not of injected" (Asc_util.Word.mask land lnot lanes)
    (Engine2.po_word e 0)

let test_override_input_pin_is_branch () =
  (* A branch fault affects only the faulted consumer. *)
  let b = Asc_netlist.Builder.create "branch" in
  let a = Asc_netlist.Builder.add_input b "a" in
  let g1 = Asc_netlist.Builder.add_gate b Gate.Buf "g1" [ a ] in
  let g2 = Asc_netlist.Builder.add_gate b Gate.Buf "g2" [ a ] in
  Asc_netlist.Builder.add_output b g1;
  Asc_netlist.Builder.add_output b g2;
  let c = Asc_netlist.Builder.finalize b in
  (* Stuck-1 on g1's input pin only. *)
  let e =
    Engine2.create c
      [ Override.input ~gate:g1 ~pin:0 ~stuck:true ~lanes:Asc_util.Word.mask ]
  in
  Engine2.eval e ~pi_words:[| 0 |];
  Alcotest.(check int) "faulted branch" Asc_util.Word.mask (Engine2.po_word e 0);
  Alcotest.(check int) "clean branch" 0 (Engine2.po_word e 1)

let test_override_dff_pin () =
  (* A DFF D-pin fault corrupts the captured value only. *)
  let b = Asc_netlist.Builder.create "dpin" in
  let a = Asc_netlist.Builder.add_input b "a" in
  let q = Asc_netlist.Builder.add_dff b "q" in
  Asc_netlist.Builder.set_dff_input b q a;
  let g = Asc_netlist.Builder.add_gate b Gate.Buf "g" [ q ] in
  Asc_netlist.Builder.add_output b g;
  let c = Asc_netlist.Builder.finalize b in
  let e =
    Engine2.create c
      [ Override.input ~gate:q ~pin:0 ~stuck:false ~lanes:Asc_util.Word.mask ]
  in
  Engine2.set_state_bools e [| true |];
  Engine2.eval e ~pi_words:[| Asc_util.Word.mask |];
  (* Current state unaffected. *)
  Alcotest.(check int) "q unaffected now" Asc_util.Word.mask (Engine2.po_word e 0);
  Engine2.capture e;
  Engine2.eval e ~pi_words:[| Asc_util.Word.mask |];
  (* Captured value was forced to 0. *)
  Alcotest.(check int) "capture forced 0" 0 (Engine2.po_word e 0)

let suite =
  [
    ( "sim",
      [
        Alcotest.test_case "2-valued truth tables" `Quick test_gate2_truth_tables;
        Alcotest.test_case "3-valued pessimism" `Quick test_gate3_pessimism;
        qtest prop_gate3_monotone;
        qtest prop_engine2_matches_naive;
        qtest prop_engine3_binary_matches_engine2;
        qtest prop_engine3_x_state_refines;
        Alcotest.test_case "override output" `Quick test_override_output_injection;
        Alcotest.test_case "override branch pin" `Quick test_override_input_pin_is_branch;
        Alcotest.test_case "override dff pin" `Quick test_override_dff_pin;
      ] );
  ]
