(* Tests for the robustness layer: Budget semantics, the pool's fail-fast
   and cancellation behaviour, graceful kernel degradation, checkpoint
   (de)serialization, and the headline guarantee — interrupt a pipeline
   run mid-iteration, resume from the checkpoint, and get a result
   bit-identical to the uninterrupted run, at 1 and 4 domains. *)

open Asc_util
module Circuit = Asc_netlist.Circuit
module Pipeline = Asc_core.Pipeline
module Checkpoint = Asc_core.Checkpoint
module Scan_test = Asc_scan.Scan_test

let with_pool ?budget n f =
  let pool = Domain_pool.create ?budget ~domains:n () in
  Fun.protect ~finally:(fun () -> Domain_pool.shutdown pool) (fun () -> f pool)

(* --- Budget unit tests ---------------------------------------------- *)

let test_budget_basic () =
  Alcotest.(check bool) "unlimited never fires" false (Budget.exhausted Budget.unlimited);
  Budget.cancel Budget.unlimited;
  Alcotest.(check bool) "unlimited survives cancel" false
    (Budget.exhausted Budget.unlimited);
  let b = Budget.create () in
  Alcotest.(check bool) "fresh token is live" false (Budget.exhausted b);
  Budget.check b;
  Budget.cancel b;
  Alcotest.(check bool) "cancelled" true
    (Budget.status b = Some Budget.Cancelled);
  (match Budget.check b with
  | () -> Alcotest.fail "check must raise once fired"
  | exception Budget.Exhausted Budget.Cancelled -> ()
  | exception Budget.Exhausted _ -> Alcotest.fail "wrong reason");
  (match Budget.create ~timeout:0.0 () with
  | _ -> Alcotest.fail "timeout 0 must be rejected"
  | exception Invalid_argument _ -> ())

let test_budget_deadline () =
  let b = Budget.create ~timeout:0.005 () in
  Unix.sleepf 0.02;
  Alcotest.(check bool) "deadline fired" true
    (Budget.status b = Some Budget.Deadline);
  (* First firing wins: a later cancel cannot rewrite the reason. *)
  Budget.cancel b;
  Alcotest.(check bool) "reason latched" true
    (Budget.status b = Some Budget.Deadline)

(* --- Domain_pool: fail-fast and cancellation ------------------------- *)

(* Regression: a poisoned task must abandon the job promptly, not drain
   all 1000 remaining tasks first.  Count executions, not wall time. *)
let test_pool_fail_fast () =
  with_pool 4 (fun pool ->
      let executed = Atomic.make 0 in
      (match
         Domain_pool.run pool 1000 (fun i ->
             ignore (Atomic.fetch_and_add executed 1);
             if i = 3 then failwith "poison")
       with
      | () -> Alcotest.fail "expected the poison to propagate"
      | exception Failure msg -> Alcotest.(check string) "message" "poison" msg);
      let n = Atomic.get executed in
      Alcotest.(check bool)
        (Printf.sprintf "only %d of 1000 tasks ran" n)
        true (n < 100))

let test_pool_budget_cancellation () =
  let budget = Budget.create () in
  with_pool ~budget 4 (fun pool ->
      let executed = Atomic.make 0 in
      (* Fires mid-job: the first task cancels, the rest are skipped. *)
      (match
         Domain_pool.run pool 1000 (fun _ ->
             Budget.cancel budget;
             ignore (Atomic.fetch_and_add executed 1))
       with
      | () -> Alcotest.fail "expected Exhausted"
      | exception Budget.Exhausted Budget.Cancelled -> ());
      Alcotest.(check bool) "tasks were skipped" true (Atomic.get executed < 100);
      (* Already fired on entry: nothing runs at all. *)
      match Domain_pool.run pool 8 (fun _ -> Alcotest.fail "must not run") with
      | () -> Alcotest.fail "expected Exhausted"
      | exception Budget.Exhausted Budget.Cancelled -> ())

(* --- Graceful kernel degradation ------------------------------------- *)

let cancelled_budget () =
  let b = Budget.create () in
  Budget.cancel b;
  b

let test_podem_aborts () =
  let c = Asc_circuits.Registry.get "s27" in
  let faults = Asc_fault.Collapse.reps (Asc_fault.Collapse.run c) in
  let podem = Asc_atpg.Podem.create c in
  let budget = cancelled_budget () in
  Array.iter
    (fun f ->
      match Asc_atpg.Podem.run ~budget podem f with
      | Asc_atpg.Podem.Aborted -> ()
      | _ -> Alcotest.fail "exhausted budget must yield Aborted")
    faults

let test_seq_tgen_degrades () =
  let c = Asc_circuits.Registry.get "s27" in
  let faults = Asc_fault.Collapse.reps (Asc_fault.Collapse.run c) in
  let rng = Rng.of_name ~seed:3 "robust/seq-tgen" in
  let r =
    Asc_atpg.Seq_tgen.generate ~budget:(cancelled_budget ()) c ~faults ~rng
  in
  (* The growth loop must not run; only the non-empty-T0 fallback segment
     (at most one max_seg_len chunk) may be committed. *)
  Alcotest.(check bool) "fallback T0 only" true
    (Array.length r.seq > 0
    && Array.length r.seq <= Asc_atpg.Seq_tgen.default_config.max_seg_len)

let test_run_bounded_partial_at_t0 () =
  let c = Asc_circuits.Registry.get "s27" in
  let prepared = Pipeline.prepare c in
  match Pipeline.run_bounded ~budget:(cancelled_budget ()) prepared with
  | Pipeline.Complete _ -> Alcotest.fail "expected Partial"
  | Pipeline.Partial p ->
      Alcotest.(check bool) "reason" true (p.p_reason = Budget.Cancelled);
      Alcotest.(check string) "stage" "t0-generation"
        (Pipeline.stage_to_string p.p_stage);
      Alcotest.(check int) "no iterations" 0 (List.length p.p_iterations)

(* --- Checkpoint (de)serialization ------------------------------------ *)

let synthetic_snapshot () =
  {
    Pipeline.snap_circuit = "synthetic";
    snap_pis = 3;
    snap_ffs = 4;
    snap_seed = 7;
    snap_t0 = "directed/120";
    snap_comb_size = 5;
    snap_t0_length = 120;
    snap_f0_count = 42;
    snap_iter = 2;
    snap_selected = Bitvec.of_list 5 [ 1; 3 ];
    snap_seq = [| [| true; false; true |]; [| false; false; true |] |];
    snap_best =
      Some
        (Scan_test.create
           ~si:[| true; false; false; true |]
           ~seq:[| [| false; true; false |] |]);
    snap_iterations =
      [
        { Pipeline.si_index = 2; u_so = 9; len_after_omission = 7; detected_count = 40 };
        { Pipeline.si_index = 1; u_so = 12; len_after_omission = 9; detected_count = 37 };
      ];
    snap_phase3 = None;
  }

let test_checkpoint_roundtrip () =
  let s = synthetic_snapshot () in
  let s' = Checkpoint.of_string (Checkpoint.to_string s) in
  Alcotest.(check string) "circuit" s.snap_circuit s'.snap_circuit;
  Alcotest.(check int) "iter" s.snap_iter s'.snap_iter;
  Alcotest.(check int) "t0len" s.snap_t0_length s'.snap_t0_length;
  Alcotest.(check int) "f0count" s.snap_f0_count s'.snap_f0_count;
  Alcotest.(check bool) "selected" true (Bitvec.equal s.snap_selected s'.snap_selected);
  Alcotest.(check bool) "seq" true (s.snap_seq = s'.snap_seq);
  Alcotest.(check bool) "tau" true
    (match (s.snap_best, s'.snap_best) with
    | Some a, Some b -> Scan_test.equal a b
    | None, None -> true
    | _ -> false);
  Alcotest.(check bool) "iteration log" true (s.snap_iterations = s'.snap_iterations);
  (* And through a file, including overwrite-in-place. *)
  let path = Filename.temp_file "asc-ckpt" ".txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Checkpoint.write_file path s;
      Checkpoint.write_file path s;
      let s'' = Checkpoint.read_file path in
      Alcotest.(check int) "file roundtrip iter" s.snap_iter s''.snap_iter)

(* Replace the first occurrence of [needle] in [hay] (test-local; the
   corpus lines are unique within a checkpoint). *)
let replace ~needle ~by hay =
  let nl = String.length needle in
  let rec find i =
    if i + nl > String.length hay then Alcotest.failf "missing %S" needle
    else if String.sub hay i nl = needle then i
    else find (i + 1)
  in
  let i = find 0 in
  String.sub hay 0 i ^ by ^ String.sub hay (i + nl) (String.length hay - i - nl)

(* Strip a v2 checkpoint's [crc] trailer, returning the covered body. *)
let strip_crc text =
  match String.rindex_opt (String.trim text) '\n' with
  | Some i when String.length text > i + 4 && String.sub text (i + 1) 4 = "crc " ->
      String.sub text 0 (i + 1)
  | _ -> Alcotest.fail "expected a crc trailer"

(* Recompute the trailer after a deliberate body edit, so the edit reaches
   the semantic checks instead of tripping the CRC first. *)
let restamp body = body ^ "crc " ^ Crc.to_hex (Crc.crc32 body) ^ "\n"

let test_checkpoint_corrupt () =
  let good = Checkpoint.to_string (synthetic_snapshot ()) in
  let body = strip_crc good in
  let edit ~needle ~by = restamp (replace ~needle ~by body) in
  let cases =
    [
      ("not a checkpoint", "hello\nworld\n");
      ("future version", "checkpoint v99\n");
      ("missing seq block", "checkpoint v1\ncircuit x 1 1\nseed 1\nt0 d/1\ncomb 1\n");
      ("bad bits", edit ~needle:"selected 01010" ~by:"selected 0a010");
      ("truncated block", String.sub good 0 (String.length good - 20));
      ("selected/comb mismatch", edit ~needle:"comb 5" ~by:"comb 6");
      (* v2 integrity: the trailer is mandatory, covers every body byte,
         and must not decorate a v1 file. *)
      ("v2 without its trailer", body);
      ("crc mismatch", replace ~needle:"selected 01010" ~by:"selected 01011" good);
      ("flipped trailer", replace ~needle:"crc " ~by:"crc 0" good);
      ("v1 with a trailer", replace ~needle:"checkpoint v2" ~by:"checkpoint v1" good);
      ("content after trailer", good ^ "trailing\n");
    ]
  in
  List.iter
    (fun (label, text) ->
      match Checkpoint.of_string text with
      | _ -> Alcotest.failf "%s: expected Corrupt" label
      | exception Checkpoint.Corrupt _ -> ())
    cases

(* Backward compatibility: a v1 file (no trailer) still loads. *)
let test_checkpoint_v1_loads () =
  let s = synthetic_snapshot () in
  let v1 =
    replace ~needle:"checkpoint v2" ~by:"checkpoint v1"
      (strip_crc (Checkpoint.to_string s))
  in
  let s' = Checkpoint.of_string v1 in
  Alcotest.(check int) "v1 iter" s.snap_iter s'.snap_iter;
  Alcotest.(check bool) "v1 selected" true
    (Bitvec.equal s.snap_selected s'.snap_selected)

(* --- Durability property: no corruption loads a differing snapshot ----- *)

let snapshot_equal (a : Pipeline.snapshot) (b : Pipeline.snapshot) =
  a.snap_circuit = b.snap_circuit && a.snap_pis = b.snap_pis
  && a.snap_ffs = b.snap_ffs && a.snap_seed = b.snap_seed
  && a.snap_t0 = b.snap_t0 && a.snap_comb_size = b.snap_comb_size
  && a.snap_t0_length = b.snap_t0_length && a.snap_f0_count = b.snap_f0_count
  && a.snap_iter = b.snap_iter
  && Bitvec.equal a.snap_selected b.snap_selected
  && a.snap_seq = b.snap_seq
  && (match (a.snap_best, b.snap_best) with
     | Some x, Some y -> Scan_test.equal x y
     | None, None -> true
     | _ -> false)
  && a.snap_iterations = b.snap_iterations
  && (match (a.snap_phase3, b.snap_phase3) with
     | Some x, Some y ->
         Bitvec.equal x.Pipeline.ph3_uncovered y.Pipeline.ph3_uncovered
         && Array.length x.ph3_added = Array.length y.ph3_added
         && Array.for_all2 Scan_test.equal x.ph3_added y.ph3_added
     | None, None -> true
     | _ -> false)

let random_snapshot rng =
  let pis = 1 + Rng.int rng 6 in
  let ffs = 1 + Rng.int rng 6 in
  let comb = 1 + Rng.int rng 8 in
  let bits n = Array.init n (fun _ -> Rng.int rng 2 = 1) in
  let seq len = Array.init len (fun _ -> bits pis) in
  {
    Pipeline.snap_circuit = Printf.sprintf "rand%d" (Rng.int rng 100);
    snap_pis = pis;
    snap_ffs = ffs;
    snap_seed = Rng.int rng 10_000;
    snap_t0 = Printf.sprintf "directed/%d" (1 + Rng.int rng 500);
    snap_comb_size = comb;
    snap_t0_length = Rng.int rng 1000;
    snap_f0_count = Rng.int rng 1000;
    snap_iter = Rng.int rng 30;
    snap_selected =
      Bitvec.of_list comb
        (List.filter (fun _ -> Rng.int rng 2 = 0) (List.init comb Fun.id));
    snap_seq = seq (1 + Rng.int rng 4);
    snap_best =
      (if Rng.int rng 2 = 0 then None
       else Some (Scan_test.create ~si:(bits ffs) ~seq:(seq (1 + Rng.int rng 3))));
    snap_iterations =
      List.init (Rng.int rng 4) (fun i ->
          {
            Pipeline.si_index = Rng.int rng comb;
            u_so = Rng.int rng 50;
            len_after_omission = Rng.int rng 50;
            detected_count = i + Rng.int rng 100;
          });
    snap_phase3 = None;
  }

(* A random post-Phase-3 snapshot: tau is mandatory, plus 0–3 added
   length-one tests and an uncovered set over a random fault universe. *)
let random_phase3_snapshot rng =
  let base = random_snapshot rng in
  let pis = base.Pipeline.snap_pis and ffs = base.Pipeline.snap_ffs in
  let bits n = Array.init n (fun _ -> Rng.int rng 2 = 1) in
  let n_faults = 1 + Rng.int rng 40 in
  {
    base with
    Pipeline.snap_best =
      Some
        (Scan_test.create ~si:(bits ffs)
           ~seq:(Array.init (1 + Rng.int rng 3) (fun _ -> bits pis)));
    snap_phase3 =
      Some
        {
          Pipeline.ph3_added =
            Array.init (Rng.int rng 4) (fun _ ->
                Scan_test.create ~si:(bits ffs) ~seq:[| bits pis |]);
          ph3_uncovered =
            Bitvec.init n_faults (fun _ -> Rng.int rng 2 = 1);
        };
  }

(* For 40 random snapshots: the serialized form round-trips exactly, and
   neither random truncation nor a single flipped bit can ever load as a
   snapshot that differs from what was saved. *)
let test_checkpoint_durability_property () =
  let rng = Rng.of_name ~seed:11 "robust/durability" in
  for round = 1 to 40 do
    (* Every third round exercises the post-Phase-3 extension of the
       format (phase3 line + add blocks). *)
    let s =
      if round mod 3 = 0 then random_phase3_snapshot rng else random_snapshot rng
    in
    let text = Checkpoint.to_string s in
    Alcotest.(check bool) "round-trips exactly" true
      (snapshot_equal s (Checkpoint.of_string text));
    let check_mutant label mutant =
      match Checkpoint.of_string mutant with
      | s' ->
          Alcotest.(check bool) (label ^ ": loaded a differing snapshot") true
            (snapshot_equal s s')
      | exception Checkpoint.Corrupt _ -> ()
    in
    for _ = 1 to 12 do
      (* Truncation at a random byte boundary. *)
      check_mutant "truncation" (String.sub text 0 (Rng.int rng (String.length text)));
      (* Single bit flip at a random position. *)
      let i = Rng.int rng (String.length text) in
      let b = Bytes.of_string text in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl Rng.int rng 8)));
      check_mutant "bit flip" (Bytes.to_string b)
    done
  done

let test_checkpoint_incompatible () =
  let c = Asc_circuits.Registry.get "s27" in
  let config = Pipeline.default_config in
  let prepared = Pipeline.prepare ~config c in
  let s = synthetic_snapshot () in
  match Checkpoint.validate prepared ~config s with
  | () -> Alcotest.fail "expected Incompatible"
  | exception Checkpoint.Incompatible msg ->
      Alcotest.(check bool) "names the field" true
        (String.length msg > 0)

(* --- Interrupt / resume determinism ---------------------------------- *)

(* The headline guarantee: cancel a run at an iteration boundary, resume
   from the snapshot it checkpointed, and the final test set and N_cyc
   are bit-identical to the uninterrupted run — for 1 and 4 domains. *)
let check_resume_deterministic name =
  let c = Asc_circuits.Registry.get name in
  let t0_source = Pipeline.Directed (Asc_circuits.Registry.t0_budget name) in
  let config = Asc_core.Experiments.config_for ~seed:1 ~t0_source in
  let prepared = Pipeline.prepare ~config c in
  let reference =
    match Pipeline.run_bounded ~config prepared with
    | Pipeline.Complete r -> r
    | Pipeline.Partial _ -> Alcotest.fail "reference run must complete"
  in
  Alcotest.(check bool)
    (name ^ ": needs a second iteration to be a meaningful test")
    true
    (List.length reference.iterations >= 2);
  (* Interrupt: the checkpoint callback records the snapshot, then fires
     the budget; the loop unwinds at the next iteration's poll. *)
  let budget = Budget.create () in
  let recorded = ref None in
  let outcome =
    Pipeline.run_bounded ~budget ~config
      ~on_checkpoint:(fun snap ->
        if !recorded = None then begin
          recorded := Some snap;
          Budget.cancel budget
        end)
      prepared
  in
  let partial =
    match outcome with
    | Pipeline.Partial p -> p
    | Pipeline.Complete _ -> Alcotest.fail "cancelled run must be Partial"
  in
  Alcotest.(check bool) (name ^ ": partial carries the best test so far") true
    (Array.length partial.p_tests > 0 && Bitvec.count partial.p_detected > 0);
  let snap = match !recorded with Some s -> s | None -> Alcotest.fail "no checkpoint" in
  (* Resume, sequentially and under 1- and 4-domain pools. *)
  let check_resumed label resumed =
    Alcotest.(check bool) (name ^ " " ^ label ^ ": test count") true
      (Array.length resumed.Pipeline.final_tests
      = Array.length reference.final_tests);
    Alcotest.(check bool) (name ^ " " ^ label ^ ": tests bit-identical") true
      (Array.for_all2 Scan_test.equal reference.final_tests resumed.final_tests);
    Alcotest.(check int) (name ^ " " ^ label ^ ": N_cyc") reference.cycles_final
      resumed.cycles_final;
    Alcotest.(check bool) (name ^ " " ^ label ^ ": coverage") true
      (Bitvec.equal reference.final_detected resumed.final_detected);
    Alcotest.(check bool) (name ^ " " ^ label ^ ": iteration log") true
      (reference.iterations = resumed.iterations)
  in
  let resume_with pool =
    match Pipeline.run_bounded ?pool ~config ~resume:snap prepared with
    | Pipeline.Complete r -> r
    | Pipeline.Partial _ -> Alcotest.fail "resumed run must complete"
  in
  check_resumed "sequential resume" (resume_with None);
  List.iter
    (fun domains ->
      with_pool domains (fun pool ->
          check_resumed
            (Printf.sprintf "resume (%d domains)" domains)
            (resume_with (Some pool))))
    [ 1; 4 ];
  (* A checkpoint that has been through the file format resumes the same. *)
  let snap' = Checkpoint.of_string (Checkpoint.to_string snap) in
  Checkpoint.validate prepared ~config snap';
  check_resumed "resume via serialized checkpoint"
    (match Pipeline.run_bounded ~config ~resume:snap' prepared with
    | Pipeline.Complete r -> r
    | Pipeline.Partial _ -> Alcotest.fail "resumed run must complete")

let test_resume_s298 () = check_resume_deterministic "s298"
let test_resume_s344 () = check_resume_deterministic "s344"

(* Late interruption: capture the post-Phase-3 snapshot (the last one a
   run writes), resume from it — straight into Phase 4 — and require the
   final result bit-identical to the uninterrupted reference, sequentially
   and on a 4-domain pool, including after a trip through the file
   format. *)
let test_resume_from_phase3_snapshot () =
  let name = "s298" in
  let c = Asc_circuits.Registry.get name in
  let config =
    Asc_core.Experiments.config_for ~seed:1
      ~t0_source:(Pipeline.Directed (Asc_circuits.Registry.t0_budget name))
  in
  let prepared = Pipeline.prepare ~config c in
  let last_snap = ref None in
  let reference =
    match
      Pipeline.run_bounded ~config
        ~on_checkpoint:(fun snap -> last_snap := Some snap)
        prepared
    with
    | Pipeline.Complete r -> r
    | Pipeline.Partial _ -> Alcotest.fail "reference run must complete"
  in
  let snap =
    match !last_snap with
    | Some s -> s
    | None -> Alcotest.fail "no checkpoint recorded"
  in
  Alcotest.(check bool) "last snapshot is the post-Phase-3 one" true
    (snap.Pipeline.snap_phase3 <> None);
  let check_resumed label resumed =
    Alcotest.(check bool) (label ^ ": tests bit-identical") true
      (Array.length resumed.Pipeline.final_tests
       = Array.length reference.final_tests
      && Array.for_all2 Scan_test.equal reference.final_tests resumed.final_tests);
    Alcotest.(check int) (label ^ ": N_cyc") reference.cycles_final
      resumed.cycles_final;
    Alcotest.(check int) (label ^ ": N_cyc initial") reference.cycles_initial
      resumed.cycles_initial;
    Alcotest.(check bool) (label ^ ": coverage") true
      (Bitvec.equal reference.final_detected resumed.final_detected);
    Alcotest.(check bool) (label ^ ": uncovered") true
      (Bitvec.equal reference.uncovered resumed.uncovered);
    Alcotest.(check bool) (label ^ ": added tests") true
      (Array.length resumed.added = Array.length reference.added
      && Array.for_all2 Scan_test.equal reference.added resumed.added);
    Alcotest.(check bool) (label ^ ": iteration log") true
      (reference.iterations = resumed.iterations)
  in
  let resume_with pool snap =
    match Pipeline.run_bounded ?pool ~config ~resume:snap prepared with
    | Pipeline.Complete r -> r
    | Pipeline.Partial _ -> Alcotest.fail "resumed run must complete"
  in
  check_resumed "phase3 resume (sequential)" (resume_with None snap);
  with_pool 4 (fun pool ->
      check_resumed "phase3 resume (4 domains)" (resume_with (Some pool) snap));
  let snap' = Checkpoint.of_string (Checkpoint.to_string snap) in
  Checkpoint.validate prepared ~config snap';
  Alcotest.(check bool) "phase3 survives the file format" true
    (snap'.Pipeline.snap_phase3 <> None);
  check_resumed "phase3 resume via serialized checkpoint" (resume_with None snap')

(* A phase3 snapshot whose uncovered set is sized to a different fault
   universe must be rejected, both by validate and by run_bounded. *)
let test_phase3_snapshot_rejects_mismatch () =
  let name = "s27" in
  let c = Asc_circuits.Registry.get name in
  let config = Pipeline.default_config in
  let prepared = Pipeline.prepare ~config c in
  let last_snap = ref None in
  (match
     Pipeline.run_bounded ~config
       ~on_checkpoint:(fun snap -> last_snap := Some snap)
       prepared
   with
  | Pipeline.Complete _ -> ()
  | Pipeline.Partial _ -> Alcotest.fail "run must complete");
  let snap = match !last_snap with Some s -> s | None -> Alcotest.fail "no snap" in
  let bad =
    {
      snap with
      Pipeline.snap_phase3 =
        Some { Pipeline.ph3_added = [||]; ph3_uncovered = Bitvec.create 1 };
    }
  in
  (match Checkpoint.validate prepared ~config bad with
  | () -> Alcotest.fail "validate must reject a mismatched phase3 universe"
  | exception Checkpoint.Incompatible _ -> ());
  match Pipeline.run_bounded ~config ~resume:bad prepared with
  | _ -> Alcotest.fail "run_bounded must reject a mismatched phase3 universe"
  | exception Invalid_argument _ -> ()

let test_resume_rejects_mismatch () =
  let c = Asc_circuits.Registry.get "s27" in
  let config = Pipeline.default_config in
  let prepared = Pipeline.prepare ~config c in
  match Pipeline.run_bounded ~config ~resume:(synthetic_snapshot ()) prepared with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let suite =
  [
    ( "robustness",
      [
        Alcotest.test_case "budget latches a single reason" `Quick test_budget_basic;
        Alcotest.test_case "deadline fires and wins" `Quick test_budget_deadline;
        Alcotest.test_case "pool abandons a poisoned job promptly" `Quick
          test_pool_fail_fast;
        Alcotest.test_case "pool honours budget cancellation" `Quick
          test_pool_budget_cancellation;
        Alcotest.test_case "podem returns Aborted on exhausted budget" `Quick
          test_podem_aborts;
        Alcotest.test_case "seq_tgen degrades to committed prefix" `Quick
          test_seq_tgen_degrades;
        Alcotest.test_case "run_bounded reports Partial at t0 stage" `Quick
          test_run_bounded_partial_at_t0;
        Alcotest.test_case "checkpoint round-trips" `Quick test_checkpoint_roundtrip;
        Alcotest.test_case "corrupt checkpoints are rejected" `Quick
          test_checkpoint_corrupt;
        Alcotest.test_case "v1 checkpoints still load" `Quick
          test_checkpoint_v1_loads;
        Alcotest.test_case "no corruption loads a differing snapshot" `Quick
          test_checkpoint_durability_property;
        Alcotest.test_case "incompatible checkpoints are rejected" `Quick
          test_checkpoint_incompatible;
        Alcotest.test_case "resume rejects mismatched snapshots" `Quick
          test_resume_rejects_mismatch;
        Alcotest.test_case "interrupt/resume is bit-identical on s298" `Slow
          test_resume_s298;
        Alcotest.test_case "interrupt/resume is bit-identical on s344" `Slow
          test_resume_s344;
        Alcotest.test_case "post-Phase-3 resume is bit-identical" `Slow
          test_resume_from_phase3_snapshot;
        Alcotest.test_case "phase3 snapshot universe mismatch is rejected" `Quick
          test_phase3_snapshot_rejects_mismatch;
      ] );
  ]
