(* Tests for the extension modules: the genetic sequence generator, the
   transfer-sequence compaction of [7], partial scan, the multi-chain time
   model, test-set serialization, and the i0/i1 scan-out policies. *)

open Asc_util
module Circuit = Asc_netlist.Circuit
module Scan_test = Asc_scan.Scan_test
module Collapse = Asc_fault.Collapse

let qtest = QCheck_alcotest.to_alcotest

let small_circuit seed =
  Asc_circuits.Profile.make "ext" 4 3 5 45 ~t0_budget:10
  |> Asc_circuits.Generator.generate ~seed

(* --- Genetic sequence generation --------------------------------------- *)

let test_ga_tgen_consistency () =
  let c = Asc_circuits.Registry.get "s298" in
  let faults = Collapse.reps (Collapse.run c) in
  let rng = Rng.create 5 in
  let cfg = { Asc_atpg.Ga_tgen.default_config with budget = 120 } in
  let r = Asc_atpg.Ga_tgen.generate ~config:cfg c ~faults ~rng in
  Alcotest.(check bool) "non-empty" true (Array.length r.seq > 0);
  Alcotest.(check bool) "within budget" true (Array.length r.seq <= 120);
  let batch = Asc_fault.Seq_fsim.detect_no_scan c ~seq:r.seq ~faults in
  Alcotest.(check bool) "coverage consistent" true (Bitvec.equal r.detected batch);
  Alcotest.(check bool) "detects a majority" true
    (2 * Bitvec.count r.detected > Array.length faults)

let test_ga_deterministic () =
  let c = Asc_circuits.Registry.get "s27" in
  let faults = Collapse.reps (Collapse.run c) in
  let cfg = { Asc_atpg.Ga_tgen.default_config with budget = 40 } in
  let r1 = Asc_atpg.Ga_tgen.generate ~config:cfg c ~faults ~rng:(Rng.create 9) in
  let r2 = Asc_atpg.Ga_tgen.generate ~config:cfg c ~faults ~rng:(Rng.create 9) in
  Alcotest.(check bool) "same sequence" true (r1.seq = r2.seq)

(* --- Transfer sequences ([7]) ------------------------------------------- *)

let prop_transfer_preserves_coverage =
  QCheck.Test.make ~name:"transfer compaction preserves coverage, not worse than [4]"
    ~count:6
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c = small_circuit seed in
      let faults = Collapse.reps (Collapse.run c) in
      let rng = Rng.create (seed + 61) in
      let tests = ref [] in
      while List.length !tests < 10 do
        let p =
          Asc_sim.Pattern.random rng ~n_pis:(Circuit.n_inputs c)
            ~n_ffs:(Circuit.n_dffs c)
        in
        let t = Scan_test.of_pattern p in
        if not (Bitvec.is_empty (Scan_test.detect c t ~faults)) then
          tests := t :: !tests
      done;
      let tests = Array.of_list !tests in
      let targets = Asc_scan.Tset.coverage c tests ~faults in
      let plain = Asc_compact.Combine.run c tests ~faults ~targets in
      let tr = Asc_compact.Transfer.run c tests ~faults ~targets ~rng in
      let cov result_tests =
        Bitvec.inter (Asc_scan.Tset.coverage c result_tests ~faults) targets
      in
      Bitvec.equal (cov tr.tests) targets
      && Asc_scan.Time_model.cycles_of_tests c tr.tests
         <= Asc_scan.Time_model.cycles_of_tests c plain.tests
      && Array.length tr.tests
         = Array.length tests - tr.combinations - tr.transfers)

(* --- Partial scan -------------------------------------------------------- *)

let test_partial_chain_selection () =
  let c = Asc_circuits.Registry.get "s298" in
  let full = Asc_scan.Partial.full_chain c in
  Alcotest.(check int) "full chain" (Circuit.n_dffs c) (Asc_scan.Partial.n_scanned full);
  let half = Asc_scan.Partial.by_fanout c ~ratio:0.5 in
  Alcotest.(check int) "half chain" 7 (Asc_scan.Partial.n_scanned half);
  let none = Asc_scan.Partial.by_fanout c ~ratio:0.0 in
  Alcotest.(check int) "no chain" 0 (Asc_scan.Partial.n_scanned none)

(* Full-chain partial-scan detection equals the binary simulator's. *)
let prop_partial_full_chain_equals_full_scan =
  QCheck.Test.make ~name:"partial scan with a full chain = full scan" ~count:8
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c = small_circuit seed in
      let faults = Collapse.reps (Collapse.run c) in
      let rng = Rng.create (seed + 62) in
      let t =
        Scan_test.create
          ~si:(Rng.bool_array rng (Circuit.n_dffs c))
          ~seq:(Array.init 5 (fun _ -> Rng.bool_array rng (Circuit.n_inputs c)))
      in
      let chain = Asc_scan.Partial.full_chain c in
      Bitvec.equal
        (Asc_scan.Partial.detect c chain t ~faults)
        (Scan_test.detect c t ~faults))

(* Shrinking the chain never detects more (3-valued pessimism is
   monotone in the scanned set). *)
let prop_partial_monotone =
  QCheck.Test.make ~name:"smaller chains detect no more faults" ~count:8
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c = small_circuit seed in
      let faults = Collapse.reps (Collapse.run c) in
      let rng = Rng.create (seed + 63) in
      let t =
        Scan_test.create
          ~si:(Rng.bool_array rng (Circuit.n_dffs c))
          ~seq:(Array.init 6 (fun _ -> Rng.bool_array rng (Circuit.n_inputs c)))
      in
      let full = Asc_scan.Partial.detect c (Asc_scan.Partial.full_chain c) t ~faults in
      let half =
        Asc_scan.Partial.detect c (Asc_scan.Partial.by_fanout c ~ratio:0.5) t ~faults
      in
      Bitvec.subset half full)

let test_partial_cycles () =
  let c = Asc_circuits.Registry.get "s298" in
  let rng = Rng.create 3 in
  let tests =
    Array.init 4 (fun _ ->
        Scan_test.create
          ~si:(Rng.bool_array rng (Circuit.n_dffs c))
          ~seq:[| Rng.bool_array rng (Circuit.n_inputs c) |])
  in
  let half = Asc_scan.Partial.by_fanout c ~ratio:0.5 in
  Alcotest.(check int) "half-chain cycles" ((5 * 7) + 4)
    (Asc_scan.Partial.cycles c half tests)

(* --- Multi-chain time model ---------------------------------------------- *)

let test_multi_chain () =
  let lengths = [ 3; 5 ] in
  Alcotest.(check int) "1 chain = paper model"
    (Asc_scan.Time_model.cycles ~n_sv:20 lengths)
    (Asc_scan.Time_model.cycles_multi_chain ~n_sv:20 ~chains:1 lengths);
  Alcotest.(check int) "4 chains" ((3 * 5) + 8)
    (Asc_scan.Time_model.cycles_multi_chain ~n_sv:20 ~chains:4 lengths);
  (* Rounding up on uneven splits. *)
  Alcotest.(check int) "uneven split" ((3 * 7) + 8)
    (Asc_scan.Time_model.cycles_multi_chain ~n_sv:20 ~chains:3 lengths)

(* --- Test-set serialization ----------------------------------------------- *)

let prop_tset_io_roundtrip =
  QCheck.Test.make ~name:"test-set serialization round-trips" ~count:10
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c = small_circuit seed in
      let rng = Rng.create (seed + 64) in
      let tests =
        Array.init
          (1 + Rng.int rng 6)
          (fun _ ->
            Scan_test.create
              ~si:(Rng.bool_array rng (Circuit.n_dffs c))
              ~seq:
                (Array.init (1 + Rng.int rng 4) (fun _ ->
                     Rng.bool_array rng (Circuit.n_inputs c))))
      in
      let text = Asc_scan.Tset_io.to_string c tests in
      let loaded = Asc_scan.Tset_io.check_compatible c (Asc_scan.Tset_io.of_string text) in
      Array.length loaded = Array.length tests
      && Array.for_all2 Scan_test.equal loaded tests)

let test_tset_io_errors () =
  let expect_error text =
    match Asc_scan.Tset_io.of_string text with
    | exception Asc_scan.Tset_io.Format_error _ -> ()
    | _ -> Alcotest.fail "expected format error"
  in
  expect_error "test\nsi 01\nv 1\nend\n" (* missing header *);
  expect_error "circuit x 1 2\nsi 01\n" (* si outside test *);
  expect_error "circuit x 1 2\ntest\nv 1\nend\n" (* no si *);
  expect_error "circuit x 1 2\ntest\nsi 01\nend\n" (* no vectors *);
  expect_error "circuit x 1 2\ntest\nsi 0z\nv 1\nend\n" (* bad bit *);
  let c = Asc_circuits.Registry.get "s27" in
  match
    Asc_scan.Tset_io.check_compatible c ("not-s27", [||])
  with
  | exception Asc_scan.Tset_io.Format_error _ -> ()
  | _ -> Alcotest.fail "expected circuit-name mismatch"

(* --- Scan-out policies (i0 vs i1) ------------------------------------------ *)

let test_scan_out_policies () =
  let c = Asc_circuits.Registry.get "s298" in
  let faults = Collapse.reps (Collapse.run c) in
  let targets = Bitvec.create ~default:true (Array.length faults) in
  let rng = Rng.create 11 in
  let t0 = Asc_atpg.Random_tgen.generate rng ~n_pis:(Circuit.n_inputs c) ~len:40 in
  let si = Rng.bool_array rng (Circuit.n_dffs c) in
  let f_si =
    Bitvec.inter (Asc_fault.Seq_fsim.detect c ~si ~seq:t0 ~faults) targets
  in
  let i0 =
    Asc_core.Phase1.select_scan_out ~policy:Asc_core.Phase1.Earliest c ~faults ~si ~t0
      ~f_si ~targets
  in
  let i1 =
    Asc_core.Phase1.select_scan_out ~policy:Asc_core.Phase1.Max_detection c ~faults ~si
      ~t0 ~f_si ~targets
  in
  (* Both keep F_SI; i1 detects at least as much and is never shorter than
     necessary for that. *)
  Alcotest.(check bool) "i0 keeps F_SI" true (Bitvec.subset f_si i0.f_so);
  Alcotest.(check bool) "i1 keeps F_SI" true (Bitvec.subset f_si i1.f_so);
  Alcotest.(check bool) "i1 detects >= i0" true
    (Bitvec.count i1.f_so >= Bitvec.count i0.f_so);
  Alcotest.(check bool) "i0 is earliest" true (i0.u <= i1.u)

let suite =
  [
    ( "extensions",
      [
        Alcotest.test_case "ga_tgen consistency" `Quick test_ga_tgen_consistency;
        Alcotest.test_case "ga_tgen deterministic" `Quick test_ga_deterministic;
        qtest prop_transfer_preserves_coverage;
        Alcotest.test_case "partial chain selection" `Quick test_partial_chain_selection;
        qtest prop_partial_full_chain_equals_full_scan;
        qtest prop_partial_monotone;
        Alcotest.test_case "partial cycles" `Quick test_partial_cycles;
        Alcotest.test_case "multi-chain model" `Quick test_multi_chain;
        qtest prop_tset_io_roundtrip;
        Alcotest.test_case "tset_io errors" `Quick test_tset_io_errors;
        Alcotest.test_case "scan-out policies" `Quick test_scan_out_policies;
      ] );
  ]
