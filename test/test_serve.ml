(* Tests for the serving layer (docs/SERVING.md): scheduler fairness,
   budgets and caching; protocol codecs (including QCheck round-trips of
   the JSON parser and the test-set format the responses embed); and
   black-box suites driving the real `asc serve` binary over a Unix
   socket — protocol conformance with golden transcripts, malformed-frame
   fuzzing, served-vs-one-shot determinism at several pool sizes, and a
   chaos kill/resume soak. *)

open Asc_util
module Scheduler = Asc_core.Scheduler
module Protocol = Asc_core.Protocol
module Scan_test = Asc_scan.Scan_test
module Tset_io = Asc_scan.Tset_io

let qtest = QCheck_alcotest.to_alcotest

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let spec ?circuit ?netlist ?(seed = 1) ?(t0 = "directed") ?timeout () =
  { Scheduler.sp_circuit = circuit; sp_netlist = netlist; sp_seed = seed;
    sp_t0 = t0; sp_timeout = timeout }

let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  path

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

(* Run a spec on a throwaway scheduler and return its result — the
   reference the sharing/serving tests compare against. *)
let solo_result ?pool sp =
  let sched = Scheduler.create ?pool () in
  match Scheduler.submit sched ~source:0 sp with
  | Scheduler.Accepted _ -> (
      match Scheduler.run_next sched with
      | Some (_, r) -> r
      | None -> Alcotest.fail "solo job did not run")
  | _ -> Alcotest.fail "solo submit not accepted"

(* --- Scheduler: resolution, fairness, caching -------------------------- *)

let test_scheduler_rejects () =
  let sched = Scheduler.create () in
  let reject sp msg_part =
    match Scheduler.submit sched ~source:0 sp with
    | Scheduler.Rejected m ->
        Alcotest.(check bool)
          (Printf.sprintf "rejection mentions %S (got %S)" msg_part m)
          true (contains m msg_part)
    | _ -> Alcotest.failf "spec should be rejected (%s)" msg_part
  in
  reject (spec ()) "needs a circuit";
  reject (spec ~circuit:"nosuch" ()) "unknown circuit";
  reject (spec ~circuit:"s27" ~netlist:"INPUT(a)" ()) "not both";
  reject (spec ~circuit:"s27" ~t0:"genetic?" ()) "bad t0";
  reject (spec ~netlist:"a = FROB(b)" ()) "parse error";
  Alcotest.(check int) "nothing queued" 0 (Scheduler.pending sched)

let test_scheduler_round_robin () =
  let sched = Scheduler.create () in
  let submit source seed =
    match Scheduler.submit sched ~source (spec ~circuit:"s27" ~seed ()) with
    | Scheduler.Accepted j -> j.Scheduler.j_id
    | _ -> Alcotest.fail "expected Accepted"
  in
  (* Source 1 floods three jobs before source 2's single job arrives; the
     rotation must still serve source 2 second, not last. *)
  let a = submit 1 1 and b = submit 1 2 and c = submit 1 3 in
  let d = submit 2 4 in
  Alcotest.(check int) "pending" 4 (Scheduler.pending sched);
  let order =
    List.map
      (fun _ ->
        match Scheduler.run_next sched with
        | Some (j, _) -> j.Scheduler.j_id
        | None -> Alcotest.fail "queue drained early")
      [ (); (); (); () ]
  in
  Alcotest.(check (list int)) "round-robin dispatch order" [ a; d; b; c ] order;
  Alcotest.(check int) "drained" 0 (Scheduler.pending sched)

let test_scheduler_cache_and_counters () =
  let tel = Telemetry.create () in
  let sched = Scheduler.create ~tel () in
  let sp = spec ~circuit:"s27" () in
  (match Scheduler.submit sched ~source:0 sp with
  | Scheduler.Accepted _ -> ()
  | _ -> Alcotest.fail "first submit should queue");
  let first =
    match Scheduler.run_next sched with
    | Some (_, r) -> r
    | None -> Alcotest.fail "job did not run"
  in
  Alcotest.(check bool) "first completes" true
    (first.Scheduler.r_status = Scheduler.Complete);
  (match Scheduler.submit sched ~source:5 sp with
  | Scheduler.Cached r ->
      Alcotest.(check bool) "cached result carries the same test set" true
        (r.Scheduler.r_tset = first.Scheduler.r_tset && r.Scheduler.r_tset <> None)
  | _ -> Alcotest.fail "second submit should hit the cache");
  let snap = Telemetry.drain tel in
  let count name = Telemetry.counter_value snap name in
  Alcotest.(check int) "jobs_submitted" 2 (count "jobs_submitted");
  Alcotest.(check int) "jobs_completed" 1 (count "jobs_completed");
  Alcotest.(check int) "result_cache_hits" 1 (count "result_cache_hits");
  Alcotest.(check int) "result_cache_misses" 1 (count "result_cache_misses")

let test_scheduler_key_canonical () =
  let key sp =
    match Scheduler.key_of_spec sp with
    | Ok k -> k
    | Error e -> Alcotest.failf "key_of_spec failed: %s" e
  in
  let text =
    Asc_netlist.Bench_io.to_string (Asc_circuits.Registry.get ~seed:1 "s27")
  in
  (* Reformatting the same netlist (comments, blank lines) must not change
     the cache line: the key hashes the canonical rendering. *)
  let noisy = "# reformatted copy\n\n" ^ text ^ "\n# trailing comment\n" in
  Alcotest.(check string) "whitespace-insensitive key"
    (key (spec ~netlist:text ()))
    (key (spec ~netlist:noisy ()));
  Alcotest.(check bool) "seed changes the key" true
    (key (spec ~circuit:"s27" ~seed:1 ()) <> key (spec ~circuit:"s27" ~seed:2 ()));
  Alcotest.(check bool) "t0 source changes the key" true
    (key (spec ~circuit:"s27" ~t0:"directed" ())
    <> key (spec ~circuit:"s27" ~t0:"random" ()));
  Alcotest.(check bool) "timeout does not change the key" true
    (key (spec ~circuit:"s27" ()) = key (spec ~circuit:"s27" ~timeout:9.0 ()))

(* Satellite: two jobs sharing one pool; the first hits its deadline and
   must neither poison the pool nor starve the second job. *)
let test_contention_deadline_isolation () =
  let pool = Domain_pool.create ~domains:2 () in
  Fun.protect
    ~finally:(fun () -> Domain_pool.shutdown pool)
    (fun () ->
      let sched = Scheduler.create ~pool () in
      (* s1423 is far too big to finish in 1ms even with a warm
         good-trace cache (smaller circuits can, when the full suite has
         already populated the process-global cache). *)
      (match
         Scheduler.submit sched ~source:1 (spec ~circuit:"s1423" ~timeout:0.001 ())
       with
      | Scheduler.Accepted _ -> ()
      | _ -> Alcotest.fail "deadline job should queue");
      (match Scheduler.submit sched ~source:2 (spec ~circuit:"s27" ()) with
      | Scheduler.Accepted _ -> ()
      | _ -> Alcotest.fail "second job should queue");
      let doomed =
        match Scheduler.run_next sched with
        | Some (j, r) ->
            Alcotest.(check string) "deadline job first" "s1423" j.Scheduler.j_name;
            r
        | None -> Alcotest.fail "no job ran"
      in
      (match doomed.Scheduler.r_status with
      | Scheduler.Partial { reason; _ } ->
          Alcotest.(check string) "deadline reason" "deadline" reason
      | Scheduler.Complete -> Alcotest.fail "1ms job completed"
      | Scheduler.Failed m -> Alcotest.failf "1ms job failed: %s" m);
      let survivor =
        match Scheduler.run_next sched with
        | Some (_, r) -> r
        | None -> Alcotest.fail "second job vanished"
      in
      Alcotest.(check bool) "survivor completes" true
        (survivor.Scheduler.r_status = Scheduler.Complete);
      (* Bit-identical to a run that never shared anything. *)
      let reference = solo_result (spec ~circuit:"s27" ()) in
      Alcotest.(check bool) "survivor matches solo run" true
        (survivor.Scheduler.r_tset = reference.Scheduler.r_tset
        && survivor.Scheduler.r_tset <> None))

(* In-process mirror of the kill/resume soak: a chaos Kill during the
   second checkpoint write crashes the job; a fresh scheduler over the
   same state dir resumes it and must reproduce the uninterrupted result
   bit-identically. *)
let test_kill_resume_in_process () =
  let state = temp_dir "asc-serve-state" in
  Fun.protect
    ~finally:(fun () -> rm_rf state)
    (fun () ->
      let sp = spec ~circuit:"s298" () in
      let chaos =
        Chaos.create
          [ { Chaos.point = Chaos.checkpoint_output; occurrence = 2;
              action = Chaos.Kill } ]
      in
      let sched = Scheduler.create ~chaos ~state_dir:state () in
      (match Scheduler.submit sched ~source:0 sp with
      | Scheduler.Accepted _ -> ()
      | _ -> Alcotest.fail "submit should queue");
      (match Scheduler.run_next sched with
      | exception Chaos.Killed _ -> ()
      | _ -> Alcotest.fail "chaos Kill must propagate out of run_next");
      (* The crash left a valid snapshot; a new scheduler resumes it. *)
      let tel = Telemetry.create () in
      let sched2 = Scheduler.create ~tel ~state_dir:state () in
      (match Scheduler.submit sched2 ~source:0 sp with
      | Scheduler.Accepted _ -> ()
      | _ -> Alcotest.fail "resubmit should queue (new cache)");
      let resumed =
        match Scheduler.run_next sched2 with
        | Some (_, r) -> r
        | None -> Alcotest.fail "resumed job did not run"
      in
      Alcotest.(check bool) "resumed job completes" true
        (resumed.Scheduler.r_status = Scheduler.Complete);
      Alcotest.(check bool) "r_resumed set" true resumed.Scheduler.r_resumed;
      let snap = Telemetry.drain tel in
      Alcotest.(check int) "jobs_resumed counter" 1
        (Telemetry.counter_value snap "jobs_resumed");
      let reference = solo_result sp in
      Alcotest.(check bool) "bit-identical to uninterrupted run" true
        (resumed.Scheduler.r_tset = reference.Scheduler.r_tset
        && resumed.Scheduler.r_tset <> None))

(* --- Result_cache: persistence, codec, corruption tolerance ------------ *)

module Result_cache = Asc_core.Result_cache

(* A daemon restart is a fresh scheduler over the same state dir: the
   resubmission must be served from the on-disk result store, flagged by
   the persisted-hits counter, with the test set byte-identical. *)
let test_persisted_cache_restart () =
  let state = temp_dir "asc-rescache" in
  Fun.protect ~finally:(fun () -> rm_rf state) @@ fun () ->
  let sp = spec ~circuit:"s27" () in
  let sched = Scheduler.create ~state_dir:state () in
  (match Scheduler.submit sched ~source:0 sp with
  | Scheduler.Accepted _ -> ()
  | _ -> Alcotest.fail "first submit should queue");
  let first =
    match Scheduler.run_next sched with
    | Some (_, r) -> r
    | None -> Alcotest.fail "job did not run"
  in
  Alcotest.(check bool) "first completes" true
    (first.Scheduler.r_status = Scheduler.Complete);
  let tel = Telemetry.create () in
  let sched2 = Scheduler.create ~tel ~state_dir:state () in
  (match Scheduler.submit sched2 ~source:0 sp with
  | Scheduler.Cached r ->
      Alcotest.(check bool) "persisted result is byte-identical" true
        (r.Scheduler.r_tset = first.Scheduler.r_tset
        && r.Scheduler.r_tset <> None)
  | _ -> Alcotest.fail "restart resubmit should hit the persistent cache");
  let snap = Telemetry.drain tel in
  Alcotest.(check int) "result_cache_persisted_hits" 1
    (Telemetry.counter_value snap "result_cache_persisted_hits");
  Alcotest.(check int) "result_cache_hits" 1
    (Telemetry.counter_value snap "result_cache_hits")

(* Corruption is skipped and deleted on access; valid neighbours keep
   being served. *)
let test_persisted_cache_corruption () =
  let dir = temp_dir "asc-rescache-corrupt" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let entry key =
    { Result_cache.e_key = key; e_tests = 3; e_cycles = 41; e_detected = 30;
      e_targets = 32; e_iterations = 2; e_tset = "tset bytes\n\x00\xff" }
  in
  let cache = Result_cache.create ~dir () in
  Result_cache.store cache (entry "aaaa");
  Result_cache.store cache (entry "bbbb");
  let victim = Result_cache.path ~dir "aaaa" in
  let bytes =
    Bytes.of_string (In_channel.with_open_bin victim In_channel.input_all)
  in
  let mid = Bytes.length bytes / 2 in
  Bytes.set bytes mid (Char.chr (Char.code (Bytes.get bytes mid) lxor 0x20));
  Out_channel.with_open_bin victim (fun oc ->
      Out_channel.output_bytes oc bytes);
  (* A fresh handle over the same dir models the restarted daemon. *)
  let cache2 = Result_cache.create ~dir () in
  Alcotest.(check bool) "corrupt entry is a miss" true
    (Result_cache.find cache2 "aaaa" = None);
  Alcotest.(check bool) "corrupt file deleted on access" false
    (Sys.file_exists victim);
  (match Result_cache.find cache2 "bbbb" with
  | Some (e, from_disk) ->
      Alcotest.(check bool) "valid neighbour served from disk" true from_disk;
      Alcotest.(check string) "tset intact" (entry "bbbb").Result_cache.e_tset
        e.Result_cache.e_tset
  | None -> Alcotest.fail "valid entry lost")

let result_cache_entry_gen =
  let open QCheck.Gen in
  let hex = map (fun i -> "0123456789abcdef".[i]) (int_bound 15) in
  let bytes = string_size ~gen:(map Char.chr (int_bound 255)) (int_bound 64) in
  string_size ~gen:hex (int_range 1 16) >>= fun key ->
  small_nat >>= fun tests ->
  small_nat >>= fun cycles ->
  small_nat >>= fun detected ->
  small_nat >>= fun targets ->
  small_nat >>= fun iterations ->
  bytes >>= fun tset ->
  return
    { Result_cache.e_key = key; e_tests = tests; e_cycles = cycles;
      e_detected = detected; e_targets = targets; e_iterations = iterations;
      e_tset = tset }

let prop_result_cache_roundtrip =
  QCheck.Test.make ~name:"Result_cache decode inverts encode" ~count:300
    (QCheck.make ~print:Result_cache.entry_to_string result_cache_entry_gen)
    (fun e ->
      Result_cache.entry_of_string (Result_cache.entry_to_string e) = Ok e)

(* Any byte-level damage — truncation, a changed byte, trailing junk —
   must decode to [Error], never raise and never yield a wrong entry
   (the CRC-32 trailer plus strict framing catch all three). *)
let prop_result_cache_corruption =
  let open QCheck.Gen in
  let mutation_gen =
    result_cache_entry_gen >>= fun e ->
    let file = Result_cache.entry_to_string e in
    let n = String.length file in
    oneof
      [
        (int_bound (n - 1) >>= fun k -> return (e, String.sub file 0 k));
        ( int_bound (n - 1) >>= fun k ->
          int_bound 254 >>= fun d ->
          let b = Bytes.of_string file in
          Bytes.set b k (Char.chr ((Char.code (Bytes.get b k) + 1 + d) mod 256));
          return (e, Bytes.to_string b) );
        ( string_size ~gen:(map Char.chr (int_bound 255)) (int_range 1 8)
          >>= fun junk -> return (e, file ^ junk) );
      ]
  in
  QCheck.Test.make
    ~name:"Result_cache rejects truncated, flipped and padded files"
    ~count:500
    (QCheck.make
       ~print:(fun (_, damaged) -> String.escaped damaged)
       mutation_gen)
    (fun (e, damaged) ->
      (match Result_cache.entry_of_string damaged with
      | Error _ -> true
      | Ok _ -> false)
      && Result_cache.entry_of_string (Result_cache.entry_to_string e) = Ok e)

(* --- Protocol codecs --------------------------------------------------- *)

let test_protocol_roundtrip () =
  let roundtrip r =
    let line = Json.to_string ~compact:true (Protocol.request_to_json r) in
    match Protocol.request_of_string line with
    | Ok r' ->
        Alcotest.(check bool) (Printf.sprintf "roundtrip %s" line) true (r = r')
    | Error e -> Alcotest.failf "roundtrip of %s failed: %s" line e
  in
  roundtrip Protocol.Ping;
  roundtrip Protocol.Metrics;
  roundtrip Protocol.Shutdown;
  roundtrip (Protocol.Submit { spec = spec ~circuit:"s298" (); want_tset = false; client_id = None });
  roundtrip
    (Protocol.Submit
       {
         spec =
           spec ~netlist:"INPUT(a)\nOUTPUT(b)\nb = NOT(a)\n" ~seed:7 ~t0:"random"
             ~timeout:2.5 ();
         want_tset = true;
         client_id = Some 42;
       })

let test_protocol_decode_errors () =
  let expect_error line msg_part =
    match Protocol.request_of_string line with
    | Error m ->
        Alcotest.(check bool)
          (Printf.sprintf "%S error mentions %S (got %S)" line msg_part m)
          true (contains m msg_part)
    | Ok _ -> Alcotest.failf "%S should not decode" line
  in
  expect_error "" "at offset";
  expect_error "{nope" "at offset";
  expect_error "[1,2]" "missing \"op\"";
  expect_error "{\"op\":42}" "must be a string";
  expect_error "{\"op\":\"zap\"}" "unknown op";
  expect_error "{\"op\":\"submit\",\"seed\":\"one\"}" "bad \"seed\"";
  expect_error "{\"op\":\"submit\",\"tset\":1}" "bad \"tset\"";
  expect_error "{\"op\":\"submit\",\"timeout\":\"fast\"}" "bad \"timeout\""

let test_submit_response_shape () =
  let result =
    { Scheduler.r_status = Scheduler.Complete; r_tests = 3; r_cycles = 41;
      r_detected = 30; r_targets = 32; r_iterations = 2;
      r_tset = Some "tset body"; r_resumed = true }
  in
  let json =
    Protocol.submit_response ~id:(Some 7) ~cached:false ~want_tset:true result
  in
  let get k = Json.member k json in
  Alcotest.(check (option bool)) "ok" (Some true) (Option.bind (get "ok") Json.as_bool);
  Alcotest.(check (option int)) "id" (Some 7) (Option.bind (get "id") Json.as_int);
  Alcotest.(check (option string)) "status" (Some "complete")
    (Option.bind (get "status") Json.as_str);
  Alcotest.(check (option bool)) "resumed" (Some true)
    (Option.bind (get "resumed") Json.as_bool);
  Alcotest.(check (option string)) "tset included" (Some "tset body")
    (Option.bind (get "tset") Json.as_str);
  (* Without want_tset the body is withheld even when present; a cache
     hit has no job id. *)
  let lean = Protocol.submit_response ~id:None ~cached:true ~want_tset:false result in
  Alcotest.(check bool) "tset withheld" true (Json.member "tset" lean = None);
  Alcotest.(check bool) "cached id is null" true
    (Json.member "id" lean = Some Json.Null);
  let failed =
    Protocol.submit_response ~id:(Some 1) ~cached:false ~want_tset:false
      { result with Scheduler.r_status = Scheduler.Failed "boom" }
  in
  Alcotest.(check (option bool)) "failed not ok" (Some false)
    (Option.bind (Json.member "ok" failed) Json.as_bool);
  Alcotest.(check (option string)) "failure message" (Some "boom")
    (Option.bind (Json.member "error" failed) Json.as_str)

(* --- QCheck round-trips ------------------------------------------------ *)

(* Floats are excluded by construction: the writer prints integral floats
   without a point, which re-parse as Int — a representation change the
   round-trip equality would flag — and NaN has no JSON spelling at all. *)
let json_gen =
  let open QCheck.Gen in
  let scalar =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun i -> Json.Int i) small_signed_int;
        map (fun s -> Json.Str s) (string_size ~gen:printable (int_bound 12));
      ]
  in
  let key =
    string_size
      ~gen:(map (fun i -> Char.chr (Char.code 'a' + i)) (int_bound 25))
      (int_range 1 6)
  in
  fix
    (fun self depth ->
      if depth = 0 then scalar
      else
        frequency
          [
            (3, scalar);
            ( 1,
              map (fun l -> Json.List l) (list_size (int_bound 4) (self (depth - 1)))
            );
            ( 1,
              map (fun l -> Json.Obj l)
                (list_size (int_bound 4) (pair key (self (depth - 1)))) );
          ])
    3

let prop_json_roundtrip =
  QCheck.Test.make ~name:"Json parse inverts printing (compact and indented)"
    ~count:500
    (QCheck.make ~print:(Json.to_string ~compact:true) json_gen)
    (fun v ->
      Json.of_string (Json.to_string ~compact:true v) = v
      && Json.of_string (Json.to_string ~compact:false v) = v)

(* Satellite: Tset_io write -> read is the identity over random test sets
   (the serving layer ships results through exactly this format). *)
let tset_gen =
  let c = Asc_circuits.S27.circuit () in
  let n_si = Asc_netlist.Circuit.n_dffs c in
  let n_pi = Asc_netlist.Circuit.n_inputs c in
  let open QCheck.Gen in
  let bools n = array_size (return n) bool in
  let test_gen =
    int_range 1 5 >>= fun len ->
    bools n_si >>= fun si ->
    array_size (return len) (bools n_pi) >>= fun seq ->
    return (Scan_test.create ~si ~seq)
  in
  array_size (int_bound 6) test_gen

let prop_tset_roundtrip =
  QCheck.Test.make ~name:"Tset_io read inverts write over random test sets"
    ~count:200
    (QCheck.make
       ~print:(fun tests -> Tset_io.to_string (Asc_circuits.S27.circuit ()) tests)
       tset_gen)
    (fun tests ->
      let c = Asc_circuits.S27.circuit () in
      let name, back = Tset_io.of_string (Tset_io.to_string c tests) in
      name = Asc_netlist.Circuit.name c
      && Array.length back = Array.length tests
      && Array.for_all2 Scan_test.equal back tests)

(* --- Black-box suites over the real binary ----------------------------- *)

let asc_exe =
  Filename.concat
    (Filename.dirname (Filename.dirname Sys.executable_name))
    "bin/asc.exe"

let spawn_server ?(env = []) args log =
  let fd = Unix.openfile log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600 in
  (* getenv returns the FIRST match, so appending cannot override an
     entry a putenv-using test (test_chaos) left behind; rebuild the
     environment with ASC_CHAOS and any overridden names stripped. *)
  let name_of kv =
    match String.index_opt kv '=' with
    | Some i -> String.sub kv 0 i
    | None -> kv
  in
  let overridden = List.map name_of env in
  let inherited =
    List.filter
      (fun kv ->
        let name = name_of kv in
        name <> Chaos.env_var && not (List.mem name overridden))
      (Array.to_list (Unix.environment ()))
  in
  let envp = Array.of_list (inherited @ env) in
  let pid =
    Unix.create_process_env asc_exe
      (Array.of_list ("asc" :: args))
      envp Unix.stdin fd fd
  in
  Unix.close fd;
  pid

let wait_for_socket path =
  let rec go n =
    if Sys.file_exists path then ()
    else if n = 0 then Alcotest.failf "server socket %s never appeared" path
    else begin
      Unix.sleepf 0.05;
      go (n - 1)
    end
  in
  go 200

type client = { fd : Unix.file_descr; ic : in_channel }

let client_connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  { fd; ic = Unix.in_channel_of_descr fd }

let client_send c text =
  let n = String.length text in
  let sent = ref 0 in
  while !sent < n do
    sent := !sent + Unix.write_substring c.fd text !sent (n - !sent)
  done

let client_request c line = client_send c (line ^ "\n")

let client_recv c = input_line c.ic

let client_close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

(* Spawn `asc serve` on a fresh Unix socket, run [f socket_path], then
   reap the process (the body normally shuts the server down itself; the
   kill in [finally] is the safety net so one failure cannot hang the
   suite).  Returns the server's exit status. *)
let with_server ?env ?(domains = 2) ?state_dir ?(args = []) f =
  let dir = temp_dir "asc-serve" in
  let sock = Filename.concat dir "asc.sock" in
  let args =
    [ "serve"; "--socket"; sock; "--domains"; string_of_int domains ]
    @ (match state_dir with None -> [] | Some d -> [ "--state-dir"; d ])
    @ args
  in
  let pid = spawn_server ?env args (Filename.concat dir "server.log") in
  let status = ref None in
  Fun.protect
    ~finally:(fun () ->
      (match !status with
      | Some _ -> ()
      | None -> (
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()));
      rm_rf dir)
    (fun () ->
      wait_for_socket sock;
      f sock;
      let _, st = Unix.waitpid [] pid in
      status := Some st;
      st)

let ping_golden = "{\"ok\":true,\"op\":\"ping\",\"protocol\":1}"

let shutdown_server c =
  client_request c "{\"op\":\"shutdown\"}";
  Alcotest.(check string) "shutdown golden response"
    "{\"ok\":true,\"op\":\"shutdown\",\"drained\":0}" (client_recv c)

let submit_line ?(tset = false) ?timeout ?(seed = 1) circuit =
  let timeout_part =
    match timeout with None -> "" | Some t -> Printf.sprintf ",\"timeout\":%g" t
  in
  Printf.sprintf "{\"op\":\"submit\",\"circuit\":%S,\"seed\":%d%s%s}" circuit seed
    timeout_part
    (if tset then ",\"tset\":true" else "")

let response_member resp key =
  match Json.parse resp with
  | Error e -> Alcotest.failf "unparseable response %S: %s" resp e
  | Ok json -> Json.member key json

let check_bool_member resp key expected =
  Alcotest.(check (option bool))
    (Printf.sprintf "%s of %s" key (String.sub resp 0 (min 60 (String.length resp))))
    (Some expected)
    (Option.bind (response_member resp key) Json.as_bool)

let int_member resp key =
  match Option.bind (response_member resp key) Json.as_int with
  | Some v -> v
  | None -> Alcotest.failf "response lacks int %S: %s" key resp

let str_member resp key =
  match Option.bind (response_member resp key) Json.as_str with
  | Some v -> v
  | None -> Alcotest.failf "response lacks string %S: %s" key resp

let run_cli args =
  let cmd =
    Printf.sprintf "%s %s >/dev/null 2>&1" (Filename.quote asc_exe)
      (String.concat " " (List.map Filename.quote args))
  in
  match Unix.system cmd with
  | Unix.WEXITED 0 -> ()
  | _ -> Alcotest.failf "reference CLI run failed: asc %s" (String.concat " " args)

let read_file path = In_channel.with_open_bin path In_channel.input_all

(* Conformance: golden transcripts for the stable frames, field checks
   against a one-shot `asc run --json` for the computed ones, and framing
   edge cases (pipelining, CRLF, blank lines, malformed frames). *)
let test_server_conformance () =
  if not (Sys.file_exists asc_exe) then Alcotest.skip ()
  else
    let st =
      with_server (fun sock ->
          let c = client_connect sock in
          Fun.protect ~finally:(fun () -> client_close c) @@ fun () ->
          client_request c "{\"op\":\"ping\"}";
          Alcotest.(check string) "ping golden response" ping_golden (client_recv c);
          (* Pipelining: two frames in one write, two responses. *)
          client_send c "{\"op\":\"ping\"}\n{\"op\":\"ping\"}\n";
          Alcotest.(check string) "pipelined 1" ping_golden (client_recv c);
          Alcotest.(check string) "pipelined 2" ping_golden (client_recv c);
          (* CRLF and blank lines are tolerated silently. *)
          client_send c "\r\n\n{\"op\":\"ping\"}\r\n";
          Alcotest.(check string) "crlf framing" ping_golden (client_recv c);
          (* Malformed frames answer with an error and keep the line open. *)
          client_request c "{not json";
          check_bool_member (client_recv c) "ok" false;
          client_request c "{\"op\":\"zap\"}";
          check_bool_member (client_recv c) "ok" false;
          client_request c "{\"op\":\"submit\",\"circuit\":\"nosuch\"}";
          let resp = client_recv c in
          check_bool_member resp "ok" false;
          Alcotest.(check bool) "names the circuit" true
            (contains (str_member resp "error") "nosuch");
          (* A served submit matches the one-shot CLI's --json summary. *)
          let dir = temp_dir "asc-conf" in
          Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
          let ref_json = Filename.concat dir "ref.json" in
          run_cli [ "run"; "s27"; "--domains"; "1"; "--json"; ref_json ];
          let reference = Json.of_string (read_file ref_json) in
          client_request c (submit_line "s27");
          let resp = client_recv c in
          check_bool_member resp "ok" true;
          Alcotest.(check string) "served status" "complete"
            (str_member resp "status");
          List.iter
            (fun key ->
              Alcotest.(check int)
                (Printf.sprintf "served %s matches one-shot --json" key)
                (match Option.bind (Json.member key reference) Json.as_int with
                | Some v -> v
                | None -> Alcotest.failf "reference lacks %s" key)
                (int_member resp key))
            [ "tests"; "cycles"; "detected"; "targets"; "iterations" ];
          shutdown_server c)
    in
    Alcotest.(check bool) "clean exit" true (st = Unix.WEXITED 0)

(* Fuzz: random garbage frames must each draw an error response — never a
   crash, never a stuck connection. *)
let test_server_fuzz_malformed () =
  if not (Sys.file_exists asc_exe) then Alcotest.skip ()
  else
    let st =
      with_server (fun sock ->
          let c = client_connect sock in
          Fun.protect ~finally:(fun () -> client_close c) @@ fun () ->
          let rng = Rng.create 20260808 in
          let charset = "{}[]\",:truefalsn0123456789.eE+- \\x" in
          for _ = 1 to 60 do
            let len = 1 + Rng.int rng 40 in
            let frame =
              String.init len (fun _ -> charset.[Rng.int rng (String.length charset)])
            in
            client_request c frame;
            check_bool_member (client_recv c) "ok" false
          done;
          (* Every strict prefix of a valid request is still just an error. *)
          let valid = "{\"op\":\"submit\",\"circuit\":\"s27\",\"seed\":1}" in
          for len = 1 to String.length valid - 1 do
            client_request c (String.sub valid 0 len);
            check_bool_member (client_recv c) "ok" false
          done;
          (* The connection survived all of it. *)
          client_request c "{\"op\":\"ping\"}";
          Alcotest.(check string) "healthy after fuzz" ping_golden (client_recv c);
          shutdown_server c)
    in
    Alcotest.(check bool) "clean exit" true (st = Unix.WEXITED 0)

(* Determinism: concurrently served jobs are byte-identical to one-shot
   `asc save-tests`, whatever the server's pool size; resubmission is
   answered from the cache, observable in the metrics counters. *)
let test_server_determinism () =
  if not (Sys.file_exists asc_exe) then Alcotest.skip ()
  else begin
    let dir = temp_dir "asc-det" in
    Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
    let reference circuit =
      let path = Filename.concat dir (circuit ^ ".ref") in
      run_cli [ "save-tests"; circuit; path; "--domains"; "1" ];
      read_file path
    in
    let ref_s27 = reference "s27" and ref_s298 = reference "s298" in
    List.iter
      (fun domains ->
        let st =
          with_server ~domains (fun sock ->
              (* Three clients submit before any response is read: the
                 server queues them all and drains round-robin. *)
              let c1 = client_connect sock in
              let c2 = client_connect sock in
              let c3 = client_connect sock in
              Fun.protect
                ~finally:(fun () -> List.iter client_close [ c1; c2; c3 ])
              @@ fun () ->
              client_request c1 (submit_line ~tset:true "s27");
              client_request c2 (submit_line ~tset:true "s298");
              client_request c3 (submit_line ~tset:true ~seed:2 "s27");
              let r1 = client_recv c1 in
              let r2 = client_recv c2 in
              let r3 = client_recv c3 in
              List.iter (fun r -> check_bool_member r "ok" true) [ r1; r2; r3 ];
              Alcotest.(check string)
                (Printf.sprintf "s27 served = one-shot (domains=%d)" domains)
                ref_s27 (str_member r1 "tset");
              Alcotest.(check string)
                (Printf.sprintf "s298 served = one-shot (domains=%d)" domains)
                ref_s298 (str_member r2 "tset");
              Alcotest.(check bool) "seed-2 job completed too" true
                (str_member r3 "status" = "complete");
              (* Resubmission: cache hit, visible to the client and in the
                 fleet counters. *)
              client_request c1 (submit_line ~tset:true "s27");
              let again = client_recv c1 in
              check_bool_member again "cached" true;
              Alcotest.(check string) "cached tset identical" ref_s27
                (str_member again "tset");
              client_request c1 "{\"op\":\"metrics\"}";
              let m = client_recv c1 in
              let counter name =
                match
                  Option.bind (response_member m "counters") (Json.member name)
                with
                | Some v -> Option.value ~default:(-1) (Json.as_int v)
                | None -> Alcotest.failf "metrics lacks counter %s" name
              in
              Alcotest.(check int) "one cache hit" 1 (counter "result_cache_hits");
              Alcotest.(check int) "three misses" 3 (counter "result_cache_misses");
              Alcotest.(check int) "three completions" 3 (counter "jobs_completed");
              Alcotest.(check int) "four submissions" 4 (counter "jobs_submitted");
              shutdown_server c1)
        in
        Alcotest.(check bool)
          (Printf.sprintf "clean exit (domains=%d)" domains)
          true
          (st = Unix.WEXITED 0))
      [ 1; 2; 4 ]
  end

(* Chaos soak: kill the server mid-job (second checkpoint write), restart
   it over the same state dir, and require the resubmitted job to resume
   from the snapshot and land bit-identically on the one-shot result. *)
let test_server_chaos_soak () =
  if not (Sys.file_exists asc_exe) then Alcotest.skip ()
  else begin
    let dir = temp_dir "asc-soak" in
    Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
    let ref_path = Filename.concat dir "s298.ref" in
    run_cli [ "save-tests"; "s298"; ref_path; "--domains"; "1" ];
    let reference = read_file ref_path in
    let state = Filename.concat dir "state" in
    let sock = Filename.concat dir "asc.sock" in
    (* Round 1: the armed server dies mid-job with the kill exit code. *)
    let pid =
      spawn_server
        ~env:[ "ASC_CHAOS=" ^ Chaos.checkpoint_output ^ "@2=kill" ]
        [ "serve"; "--socket"; sock; "--domains"; "2"; "--state-dir"; state ]
        (Filename.concat dir "server1.log")
    in
    wait_for_socket sock;
    let c = client_connect sock in
    client_request c (submit_line ~tset:true "s298");
    (match client_recv c with
    | exception End_of_file -> ()
    | line -> Alcotest.failf "expected the server to die, got %s" line);
    client_close c;
    let _, st = Unix.waitpid [] pid in
    Alcotest.(check bool) "chaos kill exits 137" true (st = Unix.WEXITED 137);
    Alcotest.(check bool) "a checkpoint survived the crash" true
      (Sys.file_exists state
      && Array.exists
           (fun f -> contains f ".ckpt")
           (Sys.readdir state));
    (* Round 2: a fresh server over the same state dir resumes the job. *)
    let pid2 =
      spawn_server
        [ "serve"; "--socket"; sock; "--domains"; "2"; "--state-dir"; state ]
        (Filename.concat dir "server2.log")
    in
    wait_for_socket sock;
    let c = client_connect sock in
    Fun.protect ~finally:(fun () -> client_close c) @@ fun () ->
    client_request c (submit_line ~tset:true "s298");
    let resp = client_recv c in
    check_bool_member resp "ok" true;
    check_bool_member resp "resumed" true;
    Alcotest.(check string) "resumed job completes" "complete"
      (str_member resp "status");
    Alcotest.(check string) "resumed tset = one-shot" reference
      (str_member resp "tset");
    shutdown_server c;
    let _, st2 = Unix.waitpid [] pid2 in
    Alcotest.(check bool) "clean exit after resume" true (st2 = Unix.WEXITED 0)
  end

(* Supervised serving: --workers 2 results are byte-identical to the
   one-shot CLI, a shutdown with jobs in flight drains them first and
   reports the count, and a restarted daemon answers the same submission
   from the persistent result store. *)
let test_server_supervised () =
  if not (Sys.file_exists asc_exe) then Alcotest.skip ()
  else begin
    let dir = temp_dir "asc-sup" in
    Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
    let reference circuit =
      let path = Filename.concat dir (circuit ^ ".ref") in
      run_cli [ "save-tests"; circuit; path; "--domains"; "1" ];
      read_file path
    in
    let ref_s298 = reference "s298" and ref_s344 = reference "s344" in
    let state = Filename.concat dir "state" in
    (* Round 1: two jobs in flight on two workers, then shutdown — the
       server must drain both before answering. *)
    let st =
      with_server ~state_dir:state ~args:[ "--workers"; "2" ] (fun sock ->
          let c1 = client_connect sock in
          let c2 = client_connect sock in
          let c3 = client_connect sock in
          Fun.protect ~finally:(fun () -> List.iter client_close [ c1; c2; c3 ])
          @@ fun () ->
          client_request c1 (submit_line ~tset:true "s298");
          client_request c2 (submit_line ~tset:true "s344");
          (* Give the server a moment to read both submits so the
             shutdown finds work outstanding. *)
          Unix.sleepf 0.3;
          client_request c3 "{\"op\":\"shutdown\"}";
          let r1 = client_recv c1 in
          let r2 = client_recv c2 in
          let sh = client_recv c3 in
          List.iter (fun r -> check_bool_member r "ok" true) [ r1; r2; sh ];
          Alcotest.(check string) "supervised s298 = one-shot" ref_s298
            (str_member r1 "tset");
          Alcotest.(check string) "supervised s344 = one-shot" ref_s344
            (str_member r2 "tset");
          Alcotest.(check bool) "shutdown drained in-flight jobs" true
            (int_member sh "drained" >= 1))
    in
    Alcotest.(check bool) "clean supervised exit" true (st = Unix.WEXITED 0);
    (* Round 2: a restarted daemon serves the same submission from the
       persistent result store, byte-identically. *)
    let st2 =
      with_server ~state_dir:state ~args:[ "--workers"; "2" ] (fun sock ->
          let c = client_connect sock in
          Fun.protect ~finally:(fun () -> client_close c) @@ fun () ->
          client_request c (submit_line ~tset:true "s298");
          let resp = client_recv c in
          check_bool_member resp "ok" true;
          check_bool_member resp "cached" true;
          Alcotest.(check string) "persisted tset = one-shot" ref_s298
            (str_member resp "tset");
          client_request c "{\"op\":\"metrics\"}";
          let m = client_recv c in
          let counter name =
            match Option.bind (response_member m "counters") (Json.member name) with
            | Some v -> Option.value ~default:(-1) (Json.as_int v)
            | None -> Alcotest.failf "metrics lacks counter %s" name
          in
          Alcotest.(check int) "persisted hit counted" 1
            (counter "result_cache_persisted_hits");
          shutdown_server c)
    in
    Alcotest.(check bool) "clean exit after restart" true (st2 = Unix.WEXITED 0)
  end

(* Supervised chaos: a SIGKILL'd worker (supervisor.dispatch kill rule)
   costs nothing but a requeue — both jobs land byte-identical to the
   one-shot CLI and the crash/requeue/restart counters tell the story. *)
let test_server_supervised_chaos () =
  if not (Sys.file_exists asc_exe) then Alcotest.skip ()
  else begin
    let dir = temp_dir "asc-sup-chaos" in
    Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
    let ref_path = Filename.concat dir "s298.ref" in
    run_cli [ "save-tests"; "s298"; ref_path; "--domains"; "1" ];
    let reference = read_file ref_path in
    let st =
      with_server
        ~env:[ "ASC_CHAOS=" ^ Chaos.supervisor_dispatch ^ "@1=kill" ]
        ~state_dir:(Filename.concat dir "state")
        ~args:[ "--workers"; "2" ]
        (fun sock ->
          let c1 = client_connect sock in
          let c2 = client_connect sock in
          Fun.protect ~finally:(fun () -> List.iter client_close [ c1; c2 ])
          @@ fun () ->
          client_request c1 (submit_line ~tset:true "s298");
          client_request c2 (submit_line ~tset:true "s27");
          let r1 = client_recv c1 in
          let r2 = client_recv c2 in
          List.iter (fun r -> check_bool_member r "ok" true) [ r1; r2 ];
          Alcotest.(check string) "killed-and-retried job = one-shot" reference
            (str_member r1 "tset");
          client_request c1 "{\"op\":\"metrics\"}";
          let m = client_recv c1 in
          let counter name =
            match Option.bind (response_member m "counters") (Json.member name) with
            | Some v -> Option.value ~default:(-1) (Json.as_int v)
            | None -> Alcotest.failf "metrics lacks counter %s" name
          in
          Alcotest.(check bool) "a worker was crashed" true
            (counter "worker_crashes" >= 1);
          Alcotest.(check bool) "its job was requeued" true
            (counter "jobs_requeued" >= 1);
          Alcotest.(check bool) "the slot was restarted" true
            (counter "worker_restarts" >= 1);
          Alcotest.(check int) "both jobs completed" 2
            (counter "jobs_completed");
          shutdown_server c1)
    in
    Alcotest.(check bool) "clean exit despite worker kills" true
      (st = Unix.WEXITED 0)
  end

(* Poison job: a chaos rule that crashes the worker on every attempt
   must exhaust the per-job retry budget and fail that job with the
   typed worker_crash error — the server itself stays up. *)
let test_server_supervised_poison () =
  if not (Sys.file_exists asc_exe) then Alcotest.skip ()
  else
    let dir = temp_dir "asc-sup-poison" in
    Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
    let st =
      with_server
        ~env:[ "ASC_CHAOS=" ^ Chaos.checkpoint_open ^ "@1=kill" ]
        ~state_dir:(Filename.concat dir "state")
        ~args:[ "--workers"; "1"; "--job-retries"; "2" ]
        (fun sock ->
          let c = client_connect sock in
          Fun.protect ~finally:(fun () -> client_close c) @@ fun () ->
          client_request c (submit_line "s298");
          let resp = client_recv c in
          check_bool_member resp "ok" false;
          Alcotest.(check string) "typed failure" "worker_crash"
            (str_member resp "error");
          Alcotest.(check string) "failed status" "failed"
            (str_member resp "status");
          client_request c "{\"op\":\"metrics\"}";
          let m = client_recv c in
          let counter name =
            match Option.bind (response_member m "counters") (Json.member name) with
            | Some v -> Option.value ~default:(-1) (Json.as_int v)
            | None -> Alcotest.failf "metrics lacks counter %s" name
          in
          Alcotest.(check int) "two crashes = the retry budget" 2
            (counter "worker_crashes");
          Alcotest.(check int) "job failed once" 1 (counter "jobs_failed");
          (* The server survived its poison job. *)
          client_request c "{\"op\":\"ping\"}";
          Alcotest.(check string) "server healthy" ping_golden (client_recv c);
          shutdown_server c)
    in
    Alcotest.(check bool) "clean exit after poison job" true
      (st = Unix.WEXITED 0)

(* The queue-depth gauge is computed from the queues themselves — redo
   queue plus per-source FIFOs — so a requeued in-flight job counts
   again and the number cannot drift from the real backlog. *)
let test_scheduler_pending_counts_redo () =
  let sched = Scheduler.create () in
  let submit source seed =
    match Scheduler.submit sched ~source (spec ~circuit:"s27" ~seed ()) with
    | Scheduler.Accepted j -> j
    | _ -> Alcotest.fail "expected Accepted"
  in
  let _ = submit 1 1 and _ = submit 1 2 and _ = submit 2 3 in
  Alcotest.(check int) "three queued" 3 (Scheduler.pending sched);
  let job =
    match Scheduler.pick sched with
    | Some j -> j
    | None -> Alcotest.fail "pick returned nothing"
  in
  Alcotest.(check int) "picked job leaves the count" 2 (Scheduler.pending sched);
  Alcotest.(check bool) "pick stamps the dispatch time" true
    (job.Scheduler.j_dispatched >= job.Scheduler.j_submitted
    && job.Scheduler.j_dispatched > 0.0);
  Scheduler.requeue sched job;
  Alcotest.(check int) "requeued job counts again" 3 (Scheduler.pending sched);
  (* The redo queue drains first, then the FIFOs. *)
  (match Scheduler.pick sched with
  | Some j ->
      Alcotest.(check int) "redo job first" job.Scheduler.j_id j.Scheduler.j_id
  | None -> Alcotest.fail "redo pick returned nothing");
  ignore (Scheduler.pick sched);
  ignore (Scheduler.pick sched);
  Alcotest.(check int) "drained" 0 (Scheduler.pending sched);
  Alcotest.(check bool) "empty pick" true (Scheduler.pick sched = None)

(* Acceptance gate for the observability stack: served results must be
   byte-identical with full observability on (event log at debug, trace
   stitching, prometheus file) and off, in-process-style single-worker
   and across a four-worker fleet.  While at it, assert the artifacts
   themselves: decodable JSONL with a submitted->completed pair per job,
   a valid stitched trace with one process per worker pid, and a
   grammar-consistent exposition file. *)
let test_server_obs_identity () =
  if not (Sys.file_exists asc_exe) then Alcotest.skip ()
  else
    List.iter
      (fun workers ->
        let dir = temp_dir "asc-obs-id" in
        Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
        let submit_both sock =
          let c1 = client_connect sock in
          let c2 = client_connect sock in
          Fun.protect ~finally:(fun () -> List.iter client_close [ c1; c2 ])
          @@ fun () ->
          client_request c1 (submit_line ~tset:true "s298");
          client_request c2 (submit_line ~tset:true "s344");
          let r1 = client_recv c1 in
          let r2 = client_recv c2 in
          List.iter (fun r -> check_bool_member r "ok" true) [ r1; r2 ];
          let out = (str_member r1 "tset", str_member r2 "tset") in
          shutdown_server c1;
          out
        in
        let plain = ref ("", "") in
        let st =
          with_server ~args:[ "--workers"; string_of_int workers ] (fun sock ->
              plain := submit_both sock)
        in
        Alcotest.(check bool) "plain server exits cleanly" true
          (st = Unix.WEXITED 0);
        let events = Filename.concat dir "events.jsonl" in
        let trace = Filename.concat dir "trace.json" in
        let prom = Filename.concat dir "prom.txt" in
        let observed = ref ("", "") in
        let st =
          with_server
            ~args:
              [
                "--workers"; string_of_int workers;
                "--log-file"; events; "--log-level"; "debug";
                "--trace"; trace; "--prom-file"; prom;
              ]
            (fun sock -> observed := submit_both sock)
        in
        Alcotest.(check bool) "observed server exits cleanly" true
          (st = Unix.WEXITED 0);
        let tag s = Printf.sprintf "%s (workers=%d)" s workers in
        Alcotest.(check string) (tag "s298 identical with obs on")
          (fst !plain) (fst !observed);
        Alcotest.(check string) (tag "s344 identical with obs on")
          (snd !plain) (snd !observed);
        (* Event log: decodable JSONL, one submitted->completed pair per
           job key. *)
        let lines =
          String.split_on_char '\n' (read_file events)
          |> List.filter (fun l -> l <> "")
        in
        Alcotest.(check bool) (tag "event log is non-trivial") true
          (List.length lines >= 6);
        let decoded =
          List.map
            (fun line ->
              match Result.bind (Json.parse line) Asc_util.Log.event_of_json with
              | Ok e -> e
              | Error e -> Alcotest.failf "bad event line %S: %s" line e)
            lines
        in
        let keys_of name =
          List.filter_map
            (fun e ->
              if e.Asc_util.Log.ev_event = name then e.Asc_util.Log.ev_job
              else None)
            decoded
          |> List.sort_uniq compare
        in
        Alcotest.(check (list string)) (tag "submitted jobs all completed")
          (keys_of "job.submitted") (keys_of "job.completed");
        Alcotest.(check int) (tag "two jobs logged") 2
          (List.length (keys_of "job.submitted"));
        (* Stitched trace: valid Chrome JSON, balanced begin/end pairs,
           parent process plus one process per worker pid. *)
        let trace_text = read_file trace in
        Alcotest.(check bool) (tag "trace is valid") true
          (Test_telemetry.json_ok (String.trim trace_text));
        (match Json.parse trace_text with
        | Error e -> Alcotest.failf "unparseable trace: %s" e
        | Ok (Json.Obj members) -> (
            match List.assoc_opt "traceEvents" members with
            | Some (Json.List evs) ->
                let phase p =
                  List.length
                    (List.filter
                       (function
                         | Json.Obj m ->
                             List.assoc_opt "ph" m = Some (Json.Str p)
                         | _ -> false)
                       evs)
                in
                Alcotest.(check int) (tag "balanced B/E events") (phase "B")
                  (phase "E");
                let pids =
                  List.filter_map
                    (function
                      | Json.Obj m ->
                          Option.bind (List.assoc_opt "pid" m) Json.as_int
                      | _ -> None)
                    evs
                  |> List.sort_uniq compare
                in
                (* the parent plus every worker that ran a job *)
                let want = if workers >= 2 then 3 else 2 in
                Alcotest.(check bool)
                  (tag
                     (Printf.sprintf "at least %d process tracks (got %d)"
                        want (List.length pids)))
                  true
                  (List.length pids >= want)
            | _ -> Alcotest.fail "trace lacks traceEvents")
        | Ok _ -> Alcotest.fail "trace is not an object");
        (* Exposition file: the final rewrite reflects both completions. *)
        let prom_text = read_file prom in
        Alcotest.(check bool) (tag "prom counter") true
          (contains prom_text "asc_jobs_completed_total 2\n");
        Alcotest.(check bool) (tag "prom histogram count") true
          (contains prom_text "asc_job_e2e_seconds_count 2\n");
        Alcotest.(check bool) (tag "prom +Inf bucket") true
          (contains prom_text "asc_job_e2e_seconds_bucket{le=\"+Inf\"} 2\n"))
      [ 1; 4 ]

(* --- Overload, shedding, jitter and staleness --------------------------- *)

let test_backoff_bounds () =
  let feps = Alcotest.float 1e-9 in
  Alcotest.(check feps) "delay 0" 0.1 (Backoff.delay ~base:0.1 0);
  Alcotest.(check feps) "delay 3 doubles" 0.8 (Backoff.delay ~base:0.1 3);
  Alcotest.(check feps) "delay hits the cap" 5.0 (Backoff.delay ~base:0.1 10);
  Alcotest.(check feps) "custom cap" 0.5 (Backoff.delay ~cap:0.5 ~base:0.1 10);
  Alcotest.(check feps) "huge attempt stays finite" 5.0
    (Backoff.delay ~base:0.1 1_000_000);
  (* Full jitter: uniform in [0, delay] — check bounds over many samples
     with a seeded stream, and that it actually spreads. *)
  let rng = Rng.of_name ~seed:42 "test/backoff" in
  let distinct = Hashtbl.create 64 in
  for n = 0 to 9 do
    let ceiling = Backoff.delay ~base:0.1 n in
    for _ = 1 to 100 do
      let d = Backoff.full_jitter ~rng ~base:0.1 n in
      Alcotest.(check bool)
        (Printf.sprintf "jitter %g within [0, %g]" d ceiling)
        true
        (d >= 0.0 && d <= ceiling);
      Hashtbl.replace distinct d ()
    done
  done;
  Alcotest.(check bool) "jitter spreads" true (Hashtbl.length distinct > 100)

let test_scheduler_admission_overload () =
  let tel = Telemetry.create () in
  let sched = Scheduler.create ~tel ~max_pending:2 () in
  let submit source seed =
    Scheduler.submit sched ~source (spec ~circuit:"s27" ~seed ())
  in
  (match submit 1 1 with
  | Scheduler.Accepted _ -> ()
  | _ -> Alcotest.fail "first submit should queue");
  (match submit 1 2 with
  | Scheduler.Accepted _ -> ()
  | _ -> Alcotest.fail "second submit should queue");
  (match submit 2 3 with
  | Scheduler.Overloaded { retry_after_ms } ->
      Alcotest.(check bool) "retry hint in (0, 5000]" true
        (retry_after_ms > 0 && retry_after_ms <= 5000)
  | _ -> Alcotest.fail "third submit should be rejected overloaded");
  Alcotest.(check int) "reject leaves the queue alone" 2
    (Scheduler.pending sched);
  (* Draining one job reopens admission... *)
  (match Scheduler.run_next sched with
  | Some (_, r) ->
      Alcotest.(check bool) "drained job completes" true
        (r.Scheduler.r_status = Scheduler.Complete)
  | None -> Alcotest.fail "queue should not be empty");
  (match submit 2 4 with
  | Scheduler.Accepted _ -> ()
  | _ -> Alcotest.fail "freed slot should accept again");
  (* ...and a cache hit is answered even with the queue full: it costs
     no queue slot, so shedding it would only create retry traffic. *)
  (match submit 3 1 with
  | Scheduler.Cached _ -> ()
  | _ -> Alcotest.fail "full queue must still answer cache hits");
  let snap = Telemetry.drain tel in
  let count name = Telemetry.counter_value snap name in
  Alcotest.(check int) "one overload reject counted" 1
    (count "jobs_rejected_overload");
  (* Overload rejects are not submissions: 3 accepted + 1 cached. *)
  Alcotest.(check int) "jobs_submitted excludes rejects" 4
    (count "jobs_submitted")

let test_scheduler_admission_per_source () =
  let sched = Scheduler.create ~max_pending_per_source:1 () in
  let submit source seed =
    Scheduler.submit sched ~source (spec ~circuit:"s27" ~seed ())
  in
  (match submit 1 1 with
  | Scheduler.Accepted _ -> ()
  | _ -> Alcotest.fail "source 1 first job should queue");
  (match submit 1 2 with
  | Scheduler.Overloaded _ -> ()
  | _ -> Alcotest.fail "source 1 second job should be rejected");
  (match submit 2 3 with
  | Scheduler.Accepted _ -> ()
  | _ -> Alcotest.fail "the cap is per source, not global")

let test_scheduler_shed_deadline () =
  let tel = Telemetry.create () in
  let sched = Scheduler.create ~tel () in
  let doomed =
    match
      Scheduler.submit sched ~source:1
        (spec ~circuit:"s27" ~seed:1 ~timeout:0.01 ())
    with
    | Scheduler.Accepted j -> j
    | _ -> Alcotest.fail "doomed job should queue"
  in
  let survivor =
    match
      Scheduler.submit sched ~source:2 (spec ~circuit:"s27" ~seed:2 ())
    with
    | Scheduler.Accepted j -> j
    | _ -> Alcotest.fail "survivor should queue"
  in
  Unix.sleepf 0.05;
  (* pick skips over the expired job and dispatches the live one. *)
  (match Scheduler.pick sched with
  | Some j ->
      Alcotest.(check int) "survivor dispatched" survivor.Scheduler.j_id
        j.Scheduler.j_id
  | None -> Alcotest.fail "survivor should dispatch");
  (match Scheduler.take_shed sched with
  | [ (j, r) ] -> (
      Alcotest.(check int) "shed the expired job" doomed.Scheduler.j_id
        j.Scheduler.j_id;
      match r.Scheduler.r_status with
      | Scheduler.Partial { reason; stage } ->
          Alcotest.(check string) "shed reason" "deadline" reason;
          Alcotest.(check string) "shed stage" "queue" stage
      | _ -> Alcotest.fail "shed result should be partial")
  | other ->
      Alcotest.failf "expected exactly one shed job, got %d"
        (List.length other));
  Alcotest.(check bool) "take_shed drains" true (Scheduler.take_shed sched = []);
  let snap = Telemetry.drain tel in
  Alcotest.(check int) "jobs_shed counted" 1
    (Telemetry.counter_value snap "jobs_shed")

(* Black-box: a burst past --max-pending answers typed overloaded rejects
   (reason + retry_after_ms + echoed id) and honoring the hint retries
   every job to completion; the caps surface as gauges. *)
let test_server_overload_typed_rejects () =
  if not (Sys.file_exists asc_exe) then Alcotest.skip ()
  else
    let circuits = [| "s27"; "s298"; "s344"; "s382" |] in
    let st =
      with_server ~args:[ "--max-pending"; "1" ] (fun sock ->
          let c = client_connect sock in
          Fun.protect ~finally:(fun () -> client_close c) @@ fun () ->
          let line i =
            Printf.sprintf "{\"op\":\"submit\",\"circuit\":%S,\"seed\":1,\"id\":%d}"
              circuits.(i) i
          in
          (* One write, four pipelined submits. *)
          client_send c
            (String.concat "\n" (List.init 4 line) ^ "\n");
          let done_ids = Hashtbl.create 4 in
          let rejected = ref [] in
          List.iter
            (fun _ ->
              let r = client_recv c in
              let id = int_member r "id" in
              match Option.bind (response_member r "ok") Json.as_bool with
              | Some true ->
                  Alcotest.(check string) "complete" "complete"
                    (str_member r "status");
                  Hashtbl.replace done_ids id ()
              | _ ->
                  Alcotest.(check string) "typed reject" "overloaded"
                    (str_member r "reason");
                  Alcotest.(check bool) "carries a retry hint" true
                    (int_member r "retry_after_ms" > 0);
                  rejected := id :: !rejected)
            (List.init 4 Fun.id);
          Alcotest.(check bool) "the burst overflowed the cap" true
            (!rejected <> []);
          (* Retry each rejected job after its hint until it completes —
             sequentially, so at most one queue slot is contended. *)
          let rec retry budget id =
            if budget = 0 then Alcotest.failf "job %d never completed" id;
            client_request c (line id);
            let r = client_recv c in
            if Option.bind (response_member r "ok") Json.as_bool = Some true
            then Hashtbl.replace done_ids id ()
            else begin
              Unix.sleepf
                (float_of_int (int_member r "retry_after_ms") /. 1000.);
              retry (budget - 1) id
            end
          in
          List.iter (retry 50) !rejected;
          Alcotest.(check int) "every job completed" 4 (Hashtbl.length done_ids);
          client_request c "{\"op\":\"metrics\"}";
          let m = client_recv c in
          let counter name =
            match Option.bind (response_member m "counters") (Json.member name) with
            | Some v -> Option.value ~default:(-1) (Json.as_int v)
            | None -> Alcotest.failf "metrics lacks counter %s" name
          in
          Alcotest.(check bool) "overload rejects counted" true
            (counter "jobs_rejected_overload" >= 1);
          Alcotest.(check int) "nothing shed" 0 (counter "jobs_shed");
          (match
             Option.bind (response_member m "gauges") (Json.member "max_pending")
           with
          | Some v ->
              Alcotest.(check (option (float 1e-9))) "cap gauge" (Some 1.0)
                (Json.as_float v)
          | None -> Alcotest.fail "metrics lacks the max_pending gauge");
          shutdown_server c)
    in
    Alcotest.(check bool) "clean exit after overload burst" true
      (st = Unix.WEXITED 0)

(* Heartbeat staleness, end to end with the ASC_HB_STALE test knob: a
   SIGSTOPped worker stops polling, overruns its job's deadline by more
   than the (shrunk) staleness threshold, and is treated as crashed —
   SIGKILLed, its job requeued (then shed: its deadline is gone) and the
   slot respawned; the server keeps serving. *)
let test_server_hb_staleness () =
  if not (Sys.file_exists asc_exe) then Alcotest.skip ()
  else begin
    let dir = temp_dir "asc-hb" in
    Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
    let log_path = Filename.concat dir "events.jsonl" in
    let worker_pid () =
      (* The supervisor logs worker.start with the child pid. *)
      let rec poll n =
        if n = 0 then Alcotest.fail "worker.start never logged"
        else
          let pid =
            if not (Sys.file_exists log_path) then None
            else
              List.find_map
                (fun line ->
                  match Json.parse line with
                  | Ok json
                    when Option.bind (Json.member "event" json) Json.as_str
                         = Some "worker.start" ->
                      Option.bind (Json.member "pid" json) Json.as_int
                  | _ -> None)
                (String.split_on_char '\n' (read_file log_path))
          in
          match pid with
          | Some pid -> pid
          | None ->
              Unix.sleepf 0.1;
              poll (n - 1)
      in
      poll 100
    in
    let st =
      with_server
        ~env:[ "ASC_HB_STALE=1" ]
        ~args:[ "--workers"; "1"; "--log-file"; log_path ]
        (fun sock ->
          let c = client_connect sock in
          Fun.protect ~finally:(fun () -> client_close c) @@ fun () ->
          let pid = worker_pid () in
          client_request c (submit_line ~timeout:0.5 "s1423");
          (* Let the server dispatch, then freeze the worker mid-job. *)
          Unix.sleepf 0.2;
          Unix.kill pid Sys.sigstop;
          (* deadline 0.5s + staleness 1s: well inside 15s the stalled
             worker is killed and the job answered as shed. *)
          let resp = client_recv c in
          Alcotest.(check string) "stalled job shed as partial" "partial"
            (str_member resp "status");
          Alcotest.(check string) "shed reason" "deadline"
            (str_member resp "reason");
          client_request c "{\"op\":\"metrics\"}";
          let m = client_recv c in
          let counter name =
            match Option.bind (response_member m "counters") (Json.member name) with
            | Some v -> Option.value ~default:(-1) (Json.as_int v)
            | None -> Alcotest.failf "metrics lacks counter %s" name
          in
          Alcotest.(check bool) "stale worker counted as crash" true
            (counter "worker_crashes" >= 1);
          Alcotest.(check bool) "its job was requeued" true
            (counter "jobs_requeued" >= 1);
          Alcotest.(check bool) "the expired requeue was shed" true
            (counter "jobs_shed" >= 1);
          (* The respawned slot still serves. *)
          client_request c (submit_line "s27");
          let r = client_recv c in
          check_bool_member r "ok" true;
          Alcotest.(check string) "respawned worker completes jobs" "complete"
            (str_member r "status");
          shutdown_server c)
    in
    Alcotest.(check bool) "clean exit after staleness kill" true
      (st = Unix.WEXITED 0)
  end

let suite =
  [
    ( "serve",
      [
        Alcotest.test_case "scheduler rejects bad specs" `Quick
          test_scheduler_rejects;
        Alcotest.test_case "scheduler is round-robin fair across sources" `Quick
          test_scheduler_round_robin;
        Alcotest.test_case "result cache hits with counters" `Quick
          test_scheduler_cache_and_counters;
        Alcotest.test_case "cache key is canonical" `Quick
          test_scheduler_key_canonical;
        Alcotest.test_case "deadline job cannot poison or starve a peer" `Quick
          test_contention_deadline_isolation;
        Alcotest.test_case "kill mid-checkpoint, resume bit-identically" `Quick
          test_kill_resume_in_process;
        Alcotest.test_case "persistent result cache survives a restart" `Quick
          test_persisted_cache_restart;
        Alcotest.test_case "corrupt result-cache files are skipped and deleted"
          `Quick test_persisted_cache_corruption;
        qtest prop_result_cache_roundtrip;
        qtest prop_result_cache_corruption;
        Alcotest.test_case "protocol requests round-trip" `Quick
          test_protocol_roundtrip;
        Alcotest.test_case "protocol decode errors" `Quick
          test_protocol_decode_errors;
        Alcotest.test_case "submit response shape" `Quick test_submit_response_shape;
        qtest prop_json_roundtrip;
        qtest prop_tset_roundtrip;
        Alcotest.test_case "server conformance over a socket" `Quick
          test_server_conformance;
        Alcotest.test_case "server survives malformed-frame fuzzing" `Quick
          test_server_fuzz_malformed;
        Alcotest.test_case "served jobs are deterministic and cached" `Slow
          test_server_determinism;
        Alcotest.test_case "chaos kill/resume soak" `Slow test_server_chaos_soak;
        Alcotest.test_case "supervised workers: determinism, drain, restart"
          `Slow test_server_supervised;
        Alcotest.test_case "supervised workers survive chaos kills" `Slow
          test_server_supervised_chaos;
        Alcotest.test_case "poison job exhausts its retry budget" `Slow
          test_server_supervised_poison;
        Alcotest.test_case "pending counts redo queue plus FIFOs" `Quick
          test_scheduler_pending_counts_redo;
        Alcotest.test_case "observability never perturbs served results" `Slow
          test_server_obs_identity;
        Alcotest.test_case "backoff delays and full jitter stay in bounds"
          `Quick test_backoff_bounds;
        Alcotest.test_case "admission control rejects past --max-pending"
          `Quick test_scheduler_admission_overload;
        Alcotest.test_case "admission control caps per source" `Quick
          test_scheduler_admission_per_source;
        Alcotest.test_case "expired queued jobs are shed, not dispatched"
          `Quick test_scheduler_shed_deadline;
        Alcotest.test_case "overload burst: typed rejects, retried to done"
          `Slow test_server_overload_typed_rejects;
        Alcotest.test_case "stale worker heartbeat treated as a crash" `Slow
          test_server_hb_staleness;
      ] );
  ]
